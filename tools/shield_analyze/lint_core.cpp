#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <sstream>
#include <unordered_set>

namespace shield5g::lint {
namespace {

// ---------------------------------------------------------------------
// Identifier classes
// ---------------------------------------------------------------------

/// Key-material identifiers: anything from the 5G-AKA hierarchy that is
/// SecretBytes-typed in the tree. Matching is done on the lowercased
/// token with trailing underscores stripped, so `kamf_`, `rec.opc` and
/// `Kausf` all resolve here.
const std::unordered_set<std::string>& secret_idents() {
  static const std::unordered_set<std::string> kSet{
      "k",        "ck",        "ik",        "opc",
      "kausf",    "kseaf",     "kamf",      "kgnb",
      "knas_int", "knas_enc",  "enc_key",   "mac_key",
      "private_key", "hn_private", "receiver_private",
  };
  return kSet;
}

/// Authentication tokens that must be compared in constant time
/// (TS 33.501 verification values: MAC-A/MAC-S, RES*/HXRES*, AUTS).
const std::unordered_set<std::string>& ct_idents() {
  static const std::unordered_set<std::string> kSet{
      "mac_a",    "mac_s",      "mac_tag",    "res",
      "res_star", "xres_star",  "hxres_star", "hres_star",
      "auts",
  };
  return kSet;
}

/// Methods on a secret that are fine to call inside a sink expression:
/// size/empty leak nothing, declassify is the audited escape hatch.
const std::unordered_set<std::string>& allowed_methods() {
  static const std::unordered_set<std::string> kSet{
      "size", "empty", "declassify",
  };
  return kSet;
}

}  // namespace

std::string normalize_ident(const std::string& ident) {
  std::string out;
  out.reserve(ident.size());
  for (char c : ident) out.push_back(static_cast<char>(std::tolower(c)));
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

bool path_contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

// ---------------------------------------------------------------------
// Preprocessing: physical-line splices folded, comments and literals
// stripped, original line numbers preserved per byte.
// ---------------------------------------------------------------------

namespace {

/// Folds backslash-newline splices ([lex.phases] §2) so that a token
/// or comment split across physical lines is seen whole — the
/// multi-line evasion a per-line scanner cannot close. Each retained
/// byte remembers its original line.
void splice_lines(const std::string& src, std::string& out,
                  std::vector<int>& line_of) {
  out.reserve(src.size());
  line_of.reserve(src.size());
  int line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\\') {
      // Allow trailing whitespace between the backslash and the
      // newline (compilers accept it with a warning; an evader would
      // lean on exactly that).
      std::size_t j = i + 1;
      while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (j < src.size() && src[j] == '\n') {
        ++line;
        i = j;  // drop the splice entirely
        continue;
      }
      if (j >= src.size()) break;  // backslash at EOF: drop
    }
    out.push_back(src[i]);
    line_of.push_back(line);
    if (src[i] == '\n') ++line;
  }
}

}  // namespace

SourceText preprocess_source(const std::string& src) {
  SourceText text;
  splice_lines(src, text.code, text.line_of);

  // Strip comments, string literals (raw strings included) and char
  // literals in place, preserving newlines so byte positions (and with
  // them line_of) stay aligned.
  std::string& out = text.code;
  enum class Mode { kCode, kLine, kBlock, kStr, kChar, kRaw } mode = Mode::kCode;
  std::string raw_close;  // )delim" terminating the active raw string
  std::size_t raw_match = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   out[i - 1])) &&
                               out[i - 1] != '_'))) {
          // R"delim( ... )delim" — find the delimiter, remember the
          // closer, blank everything including embedded quotes/parens.
          std::size_t d = i + 2;
          std::string delim;
          while (d < out.size() && out[d] != '(' && out[d] != '\n' &&
                 delim.size() <= 16) {
            delim.push_back(out[d]);
            ++d;
          }
          if (d < out.size() && out[d] == '(') {
            raw_close = ")" + delim + "\"";
            raw_match = 0;
            for (std::size_t j = i; j <= d; ++j) out[j] = ' ';
            i = d;
            mode = Mode::kRaw;
          }
          // Not a raw string opener (e.g. `R "x"` macro soup): leave
          // the R as code; the quote is handled on the next byte.
        } else if (c == '"') {
          mode = Mode::kStr;
          out[i] = ' ';
        } else if (c == '\'') {
          // Digit separators (1'000'000) are part of pp-numbers, not
          // char literals.
          const bool after_digit =
              i > 0 && (std::isalnum(static_cast<unsigned char>(out[i - 1])));
          if (!after_digit) {
            mode = Mode::kChar;
            out[i] = ' ';
          }
        }
        break;
      case Mode::kLine:
        if (c == '\n') {
          mode = Mode::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case Mode::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kRaw:
        if (c == raw_close[raw_match]) {
          ++raw_match;
          if (raw_match == raw_close.size()) {
            // Blank the closer (the body bytes were blanked on entry).
            for (std::size_t j = i + 1 - raw_close.size(); j <= i; ++j) {
              if (out[j] != '\n') out[j] = ' ';
            }
            mode = Mode::kCode;
          }
        } else {
          // Blank what a partial-closer rewind would have kept.
          raw_match = c == raw_close[0] ? 1 : 0;
        }
        if (mode == Mode::kRaw && c != '\n' && raw_match == 0) out[i] = ' ';
        if (mode == Mode::kRaw && raw_match > 0 && c != '\n') out[i] = ' ';
        break;
    }
  }
  return text;
}

std::vector<Tok> tokenize(const SourceText& text) {
  const std::string& code = text.code;
  std::vector<Tok> toks;
  std::size_t i = 0;
  auto line_at = [&](std::size_t pos) {
    return pos < text.line_of.size() ? text.line_of[pos] : 1;
  };
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < code.size() && is_ident(code[i])) ++i;
      toks.push_back({code.substr(start, i - start), line_at(start), true});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[i])) ||
              code[i] == '.' || code[i] == '\'')) {
        ++i;
      }
      toks.push_back({code.substr(start, i - start), line_at(start), false});
      continue;
    }
    // Multi-char operators the rules care about.
    const char next = i + 1 < code.size() ? code[i + 1] : '\0';
    if ((c == ':' && next == ':') || (c == '=' && next == '=') ||
        (c == '!' && next == '=') || (c == '<' && next == '<') ||
        (c == '-' && next == '>') || (c == '&' && next == '&') ||
        (c == '|' && next == '|')) {
      toks.push_back({std::string{c, next}, line_at(i), false});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), line_at(i), false});
    ++i;
  }
  return toks;
}

std::vector<Tok> lex(const std::string& src) {
  return tokenize(preprocess_source(src));
}

std::size_t match_paren(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

std::size_t match_angle(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">" && --depth == 0) return i;
    if (t == ";") break;  // ran off the statement: comparison, not <...>
  }
  return open;
}

std::size_t match_square(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "[") ++depth;
    if (toks[i].text == "]" && --depth == 0) return i;
  }
  return toks.size();
}

std::string left_operand(const std::vector<Tok>& toks, std::size_t i) {
  if (i == 0 || !toks[i - 1].ident) return {};
  return normalize_ident(toks[i - 1].text);
}

std::string right_operand(const std::vector<Tok>& toks, std::size_t i) {
  std::string last;
  while (i < toks.size()) {
    if (toks[i].ident) {
      last = normalize_ident(toks[i].text);
      ++i;
      if (i < toks.size() && (toks[i].text == "." || toks[i].text == "->")) {
        ++i;
        continue;
      }
      if (i < toks.size() && toks[i].text == "(") return {};
      break;
    }
    if (toks[i].text == "*" || toks[i].text == "&") {
      ++i;  // dereference of an optional/pointer operand
      continue;
    }
    break;
  }
  return last;
}

void add_finding(std::vector<Finding>& findings, const std::string& file,
                 int line, const std::string& rule,
                 const std::string& message) {
  for (const Finding& f : findings) {
    if (f.line == line && f.rule == rule) return;  // dedupe
  }
  findings.push_back({file, line, rule, message});
}

// ---------------------------------------------------------------------
// Legacy per-rule passes
// ---------------------------------------------------------------------

namespace {

/// True when the secret identifier at `i` is only used through an
/// allowed method (`.size()`, `.empty()`, or the audited
/// `.declassify(...)` gate).
bool sanitized_use(const std::vector<Tok>& toks, std::size_t i) {
  if (i + 2 >= toks.size()) return false;
  const std::string& dot = toks[i + 1].text;
  if (dot != "." && dot != "->") return false;
  return allowed_methods().count(normalize_ident(toks[i + 2].text)) > 0;
}

/// Flags raw secret identifiers inside [begin, end).
void scan_sink_region(const std::string& file, const std::vector<Tok>& toks,
                      std::size_t begin, std::size_t end,
                      const std::string& sink_name,
                      std::vector<Finding>& findings) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string norm = normalize_ident(toks[i].text);
    if (!secret_idents().count(norm)) continue;
    if (sanitized_use(toks, i)) continue;
    add_finding(findings, file, toks[i].line, "secret-sink",
                "key material `" + toks[i].text + "` reaches " + sink_name +
                    " without declassify()");
  }
}

/// Rule test-escape: the test-only declassification surface must not
/// appear in production code. secret.{h,cpp} define it and are exempt;
/// so is anything under a tests/ tree — unit tests comparing against
/// published vectors are the reason the surface exists.
void pass_test_escape(const std::string& file, const std::vector<Tok>& toks,
                      std::vector<Finding>& findings) {
  const std::string base = std::filesystem::path(file).filename().string();
  if (base == "secret.h" || base == "secret.cpp") return;
  if (path_contains(file, "tests/")) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.text == "kTestVector") {
      add_finding(findings, file, t.line, "test-escape",
                  "DeclassifyReason::kTestVector is test-only");
    }
    if (t.text == "reveal_for_test" && i > 0 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      add_finding(findings, file, t.line, "test-escape",
                  "reveal_for_test() is test-only");
    }
  }
}

/// Rule ct-compare: memcmp or ==/!= on MAC/RES*/AUTS verification
/// values instead of ct_equal (timing side channel on the auth path).
void pass_ct_compare(const std::string& file, const std::vector<Tok>& toks,
                     std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.text == "memcmp" && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      add_finding(findings, file, t.line, "ct-compare",
                  "memcmp is never constant-time here");
      continue;
    }
    if (t.text != "==" && t.text != "!=") continue;
    for (const std::string& ident :
         {left_operand(toks, i), right_operand(toks, i + 1)}) {
      if (!ident.empty() && ct_idents().count(ident)) {
        add_finding(findings, file, t.line, "ct-compare",
                    "`" + ident + "` compared with " + t.text +
                        "; use ct_equal()");
        break;
      }
    }
  }
}

/// Rule secret-sink: raw key material reaching a log stream, JSON
/// value, hex encoder or HTTP response body. src/paka/ is exempt: the
/// P-AKA modules are the enclave boundary and hand keys off through
/// their own audited declassification sites.
void pass_secret_sink(const std::string& file, const std::vector<Tok>& toks,
                      std::vector<Finding>& findings) {
  if (path_contains(file, "paka/")) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (!t.ident) continue;

    // S5G_LOG(...) << ... ;  — the whole statement is the sink.
    if (t.text == "S5G_LOG") {
      int depth = 0;
      std::size_t j = i;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (toks[j].text == ";" && depth == 0) break;
      }
      scan_sink_region(file, toks, i + 1, j, "a log stream", findings);
      continue;
    }

    // hex_encode(...) / hex_field(...) — argument list is the sink.
    if ((t.text == "hex_encode" || t.text == "hex_field") &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      scan_sink_region(file, toks, i + 2, match_paren(toks, i + 1),
                       t.text + "()", findings);
      continue;
    }

    // json::Value(...) and HttpResponse::json(...) constructions.
    const bool json_value = t.text == "json" && i + 3 < toks.size() &&
                            toks[i + 1].text == "::" &&
                            toks[i + 2].text == "Value" &&
                            toks[i + 3].text == "(";
    const bool http_body = t.text == "HttpResponse" && i + 3 < toks.size() &&
                           toks[i + 1].text == "::" &&
                           toks[i + 2].text == "json" &&
                           toks[i + 3].text == "(";
    if (json_value || http_body) {
      scan_sink_region(file, toks, i + 4, match_paren(toks, i + 3),
                       json_value ? "a json::Value" : "an HTTP response body",
                       findings);
    }
  }
}

/// Rule decl-mismatch: a plain `Bytes` declaration whose own trailing
/// comment says it holds a secret — the declaration and the comment
/// disagree, and the type should be SecretBytes.
void pass_decl_mismatch(const std::string& file, const std::string& raw,
                        std::vector<Finding>& findings) {
  std::istringstream in(raw);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t slash = line.find("//");
    if (slash == std::string::npos) continue;
    std::string comment = line.substr(slash + 2);
    std::transform(comment.begin(), comment.end(), comment.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (comment.find("secret") == std::string::npos) continue;
    const std::string code = line.substr(0, slash);
    // `Bytes name;` or `Bytes name =` with a word boundary before
    // `Bytes` (so SecretBytes does not match).
    for (std::size_t pos = code.find("Bytes"); pos != std::string::npos;
         pos = code.find("Bytes", pos + 1)) {
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(
                          code[pos - 1])) ||
                      code[pos - 1] == '_')) {
        continue;
      }
      std::size_t p = pos + 5;
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p]))) {
        ++p;
      }
      std::size_t name_start = p;
      while (p < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[p])) ||
              code[p] == '_')) {
        ++p;
      }
      if (p == name_start) continue;
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p]))) {
        ++p;
      }
      if (p < code.size() && (code[p] == ';' || code[p] == '=')) {
        findings.push_back(
            {file, lineno, "decl-mismatch",
             "comment declares a secret but the type is plain Bytes"});
        break;
      }
    }
  }
}

}  // namespace

void run_legacy_passes(const std::string& file, const std::string& raw,
                       const std::vector<Tok>& toks,
                       std::vector<Finding>& findings) {
  pass_test_escape(file, toks, findings);
  pass_ct_compare(file, toks, findings);
  pass_secret_sink(file, toks, findings);
  pass_decl_mismatch(file, raw, findings);
}

}  // namespace shield5g::lint
