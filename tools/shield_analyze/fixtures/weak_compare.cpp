// Seeded ct-compare violations: MAC/RES*/AUTS verification values
// compared with memcmp or operator== instead of ct_equal (a timing
// side channel on the authentication path, TS 33.501 §6.1.3.1).
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include <cstring>

#include "common/bytes.h"

namespace shield5g::fixture {

bool verify_mac(const Bytes& mac_a, const Bytes& expected) {
  return std::memcmp(mac_a.data(), expected.data(), 8) == 0;  // lint-expect(ct-compare)
}

bool verify_res(const Bytes& res_star, const Bytes& xres) {
  if (res_star == xres) {  // lint-expect(ct-compare)
    return true;
  }
  return false;
}

bool verify_resync(const Bytes& mac_s, const Bytes& auts) {
  // Benign: a length check is not a content compare.
  if (auts.size() != 14) return false;
  return slice_bytes(auts, 6, 8) != mac_s;  // lint-expect(ct-compare)
}

bool verify_ok(const Bytes& mac_a, const Bytes& expected) {
  // Benign: this is the required constant-time compare.
  return ct_equal(mac_a, expected);
}

}  // namespace shield5g::fixture
