// Seeded secret-sink violations: key material written into log, JSON
// and HTTP sinks without going through declassify(). Every annotated
// line must be reported by shield_analyze with file:line; the unmarked
// sink lines are sanitized uses and must NOT be flagged.
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include "common/hex.h"
#include "common/log.h"
#include "nf/sbi.h"

namespace shield5g::fixture {

void leak_to_log(const SecretBytes& kseaf, const SecretBytes& kamf) {
  S5G_LOG(LogLevel::kInfo, "ausf") << "kseaf=" << kseaf;  // lint-expect(secret-sink)
  // Benign: length of a secret is not the secret.
  S5G_LOG(LogLevel::kDebug, "ausf") << "kamf bytes: " << kamf.size();
}

json::Value leak_to_json(const SecretBytes& kausf, const nf::SubscriberRecord& rec,
                         const sgx::EnclaveContext* ctx) {
  json::Object out;
  out["kausf"] = json::Value(hex_encode(kausf));  // lint-expect(secret-sink)
  out["opc"] = nf::hex_field(rec.opc);  // lint-expect(secret-sink)
  // Benign: the audited escape hatch is exactly what declassify is for.
  out["kamf"] = json::Value(
      hex_encode(rec.k.declassify(DeclassifyReason::kTransport, ctx)));
  return json::Value(out);
}

net::HttpResponse leak_to_body(const SecretBytes& k) {
  return net::HttpResponse::json(200, to_string(k));  // lint-expect(secret-sink)
}

}  // namespace shield5g::fixture
