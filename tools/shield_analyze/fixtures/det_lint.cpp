// Seeded det-lint violations: nondeterminism sources in what pretends
// to be digest-affecting code — wall clocks, ambient randomness,
// hash-order iteration, and pointer-keyed ordered containers. The
// unmarked lines (vector iteration, string-keyed map, the det-audited
// line) are benign and must NOT be flagged.
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace shield5g::fixture {

std::uint64_t stamp_digest() {
  const auto t = std::chrono::steady_clock::now();  // lint-expect(det-lint)
  return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

std::uint64_t wall_now() {
  return static_cast<std::uint64_t>(std::time(nullptr));  // lint-expect(det-lint)
}

int ambient_noise() {
  std::random_device rd;  // lint-expect(det-lint)
  return static_cast<int>(rd());
}

int libc_noise() {
  return std::rand();  // lint-expect(det-lint)
}

std::uint64_t digest_counters(
    const std::unordered_map<std::string, std::uint64_t>& counters) {
  std::uint64_t digest = 0;
  for (const auto& [name, value] : counters) {  // lint-expect(det-lint)
    digest ^= value;
  }
  return digest;
}

std::unordered_set<int> live_ids;

int first_live() {
  return *live_ids.begin();  // lint-expect(det-lint)
}

std::map<const Session*, int> by_session;  // lint-expect(det-lint)

// Benign: the key is a deterministic string; pointer values are fine.
std::map<std::string, Session*> by_name;

// Benign: vector iteration order is deterministic.
std::uint64_t digest_list(const std::vector<std::uint64_t>& xs) {
  std::uint64_t d = 0;
  for (std::uint64_t x : xs) d ^= x;
  return d;
}

// Benign: audited wall-clock that feeds a log line, never a digest.
std::uint64_t log_stamp() {
  // det-audited(fixture: demonstrates the audited escape hatch)
  return static_cast<std::uint64_t>(std::time(nullptr));
}

}  // namespace shield5g::fixture
