// Seeded decl-mismatch violations: declarations whose own comment says
// the field holds a secret while the type is plain Bytes.
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#pragma once

#include "common/bytes.h"
#include "common/secret.h"

namespace shield5g::fixture {

struct SessionKeys {
  Bytes kamf;  // 32 — secret anchor key  lint-expect(decl-mismatch)
  Bytes knas;  // secret NAS key  lint-expect(decl-mismatch)
  // Benign: correctly typed secret.
  SecretBytes kseaf;  // 32 — secret serving key
  // Benign: public protocol material, no secret claim in the comment.
  Bytes rand;  // 16 — public challenge
};

}  // namespace shield5g::fixture
