// Seeded lock-lint violations: SHIELD_GUARDED_BY members touched
// outside a scope holding the named mutex, an atomic written without
// the lock, and a SHIELD_REQUIRES contract violated at a call site.
// The unmarked touches (under lock_guard, explicit .lock(), atomic
// reads, constructor bodies, thread-confined members, the
// lock-audited line) are benign and must NOT be flagged.
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include <atomic>
#include <mutex>

#include "common/thread_annotations.h"

namespace shield5g::fixture {

class SessionTable {
 public:
  void put(int id) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ = count_ + 1;
    ids_[id % 8] = id;
  }

  int racy_get(int id) {
    return ids_[id % 8];  // lint-expect(lock-lint)
  }

  void racy_bump() {
    count_ = count_ + 1;  // lint-expect(lock-lint)
  }

  void racy_epoch_bump() {
    epoch_.fetch_add(1);  // lint-expect(lock-lint)
  }

  std::uint32_t read_epoch() const {
    return epoch_.load();  // benign: atomic reads are wait-free
  }

  void rotate() {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.fetch_add(1);  // benign: write under the lock
  }

  void refill_locked() SHIELD_REQUIRES(mu_);

  void racy_refill() {
    refill_locked();  // lint-expect(lock-lint)
  }

  void safe_refill() {
    std::lock_guard<std::mutex> lock(mu_);
    refill_locked();  // benign: contract satisfied
  }

  void manual_lock() {
    mu_.lock();
    count_ = 1;  // benign: explicit lock held
    mu_.unlock();
    count_ = 2;  // lint-expect(lock-lint)
  }

  void audited_reset() {
    // lock-audited(fixture: demonstrates the audited escape hatch)
    count_ = 0;
  }

 private:
  std::mutex mu_;
  int ids_[8] SHIELD_GUARDED_BY(mu_);
  int count_ SHIELD_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint32_t> epoch_ SHIELD_GUARDED_BY(mu_){0};
};

struct Pool {
  Pool();
  ~Pool();
  std::mutex mu;
  int slots[4] SHIELD_GUARDED_BY(mu);
  int scratch[4] SHIELD_THREAD_CONFINED;

  void fill() {
    scratch[0] = 1;  // benign: thread-confined by declaration
  }
};

Pool::Pool() {
  slots[0] = 0;  // benign: no concurrency during construction
}

Pool::~Pool() {
  slots[0] = -1;  // benign: no concurrency during destruction
}

}  // namespace shield5g::fixture
