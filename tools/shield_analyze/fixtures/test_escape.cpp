// Seeded test-escape violations: the test-only declassification
// surface (reveal_for_test, DeclassifyReason::kTestVector) appearing
// in what pretends to be production code.
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include "common/secret.h"

namespace shield5g::fixture {

Bytes dump_key(const SecretBytes& kamf) {
  return kamf.reveal_for_test();  // lint-expect(test-escape)
}

Bytes dump_opc(const SecretBytes& opc) {
  return opc.declassify(DeclassifyReason::kTestVector, nullptr);  // lint-expect(test-escape)
}

Bytes handoff(const SecretBytes& kausf, const sgx::EnclaveContext* ctx) {
  // Benign: a production declassification reason with a context.
  return kausf.declassify(DeclassifyReason::kTransport, ctx);
}

}  // namespace shield5g::fixture
