// Regression fixture for the multi-line blind spot: a sink whose
// statement spans physical lines, an identifier split by a
// backslash-newline splice, and a raw string literal with an embedded
// quote — each of which evaded (or would desync) a per-line scanner.
// The token-level lexer folds splices and tracks raw strings, so all
// three sinks below must be flagged at the secret's own line.
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include "common/hex.h"
#include "common/log.h"

namespace shield5g::fixture {

void multiline_log(const SecretBytes& kseaf) {
  S5G_LOG(LogLevel::kInfo,
          "ausf")
      << "kseaf="
      << kseaf;  // lint-expect(secret-sink)
}

json::Value multiline_json(const SecretBytes& kausf) {
  return json::Value(
      hex_encode(
          kausf));  // lint-expect(secret-sink)
}

void spliced_sink(const SecretBytes& kamf) {
  S5G_\
LOG(LogLevel::kDebug, "amf") << kamf;  // lint-expect(secret-sink)
}

json::Value raw_string_then_sink(const SecretBytes& kgnb) {
  const char* banner = R"(an embedded " quote must not desync)";
  return json::Value(hex_encode(kgnb));  // lint-expect(secret-sink)
}

json::Value multiline_ok(const SecretBytes& knas_int,
                         const sgx::EnclaveContext* ctx) {
  // Benign: the audited gate, split across lines.
  return json::Value(hex_encode(knas_int.declassify(
      DeclassifyReason::kTransport, ctx)));
}

}  // namespace shield5g::fixture
