// Seeded ct-flow violations: secret-dependent control flow and memory
// access that the SecretBytes type system cannot see — branches,
// switches, ternaries, short-circuits, loops and table lookups driven
// by tainted values, including taint that flowed through a local
// assignment or a memcpy. The unmarked uses (size(), declassify(),
// the ct-audited line) are benign and must NOT be flagged.
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include "common/secret.h"

namespace shield5g::fixture {

int secret_branch(const SecretBytes& kamf, int fallback) {
  if (kamf[0] != 0) {  // lint-expect(ct-flow)
    return 1;
  }
  return fallback;
}

int secret_switch(const Secret<16>& opc) {
  switch (opc.unsafe_bytes()[0]) {  // lint-expect(ct-flow)
    case 0:
      return 1;
    default:
      return 2;
  }
}

int secret_ternary(const SecretBytes& kseaf) {
  bool flip = derive(kseaf);  // taint flows through the assignment
  return flip ? 1 : 0;  // lint-expect(ct-flow)
}

bool secret_shortcircuit(const SecretBytes& kgnb, bool ready) {
  return ready && kgnb[3];  // lint-expect(ct-flow)
}

std::uint8_t sbox_lookup(const Bytes& table, const SecretBytes& knas_int) {
  return table[knas_int[0]];  // lint-expect(ct-flow)
}

void secret_loop(const SecretBytes& knas_enc) {
  while (knas_enc.unsafe_bytes()[3]) {  // lint-expect(ct-flow)
    mix();
  }
}

void copy_then_branch(const SecretBytes& kausf, std::uint8_t* out) {
  std::uint8_t buf[32];
  std::memcpy(buf, kausf.unsafe_bytes().data(), 32);
  if (buf[0]) {  // lint-expect(ct-flow)
    out[0] = 1;
  }
}

// The 4-lane batch kernels take raw scalar arrays (the lane-sliced
// wire shape, no Secret type): ct-flow knows these entry points by
// name and seeds the scalar parameter.
void lanes_ladder4(const std::uint8_t k[4][32], std::uint8_t* out) {
  if (k[0][31] & 0x80) {  // lint-expect(ct-flow)
    out[0] = 1;
  }
}

// x25519_clamp() writes clamped key material: its destination is
// secret even when the scalar reached it through a struct member the
// lexical taint cannot see through.
void clamp_then_branch(const Bytes& wire, std::uint8_t* out) {
  std::uint8_t k[32];
  x25519_clamp(k, wire);
  if (k[0] & 1) {  // lint-expect(ct-flow)
    out[0] = 1;
  }
}

int benign_uses(const SecretBytes& kamf, const sgx::EnclaveContext* ctx) {
  // Benign: the length of a secret is public.
  if (kamf.size() != 32) return -1;
  // Benign: declassify() output is public by contract (audited gate).
  const Bytes pub = kamf.declassify(DeclassifyReason::kTransport, ctx);
  for (std::size_t i = 0; i < pub.size(); ++i) consume(pub[i]);
  // ct-audited(fixture: demonstrates the audited escape hatch)
  if (kamf[0] == 0) return -3;
  return 0;
}

}  // namespace shield5g::fixture
