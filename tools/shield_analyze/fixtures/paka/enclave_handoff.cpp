// Negative fixture: files under a paka/ directory are the enclave
// boundary — the P-AKA modules legitimately move key material through
// their declassification sites, so the secret-sink rule is exempt
// here. Nothing in this file may be flagged (no lint-expect markers).
//
// Fixture only — never compiled, only tokenized by the lint self-test.
#include "nf/sbi.h"

namespace shield5g::fixture::paka {

json::Value handoff(const SecretBytes& kausf,
                    const sgx::EnclaveContext* ctx) {
  json::Object out;
  out["kausf"] = json::Value(
      hex_encode(kausf.declassify(DeclassifyReason::kTransport, ctx)));
  return json::Value(out);
}

}  // namespace shield5g::fixture::paka
