// shield_analyze: multi-pass, statement-level dataflow analyzer for the
// shield5g tree. Builds on the shared lexer in lint_core.h and adds
// three rule families on top of the four legacy ones:
//
//   ct-flow   SecretBytes/Secret<N> taint propagated through local
//             assignments and parameters inside each TU; flags
//             secret-dependent branches (if/switch/ternary/
//             short-circuit), secret-indexed subscripts, and loops
//             bounded by tainted values. Whitelist with
//             `// ct-audited(<reason>)`.
//   det-lint  digest-affecting code (src/ only) must be deterministic:
//             no wall clocks, no ambient randomness outside
//             common/rng.cpp, no iteration over unordered containers,
//             no pointer-valued keys in ordered containers. Whitelist
//             with `// det-audited(<reason>)`.
//   lock-lint every member annotated SHIELD_GUARDED_BY(m) may only be
//             touched inside a scope that acquired m (atomics: writes
//             only; reads are wait-free by design). SHIELD_REQUIRES(m)
//             marks functions that must be entered with m held;
//             SHIELD_THREAD_CONFINED exempts per-thread state.
//             Whitelist with `// lock-audited(<reason>)`.
//
// Soundness limits (DESIGN.md §15): analysis is TU-local (plus the
// same-stem sibling header), lock scoping is lexical, and taint does
// not cross call boundaries. The audit annotations exist precisely to
// close the gap by hand — their counts are pinned in CI like
// declassify() sites.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_core.h"

namespace shield5g::lint {

struct ScanOptions {
  /// Fixture self-test mode: include /fixtures/ paths (skipped in
  /// normal scans — they are deliberately dirty) and force det-lint on
  /// regardless of the src/-only path scope.
  bool fixtures_mode = false;
};

/// Audited-annotation census across one scan. Pinned in CI so the
/// escape-hatch surface cannot grow silently.
struct AuditCounts {
  int ct = 0;      // // ct-audited(<reason>)
  int det = 0;     // // det-audited(<reason>)
  int lock = 0;    // // lock-audited(<reason>)
  int legacy = 0;  // // lint-audited(<rule>: <reason>)  (tests//tools/ only)
};

/// Suppression markers parsed from a file's raw text. A marker on line
/// N suppresses findings of its rule on line N and line N+1 (marker on
/// its own line above the flagged statement, or trailing on the same
/// line).
struct Audits {
  std::map<std::string, std::set<int>> lines;  // rule -> marker lines
  AuditCounts counts;
};

Audits parse_audits(const std::string& file, const std::string& raw);

// ---------------------------------------------------------------------
// New passes (implemented in ct_flow.cpp / det_lint.cpp / lock_lint.cpp)
// ---------------------------------------------------------------------

void run_ct_flow(const std::string& file, const std::vector<Tok>& toks,
                 std::vector<Finding>& findings);

/// `header_toks` are the tokens of the same-stem sibling header (empty
/// when scanning a header or a .cpp with no sibling): container
/// declarations living in the header are merged so iteration in the
/// .cpp is still seen.
void run_det_lint(const std::string& file, const std::vector<Tok>& toks,
                  const std::vector<Tok>& header_toks,
                  std::vector<Finding>& findings);

struct LockAnnotations {
  struct Member {
    std::string name;   // annotated member identifier
    std::string mutex;  // terminal identifier of the guarding mutex
    bool is_atomic = false;
  };
  std::vector<Member> guarded;
  std::map<std::string, std::string> requires_fn;  // function -> mutex
  std::set<std::string> thread_confined;
};

/// Collects SHIELD_GUARDED_BY / SHIELD_REQUIRES / SHIELD_THREAD_CONFINED
/// annotations from a token stream; `out` accumulates (call once for
/// the TU and once for its sibling header).
void collect_lock_annotations(const std::vector<Tok>& toks,
                              LockAnnotations& out);

void run_lock_lint(const std::string& file, const std::vector<Tok>& toks,
                   const LockAnnotations& ann,
                   std::vector<Finding>& findings);

// ---------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------

/// Runs all seven rule families over one in-memory source, applying
/// audit suppressions. `sibling_header` is the raw text of the
/// same-stem .h (empty when none); `audits` (optional) accumulates the
/// annotation census.
std::vector<Finding> analyze_source(const std::string& file,
                                    const std::string& src,
                                    const std::string& sibling_header = {},
                                    const ScanOptions& opts = {},
                                    AuditCounts* audits = nullptr);

/// Back-compat convenience used by the unit tests.
std::vector<Finding> scan_source(const std::string& file,
                                 const std::string& src);

/// Recursively scans every .h/.hpp/.cc/.cpp under `root` (sorted walk,
/// deterministic order). Normal mode skips any path containing
/// "/fixtures/" — fixture trees are deliberately dirty.
std::vector<Finding> scan_tree(const std::string& root,
                               const ScanOptions& opts = {},
                               AuditCounts* audits = nullptr);

/// Parses `// lint-expect(<rule>)` annotations under a fixture tree.
std::vector<Expectation> parse_expectations_tree(const std::string& root);

/// Exact two-way match between findings and expectations; false with
/// one error line per mismatch (missed seed or unexpected finding).
bool check_expectations(const std::vector<Finding>& findings,
                        const std::vector<Expectation>& expected,
                        std::vector<std::string>& errors);

// ---------------------------------------------------------------------
// Baseline (ratchet): grandfathered findings keyed by file + rule +
// message (line numbers excluded so unrelated edits don't churn it).
// The CI gate fails only when a key's finding count exceeds its
// baseline count — new findings always fail, old ones never block.
// ---------------------------------------------------------------------

/// Parses "count<TAB>file<TAB>[rule]<TAB>message" lines ('#' comments
/// and blank lines ignored) into key -> allowed count.
std::map<std::string, int> parse_baseline(const std::string& text);

/// Serializes findings into the baseline format (sorted, deduped with
/// counts).
std::string serialize_baseline(const std::vector<Finding>& findings);

/// Returns the findings NOT covered by the baseline.
std::vector<Finding> filter_with_baseline(
    const std::vector<Finding>& findings,
    const std::map<std::string, int>& baseline);

}  // namespace shield5g::lint
