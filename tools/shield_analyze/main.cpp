// shield_analyze CLI.
//
//   shield_analyze <tree> [...]            scan; findings on stdout as
//                                          file:line: [rule] message,
//                                          exit 1 on any finding
//   shield_analyze --baseline F <tree>...  suppress findings recorded in
//                                          baseline F; NEW findings
//                                          still exit 1
//   shield_analyze --write-baseline F ...  snapshot current findings
//                                          into F and exit 0
//   shield_analyze --self-test <tree>      fixture mode: findings must
//                                          match the tree's
//                                          lint-expect() annotations
//                                          exactly (100% flagged,
//                                          nothing extra)
//   shield_analyze --audit-counts ...      also print the audited-
//                                          annotation census (pinned
//                                          in CI like declassify sites)
//   shield_analyze --json ...              emit the run as a
//                                          self-validated JSON document
//                                          on stdout
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyze_core.h"
#include "json/json.h"

namespace {

using shield5g::lint::AuditCounts;
using shield5g::lint::Finding;

constexpr const char* kSchemaId = "shield5g.analyze.v1";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Re-parses the emitted document and checks the schema downstream
/// tooling depends on — same discipline as the BENCH_*.json emitters.
bool validate_json(const std::string& text) {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "shield_analyze: JSON validation failed: %s\n",
                 what);
    return false;
  };
  shield5g::json::Value doc;
  try {
    doc = shield5g::json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shield_analyze: emitted JSON does not parse: %s\n",
                 e.what());
    return false;
  }
  if (!doc.is_object()) return fail("root is not an object");
  const auto& root = doc.as_object();
  const auto it = root.find("schema");
  if (it == root.end() || !it->second.is_string() ||
      it->second.as_string() != kSchemaId) {
    return fail("schema id missing or wrong");
  }
  for (const char* key : {"findings", "new_findings"}) {
    const auto f = root.find(key);
    if (f == root.end() || !f->second.is_array()) return fail(key);
  }
  for (const char* key : {"audits", "counts"}) {
    const auto f = root.find(key);
    if (f == root.end() || !f->second.is_object()) return fail(key);
  }
  const auto clean = root.find("clean");
  if (clean == root.end() || !clean->second.is_bool()) return fail("clean");
  return true;
}

shield5g::json::Value findings_array(const std::vector<Finding>& findings) {
  shield5g::json::Array arr;
  for (const Finding& f : findings) {
    shield5g::json::Object obj;
    obj["file"] = shield5g::json::Value(f.file);
    obj["line"] = shield5g::json::Value(static_cast<std::int64_t>(f.line));
    obj["rule"] = shield5g::json::Value(f.rule);
    obj["message"] = shield5g::json::Value(f.message);
    arr.push_back(shield5g::json::Value(std::move(obj)));
  }
  return shield5g::json::Value(std::move(arr));
}

int emit_json(const std::vector<Finding>& all,
              const std::vector<Finding>& fresh, const AuditCounts& audits) {
  shield5g::json::Object root;
  root["schema"] = shield5g::json::Value(std::string(kSchemaId));
  root["findings"] = findings_array(all);
  root["new_findings"] = findings_array(fresh);
  shield5g::json::Object audit_obj;
  audit_obj["ct-audited"] =
      shield5g::json::Value(static_cast<std::int64_t>(audits.ct));
  audit_obj["det-audited"] =
      shield5g::json::Value(static_cast<std::int64_t>(audits.det));
  audit_obj["lock-audited"] =
      shield5g::json::Value(static_cast<std::int64_t>(audits.lock));
  audit_obj["lint-audited"] =
      shield5g::json::Value(static_cast<std::int64_t>(audits.legacy));
  root["audits"] = shield5g::json::Value(std::move(audit_obj));
  std::map<std::string, int> per_rule;
  for (const Finding& f : all) ++per_rule[f.rule];
  shield5g::json::Object counts;
  for (const auto& [rule, n] : per_rule) {
    counts[rule] = shield5g::json::Value(static_cast<std::int64_t>(n));
  }
  root["counts"] = shield5g::json::Value(std::move(counts));
  root["clean"] = shield5g::json::Value(fresh.empty());
  const std::string text =
      shield5g::json::Value(std::move(root)).dump() + "\n";
  if (!validate_json(text)) return 2;
  std::fputs(text.c_str(), stdout);
  return fresh.empty() ? 0 : 1;
}

int run_self_test(const std::string& root) {
  shield5g::lint::ScanOptions opts;
  opts.fixtures_mode = true;
  const auto findings = shield5g::lint::scan_tree(root, opts);
  const auto expected = shield5g::lint::parse_expectations_tree(root);
  if (expected.empty()) {
    std::fprintf(stderr,
                 "shield_analyze: no lint-expect() annotations under %s\n",
                 root.c_str());
    return 1;
  }
  std::vector<std::string> errors;
  if (!shield5g::lint::check_expectations(findings, expected, errors)) {
    for (const std::string& err : errors) {
      std::fprintf(stderr, "shield_analyze self-test: %s\n", err.c_str());
    }
    return 1;
  }
  std::printf(
      "shield_analyze self-test: %zu/%zu seeded violations flagged\n",
      expected.size(), expected.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline_path;
  std::string write_baseline_path;
  bool self_test = false;
  bool json_mode = false;
  bool audit_counts = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--json") {
      json_mode = true;
    } else if (arg == "--audit-counts") {
      audit_counts = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: shield_analyze [--self-test] [--json] "
                 "[--audit-counts] [--baseline FILE] "
                 "[--write-baseline FILE] <tree> [...]\n");
    return 2;
  }
  if (self_test) return run_self_test(roots.front());

  AuditCounts audits;
  std::vector<Finding> all;
  for (const std::string& root : roots) {
    const auto found = shield5g::lint::scan_tree(root, {}, &audits);
    all.insert(all.end(), found.begin(), found.end());
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << shield5g::lint::serialize_baseline(all);
    std::printf("shield_analyze: wrote baseline (%zu finding(s)) to %s\n",
                all.size(), write_baseline_path.c_str());
    return 0;
  }

  std::vector<Finding> fresh = all;
  if (!baseline_path.empty()) {
    fresh = shield5g::lint::filter_with_baseline(
        all, shield5g::lint::parse_baseline(read_file(baseline_path)));
  }

  if (json_mode) return emit_json(all, fresh, audits);

  for (const Finding& f : fresh) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (audit_counts) {
    std::printf("ct-audited=%d\ndet-audited=%d\nlock-audited=%d\n"
                "lint-audited=%d\n",
                audits.ct, audits.det, audits.lock, audits.legacy);
  }
  if (!fresh.empty()) {
    std::fprintf(stderr, "shield_analyze: %zu new finding(s)\n",
                 fresh.size());
    return 1;
  }
  std::printf("shield_analyze: clean\n");
  return 0;
}
