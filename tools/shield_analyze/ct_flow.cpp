// ct-flow: TU-local taint propagation for secret-dependent control flow
// and memory access. The type system in src/common/secret.h stops raw
// secret bytes from reaching sinks, but it cannot see a branch on a
// tainted bool or a table lookup indexed by a key byte — those are the
// timing/side-channel classes this pass closes.
//
// Model (per function, lexically delimited):
//   seeds    declarations and parameters typed SecretBytes / SecretView
//            / Secret<N>, and anything assigned from .unsafe_bytes().
//   flow     `lhs = rhs` and compound assignments taint lhs when rhs
//            mentions a tainted value; memcpy/memmove taint their
//            destination. declassify() output is public (the audited
//            gate), as are .size()/.empty().
//   flags    tainted value inside an if/switch/while condition, a for
//            bound, a ternary condition, a short-circuit operand, or an
//            array subscript.
// Escape hatch: `// ct-audited(<reason>)` on or above the line.
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze_core.h"

namespace shield5g::lint {
namespace {

const std::unordered_set<std::string>& secret_types() {
  static const std::unordered_set<std::string> kSet{
      "SecretBytes", "SecretView", "Secret"};
  return kSet;
}

/// Methods whose result is public even when called on a secret.
bool public_method(const std::string& name) {
  return name == "size" || name == "empty" || name == "declassify";
}

/// Crypto entry points whose key material arrives as plain byte arrays
/// — the 4-lane batch kernels take scalars in the lane-sliced wire
/// shape (uint8_t k[4][32]), which the Secret type system cannot mark.
/// Seeding the named parameter keeps secret-dependent control flow
/// inside the kernels visible to this pass.
const std::unordered_map<std::string, std::vector<std::string>>&
entry_point_secret_params() {
  static const std::unordered_map<std::string, std::vector<std::string>>
      kMap{
          {"lanes_ladder4", {"k"}},
          {"x25519_x4_ladder4", {"k"}},
          {"x25519_ifma_ladder4", {"k"}},
      };
  return kMap;
}

bool keyword(const std::string& t) {
  static const std::unordered_set<std::string> kSet{
      "if",     "for",    "while",  "switch", "return", "sizeof",
      "catch",  "new",    "delete", "else",   "do",     "case",
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
  };
  return kSet.count(t) > 0;
}

std::size_t match_brace(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i;
  }
  return toks.size();
}

/// One function's analysis over toks[begin, end] (param-list open paren
/// through body close brace).
class FunctionTaint {
 public:
  FunctionTaint(const std::string& file, const std::string& name,
                const std::vector<Tok>& toks, std::size_t begin,
                std::size_t end)
      : file_(file), name_(name), toks_(toks), begin_(begin), end_(end) {}

  void analyze(std::vector<Finding>& findings) {
    seed();
    propagate();
    flag(findings);
  }

 private:
  bool tainted(const std::string& ident) const {
    return taint_.count(normalize_ident(ident)) > 0;
  }

  /// Secret-typed declaration at i? Returns the declared identifier's
  /// token index (or 0 when not a declaration).
  std::size_t declared_ident(std::size_t i) const {
    if (!secret_types().count(toks_[i].text)) return 0;
    std::size_t j = i + 1;
    if (toks_[i].text == "Secret") {
      if (j >= end_ || toks_[j].text != "<") return 0;  // e.g. "Secret sauce"
      const std::size_t close = match_angle(toks_, j);
      if (close == j) return 0;
      j = close + 1;
    }
    while (j < end_ &&
           (toks_[j].text == "const" || toks_[j].text == "&" ||
            toks_[j].text == "*")) {
      ++j;
    }
    if (j < end_ && toks_[j].ident && !keyword(toks_[j].text)) return j;
    return 0;
  }

  void seed() {
    for (std::size_t i = begin_; i <= end_ && i < toks_.size(); ++i) {
      const std::size_t decl = declared_ident(i);
      if (decl != 0) taint_.insert(normalize_ident(toks_[decl].text));
    }
    // Known entry points: the batch kernels' raw-array scalars.
    const auto& entries = entry_point_secret_params();
    const auto it = entries.find(name_);
    if (it == entries.end()) return;
    const std::size_t close = match_paren(toks_, begin_);
    for (std::size_t i = begin_ + 1; i < close && i < toks_.size(); ++i) {
      if (!toks_[i].ident) continue;
      const std::string norm = normalize_ident(toks_[i].text);
      for (const std::string& param : it->second) {
        if (norm == param) taint_.insert(norm);
      }
    }
  }

  /// True when [from, to) mentions a tainted value whose use is not
  /// sanitized, or the raw-bytes escape hatch.
  bool region_tainted(std::size_t from, std::size_t to) const {
    for (std::size_t i = from; i < to && i < toks_.size(); ++i) {
      if (!toks_[i].ident) continue;
      // ct_equal()'s boolean is safe to branch on by construction —
      // that is the whole point of the constant-time compare.
      if (toks_[i].text == "ct_equal" && i + 1 < toks_.size() &&
          toks_[i + 1].text == "(") {
        i = match_paren(toks_, i + 1);
        continue;
      }
      if (toks_[i].text == "unsafe_bytes") return true;
      if (!tainted(toks_[i].text)) continue;
      if (sanitized(i)) continue;
      return true;
    }
    return false;
  }

  /// True when [from, to) routes through the declassify() audit gate —
  /// its output is public by contract.
  bool declassified(std::size_t from, std::size_t to) const {
    for (std::size_t i = from; i < to && i < toks_.size(); ++i) {
      if (toks_[i].text == "declassify") return true;
    }
    return false;
  }

  /// Use at i is public: `x.size()`, `x.empty()`, or the declassify()
  /// audit gate.
  bool sanitized(std::size_t i) const {
    if (i + 2 >= toks_.size()) return false;
    const std::string& dot = toks_[i + 1].text;
    if (dot != "." && dot != "->") return false;
    return public_method(toks_[i + 2].text);
  }

  void propagate() {
    // Fixpoint over assignment statements: lexical order means a
    // single pass usually converges, but `a = b; ...; c = a;` across
    // loop bodies needs the repeat.
    for (int round = 0; round < 8; ++round) {
      const std::size_t before = taint_.size();
      for (std::size_t i = begin_; i <= end_ && i < toks_.size(); ++i) {
        propagate_assignment(i);
        propagate_memcpy(i);
        propagate_clamp(i);
      }
      if (taint_.size() == before) break;
    }
  }

  /// `lhs = rhs` / `lhs += rhs` with a tainted rhs taints lhs.
  void propagate_assignment(std::size_t i) {
    if (toks_[i].text != "=") return;
    if (i == 0 || i + 1 >= toks_.size()) return;
    const std::string& prev = toks_[i - 1].text;
    if (prev == "<" || prev == ">" || prev == "=" || prev == "!") return;
    std::size_t lhs = i - 1;
    if (prev == "+" || prev == "-" || prev == "*" || prev == "/" ||
        prev == "%" || prev == "&" || prev == "|" || prev == "^") {
      if (lhs == 0) return;
      --lhs;  // compound assignment tokenizes as op then '='
    }
    // Walk back over a balanced subscript to the base identifier.
    if (toks_[lhs].text == "]") {
      int depth = 0;
      while (lhs > begin_) {
        if (toks_[lhs].text == "]") ++depth;
        if (toks_[lhs].text == "[" && --depth == 0) break;
        --lhs;
      }
      if (lhs > begin_) --lhs;
    }
    if (!toks_[lhs].ident) return;
    // RHS region runs to the statement end.
    std::size_t end = i + 1;
    int paren = 0;
    while (end < toks_.size() && end <= end_) {
      const std::string& t = toks_[end].text;
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if ((t == ";" || t == "{") && paren <= 0) break;
      ++end;
    }
    if (declassified(i + 1, end)) return;  // audited gate: public output
    if (region_tainted(i + 1, end)) {
      taint_.insert(normalize_ident(toks_[lhs].text));
    }
  }

  /// Base identifier of the first call argument and the index of the
  /// comma ending it (== close when there is no second argument). The
  /// base is the first top-level identifier — `k4[l]` is the array k4,
  /// not the subscript l — skipping anything nested in () or [].
  std::size_t first_arg_base(std::size_t open, std::size_t close,
                             std::string& base) const {
    std::size_t j = open + 1;
    int depth = 0;
    for (; j < close; ++j) {
      const std::string& tok = toks_[j].text;
      if (tok == "(" || tok == "[") ++depth;
      if (tok == ")" || tok == "]") --depth;
      if (tok == "," && depth == 0) break;
      if (depth == 0 && base.empty() && toks_[j].ident &&
          !keyword(toks_[j].text)) {
        base = toks_[j].text;
      }
    }
    return j;
  }

  /// memcpy/memmove with a tainted source taints the destination base.
  void propagate_memcpy(std::size_t i) {
    const std::string& t = toks_[i].text;
    if (t != "memcpy" && t != "memmove") return;
    if (i + 1 >= toks_.size() || toks_[i + 1].text != "(") return;
    const std::size_t close = match_paren(toks_, i + 1);
    std::string dst;
    const std::size_t comma = first_arg_base(i + 1, close, dst);
    if (dst.empty() || comma >= close) return;
    if (region_tainted(comma, close)) taint_.insert(normalize_ident(dst));
  }

  /// x25519_clamp(dst, scalar) writes clamped key material: the
  /// destination is secret no matter how the scalar arrived — the
  /// batch path hands it over inside X25519BatchItem, which lexical
  /// taint cannot see through, so the destination seeds unconditionally.
  void propagate_clamp(std::size_t i) {
    if (toks_[i].text != "x25519_clamp") return;
    if (i + 1 >= toks_.size() || toks_[i + 1].text != "(") return;
    const std::size_t close = match_paren(toks_, i + 1);
    std::string dst;
    first_arg_base(i + 1, close, dst);
    if (!dst.empty()) taint_.insert(normalize_ident(dst));
  }

  void flag(std::vector<Finding>& findings) const {
    for (std::size_t i = begin_; i <= end_ && i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if ((t == "if" || t == "while" || t == "switch" || t == "for") &&
          i + 1 < toks_.size() && toks_[i + 1].text == "(") {
        const std::size_t close = match_paren(toks_, i + 1);
        if (region_tainted(i + 2, close)) {
          const char* what =
              t == "switch"
                  ? "switch on a secret-derived value"
                  : (t == "if" ? "branch on a secret-derived value"
                               : "loop bounded by a secret-derived value");
          add_finding(findings, file_, toks_[i].line, "ct-flow",
                      std::string(what) + "; make it constant-time or "
                      "annotate ct-audited(<reason>)");
        }
      } else if (t == "?") {
        if (ternary_cond_tainted(i)) {
          add_finding(findings, file_, toks_[i].line, "ct-flow",
                      "ternary selected by a secret-derived value");
        }
      } else if (t == "&&" || t == "||") {
        const std::string lhs = left_operand(toks_, i);
        const std::string rhs = right_operand(toks_, i + 1);
        if ((!lhs.empty() && taint_.count(lhs) && !sanitized_at(i - 1)) ||
            (!rhs.empty() && taint_.count(rhs))) {
          add_finding(findings, file_, toks_[i].line, "ct-flow",
                      "short-circuit on a secret-derived value");
        }
      } else if (t == "[" && i > begin_ && toks_[i - 1].ident &&
                 !keyword(toks_[i - 1].text)) {
        const std::size_t close = match_square(toks_, i);
        if (region_tainted(i + 1, close)) {
          add_finding(findings, file_, toks_[i].line, "ct-flow",
                      "array subscript indexed by a secret-derived value");
        }
      }
    }
  }

  bool sanitized_at(std::size_t i) const {
    return toks_[i].ident && sanitized(i);
  }

  /// Condition of `cond ? a : b`: scan back from '?' to the nearest
  /// expression boundary.
  bool ternary_cond_tainted(std::size_t q) const {
    int paren = 0;
    for (std::size_t i = q; i-- > begin_;) {
      const std::string& t = toks_[i].text;
      if (t == ")") ++paren;
      if (t == "(") {
        if (paren == 0) break;
        --paren;
      }
      if (paren == 0 &&
          (t == ";" || t == "{" || t == "}" || t == "," || t == "=" ||
           t == "return")) {
        break;
      }
      if (paren == 0 && toks_[i].ident && tainted(t) && !sanitized(i)) {
        return true;
      }
    }
    return false;
  }

  const std::string& file_;
  std::string name_;
  const std::vector<Tok>& toks_;
  std::size_t begin_;
  std::size_t end_;
  std::unordered_set<std::string> taint_;
};

}  // namespace

void run_ct_flow(const std::string& file, const std::vector<Tok>& toks,
                 std::vector<Finding>& findings) {
  // Lexical function discovery: `ident ( ... ) [qualifiers] {` at any
  // nesting level; the body (and its lambdas) is one taint scope.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "(" || i == 0) continue;
    const Tok& name = toks[i - 1];
    if (!name.ident || keyword(name.text)) continue;
    const std::size_t close = match_paren(toks, i);
    if (close >= toks.size()) continue;
    std::size_t j = close + 1;
    bool init_list = false;
    while (j < toks.size()) {
      const std::string& t = toks[j].text;
      if (t == "const" || t == "noexcept" || t == "override" ||
          t == "final" || t == "mutable" || t == "->" || t == "::" ||
          t == "<" || t == ">" || toks[j].ident) {
        if (t == "SHIELD_REQUIRES" && j + 1 < toks.size() &&
            toks[j + 1].text == "(") {
          j = match_paren(toks, j + 1) + 1;
          continue;
        }
        ++j;
        continue;
      }
      if (t == ":" && !init_list) {  // constructor init list
        init_list = true;
        while (j < toks.size() && toks[j].text != "{") ++j;
        continue;
      }
      break;
    }
    if (j >= toks.size() || toks[j].text != "{") continue;
    const std::size_t body_end = match_brace(toks, j);
    FunctionTaint(file, normalize_ident(name.text), toks, i, body_end)
        .analyze(findings);
    i = body_end;
  }
}

}  // namespace shield5g::lint
