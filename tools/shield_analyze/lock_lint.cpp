// lock-lint: lexical lock-discipline checking over the
// SHIELD_GUARDED_BY / SHIELD_REQUIRES / SHIELD_THREAD_CONFINED
// annotations (src/common/thread_annotations.h). Every touch of an
// annotated member must sit lexically inside a scope that acquired the
// named mutex — via lock_guard/unique_lock/scoped_lock/shared_lock, an
// explicit .lock(), or a SHIELD_REQUIRES contract on the enclosing
// function. Atomic members relax to writes-only (lock-free readers are
// the point of the x25519 publish slots); constructors/destructors are
// exempt (no concurrent access before/after the object's lifetime).
//
// Soundness limits (DESIGN.md §15): scoping is lexical — a lock
// released early via unique_lock::unlock() is tracked, but a lock
// handed across a call boundary is not; aliasing two mutexes with the
// same terminal name is not distinguished.
// Escape hatch: `// lock-audited(<reason>)`.
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyze_core.h"

namespace shield5g::lint {
namespace {

bool is_lock_holder(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock";
}

bool atomic_write_method(const std::string& t) {
  return t == "store" || t == "exchange" || t == "fetch_add" ||
         t == "fetch_sub" || t == "fetch_or" || t == "fetch_and" ||
         t == "fetch_xor" || t == "compare_exchange_weak" ||
         t == "compare_exchange_strong";
}

/// Walks back over one balanced [...] (array declarator) to the
/// declared identifier; returns the identifier index or npos.
std::size_t ident_before(const std::vector<Tok>& toks, std::size_t i) {
  if (i == 0) return std::string::npos;
  std::size_t j = i - 1;
  if (toks[j].text == "]") {
    int depth = 0;
    while (j > 0) {
      if (toks[j].text == "]") ++depth;
      if (toks[j].text == "[" && --depth == 0) break;
      --j;
    }
    if (j == 0) return std::string::npos;
    --j;
  }
  return toks[j].ident ? j : std::string::npos;
}

/// Terminal identifier of the expression in toks[open+1, close): the
/// last plain identifier, so `state_->mutex` and `shard.mutex` both
/// resolve to `mutex`.
std::string terminal_ident(const std::vector<Tok>& toks, std::size_t from,
                           std::size_t to) {
  std::string last;
  for (std::size_t i = from; i < to && i < toks.size(); ++i) {
    if (toks[i].ident) last = toks[i].text;
  }
  return last;
}

/// True when the declaration containing the member at `m` names a
/// std::atomic type (scan back to the previous statement boundary).
bool declared_atomic(const std::vector<Tok>& toks, std::size_t m) {
  for (std::size_t i = m; i-- > 0;) {
    const std::string& t = toks[i].text;
    if (t == ";" || t == "{" || t == "}") return false;
    if (t == "atomic") return true;
  }
  return false;
}

}  // namespace

void collect_lock_annotations(const std::vector<Tok>& toks,
                              LockAnnotations& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "SHIELD_GUARDED_BY" && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const std::size_t close = match_paren(toks, i + 1);
      const std::size_t member = ident_before(toks, i);
      const std::string mutex = terminal_ident(toks, i + 2, close);
      if (member != std::string::npos && !mutex.empty()) {
        out.guarded.push_back({toks[member].text, mutex,
                               declared_atomic(toks, member)});
      }
    } else if (t == "SHIELD_THREAD_CONFINED") {
      const std::size_t member = ident_before(toks, i);
      if (member != std::string::npos) {
        out.thread_confined.insert(toks[member].text);
      }
    } else if (t == "SHIELD_REQUIRES" && i + 1 < toks.size() &&
               toks[i + 1].text == "(") {
      const std::size_t close = match_paren(toks, i + 1);
      const std::string mutex = terminal_ident(toks, i + 2, close);
      // The annotated function: `... name(params) SHIELD_REQUIRES(m)`.
      if (i > 0 && toks[i - 1].text == ")" && !mutex.empty()) {
        int depth = 0;
        std::size_t j = i - 1;
        while (j > 0) {
          if (toks[j].text == ")") ++depth;
          if (toks[j].text == "(" && --depth == 0) break;
          --j;
        }
        if (j > 0 && toks[j - 1].ident) {
          out.requires_fn[toks[j - 1].text] = mutex;
        }
      }
      i = close;
    }
  }
}

void run_lock_lint(const std::string& file, const std::vector<Tok>& toks,
                   const LockAnnotations& ann,
                   std::vector<Finding>& findings) {
  if (ann.guarded.empty() && ann.requires_fn.empty()) return;

  std::map<std::string, const LockAnnotations::Member*> members;
  for (const auto& m : ann.guarded) members[m.name] = &m;

  struct Held {
    std::string mutex;
    int depth;
  };
  std::vector<Held> held;
  int depth = 0;
  int exempt_depth = -1;   // ctor/dtor body: no concurrency yet
  bool pending_exempt = false;
  bool saw_question = false;  // disambiguates `) :` init list vs ternary

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;

    if (t == "{") {
      ++depth;
      if (pending_exempt && exempt_depth < 0) exempt_depth = depth;
      pending_exempt = false;
      saw_question = false;
      continue;
    }
    if (t == "}") {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      if (exempt_depth >= 0 && depth < exempt_depth) exempt_depth = -1;
      saw_question = false;
      continue;
    }
    if (t == ";") {
      saw_question = false;
      pending_exempt = pending_exempt && false;
      continue;
    }
    if (t == "?") {
      saw_question = true;
      continue;
    }

    // Constructor / destructor definition heads: `A::A(` and `::~A(`.
    if (t == "::" && i + 2 < toks.size()) {
      if (toks[i + 1].text == "~") {
        pending_exempt = true;
      } else if (i > 0 && toks[i - 1].ident && toks[i + 1].ident &&
                 toks[i - 1].text == toks[i + 1].text &&
                 toks[i + 2].text == "(") {
        pending_exempt = true;
      }
      continue;
    }

    // Member-initializer list: skip `) : a_(x), b_(y)` up to the body.
    if (t == ":" && i > 0 && toks[i - 1].text == ")" && !saw_question) {
      while (i + 1 < toks.size() && toks[i + 1].text != "{") ++i;
      continue;
    }

    if (!toks[i].ident) continue;

    // RAII acquisition: lock_guard<...> name(mutexes...).
    if (is_lock_holder(t)) {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {
        const std::size_t close = match_angle(toks, j);
        if (close != j) j = close + 1;
      }
      if (j < toks.size() && toks[j].ident) ++j;  // variable name
      if (j < toks.size() && toks[j].text == "(") {
        const std::size_t close = match_paren(toks, j);
        // scoped_lock may take several mutexes.
        std::size_t arg = j + 1;
        int pdepth = 0;
        std::size_t arg_start = arg;
        for (; arg <= close && arg < toks.size(); ++arg) {
          const std::string& a = toks[arg].text;
          if (a == "(" || a == "[") ++pdepth;
          if (a == ")" || a == "]") {
            if (a == ")" && arg == close) {
              const std::string m = terminal_ident(toks, arg_start, arg);
              if (!m.empty()) held.push_back({m, depth});
              break;
            }
            --pdepth;
          }
          if (a == "," && pdepth == 0) {
            const std::string m = terminal_ident(toks, arg_start, arg);
            if (!m.empty()) held.push_back({m, depth});
            arg_start = arg + 1;
          }
        }
        i = close;
      }
      continue;
    }

    // Explicit mu.lock() / mu.unlock().
    if ((t == "lock" || t == "unlock") && i >= 2 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i - 2].ident && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const std::string m = toks[i - 2].text;
      if (t == "lock") {
        held.push_back({m, depth});
      } else {
        for (std::size_t h = held.size(); h-- > 0;) {
          if (held[h].mutex == m) {
            held.erase(held.begin() + static_cast<std::ptrdiff_t>(h));
            break;
          }
        }
      }
      continue;
    }

    const auto holds = [&](const std::string& mutex) {
      for (const Held& h : held) {
        if (h.mutex == mutex) return true;
      }
      return false;
    };

    // SHIELD_REQUIRES functions: a definition's body runs with the
    // contract mutex held; a call site must already hold it.
    const auto req = ann.requires_fn.find(t);
    if (req != ann.requires_fn.end() && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const std::size_t close = match_paren(toks, i + 1);
      std::size_t j = close + 1;
      bool annotated_decl = false;
      while (j < toks.size()) {
        const std::string& q = toks[j].text;
        if (q == "SHIELD_REQUIRES" && j + 1 < toks.size() &&
            toks[j + 1].text == "(") {
          annotated_decl = true;
          j = match_paren(toks, j + 1) + 1;
          continue;
        }
        if (q == "const" || q == "noexcept" || q == "override" ||
            q == "final") {
          ++j;
          continue;
        }
        break;
      }
      if (j < toks.size() && toks[j].text == "{") {
        // Definition: body executes under the contract.
        held.push_back({req->second, depth + 1});
      } else if (!annotated_decl && exempt_depth < 0 &&
                 !holds(req->second)) {
        add_finding(findings, file, toks[i].line, "lock-lint",
                    "call to " + t + "() requires `" + req->second +
                        "` held (SHIELD_REQUIRES)");
      }
      continue;
    }

    // Guarded-member touch.
    const auto it = members.find(t);
    if (it == members.end()) continue;
    if (ann.thread_confined.count(t)) continue;
    // The declaration site itself (annotation adjacent, possibly past
    // an array declarator).
    {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "[") {
        const std::size_t close = match_square(toks, j);
        if (close < toks.size()) j = close + 1;
      }
      if (j < toks.size() && (toks[j].text == "SHIELD_GUARDED_BY" ||
                              toks[j].text == "SHIELD_THREAD_CONFINED")) {
        continue;
      }
    }
    if (exempt_depth >= 0 && depth >= exempt_depth) continue;
    const LockAnnotations::Member& m = *it->second;
    if (m.is_atomic) {
      // Reads are wait-free by design; only mutations need the lock.
      bool write = false;
      if (i + 1 < toks.size()) {
        const std::string& n = toks[i + 1].text;
        if (n == "=") write = true;
        if ((n == "+" || n == "-" || n == "|" || n == "&" || n == "^") &&
            i + 2 < toks.size() && toks[i + 2].text == "=") {
          write = true;
        }
        if ((n == "+" || n == "-") && i + 2 < toks.size() &&
            toks[i + 2].text == n) {
          write = true;  // postfix ++/--
        }
        if ((n == "." || n == "->") && i + 2 < toks.size() &&
            atomic_write_method(toks[i + 2].text)) {
          write = true;
        }
      }
      if (i >= 2 && toks[i - 1].text == toks[i - 2].text &&
          (toks[i - 1].text == "+" || toks[i - 1].text == "-")) {
        write = true;  // prefix ++/--
      }
      if (!write) continue;
      if (!holds(m.mutex)) {
        add_finding(findings, file, toks[i].line, "lock-lint",
                    "write to atomic `" + t + "` (guarded by `" + m.mutex +
                        "`) outside the lock");
      }
      continue;
    }
    if (!holds(m.mutex)) {
      add_finding(findings, file, toks[i].line, "lock-lint",
                  "`" + t + "` (guarded by `" + m.mutex +
                      "`) touched without the lock held");
    }
  }
}

}  // namespace shield5g::lint
