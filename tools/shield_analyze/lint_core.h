// shield_analyze lexing core + the four legacy token-level rules.
//
// The SecretBytes type system (src/common/secret.h) makes most leaks a
// compile error; these passes catch the patterns a type check cannot:
// raw key-material identifiers written into log/JSON/HTTP sinks via an
// escape hatch, non-constant-time comparison of authentication tokens,
// the test-only declassification reason appearing in production code,
// and `Bytes` declarations whose own comment claims they hold a secret.
// The dataflow families on top (ct-flow, det-lint, lock-lint) live in
// analyze_core.h and share this lexer.
//
// Deliberately no libclang: a tokenizer plus per-statement scanning is
// enough for these rules and keeps the tool dependency-free. The lexer
// is physical-line aware: backslash-newline splices are folded (so a
// spliced `S5G_\<newline>LOG` cannot evade the sink rules), raw string
// literals are stripped without tripping on embedded quotes, and every
// token still carries its original 1-based line number.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace shield5g::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;  // path as passed to the scanner
  int line = 0;      // 1-based
  std::string rule;  // secret-sink | ct-compare | test-escape |
                     // decl-mismatch | ct-flow | det-lint | lock-lint
  std::string message;
};

/// A `// lint-expect(rule)` annotation inside a fixture file.
struct Expectation {
  std::string file;
  int line = 0;
  std::string rule;
};

// ---------------------------------------------------------------------
// Lexer (shared by every pass)
// ---------------------------------------------------------------------

/// Source after physical-line preprocessing: backslash-newline splices
/// removed, comments / string literals / char literals blanked to
/// spaces (raw strings included), newlines preserved. `line_of[i]` is
/// the original 1-based line of `code[i]` — splices shift bytes, so a
/// byte's line can no longer be derived by counting '\n'.
struct SourceText {
  std::string code;
  std::vector<int> line_of;
};

/// Splices physical lines and strips comments/literals.
SourceText preprocess_source(const std::string& src);

struct Tok {
  std::string text;
  int line = 0;
  bool ident = false;
};

std::vector<Tok> tokenize(const SourceText& text);

/// preprocess_source + tokenize in one step.
std::vector<Tok> lex(const std::string& src);

/// Index of the token closing the paren group opened at `open` (which
/// must be "("); toks.size() when unbalanced.
std::size_t match_paren(const std::vector<Tok>& toks, std::size_t open);

/// Same for an angle-bracket group at `open` ("<"), used to skip
/// template argument lists. Returns `open` when the group does not
/// close before a ";" — a lone less-than is a comparison, not a
/// template list.
std::size_t match_angle(const std::vector<Tok>& toks, std::size_t open);

/// Same for a square-bracket group at `open` ("[").
std::size_t match_square(const std::vector<Tok>& toks, std::size_t open);

/// Lowercases and strips trailing underscores: `Kausf`, `kamf_` and
/// `rec.opc`'s terminal all normalize to their key-hierarchy name.
std::string normalize_ident(const std::string& ident);

bool path_contains(const std::string& path, const std::string& piece);

/// Terminal identifier of the member chain ending just before token
/// `i` (for `fields.mac_a ==` that is `mac_a`), normalized. Empty
/// after `)` — a call result compares a derived scalar.
std::string left_operand(const std::vector<Tok>& toks, std::size_t i);

/// Terminal identifier of the member chain starting at `i` moving
/// right, normalized; empty when the chain ends in a call.
std::string right_operand(const std::vector<Tok>& toks, std::size_t i);

/// Appends a finding deduped by (line, rule).
void add_finding(std::vector<Finding>& findings, const std::string& file,
                 int line, const std::string& rule,
                 const std::string& message);

// ---------------------------------------------------------------------
// Legacy rule families (secret-sink, ct-compare, test-escape,
// decl-mismatch), unchanged semantics from the shield_lint era plus
// one scope rule: under a tests/ tree the test-only declassification
// surface is legal (that is exactly what it exists for), so
// test-escape is skipped there.
// ---------------------------------------------------------------------
void run_legacy_passes(const std::string& file, const std::string& raw,
                       const std::vector<Tok>& toks,
                       std::vector<Finding>& findings);

}  // namespace shield5g::lint
