// det-lint: determinism lint for digest-affecting code. The shard
// runner's contract (DESIGN.md §12) is byte-identical sweep digests at
// any worker count; everything under src/ feeds those digests, so it
// must not read wall clocks, draw ambient randomness outside the
// seeded common/rng.cpp stream, iterate containers in hash order, or
// key ordered containers by pointer (address-order leaks).
// Escape hatch: `// det-audited(<reason>)` — e.g. a steady_clock read
// that feeds a wall-time metric and provably never reaches a digest.
#include <cstddef>
#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "analyze_core.h"

namespace shield5g::lint {
namespace {

bool is_unordered_container(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

bool is_ordered_container(const std::string& t) {
  return t == "map" || t == "set" || t == "multimap" || t == "multiset";
}

/// Variable names declared with an unordered container type in a token
/// stream: `std::unordered_map<K, V> name` (declarations only — an
/// identifier followed by '(' is a function returning one).
void collect_unordered_names(const std::vector<Tok>& toks,
                             std::unordered_set<std::string>& names) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_unordered_container(toks[i].text)) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "<") continue;
    const std::size_t close = match_angle(toks, i + 1);
    if (close == i + 1) continue;
    std::size_t j = close + 1;
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j >= toks.size() || !toks[j].ident) continue;
    if (j + 1 < toks.size() && toks[j + 1].text == "(") continue;
    names.insert(normalize_ident(toks[j].text));
  }
}

/// Pointer type in the key position of `map<K, V>` / `set<K>`: a '*'
/// inside the first template argument.
bool pointer_key(const std::vector<Tok>& toks, std::size_t open,
                 std::size_t close) {
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">") --depth;
    if (t == "," && depth == 0) return false;  // key argument ended
    if (t == "*") return true;
  }
  return false;
}

}  // namespace

void run_det_lint(const std::string& file, const std::vector<Tok>& toks,
                  const std::vector<Tok>& header_toks,
                  std::vector<Finding>& findings) {
  const std::string base = std::filesystem::path(file).filename().string();
  const bool rng_home = base == "rng.cpp" || base == "rng.h";

  std::unordered_set<std::string> unordered_names;
  collect_unordered_names(header_toks, unordered_names);
  collect_unordered_names(toks, unordered_names);

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (!t.ident) continue;
    const bool method = i > 0 && (toks[i - 1].text == "." ||
                                  toks[i - 1].text == "->");
    const bool calls = i + 1 < toks.size() && toks[i + 1].text == "(";

    // Wall-clock sources.
    if (t.text == "system_clock" || t.text == "steady_clock" ||
        t.text == "high_resolution_clock") {
      add_finding(findings, file, t.line, "det-lint",
                  "wall-clock source `" + t.text +
                      "` in digest-affecting code");
      continue;
    }
    if ((t.text == "time" || t.text == "clock_gettime" ||
         t.text == "gettimeofday") &&
        calls && !method) {
      add_finding(findings, file, t.line, "det-lint",
                  "wall-clock call `" + t.text +
                      "(` in digest-affecting code");
      continue;
    }

    // Ambient randomness outside the seeded stream in common/rng.cpp.
    if (!rng_home) {
      if ((t.text == "rand" || t.text == "srand") && calls && !method) {
        add_finding(findings, file, t.line, "det-lint",
                    "ambient randomness `" + t.text +
                        "(` outside common/rng.cpp");
        continue;
      }
      if (t.text == "random_device") {
        add_finding(findings, file, t.line, "det-lint",
                    "ambient randomness `std::random_device` outside "
                    "common/rng.cpp");
        continue;
      }
    }

    // Iteration over an unordered container: hash/pointer order leaks
    // into whatever the loop computes.
    if (t.text == "for" && calls) {
      const std::size_t close = match_paren(toks, i + 1);
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        const std::string& tj = toks[j].text;
        if (tj == "(" || tj == "[") ++depth;
        if (tj == ")" || tj == "]") --depth;
        if (tj == ":" && depth == 0) {
          // Range expression: its terminal identifier.
          std::string range;
          for (std::size_t k = j + 1; k < close; ++k) {
            if (toks[k].ident) range = toks[k].text;
          }
          if (!range.empty() &&
              unordered_names.count(normalize_ident(range))) {
            add_finding(findings, file, toks[j].line, "det-lint",
                        "iteration over unordered container `" + range +
                            "`: hash order is not deterministic");
          }
          break;
        }
      }
      continue;
    }
    if ((t.text == "begin" || t.text == "cbegin") && method && calls &&
        i >= 2 && toks[i - 2].ident &&
        unordered_names.count(normalize_ident(toks[i - 2].text))) {
      add_finding(findings, file, t.line, "det-lint",
                  "iteration over unordered container `" +
                      toks[i - 2].text +
                      "`: hash order is not deterministic");
      continue;
    }

    // Pointer-valued keys in ordered containers: iteration order is
    // address order, which varies run to run.
    if (is_ordered_container(t.text) && i + 1 < toks.size() &&
        toks[i + 1].text == "<" &&
        (i == 0 || toks[i - 1].text == "::" || !toks[i - 1].ident)) {
      const std::size_t close = match_angle(toks, i + 1);
      if (close != i + 1 && pointer_key(toks, i + 1, close)) {
        add_finding(findings, file, t.line, "det-lint",
                    "pointer-valued key in ordered container: iteration "
                    "order is address-dependent");
      }
    }
  }
}

}  // namespace shield5g::lint
