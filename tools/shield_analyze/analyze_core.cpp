#include "analyze_core.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace shield5g::lint {
namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

/// Deterministic sorted recursive listing.
std::vector<fs::path> list_tree(const std::string& root) {
  std::vector<fs::path> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root);
    return files;
  }
  if (!fs::is_directory(root)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && scannable(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Extracts the marker rule name from a line like
/// `// ct-audited(reason about why this is safe)`. Returns the audited
/// rule ("ct-flow" etc.), or empty when the line carries no marker.
struct Marker {
  std::string rule;
  bool legacy = false;
};

Marker marker_on_line(const std::string& line) {
  static const struct {
    const char* tag;
    const char* rule;
  } kTags[] = {
      {"ct-audited(", "ct-flow"},
      {"det-audited(", "det-lint"},
      {"lock-audited(", "lock-lint"},
  };
  for (const auto& t : kTags) {
    const std::size_t pos = line.find(t.tag);
    if (pos != std::string::npos &&
        line.find(')', pos) != std::string::npos) {
      return {t.rule, false};
    }
  }
  // lint-audited(<rule>: <reason>) — legacy-rule escape hatch, honored
  // only under tests/ and tools/ trees (production src/ has no legacy
  // escape hatch beyond declassify()).
  const std::size_t pos = line.find("lint-audited(");
  if (pos != std::string::npos) {
    const std::size_t start = pos + 13;
    const std::size_t colon = line.find(':', start);
    const std::size_t close = line.find(')', start);
    if (colon != std::string::npos && close != std::string::npos &&
        colon < close) {
      std::string rule = line.substr(start, colon - start);
      rule.erase(std::remove(rule.begin(), rule.end(), ' '), rule.end());
      return {rule, true};
    }
  }
  return {};
}

}  // namespace

Audits parse_audits(const std::string& file, const std::string& raw) {
  Audits audits;
  const bool legacy_ok =
      path_contains(file, "tests/") || path_contains(file, "tools/");
  std::istringstream in(raw);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t slash = line.find("//");
    if (slash == std::string::npos) continue;
    const Marker m = marker_on_line(line.substr(slash));
    if (m.rule.empty()) continue;
    if (m.legacy) {
      if (!legacy_ok) continue;  // marker present but not honored
      ++audits.counts.legacy;
    } else if (m.rule == "ct-flow") {
      ++audits.counts.ct;
    } else if (m.rule == "det-lint") {
      ++audits.counts.det;
    } else {
      ++audits.counts.lock;
    }
    audits.lines[m.rule].insert(lineno);
  }
  return audits;
}

std::vector<Finding> analyze_source(const std::string& file,
                                    const std::string& src,
                                    const std::string& sibling_header,
                                    const ScanOptions& opts,
                                    AuditCounts* audit_counts) {
  const SourceText text = preprocess_source(src);
  const std::vector<Tok> toks = tokenize(text);
  std::vector<Tok> header_toks;
  if (!sibling_header.empty()) {
    header_toks = lex(sibling_header);
  }

  std::vector<Finding> findings;
  run_legacy_passes(file, src, toks, findings);
  run_ct_flow(file, toks, findings);
  if (opts.fixtures_mode || path_contains(file, "src/")) {
    run_det_lint(file, toks, header_toks, findings);
  }
  LockAnnotations ann;
  collect_lock_annotations(header_toks, ann);
  collect_lock_annotations(toks, ann);
  run_lock_lint(file, toks, ann, findings);

  // Audit suppression: a marker on line N covers findings on N and N+1.
  const Audits audits = parse_audits(file, src);
  if (audit_counts != nullptr) {
    audit_counts->ct += audits.counts.ct;
    audit_counts->det += audits.counts.det;
    audit_counts->lock += audits.counts.lock;
    audit_counts->legacy += audits.counts.legacy;
  }
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       const auto it = audits.lines.find(f.rule);
                       if (it == audits.lines.end()) return false;
                       return it->second.count(f.line) > 0 ||
                              it->second.count(f.line - 1) > 0;
                     }),
      findings.end());

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return findings;
}

std::vector<Finding> scan_source(const std::string& file,
                                 const std::string& src) {
  return analyze_source(file, src);
}

std::vector<Finding> scan_tree(const std::string& root,
                               const ScanOptions& opts,
                               AuditCounts* audits) {
  std::vector<Finding> all;
  for (const fs::path& path : list_tree(root)) {
    const std::string name = path.generic_string();
    if (!opts.fixtures_mode && path_contains(name, "/fixtures/")) continue;
    std::string sibling;
    if (path.extension() == ".cpp" || path.extension() == ".cc") {
      fs::path header = path;
      header.replace_extension(".h");
      if (fs::is_regular_file(header)) sibling = read_file(header);
    }
    const auto found =
        analyze_source(name, read_file(path), sibling, opts, audits);
    all.insert(all.end(), found.begin(), found.end());
  }
  return all;
}

std::vector<Expectation> parse_expectations_tree(const std::string& root) {
  std::vector<Expectation> expected;
  for (const fs::path& path : list_tree(root)) {
    const std::string name = path.generic_string();
    std::istringstream in(read_file(path));
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      for (std::size_t pos = line.find("lint-expect(");
           pos != std::string::npos;
           pos = line.find("lint-expect(", pos + 1)) {
        const std::size_t start = pos + 12;
        const std::size_t close = line.find(')', start);
        if (close == std::string::npos) continue;
        expected.push_back({name, lineno, line.substr(start, close - start)});
      }
    }
  }
  return expected;
}

bool check_expectations(const std::vector<Finding>& findings,
                        const std::vector<Expectation>& expected,
                        std::vector<std::string>& errors) {
  for (const Expectation& e : expected) {
    const bool hit =
        std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
          return f.file == e.file && f.line == e.line && f.rule == e.rule;
        });
    if (!hit) {
      errors.push_back("missed seeded violation " + e.file + ":" +
                       std::to_string(e.line) + " [" + e.rule + "]");
    }
  }
  for (const Finding& f : findings) {
    const bool wanted =
        std::any_of(expected.begin(), expected.end(), [&](const Expectation& e) {
          return f.file == e.file && f.line == e.line && f.rule == e.rule;
        });
    if (!wanted) {
      errors.push_back("unexpected finding " + f.file + ":" +
                       std::to_string(f.line) + " [" + f.rule + "] " +
                       f.message);
    }
  }
  return errors.empty();
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

namespace {

std::string finding_key(const Finding& f) {
  return f.file + "\t[" + f.rule + "]\t" + f.message;
}

}  // namespace

std::map<std::string, int> parse_baseline(const std::string& text) {
  std::map<std::string, int> baseline;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;
    const int count = std::atoi(line.substr(0, tab).c_str());
    if (count <= 0) continue;
    baseline[line.substr(tab + 1)] += count;
  }
  return baseline;
}

std::string serialize_baseline(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const Finding& f : findings) ++counts[finding_key(f)];
  std::ostringstream out;
  out << "# shield_analyze baseline: grandfathered findings, one per line\n"
      << "# format: count<TAB>file<TAB>[rule]<TAB>message\n"
      << "# The CI gate fails only on findings NOT covered here.\n";
  for (const auto& [key, count] : counts) {
    out << count << '\t' << key << '\n';
  }
  return out.str();
}

std::vector<Finding> filter_with_baseline(
    const std::vector<Finding>& findings,
    const std::map<std::string, int>& baseline) {
  std::map<std::string, int> used;
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    const std::string key = finding_key(f);
    const auto it = baseline.find(key);
    const int allowed = it == baseline.end() ? 0 : it->second;
    if (++used[key] > allowed) fresh.push_back(f);
  }
  return fresh;
}

}  // namespace shield5g::lint
