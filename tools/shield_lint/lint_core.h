// shield_lint: token-level secret-leak scanner for the shield5g tree.
//
// The SecretBytes type system (src/common/secret.h) makes most leaks a
// compile error; this lint catches the patterns a type check cannot:
// raw key-material identifiers written into log/JSON/HTTP sinks via an
// escape hatch, non-constant-time comparison of authentication tokens,
// the test-only declassification reason appearing in production code,
// and `Bytes` declarations whose own comment claims they hold a secret.
//
// Deliberately no libclang: a tokenizer plus per-statement scanning is
// enough for these rules and keeps the tool dependency-free.
#pragma once

#include <string>
#include <vector>

namespace shield5g::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;  // path as passed to the scanner
  int line = 0;      // 1-based
  std::string rule;  // secret-sink | ct-compare | test-escape | decl-mismatch
  std::string message;
};

/// A `// lint-expect(rule)` annotation inside a fixture file.
struct Expectation {
  std::string file;
  int line = 0;
  std::string rule;
};

/// Scans one translation unit (already loaded). `file_label` is used in
/// findings and for the per-file rule exemptions (src/paka/ is allowed
/// to move key material through sinks; secret.h itself defines the
/// test-only escape hatch it would otherwise flag).
std::vector<Finding> scan_source(const std::string& file_label,
                                 const std::string& content);

/// Recursively scans every .h/.hpp/.cc/.cpp under `root`.
std::vector<Finding> scan_tree(const std::string& root);

/// Collects `lint-expect(<rule>)` annotations under `root` (fixtures).
std::vector<Expectation> parse_expectations_tree(const std::string& root);

/// Compares findings against fixture expectations. Appends one line per
/// missed expectation ("missed <file>:<line> [<rule>]") and per
/// unexpected finding to `errors`. Returns true iff both sets match —
/// i.e. 100% of the seeded violations were flagged and nothing else.
bool check_expectations(const std::vector<Finding>& findings,
                        const std::vector<Expectation>& expected,
                        std::vector<std::string>& errors);

}  // namespace shield5g::lint
