// shield_lint CLI.
//
//   shield_lint <dir> [...]          scan trees; exit 1 on any finding
//   shield_lint --self-test <dir>    scan a fixture tree and require the
//                                    findings to match its lint-expect()
//                                    annotations exactly (100% flagged,
//                                    nothing extra); exit 1 on mismatch
#include <cstdio>
#include <string>
#include <vector>

#include "lint_core.h"

namespace {

int run_scan(const std::vector<std::string>& roots) {
  using shield5g::lint::Finding;
  std::vector<Finding> all;
  for (const std::string& root : roots) {
    const auto found = shield5g::lint::scan_tree(root);
    all.insert(all.end(), found.begin(), found.end());
  }
  for (const Finding& f : all) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!all.empty()) {
    std::fprintf(stderr, "shield_lint: %zu violation(s)\n", all.size());
    return 1;
  }
  std::printf("shield_lint: clean\n");
  return 0;
}

int run_self_test(const std::string& root) {
  const auto findings = shield5g::lint::scan_tree(root);
  const auto expected = shield5g::lint::parse_expectations_tree(root);
  if (expected.empty()) {
    std::fprintf(stderr,
                 "shield_lint: no lint-expect() annotations under %s\n",
                 root.c_str());
    return 1;
  }
  std::vector<std::string> errors;
  if (!shield5g::lint::check_expectations(findings, expected, errors)) {
    for (const std::string& err : errors) {
      std::fprintf(stderr, "shield_lint self-test: %s\n", err.c_str());
    }
    return 1;
  }
  std::printf("shield_lint self-test: %zu/%zu seeded violations flagged\n",
              expected.size(), expected.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: shield_lint [--self-test] <dir> [...]\n");
    return 2;
  }
  if (self_test) return run_self_test(roots.front());
  return run_scan(roots);
}
