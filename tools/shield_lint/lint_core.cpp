#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_set>

namespace shield5g::lint {
namespace {

// ---------------------------------------------------------------------
// Identifier classes
// ---------------------------------------------------------------------

/// Key-material identifiers: anything from the 5G-AKA hierarchy that is
/// SecretBytes-typed in the tree. Matching is done on the lowercased
/// token with trailing underscores stripped, so `kamf_`, `rec.opc` and
/// `Kausf` all resolve here.
const std::unordered_set<std::string>& secret_idents() {
  static const std::unordered_set<std::string> kSet{
      "k",        "ck",        "ik",        "opc",
      "kausf",    "kseaf",     "kamf",      "kgnb",
      "knas_int", "knas_enc",  "enc_key",   "mac_key",
      "private_key", "hn_private", "receiver_private",
  };
  return kSet;
}

/// Authentication tokens that must be compared in constant time
/// (TS 33.501 verification values: MAC-A/MAC-S, RES*/HXRES*, AUTS).
const std::unordered_set<std::string>& ct_idents() {
  static const std::unordered_set<std::string> kSet{
      "mac_a",    "mac_s",      "mac_tag",    "res",
      "res_star", "xres_star",  "hxres_star", "hres_star",
      "auts",
  };
  return kSet;
}

/// Methods on a secret that are fine to call inside a sink expression:
/// size/empty leak nothing, declassify is the audited escape hatch.
const std::unordered_set<std::string>& allowed_methods() {
  static const std::unordered_set<std::string> kSet{
      "size", "empty", "declassify",
  };
  return kSet;
}

std::string normalize_ident(const std::string& ident) {
  std::string out;
  out.reserve(ident.size());
  for (char c : ident) out.push_back(static_cast<char>(std::tolower(c)));
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

bool path_contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

// ---------------------------------------------------------------------
// Tokenizer: comments and literals stripped, line numbers preserved
// ---------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;
  bool ident = false;
};

/// Replaces comments, string literals and char literals with spaces so
/// the token stream only ever sees code. Newlines are preserved.
std::string strip_noise(const std::string& src) {
  std::string out(src);
  enum class Mode { kCode, kLine, kBlock, kStr, kChar } mode = Mode::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          mode = Mode::kStr;
          out[i] = ' ';
        } else if (c == '\'') {
          mode = Mode::kChar;
          out[i] = ' ';
        }
        break;
      case Mode::kLine:
        if (c == '\n') {
          mode = Mode::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case Mode::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          mode = Mode::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Tok> tokenize(const std::string& code) {
  std::vector<Tok> toks;
  int line = 1;
  std::size_t i = 0;
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < code.size() && is_ident(code[i])) ++i;
      toks.push_back({code.substr(start, i - start), line, true});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[i])) ||
              code[i] == '.' || code[i] == '\'')) {
        ++i;
      }
      toks.push_back({code.substr(start, i - start), line, false});
      continue;
    }
    // Multi-char operators the rules care about.
    const char next = i + 1 < code.size() ? code[i + 1] : '\0';
    if ((c == ':' && next == ':') || (c == '=' && next == '=') ||
        (c == '!' && next == '=') || (c == '<' && next == '<') ||
        (c == '-' && next == '>')) {
      toks.push_back({std::string{c, next}, line, false});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), line, false});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------

struct Scanner {
  const std::string& file;
  const std::vector<Tok>& toks;
  std::vector<Finding>& findings;

  void add(int line, const std::string& rule, const std::string& message) {
    for (const Finding& f : findings) {
      if (f.line == line && f.rule == rule) return;  // dedupe
    }
    findings.push_back({file, line, rule, message});
  }

  /// Index of the token closing the paren group opened at `open`.
  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
      if (toks[i].text == "(") ++depth;
      if (toks[i].text == ")" && --depth == 0) return i;
    }
    return toks.size();
  }

  /// True when the secret identifier at `i` is only used through an
  /// allowed method (`.size()`, `.empty()`, or the audited
  /// `.declassify(...)` gate).
  bool sanitized_use(std::size_t i) const {
    if (i + 2 >= toks.size()) return false;
    const std::string& dot = toks[i + 1].text;
    if (dot != "." && dot != "->") return false;
    return allowed_methods().count(normalize_ident(toks[i + 2].text)) > 0;
  }

  /// Flags raw secret identifiers inside [begin, end).
  void scan_sink_region(std::size_t begin, std::size_t end,
                        const std::string& sink_name) {
    for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
      if (!toks[i].ident) continue;
      const std::string norm = normalize_ident(toks[i].text);
      if (!secret_idents().count(norm)) continue;
      if (sanitized_use(i)) continue;
      add(toks[i].line, "secret-sink",
          "key material `" + toks[i].text + "` reaches " + sink_name +
              " without declassify()");
    }
  }

  /// Terminal identifier of the member chain starting at `i` moving
  /// right: for `a.b.mac_a` the value being compared is `mac_a`, not
  /// the base object. Empty when the chain ends in a call (`x.size()`
  /// compares a derived scalar, not the byte array).
  std::string right_operand(std::size_t i) const {
    std::string last;
    while (i < toks.size()) {
      if (toks[i].ident) {
        last = normalize_ident(toks[i].text);
        ++i;
        if (i < toks.size() && (toks[i].text == "." || toks[i].text == "->")) {
          ++i;
          continue;
        }
        if (i < toks.size() && toks[i].text == "(") return {};
        break;
      }
      if (toks[i].text == "*" || toks[i].text == "&") {
        ++i;  // dereference of an optional/pointer operand
        continue;
      }
      break;
    }
    return last;
  }

  /// Terminal identifier of the chain ending just before token `i`:
  /// for `fields.mac_a ==` that is `mac_a`. Empty after `)` (a call
  /// result like `x.size() ==` compares a scalar).
  std::string left_operand(std::size_t i) const {
    if (i == 0 || !toks[i - 1].ident) return {};
    return normalize_ident(toks[i - 1].text);
  }
};

// ---------------------------------------------------------------------
// Per-rule passes
// ---------------------------------------------------------------------

/// Rule test-escape: the test-only declassification surface must not
/// appear in production code. secret.{h,cpp} define it and are exempt.
void pass_test_escape(Scanner& s) {
  const std::string base = std::filesystem::path(s.file).filename().string();
  if (base == "secret.h" || base == "secret.cpp") return;
  for (std::size_t i = 0; i < s.toks.size(); ++i) {
    const Tok& t = s.toks[i];
    if (t.text == "kTestVector") {
      s.add(t.line, "test-escape",
            "DeclassifyReason::kTestVector is test-only");
    }
    if (t.text == "reveal_for_test" && i > 0 &&
        (s.toks[i - 1].text == "." || s.toks[i - 1].text == "->")) {
      s.add(t.line, "test-escape", "reveal_for_test() is test-only");
    }
  }
}

/// Rule ct-compare: memcmp or ==/!= on MAC/RES*/AUTS verification
/// values instead of ct_equal (timing side channel on the auth path).
void pass_ct_compare(Scanner& s) {
  for (std::size_t i = 0; i < s.toks.size(); ++i) {
    const Tok& t = s.toks[i];
    if (t.text == "memcmp" && i + 1 < s.toks.size() &&
        s.toks[i + 1].text == "(") {
      s.add(t.line, "ct-compare", "memcmp is never constant-time here");
      continue;
    }
    if (t.text != "==" && t.text != "!=") continue;
    for (const std::string& ident :
         {s.left_operand(i), s.right_operand(i + 1)}) {
      if (!ident.empty() && ct_idents().count(ident)) {
        s.add(t.line, "ct-compare",
              "`" + ident + "` compared with " + t.text +
                  "; use ct_equal()");
        break;
      }
    }
  }
}

/// Rule secret-sink: raw key material reaching a log stream, JSON
/// value, hex encoder or HTTP response body. src/paka/ is exempt: the
/// P-AKA modules are the enclave boundary and hand keys off through
/// their own audited declassification sites.
void pass_secret_sink(Scanner& s) {
  if (path_contains(s.file, "paka/")) return;
  const std::vector<Tok>& toks = s.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (!t.ident) continue;

    // S5G_LOG(...) << ... ;  — the whole statement is the sink.
    if (t.text == "S5G_LOG") {
      int depth = 0;
      std::size_t j = i;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (toks[j].text == ";" && depth == 0) break;
      }
      s.scan_sink_region(i + 1, j, "a log stream");
      continue;
    }

    // hex_encode(...) / hex_field(...) — argument list is the sink.
    if ((t.text == "hex_encode" || t.text == "hex_field") &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      s.scan_sink_region(i + 2, s.match_paren(i + 1), t.text + "()");
      continue;
    }

    // json::Value(...) and HttpResponse::json(...) constructions.
    const bool json_value = t.text == "json" && i + 3 < toks.size() &&
                            toks[i + 1].text == "::" &&
                            toks[i + 2].text == "Value" &&
                            toks[i + 3].text == "(";
    const bool http_body = t.text == "HttpResponse" && i + 3 < toks.size() &&
                           toks[i + 1].text == "::" &&
                           toks[i + 2].text == "json" &&
                           toks[i + 3].text == "(";
    if (json_value || http_body) {
      s.scan_sink_region(
          i + 4, s.match_paren(i + 3),
          json_value ? "a json::Value" : "an HTTP response body");
    }
  }
}

/// Rule decl-mismatch: a plain `Bytes` declaration whose own trailing
/// comment says it holds a secret — the declaration and the comment
/// disagree, and the type should be SecretBytes.
void pass_decl_mismatch(const std::string& file, const std::string& raw,
                        std::vector<Finding>& findings) {
  std::istringstream in(raw);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t slash = line.find("//");
    if (slash == std::string::npos) continue;
    std::string comment = line.substr(slash + 2);
    std::transform(comment.begin(), comment.end(), comment.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (comment.find("secret") == std::string::npos) continue;
    const std::string code = line.substr(0, slash);
    // `Bytes name;` or `Bytes name =` with a word boundary before
    // `Bytes` (so SecretBytes does not match).
    for (std::size_t pos = code.find("Bytes"); pos != std::string::npos;
         pos = code.find("Bytes", pos + 1)) {
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(
                          code[pos - 1])) ||
                      code[pos - 1] == '_')) {
        continue;
      }
      std::size_t p = pos + 5;
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p]))) {
        ++p;
      }
      std::size_t name_start = p;
      while (p < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[p])) ||
              code[p] == '_')) {
        ++p;
      }
      if (p == name_start) continue;
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p]))) {
        ++p;
      }
      if (p < code.size() && (code[p] == ';' || code[p] == '=')) {
        findings.push_back(
            {file, lineno, "decl-mismatch",
             "comment declares a secret but the type is plain Bytes"});
        break;
      }
    }
  }
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::vector<Finding> scan_source(const std::string& file_label,
                                 const std::string& content) {
  std::vector<Finding> findings;
  const std::string code = strip_noise(content);
  const std::vector<Tok> toks = tokenize(code);
  Scanner scanner{file_label, toks, findings};
  pass_test_escape(scanner);
  pass_ct_compare(scanner);
  pass_secret_sink(scanner);
  pass_decl_mismatch(file_label, content, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line < b.line;
            });
  return findings;
}

std::vector<Finding> scan_tree(const std::string& root) {
  std::vector<Finding> all;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    const auto found =
        scan_source(path.generic_string(), read_file(path));
    all.insert(all.end(), found.begin(), found.end());
  }
  return all;
}

std::vector<Expectation> parse_expectations_tree(const std::string& root) {
  std::vector<Expectation> out;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::string marker = "lint-expect(";
      for (std::size_t pos = line.find(marker); pos != std::string::npos;
           pos = line.find(marker, pos + 1)) {
        const std::size_t open = pos + marker.size();
        const std::size_t close = line.find(')', open);
        if (close == std::string::npos) continue;
        out.push_back({path.generic_string(), lineno,
                       line.substr(open, close - open)});
      }
    }
  }
  return out;
}

bool check_expectations(const std::vector<Finding>& findings,
                        const std::vector<Expectation>& expected,
                        std::vector<std::string>& errors) {
  std::set<std::string> found;
  for (const Finding& f : findings) {
    found.insert(f.file + ":" + std::to_string(f.line) + " [" + f.rule +
                 "]");
  }
  std::set<std::string> wanted;
  for (const Expectation& e : expected) {
    wanted.insert(e.file + ":" + std::to_string(e.line) + " [" + e.rule +
                  "]");
  }
  for (const std::string& want : wanted) {
    if (!found.count(want)) errors.push_back("missed " + want);
  }
  for (const std::string& got : found) {
    if (!wanted.count(got)) errors.push_back("unexpected " + got);
  }
  return errors.empty();
}

}  // namespace shield5g::lint
