#!/usr/bin/env bash
# CI entry point: configure, build, and run the full test suite.
#
#   scripts/ci.sh             # everything (tier-1, unchanged invocation)
#   scripts/ci.sh -L unit     # extra args are passed to ctest, e.g. one
#                             # label tier (unit | integration | slow)
#
# Additional stages, each in its own build directory so sanitizer and
# lint artifacts never contaminate the tier-1 build:
#
#   scripts/ci.sh lint        # shield_lint over src/ + fixture self-test
#   scripts/ci.sh asan        # AddressSanitizer over the unit suite
#   scripts/ci.sh ubsan       # UBSanitizer over the unit suite
#   scripts/ci.sh tsan        # ThreadSanitizer over the Monte Carlo
#                             # host-thread driver and the shard-pool
#                             # shared state (comb cache, stats registry)
#   scripts/ci.sh bench-smoke # tiny wall-clock throughput run: validate
#                             # the BENCH_throughput.json schema, pin the
#                             # wire-pool / TLS-resumption hit rates and
#                             # the scalar-mult budget, lint src/ + bench/,
#                             # and pin the declassify audit surface
#   scripts/ci.sh scale-smoke # shard-runner determinism: run the scaling
#                             # bench at 1 and 2 workers and diff the
#                             # per-case digests byte-for-byte against
#                             # the sequential reference
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

stage="${1:-}"
case "$stage" in
  lint)
    build="${BUILD_DIR:-$repo/build-lint}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target shield_lint lint_test -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -L lint
    ;;
  asan|ubsan)
    san=address
    [ "$stage" = ubsan ] && san=undefined
    build="${BUILD_DIR:-$repo/build-$stage}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHIELD5G_SANITIZE="$san"
    cmake --build "$build" -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -j "$jobs" -L unit
    ;;
  tsan)
    build="${BUILD_DIR:-$repo/build-tsan}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHIELD5G_SANITIZE=thread
    cmake --build "$build" --target montecarlo_test -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -R '^MonteCarlo'
    ;;
  bench-smoke)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target throughput shield_lint -j "$jobs"
    out="$build/BENCH_throughput.json"
    # The binary self-validates the document before exiting 0; the greps
    # below catch a stale or truncated file on top of that. One shard
    # worker: smoke numbers stay uncontended and host-size independent.
    SHIELD5G_SHARD_WORKERS=1 \
      "$build/bench/throughput" --smoke 60 1000 1 "$out"
    grep -q '"schema":"shield5g.bench.throughput.v1"' "$out"
    grep -q '"regs_per_s"' "$out"
    grep -q '"stage_ns"' "$out"
    # Zero-copy wire path: the pooled-buffer fast path must actually be
    # taken (hits dwarf misses once the per-thread arenas are warm), and
    # the steady-state allocation rate must not creep back up. The
    # ceiling is ~15% above the measured 1533 allocs/registration (up
    # from 1173 pre-resumption: ticket mint/redeem and versioned hellos
    # allocate) so only a real regression trips it, not run-to-run noise.
    #
    # TLS resumption: warm registrations must actually resume (hits dwarf
    # misses + rejects once every UE holds a ticket), and the scalar-mult
    # budget must stay pinned. Measured 2.2 X25519 ladders/registration
    # (cold handshakes amortised over the run; warm SBI exchanges do 0) —
    # the ceiling of 6 is far below the ~11 of the full-handshake path,
    # so a silent fallback to full handshakes trips it immediately.
    python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
pool = doc["wire_pool"]
if pool["hit"] < 1000 or pool["hit"] < 100 * max(pool["miss"], 1):
    sys.exit(f"bench-smoke: wire pool not hot: {pool}")
if doc["allocs_per_reg"] > 1760:
    sys.exit(f"bench-smoke: allocs_per_reg regressed: {doc['allocs_per_reg']}")
res = doc["tls_resume"]
if res["hit"] < 1000 or res["hit"] < 20 * max(res["miss"] + res["reject"], 1):
    sys.exit(f"bench-smoke: tls resumption not hot: {res}")
if doc["x25519_per_reg"] > 6.0:
    sys.exit(f"bench-smoke: x25519_per_reg regressed: {doc['x25519_per_reg']}")
print(f"bench-smoke: wire_pool {pool['hit']} hits / {pool['miss']} misses, "
      f"{doc['allocs_per_reg']:.0f} allocs/reg")
print(f"bench-smoke: tls_resume {res['hit']} hits / {res['miss']} misses / "
      f"{res['reject']} rejects ({100 * doc['resumption_rate']:.1f}% resumed), "
      f"{doc['x25519_per_reg']:.2f} x25519/reg")
EOF
    "$build/tools/shield_lint/shield_lint" "$repo/src" "$repo/bench"
    # The secret-taint audit surface must not grow: exactly the blessed
    # declassify call sites (sbi.h hex dump, UDM provisioning + unseal).
    sites="$(grep -rn 'declassify(' "$repo/src" --include='*.cpp' \
             --include='*.h' | grep -v 'common/secret' \
             | grep -vE ':[0-9]+:[[:space:]]*(//|\*)' | wc -l)"
    if [ "$sites" -ne 3 ]; then
      echo "bench-smoke: declassify call sites changed (found $sites, want 3)" >&2
      exit 1
    fi
    echo "bench-smoke: OK"
    ;;
  scale-smoke)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target shard_scaling -j "$jobs"
    out="$build/BENCH_scaling.json"
    digests="$build/scale_digests"
    rm -f "$digests"_*.txt
    # The binary already fails on any digest mismatch; the byte-for-byte
    # cmp below re-proves it from the emitted artifacts, so a bug in the
    # binary's own comparison cannot mask a determinism break.
    "$build/bench/shard_scaling" --smoke --workers 1,2 \
        --digest "$digests" "$out"
    grep -q '"schema":"shield5g.bench.shard_scaling.v1"' "$out"
    grep -q '"deterministic":true' "$out"
    cmp "${digests}_seq.txt" "${digests}_w1.txt"
    cmp "${digests}_seq.txt" "${digests}_w2.txt"
    echo "scale-smoke: OK"
    ;;
  *)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}"
    cmake --build "$build" -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"
    ;;
esac
