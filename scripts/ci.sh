#!/usr/bin/env bash
# CI entry point: configure, build, and run the full test suite.
#
#   scripts/ci.sh             # everything
#   scripts/ci.sh -L unit     # extra args are passed to ctest, e.g. one
#                             # label tier (unit | integration | slow)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"
