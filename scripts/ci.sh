#!/usr/bin/env bash
# CI entry point: configure, build, and run the full test suite.
#
#   scripts/ci.sh             # everything (tier-1, unchanged invocation)
#   scripts/ci.sh -L unit     # extra args are passed to ctest, e.g. one
#                             # label tier (unit | integration | slow)
#
# Additional stages, each in its own build directory so sanitizer and
# lint artifacts never contaminate the tier-1 build:
#
#   scripts/ci.sh lint        # shield_analyze unit suites + fixture
#                             # self-test (lint_test, analyze_test)
#   scripts/ci.sh analyze     # all seven rule families over src/ bench/
#                             # tests/ tools/, gated on the checked-in
#                             # baseline (new findings only), JSON mode
#                             # self-validated, audit-annotation counts
#                             # pinned like declassify sites
#   scripts/ci.sh tidy        # clang-tidy over compile_commands.json
#                             # with the repo .clang-tidy (concurrency-*
#                             # included), gated on
#                             # scripts/tidy_baseline.txt; skips cleanly
#                             # when clang-tidy is not installed
#   scripts/ci.sh asan        # AddressSanitizer over the unit suite
#   scripts/ci.sh ubsan       # UBSanitizer over the unit suite
#   scripts/ci.sh tsan        # ThreadSanitizer over the Monte Carlo
#                             # host-thread driver and the shard-pool
#                             # shared state (comb cache, stats registry)
#   scripts/ci.sh bench-smoke # tiny wall-clock throughput run: validate
#                             # the BENCH_throughput.json schema, pin the
#                             # wire-pool / TLS-resumption hit rates and
#                             # the scalar-mult budget, lint src/ + bench/,
#                             # and pin the declassify audit surface
#   scripts/ci.sh crypto-parity # kernel_parity under both crypto
#                             # backends (scalar and accel), plus a
#                             # non-vector fallback smoke: the scaling
#                             # bench digests must be byte-identical
#                             # with the batch engine forced to scalar
#                             # and capped at the AVX2 kernel vs the
#                             # default dispatch
#   scripts/ci.sh scale-smoke # shard-runner determinism: run the scaling
#                             # bench at 1 and 2 workers and diff the
#                             # per-case digests byte-for-byte against
#                             # the sequential reference
#   scripts/ci.sh wire-parity # co-located fast path bit-identity: the
#                             # scaling digests must be byte-identical
#                             # with SHIELD5G_BUS_FASTPATH forced off,
#                             # forced on, and left at the default
#   scripts/ci.sh serve-smoke # sharded serving plane: provision 1M
#                             # subscribers into the columnar UDR store
#                             # under the pinned peak-RSS ceiling, then
#                             # serve at 1 and 2 shards and require the
#                             # merged digests byte-identical
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

stage="${1:-}"
case "$stage" in
  lint)
    build="${BUILD_DIR:-$repo/build-lint}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target shield_analyze lint_test analyze_test \
          -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -L lint
    ;;
  analyze)
    build="${BUILD_DIR:-$repo/build-lint}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target shield_analyze -j "$jobs"
    analyze="$build/tools/shield_analyze/shield_analyze"
    # Fixture self-test first: every seeded violation in every rule
    # family must be flagged, nothing beyond them.
    "$analyze" --self-test "$repo/tools/shield_analyze/fixtures"
    # Full-tree scan, relative paths so the baseline keys are portable.
    (cd "$repo" && "$analyze" --baseline tools/shield_analyze/baseline.txt \
         src bench tests tools)
    # JSON mode: the binary self-validates the document before printing;
    # the greps re-prove schema + verdict from the emitted bytes.
    json="$(cd "$repo" && "$analyze" --json \
            --baseline tools/shield_analyze/baseline.txt \
            src bench tests tools)"
    echo "$json" | grep -q '"schema":"shield5g.analyze.v1"'
    echo "$json" | grep -q '"clean":true'
    # The audited-annotation surface over shipped code must not grow
    # silently: same discipline as the declassify pin in bench-smoke.
    counts="$(cd "$repo" && "$analyze" --audit-counts src bench \
              | grep -v ': clean')"
    expected="$(printf 'ct-audited=5\ndet-audited=3\nlock-audited=0\nlint-audited=0')"
    if [ "$counts" != "$expected" ]; then
      echo "analyze: audited-annotation counts changed:" >&2
      diff <(echo "$expected") <(echo "$counts") >&2 || true
      exit 1
    fi
    echo "analyze: OK"
    ;;
  tidy)
    if ! command -v clang-tidy >/dev/null 2>&1; then
      echo "tidy: clang-tidy not installed, skipping"
      exit 0
    fi
    build="${BUILD_DIR:-$repo/build-tidy}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    baseline="$repo/scripts/tidy_baseline.txt"
    current="$build/tidy_findings.txt"
    # Normalized fingerprints (file, check, message — no line numbers)
    # so unrelated edits above a grandfathered finding do not churn the
    # baseline; mirrors the shield_analyze baseline keys.
    (cd "$repo" && find src tools/shield_analyze -name '*.cpp' -print0 \
       | xargs -0 -n 8 -P "$jobs" clang-tidy -p "$build" --quiet 2>/dev/null \
       || true) \
      | sed -n 's|^'"$repo"'/\([^:]*\):[0-9]*:[0-9]*: warning: \(.*\) \(\[[a-z0-9.,-]*\]\)$|\1\t\3\t\2|p' \
      | sort -u > "$current"
    if [ "${2:-}" = "--write-baseline" ]; then
      { grep '^#' "$baseline"; cat "$current"; } > "$baseline.tmp"
      mv "$baseline.tmp" "$baseline"
      echo "tidy: baseline rewritten ($(wc -l < "$current") findings)"
      exit 0
    fi
    new="$(comm -13 <(grep -v '^#' "$baseline" | sort -u) "$current")"
    if [ -n "$new" ]; then
      echo "tidy: new clang-tidy findings (not in scripts/tidy_baseline.txt):" >&2
      echo "$new" >&2
      exit 1
    fi
    echo "tidy: OK ($(wc -l < "$current") findings, all baselined)"
    ;;
  asan|ubsan)
    san=address
    [ "$stage" = ubsan ] && san=undefined
    build="${BUILD_DIR:-$repo/build-$stage}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHIELD5G_SANITIZE="$san"
    cmake --build "$build" -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -j "$jobs" -L unit
    ;;
  tsan)
    build="${BUILD_DIR:-$repo/build-tsan}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DSHIELD5G_SANITIZE=thread
    cmake --build "$build" --target montecarlo_test -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -R '^MonteCarlo'
    ;;
  bench-smoke)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target throughput shield_analyze -j "$jobs"
    out="$build/BENCH_throughput.json"
    # The binary self-validates the document before exiting 0; the greps
    # below catch a stale or truncated file on top of that. One shard
    # worker: smoke numbers stay uncontended and host-size independent.
    SHIELD5G_SHARD_WORKERS=1 \
      "$build/bench/throughput" --smoke 60 1000 1 "$out"
    grep -q '"schema":"shield5g.bench.throughput.v2"' "$out"
    grep -q '"regs_per_s"' "$out"
    grep -q '"stage_ns"' "$out"
    # Zero-copy wire path: the pooled-buffer fast path must actually be
    # taken (hits dwarf misses once the per-thread arenas are warm), and
    # the steady-state allocation rate must not creep back up. The
    # ceiling is ~15% above the measured 1537 allocs/registration (up
    # from 1173 pre-resumption: ticket mint/redeem and versioned hellos
    # allocate) so only a real regression trips it, not run-to-run noise.
    #
    # TLS resumption: warm registrations must actually resume (hits dwarf
    # misses + rejects once every UE holds a ticket), and the scalar-mult
    # budget must stay pinned. Measured 2.2 X25519 ladders/registration
    # (cold handshakes amortised over the run; warm SBI exchanges do 0) —
    # the ceiling of 6 is far below the ~11 of the full-handshake path,
    # so a silent fallback to full handshakes trips it immediately.
    #
    # Ephemeral-key pool: refills must actually mint keys and the serving
    # path must hit the pool. Every pool hit hands out a key a refill
    # minted earlier, so hit > refill_keys means the counters themselves
    # broke (e.g. a rename half-applied).
    python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
pool = doc["wire_pool"]
if pool["hit"] < 1000 or pool["hit"] < 100 * max(pool["miss"], 1):
    sys.exit(f"bench-smoke: wire pool not hot: {pool}")
if doc["allocs_per_reg"] > 1760:
    sys.exit(f"bench-smoke: allocs_per_reg regressed: {doc['allocs_per_reg']}")
res = doc["tls_resume"]
if res["hit"] < 1000 or res["hit"] < 20 * max(res["miss"] + res["reject"], 1):
    sys.exit(f"bench-smoke: tls resumption not hot: {res}")
if doc["x25519_per_reg"] > 6.0:
    sys.exit(f"bench-smoke: x25519_per_reg regressed: {doc['x25519_per_reg']}")
eph = doc["x25519_pool"]
if eph["hit"] < 100 or eph["refill_keys"] < eph["hit"]:
    sys.exit(f"bench-smoke: x25519 pool not hot: {eph}")
# Shed vs error: saturation drops are expected load-shedding, real
# faults are not — any per-mode error means a handler/transport bug.
# Co-located fast path: monolithic mode must actually take it, and the
# isolation modes must never (container/SGX keep the full wire path).
for m in doc["modes"]:
    if m["failed"] != m["shed"] + m["error"]:
        sys.exit(f"bench-smoke: failed != shed + error in {m['mode']}: {m}")
    if m["error"] != 0:
        sys.exit(f"bench-smoke: {m['error']} real faults in {m['mode']}")
    if m["mode"] == "monolithic" and m["fastpath_hits"] == 0:
        sys.exit("bench-smoke: fast path never fired in monolithic mode")
    if m["mode"] in ("container", "sgx") and m["fastpath_hits"] != 0:
        sys.exit(f"bench-smoke: fast path fired in {m['mode']} mode: {m}")
print(f"bench-smoke: wire_pool {pool['hit']} hits / {pool['miss']} misses, "
      f"{doc['allocs_per_reg']:.0f} allocs/reg")
print(f"bench-smoke: tls_resume {res['hit']} hits / {res['miss']} misses / "
      f"{res['reject']} rejects ({100 * doc['resumption_rate']:.1f}% resumed), "
      f"{doc['x25519_per_reg']:.2f} x25519/reg")
print(f"bench-smoke: x25519_pool {eph['hit']} hits / "
      f"{eph['refill_keys']} refill keys / {eph['shared_keys']} shared, "
      f"engine {doc['x25519_batch_engine']}")
EOF
    (cd "$repo" && "$build/tools/shield_analyze/shield_analyze" \
         --baseline tools/shield_analyze/baseline.txt src bench)
    # The audited-annotation surface must not grow silently: pin the
    # per-rule marker counts next to the declassify pin below.
    audits="$(cd "$repo" && "$build/tools/shield_analyze/shield_analyze" \
              --audit-counts src bench | grep -v ': clean')"
    if [ "$audits" != "$(printf 'ct-audited=5\ndet-audited=3\nlock-audited=0\nlint-audited=0')" ]; then
      echo "bench-smoke: audited-annotation counts changed:" >&2
      echo "$audits" >&2
      exit 1
    fi
    # The secret-taint audit surface must not grow: exactly the blessed
    # declassify call sites (sbi.h hex dump, UDM provisioning + unseal).
    sites="$(grep -rn 'declassify(' "$repo/src" --include='*.cpp' \
             --include='*.h' | grep -v 'common/secret' \
             | grep -vE ':[0-9]+:[[:space:]]*(//|\*)' | wc -l)"
    if [ "$sites" -ne 3 ]; then
      echo "bench-smoke: declassify call sites changed (found $sites, want 3)" >&2
      exit 1
    fi
    echo "bench-smoke: OK"
    ;;
  crypto-parity)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target kernel_parity_test shard_scaling \
          -j "$jobs"
    # Bit-identity across dispatch: the full parity suite (1k+ random
    # scalars/points incl. twist and u=0, RFC 7748 vectors, op-count
    # neutrality) must pass with the crypto backend pinned either way.
    # On hosts without AVX2/IFMA the vector cases skip; the scalar
    # reference still runs, so this stage never silently no-ops.
    SHIELD5G_CRYPTO_BACKEND=scalar "$build/tests/kernel_parity_test"
    SHIELD5G_CRYPTO_BACKEND=accel "$build/tests/kernel_parity_test"
    # Non-vector fallback smoke: a plain host dispatches the batch to
    # the scalar ladder, an AVX2-only host to the x4 kernel. Force both
    # paths and require the end-to-end scaling digests byte-identical
    # to the default dispatch (IFMA where the host has it).
    rm -f "$build"/parity_digests_*.txt
    run_scaling() {  # $1 = tag (also digest prefix suffix)
      "$build/bench/shard_scaling" --smoke --workers 1 \
          --digest "$build/parity_digests_$1" \
          "$build/BENCH_scaling_parity_$1.json"
    }
    run_scaling default
    SHIELD5G_X25519_BATCH=scalar SHIELD5G_CRYPTO_BACKEND=scalar \
      run_scaling scalar
    SHIELD5G_X25519_BATCH=x4 run_scaling x4
    cmp "$build/parity_digests_default_seq.txt" \
        "$build/parity_digests_scalar_seq.txt"
    cmp "$build/parity_digests_default_seq.txt" \
        "$build/parity_digests_x4_seq.txt"
    echo "crypto-parity: OK"
    ;;
  scale-smoke)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target shard_scaling -j "$jobs"
    out="$build/BENCH_scaling.json"
    digests="$build/scale_digests"
    rm -f "$digests"_*.txt
    # The binary already fails on any digest mismatch; the byte-for-byte
    # cmp below re-proves it from the emitted artifacts, so a bug in the
    # binary's own comparison cannot mask a determinism break.
    "$build/bench/shard_scaling" --smoke --workers 1,2 \
        --digest "$digests" "$out"
    grep -q '"schema":"shield5g.bench.shard_scaling.v1"' "$out"
    grep -q '"deterministic":true' "$out"
    cmp "${digests}_seq.txt" "${digests}_w1.txt"
    cmp "${digests}_seq.txt" "${digests}_w2.txt"
    echo "scale-smoke: OK"
    ;;
  wire-parity)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target shard_scaling -j "$jobs"
    # The fast path must be invisible in virtual time: per-case digests
    # (trace hashes, counters, latency sample bit patterns) byte-equal
    # whether co-located deliveries skip the wire or not. Same within-run
    # cmp discipline as crypto-parity — no checked-in digest values.
    rm -f "$build"/wire_digests_*.txt
    run_scaling() {  # $1 = tag
      "$build/bench/shard_scaling" --smoke --workers 1 \
          --digest "$build/wire_digests_$1" \
          "$build/BENCH_scaling_wire_$1.json"
    }
    run_scaling default
    SHIELD5G_BUS_FASTPATH=off run_scaling off
    SHIELD5G_BUS_FASTPATH=on run_scaling on
    cmp "$build/wire_digests_default_seq.txt" \
        "$build/wire_digests_off_seq.txt"
    cmp "$build/wire_digests_default_seq.txt" \
        "$build/wire_digests_on_seq.txt"
    echo "wire-parity: OK"
    ;;
  serve-smoke)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" --target serving_plane -j "$jobs"
    out="$build/BENCH_serving.json"
    # The binary fails on its own on a digest divergence or an RSS
    # ceiling breach; the checks below re-prove both verdicts from the
    # emitted artifact so a bug in the binary's comparison cannot mask
    # a break.
    "$build/bench/serving_plane" --smoke --shards 1,2 "$out"
    grep -q '"schema":"shield5g.bench.serving_plane.v1"' "$out"
    grep -q '"deterministic":true' "$out"
    python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
prov = doc["provision"]
if not prov["rss_ok"] or prov["rss_after_kb"] > prov["rss_ceiling_kb"]:
    sys.exit(f"serve-smoke: 1M provision RSS over ceiling: {prov}")
if prov["subscribers"] != 1_000_000:
    sys.exit(f"serve-smoke: provision count shrank: {prov['subscribers']}")
digests = {run["digest"] for run in doc["runs"]}
if len(digests) != 1 or not all(r["digest_matches_sequential"]
                                for r in doc["runs"]):
    sys.exit(f"serve-smoke: shard digests diverge: {doc['runs']}")
print(f"serve-smoke: 1M provision {prov['rss_after_kb'] // 1024} MB peak "
      f"(ceiling {prov['rss_ceiling_kb'] // 1024} MB), "
      f"digest {digests.pop()} identical at "
      f"{sorted(r['shards'] for r in doc['runs'])} shards")
EOF
    echo "serve-smoke: OK"
    ;;
  *)
    build="${BUILD_DIR:-$repo/build}"
    cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}"
    cmake --build "$build" -j "$jobs"
    ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"
    ;;
esac
