#!/usr/bin/env python3
"""Aggregate BENCH_*.json across git history into BENCH_trajectory.json.

Every PR regenerates its benchmark reports (BENCH_throughput.json,
BENCH_serving.json, ...) in place, which makes the *current* numbers
easy to read and the *trend* invisible: a 15% regression that lands in
one PR and is papered over by an optimization two PRs later never shows
up anywhere. This script walks the first-parent history, extracts every
checked-in BENCH_*.json at each commit (via `git show <sha>:<file>`),
reduces each report to a small set of headline metrics, and writes the
series — oldest first, worktree state last — to BENCH_trajectory.json.

The output is itself checked in, so the trajectory rides along with the
reports it summarizes and CI can diff it like any other artifact.

Usage:
    scripts/bench_trajectory.py [--repo DIR] [--out FILE]

Exit status is non-zero when the repo has no benchmark history at all;
a commit whose report fails to parse is recorded with an "error" field
rather than aborting the walk (history is immutable — a bad blob stays
bad forever, and the trajectory should say so once, not fail forever).
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

SCHEMA = "shield5g.bench.trajectory.v1"


def git(repo, *args):
    return subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True, capture_output=True, text=True,
    ).stdout


def bench_files_at(repo, rev):
    """BENCH_*.json paths present in `rev`'s root tree."""
    try:
        listing = git(repo, "ls-tree", "--name-only", rev)
    except subprocess.CalledProcessError:
        return []
    return sorted(
        name for name in listing.splitlines()
        if name.startswith("BENCH_") and name.endswith(".json")
        and name != "BENCH_trajectory.json"
    )


def headline(report):
    """Reduce one parsed benchmark report to its headline metrics.

    Works by schema family so new report versions keep aggregating as
    long as they retain their headline fields; unknown schemas degrade
    to just the schema id (presence in the series still marks "this PR
    shipped that bench").
    """
    schema = report.get("schema", "")
    out = {"schema": schema}
    if "throughput" in schema:
        out["regs_per_s"] = report.get("regs_per_s")
        out["wall_ms"] = report.get("wall_ms")
        out["allocs_per_reg"] = report.get("allocs_per_reg")
        out["x25519_per_reg"] = report.get("x25519_per_reg")
        out["resumption_rate"] = report.get("resumption_rate")
        modes = {}
        for entry in report.get("modes", []):
            name = entry.get("mode")
            if not name:
                continue
            modes[name] = {
                "regs_per_s": entry.get("regs_per_s"),
                "registered": entry.get("registered"),
                "failed": entry.get("failed"),
            }
            # v2 splits `failed` and attributes fast-path deliveries.
            for key in ("shed", "error", "fastpath_hits"):
                if key in entry:
                    modes[name][key] = entry[key]
        if modes:
            out["modes"] = modes
    elif "serving" in schema:
        runs = report.get("runs", [])
        rates = [r.get("regs_per_s") for r in runs
                 if isinstance(r.get("regs_per_s"), (int, float))]
        out["ue_count"] = report.get("ue_count")
        out["deterministic"] = report.get("deterministic")
        out["best_regs_per_s"] = max(rates) if rates else None
        out["max_shards"] = max(
            (r.get("shards", 0) for r in runs), default=None)
        provision = report.get("provision")
        if isinstance(provision, dict):
            out["provision_lookups_per_s"] = provision.get("lookups_per_s")
            out["provision_rss_ok"] = provision.get("rss_ok")
    return out


def entry_for(repo, rev, label, subject, date):
    benches = {}
    for name in bench_files_at(repo, rev):
        try:
            text = git(repo, "show", f"{rev}:{name}")
            benches[name] = headline(json.loads(text))
        except (subprocess.CalledProcessError, json.JSONDecodeError) as e:
            benches[name] = {"error": str(e)}
    return {
        "commit": label,
        "subject": subject,
        "date": date,
        "benches": benches,
    }


def worktree_entry(repo):
    # Only tracked reports count: smoke runs drop scratch BENCH_*.json
    # (load_curve, scaling) in the tree, and an untracked artifact must
    # not make the worktree look different from HEAD.
    tracked = set(git(repo, "ls-files", "BENCH_*.json").splitlines())
    benches = {}
    for path in sorted(Path(repo).glob("BENCH_*.json")):
        if path.name == "BENCH_trajectory.json" or path.name not in tracked:
            continue
        try:
            benches[path.name] = headline(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as e:
            benches[path.name] = {"error": str(e)}
    return benches


def main():
    parser = argparse.ArgumentParser(
        description="Aggregate BENCH_*.json history into a trajectory")
    parser.add_argument("--repo", default=".", help="repository root")
    parser.add_argument("--out", default=None,
                        help="output path (default <repo>/BENCH_trajectory.json)")
    args = parser.parse_args()

    repo = Path(args.repo).resolve()
    out_path = Path(args.out) if args.out else repo / "BENCH_trajectory.json"

    log = git(repo, "log", "--first-parent", "--reverse",
              "--format=%H%x1f%h%x1f%s%x1f%cs")
    series = []
    for line in log.splitlines():
        full, short, subject, date = line.split("\x1f")
        entry = entry_for(repo, full, short, subject, date)
        if entry["benches"]:
            series.append(entry)

    # The worktree's (possibly regenerated, not yet committed) reports
    # become the final point so "run benches, then trajectory" shows the
    # PR under construction without an intermediate commit.
    tip = worktree_entry(repo)
    if tip and (not series or tip != series[-1]["benches"]):
        series.append({
            "commit": "worktree",
            "subject": "uncommitted working tree",
            "date": None,
            "benches": tip,
        })

    if not series:
        print("bench_trajectory: no BENCH_*.json anywhere in history",
              file=sys.stderr)
        return 1

    doc = {"schema": SCHEMA, "points": series}
    out_path.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")

    latest = series[-1]["benches"]
    print(f"bench_trajectory: {len(series)} points -> {out_path}")
    for name, bench in latest.items():
        rate = bench.get("regs_per_s") or bench.get("best_regs_per_s")
        if isinstance(rate, (int, float)):
            print(f"  {name}: {rate:.0f} regs/s ({bench.get('schema')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
