// Threat-model walkthrough (paper §III and §VI): a malicious co-resident
// that has escaped its container tries to compromise the 5G-AKA chain —
// and is stopped at each step by the HMEE properties.
//
//   $ ./attack_surface
#include <cstdio>

#include "common/rng.h"
#include "net/tls.h"
#include "paka/aka_udm.h"
#include "sgx/attestation.h"
#include "sgx/sealing.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {
void verdict(const char* attack, bool blocked) {
  std::printf("  %-52s %s\n", attack, blocked ? "BLOCKED" : "SUCCEEDED");
}
}  // namespace

int main() {
  slice::SliceConfig config;
  config.mode = slice::IsolationMode::kSgx;
  config.subscriber_count = 2;
  slice::Slice slice(config);
  slice.create();
  Rng attacker_rng(0x3716a1ULL);

  std::printf("scenario: attacker gains co-residency and root on the\n"
              "NFV host (paper Fig. 3), then goes after the AKA chain\n\n");

  // Attack 1 (KI 27): steal the sealed key-table blob and unseal it in
  // an attacker-controlled enclave on the same machine.
  auto& rogue = slice.machine().create_enclave(
      sgx::EnclaveConfig{"rogue-app", 64ULL << 20, 4, false});
  rogue.add_pages(64ULL << 20, Bytes{0xde, 0xad});
  rogue.init();
  {
    std::map<nf::Supi, SecretBytes> keys;
    keys[nf::Supi{"victim"}] = SecretBytes(Bytes(16, 7));
    const auto blob = sgx::seal(
        slice.eudm()->runtime()->enclave(),
        paka::EudmAkaService::serialize_key_table(keys),
        attacker_rng.bytes(16));
    verdict("replay sealed K-table into attacker enclave (KI 27)",
            !sgx::unseal(rogue, blob).has_value());
  }

  // Attack 2 (KI 13): stand up a lookalike eUDM and pass attestation.
  {
    const sgx::AttestationVerifier verifier(
        Bytes(slice.machine().attestation_key().begin(),
              slice.machine().attestation_key().end()));
    const auto quote = sgx::generate_quote(rogue, Bytes{});
    verdict("impostor module passing measurement check (KI 13)",
            !verifier.verify(
                quote, slice.eudm()->runtime()->enclave().measurement()));
  }

  // Attack 3: man-in-the-middle the UDM -> eUDM TLS link with a rogue
  // server key (memory introspection of the real key is impossible, so
  // the attacker must supply its own).
  {
    Bytes hello;
    const auto pinned = net::TlsIdentity::generate(attacker_rng);
    net::TlsSession client = net::TlsSession::client_connect(
        pinned.key.public_key, attacker_rng, hello);
    const auto mitm_key = net::TlsIdentity::generate(attacker_rng);
    Bytes server_hello;
    auto mitm =
        net::TlsSession::server_accept(mitm_key.key, hello, server_hello);
    const Bytes record = client.protect(to_bytes("OPc+RAND+SQN"));
    verdict("MITM on the VNF-to-module TLS link (KI 6/7)",
            !mitm || !mitm->unprotect(record).has_value());
  }

  // Attack 4: replay a captured NAS authentication challenge to a UE
  // (the SQN freshness check turns it into a resync, not a session).
  {
    ran::UeDevice ue(slice.subscriber(0), 42);
    const auto ok = slice.gnbsim().register_ue(ue, false);
    ran::UeDevice replay_target(slice.subscriber(0), 43);
    // The attacker cannot craft a valid AUTN without K; replaying the
    // old SQN fails the USIM's freshness window. Demonstrate with the
    // USIM primitive directly:
    auto usim_cfg = slice.subscriber(0);
    usim_cfg.sqn_ms = 1ULL << 40;  // UE has long moved past old SQNs
    ran::Usim usim(usim_cfg);
    const auto outcome = usim.verify_challenge(
        Bytes(16, 0xaa), Bytes(16, 0xbb));  // forged challenge
    verdict("forged/replayed NAS challenge at the USIM",
            std::holds_alternative<ran::AuthMacFailure>(outcome) && ok.registered);
  }

  // Attack 5: tamper with a protected NAS message in flight.
  {
    const Bytes knas(16, 0x42);
    nf::NasMessage msg;
    msg.type = nf::NasType::kSecurityModeCommand;
    auto sec = nf::SecuredNas::protect(msg, knas, 0, true);
    sec.payload[1] ^= 0x01;
    verdict("tampering with integrity-protected NAS",
            !sec.verify(knas).has_value());
  }

  std::printf("\nlegitimate traffic is unaffected: ");
  const auto result = slice.register_subscriber(1, true);
  std::printf("UE registration %s (%.2f ms)\n",
              result.session_up ? "succeeds" : "fails",
              sim::to_ms(result.setup_time));
  return 0;
}
