// Slice lifecycle: creation, module redeployment (migration to a new
// host) and the operational costs the paper attributes to each phase —
// the "slice creation time" discussion of §V-B1.
//
//   $ ./slice_lifecycle
#include <cstdio>

#include "paka/aka_udm.h"
#include "sgx/sealing.h"
#include "slice/slice.h"

using namespace shield5g;

int main() {
  // Phase 1: initial slice creation on host A.
  slice::SliceConfig config;
  config.mode = slice::IsolationMode::kSgx;
  config.subscriber_count = 8;
  slice::Slice slice(config);
  const auto creation = slice.create();
  std::printf("phase 1: slice creation on host A\n");
  std::printf("  total                : %6.1f s\n",
              sim::to_s(creation.total));
  std::printf("  eUDM / eAUSF / eAMF  : %.1f / %.1f / %.1f s\n",
              sim::to_s(creation.eudm_load), sim::to_s(creation.eausf_load),
              sim::to_s(creation.eamf_load));
  std::printf("  attested + sealed    : %s\n",
              creation.attestation_ok && creation.sealed_provisioning_ok
                  ? "yes"
                  : "no");

  // Phase 2: steady-state service.
  for (std::uint32_t i = 0; i < 4; ++i) slice.register_subscriber(i, true);
  std::printf("\nphase 2: %llu registrations served "
              "(eUDM L_T p50 %.1f us)\n",
              static_cast<unsigned long long>(
                  slice.amf().registrations_completed()),
              slice.eudm()->server().lt_us().median());

  // Phase 3: migrate the eUDM module (undeploy, redeploy = a fresh
  // enclave on the destination host; the enclave cannot be live-moved).
  std::printf("\nphase 3: eUDM migration (undeploy + redeploy)\n");
  const sim::Nanos t0 = slice.clock().now();
  slice.eudm()->undeploy();
  const sim::Nanos reload = slice.eudm()->deploy();
  // Key material must be re-provisioned: the new enclave instance has
  // the same measurement, so the old sealed blob still opens... but only
  // on the same physical host. Re-seal for the destination.
  std::map<nf::Supi, SecretBytes> keys;
  for (std::uint32_t i = 0; i < config.subscriber_count; ++i) {
    const auto usim = slice.subscriber(i);
    keys[nf::Supi{usim.plmn.id() + usim.msin}] = usim.k;
  }
  const auto blob = sgx::seal(
      slice.eudm()->runtime()->enclave(),
      paka::EudmAkaService::serialize_key_table(keys),
      slice.machine().rng().bytes(16));
  const bool reprovisioned = slice.eudm()->provision_sealed(blob);
  std::printf("  enclave reload       : %6.1f s "
              "(the dominant migration cost, Fig. 7)\n",
              sim::to_s(reload));
  std::printf("  re-provisioning      : %s\n",
              reprovisioned ? "sealed table accepted" : "FAILED");
  std::printf("  total downtime       : %6.1f s\n",
              sim::to_s(slice.clock().now() - t0));

  // Phase 4: service resumes; the first request pays R_I again.
  const auto after = slice.register_subscriber(4, true);
  std::printf("\nphase 4: first registration after migration: %s "
              "(%.2f ms, includes the R_I cold path)\n",
              after.session_up ? "ok" : "FAILED",
              sim::to_ms(after.setup_time));
  const auto steady = slice.register_subscriber(5, true);
  std::printf("         next registration: %.2f ms (steady state)\n",
              sim::to_ms(steady.setup_time));
  std::printf("\nlesson (paper §V-B1): the ~1 minute enclave load does not "
              "affect steady-state\nlatency but dominates slice creation "
              "and migration - critical for ephemeral services.\n");
  return 0;
}
