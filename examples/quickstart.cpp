// Quickstart: bring up an SGX-shielded 5G core slice and register one UE
// through the protected AKA functions.
//
//   $ ./quickstart
//
// This walks the whole paper in ~40 lines of client code: slice creation
// (GSC build, enclave loads, attestation, sealed key provisioning), then
// a full registration + PDU session through eUDM/eAUSF/eAMF P-AKA.
#include <cstdio>

#include "slice/slice.h"

using namespace shield5g;

int main() {
  // 1. Describe the slice: SGX isolation, the paper's test PLMN 001/01.
  slice::SliceConfig config;
  config.mode = slice::IsolationMode::kSgx;
  config.subscriber_count = 4;

  // 2. Create it. This boots the three P-AKA enclaves (~1 virtual
  //    minute each), verifies their quotes and seals the subscriber key
  //    table into the eUDM enclave.
  slice::Slice slice(config);
  const auto creation = slice.create();
  std::printf("slice created in %.1f virtual seconds\n",
              sim::to_s(creation.total));
  std::printf("  eUDM enclave load  : %.1f s\n",
              sim::to_s(creation.eudm_load));
  std::printf("  attestation        : %s\n",
              creation.attestation_ok ? "all modules verified" : "n/a");
  std::printf("  key provisioning   : %s\n",
              creation.sealed_provisioning_ok ? "sealed to eUDM enclave"
                                              : "n/a");

  // 3. Register UEs end to end (SUCI concealment, 5G-AKA challenge,
  //    security mode, PDU session). The very first registration walks
  //    the modules' cold paths (the paper's R_I spike), so register two.
  const auto cold = slice.register_subscriber(0, /*with_pdu=*/true);
  const auto result = slice.register_subscriber(1, /*with_pdu=*/true);
  std::printf("\nUE registration : %s\n",
              result.session_up ? "SUCCESS" : "FAILED");
  std::printf("  first (cold)  : %.2f ms (includes per-module R_I)\n",
              sim::to_ms(cold.setup_time));
  std::printf("  session setup : %.2f ms (paper: ~62.4 ms)\n",
              sim::to_ms(result.setup_time));
  std::printf("  UE IP address : %s\n", result.ue_ip.c_str());
  std::printf("  NAS rounds    : %d\n", result.message_rounds);

  // 4. Peek at the SGX cost of serving this UE.
  const auto* counters = slice.eudm()->sgx_counters();
  std::printf("\neUDM enclave counters: %llu EENTERs, %llu EEXITs, "
              "%llu AEXs\n",
              static_cast<unsigned long long>(counters->eenter),
              static_cast<unsigned long long>(counters->eexit),
              static_cast<unsigned long long>(counters->aex));
  return result.session_up ? 0 : 1;
}
