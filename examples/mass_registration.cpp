// Mass registration: the paper's gNBSIM methodology (§V-A) — establish
// many gNB-UE connections against the core at scale and characterise
// the latency distribution per isolation mode.
//
//   $ ./mass_registration [ue_count] [offered_load_per_s]
//
// Without an offered load the UEs register back to back (the paper's
// closed-loop methodology, numbers identical to the seed). With one,
// arrivals are an open-loop Poisson process driven through the
// concurrent-registration engine, and queueing delay at each module is
// reported separately from the service windows.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "load/generator.h"
#include "ran/ue.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

void print_module_stats(slice::Slice& slice) {
  if (slice.config().mode != slice::IsolationMode::kSgx || !slice.eudm()) {
    return;
  }
  std::printf("             eUDM served %llu requests, L_F p50 %.1f us, "
              "L_T p50 %.1f us\n",
              static_cast<unsigned long long>(
                  slice.eudm()->server().requests_served()),
              slice.eudm()->server().lf_us().median(),
              slice.eudm()->server().lt_us().median());
}

void run_mode(slice::IsolationMode mode, std::uint32_t ue_count) {
  slice::SliceConfig config;
  config.mode = mode;
  config.subscriber_count = ue_count;
  slice::Slice slice(config);
  slice.create();

  std::vector<ran::UeDevice> ues;
  ues.reserve(ue_count);
  for (std::uint32_t i = 0; i < ue_count; ++i) {
    ues.emplace_back(slice.subscriber(i), 0x5eed + i);
  }
  const auto results = slice.gnbsim().run_mass(ues, /*with_pdu=*/true);

  std::uint32_t sessions = 0;
  for (const auto& r : results) sessions += r.session_up ? 1 : 0;
  const Summary setup = Summary::of(slice.gnbsim().setup_ms());
  std::printf("%-11s: %u/%u sessions up, setup %s\n",
              slice::isolation_mode_name(mode), sessions, ue_count,
              setup.to_string("ms").c_str());
  print_module_stats(slice);
}

void run_mode_open_loop(slice::IsolationMode mode, std::uint32_t ue_count,
                        double rate_per_s) {
  slice::SliceConfig config;
  config.mode = mode;
  config.subscriber_count = ue_count;
  slice::Slice slice(config);
  slice.create();

  load::LoadConfig load_cfg;
  load_cfg.ue_count = ue_count;
  load_cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  load_cfg.arrivals.rate_per_s = rate_per_s;
  load::LoadGenerator generator;
  const load::LoadReport report = generator.run(slice, load_cfg);

  std::printf("%-11s: %s\n", slice::isolation_mode_name(mode),
              report.summary().c_str());
  print_module_stats(slice);

  // Queueing delay per module, separate from the L_F/L_T service
  // windows above (only servers that actually queued or shed requests).
  for (const load::QueueSnapshot& q : load::queue_snapshots(slice)) {
    if (q.queued == 0 && q.rejected == 0) continue;
    std::printf("             %-10s workers=%u queued %llu/%llu "
                "(%llu shed), wait p50 %.1f us max %.1f us\n",
                q.server.c_str(), q.workers,
                static_cast<unsigned long long>(q.queued),
                static_cast<unsigned long long>(q.admitted),
                static_cast<unsigned long long>(q.rejected), q.wait_p50_us,
                q.wait_max_us);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t ue_count =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 100;
  const double rate_per_s = argc > 2 ? std::atof(argv[2]) : 0.0;
  if (ue_count == 0) {
    std::fprintf(stderr,
                 "usage: %s [ue_count >= 1] [offered_load_per_s]\n", argv[0]);
    return 1;
  }

  if (rate_per_s > 0.0) {
    std::printf("registering %u UEs per isolation mode, open-loop Poisson "
                "arrivals at %.0f/s\n\n",
                ue_count, rate_per_s);
    run_mode_open_loop(slice::IsolationMode::kMonolithic, ue_count,
                       rate_per_s);
    run_mode_open_loop(slice::IsolationMode::kContainer, ue_count,
                       rate_per_s);
    run_mode_open_loop(slice::IsolationMode::kSgx, ue_count, rate_per_s);
    return 0;
  }

  std::printf("registering %u UEs per isolation mode via gNBSIM\n\n",
              ue_count);
  run_mode(slice::IsolationMode::kMonolithic, ue_count);
  run_mode(slice::IsolationMode::kContainer, ue_count);
  run_mode(slice::IsolationMode::kSgx, ue_count);
  return 0;
}
