// Mass registration: the paper's gNBSIM methodology (§V-A) — establish
// many gNB-UE connections against the core at scale and characterise
// the latency distribution per isolation mode.
//
//   $ ./mass_registration [ue_count]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ran/ue.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

void run_mode(slice::IsolationMode mode, std::uint32_t ue_count) {
  slice::SliceConfig config;
  config.mode = mode;
  config.subscriber_count = ue_count;
  slice::Slice slice(config);
  slice.create();

  std::vector<ran::UeDevice> ues;
  ues.reserve(ue_count);
  for (std::uint32_t i = 0; i < ue_count; ++i) {
    ues.emplace_back(slice.subscriber(i), 0x5eed + i);
  }
  const auto results = slice.gnbsim().run_mass(ues, /*with_pdu=*/true);

  std::uint32_t sessions = 0;
  for (const auto& r : results) sessions += r.session_up ? 1 : 0;
  const Summary setup = Summary::of(slice.gnbsim().setup_ms());
  std::printf("%-11s: %u/%u sessions up, setup %s\n",
              slice::isolation_mode_name(mode), sessions, ue_count,
              setup.to_string("ms").c_str());
  if (mode == slice::IsolationMode::kSgx) {
    std::printf("             eUDM served %llu requests, L_F p50 %.1f us, "
                "L_T p50 %.1f us\n",
                static_cast<unsigned long long>(
                    slice.eudm()->server().requests_served()),
                slice.eudm()->server().lf_us().median(),
                slice.eudm()->server().lt_us().median());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t ue_count =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 100;
  std::printf("registering %u UEs per isolation mode via gNBSIM\n\n",
              ue_count);
  run_mode(slice::IsolationMode::kMonolithic, ue_count);
  run_mode(slice::IsolationMode::kContainer, ue_count);
  run_mode(slice::IsolationMode::kSgx, ue_count);
  return 0;
}
