// Over-the-air registration with a COTS UE model (paper §V-B6).
//
// Recreates the paper's Fig. 11 scenario: a OnePlus 8 with an OpenCells
// SIM programmed to test PLMN 00101 camps on the OAI gNB (USRP X310
// analogue) and registers through the SGX-isolated AKA functions,
// including the two real-world gates the paper documents.
//
//   $ ./ota_registration
#include <cstdio>

#include "ran/cots_ue.h"
#include "slice/slice.h"

using namespace shield5g;

int main() {
  slice::SliceConfig config;
  config.mode = slice::IsolationMode::kSgx;
  config.subscriber_count = 1;
  slice::Slice slice(config);
  slice.create();

  const ran::CellConfig& cell = slice.gnb().cell();
  std::printf("gNB broadcast: PLMN %s-%s, %.4f GHz, %u PRBs\n",
              cell.plmn.mcc.c_str(), cell.plmn.mnc.c_str(),
              cell.frequency_ghz, cell.prbs);

  // The phone as the paper configured it (Table IV).
  ran::CotsModel phone_model;
  std::printf("UE: %s, OS %s, SIM programmed to PLMN 00101\n\n",
              phone_model.model.c_str(), phone_model.os_version.c_str());

  ran::CotsUe phone(phone_model, slice.subscriber(0));
  const ran::OtaOutcome outcome =
      phone.connect({cell}, slice.gnbsim());
  std::printf("OTA attempt: %s\n", ran::ota_outcome_name(outcome));
  if (outcome == ran::OtaOutcome::kConnected) {
    std::printf("status bar : \"%s\"\n", phone.network_name().c_str());
    std::printf("UE IP      : %s\n", phone.device().ue_ip().c_str());
    std::printf("GUTI       : %s\n", phone.device().guti().c_str());
  }

  // What the paper had to get right for this to work:
  std::printf("\nwhy the gates matter (paper §V-B6):\n");
  {
    ran::CotsUe probe(phone_model, slice.subscriber(0), 2);
    ran::CellConfig custom = cell;
    custom.plmn = nf::Plmn{"123", "45"};
    std::printf("  custom PLMN 12345      -> %s\n",
                ran::ota_outcome_name(
                    probe.connect({custom}, slice.gnbsim())));
  }
  {
    ran::CotsModel wrong_os = phone_model;
    wrong_os.os_version = "Oxygen 12.0.0.0";
    ran::CotsUe probe(wrong_os, slice.subscriber(0), 3);
    std::printf("  unvalidated OS build   -> %s\n",
                ran::ota_outcome_name(
                    probe.connect({cell}, slice.gnbsim())));
  }
  return outcome == ran::OtaOutcome::kConnected ? 0 : 1;
}
