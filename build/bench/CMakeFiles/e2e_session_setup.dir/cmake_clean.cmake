file(REMOVE_RECURSE
  "CMakeFiles/e2e_session_setup.dir/e2e_session_setup.cpp.o"
  "CMakeFiles/e2e_session_setup.dir/e2e_session_setup.cpp.o.d"
  "e2e_session_setup"
  "e2e_session_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_session_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
