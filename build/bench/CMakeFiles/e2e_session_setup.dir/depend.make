# Empty dependencies file for e2e_session_setup.
# This may be replaced when dependencies are built.
