file(REMOVE_RECURSE
  "CMakeFiles/fig9_latency.dir/fig9_latency.cpp.o"
  "CMakeFiles/fig9_latency.dir/fig9_latency.cpp.o.d"
  "fig9_latency"
  "fig9_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
