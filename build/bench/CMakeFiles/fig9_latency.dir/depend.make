# Empty dependencies file for fig9_latency.
# This may be replaced when dependencies are built.
