file(REMOVE_RECURSE
  "CMakeFiles/table5_key_issues.dir/table5_key_issues.cpp.o"
  "CMakeFiles/table5_key_issues.dir/table5_key_issues.cpp.o.d"
  "table5_key_issues"
  "table5_key_issues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_key_issues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
