# Empty compiler generated dependencies file for table5_key_issues.
# This may be replaced when dependencies are built.
