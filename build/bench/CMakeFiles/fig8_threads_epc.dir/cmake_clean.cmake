file(REMOVE_RECURSE
  "CMakeFiles/fig8_threads_epc.dir/fig8_threads_epc.cpp.o"
  "CMakeFiles/fig8_threads_epc.dir/fig8_threads_epc.cpp.o.d"
  "fig8_threads_epc"
  "fig8_threads_epc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_threads_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
