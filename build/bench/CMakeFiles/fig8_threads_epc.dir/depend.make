# Empty dependencies file for fig8_threads_epc.
# This may be replaced when dependencies are built.
