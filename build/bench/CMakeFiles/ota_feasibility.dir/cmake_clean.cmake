file(REMOVE_RECURSE
  "CMakeFiles/ota_feasibility.dir/ota_feasibility.cpp.o"
  "CMakeFiles/ota_feasibility.dir/ota_feasibility.cpp.o.d"
  "ota_feasibility"
  "ota_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ota_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
