# Empty dependencies file for ota_feasibility.
# This may be replaced when dependencies are built.
