file(REMOVE_RECURSE
  "CMakeFiles/ablation_preheat.dir/ablation_preheat.cpp.o"
  "CMakeFiles/ablation_preheat.dir/ablation_preheat.cpp.o.d"
  "ablation_preheat"
  "ablation_preheat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preheat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
