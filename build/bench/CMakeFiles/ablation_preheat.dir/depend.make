# Empty dependencies file for ablation_preheat.
# This may be replaced when dependencies are built.
