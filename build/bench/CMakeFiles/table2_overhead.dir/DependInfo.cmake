
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_overhead.cpp" "bench/CMakeFiles/table2_overhead.dir/table2_overhead.cpp.o" "gcc" "bench/CMakeFiles/table2_overhead.dir/table2_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_paka.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_ki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
