file(REMOVE_RECURSE
  "CMakeFiles/fig7_enclave_load.dir/fig7_enclave_load.cpp.o"
  "CMakeFiles/fig7_enclave_load.dir/fig7_enclave_load.cpp.o.d"
  "fig7_enclave_load"
  "fig7_enclave_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_enclave_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
