# Empty compiler generated dependencies file for fig7_enclave_load.
# This may be replaced when dependencies are built.
