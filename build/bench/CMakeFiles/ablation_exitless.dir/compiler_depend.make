# Empty compiler generated dependencies file for ablation_exitless.
# This may be replaced when dependencies are built.
