file(REMOVE_RECURSE
  "CMakeFiles/ablation_exitless.dir/ablation_exitless.cpp.o"
  "CMakeFiles/ablation_exitless.dir/ablation_exitless.cpp.o.d"
  "ablation_exitless"
  "ablation_exitless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exitless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
