file(REMOVE_RECURSE
  "CMakeFiles/ablation_direct_chain.dir/ablation_direct_chain.cpp.o"
  "CMakeFiles/ablation_direct_chain.dir/ablation_direct_chain.cpp.o.d"
  "ablation_direct_chain"
  "ablation_direct_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_direct_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
