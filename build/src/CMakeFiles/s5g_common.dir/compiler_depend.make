# Empty compiler generated dependencies file for s5g_common.
# This may be replaced when dependencies are built.
