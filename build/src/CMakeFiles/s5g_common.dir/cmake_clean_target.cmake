file(REMOVE_RECURSE
  "libs5g_common.a"
)
