file(REMOVE_RECURSE
  "CMakeFiles/s5g_common.dir/common/bytes.cpp.o"
  "CMakeFiles/s5g_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/s5g_common.dir/common/hex.cpp.o"
  "CMakeFiles/s5g_common.dir/common/hex.cpp.o.d"
  "CMakeFiles/s5g_common.dir/common/log.cpp.o"
  "CMakeFiles/s5g_common.dir/common/log.cpp.o.d"
  "CMakeFiles/s5g_common.dir/common/rng.cpp.o"
  "CMakeFiles/s5g_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/s5g_common.dir/common/stats.cpp.o"
  "CMakeFiles/s5g_common.dir/common/stats.cpp.o.d"
  "libs5g_common.a"
  "libs5g_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
