file(REMOVE_RECURSE
  "CMakeFiles/s5g_sgx.dir/sgx/attestation.cpp.o"
  "CMakeFiles/s5g_sgx.dir/sgx/attestation.cpp.o.d"
  "CMakeFiles/s5g_sgx.dir/sgx/cost_model.cpp.o"
  "CMakeFiles/s5g_sgx.dir/sgx/cost_model.cpp.o.d"
  "CMakeFiles/s5g_sgx.dir/sgx/enclave.cpp.o"
  "CMakeFiles/s5g_sgx.dir/sgx/enclave.cpp.o.d"
  "CMakeFiles/s5g_sgx.dir/sgx/epc.cpp.o"
  "CMakeFiles/s5g_sgx.dir/sgx/epc.cpp.o.d"
  "CMakeFiles/s5g_sgx.dir/sgx/machine.cpp.o"
  "CMakeFiles/s5g_sgx.dir/sgx/machine.cpp.o.d"
  "CMakeFiles/s5g_sgx.dir/sgx/sealing.cpp.o"
  "CMakeFiles/s5g_sgx.dir/sgx/sealing.cpp.o.d"
  "libs5g_sgx.a"
  "libs5g_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
