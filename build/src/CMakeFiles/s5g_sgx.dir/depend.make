# Empty dependencies file for s5g_sgx.
# This may be replaced when dependencies are built.
