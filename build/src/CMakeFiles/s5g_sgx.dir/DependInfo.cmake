
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/attestation.cpp" "src/CMakeFiles/s5g_sgx.dir/sgx/attestation.cpp.o" "gcc" "src/CMakeFiles/s5g_sgx.dir/sgx/attestation.cpp.o.d"
  "/root/repo/src/sgx/cost_model.cpp" "src/CMakeFiles/s5g_sgx.dir/sgx/cost_model.cpp.o" "gcc" "src/CMakeFiles/s5g_sgx.dir/sgx/cost_model.cpp.o.d"
  "/root/repo/src/sgx/enclave.cpp" "src/CMakeFiles/s5g_sgx.dir/sgx/enclave.cpp.o" "gcc" "src/CMakeFiles/s5g_sgx.dir/sgx/enclave.cpp.o.d"
  "/root/repo/src/sgx/epc.cpp" "src/CMakeFiles/s5g_sgx.dir/sgx/epc.cpp.o" "gcc" "src/CMakeFiles/s5g_sgx.dir/sgx/epc.cpp.o.d"
  "/root/repo/src/sgx/machine.cpp" "src/CMakeFiles/s5g_sgx.dir/sgx/machine.cpp.o" "gcc" "src/CMakeFiles/s5g_sgx.dir/sgx/machine.cpp.o.d"
  "/root/repo/src/sgx/sealing.cpp" "src/CMakeFiles/s5g_sgx.dir/sgx/sealing.cpp.o" "gcc" "src/CMakeFiles/s5g_sgx.dir/sgx/sealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
