file(REMOVE_RECURSE
  "libs5g_sgx.a"
)
