file(REMOVE_RECURSE
  "libs5g_libos.a"
)
