
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libos/gsc.cpp" "src/CMakeFiles/s5g_libos.dir/libos/gsc.cpp.o" "gcc" "src/CMakeFiles/s5g_libos.dir/libos/gsc.cpp.o.d"
  "/root/repo/src/libos/manifest.cpp" "src/CMakeFiles/s5g_libos.dir/libos/manifest.cpp.o" "gcc" "src/CMakeFiles/s5g_libos.dir/libos/manifest.cpp.o.d"
  "/root/repo/src/libos/runtime.cpp" "src/CMakeFiles/s5g_libos.dir/libos/runtime.cpp.o" "gcc" "src/CMakeFiles/s5g_libos.dir/libos/runtime.cpp.o.d"
  "/root/repo/src/libos/trusted_files.cpp" "src/CMakeFiles/s5g_libos.dir/libos/trusted_files.cpp.o" "gcc" "src/CMakeFiles/s5g_libos.dir/libos/trusted_files.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
