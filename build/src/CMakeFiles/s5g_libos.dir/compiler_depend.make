# Empty compiler generated dependencies file for s5g_libos.
# This may be replaced when dependencies are built.
