file(REMOVE_RECURSE
  "CMakeFiles/s5g_libos.dir/libos/gsc.cpp.o"
  "CMakeFiles/s5g_libos.dir/libos/gsc.cpp.o.d"
  "CMakeFiles/s5g_libos.dir/libos/manifest.cpp.o"
  "CMakeFiles/s5g_libos.dir/libos/manifest.cpp.o.d"
  "CMakeFiles/s5g_libos.dir/libos/runtime.cpp.o"
  "CMakeFiles/s5g_libos.dir/libos/runtime.cpp.o.d"
  "CMakeFiles/s5g_libos.dir/libos/trusted_files.cpp.o"
  "CMakeFiles/s5g_libos.dir/libos/trusted_files.cpp.o.d"
  "libs5g_libos.a"
  "libs5g_libos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_libos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
