file(REMOVE_RECURSE
  "CMakeFiles/s5g_json.dir/json/json.cpp.o"
  "CMakeFiles/s5g_json.dir/json/json.cpp.o.d"
  "libs5g_json.a"
  "libs5g_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
