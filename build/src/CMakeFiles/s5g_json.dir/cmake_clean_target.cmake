file(REMOVE_RECURSE
  "libs5g_json.a"
)
