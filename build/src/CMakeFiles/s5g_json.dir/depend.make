# Empty dependencies file for s5g_json.
# This may be replaced when dependencies are built.
