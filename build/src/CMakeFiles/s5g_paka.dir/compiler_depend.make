# Empty compiler generated dependencies file for s5g_paka.
# This may be replaced when dependencies are built.
