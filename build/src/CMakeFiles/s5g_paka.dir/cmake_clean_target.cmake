file(REMOVE_RECURSE
  "libs5g_paka.a"
)
