file(REMOVE_RECURSE
  "CMakeFiles/s5g_paka.dir/paka/aka_amf.cpp.o"
  "CMakeFiles/s5g_paka.dir/paka/aka_amf.cpp.o.d"
  "CMakeFiles/s5g_paka.dir/paka/aka_ausf.cpp.o"
  "CMakeFiles/s5g_paka.dir/paka/aka_ausf.cpp.o.d"
  "CMakeFiles/s5g_paka.dir/paka/aka_udm.cpp.o"
  "CMakeFiles/s5g_paka.dir/paka/aka_udm.cpp.o.d"
  "CMakeFiles/s5g_paka.dir/paka/deployment.cpp.o"
  "CMakeFiles/s5g_paka.dir/paka/deployment.cpp.o.d"
  "libs5g_paka.a"
  "libs5g_paka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_paka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
