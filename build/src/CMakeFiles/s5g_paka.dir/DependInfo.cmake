
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paka/aka_amf.cpp" "src/CMakeFiles/s5g_paka.dir/paka/aka_amf.cpp.o" "gcc" "src/CMakeFiles/s5g_paka.dir/paka/aka_amf.cpp.o.d"
  "/root/repo/src/paka/aka_ausf.cpp" "src/CMakeFiles/s5g_paka.dir/paka/aka_ausf.cpp.o" "gcc" "src/CMakeFiles/s5g_paka.dir/paka/aka_ausf.cpp.o.d"
  "/root/repo/src/paka/aka_udm.cpp" "src/CMakeFiles/s5g_paka.dir/paka/aka_udm.cpp.o" "gcc" "src/CMakeFiles/s5g_paka.dir/paka/aka_udm.cpp.o.d"
  "/root/repo/src/paka/deployment.cpp" "src/CMakeFiles/s5g_paka.dir/paka/deployment.cpp.o" "gcc" "src/CMakeFiles/s5g_paka.dir/paka/deployment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
