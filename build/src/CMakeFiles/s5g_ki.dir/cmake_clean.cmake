file(REMOVE_RECURSE
  "CMakeFiles/s5g_ki.dir/ki/key_issues.cpp.o"
  "CMakeFiles/s5g_ki.dir/ki/key_issues.cpp.o.d"
  "libs5g_ki.a"
  "libs5g_ki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_ki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
