file(REMOVE_RECURSE
  "libs5g_ki.a"
)
