# Empty compiler generated dependencies file for s5g_ki.
# This may be replaced when dependencies are built.
