file(REMOVE_RECURSE
  "CMakeFiles/s5g_crypto.dir/crypto/aes128.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/aes128.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/ecies.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/ecies.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/hmac_sha256.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/hmac_sha256.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/kdf.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/kdf.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/key_hierarchy.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/key_hierarchy.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/milenage.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/milenage.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/op_count.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/op_count.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/suci.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/suci.cpp.o.d"
  "CMakeFiles/s5g_crypto.dir/crypto/x25519.cpp.o"
  "CMakeFiles/s5g_crypto.dir/crypto/x25519.cpp.o.d"
  "libs5g_crypto.a"
  "libs5g_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
