file(REMOVE_RECURSE
  "libs5g_crypto.a"
)
