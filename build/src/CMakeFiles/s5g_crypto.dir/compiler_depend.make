# Empty compiler generated dependencies file for s5g_crypto.
# This may be replaced when dependencies are built.
