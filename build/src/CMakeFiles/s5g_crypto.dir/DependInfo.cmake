
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/aes128.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/aes128.cpp.o.d"
  "/root/repo/src/crypto/ecies.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/ecies.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/ecies.cpp.o.d"
  "/root/repo/src/crypto/hmac_sha256.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/hmac_sha256.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/hmac_sha256.cpp.o.d"
  "/root/repo/src/crypto/kdf.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/kdf.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/kdf.cpp.o.d"
  "/root/repo/src/crypto/key_hierarchy.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/key_hierarchy.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/key_hierarchy.cpp.o.d"
  "/root/repo/src/crypto/milenage.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/milenage.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/milenage.cpp.o.d"
  "/root/repo/src/crypto/op_count.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/op_count.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/op_count.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/suci.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/suci.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/suci.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/CMakeFiles/s5g_crypto.dir/crypto/x25519.cpp.o" "gcc" "src/CMakeFiles/s5g_crypto.dir/crypto/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
