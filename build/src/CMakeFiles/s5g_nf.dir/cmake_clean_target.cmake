file(REMOVE_RECURSE
  "libs5g_nf.a"
)
