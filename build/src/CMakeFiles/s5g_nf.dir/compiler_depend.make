# Empty compiler generated dependencies file for s5g_nf.
# This may be replaced when dependencies are built.
