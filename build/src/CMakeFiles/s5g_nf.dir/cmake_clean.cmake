file(REMOVE_RECURSE
  "CMakeFiles/s5g_nf.dir/nf/aka_core.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/aka_core.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/amf.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/amf.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/ausf.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/ausf.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/nas.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/nas.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/ngap.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/ngap.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/nrf.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/nrf.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/smf.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/smf.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/types.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/types.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/udm.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/udm.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/udr.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/udr.cpp.o.d"
  "CMakeFiles/s5g_nf.dir/nf/upf.cpp.o"
  "CMakeFiles/s5g_nf.dir/nf/upf.cpp.o.d"
  "libs5g_nf.a"
  "libs5g_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
