
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/aka_core.cpp" "src/CMakeFiles/s5g_nf.dir/nf/aka_core.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/aka_core.cpp.o.d"
  "/root/repo/src/nf/amf.cpp" "src/CMakeFiles/s5g_nf.dir/nf/amf.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/amf.cpp.o.d"
  "/root/repo/src/nf/ausf.cpp" "src/CMakeFiles/s5g_nf.dir/nf/ausf.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/ausf.cpp.o.d"
  "/root/repo/src/nf/nas.cpp" "src/CMakeFiles/s5g_nf.dir/nf/nas.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/nas.cpp.o.d"
  "/root/repo/src/nf/ngap.cpp" "src/CMakeFiles/s5g_nf.dir/nf/ngap.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/ngap.cpp.o.d"
  "/root/repo/src/nf/nrf.cpp" "src/CMakeFiles/s5g_nf.dir/nf/nrf.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/nrf.cpp.o.d"
  "/root/repo/src/nf/smf.cpp" "src/CMakeFiles/s5g_nf.dir/nf/smf.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/smf.cpp.o.d"
  "/root/repo/src/nf/types.cpp" "src/CMakeFiles/s5g_nf.dir/nf/types.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/types.cpp.o.d"
  "/root/repo/src/nf/udm.cpp" "src/CMakeFiles/s5g_nf.dir/nf/udm.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/udm.cpp.o.d"
  "/root/repo/src/nf/udr.cpp" "src/CMakeFiles/s5g_nf.dir/nf/udr.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/udr.cpp.o.d"
  "/root/repo/src/nf/upf.cpp" "src/CMakeFiles/s5g_nf.dir/nf/upf.cpp.o" "gcc" "src/CMakeFiles/s5g_nf.dir/nf/upf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
