# Empty dependencies file for s5g_sim.
# This may be replaced when dependencies are built.
