file(REMOVE_RECURSE
  "libs5g_sim.a"
)
