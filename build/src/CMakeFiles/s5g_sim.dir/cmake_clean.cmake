file(REMOVE_RECURSE
  "CMakeFiles/s5g_sim.dir/sim/clock.cpp.o"
  "CMakeFiles/s5g_sim.dir/sim/clock.cpp.o.d"
  "CMakeFiles/s5g_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/s5g_sim.dir/sim/scheduler.cpp.o.d"
  "libs5g_sim.a"
  "libs5g_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
