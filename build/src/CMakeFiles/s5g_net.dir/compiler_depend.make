# Empty compiler generated dependencies file for s5g_net.
# This may be replaced when dependencies are built.
