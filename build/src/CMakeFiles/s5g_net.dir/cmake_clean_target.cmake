file(REMOVE_RECURSE
  "libs5g_net.a"
)
