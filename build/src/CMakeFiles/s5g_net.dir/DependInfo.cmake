
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bus.cpp" "src/CMakeFiles/s5g_net.dir/net/bus.cpp.o" "gcc" "src/CMakeFiles/s5g_net.dir/net/bus.cpp.o.d"
  "/root/repo/src/net/http.cpp" "src/CMakeFiles/s5g_net.dir/net/http.cpp.o" "gcc" "src/CMakeFiles/s5g_net.dir/net/http.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/CMakeFiles/s5g_net.dir/net/router.cpp.o" "gcc" "src/CMakeFiles/s5g_net.dir/net/router.cpp.o.d"
  "/root/repo/src/net/tls.cpp" "src/CMakeFiles/s5g_net.dir/net/tls.cpp.o" "gcc" "src/CMakeFiles/s5g_net.dir/net/tls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
