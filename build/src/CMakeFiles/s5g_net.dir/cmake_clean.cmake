file(REMOVE_RECURSE
  "CMakeFiles/s5g_net.dir/net/bus.cpp.o"
  "CMakeFiles/s5g_net.dir/net/bus.cpp.o.d"
  "CMakeFiles/s5g_net.dir/net/http.cpp.o"
  "CMakeFiles/s5g_net.dir/net/http.cpp.o.d"
  "CMakeFiles/s5g_net.dir/net/router.cpp.o"
  "CMakeFiles/s5g_net.dir/net/router.cpp.o.d"
  "CMakeFiles/s5g_net.dir/net/tls.cpp.o"
  "CMakeFiles/s5g_net.dir/net/tls.cpp.o.d"
  "libs5g_net.a"
  "libs5g_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
