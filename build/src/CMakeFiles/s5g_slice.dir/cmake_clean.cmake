file(REMOVE_RECURSE
  "CMakeFiles/s5g_slice.dir/slice/slice.cpp.o"
  "CMakeFiles/s5g_slice.dir/slice/slice.cpp.o.d"
  "libs5g_slice.a"
  "libs5g_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
