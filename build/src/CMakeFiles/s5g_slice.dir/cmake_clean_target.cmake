file(REMOVE_RECURSE
  "libs5g_slice.a"
)
