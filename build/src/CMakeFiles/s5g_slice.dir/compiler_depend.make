# Empty compiler generated dependencies file for s5g_slice.
# This may be replaced when dependencies are built.
