file(REMOVE_RECURSE
  "libs5g_ran.a"
)
