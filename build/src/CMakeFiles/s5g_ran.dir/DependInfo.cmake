
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/cots_ue.cpp" "src/CMakeFiles/s5g_ran.dir/ran/cots_ue.cpp.o" "gcc" "src/CMakeFiles/s5g_ran.dir/ran/cots_ue.cpp.o.d"
  "/root/repo/src/ran/gnb.cpp" "src/CMakeFiles/s5g_ran.dir/ran/gnb.cpp.o" "gcc" "src/CMakeFiles/s5g_ran.dir/ran/gnb.cpp.o.d"
  "/root/repo/src/ran/gnbsim.cpp" "src/CMakeFiles/s5g_ran.dir/ran/gnbsim.cpp.o" "gcc" "src/CMakeFiles/s5g_ran.dir/ran/gnbsim.cpp.o.d"
  "/root/repo/src/ran/radio.cpp" "src/CMakeFiles/s5g_ran.dir/ran/radio.cpp.o" "gcc" "src/CMakeFiles/s5g_ran.dir/ran/radio.cpp.o.d"
  "/root/repo/src/ran/ue.cpp" "src/CMakeFiles/s5g_ran.dir/ran/ue.cpp.o" "gcc" "src/CMakeFiles/s5g_ran.dir/ran/ue.cpp.o.d"
  "/root/repo/src/ran/usim.cpp" "src/CMakeFiles/s5g_ran.dir/ran/usim.cpp.o" "gcc" "src/CMakeFiles/s5g_ran.dir/ran/usim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s5g_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
