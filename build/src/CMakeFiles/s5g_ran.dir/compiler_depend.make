# Empty compiler generated dependencies file for s5g_ran.
# This may be replaced when dependencies are built.
