file(REMOVE_RECURSE
  "CMakeFiles/s5g_ran.dir/ran/cots_ue.cpp.o"
  "CMakeFiles/s5g_ran.dir/ran/cots_ue.cpp.o.d"
  "CMakeFiles/s5g_ran.dir/ran/gnb.cpp.o"
  "CMakeFiles/s5g_ran.dir/ran/gnb.cpp.o.d"
  "CMakeFiles/s5g_ran.dir/ran/gnbsim.cpp.o"
  "CMakeFiles/s5g_ran.dir/ran/gnbsim.cpp.o.d"
  "CMakeFiles/s5g_ran.dir/ran/radio.cpp.o"
  "CMakeFiles/s5g_ran.dir/ran/radio.cpp.o.d"
  "CMakeFiles/s5g_ran.dir/ran/ue.cpp.o"
  "CMakeFiles/s5g_ran.dir/ran/ue.cpp.o.d"
  "CMakeFiles/s5g_ran.dir/ran/usim.cpp.o"
  "CMakeFiles/s5g_ran.dir/ran/usim.cpp.o.d"
  "libs5g_ran.a"
  "libs5g_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5g_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
