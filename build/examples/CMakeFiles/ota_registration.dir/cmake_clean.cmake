file(REMOVE_RECURSE
  "CMakeFiles/ota_registration.dir/ota_registration.cpp.o"
  "CMakeFiles/ota_registration.dir/ota_registration.cpp.o.d"
  "ota_registration"
  "ota_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ota_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
