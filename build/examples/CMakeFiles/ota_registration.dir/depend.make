# Empty dependencies file for ota_registration.
# This may be replaced when dependencies are built.
