file(REMOVE_RECURSE
  "CMakeFiles/mass_registration.dir/mass_registration.cpp.o"
  "CMakeFiles/mass_registration.dir/mass_registration.cpp.o.d"
  "mass_registration"
  "mass_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mass_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
