# Empty dependencies file for mass_registration.
# This may be replaced when dependencies are built.
