file(REMOVE_RECURSE
  "CMakeFiles/slice_lifecycle.dir/slice_lifecycle.cpp.o"
  "CMakeFiles/slice_lifecycle.dir/slice_lifecycle.cpp.o.d"
  "slice_lifecycle"
  "slice_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
