# Empty compiler generated dependencies file for slice_lifecycle.
# This may be replaced when dependencies are built.
