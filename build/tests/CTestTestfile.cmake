# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/libos_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/nf_test[1]_include.cmake")
include("/root/repo/build/tests/paka_test[1]_include.cmake")
include("/root/repo/build/tests/ran_test[1]_include.cmake")
include("/root/repo/build/tests/slice_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ki_test[1]_include.cmake")
include("/root/repo/build/tests/procedures_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/negative_paths_test[1]_include.cmake")
