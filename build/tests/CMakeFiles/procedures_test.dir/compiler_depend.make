# Empty compiler generated dependencies file for procedures_test.
# This may be replaced when dependencies are built.
