file(REMOVE_RECURSE
  "CMakeFiles/procedures_test.dir/procedures_test.cpp.o"
  "CMakeFiles/procedures_test.dir/procedures_test.cpp.o.d"
  "procedures_test"
  "procedures_test.pdb"
  "procedures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procedures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
