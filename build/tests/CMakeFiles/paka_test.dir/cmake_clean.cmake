file(REMOVE_RECURSE
  "CMakeFiles/paka_test.dir/paka_test.cpp.o"
  "CMakeFiles/paka_test.dir/paka_test.cpp.o.d"
  "paka_test"
  "paka_test.pdb"
  "paka_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paka_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
