# Empty dependencies file for paka_test.
# This may be replaced when dependencies are built.
