file(REMOVE_RECURSE
  "CMakeFiles/ki_test.dir/ki_test.cpp.o"
  "CMakeFiles/ki_test.dir/ki_test.cpp.o.d"
  "ki_test"
  "ki_test.pdb"
  "ki_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
