# Empty dependencies file for ki_test.
# This may be replaced when dependencies are built.
