# Empty compiler generated dependencies file for negative_paths_test.
# This may be replaced when dependencies are built.
