file(REMOVE_RECURSE
  "CMakeFiles/negative_paths_test.dir/negative_paths_test.cpp.o"
  "CMakeFiles/negative_paths_test.dir/negative_paths_test.cpp.o.d"
  "negative_paths_test"
  "negative_paths_test.pdb"
  "negative_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negative_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
