// P-AKA module tests: functional correctness of the three services under
// both isolations, deployment lifecycle, sealed provisioning, quotes and
// SGX transition accounting per request.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/key_hierarchy.h"
#include "crypto/milenage.h"
#include "json/json.h"
#include "nf/aka_core.h"
#include "nf/sbi.h"
#include "paka/aka_amf.h"
#include "paka/aka_ausf.h"
#include "paka/aka_udm.h"
#include "sgx/sealing.h"

namespace shield5g::paka {
namespace {

class PakaFixture : public ::testing::TestWithParam<Isolation> {
 protected:
  void SetUp() override {
    options_.isolation = GetParam();
    k_ = rng_.bytes(16);
    opc_ = rng_.bytes(16);
  }

  PakaOptions options_;
  sim::VirtualClock clock_;
  sgx::Machine machine_{clock_};
  net::Bus bus_{clock_};
  Rng rng_{88};
  Bytes k_, opc_;
  const std::string supi_ = "001010000000001";
  const std::string snn_ = crypto::serving_network_name("001", "01");

  void provision(EudmAkaService& eudm) {
    if (eudm.isolation() == Isolation::kSgx) {
      std::map<nf::Supi, SecretBytes> keys{{nf::Supi{supi_}, k_}};
      const auto blob = sgx::seal(eudm.runtime()->enclave(),
                                  EudmAkaService::serialize_key_table(keys),
                                  rng_.bytes(16));
      ASSERT_TRUE(eudm.provision_sealed(blob));
    } else {
      eudm.provision_key(nf::Supi{supi_}, k_);
    }
  }

  json::Value body_of(const net::HttpResponse& resp) {
    return json::parse(resp.body);
  }
};

TEST_P(PakaFixture, EudmGeneratesCorrectAv) {
  EudmAkaService eudm(machine_, bus_, options_);
  eudm.deploy();
  provision(eudm);

  const Bytes rand = rng_.bytes(16);
  const Bytes sqn = {0, 0, 0, 0, 0x10, 0};
  json::Object body;
  body["supi"] = supi_;
  // lint-audited(secret-sink: fixture key material serialized over the in-proc bus on purpose)
  body["opc"] = nf::hex_field(opc_);
  body["rand"] = nf::hex_field(rand);
  body["sqn"] = nf::hex_field(sqn);
  body["amfId"] = nf::hex_field(Bytes{0x80, 0x00});
  body["snn"] = snn_;
  const auto resp = bus_.request(
      "udm", "eudm-aka",
      nf::json_post("/paka/v1/generate-av", json::Value(std::move(body))));
  ASSERT_EQ(resp.response.status, 200);
  const auto out = body_of(resp.response);

  // The module's output must equal a direct computation with the same
  // inputs (bit-exactness across isolation modes).
  const nf::HeAv expected = nf::generate_he_av(
      k_, opc_, rand, sqn, Bytes{0x80, 0x00}, snn_);
  EXPECT_EQ(*nf::hex_bytes(out, "autn"), expected.autn);
  EXPECT_EQ(*nf::hex_bytes(out, "xresStar"), expected.xres_star);
  EXPECT_EQ(*nf::hex_bytes(out, "kausf"), expected.kausf);
}

TEST_P(PakaFixture, EudmRejectsUnknownSupiAndBadParams) {
  EudmAkaService eudm(machine_, bus_, options_);
  eudm.deploy();
  provision(eudm);

  json::Object body;
  body["supi"] = "001019999999999";
  // lint-audited(secret-sink: fixture key material serialized over the in-proc bus on purpose)
  body["opc"] = nf::hex_field(opc_);
  body["rand"] = nf::hex_field(rng_.bytes(16));
  body["sqn"] = nf::hex_field(Bytes(6, 0));
  body["amfId"] = nf::hex_field(Bytes(2, 0));
  body["snn"] = snn_;
  EXPECT_EQ(bus_.request("udm", "eudm-aka",
                         nf::json_post("/paka/v1/generate-av",
                                       json::Value(body)))
                .response.status,
            404);
  body["supi"] = supi_;
  body["rand"] = nf::hex_field(Bytes(8, 0));  // wrong size
  EXPECT_EQ(bus_.request("udm", "eudm-aka",
                         nf::json_post("/paka/v1/generate-av",
                                       json::Value(body)))
                .response.status,
            400);
}

TEST_P(PakaFixture, EudmResyncEndpoint) {
  EudmAkaService eudm(machine_, bus_, options_);
  eudm.deploy();
  provision(eudm);

  const Bytes rand = rng_.bytes(16);
  const Bytes sqn_ms = {0, 0, 0, 0, 0x42, 0};
  const Bytes auts = nf::build_auts(k_, opc_, rand, sqn_ms);
  json::Object body;
  body["supi"] = supi_;
  // lint-audited(secret-sink: fixture key material serialized over the in-proc bus on purpose)
  body["opc"] = nf::hex_field(opc_);
  body["rand"] = nf::hex_field(rand);
  body["auts"] = nf::hex_field(auts);
  const auto resp = bus_.request(
      "udm", "eudm-aka",
      nf::json_post("/paka/v1/resync", json::Value(std::move(body))));
  ASSERT_EQ(resp.response.status, 200);
  EXPECT_EQ(*nf::hex_bytes(body_of(resp.response), "sqnMs"), sqn_ms);
}

TEST_P(PakaFixture, EausfDerivesSeVector) {
  EausfAkaService eausf(machine_, bus_, options_);
  eausf.deploy();

  const Bytes rand = rng_.bytes(16);
  const Bytes xres = rng_.bytes(16);
  const Bytes kausf = rng_.bytes(32);
  json::Object body;
  body["rand"] = nf::hex_field(rand);
  body["xresStar"] = nf::hex_field(xres);
  body["snn"] = snn_;
  // lint-audited(secret-sink: fixture key material serialized over the in-proc bus on purpose)
  body["kausf"] = nf::hex_field(kausf);
  const auto resp = bus_.request(
      "ausf", "eausf-aka",
      nf::json_post("/paka/v1/derive-se", json::Value(std::move(body))));
  ASSERT_EQ(resp.response.status, 200);
  const auto out = body_of(resp.response);
  const nf::SeDerivation expected = nf::derive_se(rand, xres, kausf, snn_);
  EXPECT_EQ(*nf::hex_bytes(out, "hxresStar"), expected.hxres_star);
  EXPECT_EQ(*nf::hex_bytes(out, "kseaf"), expected.kseaf);
  EXPECT_EQ(nf::hex_bytes(out, "hxresStar")->size(), 8u);  // Table I
}

TEST_P(PakaFixture, EamfDerivesKamf) {
  EamfAkaService eamf(machine_, bus_, options_);
  eamf.deploy();

  const Bytes kseaf = rng_.bytes(32);
  json::Object body;
  // lint-audited(secret-sink: fixture key material serialized over the in-proc bus on purpose)
  body["kseaf"] = nf::hex_field(kseaf);
  body["supi"] = supi_;
  const auto resp = bus_.request(
      "amf", "eamf-aka",
      nf::json_post("/paka/v1/derive-kamf", json::Value(std::move(body))));
  ASSERT_EQ(resp.response.status, 200);
  EXPECT_EQ(*nf::hex_bytes(body_of(resp.response), "kamf"),
            nf::derive_kamf_for(kseaf, supi_));
}

TEST_P(PakaFixture, HealthEndpoint) {
  EamfAkaService eamf(machine_, bus_, options_);
  eamf.deploy();
  const auto resp =
      bus_.request("amf", "eamf-aka", nf::sbi_get("/paka/v1/health"));
  EXPECT_EQ(resp.response.status, 200);
}

INSTANTIATE_TEST_SUITE_P(
    BothIsolations, PakaFixture,
    ::testing::Values(Isolation::kContainer, Isolation::kSgx),
    [](const ::testing::TestParamInfo<Isolation>& info) {
      return info.param == Isolation::kSgx ? "Sgx" : "Container";
    });

// ---------------------------------------------------------------------
// Deployment specifics
// ---------------------------------------------------------------------

class DeployFixture : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  sgx::Machine machine_{clock_};
  net::Bus bus_{clock_};
  Rng rng_{99};
};

TEST_F(DeployFixture, SgxDeployTakesAboutAMinuteContainerDoesNot) {
  PakaOptions sgx_opts;
  sgx_opts.isolation = Isolation::kSgx;
  EudmAkaService eudm(machine_, bus_, sgx_opts);
  const sim::Nanos sgx_load = eudm.deploy();
  EXPECT_GT(sim::to_s(sgx_load), 50.0);
  EXPECT_LT(sim::to_s(sgx_load), 65.0);

  PakaOptions cont_opts;
  cont_opts.isolation = Isolation::kContainer;
  EausfAkaService eausf(machine_, bus_, cont_opts);
  const sim::Nanos container_load = eausf.deploy();
  EXPECT_LT(sim::to_s(container_load), 2.0);
}

TEST_F(DeployFixture, LifecycleGuards) {
  PakaOptions opts;
  opts.isolation = Isolation::kContainer;
  EamfAkaService eamf(machine_, bus_, opts);
  EXPECT_FALSE(eamf.deployed());
  eamf.deploy();
  EXPECT_TRUE(eamf.deployed());
  EXPECT_THROW(eamf.deploy(), std::logic_error);
  EXPECT_THROW(eamf.quote(Bytes{}), std::logic_error);  // nothing to attest
  eamf.undeploy();
  EXPECT_FALSE(eamf.deployed());
  eamf.deploy();  // redeploy works
  EXPECT_TRUE(eamf.deployed());
}

TEST_F(DeployFixture, UndeployReleasesEpc) {
  PakaOptions opts;
  opts.isolation = Isolation::kSgx;
  const std::uint64_t free0 = machine_.epc().free_bytes();
  EudmAkaService eudm(machine_, bus_, opts);
  eudm.deploy();
  EXPECT_LT(machine_.epc().free_bytes(), free0);
  eudm.undeploy();
  EXPECT_EQ(machine_.epc().free_bytes(), free0);
}

TEST_F(DeployFixture, SealedProvisioningRejectsWrongEnclave) {
  PakaOptions opts;
  opts.isolation = Isolation::kSgx;
  EudmAkaService eudm(machine_, bus_, opts);
  eudm.deploy();
  EausfAkaService other(machine_, bus_, opts);
  other.deploy();

  std::map<nf::Supi, SecretBytes> keys{{nf::Supi{"001010000000001"},
                                  Bytes(16, 1)}};
  // Sealed to the *wrong* enclave: eUDM must reject it.
  const auto blob = sgx::seal(other.runtime()->enclave(),
                              EudmAkaService::serialize_key_table(keys),
                              rng_.bytes(16));
  EXPECT_FALSE(eudm.provision_sealed(blob));
  EXPECT_EQ(eudm.key_count(), 0u);
}

TEST_F(DeployFixture, SealedProvisioningRejectsTamperedBlob) {
  PakaOptions opts;
  opts.isolation = Isolation::kSgx;
  EudmAkaService eudm(machine_, bus_, opts);
  eudm.deploy();
  std::map<nf::Supi, SecretBytes> keys{{nf::Supi{"001010000000001"},
                                  Bytes(16, 1)}};
  auto blob = sgx::seal(eudm.runtime()->enclave(),
                        EudmAkaService::serialize_key_table(keys),
                        rng_.bytes(16));
  blob.ciphertext[2] ^= 0x01;
  EXPECT_FALSE(eudm.provision_sealed(blob));
}

TEST_F(DeployFixture, QuoteBindsModuleMeasurement) {
  PakaOptions opts;
  opts.isolation = Isolation::kSgx;
  EudmAkaService eudm(machine_, bus_, opts);
  eudm.deploy();
  const auto quote = eudm.quote(to_bytes("nonce"));
  EXPECT_EQ(quote.measurement, eudm.runtime()->enclave().measurement());
  const sgx::AttestationVerifier verifier(
      Bytes(machine_.attestation_key().begin(),
            machine_.attestation_key().end()));
  EXPECT_TRUE(verifier.verify(quote, quote.measurement));
}

TEST_F(DeployFixture, PerRequestTransitionsNearPaperValue) {
  PakaOptions opts;
  opts.isolation = Isolation::kSgx;
  EamfAkaService eamf(machine_, bus_, opts);
  eamf.deploy();

  json::Object body;
  body["kseaf"] = nf::hex_field(Bytes(32, 7));
  body["supi"] = "001010000000001";
  const auto req =
      nf::json_post("/paka/v1/derive-kamf", json::Value(std::move(body)));

  bus_.request("amf", "eamf-aka", req);  // first request walks cold paths
  const auto c1 = *eamf.sgx_counters();
  bus_.request("amf", "eamf-aka", req);
  const auto c2 = *eamf.sgx_counters();
  const auto delta = c2 - c1;
  // Paper §V-B5: ~90 EENTERs/EEXITs per UE registration per module.
  EXPECT_GT(delta.eenter, 60u);
  EXPECT_LT(delta.eenter, 130u);
  EXPECT_EQ(delta.eenter, delta.eexit);  // steady state is balanced
}

TEST_F(DeployFixture, FirstRequestIsMuchSlower) {
  PakaOptions opts;
  opts.isolation = Isolation::kSgx;
  EamfAkaService eamf(machine_, bus_, opts);
  eamf.deploy();

  json::Object body;
  body["kseaf"] = nf::hex_field(Bytes(32, 7));
  body["supi"] = "001010000000001";
  const auto req =
      nf::json_post("/paka/v1/derive-kamf", json::Value(std::move(body)));

  const auto first = bus_.request("amf", "eamf-aka", req);
  const auto second = bus_.request("amf", "eamf-aka", req);
  // Paper Fig. 10: R_I ~ 20x R_S.
  const double ratio = static_cast<double>(first.response_ns) /
                       static_cast<double>(second.response_ns);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 40.0);
}

TEST_F(DeployFixture, ExitlessReducesTransitions) {
  PakaOptions normal;
  normal.isolation = Isolation::kSgx;
  EamfAkaService a(machine_, bus_, normal, "eamf-a");
  a.deploy();

  PakaOptions exitless = normal;
  exitless.exitless = true;
  EamfAkaService b(machine_, bus_, exitless, "eamf-b");
  b.deploy();

  json::Object body;
  body["kseaf"] = nf::hex_field(Bytes(32, 7));
  body["supi"] = "001010000000001";
  const auto req =
      nf::json_post("/paka/v1/derive-kamf", json::Value(std::move(body)));
  bus_.request("amf", "eamf-a", req);
  bus_.request("amf", "eamf-b", req);
  const auto a1 = *a.sgx_counters();
  const auto b1 = *b.sgx_counters();
  bus_.request("amf", "eamf-a", req);
  bus_.request("amf", "eamf-b", req);
  const auto da = *a.sgx_counters() - a1;
  const auto db = *b.sgx_counters() - b1;
  EXPECT_EQ(db.eenter, 0u);      // switchless: no transitions
  EXPECT_GT(da.eenter, 50u);
}

}  // namespace
}  // namespace shield5g::paka
