// Monte Carlo host-thread driver (src/load/montecarlo.h): determinism
// independent of thread count, and thread-safety of the declassify
// audit counters it hammers. This is the workload the TSan CI stage
// (scripts/ci.sh tsan) runs under -fsanitize=thread.
#include "load/montecarlo.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/secret.h"
#include "common/stats.h"
#include "crypto/kdf.h"

namespace shield5g {
namespace {

// One simulated seed-sweep job: derive a key from the seed and lower it
// through the transport gate, as every per-seed slice replay does.
std::uint64_t job(std::size_t seed) {
  Rng rng(static_cast<std::uint64_t>(seed) + 1);
  const SecretBytes key(rng.bytes(32));
  const Bytes derived =
      crypto::kdf(key, 0x6c, {{to_bytes("montecarlo")}});
  const Bytes out = SecretBytes(derived).declassify(
      DeclassifyReason::kTransport, nullptr);
  std::uint64_t acc = 0;
  for (std::uint8_t byte : out) acc = acc * 131 + byte;
  return acc;
}

TEST(MonteCarlo, ResultsIndependentOfThreadCount) {
  const auto serial = load::monte_carlo(96, job, 1);
  const auto parallel = load::monte_carlo(96, job, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial, parallel);
}

TEST(MonteCarlo, DeclassifyCountersAccumulateAcrossThreads) {
  counters_reset();
  (void)load::monte_carlo(200, job, 8);
  // Every job declassifies exactly once; the counter map is shared
  // mutable state across all host threads (the TSan target).
  EXPECT_EQ(counter_value("secret.declassify.transport.host"), 200u);
  EXPECT_EQ(counter_value("secret.declassify.denied"), 0u);
}

TEST(MonteCarlo, ZeroJobsAndImplicitThreadCount) {
  EXPECT_TRUE(load::monte_carlo(0, job).empty());
  EXPECT_EQ(load::monte_carlo(3, job).size(), 3u);
}

}  // namespace
}  // namespace shield5g
