// Monte Carlo host-thread driver (src/load/montecarlo.h): determinism
// independent of thread count, and thread-safety of the shared mutable
// state the shard runner exposes — the declassify audit counters, the
// sharded stats registry, and the process-wide X25519 comb-table cache.
// This is the workload the TSan CI stage (scripts/ci.sh tsan) runs
// under -fsanitize=thread; every test here keeps the MonteCarlo prefix
// so that stage's -R '^MonteCarlo' filter picks it up.
#include "load/montecarlo.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "common/rng.h"
#include "common/secret.h"
#include "common/stats.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/eph_pool.h"
#include "crypto/kdf.h"
#include "crypto/x25519.h"
#include "crypto/x25519_internal.h"
#include "load/serving.h"
#include "net/tls.h"
#include "nf/subscriber_store.h"
#include "sim/spsc_mailbox.h"

namespace shield5g {
namespace {

// One simulated seed-sweep job: derive a key from the seed and lower it
// through the transport gate, as every per-seed slice replay does.
std::uint64_t job(std::size_t seed) {
  Rng rng(static_cast<std::uint64_t>(seed) + 1);
  const SecretBytes key(rng.bytes(32));
  const Bytes derived =
      crypto::kdf(key, 0x6c, {{to_bytes("montecarlo")}});
  const Bytes out = SecretBytes(derived).declassify(
      DeclassifyReason::kTransport, nullptr);
  std::uint64_t acc = 0;
  for (std::uint8_t byte : out) acc = acc * 131 + byte;
  return acc;
}

TEST(MonteCarlo, ResultsIndependentOfThreadCount) {
  const auto serial = load::monte_carlo(96, job, 1);
  const auto parallel = load::monte_carlo(96, job, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial, parallel);
}

TEST(MonteCarlo, DeclassifyCountersAccumulateAcrossThreads) {
  counters_reset();
  (void)load::monte_carlo(200, job, 8);
  // Every job declassifies exactly once; the counter map is shared
  // mutable state across all host threads (the TSan target).
  EXPECT_EQ(counter_value("secret.declassify.transport.host"), 200u);
  EXPECT_EQ(counter_value("secret.declassify.denied"), 0u);
}

TEST(MonteCarlo, ZeroJobsAndImplicitThreadCount) {
  EXPECT_TRUE(load::monte_carlo(0, job).empty());
  EXPECT_EQ(load::monte_carlo(3, job).size(), 3u);
}

class ForcedBackend {
 public:
  explicit ForcedBackend(crypto::CryptoBackend backend) {
    crypto::force_backend(backend);
  }
  ~ForcedBackend() { crypto::clear_forced_backend(); }
};

// A fixed set of curve points every thread keeps revisiting: the base
// point plus a handful of public keys (always valid u-coordinates).
// Revisits push the per-thread sighting counters past the publish
// threshold on many threads at once, so the once-per-point table
// builds and the lock-free hit path race against each other — the
// exact pattern shard workers produce on a shared deployment key.
std::vector<Bytes> comb_hammer_points() {
  std::vector<Bytes> points;
  points.push_back(Bytes(32, 0));
  points.back()[0] = 9;  // the X25519 base point: the hottest entry
  Rng rng(0xC04BULL);
  for (int i = 0; i < 5; ++i) {
    const SecretBytes scalar(rng.bytes(32));
    const crypto::X25519Key pub = crypto::x25519_public(scalar);
    points.emplace_back(pub.begin(), pub.end());
  }
  return points;
}

std::uint64_t comb_job(const std::vector<Bytes>& points, std::size_t seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 1);
  const SecretBytes scalar(rng.bytes(32));
  std::uint64_t acc = 0;
  // Six passes per point: past the build threshold within one job.
  for (int pass = 0; pass < 6; ++pass) {
    for (const Bytes& u : points) {
      const crypto::X25519Key key = crypto::x25519(scalar, u);
      // lint-audited(ct-flow: digest accumulation reads every output byte unconditionally)
      for (std::uint8_t byte : key) acc = acc * 131 + byte;
    }
  }
  return acc;
}

TEST(MonteCarlo, SharedCombCacheIsRaceFreeAndThreadCountInvariant) {
  // Pin the comb path on before any worker spawns (dispatch contract),
  // and reset the shared cache only while single-threaded.
  ForcedBackend pin(crypto::CryptoBackend::kAccelerated);
  const std::vector<Bytes> points = comb_hammer_points();

  crypto::detail::x25519_cache_reset();
  const auto serial = load::monte_carlo(
      32, [&points](std::size_t i) { return comb_job(points, i); }, 1);
  const std::size_t serial_cache = crypto::detail::x25519_cache_size();

  crypto::detail::x25519_cache_reset();
  const auto parallel = load::monte_carlo(
      32, [&points](std::size_t i) { return comb_job(points, i); }, 8);
  const std::size_t parallel_cache = crypto::detail::x25519_cache_size();

  // Same keys regardless of which thread built or reused each table.
  EXPECT_EQ(serial, parallel);
  // Every hammered point ends up published exactly once — concurrent
  // builders must dedupe, and hits must not re-publish.
  EXPECT_EQ(serial_cache, points.size());
  EXPECT_EQ(parallel_cache, points.size());
  crypto::detail::x25519_cache_reset();
}

// Wire-path pool hammer: every worker thread churns its thread-local
// slab pool (all size classes plus the oversize fall-through) with live
// nested borrows, the prepend/chop framing moves the TLS path uses, and
// a per-job fold into the shared wire.pool.* counters. The pools
// themselves are thread-local by contract; the race surface under TSan
// is the counter registry fold and the allocator underneath.
std::uint64_t pool_job(std::size_t seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 7);
  BufferPool& pool = BufferPool::local();
  // Mid-class sizes plus one past the largest class (oversize path).
  const std::size_t wants[] = {96, 600, 4000, 20000, 140000};
  std::uint64_t acc = 0;
  for (int i = 0; i < 40; ++i) {
    PooledBuffer buf = pool.acquire(wants[rng.uniform(5)] + 21, 21);
    const std::size_t n = 1 + rng.uniform(64);
    std::uint8_t* out = buf.grow(n);
    for (std::size_t b = 0; b < n; ++b) {
      out[b] = static_cast<std::uint8_t>(seed + b);
    }
    buf.prepend(5);  // record header in the headroom, then strip it
    for (int h = 0; h < 5; ++h) buf.data()[h] = 0xee;
    buf.chop_front(5);
    // A nested borrow while the first slab is live: the classes must
    // not hand out the same slab twice.
    PooledBuffer inner = pool.acquire(256, 5);
    inner.append(buf.view());
    EXPECT_NE(inner.data(), buf.data());
    for (std::size_t b = 0; b < n; ++b) acc = acc * 131 + buf.data()[b];
    for (std::size_t b = 0; b < n; ++b) {
      EXPECT_EQ(inner.data()[b], buf.data()[b]);
    }
  }
  BufferPool::publish_thread_stats();
  return acc;
}

TEST(MonteCarlo, BufferPoolHammerIsRaceFreeAndThreadCountInvariant) {
  BufferPool::publish_thread_stats();  // flush stale main-thread deltas
  counters_reset();
  const auto serial = load::monte_carlo(96, pool_job, 1);
  const std::uint64_t serial_acquires =
      counter_value("wire.pool.hit") + counter_value("wire.pool.miss");
  const std::uint64_t serial_bytes = counter_value("wire.pool.bytes");

  counters_reset();
  const auto parallel = load::monte_carlo(96, pool_job, 8);
  const std::uint64_t parallel_acquires =
      counter_value("wire.pool.hit") + counter_value("wire.pool.miss");

  // Payload contents (and so the fold of every slab's bytes) must not
  // depend on which thread ran which job.
  EXPECT_EQ(serial, parallel);
  // Hit/miss split differs per thread (each warms its own pool), but
  // total acquires and requested bytes are workload properties.
  EXPECT_EQ(serial_acquires, parallel_acquires);
  EXPECT_EQ(serial_acquires, 96u * 40u * 2u);
  EXPECT_EQ(counter_value("wire.pool.bytes"), serial_bytes);
  // The oversize class is deterministic too: it only depends on the
  // requested capacities, never on pool warmth.
  EXPECT_GT(counter_value("wire.pool.oversize"), 0u);
  counters_reset();
}

TEST(MonteCarlo, EphemeralPoolHammerIsRaceFreeAndThreadCountInvariant) {
  // One shared pool, many threads draining it concurrently: acquire()
  // must never hand the same keypair to two callers (each scalar is
  // generated once), refills must be race-free, and the generated()
  // total must be a workload property, not a schedule property.
  crypto::EphemeralKeyPool::Config cfg;
  cfg.capacity = 32;
  cfg.seed = 0xE9AULL;

  const auto hammer = [](crypto::EphemeralKeyPool& pool, unsigned threads) {
    // Commutative fold (sum of per-key folds): hand-out order differs
    // per schedule, the multiset of keys must not.
    const auto acquired = load::monte_carlo(
        96,
        [&pool](std::size_t) {
          std::uint64_t acc = 0;
          for (int i = 0; i < 5; ++i) {
            const crypto::X25519KeyPair kp = pool.acquire();
            std::uint64_t h = 0xcbf29ce484222325ULL;
            for (std::uint8_t b : kp.public_key) {
              h = (h ^ b) * 0x100000001b3ULL;
            }
            acc += h;
          }
          return acc;
        },
        threads);
    std::uint64_t sum = 0;
    for (const std::uint64_t a : acquired) sum += a;
    return sum;
  };

  counters_reset();
  crypto::EphemeralKeyPool serial_pool(cfg);
  const std::uint64_t serial = hammer(serial_pool, 1);
  const std::uint64_t serial_hits = counter_value("x25519.pool.hit");

  counters_reset();
  crypto::EphemeralKeyPool parallel_pool(cfg);
  const std::uint64_t parallel = hammer(parallel_pool, 8);

  EXPECT_EQ(serial, parallel) << "pool handed out schedule-dependent keys";
  EXPECT_EQ(serial_hits, 96u * 5u);
  EXPECT_EQ(counter_value("x25519.pool.hit"), 96u * 5u);
  // ceil(480 / 32) refills of 32 keys each, schedule-independent. The
  // refill_keys counter tallies key pairs (not refill batches), so it
  // equals generated() and is always >= the hit count.
  EXPECT_EQ(serial_pool.generated(), parallel_pool.generated());
  EXPECT_EQ(parallel_pool.generated(), 480u);
  EXPECT_EQ(counter_value("x25519.pool.refill_keys"), 480u);
  counters_reset();
}

TEST(MonteCarlo, EphemeralPoolSharedHammerIsRaceFreeAndSecretsCheckOut) {
  // acquire_shared under contention: one peer key, 8 threads. The
  // multiset of handed-out pairs must be schedule-independent (prepared
  // FIFO drains in total order under the lock), every bundled shared
  // secret must equal a from-scratch X25519 against the peer, and the
  // generated() total must be a workload property.
  crypto::EphemeralKeyPool::Config cfg;
  cfg.capacity = 32;
  cfg.seed = 0x5EAULL;
  const crypto::X25519Key peer =
      crypto::x25519_public(SecretView(Bytes(32, 0x42)));

  const auto hammer = [&peer](crypto::EphemeralKeyPool& pool,
                              unsigned threads) {
    const auto acquired = load::monte_carlo(
        64,
        [&pool, &peer](std::size_t) {
          std::uint64_t acc = 0;
          for (int i = 0; i < 4; ++i) {
            const crypto::X25519SharedKeyPair prep =
                pool.acquire_shared(ByteView(peer));
            EXPECT_EQ(prep.shared,
                      crypto::x25519(prep.kp.private_key, ByteView(peer)));
            std::uint64_t h = 0xcbf29ce484222325ULL;
            for (std::uint8_t b : prep.kp.public_key) {
              h = (h ^ b) * 0x100000001b3ULL;
            }
            acc += h;
          }
          return acc;
        },
        threads);
    std::uint64_t sum = 0;
    for (const std::uint64_t a : acquired) sum += a;
    return sum;
  };

  counters_reset();
  crypto::EphemeralKeyPool serial_pool(cfg);
  const std::uint64_t serial = hammer(serial_pool, 1);
  const std::uint64_t serial_hits = counter_value("x25519.pool.hit");

  counters_reset();
  crypto::EphemeralKeyPool parallel_pool(cfg);
  const std::uint64_t parallel = hammer(parallel_pool, 8);

  EXPECT_EQ(serial, parallel)
      << "shared pool handed out schedule-dependent pairs";
  EXPECT_EQ(serial_hits, 64u * 4u);
  EXPECT_EQ(counter_value("x25519.pool.hit"), 64u * 4u);
  EXPECT_EQ(serial_pool.generated(), parallel_pool.generated());
  // Prepared groups (1, then 4-wide) stay counted: everything prepared
  // was eventually minted from the ring.
  EXPECT_GE(counter_value("x25519.pool.shared_keys"), 64u * 4u);
  counters_reset();
}

TEST(MonteCarlo, TicketIssuerHammerIsRaceFreeAndSingleUseHolds) {
  // One issuer (one strike register, one mutex) shared by 8 threads:
  // every job issues a ticket, redeems it once (must succeed) and
  // replays it (must fail) — element-wise invariant under any schedule,
  // with concurrent rotate-free epoch reads. The TSan CI stage runs
  // this against the same mutex the Bus uses per attachment.
  net::TicketIssuer issuer{SecretView(Bytes(32, 0x66)),
                           net::TicketIssuer::kDefaultLifetimeNs};
  const auto verdicts = load::monte_carlo(
      128,
      [&issuer](std::size_t i) -> std::uint64_t {
        Rng rng(static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL + 11);
        const Secret<32> secret{ByteView(rng.bytes(32))};
        const Bytes ticket = issuer.issue(secret, /*now_ns=*/0, rng);
        const auto first = issuer.redeem(ticket, 1);
        const auto replay = issuer.redeem(ticket, 1);
        // lint-audited(ct-flow: round-trip assertion compares recovered secret to the one issued)
        const bool key_match = first.has_value() && *first == secret;
        // lint-audited(ct-flow: test verdict bitmask over recovered keys; timing is not under test here)
        return (key_match ? 1u : 0u) | (replay.has_value() ? 2u : 0u);
      },
      8);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], 1u) << "job " << i
                               << ": redeem-once/reject-replay violated";
  }
}

TEST(MonteCarlo, ShardedCounterRegistryAccumulatesAcrossThreads) {
  counters_reset();
  // 24 distinct names spread across the registry's internal shards,
  // bumped from 8 threads, plus one name every thread fights over.
  (void)load::monte_carlo(
      96,
      [](std::size_t i) {
        counter_add("mc.shard." + std::to_string(i % 24));
        counter_add("mc.contended", 3);
        return i;
      },
      8);
  for (int n = 0; n < 24; ++n) {
    EXPECT_EQ(counter_value("mc.shard." + std::to_string(n)), 4u)
        << "name " << n;
  }
  EXPECT_EQ(counter_value("mc.contended"), 96u * 3u);
  // The merged snapshot must agree with the per-name reads.
  const auto snapshot = counters_snapshot();
  std::uint64_t total = 0;
  for (const auto& [name, value] : snapshot) {
    if (name.rfind("mc.", 0) == 0) total += value;
  }
  EXPECT_EQ(total, 96u + 96u * 3u);
  counters_reset();
}

TEST(MonteCarlo, SpscMailboxHammerIsLosslessAndOrdered) {
  // The serving plane's routing fabric under the TSan stage: many
  // producer/consumer pairs streaming through tiny rings concurrently.
  // Every stream must arrive complete and in order — any missed
  // synchronisation edge in the ring shows up here as a torn value,
  // a duplicate, or a TSan report.
  const auto sums = load::monte_carlo(
      16,
      [](std::size_t seed) {
        sim::SpscMailbox<std::uint32_t> mb(4);
        const std::uint32_t count = 2000 + static_cast<std::uint32_t>(seed);
        std::uint64_t sum = 0;
        std::uint32_t expect_next = 0;
        bool ordered = true;
        std::thread consumer([&] {
          std::uint32_t v = 0;
          while (!mb.drained()) {
            while (mb.try_pop(v)) {
              ordered = ordered && v == expect_next++;
              sum += v;
            }
            std::this_thread::yield();
          }
        });
        for (std::uint32_t i = 0; i < count; ++i) {
          while (!mb.try_push(i)) std::this_thread::yield();
        }
        mb.close();
        consumer.join();
        if (!ordered || expect_next != count) return std::uint64_t(0);
        return sum;
      },
      8);
  for (std::size_t seed = 0; seed < sums.size(); ++seed) {
    const std::uint64_t count = 2000 + seed;
    EXPECT_EQ(sums[seed], count * (count - 1) / 2) << "stream " << seed;
  }
}

TEST(MonteCarlo, ColumnarStoreConcurrentReadersAgree) {
  // One provisioned store, many reader threads: the store is
  // thread-confined for writes but read-shared once provisioning ends
  // (exactly the bench's post-provision phase). Readers hash disjoint
  // row walks; every thread must see identical column bytes.
  nf::SubscriberStore store;
  constexpr std::uint32_t kRows = 256;
  for (std::uint32_t i = 0; i < kRows; ++i) {
    nf::SubscriberRecord rec;
    char msin[16];
    std::snprintf(msin, sizeof(msin), "%010u", 100000000u + i);
    rec.supi = nf::Supi::from_parts(nf::Plmn{"001", "01"}, msin);
    Rng rng(i + 1);
    rec.k = SecretBytes(rng.bytes(16));
    rec.opc = SecretBytes(rng.bytes(16));
    rec.sqn = 0x100 + 0x40ULL * i;
    store.provision(rec);
  }
  const auto digests = load::monte_carlo(
      32,
      [&store](std::size_t seed) {
        std::uint64_t acc = 0xcbf29ce484222325ULL;
        for (std::uint32_t n = 0; n < kRows; ++n) {
          const std::uint32_t row = (n + static_cast<std::uint32_t>(seed)) %
                                    kRows;
          for (const char c : store.supi(row)) {
            acc = (acc ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
          }
          acc = (acc ^ store.sqn(row)) * 0x100000001b3ULL;
        }
        return acc;
      },
      8);
  const auto serial = load::monte_carlo(
      32,
      [&store](std::size_t seed) {
        std::uint64_t acc = 0xcbf29ce484222325ULL;
        for (std::uint32_t n = 0; n < kRows; ++n) {
          const std::uint32_t row = (n + static_cast<std::uint32_t>(seed)) %
                                    kRows;
          for (const char c : store.supi(row)) {
            acc = (acc ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
          }
          acc = (acc ^ store.sqn(row)) * 0x100000001b3ULL;
        }
        return acc;
      },
      1);
  EXPECT_EQ(digests, serial);
}

TEST(MonteCarlo, ServingPlaneHammerMatchesSequentialDigest) {
  // End-to-end hammer for the TSan stage: the full sharded serving
  // plane (mailbox routing + per-slot slices on worker threads) must
  // match its own sequential digest while racing detectors watch.
  load::ServingConfig cfg;
  cfg.slice.mode = slice::IsolationMode::kContainer;
  cfg.slice.seed = 0x7a55ULL;
  cfg.ue_count = 24;
  cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  cfg.arrivals.rate_per_s = 1000.0;
  cfg.mailbox_capacity = 2;  // maximise producer/consumer interleaving
  const load::ServingReport sequential = load::run_serving(cfg, 1);
  const load::ServingReport wide = load::run_serving(cfg, 4);
  EXPECT_EQ(wide.digest, sequential.digest);
  EXPECT_EQ(wide.digest_lines, sequential.digest_lines);
}

}  // namespace
}  // namespace shield5g
