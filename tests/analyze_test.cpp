// shield_analyze internals: lexer edge cases (raw strings, spliced
// comments, nested ternaries), ct-flow taint propagation, det-lint and
// lock-lint semantics, audit suppression, and the baseline ratchet
// (old findings masked, new findings never).
#include "analyze_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace shield5g::lint {
namespace {

bool has(const std::vector<Finding>& findings, const std::string& rule,
         int line) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.line == line;
                     });
}

int count_rule(const std::vector<Finding>& findings,
               const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

TEST(Lexer, RawStringWithEmbeddedQuoteDoesNotDesync) {
  const auto toks = lex(
      "const char* s = R\"(quote \" inside)\";\n"
      "int after = 1;\n");
  // `after` must survive as a token on line 2 — a naive string stripper
  // would treat the embedded quote as an opener and eat the next line.
  const auto it = std::find_if(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "after";
  });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->line, 2);
  // Nothing from inside the raw string leaks out as a token.
  EXPECT_TRUE(std::none_of(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "quote" || t.text == "inside";
  }));
}

TEST(Lexer, DelimitedRawString) {
  const auto toks = lex("auto s = R\"x(inner )\" still raw)x\"; int z;\n");
  EXPECT_TRUE(std::none_of(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "raw" || t.text == "inner";
  }));
  EXPECT_TRUE(std::any_of(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "z";
  }));
}

TEST(Lexer, BackslashNewlineSpliceJoinsIdentifiers) {
  const auto toks = lex("int S5G_\\\nLOG = 0;\n");
  const auto it = std::find_if(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "S5G_LOG";
  });
  ASSERT_NE(it, toks.end()) << "splice not folded";
  EXPECT_EQ(it->line, 1);
}

TEST(Lexer, SplicedLineCommentContinues) {
  // The comment's backslash-newline extends it over the second line; a
  // scanner that ends comments at the newline would see `hidden`.
  const auto toks = lex("int a; // comment \\\nint hidden;\nint b;\n");
  EXPECT_TRUE(std::none_of(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "hidden";
  }));
  const auto it = std::find_if(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "b";
  });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->line, 3);
}

TEST(Lexer, StringAndCharAndCommentsStripped) {
  const auto toks = lex(
      "int a = 'x'; /* block\n comment */ const char* s = \"str \\\" q\";\n"
      "int b;\n");
  EXPECT_TRUE(std::none_of(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "comment" || t.text == "str" || t.text == "x" ||
           t.text == "q";
  }));
  const auto it = std::find_if(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "b";
  });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->line, 3);
}

TEST(Lexer, DigitSeparatorIsNotACharLiteral) {
  const auto toks = lex("auto ns = 600'000'000; int tail = 7;\n");
  EXPECT_TRUE(std::any_of(toks.begin(), toks.end(), [](const Tok& t) {
    return t.text == "tail";
  }));
}

TEST(Lexer, NestedTernariesTokenize) {
  const auto toks = lex("int r = a ? (b ? 1 : 2) : (c ? 3 : 4);\n");
  EXPECT_EQ(std::count_if(toks.begin(), toks.end(),
                          [](const Tok& t) { return t.text == "?"; }),
            3);
  EXPECT_EQ(std::count_if(toks.begin(), toks.end(),
                          [](const Tok& t) { return t.text == ":"; }),
            3);
}

// ---------------------------------------------------------------------
// ct-flow taint propagation
// ---------------------------------------------------------------------

TEST(CtFlow, FlagsBranchOnSecretParameter) {
  const auto findings = scan_source(
      "ausf.cpp",
      "int f(const SecretBytes& kamf) {\n"
      "  if (kamf[0]) return 1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(has(findings, "ct-flow", 2));
}

TEST(CtFlow, TaintFlowsThroughAssignmentChain) {
  const auto findings = scan_source(
      "ausf.cpp",
      "int f(const SecretBytes& kseaf) {\n"
      "  auto a = mix(kseaf);\n"
      "  auto b = a;\n"
      "  return b ? 1 : 0;\n"
      "}\n");
  EXPECT_TRUE(has(findings, "ct-flow", 4));
}

TEST(CtFlow, MemcpyTaintsDestination) {
  const auto findings = scan_source(
      "ausf.cpp",
      "void f(const SecretBytes& kausf) {\n"
      "  std::uint8_t buf[32];\n"
      "  std::memcpy(buf, kausf.unsafe_bytes().data(), 32);\n"
      "  while (buf[0]) spin();\n"
      "}\n");
  EXPECT_TRUE(has(findings, "ct-flow", 4));
}

TEST(CtFlow, DeclassifyOutputIsPublic) {
  const auto findings = scan_source(
      "ausf.cpp",
      "int f(const SecretBytes& kamf, const sgx::EnclaveContext* ctx) {\n"
      "  const Bytes pub = kamf.declassify(DeclassifyReason::kTransport,"
      " ctx);\n"
      "  if (pub[0]) return 1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "ct-flow"), 0);
}

TEST(CtFlow, SizeAndEmptyAreSanitized) {
  const auto findings = scan_source(
      "ausf.cpp",
      "int f(const Secret<32>& k) {\n"
      "  if (k.size() != 32) return -1;\n"
      "  if (k.empty()) return -2;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "ct-flow"), 0);
}

TEST(CtFlow, SecretIndexedSubscript) {
  const auto findings = scan_source(
      "ausf.cpp",
      "std::uint8_t f(const Bytes& sbox, const SecretBytes& knas_enc) {\n"
      "  return sbox[knas_enc[5]];\n"
      "}\n");
  EXPECT_TRUE(has(findings, "ct-flow", 2));
}

TEST(CtFlow, TaintIsScopedPerFunction) {
  // `k` is secret in f() but a plain int in g(): no cross-function
  // bleed-through.
  const auto findings = scan_source(
      "ausf.cpp",
      "void f(const SecretBytes& k) { use(k); }\n"
      "int g(int k) {\n"
      "  if (k) return 1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "ct-flow"), 0);
}

TEST(CtFlow, CtAuditedSuppressesAndIsCounted) {
  AuditCounts audits;
  const auto findings = analyze_source(
      "ausf.cpp",
      "int f(const SecretBytes& kamf) {\n"
      "  // ct-audited(reviewed: branch is on a blinded value)\n"
      "  if (kamf[0]) return 1;\n"
      "  return 0;\n"
      "}\n",
      {}, {}, &audits);
  EXPECT_EQ(count_rule(findings, "ct-flow"), 0);
  EXPECT_EQ(audits.ct, 1);
}

// ---------------------------------------------------------------------
// det-lint
// ---------------------------------------------------------------------

TEST(DetLint, AppliesOnlyUnderSrc) {
  const std::string code =
      "std::uint64_t now() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch()"
      ".count();\n"
      "}\n";
  EXPECT_EQ(count_rule(scan_source("src/sim/clock2.cpp", code), "det-lint"),
            1);
  EXPECT_EQ(count_rule(scan_source("bench/timer.cpp", code), "det-lint"), 0);
}

TEST(DetLint, RngHomeIsExemptFromRandomnessRule) {
  const std::string code =
      "int f() { std::random_device rd; return rd(); }\n";
  EXPECT_EQ(count_rule(scan_source("src/common/rng.cpp", code), "det-lint"),
            0);
  EXPECT_EQ(count_rule(scan_source("src/common/other.cpp", code),
                       "det-lint"),
            1);
}

TEST(DetLint, UnorderedIterationSeenThroughSiblingHeader) {
  // The container is declared in the header; the .cpp iterates it. The
  // sibling-header merge closes this TU-boundary blind spot.
  const std::string header =
      "struct Registry { std::unordered_map<int, int> table; };\n";
  const std::string cpp =
      "std::uint64_t Registry::digest() {\n"
      "  std::uint64_t d = 0;\n"
      "  for (const auto& [k, v] : table) d ^= v;\n"
      "  return d;\n"
      "}\n";
  const auto with = analyze_source("src/common/reg.cpp", cpp, header);
  EXPECT_TRUE(has(with, "det-lint", 3));
  const auto without = analyze_source("src/common/reg.cpp", cpp);
  EXPECT_EQ(count_rule(without, "det-lint"), 0);
}

TEST(DetLint, PointerKeyedOrderedContainer) {
  const auto findings = scan_source(
      "src/net/track.cpp", "std::map<const Conn*, int> order;\n");
  EXPECT_TRUE(has(findings, "det-lint", 1));
  const auto benign = scan_source(
      "src/net/track.cpp", "std::map<std::string, Conn*> byname;\n");
  EXPECT_EQ(count_rule(benign, "det-lint"), 0);
}

// ---------------------------------------------------------------------
// lock-lint
// ---------------------------------------------------------------------

const char* kLockSnippet =
    "class T {\n"
    " public:\n"
    "  void good() {\n"
    "    std::lock_guard<std::mutex> lock(mu_);\n"
    "    n_ = 1;\n"
    "  }\n"
    "  int bad() { return n_; }\n"
    " private:\n"
    "  std::mutex mu_;\n"
    "  int n_ SHIELD_GUARDED_BY(mu_) = 0;\n"
    "};\n";

TEST(LockLint, GuardedMemberNeedsTheLock) {
  const auto findings = scan_source("src/common/t.cpp", kLockSnippet);
  EXPECT_EQ(count_rule(findings, "lock-lint"), 1);
  EXPECT_TRUE(has(findings, "lock-lint", 7));
}

TEST(LockLint, AtomicMemberReadsAreWaitFree) {
  const auto findings = scan_source(
      "src/common/t.cpp",
      "class T {\n"
      "  std::mutex mu_;\n"
      "  std::atomic<int> n_ SHIELD_GUARDED_BY(mu_){0};\n"
      " public:\n"
      "  int read() const { return n_.load(); }\n"
      "  void bump() { n_.fetch_add(1); }\n"
      "  void safe_bump() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    n_.fetch_add(1);\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(count_rule(findings, "lock-lint"), 1);
  EXPECT_TRUE(has(findings, "lock-lint", 6));
}

TEST(LockLint, RequiresContractCheckedAtCallSites) {
  const auto findings = scan_source(
      "src/crypto/p.cpp",
      "class P {\n"
      "  std::mutex mu_;\n"
      "  void refill_locked() SHIELD_REQUIRES(mu_);\n"
      " public:\n"
      "  void bad() { refill_locked(); }\n"
      "  void good() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    refill_locked();\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(count_rule(findings, "lock-lint"), 1);
  EXPECT_TRUE(has(findings, "lock-lint", 5));
}

TEST(LockLint, RequiresBodyRunsWithTheContractHeld) {
  const auto header =
      "class P {\n"
      "  std::mutex mu_;\n"
      "  int n_ SHIELD_GUARDED_BY(mu_) = 0;\n"
      "  void refill_locked() SHIELD_REQUIRES(mu_);\n"
      "};\n";
  const auto findings = analyze_source(
      "src/crypto/p.cpp", "void P::refill_locked() { n_ = 7; }\n", header);
  EXPECT_EQ(count_rule(findings, "lock-lint"), 0);
}

TEST(LockLint, ConstructorBodiesAreExempt) {
  const auto header =
      "class P {\n"
      "  std::mutex mu_;\n"
      "  int n_ SHIELD_GUARDED_BY(mu_);\n"
      "  P();\n"
      "};\n";
  const auto findings = analyze_source(
      "src/crypto/p.cpp", "P::P() : n_(0) { n_ = 1; }\n", header);
  EXPECT_EQ(count_rule(findings, "lock-lint"), 0);
}

TEST(LockLint, ThreadConfinedIsExempt) {
  const auto findings = scan_source(
      "src/common/t.cpp",
      "struct T {\n"
      "  int scratch_[4] SHIELD_THREAD_CONFINED;\n"
      "  void reset() { scratch_[0] = 0; }\n"
      "};\n");
  EXPECT_EQ(count_rule(findings, "lock-lint"), 0);
}

// ---------------------------------------------------------------------
// Audit markers
// ---------------------------------------------------------------------

TEST(Audits, LegacyMarkerHonoredOnlyUnderTestsAndTools) {
  const std::string code =
      "void f(const SecretBytes& kamf) {\n"
      "  // lint-audited(secret-sink: deliberate fixture for the harness)\n"
      "  S5G_LOG(LogLevel::kInfo, \"t\") << kamf;\n"
      "}\n";
  EXPECT_EQ(count_rule(scan_source("tests/harness.cpp", code),
                       "secret-sink"),
            0);
  EXPECT_EQ(count_rule(scan_source("src/nf/ausf.cpp", code), "secret-sink"),
            1);
}

// ---------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------

TEST(Baseline, MasksOldFindingsButNeverNewOnes) {
  const std::vector<Finding> old = {
      {"src/a.cpp", 10, "det-lint", "wall-clock source `steady_clock` x"},
      {"src/a.cpp", 20, "det-lint", "wall-clock source `steady_clock` x"},
  };
  const auto baseline = parse_baseline(serialize_baseline(old));
  // The same two findings (lines moved: keys are line-independent).
  std::vector<Finding> now = {
      {"src/a.cpp", 11, "det-lint", "wall-clock source `steady_clock` x"},
      {"src/a.cpp", 22, "det-lint", "wall-clock source `steady_clock` x"},
  };
  EXPECT_TRUE(filter_with_baseline(now, baseline).empty());
  // A third instance of the same key exceeds the grandfathered count.
  now.push_back(
      {"src/a.cpp", 30, "det-lint", "wall-clock source `steady_clock` x"});
  auto fresh = filter_with_baseline(now, baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].line, 30);
  // A different rule/message is new regardless of the baseline.
  now.pop_back();
  now.push_back({"src/a.cpp", 40, "lock-lint", "`x` touched without lock"});
  fresh = filter_with_baseline(now, baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "lock-lint");
}

TEST(Baseline, RoundTripsThroughSerialization) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 1, "ct-flow", "branch on a secret-derived value"},
      {"src/b.cpp", 2, "det-lint", "iteration over unordered container"},
      {"src/b.cpp", 3, "det-lint", "iteration over unordered container"},
  };
  const auto parsed = parse_baseline(serialize_baseline(findings));
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(filter_with_baseline(findings, parsed).empty());
}

TEST(Baseline, CommentsAndBlanksIgnored) {
  const auto parsed = parse_baseline(
      "# header\n\n1\tsrc/a.cpp\t[ct-flow]\tmsg\n# trailing\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.begin()->second, 1);
}

// ---------------------------------------------------------------------
// Multi-line regression (the PR 2 blind spot, in-memory)
// ---------------------------------------------------------------------

TEST(MultiLine, SinkSplitAcrossLinesIsStillSeen) {
  const auto findings = scan_source(
      "src/nf/ausf.cpp",
      "void f(const SecretBytes& kseaf) {\n"
      "  S5G_LOG(LogLevel::kInfo,\n"
      "          \"ausf\")\n"
      "      << kseaf;\n"
      "}\n");
  EXPECT_TRUE(has(findings, "secret-sink", 4));
}

TEST(MultiLine, SplicedSinkIdentifierIsStillSeen) {
  const auto findings = scan_source(
      "src/nf/ausf.cpp",
      "void f(const SecretBytes& kamf) {\n"
      "  S5G_\\\nLOG(LogLevel::kInfo, \"amf\") << kamf;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "secret-sink"), 1);
}

}  // namespace
}  // namespace shield5g::lint
