// Deterministic replay under the concurrent-registration engine: the
// same slice seed + workload config must produce bit-identical event
// traces and summary statistics across independent runs. This is the
// property every experiment in EXPERIMENTS.md leans on — without it the
// load benches would not be reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/cpu_dispatch.h"
#include "load/generator.h"
#include "slice/slice.h"

namespace shield5g {
namespace {

load::LoadReport run_once(slice::IsolationMode mode, std::uint64_t slice_seed,
                          const load::LoadConfig& load_cfg) {
  slice::SliceConfig config;
  config.mode = mode;
  config.subscriber_count = load_cfg.ue_count;
  config.seed = slice_seed;
  slice::Slice slice(config);
  slice.create();
  load::LoadGenerator generator;
  return generator.run(slice, load_cfg);
}

void expect_identical(const load::LoadReport& a, const load::LoadReport& b) {
  // Trace first: a mismatch here names the first diverging event.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i], b.trace[i]) << "first divergence at event " << i;
  }
  EXPECT_EQ(a.trace_hash, b.trace_hash);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.registered, b.registered);
  EXPECT_EQ(a.sessions_up, b.sessions_up);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.makespan, b.makespan);
  // Bit-identical, not approximately equal: the virtual-time engine has
  // no tolerance to hide behind.
  EXPECT_EQ(a.setup_ms.values(), b.setup_ms.values());
  EXPECT_EQ(a.arrival_ms.values(), b.arrival_ms.values());
  EXPECT_EQ(a.offered_rate_per_s, b.offered_rate_per_s);
  EXPECT_EQ(a.achieved_rate_per_s, b.achieved_rate_per_s);
}

load::LoadConfig contended_config() {
  load::LoadConfig cfg;
  cfg.ue_count = 60;
  cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  cfg.arrivals.rate_per_s = 2000.0;  // well past the knee: queues engage
  cfg.record_trace = true;
  return cfg;
}

TEST(Determinism, ContainerReplayIsBitIdentical) {
  const load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee1ULL, cfg);
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee1ULL, cfg);
  expect_identical(a, b);
  EXPECT_GT(a.registered, 0u);
  EXPECT_FALSE(a.trace.empty());
}

TEST(Determinism, SgxReplayIsBitIdentical) {
  // SGX single-worker modules queue hardest — the strongest replay test.
  const load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kSgx, 0xd5ee2ULL, cfg);
  const auto b = run_once(slice::IsolationMode::kSgx, 0xd5ee2ULL, cfg);
  expect_identical(a, b);
  EXPECT_GT(a.registered, 0u);
}

TEST(Determinism, BurstArrivalsReplayIsBitIdentical) {
  load::LoadConfig cfg = contended_config();
  cfg.arrivals.kind = load::ArrivalKind::kBurst;
  cfg.arrivals.burst_size = 12;
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee3ULL, cfg);
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee3ULL, cfg);
  expect_identical(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the hash actually discriminates: a different
  // workload seed must move at least the arrival instants.
  load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee4ULL, cfg);
  cfg.seed ^= 1;
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee4ULL, cfg);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

class ForcedBackend {
 public:
  explicit ForcedBackend(crypto::CryptoBackend backend) {
    crypto::force_backend(backend);
  }
  ~ForcedBackend() { crypto::clear_forced_backend(); }
};

TEST(Determinism, ScalarAndAcceleratedBackendsReplayBitIdentically) {
  // The hardware kernels and the Edwards-comb X25519 path are pure
  // wall-clock optimizations: with the dispatch pinned to either side,
  // the same workload must produce the same bytes, trace and stats.
  const load::LoadConfig cfg = contended_config();
  load::LoadReport scalar, accel;
  {
    ForcedBackend pin(crypto::CryptoBackend::kScalar);
    scalar = run_once(slice::IsolationMode::kSgx, 0xd5ee6ULL, cfg);
  }
  {
    ForcedBackend pin(crypto::CryptoBackend::kAccelerated);
    accel = run_once(slice::IsolationMode::kSgx, 0xd5ee6ULL, cfg);
  }
  expect_identical(scalar, accel);
  EXPECT_GT(scalar.registered, 0u);
}

TEST(Determinism, BackendReplayHoldsUnderContainerMode) {
  const load::LoadConfig cfg = contended_config();
  load::LoadReport scalar, accel;
  {
    ForcedBackend pin(crypto::CryptoBackend::kScalar);
    scalar = run_once(slice::IsolationMode::kContainer, 0xd5ee7ULL, cfg);
  }
  {
    ForcedBackend pin(crypto::CryptoBackend::kAccelerated);
    accel = run_once(slice::IsolationMode::kContainer, 0xd5ee7ULL, cfg);
  }
  expect_identical(scalar, accel);
}

TEST(Determinism, TraceHashIndependentOfRecording) {
  // record_trace only keeps the lines; it must not change the hash.
  load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee5ULL, cfg);
  cfg.record_trace = false;
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee5ULL, cfg);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_TRUE(b.trace.empty());
}

}  // namespace
}  // namespace shield5g
