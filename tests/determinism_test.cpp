// Deterministic replay under the concurrent-registration engine: the
// same slice seed + workload config must produce bit-identical event
// traces and summary statistics across independent runs. This is the
// property every experiment in EXPERIMENTS.md leans on — without it the
// load benches would not be reproducible.
// The shard-pool sweeps extend the property across host threads: a
// parallel sweep must be bit-identical to the sequential one at every
// worker count (the ShardedSweep tests below).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/cpu_dispatch.h"
#include "load/generator.h"
#include "load/serving.h"
#include "load/sweep.h"
#include "slice/slice.h"

namespace shield5g {
namespace {

load::LoadReport run_once(slice::IsolationMode mode, std::uint64_t slice_seed,
                          const load::LoadConfig& load_cfg) {
  slice::SliceConfig config;
  config.mode = mode;
  config.subscriber_count = load_cfg.ue_count;
  config.seed = slice_seed;
  slice::Slice slice(config);
  slice.create();
  load::LoadGenerator generator;
  return generator.run(slice, load_cfg);
}

void expect_identical(const load::LoadReport& a, const load::LoadReport& b) {
  // Trace first: a mismatch here names the first diverging event.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i], b.trace[i]) << "first divergence at event " << i;
  }
  EXPECT_EQ(a.trace_hash, b.trace_hash);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.registered, b.registered);
  EXPECT_EQ(a.sessions_up, b.sessions_up);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.makespan, b.makespan);
  // Bit-identical, not approximately equal: the virtual-time engine has
  // no tolerance to hide behind.
  EXPECT_EQ(a.setup_ms.values(), b.setup_ms.values());
  EXPECT_EQ(a.arrival_ms.values(), b.arrival_ms.values());
  EXPECT_EQ(a.offered_rate_per_s, b.offered_rate_per_s);
  EXPECT_EQ(a.achieved_rate_per_s, b.achieved_rate_per_s);
}

load::LoadConfig contended_config() {
  load::LoadConfig cfg;
  cfg.ue_count = 60;
  cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  cfg.arrivals.rate_per_s = 2000.0;  // well past the knee: queues engage
  cfg.record_trace = true;
  return cfg;
}

TEST(Determinism, ContainerReplayIsBitIdentical) {
  const load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee1ULL, cfg);
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee1ULL, cfg);
  expect_identical(a, b);
  EXPECT_GT(a.registered, 0u);
  EXPECT_FALSE(a.trace.empty());
}

TEST(Determinism, SgxReplayIsBitIdentical) {
  // SGX single-worker modules queue hardest — the strongest replay test.
  const load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kSgx, 0xd5ee2ULL, cfg);
  const auto b = run_once(slice::IsolationMode::kSgx, 0xd5ee2ULL, cfg);
  expect_identical(a, b);
  EXPECT_GT(a.registered, 0u);
}

TEST(Determinism, BurstArrivalsReplayIsBitIdentical) {
  load::LoadConfig cfg = contended_config();
  cfg.arrivals.kind = load::ArrivalKind::kBurst;
  cfg.arrivals.burst_size = 12;
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee3ULL, cfg);
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee3ULL, cfg);
  expect_identical(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the hash actually discriminates: a different
  // workload seed must move at least the arrival instants.
  load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee4ULL, cfg);
  cfg.seed ^= 1;
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee4ULL, cfg);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

class ForcedBackend {
 public:
  explicit ForcedBackend(crypto::CryptoBackend backend) {
    crypto::force_backend(backend);
  }
  ~ForcedBackend() { crypto::clear_forced_backend(); }
};

TEST(Determinism, ScalarAndAcceleratedBackendsReplayBitIdentically) {
  // The hardware kernels and the Edwards-comb X25519 path are pure
  // wall-clock optimizations: with the dispatch pinned to either side,
  // the same workload must produce the same bytes, trace and stats.
  const load::LoadConfig cfg = contended_config();
  load::LoadReport scalar, accel;
  {
    ForcedBackend pin(crypto::CryptoBackend::kScalar);
    scalar = run_once(slice::IsolationMode::kSgx, 0xd5ee6ULL, cfg);
  }
  {
    ForcedBackend pin(crypto::CryptoBackend::kAccelerated);
    accel = run_once(slice::IsolationMode::kSgx, 0xd5ee6ULL, cfg);
  }
  expect_identical(scalar, accel);
  EXPECT_GT(scalar.registered, 0u);
}

TEST(Determinism, BackendReplayHoldsUnderContainerMode) {
  const load::LoadConfig cfg = contended_config();
  load::LoadReport scalar, accel;
  {
    ForcedBackend pin(crypto::CryptoBackend::kScalar);
    scalar = run_once(slice::IsolationMode::kContainer, 0xd5ee7ULL, cfg);
  }
  {
    ForcedBackend pin(crypto::CryptoBackend::kAccelerated);
    accel = run_once(slice::IsolationMode::kContainer, 0xd5ee7ULL, cfg);
  }
  expect_identical(scalar, accel);
}

TEST(Determinism, TraceHashIndependentOfRecording) {
  // record_trace only keeps the lines; it must not change the hash.
  load::LoadConfig cfg = contended_config();
  const auto a = run_once(slice::IsolationMode::kContainer, 0xd5ee5ULL, cfg);
  cfg.record_trace = false;
  const auto b = run_once(slice::IsolationMode::kContainer, 0xd5ee5ULL, cfg);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_TRUE(b.trace.empty());
}

// A small but heterogeneous sweep: every isolation mode, two rates,
// two seeds — twelve independent shards with queueing engaged.
std::vector<load::SweepCase> sharded_cases() {
  std::vector<load::SweepCase> cases;
  const slice::IsolationMode modes[] = {slice::IsolationMode::kMonolithic,
                                        slice::IsolationMode::kContainer,
                                        slice::IsolationMode::kSgx};
  for (const slice::IsolationMode mode : modes) {
    for (const double rate : {400.0, 2000.0}) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        load::SweepCase c;
        c.label = std::string(slice::isolation_mode_name(mode)) + "/" +
                  std::to_string(static_cast<int>(rate)) + "/" +
                  std::to_string(seed);
        c.slice.mode = mode;
        c.slice.subscriber_count = 40;
        c.slice.seed = 0xF00DULL + seed;
        c.load.ue_count = 40;
        c.load.arrivals.kind = load::ArrivalKind::kPoisson;
        c.load.arrivals.rate_per_s = rate;
        c.load.seed = 0xBEEFULL + seed;
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

void expect_sweeps_identical(const std::vector<load::SweepResult>& a,
                             const std::vector<load::SweepResult>& b,
                             const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  // The digest is the contract the CI diff enforces; the per-field
  // comparison below names the first diverging case when it breaks.
  EXPECT_EQ(load::sweep_digest(a), load::sweep_digest(b)) << what;
  const auto lines_a = load::sweep_digest_lines(a);
  const auto lines_b = load::sweep_digest_lines(b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(lines_a[i], lines_b[i]) << what << ": case " << i;
    EXPECT_EQ(a[i].report.trace_hash, b[i].report.trace_hash)
        << what << ": case " << i;
    EXPECT_EQ(a[i].report.setup_ms.values(), b[i].report.setup_ms.values())
        << what << ": case " << i;
    EXPECT_EQ(a[i].shed, b[i].shed) << what << ": case " << i;
    ASSERT_EQ(a[i].queues.size(), b[i].queues.size()) << what;
    for (std::size_t q = 0; q < a[i].queues.size(); ++q) {
      EXPECT_EQ(a[i].queues[q].admitted, b[i].queues[q].admitted);
      EXPECT_EQ(a[i].queues[q].rejected, b[i].queues[q].rejected);
      EXPECT_EQ(a[i].queues[q].total_wait, b[i].queues[q].total_wait);
    }
  }
}

TEST(Determinism, ShardedSweepMatchesSequentialAtEveryWorkerCount) {
  // The tentpole property: worker count is a pure wall-clock knob. The
  // sequential reference (workers=1, inline, no pool) must be
  // reproduced bit-for-bit by the threaded pool at 2 and 4 workers —
  // even on a single core, where the threads interleave arbitrarily.
  const std::vector<load::SweepCase> cases = sharded_cases();
  const std::vector<load::SweepResult> sequential = load::run_sweep(cases, 1);
  ASSERT_EQ(sequential.size(), cases.size());
  for (const unsigned workers : {2u, 4u}) {
    const std::vector<load::SweepResult> parallel =
        load::run_sweep(cases, workers);
    expect_sweeps_identical(sequential, parallel,
                            workers == 2 ? "workers=2" : "workers=4");
  }
}

TEST(Determinism, BackToBackSweepsStartCold) {
  // Each case builds a fresh slice, and ServiceQueue::reset() clears
  // occupancy between runs inside a slice — so repeating the same sweep
  // in one process must not inherit warm queues, caches or counters
  // from the previous round, sequentially or threaded.
  const std::vector<load::SweepCase> cases = sharded_cases();
  const std::vector<load::SweepResult> first = load::run_sweep(cases, 2);
  const std::vector<load::SweepResult> second = load::run_sweep(cases, 2);
  expect_sweeps_identical(first, second, "second round");
  const std::vector<load::SweepResult> sequential = load::run_sweep(cases, 1);
  expect_sweeps_identical(first, sequential, "sequential after threaded");
}

TEST(Determinism, ResumptionSweepIsSelfConsistentAtEveryWorkerCount) {
  // With TLS resumption + the ephemeral-key pool enabled, the sweep is
  // no longer byte-identical to the legacy path (different wire bytes
  // by design) — but it must still be deterministic: 1, 2 and 4 workers
  // all reproduce the same digests, traces and queue stats.
  std::vector<load::SweepCase> cases = sharded_cases();
  for (auto& c : cases) {
    c.slice.tls_resumption = true;
    c.slice.eph_pool = true;
  }
  const std::vector<load::SweepResult> sequential = load::run_sweep(cases, 1);
  ASSERT_EQ(sequential.size(), cases.size());
  for (const unsigned workers : {2u, 4u}) {
    const std::vector<load::SweepResult> parallel =
        load::run_sweep(cases, workers);
    expect_sweeps_identical(sequential, parallel,
                            workers == 2 ? "resumption workers=2"
                                         : "resumption workers=4");
  }
}

TEST(Determinism, ResumptionOffPathIsUntouchedByAnOnPathRun) {
  // Bit-identity oracle: a flags-off sweep must produce the same digest
  // whether or not a flags-on sweep ran first in the same process (no
  // cross-contamination through pools, counters or thread state) — and
  // the flags must actually change the bytes when enabled.
  const std::vector<load::SweepCase> off_cases = sharded_cases();
  const std::uint64_t off_before =
      load::sweep_digest(load::run_sweep(off_cases, 2));

  std::vector<load::SweepCase> on_cases = sharded_cases();
  for (auto& c : on_cases) {
    c.slice.tls_resumption = true;
    c.slice.eph_pool = true;
  }
  const std::uint64_t on_digest =
      load::sweep_digest(load::run_sweep(on_cases, 2));
  EXPECT_NE(on_digest, off_before)
      << "resumption flags did not move the digest — oracle proves nothing";

  const std::uint64_t off_after =
      load::sweep_digest(load::run_sweep(off_cases, 2));
  EXPECT_EQ(off_before, off_after);
}

TEST(Determinism, PoolAloneReplaysBitIdentically) {
  // The pool changes which RNG stream feeds the ephemerals, so its
  // replay property deserves its own pin: same config, two runs, same
  // everything — at 1 and 4 workers.
  std::vector<load::SweepCase> cases = sharded_cases();
  for (auto& c : cases) c.slice.eph_pool = true;
  const std::vector<load::SweepResult> a = load::run_sweep(cases, 1);
  const std::vector<load::SweepResult> b = load::run_sweep(cases, 4);
  expect_sweeps_identical(a, b, "pool-only workers=4");
}

// ---- Sharded serving plane (load/serving.h) ---------------------------

load::ServingConfig serving_config() {
  load::ServingConfig cfg;
  cfg.slice.mode = slice::IsolationMode::kContainer;
  cfg.slice.seed = 0x5e11aULL;
  cfg.ue_count = 48;
  cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  cfg.arrivals.rate_per_s = 1500.0;  // queues engage inside the slots
  return cfg;
}

TEST(Determinism, ServingPlaneDigestIdenticalAcrossShardCounts) {
  // The tentpole property: the merged serving digest is a function of
  // the partition, never of the execution width. 1/2/4/8 workers over
  // the same 8-slot partition must agree byte for byte.
  const load::ServingConfig cfg = serving_config();
  const load::ServingReport base = load::run_serving(cfg, 1);
  EXPECT_EQ(base.shards, 1u);
  EXPECT_GT(base.registered, 0u);
  EXPECT_EQ(base.routed, cfg.ue_count);
  ASSERT_EQ(base.slots.size(), cfg.slots);
  for (const unsigned shards : {2u, 4u, 8u}) {
    const load::ServingReport wide = load::run_serving(cfg, shards);
    EXPECT_EQ(wide.shards, shards);
    EXPECT_EQ(wide.digest, base.digest) << "shards=" << shards;
    ASSERT_EQ(wide.digest_lines.size(), base.digest_lines.size());
    for (std::size_t i = 0; i < base.digest_lines.size(); ++i) {
      EXPECT_EQ(wide.digest_lines[i], base.digest_lines[i])
          << "shards=" << shards << " slot line " << i;
    }
    EXPECT_EQ(wide.registered, base.registered);
    EXPECT_EQ(wide.completed, base.completed);
    EXPECT_EQ(wide.sessions_up, base.sessions_up);
    EXPECT_EQ(wide.failed, base.failed);
    EXPECT_EQ(wide.shed, base.shed);
  }
}

TEST(Determinism, ServingPlaneColdStartReplays) {
  // Back-to-back runs in one process: no state may leak between plane
  // instantiations (pools, counters, thread-local stage clocks).
  const load::ServingConfig cfg = serving_config();
  const load::ServingReport a = load::run_serving(cfg, 2);
  const load::ServingReport b = load::run_serving(cfg, 2);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest_lines, b.digest_lines);
}

TEST(Determinism, ServingPlaneBackpressureIsDigestNeutral) {
  // A tiny mailbox forces the router to spin; back-pressure is a wall
  // clock phenomenon and must not move a single byte of the digest.
  const load::ServingConfig roomy = serving_config();
  load::ServingConfig tight = roomy;
  tight.mailbox_capacity = 2;
  const load::ServingReport a = load::run_serving(roomy, 4);
  const load::ServingReport b = load::run_serving(tight, 4);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest_lines, b.digest_lines);
}

TEST(Determinism, ServingPlaneDigestDiscriminates) {
  // Same guard as the sweep digest: seeds must move the bytes, or the
  // serve-smoke byte-compare in CI proves nothing.
  const load::ServingConfig cfg = serving_config();
  const std::uint64_t base = load::run_serving(cfg, 2).digest;

  load::ServingConfig arrivals_moved = cfg;
  arrivals_moved.seed ^= 1;
  EXPECT_NE(load::run_serving(arrivals_moved, 2).digest, base);

  load::ServingConfig creds_moved = cfg;
  creds_moved.slice.seed ^= 1;
  EXPECT_NE(load::run_serving(creds_moved, 2).digest, base);
}

TEST(Determinism, SweepDigestDiscriminates) {
  // The digest must move when anything deterministic moves, or the CI
  // byte-for-byte diff proves nothing.
  std::vector<load::SweepCase> cases = sharded_cases();
  const std::uint64_t base = load::sweep_digest(load::run_sweep(cases, 1));
  cases[0].load.seed ^= 1;
  const std::uint64_t moved = load::sweep_digest(load::run_sweep(cases, 1));
  EXPECT_NE(base, moved);
}

}  // namespace
}  // namespace shield5g
