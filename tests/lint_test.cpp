// shield_analyze self-test: drives the legacy leak rules in-process over the seeded
// fixture tree and asserts every planted violation is reported at its
// exact file:line — and that the real src/ tree scans clean.
#include "analyze_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace shield5g::lint {
namespace {

const std::string kFixtures =
    std::string(SHIELD5G_SOURCE_ROOT) + "/tools/shield_analyze/fixtures";
const std::string kSrc = std::string(SHIELD5G_SOURCE_ROOT) + "/src";

ScanOptions fixture_opts() {
  ScanOptions opts;
  opts.fixtures_mode = true;  // fixture trees are skipped by default
  return opts;
}

TEST(ShieldLint, EveryFixtureViolationReportedWithFileAndLine) {
  const auto findings = scan_tree(kFixtures, fixture_opts());
  const auto expected = parse_expectations_tree(kFixtures);
  ASSERT_FALSE(expected.empty()) << "fixture annotations missing";
  for (const Expectation& e : expected) {
    const bool hit = std::any_of(
        findings.begin(), findings.end(), [&](const Finding& f) {
          return f.file == e.file && f.line == e.line && f.rule == e.rule;
        });
    EXPECT_TRUE(hit) << "missed seeded violation " << e.file << ":"
                     << e.line << " [" << e.rule << "]";
  }
}

TEST(ShieldLint, NothingBeyondTheSeededViolationsFlagged) {
  // The fixtures also plant sanitized/benign lines (declassify calls,
  // ct_equal, size() compares, a paka/ handoff); none may be reported.
  std::vector<std::string> errors;
  EXPECT_TRUE(check_expectations(scan_tree(kFixtures, fixture_opts()),
                                 parse_expectations_tree(kFixtures), errors));
  for (const std::string& err : errors) ADD_FAILURE() << err;
}

TEST(ShieldLint, AllFourRulesCoveredByFixtures) {
  const auto expected = parse_expectations_tree(kFixtures);
  for (const char* rule :
       {"secret-sink", "ct-compare", "test-escape", "decl-mismatch"}) {
    EXPECT_TRUE(std::any_of(expected.begin(), expected.end(),
                            [&](const Expectation& e) {
                              return e.rule == rule;
                            }))
        << "no fixture exercises rule " << rule;
  }
}

TEST(ShieldLint, RealTreeScansClean) {
  const auto findings = scan_tree(kSrc);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_TRUE(findings.empty());
}

TEST(ShieldLint, FlagsALeakInMemory) {
  const auto findings = scan_source(
      "ausf.cpp",
      "void f(const SecretBytes& kseaf) {\n"
      "  S5G_LOG(LogLevel::kInfo, \"ausf\") << kseaf;\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "secret-sink");
}

TEST(ShieldLint, AllowsTheAuditedGateInMemory) {
  const auto findings = scan_source(
      "ausf.cpp",
      "json::Value f(const SecretBytes& kseaf,\n"
      "              const sgx::EnclaveContext* ctx) {\n"
      "  return json::Value(\n"
      "      hex_encode(kseaf.declassify(DeclassifyReason::kTransport,\n"
      "                                  ctx)));\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace shield5g::lint
