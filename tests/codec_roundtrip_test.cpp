// Property-based round-trip tests for the NAS and JSON codecs: random
// messages must encode -> decode -> encode byte-identically. Seeded, so
// a failing iteration is reproducible; each property runs >= 1000
// iterations.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/rng.h"
#include "json/json.h"
#include "nf/nas.h"

namespace shield5g {
namespace {

constexpr int kIterations = 1200;

// ---- NAS ----------------------------------------------------------------

const nf::NasType kNasTypes[] = {
    nf::NasType::kRegistrationRequest,
    nf::NasType::kRegistrationAccept,
    nf::NasType::kRegistrationComplete,
    nf::NasType::kRegistrationReject,
    nf::NasType::kDeregistrationRequest,
    nf::NasType::kDeregistrationAccept,
    nf::NasType::kAuthenticationRequest,
    nf::NasType::kAuthenticationResponse,
    nf::NasType::kAuthenticationReject,
    nf::NasType::kAuthenticationFailure,
    nf::NasType::kIdentityRequest,
    nf::NasType::kIdentityResponse,
    nf::NasType::kSecurityModeCommand,
    nf::NasType::kSecurityModeComplete,
    nf::NasType::kPduSessionEstablishmentRequest,
    nf::NasType::kPduSessionEstablishmentAccept,
    nf::NasType::kPduSessionEstablishmentReject,
};

const nf::NasIe kNasIes[] = {
    nf::NasIe::kSuci,          nf::NasIe::kNgKsi,
    nf::NasIe::kGuti,          nf::NasIe::kRand,
    nf::NasIe::kAutn,          nf::NasIe::kResStar,
    nf::NasIe::kAuts,          nf::NasIe::kCause,
    nf::NasIe::kAbba,          nf::NasIe::kUeSecurityCapability,
    nf::NasIe::kSelectedAlgorithms, nf::NasIe::kPduSessionId,
    nf::NasIe::kDnn,           nf::NasIe::kUeIp,
    nf::NasIe::kSst,
};

nf::NasMessage random_nas_message(Rng& rng) {
  nf::NasMessage msg;
  msg.type = kNasTypes[rng.uniform(std::size(kNasTypes))];
  const std::uint64_t ie_count = rng.uniform(std::size(kNasIes) + 1);
  for (std::uint64_t i = 0; i < ie_count; ++i) {
    const nf::NasIe ie = kNasIes[rng.uniform(std::size(kNasIes))];
    msg.set(ie, rng.bytes(rng.uniform(48)));  // includes empty values
  }
  return msg;
}

TEST(NasRoundTrip, PlainMessagesEncodeDecodeEncodeIdentically) {
  Rng rng(0xc0dec5eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const nf::NasMessage msg = random_nas_message(rng);
    const Bytes wire = msg.encode();
    const auto decoded = nf::NasMessage::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(decoded->type, msg.type) << "iteration " << i;
    EXPECT_EQ(decoded->ies, msg.ies) << "iteration " << i;
    EXPECT_EQ(decoded->encode(), wire) << "iteration " << i;
  }
}

TEST(NasRoundTrip, SecuredMessagesSurviveProtectVerify) {
  Rng rng(0x5ec5eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const nf::NasMessage msg = random_nas_message(rng);
    const Bytes knas_int = rng.bytes(16);
    const Bytes knas_enc = rng.bytes(16);
    const auto count = static_cast<std::uint32_t>(rng.uniform(1u << 24));
    const bool downlink = rng.uniform(2) == 1;
    const bool ciphered = rng.uniform(2) == 1;

    const nf::SecuredNas sec =
        ciphered ? nf::SecuredNas::protect_ciphered(msg, knas_int, knas_enc,
                                                    count, downlink)
                 : nf::SecuredNas::protect(msg, knas_int, count, downlink);
    const Bytes wire = sec.encode();
    const auto reparsed = nf::SecuredNas::decode(wire);
    ASSERT_TRUE(reparsed.has_value()) << "iteration " << i;
    EXPECT_EQ(reparsed->encode(), wire) << "iteration " << i;

    const auto opened = reparsed->open(knas_int, knas_enc);
    ASSERT_TRUE(opened.has_value()) << "iteration " << i;
    EXPECT_EQ(opened->encode(), msg.encode()) << "iteration " << i;
  }
}

// ---- JSON ---------------------------------------------------------------

std::string random_string(Rng& rng) {
  // Printable ASCII plus the characters the serializer escapes.
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEF0123456789 _-.:/\"\\\n\t";
  std::string s;
  const std::uint64_t len = rng.uniform(24);
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
  }
  return s;
}

json::Value random_json(Rng& rng, int depth) {
  const std::uint64_t pick = rng.uniform(depth >= 3 ? 4 : 6);
  switch (pick) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.uniform(2) == 1);
    case 2:
      // Mix integral and fractional numbers; both must round-trip.
      if (rng.uniform(2) == 0) {
        return json::Value(static_cast<std::int64_t>(rng.uniform(1u << 30)) -
                           (1 << 29));
      }
      return json::Value(rng.normal(0.0, 1e6));
    case 3: return json::Value(random_string(rng));
    case 4: {
      json::Array arr;
      const std::uint64_t n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        arr.push_back(random_json(rng, depth + 1));
      }
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const std::uint64_t n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj[random_string(rng)] = random_json(rng, depth + 1);
      }
      return json::Value(std::move(obj));
    }
  }
}

TEST(JsonRoundTrip, RandomDocumentsDumpParseDumpIdentically) {
  Rng rng(0x15005eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const json::Value doc = random_json(rng, 0);
    const std::string text = doc.dump();
    json::Value reparsed;
    ASSERT_NO_THROW(reparsed = json::parse(text)) << "iteration " << i
                                                  << ": " << text;
    EXPECT_EQ(reparsed.dump(), text) << "iteration " << i;
    EXPECT_EQ(reparsed, doc) << "iteration " << i;
  }
}

TEST(JsonRoundTrip, RandomKeyOrderIsPreservedExactly) {
  // The flat Object keeps insertion order; a parse -> dump cycle must
  // reproduce random (unsorted) key sequences key for key.
  Rng rng(0x0bde55eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint64_t n = 1 + rng.uniform(12);
    std::vector<std::string> keys;
    json::Object obj;
    for (std::uint64_t k = 0; k < n; ++k) {
      std::string key = "k" + std::to_string(rng.uniform(1u << 20));
      if (obj.count(key) != 0) continue;  // duplicates tested elsewhere
      obj[key] = json::Value(static_cast<std::int64_t>(k));
      keys.push_back(std::move(key));
    }
    const std::string text = json::Value(std::move(obj)).dump();
    const json::Value reparsed = json::parse(text);
    const json::Object& round = reparsed.as_object();
    ASSERT_EQ(round.size(), keys.size()) << "iteration " << i;
    std::size_t pos = 0;
    for (const auto& [key, value] : round) {
      EXPECT_EQ(key, keys[pos]) << "iteration " << i << " position " << pos;
      EXPECT_EQ(value.as_int(), static_cast<std::int64_t>(pos))
          << "iteration " << i;
      ++pos;
    }
    EXPECT_EQ(reparsed.dump(), text) << "iteration " << i;
  }
}

}  // namespace
}  // namespace shield5g
