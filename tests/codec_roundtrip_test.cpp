// Property-based round-trip tests for the NAS and JSON codecs: random
// messages must encode -> decode -> encode byte-identically. Seeded, so
// a failing iteration is reproducible; each property runs >= 1000
// iterations.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/buffer_pool.h"
#include "common/rng.h"
#include "json/json.h"
#include "net/http.h"
#include "nf/nas.h"

namespace shield5g {
namespace {

constexpr int kIterations = 1200;

// ---- NAS ----------------------------------------------------------------

const nf::NasType kNasTypes[] = {
    nf::NasType::kRegistrationRequest,
    nf::NasType::kRegistrationAccept,
    nf::NasType::kRegistrationComplete,
    nf::NasType::kRegistrationReject,
    nf::NasType::kDeregistrationRequest,
    nf::NasType::kDeregistrationAccept,
    nf::NasType::kAuthenticationRequest,
    nf::NasType::kAuthenticationResponse,
    nf::NasType::kAuthenticationReject,
    nf::NasType::kAuthenticationFailure,
    nf::NasType::kIdentityRequest,
    nf::NasType::kIdentityResponse,
    nf::NasType::kSecurityModeCommand,
    nf::NasType::kSecurityModeComplete,
    nf::NasType::kPduSessionEstablishmentRequest,
    nf::NasType::kPduSessionEstablishmentAccept,
    nf::NasType::kPduSessionEstablishmentReject,
};

const nf::NasIe kNasIes[] = {
    nf::NasIe::kSuci,          nf::NasIe::kNgKsi,
    nf::NasIe::kGuti,          nf::NasIe::kRand,
    nf::NasIe::kAutn,          nf::NasIe::kResStar,
    nf::NasIe::kAuts,          nf::NasIe::kCause,
    nf::NasIe::kAbba,          nf::NasIe::kUeSecurityCapability,
    nf::NasIe::kSelectedAlgorithms, nf::NasIe::kPduSessionId,
    nf::NasIe::kDnn,           nf::NasIe::kUeIp,
    nf::NasIe::kSst,
};

nf::NasMessage random_nas_message(Rng& rng) {
  nf::NasMessage msg;
  msg.type = kNasTypes[rng.uniform(std::size(kNasTypes))];
  const std::uint64_t ie_count = rng.uniform(std::size(kNasIes) + 1);
  for (std::uint64_t i = 0; i < ie_count; ++i) {
    const nf::NasIe ie = kNasIes[rng.uniform(std::size(kNasIes))];
    msg.set(ie, rng.bytes(rng.uniform(48)));  // includes empty values
  }
  return msg;
}

TEST(NasRoundTrip, PlainMessagesEncodeDecodeEncodeIdentically) {
  Rng rng(0xc0dec5eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const nf::NasMessage msg = random_nas_message(rng);
    const Bytes wire = msg.encode();
    const auto decoded = nf::NasMessage::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(decoded->type, msg.type) << "iteration " << i;
    EXPECT_EQ(decoded->ies, msg.ies) << "iteration " << i;
    EXPECT_EQ(decoded->encode(), wire) << "iteration " << i;
  }
}

TEST(NasRoundTrip, SecuredMessagesSurviveProtectVerify) {
  Rng rng(0x5ec5eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const nf::NasMessage msg = random_nas_message(rng);
    const Bytes knas_int = rng.bytes(16);
    const Bytes knas_enc = rng.bytes(16);
    const auto count = static_cast<std::uint32_t>(rng.uniform(1u << 24));
    const bool downlink = rng.uniform(2) == 1;
    const bool ciphered = rng.uniform(2) == 1;

    const nf::SecuredNas sec =
        ciphered ? nf::SecuredNas::protect_ciphered(msg, knas_int, knas_enc,
                                                    count, downlink)
                 : nf::SecuredNas::protect(msg, knas_int, count, downlink);
    const Bytes wire = sec.encode();
    const auto reparsed = nf::SecuredNas::decode(wire);
    ASSERT_TRUE(reparsed.has_value()) << "iteration " << i;
    EXPECT_EQ(reparsed->encode(), wire) << "iteration " << i;

    const auto opened = reparsed->open(knas_int, knas_enc);
    ASSERT_TRUE(opened.has_value()) << "iteration " << i;
    EXPECT_EQ(opened->encode(), msg.encode()) << "iteration " << i;
  }
}

// ---- JSON ---------------------------------------------------------------

std::string random_string(Rng& rng) {
  // Printable ASCII plus the characters the serializer escapes.
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEF0123456789 _-.:/\"\\\n\t";
  std::string s;
  const std::uint64_t len = rng.uniform(24);
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
  }
  return s;
}

json::Value random_json(Rng& rng, int depth) {
  const std::uint64_t pick = rng.uniform(depth >= 3 ? 4 : 6);
  switch (pick) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.uniform(2) == 1);
    case 2:
      // Mix integral and fractional numbers; both must round-trip.
      if (rng.uniform(2) == 0) {
        return json::Value(static_cast<std::int64_t>(rng.uniform(1u << 30)) -
                           (1 << 29));
      }
      return json::Value(rng.normal(0.0, 1e6));
    case 3: return json::Value(random_string(rng));
    case 4: {
      json::Array arr;
      const std::uint64_t n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        arr.push_back(random_json(rng, depth + 1));
      }
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const std::uint64_t n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj[random_string(rng)] = random_json(rng, depth + 1);
      }
      return json::Value(std::move(obj));
    }
  }
}

TEST(JsonRoundTrip, RandomDocumentsDumpParseDumpIdentically) {
  Rng rng(0x15005eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const json::Value doc = random_json(rng, 0);
    const std::string text = doc.dump();
    json::Value reparsed;
    ASSERT_NO_THROW(reparsed = json::parse(text)) << "iteration " << i
                                                  << ": " << text;
    EXPECT_EQ(reparsed.dump(), text) << "iteration " << i;
    EXPECT_EQ(reparsed, doc) << "iteration " << i;
  }
}

TEST(JsonRoundTrip, RandomKeyOrderIsPreservedExactly) {
  // The flat Object keeps insertion order; a parse -> dump cycle must
  // reproduce random (unsorted) key sequences key for key.
  Rng rng(0x0bde55eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint64_t n = 1 + rng.uniform(12);
    std::vector<std::string> keys;
    json::Object obj;
    for (std::uint64_t idx = 0; idx < n; ++idx) {
      std::string key = "k" + std::to_string(rng.uniform(1u << 20));
      if (obj.count(key) != 0) continue;  // duplicates tested elsewhere
      obj[key] = json::Value(static_cast<std::int64_t>(idx));
      keys.push_back(std::move(key));
    }
    const std::string text = json::Value(std::move(obj)).dump();
    const json::Value reparsed = json::parse(text);
    const json::Object& round = reparsed.as_object();
    ASSERT_EQ(round.size(), keys.size()) << "iteration " << i;
    std::size_t pos = 0;
    for (const auto& [key, value] : round) {
      EXPECT_EQ(key, keys[pos]) << "iteration " << i << " position " << pos;
      EXPECT_EQ(value.as_int(), static_cast<std::int64_t>(pos))
          << "iteration " << i;
      ++pos;
    }
    EXPECT_EQ(reparsed.dump(), text) << "iteration " << i;
  }
}

// ---- HTTP ---------------------------------------------------------------

const net::Method kMethods[] = {net::Method::kGet, net::Method::kPost,
                                net::Method::kPut, net::Method::kDelete,
                                net::Method::kPatch};

std::string random_token(Rng& rng, std::size_t max_len) {
  static const char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789-";
  std::string s;
  const std::uint64_t len = 1 + rng.uniform(max_len);
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
  }
  return s;
}

std::string random_body(Rng& rng) {
  // Arbitrary bytes, including NUL and CRLF: content-length framing must
  // carry anything.
  std::string s;
  const std::uint64_t len = rng.uniform(200);
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.uniform(256)));
  }
  return s;
}

void fill_random_headers(Rng& rng, net::Headers& headers) {
  // Mix of interned SBI literals and arbitrary arena-backed keys.
  if (rng.uniform(2) == 1) headers.set("content-type", "application/json");
  if (rng.uniform(2) == 1) headers.set("accept", "application/json");
  const std::uint64_t extra = rng.uniform(6);
  for (std::uint64_t i = 0; i < extra; ++i) {
    headers.set(random_token(rng, 16), random_token(rng, 32));
  }
}

net::HttpRequest random_request(Rng& rng) {
  net::HttpRequest req;
  req.method = kMethods[rng.uniform(std::size(kMethods))];
  req.path = "/" + random_token(rng, 12) + "/v1/" + random_token(rng, 24);
  fill_random_headers(rng, req.headers);
  req.body = random_body(rng);
  return req;
}

TEST(HttpRoundTrip, RandomRequestsParseMaterializeSerializeIdentically) {
  Rng rng(0x177b5eedULL);
  for (int i = 0; i < kIterations; ++i) {
    const net::HttpRequest req = random_request(rng);
    const Bytes wire = req.serialize();

    // Owning parser round-trips.
    const auto owned = net::HttpRequest::parse(wire);
    ASSERT_TRUE(owned.has_value()) << "iteration " << i;
    EXPECT_EQ(owned->serialize(), wire) << "iteration " << i;

    // Zero-copy parser aliases the same bytes; materializing the views
    // and re-serializing must reproduce the wire exactly.
    const auto view = net::RequestView::parse(wire);
    ASSERT_TRUE(view.has_value()) << "iteration " << i;
    EXPECT_EQ(view->method, req.method) << "iteration " << i;
    EXPECT_EQ(view->path, req.path) << "iteration " << i;
    EXPECT_EQ(view->body, req.body) << "iteration " << i;
    EXPECT_EQ(net::HttpRequest::materialize(*view).serialize(), wire)
        << "iteration " << i;
  }
}

TEST(HttpRoundTrip, RandomResponsesParseMaterializeSerializeIdentically) {
  Rng rng(0x5e5b5eedULL);
  for (int i = 0; i < kIterations; ++i) {
    net::HttpResponse rsp;
    rsp.status = 100 + static_cast<int>(rng.uniform(500));
    fill_random_headers(rng, rsp.headers);
    rsp.body = random_body(rng);
    const Bytes wire = rsp.serialize();

    const auto owned = net::HttpResponse::parse(wire);
    ASSERT_TRUE(owned.has_value()) << "iteration " << i;
    EXPECT_EQ(owned->serialize(), wire) << "iteration " << i;

    const auto view = net::ResponseView::parse(wire);
    ASSERT_TRUE(view.has_value()) << "iteration " << i;
    EXPECT_EQ(view->status, rsp.status) << "iteration " << i;
    EXPECT_EQ(view->body, rsp.body) << "iteration " << i;
    EXPECT_EQ(net::HttpResponse::materialize(*view).serialize(), wire)
        << "iteration " << i;
  }
}

TEST(HttpRoundTrip, SerializeIntoMatchesSerializeByteForByte) {
  Rng rng(0x0ddc0b5eULL);
  for (int i = 0; i < kIterations / 4; ++i) {
    const net::HttpRequest req = random_request(rng);
    const Bytes wire = req.serialize();
    auto buf = BufferPool::local().acquire(req.serialized_size());
    req.serialize_into(buf);
    ASSERT_EQ(buf.size(), wire.size()) << "iteration " << i;
    EXPECT_EQ(Bytes(buf.view().begin(), buf.view().end()), wire)
        << "iteration " << i;
  }
}

TEST(HttpParser, TruncatedAndMutatedWireNeverCrashes) {
  // Every strict prefix of a valid request either parses to a message
  // whose re-serialization is shorter than the original (early body cut
  // can still frame) or is rejected — it must never throw or read past
  // the buffer. Random single-byte mutations likewise.
  Rng rng(0x7 + 0xf1122edULL);
  for (int i = 0; i < 300; ++i) {
    const net::HttpRequest req = random_request(rng);
    const Bytes wire = req.serialize();
    const std::uint64_t cut = rng.uniform(wire.size());
    const ByteView prefix(wire.data(), cut);
    ASSERT_NO_THROW({
      const auto view = net::RequestView::parse(prefix);
      if (view.has_value()) {
        EXPECT_LE(view->body.size(), prefix.size());
      }
    }) << "iteration " << i << " cut " << cut;

    Bytes mutated = wire;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    ASSERT_NO_THROW(net::RequestView::parse(mutated)) << "iteration " << i;
    ASSERT_NO_THROW(net::HttpRequest::parse(mutated)) << "iteration " << i;
  }
}

TEST(HttpParser, DuplicateHeadersFirstWins) {
  const std::string wire =
      "GET /x HTTP/1.1\r\n"
      "accept: first\r\n"
      "accept: second\r\n"
      "content-length: 0\r\n"
      "\r\n";
  const ByteView view(reinterpret_cast<const std::uint8_t*>(wire.data()),
                      wire.size());
  const auto parsed = net::RequestView::parse(view);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers.find("accept").value_or(""), "first");
  const net::HttpRequest owned = net::HttpRequest::materialize(*parsed);
  EXPECT_EQ(owned.headers.at("accept"), "first");
}

TEST(HttpRoundTrip, HeaderInsertionOrderDoesNotChangeWire) {
  // The wire sorts headers by key, so permuting set() order must give
  // byte-identical output.
  net::HttpRequest a;
  a.method = net::Method::kPost;
  a.path = "/p";
  a.headers.set("zeta", "1");
  a.headers.set("accept", "application/json");
  a.headers.set("content-type", "application/json");
  a.body = "{}";

  net::HttpRequest b;
  b.method = net::Method::kPost;
  b.path = "/p";
  b.headers.set("content-type", "application/json");
  b.headers.set("accept", "application/json");
  b.headers.set("zeta", "1");
  b.body = "{}";
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(HttpRoundTrip, EmptyAndLargeBodiesRoundTrip) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{64},
                              std::size_t{65536}}) {
    net::HttpRequest req;
    req.method = net::Method::kPost;
    req.path = "/bulk";
    req.headers.set("content-type", "application/json");
    req.body.assign(n, 'x');
    const Bytes wire = req.serialize();
    const auto view = net::RequestView::parse(wire);
    ASSERT_TRUE(view.has_value()) << "body size " << n;
    EXPECT_EQ(view->body.size(), n);
    EXPECT_EQ(net::HttpRequest::materialize(*view).serialize(), wire)
        << "body size " << n;
  }
}

}  // namespace
}  // namespace shield5g
