// Zero-copy wire-path regression tests: once a keep-alive connection is
// warm, an exchange must not copy service-name strings (the bus resolves
// servers and connections through interned ids) and its residual heap
// traffic must stay under a pinned ceiling — the pooled record path and
// interned headers are what keep it there.
//
// The allocation probe overrides global operator new/delete for this
// test binary only and counts calls; it never changes behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "net/bus.h"
#include "net/env.h"
#include "net/http.h"
#include "net/router.h"
#include "sim/clock.h"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace shield5g::net {
namespace {

constexpr int kWarmExchanges = 64;
constexpr int kMeasuredExchanges = 20;

HttpRequest probe_request() {
  HttpRequest req;
  req.method = Method::kPost;
  req.path = "/probe";
  req.headers.set("content-type", "application/json");
  req.body = "{\"supi\":\"imsi-001010000000001\"}";
  return req;
}

class WirePathFixture : public ::testing::Test {
 protected:
  WirePathFixture() : long_name_(200, 'n') {
    bus_.set_keep_alive(true);
    short_server_ = make_server("amf");
    long_server_ = make_server(long_name_);
  }

  std::unique_ptr<Server> make_server(const std::string& name) {
    auto server = std::make_unique<Server>(name, env_, bus_.costs());
    server->router().add(Method::kPost, "/probe",
                         [](const RequestView& req, const PathParams&) {
                           return HttpResponse::json(200,
                                                     std::string(req.body));
                         });
    bus_.attach(*server);
    return server;
  }

  // Allocations across `count` warm exchanges to `to`.
  std::uint64_t measure(const std::string& to, int count) {
    const HttpRequest req = probe_request();
    const std::uint64_t before =
        g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < count; ++i) {
      const auto exchange = bus_.request("client", to, req);
      EXPECT_TRUE(exchange.transport_ok);
      EXPECT_EQ(exchange.response.status, 200);
    }
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  }

  sim::VirtualClock clock_;
  Bus bus_{clock_};
  HostEnv env_{clock_};
  std::string long_name_;
  std::unique_ptr<Server> short_server_;
  std::unique_ptr<Server> long_server_;
};

TEST_F(WirePathFixture, WarmExchangeAllocationsIndependentOfNameLength) {
  // Warm both targets identically: handshakes done, pools and interned
  // tables populated, sample vectors grown past the measurement window.
  measure("amf", kWarmExchanges);
  measure(long_name_, kWarmExchanges);

  // Same exchange count against both servers from identical warm state:
  // if any per-request path copied the service name (old string-pair
  // connection keys, per-request map lookups building std::string), the
  // 200-char name would cost extra allocations and the counts diverge.
  const std::uint64_t short_allocs = measure("amf", kMeasuredExchanges);
  const std::uint64_t long_allocs = measure(long_name_, kMeasuredExchanges);
  EXPECT_EQ(short_allocs, long_allocs)
      << "service-name length leaked into the per-exchange wire path";
}

TEST_F(WirePathFixture, WarmExchangeAllocationsUnderCeiling) {
  measure("amf", kWarmExchanges);
  const std::uint64_t allocs = measure("amf", kMeasuredExchanges);
  const double per_exchange =
      static_cast<double>(allocs) / kMeasuredExchanges;
  // A warm keep-alive exchange measures ~2 allocations (the response
  // body string and occasional Samples growth); the record path itself
  // is pooled and the headers interned. A regression that re-copies
  // records or headers adds tens of allocations per exchange — the
  // ceiling leaves room only for container doubling, not for copies.
  EXPECT_LE(per_exchange, 8.0);
}

}  // namespace
}  // namespace shield5g::net
