// SGX machine-model tests: EPC accounting, enclave lifecycle &
// measurement, transition counters, AEX timer accrual, sealing and
// attestation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sgx/attestation.h"
#include "sgx/cost_model.h"
#include "sgx/enclave.h"
#include "sgx/epc.h"
#include "sgx/machine.h"
#include "sgx/sealing.h"
#include "sim/clock.h"

namespace shield5g::sgx {
namespace {

class SgxFixture : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  Machine machine_{clock_};

  Enclave& make_enclave(const std::string& name = "test-enclave",
                        std::uint64_t size = 64ULL << 20) {
    Enclave& e = machine_.create_enclave(EnclaveConfig{name, size, 4, false});
    e.add_pages(size, Bytes{1, 2, 3});
    e.init();
    return e;
  }
};

// ---------------------------------------------------------------------
// EPC pool
// ---------------------------------------------------------------------

TEST(EpcPool, ReserveReleaseAccounting) {
  EpcPool pool(1 << 20, 4096);
  EXPECT_EQ(pool.free_bytes(), 1u << 20);
  pool.reserve(4096 * 10);
  EXPECT_EQ(pool.used_bytes(), 4096u * 10);
  pool.release(4096 * 10);
  EXPECT_EQ(pool.used_bytes(), 0u);
}

TEST(EpcPool, RoundsUpToPages) {
  EpcPool pool(1 << 20, 4096);
  pool.reserve(1);  // one byte still costs a page
  EXPECT_EQ(pool.used_bytes(), 4096u);
}

TEST(EpcPool, ExhaustionThrows) {
  EpcPool pool(8192, 4096);
  pool.reserve(8192);
  EXPECT_THROW(pool.reserve(1), std::runtime_error);
}

TEST(EpcPool, RegionReleasesOnDestruction) {
  EpcPool pool(1 << 20, 4096);
  {
    EpcRegion region(pool, 4096 * 4);
    EXPECT_EQ(pool.used_bytes(), 4096u * 4);
    EXPECT_EQ(region.total_pages(), 4u);
  }
  EXPECT_EQ(pool.used_bytes(), 0u);
}

TEST(EpcPool, FaultInAndEvict) {
  EpcPool pool(1 << 20, 4096);
  EpcRegion region(pool, 4096 * 10);
  EXPECT_EQ(region.fault_in(4), 4u);
  EXPECT_EQ(region.resident_pages(), 4u);
  EXPECT_EQ(region.fault_in(8), 6u);  // only 6 more exist
  EXPECT_EQ(region.evict(3), 3u);
  EXPECT_EQ(region.resident_pages(), 7u);
  EXPECT_EQ(region.evict(100), 7u);
}

// ---------------------------------------------------------------------
// Enclave lifecycle
// ---------------------------------------------------------------------

TEST_F(SgxFixture, LifecycleEnforced) {
  Enclave& e = machine_.create_enclave(EnclaveConfig{"x", 1 << 20, 4, false});
  EXPECT_EQ(e.state(), EnclaveState::kCreated);
  EXPECT_THROW(e.ecall_begin(), std::logic_error);    // not initialized
  EXPECT_THROW(e.measurement(), std::logic_error);
  e.add_pages(1 << 20, Bytes{1});
  e.init();
  EXPECT_EQ(e.state(), EnclaveState::kInitialized);
  EXPECT_THROW(e.init(), std::logic_error);           // double init
  EXPECT_THROW(e.add_pages(1, Bytes{}), std::logic_error);
  machine_.destroy_enclave(e);
}

TEST_F(SgxFixture, MeasurementIsDeterministicAndSensitive) {
  auto build = [this](const std::string& name, ByteView content) {
    Enclave& e =
        machine_.create_enclave(EnclaveConfig{name, 1 << 20, 4, false});
    e.add_pages(1 << 20, content);
    e.init();
    return e.measurement();
  };
  const Bytes m1 = build("same", Bytes{1, 2, 3});
  const Bytes m2 = build("same", Bytes{1, 2, 3});
  const Bytes m3 = build("same", Bytes{1, 2, 4});
  const Bytes m4 = build("other", Bytes{1, 2, 3});
  EXPECT_EQ(m1, m2);
  EXPECT_NE(m1, m3);  // content changes measurement
  EXPECT_NE(m1, m4);  // attributes change measurement
  EXPECT_EQ(m1.size(), 32u);
}

TEST_F(SgxFixture, BuildChargesPerPageCosts) {
  const sim::Nanos before = clock_.now();
  make_enclave("timing", 8ULL << 20);
  const auto& costs = machine_.costs();
  const std::uint64_t pages = (8ULL << 20) / costs.page_size;
  const sim::Nanos expected =
      pages * (costs.eadd_per_page + costs.eextend_per_page) +
      costs.einit_fixed;
  EXPECT_EQ(clock_.now() - before, expected);
}

TEST_F(SgxFixture, EcallOcallCountersAndCosts) {
  Enclave& e = make_enclave();
  const TransitionCounters before = e.counters();
  const sim::Nanos t0 = clock_.now();

  e.ecall_begin();
  e.ocall(1'000);
  e.ocall(2'000);
  e.ecall_end();

  const TransitionCounters delta = e.counters() - before;
  EXPECT_EQ(delta.eenter, 3u);  // 1 ecall + 2 ocall re-entries
  EXPECT_EQ(delta.eexit, 3u);   // 2 ocall exits + 1 ecall return
  EXPECT_EQ(delta.ecalls, 1u);
  EXPECT_EQ(delta.ocalls, 2u);

  const auto& costs = machine_.costs();
  const sim::Nanos expected = 3 * costs.eenter_ns() + 3 * costs.eexit_ns() +
                              1'000 + 2'000;
  EXPECT_EQ(clock_.now() - t0, expected);
}

TEST_F(SgxFixture, ExecuteAppliesMemoryEncryptionFactor) {
  Enclave& e = make_enclave();
  const sim::Nanos t0 = clock_.now();
  e.execute(100'000);
  const auto expected = static_cast<sim::Nanos>(
      100'000 * machine_.costs().enclave_compute_factor);
  EXPECT_EQ(clock_.now() - t0, expected);
}

TEST_F(SgxFixture, DemandFaultChargesPerPage) {
  Enclave& e = make_enclave();
  const sim::Nanos t0 = clock_.now();
  const auto aex0 = e.counters().aex;
  e.demand_fault(100);
  EXPECT_EQ(clock_.now() - t0,
            100 * machine_.costs().demand_fault_per_page);
  // 100 fault AEXs plus possibly one timer tick crossed while faulting.
  EXPECT_GE(e.counters().aex - aex0, 100u);
  EXPECT_LE(e.counters().aex - aex0, 101u);
}

TEST_F(SgxFixture, AexAccruesWithWallClockNotWorkload) {
  Enclave& e = make_enclave();
  const auto aex0 = e.counters().aex;
  clock_.advance(100 * sim::kMillisecond);  // idle time
  const auto idle_aex = e.counters().aex - aex0;
  EXPECT_EQ(idle_aex,
            100 * sim::kMillisecond / machine_.costs().aex_timer_period);

  // The same wall time with ECALL workload accrues the same AEX count.
  const auto aex1 = e.counters().aex;
  for (int i = 0; i < 50; ++i) {
    e.ecall_begin();
    e.ecall_end();
  }
  const sim::Nanos consumed = 50 * (machine_.costs().eenter_ns() +
                                    machine_.costs().eexit_ns());
  clock_.advance(100 * sim::kMillisecond - consumed);
  EXPECT_EQ(e.counters().aex - aex1, idle_aex);
}

TEST_F(SgxFixture, AexStopsAfterDestroy) {
  Enclave& e = make_enclave();
  clock_.advance(10 * sim::kMillisecond);
  machine_.destroy_enclave(e);
  // No crash and no dangling observer when time continues.
  clock_.advance(10 * sim::kMillisecond);
  EXPECT_EQ(machine_.enclave_count(), 0u);
}

TEST_F(SgxFixture, EpcExhaustionAcrossEnclaves) {
  // Machine has 16 GB combined EPC; 33 enclaves of 512 MB exceed it.
  std::vector<Enclave*> enclaves;
  for (int i = 0; i < 32; ++i) {
    enclaves.push_back(&machine_.create_enclave(
        EnclaveConfig{"e" + std::to_string(i), 512ULL << 20, 4, false}));
  }
  EXPECT_THROW(machine_.create_enclave(
                   EnclaveConfig{"overflow", 512ULL << 20, 4, false}),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Sealing
// ---------------------------------------------------------------------

TEST_F(SgxFixture, SealUnsealRoundTrip) {
  Enclave& e = make_enclave("sealer");
  Rng rng(1);
  const Bytes secret = to_bytes("subscriber key table");
  const SealedBlob blob = seal(e, secret, rng.bytes(16));
  const auto back = unseal(e, blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, secret);
  EXPECT_NE(blob.ciphertext, secret);
}

TEST_F(SgxFixture, UnsealRejectsDifferentEnclave) {
  Enclave& e1 = make_enclave("sealer-a");
  Enclave& e2 = make_enclave("sealer-b");
  Rng rng(2);
  const SealedBlob blob = seal(e1, to_bytes("secret"), rng.bytes(16));
  EXPECT_FALSE(unseal(e2, blob).has_value());
}

TEST_F(SgxFixture, UnsealRejectsTamperedBlob) {
  Enclave& e = make_enclave("sealer-c");
  Rng rng(3);
  SealedBlob blob = seal(e, to_bytes("secret"), rng.bytes(16));
  blob.ciphertext[0] ^= 1;
  EXPECT_FALSE(unseal(e, blob).has_value());
}

TEST_F(SgxFixture, UnsealRejectsOtherMachine) {
  Enclave& e = make_enclave("sealer-d");
  Rng rng(4);
  const SealedBlob blob = seal(e, to_bytes("secret"), rng.bytes(16));

  sim::VirtualClock clock2;
  Machine other(clock2, CostModel{}, /*seed=*/999);
  Enclave& e2 = other.create_enclave(
      EnclaveConfig{"sealer-d", 64ULL << 20, 4, false});
  e2.add_pages(64ULL << 20, Bytes{1, 2, 3});
  e2.init();
  // Same measurement inputs but different platform fuse key.
  ASSERT_EQ(e2.measurement(), e.measurement());
  EXPECT_FALSE(unseal(e2, blob).has_value());
}

TEST_F(SgxFixture, SealedBlobSerialization) {
  Enclave& e = make_enclave("sealer-e");
  Rng rng(5);
  const SealedBlob blob = seal(e, to_bytes("payload"), rng.bytes(16));
  const auto parsed = SealedBlob::deserialize(blob.serialize());
  ASSERT_TRUE(parsed.has_value());
  const auto back = unseal(e, *parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(to_string(*back), "payload");
  EXPECT_FALSE(SealedBlob::deserialize(Bytes{1, 2, 3}).has_value());
}

// ---------------------------------------------------------------------
// Attestation
// ---------------------------------------------------------------------

TEST_F(SgxFixture, QuoteVerifies) {
  Enclave& e = make_enclave("attested");
  const Bytes nonce(32, 0x77);
  const Quote quote = generate_quote(e, nonce);
  const AttestationVerifier verifier(
      Bytes(machine_.attestation_key().begin(),
            machine_.attestation_key().end()));
  EXPECT_TRUE(verifier.verify_signature(quote));
  EXPECT_TRUE(verifier.verify(quote, e.measurement()));
}

TEST_F(SgxFixture, QuoteRejectsWrongMeasurement) {
  Enclave& e = make_enclave("attested-b");
  const Quote quote = generate_quote(e, Bytes(8, 1));
  const AttestationVerifier verifier(
      Bytes(machine_.attestation_key().begin(),
            machine_.attestation_key().end()));
  Bytes wrong = e.measurement();
  wrong[0] ^= 1;
  EXPECT_FALSE(verifier.verify(quote, wrong));
}

TEST_F(SgxFixture, ForgedQuoteRejected) {
  Enclave& e = make_enclave("attested-c");
  Quote quote = generate_quote(e, Bytes(8, 1));
  quote.report_data[0] ^= 1;  // attacker changes the bound data
  const AttestationVerifier verifier(
      Bytes(machine_.attestation_key().begin(),
            machine_.attestation_key().end()));
  EXPECT_FALSE(verifier.verify_signature(quote));
}

TEST_F(SgxFixture, QuoteFromOtherPlatformRejected) {
  sim::VirtualClock clock2;
  Machine other(clock2, CostModel{}, /*seed=*/4242);
  Enclave& e2 =
      other.create_enclave(EnclaveConfig{"rogue", 64ULL << 20, 4, false});
  e2.add_pages(64ULL << 20, Bytes{9});
  e2.init();
  const Quote quote = generate_quote(e2, Bytes{});
  // Verifier provisioned for *this* machine's attestation service.
  const AttestationVerifier verifier(
      Bytes(machine_.attestation_key().begin(),
            machine_.attestation_key().end()));
  EXPECT_FALSE(verifier.verify_signature(quote));
}

TEST_F(SgxFixture, QuoteSerialization) {
  Enclave& e = make_enclave("attested-d");
  const Quote quote = generate_quote(e, to_bytes("report"));
  const auto parsed = Quote::deserialize(quote.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->measurement, quote.measurement);
  EXPECT_EQ(parsed->report_data, quote.report_data);
  EXPECT_EQ(parsed->signature, quote.signature);
  EXPECT_THROW(generate_quote(e, Bytes(65, 0)), std::invalid_argument);
}

TEST(CostModel, CycleConversion) {
  CostModel costs;
  // 2.4 GHz: 6,500 cycles ~ 2,708 ns.
  EXPECT_EQ(costs.eenter_ns(), 2708u);
  EXPECT_EQ(costs.cycles_to_ns(2'400), 1'000u);
}

}  // namespace
}  // namespace shield5g::sgx
