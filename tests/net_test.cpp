// Network substrate tests: HTTP framing, routing, TLS record protection,
// the bus request pipeline and its latency accounting.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/bus.h"
#include "net/env.h"
#include "net/http.h"
#include "net/router.h"
#include "net/tls.h"
#include "sim/clock.h"

namespace shield5g::net {
namespace {

// ---------------------------------------------------------------------
// HTTP
// ---------------------------------------------------------------------

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = Method::kPost;
  req.path = "/paka/v1/generate-av";
  req.headers.set("content-type", "application/json");
  req.body = "{\"rand\":\"00\"}";
  const auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, Method::kPost);
  EXPECT_EQ(parsed->path, req.path);
  EXPECT_EQ(parsed->headers.at("content-type"), "application/json");
  EXPECT_EQ(parsed->body, req.body);
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp = HttpResponse::json(201, "{\"ok\":true}");
  const auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 201);
  EXPECT_EQ(parsed->body, "{\"ok\":true}");
}

TEST(Http, AllMethodsSerialize) {
  for (Method m : {Method::kGet, Method::kPost, Method::kPut,
                   Method::kDelete, Method::kPatch}) {
    HttpRequest req;
    req.method = m;
    req.path = "/x";
    const auto parsed = HttpRequest::parse(req.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->method, m);
  }
}

TEST(Http, MalformedInputsRejected) {
  EXPECT_FALSE(HttpRequest::parse(to_bytes("garbage")).has_value());
  EXPECT_FALSE(HttpRequest::parse(to_bytes("GET /x HTTP/1.1\r\n"))
                   .has_value());  // missing blank line
  EXPECT_FALSE(
      HttpRequest::parse(
          to_bytes("GET /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nab"))
          .has_value());  // body shorter than declared
  EXPECT_FALSE(HttpResponse::parse(to_bytes("\r\n\r\n")).has_value());
}

TEST(Http, EmptyBodyAllowed) {
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/paka/v1/health";
  const auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

TEST(RouterTest, ExactAndParameterisedRoutes) {
  Router router;
  router.add(Method::kGet, "/health",
             [](const RequestView&, const PathParams&) {
               return HttpResponse::json(200, "{}");
             });
  router.add(Method::kGet, "/subscribers/:supi/data",
             [](const RequestView&, const PathParams& params) {
               return HttpResponse::json(200,
                                         "{\"supi\":\"" + params.at("supi") +
                                             "\"}");
             });

  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/health";
  EXPECT_EQ(router.route(req).status, 200);

  req.path = "/subscribers/001010000000001/data";
  const HttpResponse resp = router.route(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("001010000000001"), std::string::npos);
}

TEST(RouterTest, NotFoundAndMethodNotAllowed) {
  Router router;
  router.add(Method::kGet, "/only-get",
             [](const RequestView&, const PathParams&) {
               return HttpResponse::json(200, "{}");
             });
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/missing";
  EXPECT_EQ(router.route(req).status, 404);
  req.path = "/only-get";
  req.method = Method::kPost;
  EXPECT_EQ(router.route(req).status, 405);
}

TEST(RouterTest, SegmentCountMustMatch) {
  Router router;
  router.add(Method::kGet, "/a/:x",
             [](const RequestView&, const PathParams&) {
               return HttpResponse::json(200, "{}");
             });
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/a";
  EXPECT_EQ(router.route(req).status, 404);
  req.path = "/a/b/c";
  EXPECT_EQ(router.route(req).status, 404);
  req.path = "/a/b";
  EXPECT_EQ(router.route(req).status, 200);
}

// ---------------------------------------------------------------------
// TLS
// ---------------------------------------------------------------------

class TlsFixture : public ::testing::Test {
 protected:
  Rng rng_{77};
  TlsIdentity server_id_ = TlsIdentity::generate(rng_);

  std::pair<TlsSession, TlsSession> handshake() {
    Bytes hello;
    TlsSession client = TlsSession::client_connect(
        server_id_.key.public_key, rng_, hello);
    Bytes server_hello;
    auto server =
        TlsSession::server_accept(server_id_.key, hello, server_hello);
    EXPECT_TRUE(server.has_value());
    return {std::move(client), std::move(*server)};
  }
};

TEST_F(TlsFixture, RecordRoundTripBothDirections) {
  auto [client, server] = handshake();
  const Bytes msg = to_bytes("POST /paka/v1/generate-av ...");
  const Bytes record = client.protect(msg);
  EXPECT_GT(record.size(), msg.size());  // header + MAC overhead
  const auto plain = server.unprotect(record);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, msg);

  const Bytes reply = server.protect(to_bytes("200 OK"));
  const auto back = client.unprotect(reply);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(to_string(*back), "200 OK");
}

TEST_F(TlsFixture, SequenceNumbersPreventReplay) {
  auto [client, server] = handshake();
  const Bytes record = client.protect(to_bytes("msg-1"));
  ASSERT_TRUE(server.unprotect(record).has_value());
  // Replaying the same record fails: the receive sequence moved on.
  EXPECT_FALSE(server.unprotect(record).has_value());
}

TEST_F(TlsFixture, TamperedRecordRejected) {
  auto [client, server] = handshake();
  Bytes record = client.protect(to_bytes("sensitive"));
  record[7] ^= 0x01;
  EXPECT_FALSE(server.unprotect(record).has_value());
}

TEST_F(TlsFixture, CiphertextHidesPlaintext) {
  auto [client, server] = handshake();
  const Bytes msg = to_bytes("kausf=deadbeefdeadbeefdeadbeef");
  const Bytes record = client.protect(msg);
  EXPECT_EQ(to_string(ByteView(record)).find("kausf"), std::string::npos);
}

TEST_F(TlsFixture, WrongServerKeyBreaksSession) {
  Bytes hello;
  TlsSession client =
      TlsSession::client_connect(server_id_.key.public_key, rng_, hello);
  const TlsIdentity rogue = TlsIdentity::generate(rng_);
  Bytes server_hello;
  auto mitm = TlsSession::server_accept(rogue.key, hello, server_hello);
  ASSERT_TRUE(mitm.has_value());
  // The rogue server derives different keys: records do not verify.
  const Bytes record = client.protect(to_bytes("secret"));
  EXPECT_FALSE(mitm->unprotect(record).has_value());
}

TEST_F(TlsFixture, MalformedHelloRejected) {
  Bytes server_hello;
  EXPECT_FALSE(TlsSession::server_accept(server_id_.key, Bytes(8, 1),
                                         server_hello)
                   .has_value());
}

TEST_F(TlsFixture, ResumptionDisabledServerVsTicketPresentingClient) {
  // A client that (wrongly) speaks the resumable dialect to a legacy
  // server: the 0x02 hello is structurally valid for the legacy parser
  // (>= 32 bytes), so the server derives keys from what it thinks is an
  // ephemeral — but they can never match the client's KDF-only keys.
  // The failure must surface as a clean record-verify failure, exactly
  // like any wrong-key handshake, never a crash or a silent success.
  TicketIssuer issuer{SecretView(Bytes(32, 0x11)),
                      TicketIssuer::kDefaultLifetimeNs};
  Bytes full_hello, full_server_hello;
  auto full = TlsSession::client_connect_resumable(
      server_id_.key.public_key, rng_, full_hello);
  auto full_accept = TlsSession::server_accept_resumable(
      server_id_.key, full_hello, issuer, 0, rng_, full_server_hello);
  const auto ticket = TlsSession::hello_ticket(full_server_hello);
  ASSERT_TRUE(ticket.has_value());

  Bytes resumed_hello, legacy_hello_out;
  auto resumed = TlsSession::client_resume(full.resumption_secret, *ticket,
                                           rng_, resumed_hello);
  auto legacy = TlsSession::server_accept(server_id_.key, resumed_hello,
                                          legacy_hello_out);
  ASSERT_TRUE(legacy.has_value());  // structurally fine, cryptographically not
  const Bytes record = resumed.session.protect(to_bytes("mismatched"));
  EXPECT_FALSE(legacy->unprotect(record).has_value());
}

TEST_F(TlsFixture, LegacyHelloRejectedByResumableServer) {
  // The reverse mismatch: an un-versioned legacy hello hitting the
  // resumable acceptor. The first padding byte (0x5a) is no known
  // version, so the accept fails closed instead of deriving keys from
  // misaligned bytes.
  Bytes hello;
  TlsSession client =
      TlsSession::client_connect(server_id_.key.public_key, rng_, hello);
  (void)client;
  ASSERT_NE(hello[0], 0x01);
  ASSERT_NE(hello[0], 0x02);
  TicketIssuer issuer{SecretView(Bytes(32, 0x12)),
                      TicketIssuer::kDefaultLifetimeNs};
  Bytes server_hello;
  auto accept = TlsSession::server_accept_resumable(
      server_id_.key, hello, issuer, 0, rng_, server_hello);
  EXPECT_FALSE(accept.session.has_value());
  EXPECT_FALSE(accept.resumed);
}

// ---------------------------------------------------------------------
// Bus + server pipeline
// ---------------------------------------------------------------------

class BusFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>("echo", env_, bus_.costs());
    server_->router().add(
        Method::kPost, "/echo",
        [](const RequestView& req, const PathParams&) {
          return HttpResponse::json(200, std::string(req.body));
        });
    bus_.attach(*server_);
  }

  sim::VirtualClock clock_;
  Bus bus_{clock_};
  HostEnv env_{clock_};
  std::unique_ptr<Server> server_;

  HttpRequest echo_request() {
    HttpRequest req;
    req.method = Method::kPost;
    req.path = "/echo";
    req.body = "{\"x\":1}";
    return req;
  }
};

TEST_F(BusFixture, RequestResponseCarriesPayload) {
  const auto exchange = bus_.request("client", "echo", echo_request());
  EXPECT_TRUE(exchange.transport_ok);
  EXPECT_EQ(exchange.response.status, 200);
  EXPECT_EQ(exchange.response.body, "{\"x\":1}");
}

TEST_F(BusFixture, TimingsAreOrderedAndPositive) {
  const auto exchange = bus_.request("client", "echo", echo_request());
  EXPECT_GT(exchange.l_f, 0u);
  EXPECT_GT(exchange.l_t, exchange.l_f);      // L_T = L_F + L_N
  EXPECT_GT(exchange.response_ns, exchange.l_t);  // R includes bridge etc.
  // Sanity band for a container deployment (paper Fig. 9/10).
  EXPECT_GT(sim::to_us(exchange.l_f), 5.0);
  EXPECT_LT(sim::to_us(exchange.l_f), 200.0);
  EXPECT_LT(sim::to_us(exchange.response_ns), 3'000.0);
}

TEST_F(BusFixture, VirtualTimeAdvances) {
  const sim::Nanos t0 = clock_.now();
  bus_.request("client", "echo", echo_request());
  EXPECT_GT(clock_.now(), t0);
}

TEST_F(BusFixture, UnknownServerThrows) {
  EXPECT_THROW(bus_.request("client", "nope", echo_request()),
               std::runtime_error);
}

TEST_F(BusFixture, DuplicateAttachRejected) {
  Server dup("echo", env_, bus_.costs());
  EXPECT_THROW(bus_.attach(dup), std::logic_error);
}

TEST_F(BusFixture, KeepAliveSkipsHandshakeCosts) {
  // Without keep-alive every request pays connect + TLS handshake.
  const auto first = bus_.request("client", "echo", echo_request());
  const auto second = bus_.request("client", "echo", echo_request());

  bus_.set_keep_alive(true);
  const auto third = bus_.request("client", "echo", echo_request());
  const auto fourth = bus_.request("client", "echo", echo_request());
  // Fourth reuses the connection: visibly cheaper than a cold request.
  EXPECT_LT(fourth.response_ns + 50 * sim::kMicrosecond, second.response_ns);
  EXPECT_TRUE(first.transport_ok && third.transport_ok);
}

TEST_F(BusFixture, ServerStatsAccumulate) {
  for (int i = 0; i < 5; ++i) {
    bus_.request("client", "echo", echo_request());
  }
  EXPECT_EQ(server_->requests_served(), 5u);
  EXPECT_EQ(server_->lf_us().count(), 5u);
  EXPECT_EQ(server_->lt_us().count(), 5u);
  server_->reset_stats();
  EXPECT_EQ(server_->lf_us().count(), 0u);
}

TEST_F(BusFixture, RoutingErrorsSurfaceAsHttpStatus) {
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/missing";
  const auto exchange = bus_.request("client", "echo", req);
  EXPECT_TRUE(exchange.transport_ok);
  EXPECT_EQ(exchange.response.status, 404);
}

TEST_F(BusFixture, DetachThenRequestThrows) {
  bus_.detach("echo");
  EXPECT_THROW(bus_.request("client", "echo", echo_request()),
               std::runtime_error);
}

TEST_F(BusFixture, LargerPayloadCostsMore) {
  bus_.set_keep_alive(true);
  HttpRequest small = echo_request();
  bus_.request("client", "echo", small);  // warm the connection
  const sim::Nanos t0 = clock_.now();
  bus_.request("client", "echo", small);
  const sim::Nanos small_cost = clock_.now() - t0;

  HttpRequest big = echo_request();
  big.body = "{\"blob\":\"" + std::string(8'000, 'a') + "\"}";
  const sim::Nanos t1 = clock_.now();
  bus_.request("client", "echo", big);
  const sim::Nanos big_cost = clock_.now() - t1;
  EXPECT_GT(big_cost, small_cost);
}

TEST(RequestProfileTest, DefaultPreWindowSizesRequestTransitions) {
  const RequestProfile profile;
  // pre(78) + recv(3) + send(3) + 4 connection-path calls ~= the
  // paper's ~90 EENTER/EEXIT pairs per registration request.
  EXPECT_EQ(profile.pre_window.size(), 78u);
  EXPECT_EQ(profile.recv_chunks + profile.send_chunks, 6u);
}

}  // namespace
}  // namespace shield5g::net
