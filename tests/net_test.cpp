// Network substrate tests: HTTP framing, routing, TLS record protection,
// the bus request pipeline and its latency accounting.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "crypto/op_count.h"
#include "net/bus.h"
#include "net/env.h"
#include "net/http.h"
#include "net/router.h"
#include "net/tls.h"
#include "sim/clock.h"

namespace shield5g::net {
namespace {

// ---------------------------------------------------------------------
// HTTP
// ---------------------------------------------------------------------

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = Method::kPost;
  req.path = "/paka/v1/generate-av";
  req.headers.set("content-type", "application/json");
  req.body = "{\"rand\":\"00\"}";
  const auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, Method::kPost);
  EXPECT_EQ(parsed->path, req.path);
  EXPECT_EQ(parsed->headers.at("content-type"), "application/json");
  EXPECT_EQ(parsed->body, req.body);
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp = HttpResponse::json(201, "{\"ok\":true}");
  const auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 201);
  EXPECT_EQ(parsed->body, "{\"ok\":true}");
}

TEST(Http, AllMethodsSerialize) {
  for (Method m : {Method::kGet, Method::kPost, Method::kPut,
                   Method::kDelete, Method::kPatch}) {
    HttpRequest req;
    req.method = m;
    req.path = "/x";
    const auto parsed = HttpRequest::parse(req.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->method, m);
  }
}

TEST(Http, MalformedInputsRejected) {
  EXPECT_FALSE(HttpRequest::parse(to_bytes("garbage")).has_value());
  EXPECT_FALSE(HttpRequest::parse(to_bytes("GET /x HTTP/1.1\r\n"))
                   .has_value());  // missing blank line
  EXPECT_FALSE(
      HttpRequest::parse(
          to_bytes("GET /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nab"))
          .has_value());  // body shorter than declared
  EXPECT_FALSE(HttpResponse::parse(to_bytes("\r\n\r\n")).has_value());
}

TEST(Http, EmptyBodyAllowed) {
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/paka/v1/health";
  const auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

TEST(RouterTest, ExactAndParameterisedRoutes) {
  Router router;
  router.add(Method::kGet, "/health",
             [](const RequestView&, const PathParams&) {
               return HttpResponse::json(200, "{}");
             });
  router.add(Method::kGet, "/subscribers/:supi/data",
             [](const RequestView&, const PathParams& params) {
               return HttpResponse::json(200,
                                         "{\"supi\":\"" + params.at("supi") +
                                             "\"}");
             });

  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/health";
  EXPECT_EQ(router.route(req).status, 200);

  req.path = "/subscribers/001010000000001/data";
  const HttpResponse resp = router.route(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("001010000000001"), std::string::npos);
}

TEST(RouterTest, NotFoundAndMethodNotAllowed) {
  Router router;
  router.add(Method::kGet, "/only-get",
             [](const RequestView&, const PathParams&) {
               return HttpResponse::json(200, "{}");
             });
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/missing";
  EXPECT_EQ(router.route(req).status, 404);
  req.path = "/only-get";
  req.method = Method::kPost;
  EXPECT_EQ(router.route(req).status, 405);
}

TEST(RouterTest, SegmentCountMustMatch) {
  Router router;
  router.add(Method::kGet, "/a/:x",
             [](const RequestView&, const PathParams&) {
               return HttpResponse::json(200, "{}");
             });
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/a";
  EXPECT_EQ(router.route(req).status, 404);
  req.path = "/a/b/c";
  EXPECT_EQ(router.route(req).status, 404);
  req.path = "/a/b";
  EXPECT_EQ(router.route(req).status, 200);
}

// ---------------------------------------------------------------------
// TLS
// ---------------------------------------------------------------------

class TlsFixture : public ::testing::Test {
 protected:
  Rng rng_{77};
  TlsIdentity server_id_ = TlsIdentity::generate(rng_);

  std::pair<TlsSession, TlsSession> handshake() {
    Bytes hello;
    TlsSession client = TlsSession::client_connect(
        server_id_.key.public_key, rng_, hello);
    Bytes server_hello;
    auto server =
        TlsSession::server_accept(server_id_.key, hello, server_hello);
    EXPECT_TRUE(server.has_value());
    return {std::move(client), std::move(*server)};
  }
};

TEST_F(TlsFixture, RecordRoundTripBothDirections) {
  auto [client, server] = handshake();
  const Bytes msg = to_bytes("POST /paka/v1/generate-av ...");
  const Bytes record = client.protect(msg);
  EXPECT_GT(record.size(), msg.size());  // header + MAC overhead
  const auto plain = server.unprotect(record);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, msg);

  const Bytes reply = server.protect(to_bytes("200 OK"));
  const auto back = client.unprotect(reply);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(to_string(*back), "200 OK");
}

TEST_F(TlsFixture, SequenceNumbersPreventReplay) {
  auto [client, server] = handshake();
  const Bytes record = client.protect(to_bytes("msg-1"));
  ASSERT_TRUE(server.unprotect(record).has_value());
  // Replaying the same record fails: the receive sequence moved on.
  EXPECT_FALSE(server.unprotect(record).has_value());
}

TEST_F(TlsFixture, TamperedRecordRejected) {
  auto [client, server] = handshake();
  Bytes record = client.protect(to_bytes("sensitive"));
  record[7] ^= 0x01;
  EXPECT_FALSE(server.unprotect(record).has_value());
}

TEST_F(TlsFixture, CiphertextHidesPlaintext) {
  auto [client, server] = handshake();
  const Bytes msg = to_bytes("kausf=deadbeefdeadbeefdeadbeef");
  const Bytes record = client.protect(msg);
  EXPECT_EQ(to_string(ByteView(record)).find("kausf"), std::string::npos);
}

TEST_F(TlsFixture, WrongServerKeyBreaksSession) {
  Bytes hello;
  TlsSession client =
      TlsSession::client_connect(server_id_.key.public_key, rng_, hello);
  const TlsIdentity rogue = TlsIdentity::generate(rng_);
  Bytes server_hello;
  auto mitm = TlsSession::server_accept(rogue.key, hello, server_hello);
  ASSERT_TRUE(mitm.has_value());
  // The rogue server derives different keys: records do not verify.
  const Bytes record = client.protect(to_bytes("secret"));
  EXPECT_FALSE(mitm->unprotect(record).has_value());
}

TEST_F(TlsFixture, MalformedHelloRejected) {
  Bytes server_hello;
  EXPECT_FALSE(TlsSession::server_accept(server_id_.key, Bytes(8, 1),
                                         server_hello)
                   .has_value());
}

TEST_F(TlsFixture, ResumptionDisabledServerVsTicketPresentingClient) {
  // A client that (wrongly) speaks the resumable dialect to a legacy
  // server: the 0x02 hello is structurally valid for the legacy parser
  // (>= 32 bytes), so the server derives keys from what it thinks is an
  // ephemeral — but they can never match the client's KDF-only keys.
  // The failure must surface as a clean record-verify failure, exactly
  // like any wrong-key handshake, never a crash or a silent success.
  TicketIssuer issuer{SecretView(Bytes(32, 0x11)),
                      TicketIssuer::kDefaultLifetimeNs};
  Bytes full_hello, full_server_hello;
  auto full = TlsSession::client_connect_resumable(
      server_id_.key.public_key, rng_, full_hello);
  auto full_accept = TlsSession::server_accept_resumable(
      server_id_.key, full_hello, issuer, 0, rng_, full_server_hello);
  const auto ticket = TlsSession::hello_ticket(full_server_hello);
  ASSERT_TRUE(ticket.has_value());

  Bytes resumed_hello, legacy_hello_out;
  auto resumed = TlsSession::client_resume(full.resumption_secret, *ticket,
                                           rng_, resumed_hello);
  auto legacy = TlsSession::server_accept(server_id_.key, resumed_hello,
                                          legacy_hello_out);
  ASSERT_TRUE(legacy.has_value());  // structurally fine, cryptographically not
  const Bytes record = resumed.session.protect(to_bytes("mismatched"));
  EXPECT_FALSE(legacy->unprotect(record).has_value());
}

TEST_F(TlsFixture, LegacyHelloRejectedByResumableServer) {
  // The reverse mismatch: an un-versioned legacy hello hitting the
  // resumable acceptor. The first padding byte (0x5a) is no known
  // version, so the accept fails closed instead of deriving keys from
  // misaligned bytes.
  Bytes hello;
  TlsSession client =
      TlsSession::client_connect(server_id_.key.public_key, rng_, hello);
  (void)client;
  ASSERT_NE(hello[0], 0x01);
  ASSERT_NE(hello[0], 0x02);
  TicketIssuer issuer{SecretView(Bytes(32, 0x12)),
                      TicketIssuer::kDefaultLifetimeNs};
  Bytes server_hello;
  auto accept = TlsSession::server_accept_resumable(
      server_id_.key, hello, issuer, 0, rng_, server_hello);
  EXPECT_FALSE(accept.session.has_value());
  EXPECT_FALSE(accept.resumed);
}

// ---------------------------------------------------------------------
// Bus + server pipeline
// ---------------------------------------------------------------------

class BusFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>("echo", env_, bus_.costs());
    server_->router().add(
        Method::kPost, "/echo",
        [](const RequestView& req, const PathParams&) {
          return HttpResponse::json(200, std::string(req.body));
        });
    bus_.attach(*server_);
  }

  sim::VirtualClock clock_;
  Bus bus_{clock_};
  HostEnv env_{clock_};
  std::unique_ptr<Server> server_;

  HttpRequest echo_request() {
    HttpRequest req;
    req.method = Method::kPost;
    req.path = "/echo";
    req.body = "{\"x\":1}";
    return req;
  }
};

TEST_F(BusFixture, RequestResponseCarriesPayload) {
  const auto exchange = bus_.request("client", "echo", echo_request());
  EXPECT_TRUE(exchange.transport_ok);
  EXPECT_EQ(exchange.response.status, 200);
  EXPECT_EQ(exchange.response.body, "{\"x\":1}");
}

TEST_F(BusFixture, TimingsAreOrderedAndPositive) {
  const auto exchange = bus_.request("client", "echo", echo_request());
  EXPECT_GT(exchange.l_f, 0u);
  EXPECT_GT(exchange.l_t, exchange.l_f);      // L_T = L_F + L_N
  EXPECT_GT(exchange.response_ns, exchange.l_t);  // R includes bridge etc.
  // Sanity band for a container deployment (paper Fig. 9/10).
  EXPECT_GT(sim::to_us(exchange.l_f), 5.0);
  EXPECT_LT(sim::to_us(exchange.l_f), 200.0);
  EXPECT_LT(sim::to_us(exchange.response_ns), 3'000.0);
}

TEST_F(BusFixture, VirtualTimeAdvances) {
  const sim::Nanos t0 = clock_.now();
  bus_.request("client", "echo", echo_request());
  EXPECT_GT(clock_.now(), t0);
}

TEST_F(BusFixture, UnknownServerThrows) {
  EXPECT_THROW(bus_.request("client", "nope", echo_request()),
               std::runtime_error);
}

TEST_F(BusFixture, DuplicateAttachRejected) {
  Server dup("echo", env_, bus_.costs());
  EXPECT_THROW(bus_.attach(dup), std::logic_error);
}

TEST_F(BusFixture, KeepAliveSkipsHandshakeCosts) {
  // Without keep-alive every request pays connect + TLS handshake.
  const auto first = bus_.request("client", "echo", echo_request());
  const auto second = bus_.request("client", "echo", echo_request());

  bus_.set_keep_alive(true);
  const auto third = bus_.request("client", "echo", echo_request());
  const auto fourth = bus_.request("client", "echo", echo_request());
  // Fourth reuses the connection: visibly cheaper than a cold request.
  EXPECT_LT(fourth.response_ns + 50 * sim::kMicrosecond, second.response_ns);
  EXPECT_TRUE(first.transport_ok && third.transport_ok);
}

TEST_F(BusFixture, ServerStatsAccumulate) {
  for (int i = 0; i < 5; ++i) {
    bus_.request("client", "echo", echo_request());
  }
  EXPECT_EQ(server_->requests_served(), 5u);
  EXPECT_EQ(server_->lf_us().count(), 5u);
  EXPECT_EQ(server_->lt_us().count(), 5u);
  server_->reset_stats();
  EXPECT_EQ(server_->lf_us().count(), 0u);
}

TEST_F(BusFixture, RoutingErrorsSurfaceAsHttpStatus) {
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/missing";
  const auto exchange = bus_.request("client", "echo", req);
  EXPECT_TRUE(exchange.transport_ok);
  EXPECT_EQ(exchange.response.status, 404);
}

TEST_F(BusFixture, DetachThenRequestThrows) {
  bus_.detach("echo");
  EXPECT_THROW(bus_.request("client", "echo", echo_request()),
               std::runtime_error);
}

TEST_F(BusFixture, LargerPayloadCostsMore) {
  bus_.set_keep_alive(true);
  HttpRequest small = echo_request();
  bus_.request("client", "echo", small);  // warm the connection
  const sim::Nanos t0 = clock_.now();
  bus_.request("client", "echo", small);
  const sim::Nanos small_cost = clock_.now() - t0;

  HttpRequest big = echo_request();
  big.body = "{\"blob\":\"" + std::string(8'000, 'a') + "\"}";
  const sim::Nanos t1 = clock_.now();
  bus_.request("client", "echo", big);
  const sim::Nanos big_cost = clock_.now() - t1;
  EXPECT_GT(big_cost, small_cost);
}

// ---------------------------------------------------------------------
// Co-located fast-path parity (DESIGN.md §18)
//
// The wire path is the oracle: a fast-path delivery must be
// indistinguishable from it in everything except host work — same
// handler-observed request, same client-observed response, same virtual
// time, same primitive op counts. Two identical worlds run the same
// exchanges with the fast path forced on vs off and every observable is
// compared field by field.
// ---------------------------------------------------------------------

struct ObservedRequest {
  Method method = Method::kGet;
  std::string path;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  bool operator==(const ObservedRequest& rhs) const {
    return method == rhs.method && path == rhs.path &&
           headers == rhs.headers && body == rhs.body;
  }
};

std::vector<std::pair<std::string, std::string>> headers_of(
    const Headers& headers) {
  std::vector<std::pair<std::string, std::string>> out;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const Headers::View e = headers.entry(i);
    out.emplace_back(std::string(e.key), std::string(e.value));
  }
  return out;
}

/// One self-contained clock+bus+server universe. Both worlds are built
/// identically (same seeds, same handlers); only the fast-path switch
/// differs, so any observable divergence is the fast path's fault.
class FastpathWorld {
 public:
  explicit FastpathWorld(bool fastpath) {
    bus_.set_fastpath(fastpath);
    bus_.set_attach_domain(1);  // co-located: same address space
    server_ = std::make_unique<Server>("echo", env_, bus_.costs());
    server_->router().add(
        Method::kPost, "/echo",
        [this](const RequestView& req, const PathParams&) {
          ObservedRequest seen;
          seen.method = req.method;
          seen.path = std::string(req.path);
          for (std::size_t i = 0; i < req.headers.size(); ++i) {
            seen.headers.emplace_back(std::string(req.headers[i].key),
                                      std::string(req.headers[i].value));
          }
          seen.body = std::string(req.body);
          observed_.push_back(std::move(seen));
          return HttpResponse::json(200, std::string(req.body));
        });
    server_->router().add(
        Method::kGet, "/weird",
        [](const RequestView&, const PathParams&) {
          // Leading-space value: the wire round trip normalizes it
          // away, so this response is NOT wire-transparent and the
          // fast path must fall back to a real record mid-serve.
          HttpResponse resp = HttpResponse::json(200, "{}");
          resp.headers.set("x-odd", " padded");
          return resp;
        });
    bus_.attach(*server_);
    // The fast path only fires between two attached endpoints of the
    // same trust domain — an ambient client label (the RAN side) always
    // takes the wire. Attach a client NF so exchanges originate inside
    // the domain, as NF-to-NF SBI hops do in a monolithic slice.
    client_ = std::make_unique<Server>("client", env_, bus_.costs());
    bus_.attach(*client_);
  }

  struct Outcome {
    std::vector<Bus::Exchange> exchanges;
    sim::Nanos elapsed = 0;
    crypto::OpCounts ops;
  };

  /// Runs `requests` back to back and captures every observable delta.
  Outcome run(const std::vector<std::pair<std::string, HttpRequest>>& requests,
              bool keep_alive) {
    bus_.set_keep_alive(keep_alive);
    Outcome out;
    const sim::Nanos t0 = clock_.now();
    const crypto::OpCounts ops0 = crypto::op_counts();
    for (const auto& [target, req] : requests) {
      out.exchanges.push_back(bus_.request("client", target, req));
    }
    out.elapsed = clock_.now() - t0;
    out.ops = crypto::op_counts() - ops0;
    return out;
  }

  Bus& bus() noexcept { return bus_; }
  const std::vector<ObservedRequest>& observed() const { return observed_; }

 private:
  sim::VirtualClock clock_;
  Bus bus_{clock_};
  HostEnv env_{clock_};
  std::unique_ptr<Server> server_;
  std::unique_ptr<Server> client_;
  std::vector<ObservedRequest> observed_;
};

void expect_outcomes_equal(const FastpathWorld::Outcome& on,
                           const FastpathWorld::Outcome& off) {
  EXPECT_EQ(on.elapsed, off.elapsed);
  EXPECT_EQ(on.ops.aes_blocks, off.ops.aes_blocks);
  EXPECT_EQ(on.ops.sha256_blocks, off.ops.sha256_blocks);
  EXPECT_EQ(on.ops.x25519_ops, off.ops.x25519_ops);
  ASSERT_EQ(on.exchanges.size(), off.exchanges.size());
  for (std::size_t i = 0; i < on.exchanges.size(); ++i) {
    const Bus::Exchange& a = on.exchanges[i];
    const Bus::Exchange& b = off.exchanges[i];
    EXPECT_EQ(a.transport_ok, b.transport_ok) << "exchange " << i;
    EXPECT_EQ(a.l_f, b.l_f) << "exchange " << i;
    EXPECT_EQ(a.l_t, b.l_t) << "exchange " << i;
    EXPECT_EQ(a.response_ns, b.response_ns) << "exchange " << i;
    EXPECT_EQ(a.response.status, b.response.status) << "exchange " << i;
    EXPECT_EQ(a.response.body, b.response.body) << "exchange " << i;
    EXPECT_EQ(headers_of(a.response.headers), headers_of(b.response.headers))
        << "exchange " << i;
  }
}

HttpRequest parity_request(std::string body) {
  HttpRequest req;
  req.method = Method::kPost;
  req.path = "/echo";
  req.headers.set("content-type", "application/json");
  req.body = std::move(body);
  return req;
}

TEST(FastpathParity, ColdAndKeepAliveExchangesAreByteIdentical) {
  std::vector<std::pair<std::string, HttpRequest>> plan;
  for (int i = 0; i < 3; ++i) {
    plan.emplace_back("echo", parity_request("{\"n\":" + std::to_string(i) +
                                             "}"));
  }
  for (const bool keep_alive : {false, true}) {
    FastpathWorld world_on(true);
    FastpathWorld world_off(false);
    const auto on = world_on.run(plan, keep_alive);
    const auto off = world_off.run(plan, keep_alive);
    expect_outcomes_equal(on, off);
    EXPECT_EQ(world_on.observed().size(), 3u);
    ASSERT_EQ(world_off.observed().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(world_on.observed()[i] == world_off.observed()[i])
          << "handler saw different requests at " << i;
    }
    EXPECT_EQ(world_on.bus().fastpath_hits(), 3u);
    EXPECT_EQ(world_off.bus().fastpath_hits(), 0u);
  }
}

TEST(FastpathParity, ManyHeadersAndLargeBodySurviveZeroCopy) {
  // Past HeaderViews' inline capacity (8) and with a 64 KiB body: the
  // fast path hands the handler an aliasing view of the original
  // request, the wire path a view of the decrypted record — they must
  // agree byte for byte, and cost the same.
  HttpRequest req = parity_request(std::string(64 * 1024, 'x'));
  for (int h = 0; h < 10; ++h) {
    req.headers.set("x-custom-" + std::to_string(h),
                    "value-" + std::to_string(h));
  }
  std::vector<std::pair<std::string, HttpRequest>> plan{{"echo", req}};
  FastpathWorld world_on(true);
  FastpathWorld world_off(false);
  const auto on = world_on.run(plan, false);
  const auto off = world_off.run(plan, false);
  expect_outcomes_equal(on, off);
  ASSERT_EQ(world_on.observed().size(), 1u);
  ASSERT_EQ(world_off.observed().size(), 1u);
  EXPECT_TRUE(world_on.observed()[0] == world_off.observed()[0]);
  ASSERT_GT(world_on.observed()[0].headers.size(), 8u);
  EXPECT_EQ(world_on.observed()[0].body.size(), 64u * 1024u);
  EXPECT_EQ(world_on.bus().fastpath_hits(), 1u);
}

TEST(FastpathParity, NonTransparentResponseFallsBackIdentically) {
  // The /weird handler's response does not round-trip the wire
  // losslessly, so the fast path protects a real record mid-serve. The
  // client must still observe exactly what the wire path delivers —
  // including the wire's normalization of the odd header.
  HttpRequest req;
  req.method = Method::kGet;
  req.path = "/weird";
  std::vector<std::pair<std::string, HttpRequest>> plan{{"echo", req}};
  const std::uint64_t fallbacks_before =
      counter_value("bus.fastpath.fallback");
  FastpathWorld world_on(true);
  FastpathWorld world_off(false);
  const auto on = world_on.run(plan, false);
  const auto off = world_off.run(plan, false);
  expect_outcomes_equal(on, off);
  // The request leg was still zero-wire: the delivery counts as a hit,
  // and the response leg as a fallback.
  EXPECT_EQ(world_on.bus().fastpath_hits(), 1u);
  EXPECT_EQ(counter_value("bus.fastpath.fallback") - fallbacks_before, 1u);
  EXPECT_EQ(world_off.bus().fastpath_hits(), 0u);
}

TEST(FastpathParity, IneligibleWithoutSharedDomainOrWithFaults) {
  // Isolated-domain attachments (the container/SGX layout) never take
  // the fast path even when enabled.
  sim::VirtualClock clock;
  Bus bus(clock);
  HostEnv env(clock);
  Server server("echo", env, bus.costs());
  server.router().add(Method::kPost, "/echo",
                      [](const RequestView& req, const PathParams&) {
                        return HttpResponse::json(200, std::string(req.body));
                      });
  bus.attach(server);  // default domain: kIsolatedDomain
  const auto exchange = bus.request("client", "echo", parity_request("{}"));
  EXPECT_TRUE(exchange.transport_ok);
  EXPECT_EQ(bus.fastpath_hits(), 0u);

  // Fault injection disqualifies a co-located pair too: degraded
  // transport must exercise the real wire machinery.
  FastpathWorld faulty(true);
  Bus::FaultPlan plan_faults;
  plan_faults.corrupt_record_prob = 0.5;
  faulty.bus().set_fault_plan(plan_faults);
  std::vector<std::pair<std::string, HttpRequest>> plan{
      {"echo", parity_request("{}")}};
  (void)faulty.run(plan, false);
  EXPECT_EQ(faulty.bus().fastpath_hits(), 0u);
}

TEST_F(TlsFixture, RecordOpCountFormulaMatchesRealRecords) {
  // TlsSession::record_op_counts is the fast path's cost oracle: it
  // must predict the exact primitive counts of protect()/unprotect()
  // at every size class (empty, sub-block, block boundaries, large).
  auto [client, server] = handshake();
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{15}, std::size_t{16},
        std::size_t{17}, std::size_t{63}, std::size_t{64}, std::size_t{100},
        std::size_t{1000}, std::size_t{65536}}) {
    const crypto::OpCounts predicted = TlsSession::record_op_counts(n);
    const Bytes msg(n, 0xab);

    const crypto::OpCounts before_protect = crypto::op_counts();
    const Bytes record = client.protect(msg);
    const crypto::OpCounts protect_delta =
        crypto::op_counts() - before_protect;
    EXPECT_EQ(protect_delta.aes_blocks, predicted.aes_blocks) << "n=" << n;
    EXPECT_EQ(protect_delta.sha256_blocks, predicted.sha256_blocks)
        << "n=" << n;
    EXPECT_EQ(protect_delta.x25519_ops, 0u) << "n=" << n;

    const crypto::OpCounts before_unprotect = crypto::op_counts();
    ASSERT_TRUE(server.unprotect(record).has_value()) << "n=" << n;
    const crypto::OpCounts unprotect_delta =
        crypto::op_counts() - before_unprotect;
    EXPECT_EQ(unprotect_delta.aes_blocks, predicted.aes_blocks) << "n=" << n;
    EXPECT_EQ(unprotect_delta.sha256_blocks, predicted.sha256_blocks)
        << "n=" << n;
  }
}

TEST(RequestProfileTest, DefaultPreWindowSizesRequestTransitions) {
  const RequestProfile profile;
  // pre(78) + recv(3) + send(3) + 4 connection-path calls ~= the
  // paper's ~90 EENTER/EEXIT pairs per registration request.
  EXPECT_EQ(profile.pre_window.size(), 78u);
  EXPECT_EQ(profile.recv_chunks + profile.send_chunks, 6u);
}

}  // namespace
}  // namespace shield5g::net
