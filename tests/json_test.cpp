// JSON value / parser / serializer tests.
#include <gtest/gtest.h>

#include "json/json.h"

namespace shield5g::json {
namespace {

TEST(JsonValue, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValue, AccessorsThrowOnMismatch) {
  const Value v("text");
  EXPECT_EQ(v.as_string(), "text");
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.at("k"), std::runtime_error);
}

TEST(JsonValue, ObjectHelpers) {
  Value v;
  v["name"] = Value("eudm");
  v["count"] = Value(3);
  EXPECT_TRUE(v.has("name"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(*v.get_string("name"), "eudm");
  EXPECT_EQ(*v.get_int("count"), 3);
  EXPECT_FALSE(v.get_string("count").has_value());  // wrong type
  EXPECT_FALSE(v.get_string("missing").has_value());
  EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(JsonDump, ScalarsAndEscapes) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-1.5).dump(), "-1.5");
  EXPECT_EQ(Value("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonDump, SortedObjectKeys) {
  Object obj;
  obj["zeta"] = Value(1);
  obj["alpha"] = Value(2);
  EXPECT_EQ(Value(obj).dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(JsonDump, NestedStructures) {
  Object inner;
  inner["k"] = Value("v");
  Array arr;
  arr.push_back(Value(1));
  arr.push_back(Value(inner));
  arr.push_back(Value(nullptr));
  EXPECT_EQ(Value(arr).dump(), "[1,{\"k\":\"v\"},null]");
}

TEST(JsonParse, RoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,true,false,null],\"b\":{\"c\":\"d\"},\"e\":-3}";
  const Value v = parse(text);
  EXPECT_EQ(v.dump(), text);
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n \"a\" :\t1 , \"b\" : [ ] }  ");
  EXPECT_EQ(*v.get_int("a"), 1);
  EXPECT_TRUE(v.at("b").as_array().empty());
}

TEST(JsonParse, StringEscapes) {
  const Value v = parse(R"("line\nbreak\ttabA")");
  EXPECT_EQ(v.as_string(), "line\nbreak\ttabA");
}

TEST(JsonParse, UnicodeEscapeToUtf8) {
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_THROW(parse(R"("\u00zz")"), std::runtime_error);
}

TEST(JsonParse, Numbers) {
  EXPECT_DOUBLE_EQ(parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").as_number(), 0.025);
}

TEST(JsonParse, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul", "01a",
        "\"unterminated", "[1 2]", "{\"a\":1,}", "[],[]", "{}{}"}) {
    EXPECT_THROW(parse(bad), std::runtime_error) << bad;
  }
}

TEST(JsonParse, DeepNesting) {
  std::string text;
  for (int i = 0; i < 40; ++i) text += "[";
  text += "1";
  for (int i = 0; i < 40; ++i) text += "]";
  const Value v = parse(text);
  const Value* cur = &v;
  for (int i = 0; i < 40; ++i) cur = &cur->as_array().at(0);
  EXPECT_DOUBLE_EQ(cur->as_number(), 1.0);
}

TEST(JsonParse, HexPayloadTypicalSbiBody) {
  // The shape the P-AKA modules actually exchange.
  const std::string body =
      "{\"amfId\":\"8000\",\"opc\":\"cd63cb71954a9f4e48a5994e37a02baf\","
      "\"rand\":\"23553cbe9637a89d218ae64dae47bf35\",\"snn\":"
      "\"5G:mnc001.mcc001.3gppnetwork.org\",\"sqn\":\"ff9bb4d0b607\","
      "\"supi\":\"001010000000001\"}";
  const Value v = parse(body);
  EXPECT_EQ(*v.get_string("opc"), "cd63cb71954a9f4e48a5994e37a02baf");
  EXPECT_EQ(v.dump(), body);  // sorted keys -> byte-stable round trip
}

TEST(JsonValue, Equality) {
  EXPECT_EQ(parse("{\"a\":[1,2]}"), parse("{ \"a\" : [ 1 , 2 ] }"));
  EXPECT_NE(parse("{\"a\":[1,2]}"), parse("{\"a\":[1,3]}"));
}

}  // namespace
}  // namespace shield5g::json
