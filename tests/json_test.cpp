// JSON value / parser / serializer tests.
#include <gtest/gtest.h>

#include "json/json.h"

namespace shield5g::json {
namespace {

TEST(JsonValue, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValue, AccessorsThrowOnMismatch) {
  const Value v("text");
  EXPECT_EQ(v.as_string(), "text");
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.at("k"), std::runtime_error);
}

TEST(JsonValue, ObjectHelpers) {
  Value v;
  v["name"] = Value("eudm");
  v["count"] = Value(3);
  EXPECT_TRUE(v.has("name"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(*v.get_string("name"), "eudm");
  EXPECT_EQ(*v.get_int("count"), 3);
  EXPECT_FALSE(v.get_string("count").has_value());  // wrong type
  EXPECT_FALSE(v.get_string("missing").has_value());
  EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(JsonDump, ScalarsAndEscapes) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-1.5).dump(), "-1.5");
  EXPECT_EQ(Value("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonDump, InsertionOrderedObjectKeys) {
  Object obj;
  obj["zeta"] = Value(1);
  obj["alpha"] = Value(2);
  EXPECT_EQ(Value(obj).dump(), "{\"zeta\":1,\"alpha\":2}");
}

TEST(JsonDump, NestedStructures) {
  Object inner;
  inner["k"] = Value("v");
  Array arr;
  arr.push_back(Value(1));
  arr.push_back(Value(inner));
  arr.push_back(Value(nullptr));
  EXPECT_EQ(Value(arr).dump(), "[1,{\"k\":\"v\"},null]");
}

TEST(JsonParse, RoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,true,false,null],\"b\":{\"c\":\"d\"},\"e\":-3}";
  const Value v = parse(text);
  EXPECT_EQ(v.dump(), text);
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n \"a\" :\t1 , \"b\" : [ ] }  ");
  EXPECT_EQ(*v.get_int("a"), 1);
  EXPECT_TRUE(v.at("b").as_array().empty());
}

TEST(JsonParse, StringEscapes) {
  const Value v = parse(R"("line\nbreak\ttabA")");
  EXPECT_EQ(v.as_string(), "line\nbreak\ttabA");
}

TEST(JsonParse, UnicodeEscapeToUtf8) {
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_THROW(parse(R"("\u00zz")"), std::runtime_error);
}

TEST(JsonParse, Numbers) {
  EXPECT_DOUBLE_EQ(parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").as_number(), 0.025);
}

TEST(JsonParse, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul", "01a",
        "\"unterminated", "[1 2]", "{\"a\":1,}", "[],[]", "{}{}"}) {
    EXPECT_THROW(parse(bad), std::runtime_error) << bad;
  }
}

TEST(JsonParse, DeepNesting) {
  std::string text;
  for (int i = 0; i < 40; ++i) text += "[";
  text += "1";
  for (int i = 0; i < 40; ++i) text += "]";
  const Value v = parse(text);
  const Value* cur = &v;
  for (int i = 0; i < 40; ++i) cur = &cur->as_array().at(0);
  EXPECT_DOUBLE_EQ(cur->as_number(), 1.0);
}

TEST(JsonParse, HexPayloadTypicalSbiBody) {
  // The shape the P-AKA modules actually exchange.
  const std::string body =
      "{\"amfId\":\"8000\",\"opc\":\"cd63cb71954a9f4e48a5994e37a02baf\","
      "\"rand\":\"23553cbe9637a89d218ae64dae47bf35\",\"snn\":"
      "\"5G:mnc001.mcc001.3gppnetwork.org\",\"sqn\":\"ff9bb4d0b607\","
      "\"supi\":\"001010000000001\"}";
  const Value v = parse(body);
  EXPECT_EQ(*v.get_string("opc"), "cd63cb71954a9f4e48a5994e37a02baf");
  EXPECT_EQ(v.dump(), body);  // sorted keys -> byte-stable round trip
}

TEST(JsonValue, Equality) {
  EXPECT_EQ(parse("{\"a\":[1,2]}"), parse("{ \"a\" : [ 1 , 2 ] }"));
  EXPECT_NE(parse("{\"a\":[1,2]}"), parse("{\"a\":[1,3]}"));
}

// ---- Flat insertion-ordered Object semantics ----------------------------

TEST(JsonObject, KeyOrderSurvivesParseDumpRoundTrip) {
  // Deliberately non-alphabetical: a sorted map would reorder these.
  const std::string text =
      "{\"zeta\":1,\"alpha\":{\"nested_z\":true,\"nested_a\":false},"
      "\"mid\":[{\"y\":0,\"x\":1}]}";
  EXPECT_EQ(parse(text).dump(), text);
}

TEST(JsonObject, DuplicateKeyOverwritesInPlace) {
  // Both through the API and off the wire, the last value wins but the
  // key keeps its original position.
  Object obj;
  obj["first"] = Value(1);
  obj["second"] = Value(2);
  obj["first"] = Value(3);
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(Value(obj).dump(), "{\"first\":3,\"second\":2}");

  const Value parsed = parse("{\"a\":1,\"b\":2,\"a\":9}");
  EXPECT_EQ(parsed.dump(), "{\"a\":9,\"b\":2}");
}

TEST(JsonObject, EqualityIsOrderSensitive) {
  // Two objects that serialize to different documents must not compare
  // equal — the flat map's == mirrors the bytes it produces.
  EXPECT_NE(parse("{\"a\":1,\"b\":2}"), parse("{\"b\":2,\"a\":1}"));
  EXPECT_EQ(parse("{\"a\":1,\"b\":2}"), parse("{\"a\":1,\"b\":2}"));
}

TEST(JsonObject, FindAndCountOnFlatStorage) {
  Object obj;
  obj["k1"] = Value(1);
  obj["k2"] = Value("two");
  EXPECT_EQ(obj.count("k1"), 1u);
  EXPECT_EQ(obj.count("absent"), 0u);
  EXPECT_EQ(obj.find("k2")->second.as_string(), "two");
  EXPECT_EQ(obj.find("absent"), obj.end());
  const Object& cobj = obj;
  EXPECT_EQ(cobj.find("k1")->second.as_int(), 1);
}

TEST(JsonObject, DeeplyNestedObjectsRoundTrip) {
  // 24 levels of single-key objects, keys descending so ordering bugs
  // at any depth change the bytes.
  std::string text;
  for (int i = 23; i >= 0; --i) {
    text += "{\"k" + std::to_string(i) + "\":";
  }
  text += "null";
  text.append(24, '}');
  const Value v = parse(text);
  EXPECT_EQ(v.dump(), text);
  const Value* cur = &v;
  for (int i = 23; i >= 0; --i) cur = &cur->at("k" + std::to_string(i));
  EXPECT_TRUE(cur->is_null());
}

}  // namespace
}  // namespace shield5g::json
