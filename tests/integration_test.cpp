// Cross-module integration tests: the paper's headline behaviours as
// end-to-end invariants — SGX overhead factors, transition accounting
// per UE, key-hierarchy consistency between UE and network, and the
// threat-model scenarios HMEE isolation is supposed to stop.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "crypto/key_hierarchy.h"
#include "nf/sbi.h"
#include "ran/ue.h"
#include "sgx/sealing.h"
#include "slice/slice.h"

namespace shield5g {
namespace {

using slice::IsolationMode;
using slice::Slice;
using slice::SliceConfig;

SliceConfig config_for(IsolationMode mode, std::uint32_t subs = 4) {
  SliceConfig cfg;
  cfg.mode = mode;
  cfg.subscriber_count = subs;
  return cfg;
}

TEST(Integration, SgxSlowerThanContainerSlowerThanNothing) {
  Samples setup_mono, setup_cont, setup_sgx;
  for (auto [mode, samples] :
       {std::pair{IsolationMode::kMonolithic, &setup_mono},
        std::pair{IsolationMode::kContainer, &setup_cont},
        std::pair{IsolationMode::kSgx, &setup_sgx}}) {
    Slice s(config_for(mode));
    s.create();
    s.register_subscriber(0, true);  // warm: absorb first-request spikes
    for (std::uint32_t i = 1; i < 4; ++i) {
      samples->add(sim::to_ms(s.register_subscriber(i, true).setup_time));
    }
  }
  // Monolithic vs container: negligible difference (paper §V-B3).
  EXPECT_LT(setup_cont.mean() - setup_mono.mean(), 8.0);
  // SGX adds a measurable but small delta on top of container.
  EXPECT_GT(setup_sgx.mean(), setup_cont.mean());
  EXPECT_LT(setup_sgx.mean() - setup_cont.mean(), 12.0);
  // All within the e2e band of the paper (~62 ms).
  EXPECT_GT(setup_sgx.mean(), 40.0);
  EXPECT_LT(setup_sgx.mean(), 90.0);
}

TEST(Integration, PerUeTransitionsAreNearNinety) {
  Slice s(config_for(IsolationMode::kSgx, 6));
  s.create();
  s.register_subscriber(0, true);  // cold paths

  const auto base = *s.eudm()->sgx_counters();
  s.register_subscriber(1, true);
  const auto after1 = *s.eudm()->sgx_counters();
  s.register_subscriber(2, true);
  const auto after2 = *s.eudm()->sgx_counters();

  const auto d1 = after1 - base;
  const auto d2 = after2 - after1;
  // Paper Table III: ~90 EENTERs per UE registration, steady per UE.
  EXPECT_GT(d1.eenter, 60u);
  EXPECT_LT(d1.eenter, 130u);
  EXPECT_EQ(d1.eenter, d2.eenter);
  EXPECT_EQ(d1.eexit, d2.eexit);
}

TEST(Integration, AexIndependentOfUeCount) {
  Slice s(config_for(IsolationMode::kSgx, 6));
  s.create();
  s.register_subscriber(0, true);
  const auto base = *s.eudm()->sgx_counters();
  s.register_subscriber(1, true);
  const auto one = (*s.eudm()->sgx_counters()).aex - base.aex;
  // AEX per registration is tiny compared to the enclave-lifetime
  // accrual (paper Table III: ~140k total, invariant in UE count).
  EXPECT_LT(one, base.aex / 100);
}

TEST(Integration, UeAndNetworkDeriveIdenticalKamf) {
  Slice s(config_for(IsolationMode::kSgx, 2));
  s.create();
  ran::UeDevice ue(s.subscriber(0), 4242);
  const auto result = s.gnbsim().register_ue(ue, true);
  ASSERT_TRUE(result.session_up);
  // The UE's independently derived K_AMF agrees with the network's
  // (registration could not have completed otherwise, but check the
  // bytes explicitly).
  EXPECT_EQ(ue.kamf().size(), 32u);
  EXPECT_FALSE(ue.guti().empty());
  EXPECT_EQ(s.amf().ue_supi(1).value_or(""), ue.usim().supi());
}

TEST(Integration, LatencyRatiosMatchPaperShape) {
  // Container baseline.
  Slice cont(config_for(IsolationMode::kContainer, 12));
  cont.create();
  cont.register_subscriber(0, true);
  cont.eudm()->server().reset_stats();
  for (std::uint32_t i = 1; i < 12; ++i) cont.register_subscriber(i, true);

  // SGX deployment.
  Slice sgx(config_for(IsolationMode::kSgx, 12));
  sgx.create();
  sgx.register_subscriber(0, true);
  sgx.eudm()->server().reset_stats();
  for (std::uint32_t i = 1; i < 12; ++i) sgx.register_subscriber(i, true);

  const double lf_ratio = sgx.eudm()->server().lf_us().median() /
                          cont.eudm()->server().lf_us().median();
  const double lt_ratio = sgx.eudm()->server().lt_us().median() /
                          cont.eudm()->server().lt_us().median();
  // Paper Table II (eUDM): L_F 1.2x, L_T 1.86x. Accept generous bands —
  // the *shape* (SGX slower, L_T amplified more than L_F) must hold.
  EXPECT_GT(lf_ratio, 1.05);
  EXPECT_LT(lf_ratio, 1.6);
  EXPECT_GT(lt_ratio, lf_ratio);
  EXPECT_LT(lt_ratio, 3.2);
}

TEST(Integration, MonolithicAndExternalProduceSameKeys) {
  // Same seed => same subscriber credentials and same RAND sequence, so
  // the two deployments must produce byte-identical key hierarchies.
  SliceConfig a = config_for(IsolationMode::kMonolithic, 1);
  SliceConfig b = config_for(IsolationMode::kSgx, 1);
  a.seed = b.seed = 99;
  Slice sa(a), sb(b);
  sa.create();
  sb.create();
  ran::UeDevice ua(sa.subscriber(0), 7);
  ran::UeDevice ub(sb.subscriber(0), 7);
  ASSERT_TRUE(sa.gnbsim().register_ue(ua, false).registered);
  ASSERT_TRUE(sb.gnbsim().register_ue(ub, false).registered);
  EXPECT_EQ(ua.kamf(), ub.kamf());
}

// ---------------------------------------------------------------------
// Threat-model scenarios (paper §III, §VI)
// ---------------------------------------------------------------------

TEST(Integration, CoResidentCannotUnsealKeyTable) {
  // KI 27: an attacker that exfiltrates the sealed key-table blob and
  // replays it into their own enclave learns nothing.
  Slice s(config_for(IsolationMode::kSgx, 2));
  s.create();

  // Attacker enclave on the same machine (co-residency achieved).
  auto& attacker = s.machine().create_enclave(
      sgx::EnclaveConfig{"malicious-app", 64ULL << 20, 4, false});
  attacker.add_pages(64ULL << 20, Bytes{0xde, 0xad});
  attacker.init();

  std::map<nf::Supi, SecretBytes> keys{{nf::Supi{"001010000000001"},
                                  Bytes(16, 9)}};
  Rng rng(1);
  const auto blob =
      sgx::seal(s.eudm()->runtime()->enclave(),
                paka::EudmAkaService::serialize_key_table(keys),
                rng.bytes(16));
  EXPECT_FALSE(sgx::unseal(attacker, blob).has_value());
}

TEST(Integration, ImpostorModuleFailsAttestation) {
  // KI 13: a tampered module image yields a different measurement, so
  // the orchestrator's attestation check rejects it.
  Slice s(config_for(IsolationMode::kSgx, 1));
  s.create();
  const sgx::AttestationVerifier verifier(
      Bytes(s.machine().attestation_key().begin(),
            s.machine().attestation_key().end()));

  auto& impostor = s.machine().create_enclave(
      sgx::EnclaveConfig{"eudm-aka-lookalike", 512ULL << 20, 4, false});
  impostor.add_pages(512ULL << 20, Bytes{0xba, 0xad});
  impostor.init();
  const auto quote = sgx::generate_quote(impostor, Bytes{});
  EXPECT_TRUE(verifier.verify_signature(quote));  // genuine platform...
  EXPECT_FALSE(verifier.verify(
      quote, s.eudm()->runtime()->enclave().measurement()));  // wrong code
}

TEST(Integration, CryptoParametersNeverCrossInPlaintext) {
  // The SBI payloads carrying K_AUSF etc. traverse the bus only inside
  // TLS records; this asserts the transport actually encrypts (an
  // eavesdropper on the bridge sees no hex-encoded key material).
  // Covered at the TLS layer (net_test CiphertextHidesPlaintext); here
  // we check the architectural invariant that the subscriber K is not
  // even *sent* to the eUDM module per request (Table I inputs only).
  Slice s(config_for(IsolationMode::kSgx, 1));
  s.create();
  ASSERT_TRUE(s.register_subscriber(0, false).registered);
  // The eUDM holds the K table from sealed provisioning; the UDM fetches
  // K from the UDR but never forwards it (no "k" field in the P-AKA
  // request schema — enforced by the handler's parameter checks).
  EXPECT_EQ(s.eudm()->key_count(), 1u);
}

TEST(Integration, ExitlessModeStillRegistersUes) {
  SliceConfig cfg = config_for(IsolationMode::kSgx, 2);
  cfg.paka.exitless = true;
  Slice s(cfg);
  s.create();
  const auto result = s.register_subscriber(0, true);
  EXPECT_TRUE(result.session_up);
  // Steady-state transitions collapse to (almost) zero.
  const auto base = *s.eudm()->sgx_counters();
  s.register_subscriber(1, true);
  const auto delta = *s.eudm()->sgx_counters() - base;
  EXPECT_EQ(delta.eenter, 0u);
}

TEST(Integration, BiggerEpcDoesNotHelp) {
  // Fig. 8: growing the EPC beyond the working set does not improve
  // latency (and 8 GB adds paging noise). 8 GB is the per-socket
  // maximum, so only the single module under test is resized (the paper
  // sweeps the eUDM module alone).
  auto run = [](std::uint64_t epc) {
    sim::VirtualClock clock;
    sgx::Machine machine(clock);
    net::Bus bus(clock);
    paka::PakaOptions opts;
    opts.isolation = paka::Isolation::kSgx;
    opts.epc_size = epc;
    paka::EudmAkaService eudm(machine, bus, opts);
    eudm.deploy();
    eudm.provision_key(nf::Supi{"001010000000001"}, Bytes(16, 3));

    json::Object body;
    body["supi"] = "001010000000001";
    body["opc"] = nf::hex_field(Bytes(16, 4));
    body["rand"] = nf::hex_field(Bytes(16, 5));
    body["sqn"] = nf::hex_field(Bytes(6, 0));
    body["amfId"] = nf::hex_field(Bytes{0x80, 0x00});
    body["snn"] = "5G:mnc001.mcc001.3gppnetwork.org";
    const auto req = nf::json_post("/paka/v1/generate-av",
                                   json::Value(std::move(body)));
    bus.request("udm", "eudm-aka", req);  // cold paths
    eudm.server().reset_stats();
    for (int i = 0; i < 30; ++i) bus.request("udm", "eudm-aka", req);
    return eudm.server().lt_us().median();
  };
  const double at_512m = run(512ULL << 20);
  const double at_8g = run(8ULL << 30);
  EXPECT_GT(at_8g, at_512m * 0.9);  // no improvement
}

}  // namespace
}  // namespace shield5g
