// Slice orchestrator tests: creation under each isolation mode,
// attestation/sealing admission, deployment policies, creation timing.
#include <gtest/gtest.h>

#include "slice/slice.h"

namespace shield5g::slice {
namespace {

TEST(SliceTest, ModeNames) {
  EXPECT_STREQ(isolation_mode_name(IsolationMode::kMonolithic),
               "monolithic");
  EXPECT_STREQ(isolation_mode_name(IsolationMode::kContainer), "container");
  EXPECT_STREQ(isolation_mode_name(IsolationMode::kSgx), "sgx");
}

TEST(SliceTest, MonolithicHasNoPakaModules) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kMonolithic;
  Slice s(cfg);
  const SliceCreation creation = s.create();
  EXPECT_EQ(s.eudm(), nullptr);
  EXPECT_EQ(s.eausf(), nullptr);
  EXPECT_EQ(s.eamf(), nullptr);
  EXPECT_EQ(creation.eudm_load, 0u);
  EXPECT_LT(sim::to_s(creation.total), 1.0);
}

TEST(SliceTest, ContainerModeDeploysPlainModules) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kContainer;
  Slice s(cfg);
  const SliceCreation creation = s.create();
  ASSERT_NE(s.eudm(), nullptr);
  EXPECT_FALSE(creation.attestation_ok);  // nothing to attest
  EXPECT_EQ(s.eudm()->runtime(), nullptr);
  EXPECT_GT(s.eudm()->key_count(), 0u);  // plain provisioning
  EXPECT_LT(sim::to_s(creation.total), 10.0);
}

TEST(SliceTest, SgxModeAttestsAndSealsBeforeAdmission) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kSgx;
  cfg.subscriber_count = 4;
  Slice s(cfg);
  const SliceCreation creation = s.create();
  EXPECT_TRUE(creation.attestation_ok);
  EXPECT_TRUE(creation.sealed_provisioning_ok);
  EXPECT_EQ(s.eudm()->key_count(), 4u);
  // Slice creation is dominated by three ~1-minute enclave loads
  // (Fig. 7: this is the slice creation / migration cost).
  EXPECT_GT(sim::to_s(creation.total), 150.0);
  EXPECT_LT(sim::to_s(creation.total), 220.0);
  for (const sim::Nanos load :
       {creation.eudm_load, creation.eausf_load, creation.eamf_load}) {
    EXPECT_GT(sim::to_s(load), 50.0);
    EXPECT_LT(sim::to_s(load), 65.0);
  }
}

TEST(SliceTest, DoubleCreateThrows) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kMonolithic;
  Slice s(cfg);
  s.create();
  EXPECT_THROW(s.create(), std::logic_error);
}

TEST(SliceTest, SubscriberAccessors) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kMonolithic;
  cfg.subscriber_count = 3;
  Slice s(cfg);
  s.create();
  const auto usim = s.subscriber(2);
  EXPECT_EQ(usim.plmn.id(), "00101");
  EXPECT_EQ(usim.k.size(), 16u);
  EXPECT_EQ(usim.msin.size(), 10u);
  EXPECT_THROW(s.subscriber(3), std::out_of_range);
  // Distinct subscribers get distinct keys.
  EXPECT_NE(s.subscriber(0).k, s.subscriber(1).k);
}

TEST(SliceTest, PakaOptionsPropagate) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kSgx;
  cfg.paka.epc_size = 1ULL << 30;
  cfg.paka.max_threads = 10;
  Slice s(cfg);
  s.create();
  const auto& manifest = s.eudm()->runtime()->image().manifest;
  EXPECT_EQ(manifest.enclave_size, 1ULL << 30);
  EXPECT_EQ(manifest.max_threads, 10u);
}

TEST(SliceTest, DeterministicAcrossRuns) {
  auto run = [] {
    SliceConfig cfg;
    cfg.mode = IsolationMode::kContainer;
    cfg.subscriber_count = 1;
    Slice s(cfg);
    s.create();
    return s.register_subscriber(0, true).setup_time;
  };
  EXPECT_EQ(run(), run());  // same seed -> identical virtual timing
}

TEST(SliceTest, SeedChangesJitterNotOutcome) {
  SliceConfig a;
  a.mode = IsolationMode::kContainer;
  a.subscriber_count = 1;
  a.seed = 1;
  Slice sa(a);
  sa.create();
  const auto ra = sa.register_subscriber(0, true);

  SliceConfig b = a;
  b.seed = 2;
  Slice sb(b);
  sb.create();
  const auto rb = sb.register_subscriber(0, true);

  EXPECT_TRUE(ra.session_up);
  EXPECT_TRUE(rb.session_up);
  EXPECT_NE(ra.setup_time, rb.setup_time);
}

TEST(SliceTest, EudmReplicaPool) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kSgx;
  cfg.eudm_replicas = 3;
  cfg.subscriber_count = 6;
  Slice s(cfg);
  const auto creation = s.create();
  EXPECT_EQ(s.eudm_replicas().size(), 3u);
  EXPECT_TRUE(creation.attestation_ok);       // every replica attested
  EXPECT_TRUE(creation.sealed_provisioning_ok);  // every replica keyed
  EXPECT_EQ(s.machine().enclave_count(), 5u);    // 3x eUDM + eAUSF + eAMF

  // Registrations round-robin across the replicas.
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(s.register_subscriber(i, false).registered) << i;
  }
  for (const auto& replica : s.eudm_replicas()) {
    EXPECT_EQ(replica->server().requests_served(), 2u)
        << replica->name();
  }
}

TEST(SliceTest, ReplicasInContainerMode) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kContainer;
  cfg.eudm_replicas = 2;
  cfg.subscriber_count = 2;
  Slice s(cfg);
  s.create();
  EXPECT_EQ(s.eudm_replicas().size(), 2u);
  EXPECT_GT(s.eudm()->key_count(), 0u);  // plain provisioning reached all
  EXPECT_TRUE(s.register_subscriber(0, true).session_up);
  EXPECT_TRUE(s.register_subscriber(1, true).session_up);
}

TEST(SliceTest, ThreeModulesShareTheEpcPool) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kSgx;
  Slice s(cfg);
  s.create();
  // 3 x 512 MB committed out of the 16 GB combined EPC.
  EXPECT_EQ(s.machine().epc().used_bytes(), 3 * (512ULL << 20));
  EXPECT_EQ(s.machine().enclave_count(), 3u);
}

}  // namespace
}  // namespace shield5g::slice
