// Key-issue catalogue tests (Table V).
#include <gtest/gtest.h>

#include <set>

#include "ki/key_issues.h"

namespace shield5g::ki {
namespace {

TEST(KeyIssues, CatalogueCoversTableV) {
  const auto& issues = catalogue();
  EXPECT_EQ(issues.size(), 13u);
  std::set<int> numbers;
  for (const auto& issue : issues) numbers.insert(issue.number);
  EXPECT_EQ(numbers,
            (std::set<int>{2, 5, 6, 7, 11, 12, 13, 15, 20, 21, 25, 26, 27}));
}

TEST(KeyIssues, ThreeGppMarksExactlyFour) {
  // TR 33.848 lists HMEE as a solution for KIs 6, 7, 15 and 25.
  std::set<int> marked;
  for (const auto& issue : catalogue()) {
    if (issue.threegpp_marks_hmee) marked.insert(issue.number);
  }
  EXPECT_EQ(marked, (std::set<int>{6, 7, 15, 25}));
}

TEST(KeyIssues, VerdictsMatchPaperTable) {
  // Paper Table V: full (+) for 2, 13, 27; partial for 5, 11, 12, 20,
  // 21, 26; the four 3GPP-marked ones resolve fully via HMEE.
  for (const auto& row : generate_table()) {
    SCOPED_TRACE(row.ki);
    switch (row.ki) {
      case 2: case 13: case 27:
        EXPECT_EQ(row.verdict, Verdict::kFull);
        EXPECT_FALSE(row.threegpp_hmee);
        break;
      case 6: case 7: case 15: case 25:
        EXPECT_EQ(row.verdict, Verdict::kFull);
        EXPECT_TRUE(row.threegpp_hmee);
        break;
      default:
        EXPECT_EQ(row.verdict, Verdict::kPartial);
        EXPECT_FALSE(row.threegpp_hmee);
    }
  }
}

TEST(KeyIssues, SummaryMatchesPaperHeadline) {
  const auto summary = summarize(generate_table());
  EXPECT_EQ(summary.threegpp_marked, 4);
  // "we identified nine additional KIs that can be either fully or
  // partially mitigated with HMEE".
  EXPECT_EQ(summary.additional_beyond_3gpp, 9);
  EXPECT_EQ(summary.full + summary.partial, 13);
  EXPECT_EQ(summary.partial, 6);
}

TEST(KeyIssues, EveryIssueCitesProperties) {
  for (const auto& issue : catalogue()) {
    EXPECT_FALSE(issue.relevant.empty()) << "KI " << issue.number;
    EXPECT_FALSE(issue.description.empty());
  }
}

TEST(KeyIssues, EvaluateLogic) {
  KeyIssue fake{99, "x", false, {HmeeProperty::kSecretSealing}, false};
  EXPECT_EQ(evaluate(fake), Verdict::kFull);
  fake.residual_requirements = true;
  EXPECT_EQ(evaluate(fake), Verdict::kPartial);
  fake.relevant.clear();
  EXPECT_EQ(evaluate(fake), Verdict::kNone);
}

TEST(KeyIssues, NamesRender) {
  EXPECT_STREQ(verdict_symbol(Verdict::kFull), "full");
  EXPECT_STREQ(verdict_symbol(Verdict::kPartial), "partial");
  EXPECT_STREQ(property_name(HmeeProperty::kRemoteAttestation),
               "remote-attestation");
}

}  // namespace
}  // namespace shield5g::ki
