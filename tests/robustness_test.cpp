// Robustness sweeps: seeded-random malformed input against every codec
// and parser boundary (NAS, HTTP, TLS records, JSON, SUCI, sealed blobs,
// quotes), plus property sweeps that must hold for arbitrary inputs.
// None of these may crash, hang or throw past the documented surface.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/suci.h"
#include "json/json.h"
#include "net/http.h"
#include "net/tls.h"
#include "nf/nas.h"
#include "sgx/attestation.h"
#include "sgx/sealing.h"

namespace shield5g {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};

  Bytes random_garbage() { return rng_.bytes(1 + rng_.uniform(300)); }
};

TEST_P(FuzzSweep, NasDecodeNeverCrashes) {
  for (int i = 0; i < 50; ++i) {
    Bytes data = random_garbage();
    (void)nf::NasMessage::decode(data);
    (void)nf::SecuredNas::decode(data);
    // Valid EPD prefix with garbage body.
    data[0] = 0x7e;
    (void)nf::NasMessage::decode(data);
    data[0] = 0x7f;
    const auto sec = nf::SecuredNas::decode(data);
    if (sec) {
      EXPECT_FALSE(sec->verify(Bytes(16, 1)).has_value());
      EXPECT_FALSE(sec->open(Bytes(16, 1), Bytes(16, 2)).has_value());
    }
  }
}

TEST_P(FuzzSweep, HttpParseNeverCrashes) {
  for (int i = 0; i < 50; ++i) {
    const Bytes data = random_garbage();
    (void)net::HttpRequest::parse(data);
    (void)net::HttpResponse::parse(data);
    // Header-shaped garbage.
    const Bytes shaped = to_bytes("POST /" + to_string(ByteView(data)) +
                                  " HTTP/1.1\r\nx: y\r\n\r\n");
    (void)net::HttpRequest::parse(shaped);
  }
}

TEST_P(FuzzSweep, TlsUnprotectRejectsGarbage) {
  net::TlsIdentity id = net::TlsIdentity::generate(rng_);
  Bytes hello;
  net::TlsSession client =
      net::TlsSession::client_connect(id.key.public_key, rng_, hello);
  Bytes server_hello;
  auto server = net::TlsSession::server_accept(id.key, hello, server_hello);
  ASSERT_TRUE(server.has_value());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(server->unprotect(random_garbage()).has_value());
  }
  // A genuine record still works afterwards (no state corruption).
  const Bytes record = client.protect(to_bytes("still alive"));
  EXPECT_TRUE(server->unprotect(record).has_value());
}

TEST_P(FuzzSweep, JsonParserRejectsOrParses) {
  for (int i = 0; i < 50; ++i) {
    const Bytes data = random_garbage();
    try {
      const json::Value v = json::parse(to_string(ByteView(data)));
      // If it parsed, dumping must not throw.
      (void)v.dump();
    } catch (const std::runtime_error&) {
      // rejected: fine
    }
  }
}

TEST_P(FuzzSweep, SuciFromStringNeverCrashes) {
  for (int i = 0; i < 50; ++i) {
    (void)crypto::Suci::from_string(to_string(ByteView(random_garbage())));
    // Well-formed prefix, garbage scheme output.
    (void)crypto::Suci::from_string("suci-0-001-01-0000-1-1-" +
                                    to_string(ByteView(random_garbage())));
  }
}

TEST_P(FuzzSweep, SealedBlobAndQuoteDeserializers) {
  for (int i = 0; i < 50; ++i) {
    const Bytes data = random_garbage();
    (void)sgx::SealedBlob::deserialize(data);
    (void)sgx::Quote::deserialize(data);
  }
  // Length-prefix bombs: huge declared lengths must be rejected, not
  // allocated.
  Bytes bomb = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(sgx::SealedBlob::deserialize(bomb).has_value());
  EXPECT_FALSE(sgx::Quote::deserialize(bomb).has_value());
}

TEST_P(FuzzSweep, NasRoundTripProperty) {
  // Arbitrary IE contents survive encode/decode byte-exactly.
  for (int i = 0; i < 20; ++i) {
    nf::NasMessage msg;
    msg.type = nf::NasType::kRegistrationRequest;
    const int ie_count = 1 + static_cast<int>(rng_.uniform(5));
    for (int k = 0; k < ie_count; ++k) {
      msg.set(static_cast<nf::NasIe>(1 + rng_.uniform(90)),
              rng_.bytes(rng_.uniform(64)));
    }
    const auto decoded = nf::NasMessage::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->ies, msg.ies);
  }
}

TEST_P(FuzzSweep, SecuredNasBitFlipAlwaysDetected) {
  const Bytes kint = rng_.bytes(16);
  const Bytes kenc = rng_.bytes(16);
  nf::NasMessage msg;
  msg.type = nf::NasType::kPduSessionEstablishmentRequest;
  msg.set(nf::NasIe::kDnn, rng_.bytes(24));
  const auto sec = nf::SecuredNas::protect_ciphered(
      msg, kint, kenc, static_cast<std::uint32_t>(rng_.uniform(1000)),
      rng_.uniform(2) == 0);
  const Bytes wire = sec.encode();
  for (int i = 0; i < 30; ++i) {
    Bytes flipped = wire;
    // Flip one random bit anywhere past the EPD byte.
    const std::size_t pos = 1 + rng_.uniform(flipped.size() - 1);
    flipped[pos] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
    const auto decoded = nf::SecuredNas::decode(flipped);
    if (!decoded) continue;
    EXPECT_FALSE(decoded->open(kint, kenc).has_value())
        << "bit flip at " << pos << " went undetected";
  }
}

TEST_P(FuzzSweep, TlsRecordBitFlipAlwaysDetected) {
  net::TlsIdentity id = net::TlsIdentity::generate(rng_);
  Bytes hello;
  net::TlsSession client =
      net::TlsSession::client_connect(id.key.public_key, rng_, hello);
  Bytes server_hello;
  auto server = net::TlsSession::server_accept(id.key, hello, server_hello);
  ASSERT_TRUE(server.has_value());
  const Bytes record = client.protect(rng_.bytes(80));
  for (int i = 0; i < 30; ++i) {
    Bytes flipped = record;
    const std::size_t pos = rng_.uniform(flipped.size());
    flipped[pos] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
    if (flipped == record) continue;
    EXPECT_FALSE(server->unprotect(flipped).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace shield5g
