// Crypto substrate tests: published vectors (FIPS-197, FIPS-180,
// RFC 4231, 3GPP TS 35.207/35.208, RFC 7748) plus property tests on the
// ECIES/SUCI schemes that lack official vectors.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/cost.h"
#include "crypto/ecies.h"
#include "crypto/hmac_sha256.h"
#include "crypto/kdf.h"
#include "crypto/key_hierarchy.h"
#include "crypto/milenage.h"
#include "crypto/op_count.h"
#include "crypto/sha256.h"
#include "crypto/suci.h"
#include "crypto/x25519.h"

namespace shield5g::crypto {
namespace {

// ---------------------------------------------------------------------
// AES-128
// ---------------------------------------------------------------------

TEST(Aes128, Fips197Vector) {
  const Aes128 aes(h2b("000102030405060708090a0b0c0d0e0f"));
  const auto ct = aes.encrypt_block(h2b("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(hex_encode(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Fips197Decrypt) {
  const Aes128 aes(h2b("000102030405060708090a0b0c0d0e0f"));
  const auto pt = aes.decrypt_block(h2b("69c4e0d86a7b0430d8cdb78070b4c55a"));
  EXPECT_EQ(hex_encode(pt), "00112233445566778899aabbccddeeff");
}

TEST(Aes128, RejectsBadKeySize) {
  EXPECT_THROW(Aes128(h2b("0011")), std::invalid_argument);
}

TEST(Aes128, RejectsBadBlockSize) {
  const Aes128 aes(h2b("000102030405060708090a0b0c0d0e0f"));
  EXPECT_THROW(aes.encrypt_block(h2b("0011")), std::invalid_argument);
  EXPECT_THROW(aes.decrypt_block(h2b("0011")), std::invalid_argument);
}

class AesRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AesRoundTrip, DecryptInvertsEncrypt) {
  Rng rng(GetParam());
  const Bytes key = rng.bytes(16);
  const Bytes pt = rng.bytes(16);
  const Aes128 aes(key);
  const auto ct = aes.encrypt_block(pt);
  const auto back = aes.decrypt_block(ct);
  EXPECT_EQ(Bytes(back.begin(), back.end()), pt);
  EXPECT_NE(Bytes(ct.begin(), ct.end()), pt);
}

INSTANTIATE_TEST_SUITE_P(RandomKeys, AesRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(Aes128Ctr, EncryptDecryptRoundTrip) {
  Rng rng(7);
  const Bytes key = rng.bytes(16);
  const Bytes icb = rng.bytes(16);
  const Bytes data = rng.bytes(133);  // non-multiple of block size
  const Bytes ct = aes128_ctr(key, icb, data);
  EXPECT_EQ(aes128_ctr(key, icb, ct), data);
  EXPECT_NE(ct, data);
}

TEST(Aes128Ctr, CounterIncrementsAcrossBlocks) {
  const Bytes key = h2b("000102030405060708090a0b0c0d0e0f");
  Bytes icb(16, 0);
  icb[15] = 0xff;  // forces a carry into byte 14 after one block
  const Bytes zeros(32, 0);
  const Bytes ks = aes128_ctr(key, icb, zeros);
  // Keystream blocks must equal E(icb) and E(icb+1).
  const Aes128 aes(key);
  const auto b0 = aes.encrypt_block(icb);
  Bytes icb1 = icb;
  icb1[15] = 0x00;
  icb1[14] = 0x01;
  const auto b1 = aes.encrypt_block(icb1);
  EXPECT_EQ(Bytes(ks.begin(), ks.begin() + 16), Bytes(b0.begin(), b0.end()));
  EXPECT_EQ(Bytes(ks.begin() + 16, ks.end()), Bytes(b1.begin(), b1.end()));
}

TEST(Aes128Ctr, EmptyInput) {
  const Bytes key(16, 1), icb(16, 2);
  EXPECT_TRUE(aes128_ctr(key, icb, Bytes{}).empty());
}

// ---------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(hex_encode(Sha256::digest(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(Sha256::digest(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180TwoBlock) {
  EXPECT_EQ(
      hex_encode(Sha256::digest(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 hash;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hash.update(chunk);
  EXPECT_EQ(hex_encode(hash.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Rng rng(42);
  const Bytes data = rng.bytes(1000);
  for (std::size_t split : {1u, 55u, 63u, 64u, 65u, 500u, 999u}) {
    Sha256 hash;
    hash.update(ByteView(data).subspan(0, split));
    hash.update(ByteView(data).subspan(split));
    const auto streamed = hash.finalize();
    EXPECT_EQ(Bytes(streamed.begin(), streamed.end()),
              Sha256::digest(data))
        << "split at " << split;
  }
}

TEST(Sha256, PaddingBoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries must all work.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes data(len, 0x61);
    const Bytes d = Sha256::digest(data);
    EXPECT_EQ(d.size(), 32u) << len;
    // Consistency with a streamed computation byte by byte.
    Sha256 hash;
    for (std::uint8_t byte : data) hash.update(Bytes{byte});
    const auto streamed = hash.finalize();
    EXPECT_EQ(Bytes(streamed.begin(), streamed.end()), d) << len;
  }
}

TEST(Sha256, UpdateAfterFinalizeThrows) {
  Sha256 hash;
  hash.update(to_bytes("abc"));
  hash.finalize();
  EXPECT_THROW(hash.update(to_bytes("x")), std::logic_error);
  EXPECT_THROW(hash.finalize(), std::logic_error);
  hash.reset();
  hash.update(to_bytes("abc"));
  EXPECT_EQ(hex_encode(hash.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ---------------------------------------------------------------------
// HMAC-SHA-256 (RFC 4231)
// ---------------------------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(
      hex_encode(hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, TruncationPrefix) {
  const Bytes key(20, 0x0b);
  const Bytes full = hmac_sha256(key, to_bytes("Hi There"));
  const Bytes trunc = hmac_sha256_trunc(key, to_bytes("Hi There"), 8);
  EXPECT_EQ(trunc, Bytes(full.begin(), full.begin() + 8));
  EXPECT_THROW(hmac_sha256_trunc(key, to_bytes("x"), 33),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// MILENAGE (3GPP TS 35.207/35.208 Test Set 1)
// ---------------------------------------------------------------------

struct MilenageVectors {
  Bytes k = h2b("465b5ce8b199b49faa5f0a2ee238a6bc");
  Bytes rand = h2b("23553cbe9637a89d218ae64dae47bf35");
  Bytes sqn = h2b("ff9bb4d0b607");
  Bytes amf = h2b("b9b9");
  Bytes op = h2b("cdc202d5123e20f62b6d676ac72cb318");
  Bytes opc = h2b("cd63cb71954a9f4e48a5994e37a02baf");
};

TEST(Milenage, OpcDerivation) {
  const MilenageVectors v;
  // lint-audited(secret-sink: published TS 35.208 OPc vector compared in hex for readable failures)
  EXPECT_EQ(hex_encode(Milenage::derive_opc(v.k, v.op).reveal_for_test()),
            // lint-audited(secret-sink: published TS 35.208 OPc vector compared in hex for readable failures)
            hex_encode(v.opc));
}

TEST(Milenage, TestSet1AllFunctions) {
  const MilenageVectors v;
  const Milenage milenage(v.k, v.opc);
  const auto out = milenage.compute(v.rand, v.sqn, v.amf);
  EXPECT_EQ(hex_encode(out.mac_a), "4a9ffac354dfafb3");   // f1
  EXPECT_EQ(hex_encode(out.mac_s), "01cfaf9ec4e871e9");   // f1*
  EXPECT_EQ(hex_encode(out.res), "a54211d5e3ba50bf");     // f2
  // lint-audited(secret-sink: published TS 35.208 test vector, revealed via reveal_for_test)
  EXPECT_EQ(hex_encode(out.ck.reveal_for_test()),
            "b40ba9a3c58b2a05bbf0d987b21bf8cb");           // f3
  // lint-audited(secret-sink: published TS 35.208 test vector, revealed via reveal_for_test)
  EXPECT_EQ(hex_encode(out.ik.reveal_for_test()),
            "f769bcd751044604127672711c6d3441");           // f4
  EXPECT_EQ(hex_encode(out.ak), "aa689c648370");           // f5
  EXPECT_EQ(hex_encode(out.ak_s), "451e8beca43b");         // f5*
}

TEST(Milenage, AutnRoundTrip) {
  const MilenageVectors v;
  const Milenage milenage(v.k, v.opc);
  const auto out = milenage.compute(v.rand, v.sqn, v.amf);
  const Bytes autn = build_autn(v.sqn, out.ak, v.amf, out.mac_a);
  ASSERT_EQ(autn.size(), 16u);
  const AutnFields fields = parse_autn(autn);
  EXPECT_EQ(xor_bytes(fields.sqn_xor_ak, out.ak), v.sqn);
  EXPECT_EQ(fields.amf, v.amf);
  EXPECT_EQ(fields.mac_a, out.mac_a);
}

TEST(Milenage, DifferentRandDifferentOutput) {
  const MilenageVectors v;
  const Milenage milenage(v.k, v.opc);
  const auto a = milenage.compute_f2345(v.rand);
  Bytes rand2 = v.rand;
  rand2[0] ^= 0x01;
  const auto b = milenage.compute_f2345(rand2);
  EXPECT_NE(a.res, b.res);
  EXPECT_NE(a.ck, b.ck);
  EXPECT_NE(a.ak, b.ak);
}

class MilenageProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilenageProperty, OutputSizesAndDeterminism) {
  Rng rng(GetParam());
  const Bytes k = rng.bytes(16);
  const Bytes opc = rng.bytes(16);
  const Bytes rand = rng.bytes(16);
  const Bytes sqn = rng.bytes(6);
  const Bytes amf = rng.bytes(2);
  const Milenage milenage(k, opc);
  const auto a = milenage.compute(rand, sqn, amf);
  const auto b = milenage.compute(rand, sqn, amf);
  EXPECT_EQ(a.mac_a, b.mac_a);
  EXPECT_EQ(a.res, b.res);
  EXPECT_EQ(a.mac_a.size(), 8u);
  EXPECT_EQ(a.mac_s.size(), 8u);
  EXPECT_EQ(a.res.size(), 8u);
  EXPECT_EQ(a.ck.size(), 16u);
  EXPECT_EQ(a.ik.size(), 16u);
  EXPECT_EQ(a.ak.size(), 6u);
  EXPECT_EQ(a.ak_s.size(), 6u);
  EXPECT_NE(a.ak, a.ak_s);  // f5 and f5* use different rotations
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, MilenageProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

// ---------------------------------------------------------------------
// TS 33.220 KDF and the 5G key hierarchy
// ---------------------------------------------------------------------

TEST(Kdf, SStringLayout) {
  const Bytes s = kdf_s_string(0x6c, {{to_bytes("ab")}, {Bytes{0x01}}});
  // FC || "ab" || 0x0002 || 0x01 || 0x0001
  EXPECT_EQ(hex_encode(s), "6c61620002010001");
}

TEST(Kdf, MatchesDirectHmacConstruction) {
  const Bytes key(32, 0x42);
  const Bytes derived = kdf(key, 0x6c, {{to_bytes("test")}});
  const Bytes expected =
      hmac_sha256(key, concat({Bytes{0x6c}, to_bytes("test"),
                               Bytes{0x00, 0x04}}));
  EXPECT_EQ(derived, expected);
}

TEST(Kdf, Trunc128TakesLow128Bits) {
  const Bytes key(32, 0x42);
  const Bytes full = kdf(key, 0x6b, {{to_bytes("x")}});
  const Bytes trunc = kdf_trunc128(key, 0x6b, {{to_bytes("x")}});
  EXPECT_EQ(trunc, Bytes(full.begin() + 16, full.end()));
}

TEST(KeyHierarchy, ServingNetworkNameFormat) {
  EXPECT_EQ(serving_network_name("001", "01"),
            "5G:mnc001.mcc001.3gppnetwork.org");
  EXPECT_EQ(serving_network_name("310", "410"),
            "5G:mnc410.mcc310.3gppnetwork.org");
}

TEST(KeyHierarchy, SizesAndDistinctness) {
  Rng rng(5);
  const Bytes ck = rng.bytes(16), ik = rng.bytes(16);
  const Bytes rand = rng.bytes(16), res = rng.bytes(8);
  const Bytes sqn_xor_ak = rng.bytes(6);
  const std::string snn = serving_network_name("001", "01");

  const SecretBytes kausf = derive_kausf(ck, ik, snn, sqn_xor_ak);
  const Bytes res_star = derive_res_star(ck, ik, snn, rand, res);
  const Bytes hxres = derive_hxres_star(rand, res_star);
  const SecretBytes kseaf = derive_kseaf(kausf, snn);
  const SecretBytes kamf = derive_kamf(kseaf, "001010000000001", Bytes{0, 0});
  const SecretBytes knas_int = derive_algo_key(kamf, AlgoType::kNasInt, 2);
  const SecretBytes knas_enc = derive_algo_key(kamf, AlgoType::kNasEnc, 2);
  const SecretBytes kgnb = derive_kgnb(kamf, 0);

  EXPECT_EQ(kausf.size(), 32u);
  EXPECT_EQ(res_star.size(), 16u);
  EXPECT_EQ(hxres.size(), 16u);
  EXPECT_EQ(kseaf.size(), 32u);
  EXPECT_EQ(kamf.size(), 32u);
  EXPECT_EQ(knas_int.size(), 16u);
  EXPECT_EQ(knas_enc.size(), 16u);
  EXPECT_EQ(kgnb.size(), 32u);
  EXPECT_NE(knas_int, knas_enc);
  EXPECT_NE(kausf, kseaf);
}

TEST(KeyHierarchy, HxresStarTruncation) {
  Rng rng(6);
  const Bytes rand = rng.bytes(16), xres = rng.bytes(16);
  const Bytes full = derive_hxres_star(rand, xres, 16);
  const Bytes paper8 = derive_hxres_star(rand, xres, 8);
  EXPECT_EQ(paper8, Bytes(full.begin(), full.begin() + 8));
  const Bytes digest = Sha256::digest(concat({rand, xres}));
  EXPECT_EQ(full, Bytes(digest.begin(), digest.begin() + 16));
}

TEST(KeyHierarchy, SnnBindsTheHierarchy) {
  Rng rng(7);
  const Bytes kausf = rng.bytes(32);
  EXPECT_NE(derive_kseaf(kausf, serving_network_name("001", "01")),
            derive_kseaf(kausf, serving_network_name("310", "410")));
}

// ---------------------------------------------------------------------
// X25519 (RFC 7748)
// ---------------------------------------------------------------------

TEST(X25519, Rfc7748Vector1) {
  const auto out = x25519(
      h2b("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"),
      h2b("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"));
  EXPECT_EQ(hex_encode(out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748DiffieHellman) {
  const Bytes a =
      h2b("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes b =
      h2b("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const auto a_pub = x25519_public(a);
  const auto b_pub = x25519_public(b);
  EXPECT_EQ(hex_encode(a_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex_encode(b_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  const auto shared_a = x25519(a, b_pub);
  const auto shared_b = x25519(b, a_pub);
  EXPECT_EQ(hex_encode(shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
  EXPECT_EQ(Bytes(shared_a.begin(), shared_a.end()),
            Bytes(shared_b.begin(), shared_b.end()));
}

class X25519Agreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(X25519Agreement, BothSidesAgree) {
  Rng rng(GetParam());
  const auto alice = x25519_keypair(rng.bytes(32));
  const auto bob = x25519_keypair(rng.bytes(32));
  const auto s1 = x25519(alice.private_key, bob.public_key);
  const auto s2 = x25519(bob.private_key, alice.public_key);
  EXPECT_EQ(Bytes(s1.begin(), s1.end()), Bytes(s2.begin(), s2.end()));
  // Shared secret must not be all zero (low-order point would be).
  bool nonzero = false;
  for (auto byte : s1) nonzero |= byte != 0;
  EXPECT_TRUE(nonzero);
}

INSTANTIATE_TEST_SUITE_P(RandomKeys, X25519Agreement,
                         ::testing::Range<std::uint64_t>(200, 212));

TEST(X25519, FusedKeypairSharedMatchesSeparateCalls) {
  Rng rng(77);
  const auto peer = x25519_keypair(rng.bytes(32));
  // Repeat one peer point past the comb build threshold so the fused
  // path is exercised on both backends (ladder first, comb once hot).
  for (int i = 0; i < 8; ++i) {
    const Bytes random = rng.bytes(32);
    const auto separate_kp = x25519_keypair(random);
    const auto separate_shared =
        x25519(separate_kp.private_key, peer.public_key);
    X25519Key fused_shared;
    const auto fused_kp =
        x25519_keypair_shared(random, peer.public_key, fused_shared);
    EXPECT_EQ(hex_encode(fused_kp.public_key),
              hex_encode(separate_kp.public_key));
    EXPECT_EQ(hex_encode(fused_shared), hex_encode(separate_shared));
    const auto fused_priv = fused_kp.private_key.unsafe_bytes();
    EXPECT_EQ(Bytes(fused_priv.begin(), fused_priv.end()), random);
  }
}

TEST(X25519, FusedKeypairSharedDegeneratePeer) {
  // Low-order peer u = 0: the shared secret canonicalizes to zero
  // (fe_invert(0) = 0 semantics) while the public key stays correct.
  Rng rng(78);
  const Bytes zero_u(32, 0x00);
  const Bytes random = rng.bytes(32);
  const auto separate_kp = x25519_keypair(random);
  const auto separate_shared = x25519(separate_kp.private_key, zero_u);
  X25519Key fused_shared;
  const auto fused_kp = x25519_keypair_shared(random, zero_u, fused_shared);
  EXPECT_EQ(hex_encode(fused_kp.public_key),
            hex_encode(separate_kp.public_key));
  EXPECT_EQ(hex_encode(fused_shared), hex_encode(separate_shared));
  for (auto byte : fused_shared) EXPECT_EQ(byte, 0);
}

// ---------------------------------------------------------------------
// ECIES Profile A + SUCI
// ---------------------------------------------------------------------

TEST(Ecies, RoundTrip) {
  Rng rng(11);
  const auto hn = x25519_keypair(rng.bytes(32));
  const Bytes plaintext = to_bytes("0123456789");
  const auto ct = ecies_encrypt(hn.public_key, plaintext, rng.bytes(32));
  const auto back = ecies_decrypt(hn.private_key, ct);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plaintext);
}

TEST(Ecies, TamperedCiphertextRejected) {
  Rng rng(12);
  const auto hn = x25519_keypair(rng.bytes(32));
  auto ct = ecies_encrypt(hn.public_key, to_bytes("secret"), rng.bytes(32));
  ct.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(ecies_decrypt(hn.private_key, ct).has_value());
}

TEST(Ecies, TamperedTagRejected) {
  Rng rng(13);
  const auto hn = x25519_keypair(rng.bytes(32));
  auto ct = ecies_encrypt(hn.public_key, to_bytes("secret"), rng.bytes(32));
  ct.mac_tag[3] ^= 0x80;
  EXPECT_FALSE(ecies_decrypt(hn.private_key, ct).has_value());
}

TEST(Ecies, WrongPrivateKeyRejected) {
  Rng rng(14);
  const auto hn = x25519_keypair(rng.bytes(32));
  const auto other = x25519_keypair(rng.bytes(32));
  const auto ct =
      ecies_encrypt(hn.public_key, to_bytes("secret"), rng.bytes(32));
  EXPECT_FALSE(ecies_decrypt(other.private_key, ct).has_value());
}

TEST(Ecies, SerializeDeserialize) {
  Rng rng(15);
  const auto hn = x25519_keypair(rng.bytes(32));
  const Bytes pt = rng.bytes(9);
  const auto ct = ecies_encrypt(hn.public_key, pt, rng.bytes(32));
  const Bytes wire = ct.serialize();
  const auto parsed = EciesCiphertext::deserialize(wire, pt.size());
  EXPECT_EQ(parsed.ephemeral_public, ct.ephemeral_public);
  EXPECT_EQ(parsed.ciphertext, ct.ciphertext);
  EXPECT_EQ(parsed.mac_tag, ct.mac_tag);
}

TEST(Ecies, X963KdfDeterministicAndLengthExact) {
  const Bytes secret(32, 0x11), info(32, 0x22);
  const Bytes k1 = x963_kdf(secret, info, 64);
  const Bytes k2 = x963_kdf(secret, info, 64);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 64u);
  // Prefix property: shorter output is a prefix of longer output.
  const Bytes k3 = x963_kdf(secret, info, 16);
  EXPECT_EQ(k3, Bytes(k1.begin(), k1.begin() + 16));
}

TEST(Suci, PackUnpackDigits) {
  // TBCD layout: the first digit of each pair sits in the low nibble.
  EXPECT_EQ(hex_encode(pack_digits("001010000000001")), "00010100000000f1");
  EXPECT_EQ(unpack_digits(pack_digits("0123456789"), 10), "0123456789");
  EXPECT_EQ(unpack_digits(pack_digits("123"), 3), "123");
  EXPECT_THROW(pack_digits("12a"), std::invalid_argument);
}

TEST(Suci, ProfileARoundTrip) {
  Rng rng(16);
  const auto hn = x25519_keypair(rng.bytes(32));
  const Suci suci = conceal_supi("001", "01", "0000000001",
                                 SuciScheme::kProfileA, hn.public_key,
                                 rng.bytes(32));
  const auto supi = deconceal_suci(suci, hn.private_key);
  ASSERT_TRUE(supi.has_value());
  EXPECT_EQ(*supi, "001010000000001");
}

TEST(Suci, NullSchemeRoundTrip) {
  const Suci suci = conceal_supi("001", "01", "0000000001",
                                 SuciScheme::kNull, {}, ByteView{});
  const auto supi = deconceal_suci(suci, {});
  ASSERT_TRUE(supi.has_value());
  EXPECT_EQ(*supi, "001010000000001");
}

TEST(Suci, StringFormatRoundTrip) {
  Rng rng(17);
  const auto hn = x25519_keypair(rng.bytes(32));
  const Suci suci = conceal_supi("001", "01", "0000000042",
                                 SuciScheme::kProfileA, hn.public_key,
                                 rng.bytes(32));
  const std::string text = suci.to_string();
  EXPECT_EQ(text.rfind("suci-0-001-01-0000-1-1-", 0), 0u) << text;
  const auto parsed = Suci::from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mcc, "001");
  EXPECT_EQ(parsed->mnc, "01");
  EXPECT_EQ(parsed->scheme_output, suci.scheme_output);
  const auto supi = deconceal_suci(*parsed, hn.private_key);
  ASSERT_TRUE(supi.has_value());
  EXPECT_EQ(*supi, "001010000000042");
}

TEST(Suci, ConcealmentIsProbabilistic) {
  Rng rng(18);
  const auto hn = x25519_keypair(rng.bytes(32));
  const Suci a = conceal_supi("001", "01", "0000000001",
                              SuciScheme::kProfileA, hn.public_key,
                              rng.bytes(32));
  const Suci b = conceal_supi("001", "01", "0000000001",
                              SuciScheme::kProfileA, hn.public_key,
                              rng.bytes(32));
  // Fresh ephemeral keys -> different scheme output for the same SUPI
  // (the linkability protection SUCI exists for).
  EXPECT_NE(a.scheme_output, b.scheme_output);
}

TEST(Suci, MalformedStringRejected) {
  EXPECT_FALSE(Suci::from_string("imsi-001010000000001").has_value());
  EXPECT_FALSE(Suci::from_string("suci-0-001-01").has_value());
  EXPECT_FALSE(
      Suci::from_string("suci-0-001-01-0000-9-1-aabb").has_value());
  EXPECT_FALSE(
      Suci::from_string("suci-0-001-01-0000-1-1-zzzz").has_value());
}

TEST(Suci, TamperedSchemeOutputRejected) {
  Rng rng(19);
  const auto hn = x25519_keypair(rng.bytes(32));
  Suci suci = conceal_supi("001", "01", "0000000001",
                           SuciScheme::kProfileA, hn.public_key,
                           rng.bytes(32));
  suci.scheme_output[40] ^= 0x01;
  EXPECT_FALSE(deconceal_suci(suci, hn.private_key).has_value());
}

// ---------------------------------------------------------------------
// Op counters
// ---------------------------------------------------------------------

TEST(OpCounts, AesAndShaAreCounted) {
  const OpCounts before = op_counts();
  const Aes128 aes(Bytes(16, 1));
  aes.encrypt_block(Bytes(16, 2));
  Sha256::digest(to_bytes("abc"));
  const OpCounts delta = op_counts() - before;
  EXPECT_EQ(delta.aes_blocks, 1u);
  EXPECT_EQ(delta.sha256_blocks, 1u);
}

TEST(OpCounts, MeterReportsCost) {
  PrimitiveCosts costs;
  OpMeter meter;
  const Aes128 aes(Bytes(16, 1));
  aes.encrypt_block(Bytes(16, 2));
  aes.encrypt_block(Bytes(16, 3));
  EXPECT_EQ(meter.ns(costs), 2 * costs.aes_block_ns);
}

TEST(OpCounts, X25519Counted) {
  const OpCounts before = op_counts();
  Rng rng(20);
  x25519_public(rng.bytes(32));
  EXPECT_EQ((op_counts() - before).x25519_ops, 1u);
}

}  // namespace
}  // namespace shield5g::crypto
