// LibOS (Gramine/GSC analogue) tests: manifest validation, image
// build & signing, boot behaviour (load time, transition counts,
// preheat), syscall interposition and the exitless mode.
#include <gtest/gtest.h>

#include "libos/gsc.h"
#include "libos/manifest.h"
#include "libos/runtime.h"
#include "libos/trusted_files.h"
#include "sgx/machine.h"

namespace shield5g::libos {
namespace {

Bytes test_signer() { return Bytes(32, 0x5f); }

GscImage build_image(GscBuildOptions opts = {},
                     const std::string& name = "eudm-aka") {
  return gsc_build(name, opts, test_signer());
}

class LibosFixture : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  sgx::Machine machine_{clock_};
};

// ---------------------------------------------------------------------
// Trusted files & manifest
// ---------------------------------------------------------------------

TEST(TrustedFiles, RootfsShapeMatchesGscBehaviour) {
  const auto files = gsc_rootfs_files(0);
  EXPECT_EQ(files.size(), 2'300u);  // "majority of the root directory"
  EXPECT_GT(total_bytes(files), 50ULL << 20);
  // Only a small fraction is touched at boot.
  EXPECT_LT(boot_time_count(files), 20u);
  EXPECT_GT(boot_time_count(files), 0u);
}

TEST(TrustedFiles, RootfsDeterministicPerSeed) {
  const auto a = gsc_rootfs_files(1);
  const auto b = gsc_rootfs_files(1);
  const auto c = gsc_rootfs_files(2);
  EXPECT_EQ(file_set_digest(a), file_set_digest(b));
  EXPECT_NE(file_set_digest(a), file_set_digest(c));
}

TEST(TrustedFiles, AppLayerVariesByModule) {
  const auto udm = paka_app_files("eudm-aka", 2'000'000);
  const auto amf = paka_app_files("eamf-aka", 0);
  EXPECT_GT(total_bytes(udm), total_bytes(amf));
  EXPECT_NE(file_set_digest(udm), file_set_digest(amf));
}

TEST(Manifest, ValidationEnforcesPaperFloors) {
  Manifest m;
  m.entrypoint = "/srv/server";
  m.max_threads = 4;
  m.enclave_size = 512ULL << 20;
  EXPECT_NO_THROW(m.validate());

  m.max_threads = 3;  // paper §V-B2: below 4 -> inconsistent behaviour
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.max_threads = 4;
  m.enclave_size = 256ULL << 20;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.enclave_size = 512ULL << 20;
  m.entrypoint.clear();
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Manifest, SerializationCoversOptions) {
  Manifest a;
  a.entrypoint = "/srv/server";
  Manifest b = a;
  b.preheat_enclave = !a.preheat_enclave;
  EXPECT_NE(a.serialize(), b.serialize());
  Manifest c = a;
  c.max_threads = 10;
  EXPECT_NE(a.serialize(), c.serialize());
}

// ---------------------------------------------------------------------
// GSC build & sign
// ---------------------------------------------------------------------

TEST(Gsc, BuildProducesSignedImage) {
  const GscImage image = build_image();
  EXPECT_EQ(image.name, "gsc-eudm-aka");
  EXPECT_TRUE(image.verify(test_signer()));
  EXPECT_GT(image.manifest.trusted_files.size(), 2'300u);
  EXPECT_TRUE(image.manifest.preheat_enclave);
}

TEST(Gsc, SignatureRejectsWrongKeyOrTamper) {
  GscImage image = build_image();
  EXPECT_FALSE(image.verify(Bytes(32, 0x00)));
  image.manifest.max_threads = 50;  // tampered manifest
  EXPECT_FALSE(image.verify(test_signer()));
}

TEST(Gsc, OptionsReachManifest) {
  GscBuildOptions opts;
  opts.enclave_size = 8ULL << 30;
  opts.max_threads = 50;
  opts.preheat_enclave = false;
  opts.exitless = true;
  const GscImage image = build_image(opts);
  EXPECT_EQ(image.manifest.enclave_size, 8ULL << 30);
  EXPECT_EQ(image.manifest.max_threads, 50u);
  EXPECT_FALSE(image.manifest.preheat_enclave);
  EXPECT_TRUE(image.manifest.exitless);
}

// ---------------------------------------------------------------------
// Runtime boot
// ---------------------------------------------------------------------

TEST_F(LibosFixture, BootTakesAboutAMinuteWithPreheat) {
  GramineRuntime runtime(machine_, build_image());
  const sim::Nanos load = runtime.boot();
  // Fig. 7: 0.955-0.99 minutes. Accept the band 50-65 s.
  EXPECT_GT(sim::to_s(load), 50.0);
  EXPECT_LT(sim::to_s(load), 65.0);
  EXPECT_TRUE(runtime.booted());
  EXPECT_THROW(runtime.boot(), std::logic_error);
}

TEST_F(LibosFixture, PreheatDominatesLoadTime) {
  GscBuildOptions no_preheat;
  no_preheat.preheat_enclave = false;
  GramineRuntime cold(machine_, build_image(no_preheat));
  const sim::Nanos cold_load = cold.boot();

  sim::VirtualClock clock2;
  sgx::Machine machine2(clock2);
  GramineRuntime hot(machine2, build_image());
  const sim::Nanos hot_load = hot.boot();
  EXPECT_GT(hot_load, cold_load + 30 * sim::kSecond);
}

TEST_F(LibosFixture, BootPerformsHundredsOfOcalls) {
  GramineRuntime runtime(machine_, build_image());
  runtime.boot();
  const auto& counters = runtime.counters();
  // "The initialization of Gramine and glibc invokes several hundred
  // OCALLs" (paper §V-B1).
  EXPECT_GT(counters.ocalls, 400u);
  EXPECT_LT(counters.ocalls, 1'500u);
  // One resident ECALL per process + 3 helper threads.
  EXPECT_EQ(counters.ecalls, 4u);
  EXPECT_EQ(counters.eenter, counters.eexit + 4);
}

TEST_F(LibosFixture, LargerEnclaveLoadsSlower) {
  GramineRuntime small(machine_, build_image());
  const sim::Nanos t_small = small.boot();

  GscBuildOptions big;
  big.enclave_size = 2ULL << 30;
  sim::VirtualClock clock2;
  sgx::Machine machine2(clock2);
  GramineRuntime large(machine2, build_image(big));
  const sim::Nanos t_large = large.boot();
  EXPECT_GT(t_large, 2 * t_small);
}

TEST_F(LibosFixture, SyscallBecomesOcallRoundTrip) {
  GramineRuntime runtime(machine_, build_image());
  runtime.boot();
  const auto before = runtime.counters();
  const sim::Nanos t0 = clock_.now();
  runtime.syscall(Sys::kEpollWait);
  const auto delta = runtime.counters() - before;
  EXPECT_EQ(delta.ocalls, 1u);
  EXPECT_EQ(delta.eenter, 1u);
  EXPECT_EQ(delta.eexit, 1u);
  // Cost = transitions + host syscall + marshalling.
  const sim::Nanos cost = clock_.now() - t0;
  EXPECT_GT(cost, syscall_host_ns(Sys::kEpollWait));
  EXPECT_GT(cost, 8 * sim::kMicrosecond);
}

TEST_F(LibosFixture, ExitlessAvoidsTransitions) {
  GscBuildOptions opts;
  opts.exitless = true;
  GramineRuntime runtime(machine_, build_image(opts));
  runtime.boot();
  const auto before = runtime.counters();
  const sim::Nanos t0 = clock_.now();
  runtime.syscall(Sys::kEpollWait);
  const auto delta = runtime.counters() - before;
  EXPECT_EQ(delta.ocalls, 0u);
  EXPECT_EQ(delta.eenter, 0u);
  // Still costs host time + synchronisation, but less than an OCALL.
  const sim::Nanos cost = clock_.now() - t0;
  EXPECT_GT(cost, syscall_host_ns(Sys::kEpollWait));
  EXPECT_LT(cost, 10 * sim::kMicrosecond);
}

TEST_F(LibosFixture, ThreadSpawnRespectsTcsLimit) {
  GramineRuntime runtime(machine_, build_image());
  runtime.boot();
  // max_threads=4 and Gramine itself uses 3 helpers + 1 main: no
  // application thread fits (the server is single-threaded, §V-B2).
  EXPECT_THROW(runtime.spawn_thread(), std::runtime_error);

  GscBuildOptions opts;
  opts.max_threads = 10;
  sim::VirtualClock clock2;
  sgx::Machine machine2(clock2);
  GramineRuntime bigger(machine2, build_image(opts));
  bigger.boot();
  for (int i = 0; i < 6; ++i) {
    EXPECT_NO_THROW(bigger.spawn_thread()) << i;
  }
  EXPECT_THROW(bigger.spawn_thread(), std::runtime_error);
}

TEST_F(LibosFixture, ColdPathChargesFaultsAndLazyOcalls) {
  GramineRuntime runtime(machine_, build_image());
  runtime.boot();
  const auto before = runtime.counters();
  const sim::Nanos t0 = clock_.now();
  runtime.touch_cold_path(8'000, 200);
  const auto delta = runtime.counters() - before;
  EXPECT_EQ(delta.ocalls, 200u);
  EXPECT_GE(delta.aex, 8'000u);
  // ~20 ms of demand faults + ~2.5 ms of lazy OCALLs: the R_I spike.
  EXPECT_GT(clock_.now() - t0, 15 * sim::kMillisecond);
  EXPECT_LT(clock_.now() - t0, 40 * sim::kMillisecond);
}

TEST_F(LibosFixture, ShutdownReleasesEpc) {
  const std::uint64_t free0 = machine_.epc().free_bytes();
  GramineRuntime runtime(machine_, build_image());
  runtime.boot();
  EXPECT_LT(machine_.epc().free_bytes(), free0);
  runtime.shutdown();
  EXPECT_EQ(machine_.epc().free_bytes(), free0);
  EXPECT_FALSE(runtime.booted());
}

TEST_F(LibosFixture, BootDifferersAcrossModules) {
  GscBuildOptions udm_opts;
  udm_opts.app_extra_bytes = 2'600'000;
  udm_opts.rootfs_seed = 1;
  GscBuildOptions amf_opts;
  amf_opts.app_extra_bytes = 0;
  amf_opts.rootfs_seed = 2;

  GramineRuntime udm(machine_, gsc_build("eudm-aka", udm_opts, test_signer()));
  const sim::Nanos t_udm = udm.boot();
  sim::VirtualClock clock2;
  sgx::Machine machine2(clock2);
  GramineRuntime amf(machine2, gsc_build("eamf-aka", amf_opts, test_signer()));
  const sim::Nanos t_amf = amf.boot();
  // Bigger application layer -> slightly slower load (Fig. 7 ordering),
  // but both stay within the same band.
  EXPECT_GT(t_udm, t_amf);
  EXPECT_LT(sim::to_s(t_udm - t_amf), 5.0);
}

}  // namespace
}  // namespace shield5g::libos
