// Core-network VNF tests: NAS codec, AKA core math, UDR/UDM/AUSF SBI
// behaviour, SMF/UPF sessions, NRF discovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/key_hierarchy.h"
#include "crypto/milenage.h"
#include "crypto/suci.h"
#include "json/json.h"
#include "nf/aka_core.h"
#include "nf/amf.h"
#include "nf/ausf.h"
#include "nf/nas.h"
#include "nf/ngap.h"
#include "nf/nrf.h"
#include "nf/sbi.h"
#include "nf/smf.h"
#include "nf/types.h"
#include "nf/udm.h"
#include "nf/udr.h"
#include "nf/upf.h"

namespace shield5g::nf {
namespace {

// ---------------------------------------------------------------------
// NAS codec
// ---------------------------------------------------------------------

TEST(Nas, PlainRoundTrip) {
  NasMessage msg;
  msg.type = NasType::kAuthenticationRequest;
  msg.set(NasIe::kRand, Bytes(16, 0xaa));
  msg.set(NasIe::kAutn, Bytes(16, 0xbb));
  msg.set(NasIe::kNgKsi, Bytes{0x01});
  const auto decoded = NasMessage::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, NasType::kAuthenticationRequest);
  EXPECT_EQ(decoded->at(NasIe::kRand), Bytes(16, 0xaa));
  EXPECT_EQ(decoded->at(NasIe::kNgKsi), Bytes{0x01});
  EXPECT_FALSE(decoded->has(NasIe::kAuts));
  EXPECT_THROW(decoded->at(NasIe::kAuts), std::out_of_range);
}

TEST(Nas, MalformedWireRejected) {
  EXPECT_FALSE(NasMessage::decode(Bytes{}).has_value());
  EXPECT_FALSE(NasMessage::decode(Bytes{0x00, 0x41, 0x00}).has_value());
  // Truncated IE.
  Bytes truncated = {0x7e, 0x41, 0x01, 0x21, 0x00, 0x10, 0xaa};
  EXPECT_FALSE(NasMessage::decode(truncated).has_value());
  // Trailing garbage.
  NasMessage msg;
  msg.type = NasType::kRegistrationComplete;
  Bytes wire = msg.encode();
  wire.push_back(0x00);
  EXPECT_FALSE(NasMessage::decode(wire).has_value());
}

TEST(Nas, SecuredProtectVerify) {
  const Bytes key(16, 0x42);
  NasMessage msg;
  msg.type = NasType::kSecurityModeComplete;
  const SecuredNas sec = SecuredNas::protect(msg, key, 7, false);
  const auto decoded = SecuredNas::decode(sec.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->count, 7u);
  EXPECT_FALSE(decoded->downlink);
  const auto inner = decoded->verify(key);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->type, NasType::kSecurityModeComplete);
}

TEST(Nas, SecuredRejectsWrongKeyCountDirectionTamper) {
  const Bytes key(16, 0x42), other(16, 0x43);
  NasMessage msg;
  msg.type = NasType::kSecurityModeComplete;
  SecuredNas sec = SecuredNas::protect(msg, key, 7, false);
  EXPECT_FALSE(sec.verify(other).has_value());

  SecuredNas wrong_count = sec;
  wrong_count.count = 8;  // MAC binds the count
  EXPECT_FALSE(wrong_count.verify(key).has_value());

  SecuredNas wrong_dir = sec;
  wrong_dir.downlink = true;  // MAC binds the direction
  EXPECT_FALSE(wrong_dir.verify(key).has_value());

  SecuredNas tampered = sec;
  tampered.payload[1] ^= 0x01;
  EXPECT_FALSE(tampered.verify(key).has_value());
}

// ---------------------------------------------------------------------
// AKA core
// ---------------------------------------------------------------------

class AkaCoreFixture : public ::testing::Test {
 protected:
  Rng rng_{55};
  Bytes k_ = rng_.bytes(16);
  Bytes opc_ = rng_.bytes(16);
  Bytes rand_ = rng_.bytes(16);
  Bytes sqn_ = Bytes{0, 0, 0, 0, 1, 0};
  Bytes amf_field_ = Bytes{0x80, 0x00};
  std::string snn_ = crypto::serving_network_name("001", "01");
};

TEST_F(AkaCoreFixture, HeAvShape) {
  const HeAv av = generate_he_av(k_, opc_, rand_, sqn_, amf_field_, snn_);
  EXPECT_EQ(av.rand, rand_);
  EXPECT_EQ(av.autn.size(), 16u);
  EXPECT_EQ(av.xres_star.size(), 16u);
  EXPECT_EQ(av.kausf.size(), 32u);
}

TEST_F(AkaCoreFixture, SeDerivationMatchesPaperSizes) {
  const HeAv av = generate_he_av(k_, opc_, rand_, sqn_, amf_field_, snn_);
  const SeDerivation se = derive_se(rand_, av.xres_star, av.kausf, snn_);
  EXPECT_EQ(se.hxres_star.size(), kHxresStarBytes);  // Table I: 8 bytes
  EXPECT_EQ(se.kseaf.size(), 32u);
}

TEST_F(AkaCoreFixture, ResyncRoundTrip) {
  const Bytes sqn_ms = Bytes{0, 0, 0, 0, 0, 42};
  const Bytes auts = build_auts(k_, opc_, rand_, sqn_ms);
  EXPECT_EQ(auts.size(), 14u);
  const auto recovered = resync_verify(k_, opc_, rand_, auts);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, sqn_ms);
}

TEST_F(AkaCoreFixture, ResyncRejectsTamperedAuts) {
  Bytes auts = build_auts(k_, opc_, rand_, Bytes{0, 0, 0, 0, 0, 42});
  auts[13] ^= 0x01;
  EXPECT_FALSE(resync_verify(k_, opc_, rand_, auts).has_value());
  EXPECT_FALSE(resync_verify(k_, opc_, rand_, Bytes(13, 0)).has_value());
}

TEST_F(AkaCoreFixture, ResyncRejectsWrongKey) {
  const Bytes auts = build_auts(k_, opc_, rand_, Bytes{0, 0, 0, 0, 0, 42});
  const Bytes other_k = rng_.bytes(16);
  EXPECT_FALSE(resync_verify(other_k, opc_, rand_, auts).has_value());
}

TEST_F(AkaCoreFixture, DeploymentsProduceIdenticalVectors) {
  // The same math backs monolithic / container / SGX deployments.
  const HeAv a = generate_he_av(k_, opc_, rand_, sqn_, amf_field_, snn_);
  const HeAv b = generate_he_av(k_, opc_, rand_, sqn_, amf_field_, snn_);
  EXPECT_EQ(a.autn, b.autn);
  EXPECT_EQ(a.xres_star, b.xres_star);
  EXPECT_EQ(a.kausf, b.kausf);
}

// ---------------------------------------------------------------------
// VNFs over the bus
// ---------------------------------------------------------------------

class CoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    bus_.set_keep_alive(true);  // cheaper repeated calls in tests
    hn_key_ = crypto::x25519_keypair(rng_.bytes(32));

    udr_ = std::make_unique<Udr>(bus_);
    UdmConfig udm_cfg;
    udm_cfg.deployment = AkaDeployment::kMonolithic;
    udm_cfg.hn_key = hn_key_;
    udm_ = std::make_unique<Udm>(bus_, udm_cfg);
    AusfConfig ausf_cfg;
    ausf_cfg.deployment = AkaDeployment::kMonolithic;
    ausf_cfg.allowed_snns.insert(snn_);
    ausf_ = std::make_unique<Ausf>(bus_, ausf_cfg);

    record_.supi = Supi{"001010000000001"};
    record_.k = rng_.bytes(16);
    record_.opc = rng_.bytes(16);
    record_.sqn = 0x1000;
    udr_->provision(record_);
  }

  json::Value body_of(const net::HttpResponse& resp) {
    return json::parse(resp.body);
  }

  sim::VirtualClock clock_;
  net::Bus bus_{clock_};
  Rng rng_{66};
  crypto::X25519KeyPair hn_key_;
  std::unique_ptr<Udr> udr_;
  std::unique_ptr<Udm> udm_;
  std::unique_ptr<Ausf> ausf_;
  SubscriberRecord record_;
  const std::string snn_ = crypto::serving_network_name("001", "01");
};

TEST_F(CoreFixture, UdrReturnsProvisionedRecord) {
  const auto resp = bus_.request(
      "test", "udr",
      sbi_get("/nudr-dr/v1/subscription-data/001010000000001/"
              "authentication-subscription"));
  ASSERT_EQ(resp.response.status, 200);
  const auto body = body_of(resp.response);
  EXPECT_EQ(*hex_bytes(body, "k"), record_.k);
  EXPECT_EQ(*hex_bytes(body, "opc"), record_.opc);
}

TEST_F(CoreFixture, UdrUnknownSupi404) {
  const auto resp = bus_.request(
      "test", "udr",
      sbi_get("/nudr-dr/v1/subscription-data/999999999999999/"
              "authentication-subscription"));
  EXPECT_EQ(resp.response.status, 404);
}

TEST_F(CoreFixture, UdrSqnAdvances) {
  auto advance = [this] {
    const auto resp = bus_.request(
        "test", "udr",
        json_post(
            "/nudr-dr/v1/subscription-data/001010000000001/sqn-advance",
            json::Value(json::Object{})));
    return be_value(*hex_bytes(body_of(resp.response), "sqn"));
  };
  const auto first = advance();
  const auto second = advance();
  EXPECT_EQ(first, 0x1000u + Udr::kSqnStep);
  EXPECT_EQ(second, first + Udr::kSqnStep);
}

TEST_F(CoreFixture, UdrProvisionOverSbi) {
  json::Object body;
  body["k"] = hex_field(Bytes(16, 1));
  body["opc"] = hex_field(Bytes(16, 2));
  body["sqn"] = hex_field(Bytes(6, 0));
  const auto resp = bus_.request(
      "test", "udr",
      json_put("/nudr-dr/v1/subscription-data/001010000000099",
               json::Value(std::move(body))));
  EXPECT_EQ(resp.response.status, 201);
  EXPECT_NE(udr_->store().row("001010000000099"), SubscriberStore::kNoRow);
  EXPECT_EQ(udr_->subscriber_count(), 2u);
}

TEST_F(CoreFixture, UdmGeneratesAvFromSupi) {
  json::Object body;
  body["supi"] = record_.supi.value;
  body["servingNetworkName"] = snn_;
  const auto resp =
      bus_.request("test", "udm",
                   json_post("/nudm-ueau/v1/generate-auth-data",
                             json::Value(std::move(body))));
  ASSERT_EQ(resp.response.status, 200);
  const auto av = body_of(resp.response);
  EXPECT_EQ(hex_bytes(av, "rand")->size(), 16u);
  EXPECT_EQ(hex_bytes(av, "autn")->size(), 16u);
  EXPECT_EQ(hex_bytes(av, "xresStar")->size(), 16u);
  EXPECT_EQ(hex_bytes(av, "kausf")->size(), 32u);
  EXPECT_EQ(udm_->av_generated_count(), 1u);
}

TEST_F(CoreFixture, UdmDeconcealsSuci) {
  const crypto::Suci suci = crypto::conceal_supi(
      "001", "01", "0000000001", crypto::SuciScheme::kProfileA,
      hn_key_.public_key, rng_.bytes(32));
  json::Object body;
  body["suci"] = suci.to_string();
  body["servingNetworkName"] = snn_;
  const auto resp =
      bus_.request("test", "udm",
                   json_post("/nudm-ueau/v1/generate-auth-data",
                             json::Value(std::move(body))));
  ASSERT_EQ(resp.response.status, 200);
  EXPECT_EQ(*body_of(resp.response).get_string("supi"),
            record_.supi.value);
}

TEST_F(CoreFixture, UdmRejectsBadSuci) {
  crypto::Suci suci = crypto::conceal_supi(
      "001", "01", "0000000001", crypto::SuciScheme::kProfileA,
      hn_key_.public_key, rng_.bytes(32));
  suci.scheme_output[40] ^= 1;  // corrupt the ECIES payload
  json::Object body;
  body["suci"] = suci.to_string();
  body["servingNetworkName"] = snn_;
  const auto resp =
      bus_.request("test", "udm",
                   json_post("/nudm-ueau/v1/generate-auth-data",
                             json::Value(std::move(body))));
  EXPECT_EQ(resp.response.status, 403);
}

TEST_F(CoreFixture, UdmAvIsVerifiableByUsim) {
  json::Object body;
  body["supi"] = record_.supi.value;
  body["servingNetworkName"] = snn_;
  const auto resp =
      bus_.request("test", "udm",
                   json_post("/nudm-ueau/v1/generate-auth-data",
                             json::Value(std::move(body))));
  const auto av = body_of(resp.response);
  const Bytes rand = *hex_bytes(av, "rand");
  const Bytes autn = *hex_bytes(av, "autn");

  // Replicate the USIM side and check MAC-A verifies.
  const crypto::Milenage milenage(record_.k, record_.opc);
  const auto out = milenage.compute_f2345(rand);
  const auto fields = crypto::parse_autn(autn);
  const Bytes sqn = xor_bytes(fields.sqn_xor_ak, out.ak);
  Bytes mac_a, mac_s;
  milenage.compute_f1(rand, sqn, fields.amf, mac_a, mac_s);
  EXPECT_EQ(mac_a, fields.mac_a);
  EXPECT_EQ(be_value(sqn), 0x1000u + Udr::kSqnStep);
}

TEST_F(CoreFixture, AusfFullPhaseOneAndConfirm) {
  json::Object body;
  body["supi"] = record_.supi.value;
  body["servingNetworkName"] = snn_;
  const auto auth =
      bus_.request("test", "ausf",
                   json_post("/nausf-auth/v1/ue-authentications",
                             json::Value(std::move(body))));
  ASSERT_EQ(auth.response.status, 201);
  const auto av = body_of(auth.response);
  const std::string ctx_id = *av.get_string("authCtxId");
  const Bytes rand = *hex_bytes(av, "rand");
  const Bytes autn = *hex_bytes(av, "autn");
  const Bytes hxres = *hex_bytes(av, "hxresStar");
  EXPECT_EQ(hxres.size(), kHxresStarBytes);

  // UE side: compute RES*.
  const crypto::Milenage milenage(record_.k, record_.opc);
  const auto out = milenage.compute_f2345(rand);
  const Bytes res_star =
      crypto::derive_res_star(out.ck, out.ik, snn_, rand, out.res);
  // Serving-network check: HRES* must match HXRES*.
  EXPECT_EQ(crypto::derive_hxres_star(rand, res_star, kHxresStarBytes),
            hxres);

  json::Object confirm;
  confirm["resStar"] = hex_field(res_star);
  const auto conf = bus_.request(
      "test", "ausf",
      json_put("/nausf-auth/v1/ue-authentications/" + ctx_id +
                   "/5g-aka-confirmation",
               json::Value(std::move(confirm))));
  ASSERT_EQ(conf.response.status, 200);
  const auto conf_body = body_of(conf.response);
  EXPECT_EQ(*conf_body.get_string("result"), "AUTHENTICATION_SUCCESS");
  EXPECT_EQ(hex_bytes(conf_body, "kseaf")->size(), 32u);
  EXPECT_EQ(udm_->auth_events(), 1u);
}

TEST_F(CoreFixture, AusfRejectsWrongResStar) {
  json::Object body;
  body["supi"] = record_.supi.value;
  body["servingNetworkName"] = snn_;
  const auto auth =
      bus_.request("test", "ausf",
                   json_post("/nausf-auth/v1/ue-authentications",
                             json::Value(std::move(body))));
  const std::string ctx_id =
      *body_of(auth.response).get_string("authCtxId");
  json::Object confirm;
  confirm["resStar"] = hex_field(Bytes(16, 0xee));
  const auto conf = bus_.request(
      "test", "ausf",
      json_put("/nausf-auth/v1/ue-authentications/" + ctx_id +
                   "/5g-aka-confirmation",
               json::Value(std::move(confirm))));
  EXPECT_EQ(*body_of(conf.response).get_string("result"),
            "AUTHENTICATION_FAILURE");
  EXPECT_EQ(udm_->auth_events(), 0u);
}

TEST_F(CoreFixture, AusfRejectsUnauthorizedServingNetwork) {
  json::Object body;
  body["supi"] = record_.supi.value;
  body["servingNetworkName"] =
      crypto::serving_network_name("999", "99");
  const auto resp =
      bus_.request("test", "ausf",
                   json_post("/nausf-auth/v1/ue-authentications",
                             json::Value(std::move(body))));
  EXPECT_EQ(resp.response.status, 403);
}

TEST_F(CoreFixture, AusfContextIsSingleUse) {
  json::Object body;
  body["supi"] = record_.supi.value;
  body["servingNetworkName"] = snn_;
  const auto auth =
      bus_.request("test", "ausf",
                   json_post("/nausf-auth/v1/ue-authentications",
                             json::Value(std::move(body))));
  const std::string ctx_id =
      *body_of(auth.response).get_string("authCtxId");
  json::Object confirm;
  confirm["resStar"] = hex_field(Bytes(16, 0xee));
  bus_.request("test", "ausf",
               json_put("/nausf-auth/v1/ue-authentications/" + ctx_id +
                            "/5g-aka-confirmation",
                        json::Value(confirm)));
  const auto again = bus_.request(
      "test", "ausf",
      json_put("/nausf-auth/v1/ue-authentications/" + ctx_id +
                   "/5g-aka-confirmation",
               json::Value(confirm)));
  EXPECT_EQ(again.response.status, 404);
}

TEST_F(CoreFixture, UdmResyncUpdatesUdr) {
  const Bytes rand = rng_.bytes(16);
  const Bytes sqn_ms = Bytes{0, 0, 0, 0, 0x55, 0x00};
  const Bytes auts = build_auts(record_.k, record_.opc, rand, sqn_ms);
  json::Object body;
  body["supi"] = record_.supi.value;
  body["rand"] = hex_field(rand);
  body["auts"] = hex_field(auts);
  const auto resp = bus_.request(
      "test", "udm",
      json_post("/nudm-ueau/v1/resync", json::Value(std::move(body))));
  EXPECT_EQ(resp.response.status, 200);
  EXPECT_EQ(udr_->store().sqn(udr_->store().row(record_.supi.value)),
            be_value(sqn_ms) + Udr::kSqnStep);
}

TEST_F(CoreFixture, UdmResyncRejectsForgedAuts) {
  const Bytes rand = rng_.bytes(16);
  Bytes auts =
      build_auts(record_.k, record_.opc, rand, Bytes{0, 0, 0, 0, 0x55, 0});
  auts[8] ^= 1;
  json::Object body;
  body["supi"] = record_.supi.value;
  body["rand"] = hex_field(rand);
  body["auts"] = hex_field(auts);
  const auto resp = bus_.request(
      "test", "udm",
      json_post("/nudm-ueau/v1/resync", json::Value(std::move(body))));
  EXPECT_EQ(resp.response.status, 403);
  EXPECT_EQ(udr_->store().sqn(udr_->store().row(record_.supi.value)),
            0x1000u);  // unchanged
}

// ---------------------------------------------------------------------
// SMF / UPF / NRF
// ---------------------------------------------------------------------

TEST_F(CoreFixture, SmfCreatesAndReleasesPduSession) {
  Upf upf(clock_);
  Smf smf(bus_, upf);
  json::Object body;
  body["supi"] = record_.supi.value;
  body["pduSessionId"] = 1;
  body["dnn"] = "internet";
  const auto resp =
      bus_.request("test", "smf",
                   json_post("/nsmf-pdusession/v1/sm-contexts",
                             json::Value(body)));
  ASSERT_EQ(resp.response.status, 201);
  const auto created = body_of(resp.response);
  EXPECT_FALSE(created.get_string("ueIp")->empty());
  EXPECT_EQ(upf.session_count(), 1u);

  // Duplicate session id is a conflict.
  const auto dup =
      bus_.request("test", "smf",
                   json_post("/nsmf-pdusession/v1/sm-contexts",
                             json::Value(body)));
  EXPECT_EQ(dup.response.status, 409);

  net::HttpRequest del;
  del.method = net::Method::kDelete;
  del.path = "/nsmf-pdusession/v1/sm-contexts/" + record_.supi.value + "/1";
  const auto released = bus_.request("test", "smf", del);
  EXPECT_EQ(released.response.status, 204);
  EXPECT_EQ(upf.session_count(), 0u);
}

TEST_F(CoreFixture, UpfAllocatesDistinctResources) {
  Upf upf(clock_);
  const auto s1 = upf.n4_establish("supi-a", 1, "internet");
  const auto s2 = upf.n4_establish("supi-b", 1, "internet");
  EXPECT_NE(s1.teid, s2.teid);
  EXPECT_NE(s1.ue_ip, s2.ue_ip);
  EXPECT_TRUE(upf.find(s1.teid).has_value());
  EXPECT_TRUE(upf.n4_release(s1.teid));
  EXPECT_FALSE(upf.n4_release(s1.teid));
}

TEST_F(CoreFixture, NrfRegisterAndDiscover) {
  Nrf nrf(bus_);
  json::Object profile;
  profile["nfType"] = "AUSF";
  profile["serviceName"] = "ausf";
  EXPECT_EQ(bus_.request("test", "nrf",
                         json_put("/nnrf-nfm/v1/nf-instances/ausf-1",
                                  json::Value(std::move(profile))))
                .response.status,
            201);

  const auto found = bus_.request(
      "test", "nrf", sbi_get("/nnrf-disc/v1/nf-instances/AUSF"));
  ASSERT_EQ(found.response.status, 200);
  const auto instances = body_of(found.response).at("nfInstances");
  ASSERT_EQ(instances.as_array().size(), 1u);
  EXPECT_EQ(*instances.as_array()[0].get_string("serviceName"), "ausf");

  const auto missing = bus_.request(
      "test", "nrf", sbi_get("/nnrf-disc/v1/nf-instances/UPF"));
  EXPECT_EQ(missing.response.status, 404);
}


// ---------------------------------------------------------------------
// NGAP (N2)
// ---------------------------------------------------------------------

TEST(Ngap, CodecRoundTrip) {
  NgapMessage msg = NgapMessage::uplink_nas(7, 0x105, Bytes{1, 2, 3});
  const auto decoded = NgapMessage::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, NgapType::kUplinkNasTransport);
  EXPECT_EQ(decoded->ran_ue_id, 7u);
  EXPECT_EQ(decoded->amf_ue_id, 0x105u);
  EXPECT_EQ(decoded->nas_pdu, (Bytes{1, 2, 3}));

  const NgapMessage setup =
      NgapMessage::ng_setup_request(Plmn{"001", "01"}, "oai-gnb");
  const auto setup_decoded = NgapMessage::decode(setup.encode());
  ASSERT_TRUE(setup_decoded.has_value());
  EXPECT_EQ(setup_decoded->plmn.id(), "00101");
  EXPECT_EQ(setup_decoded->gnb_name, "oai-gnb");
}

TEST(Ngap, MalformedRejected) {
  EXPECT_FALSE(NgapMessage::decode(Bytes{}).has_value());
  EXPECT_FALSE(NgapMessage::decode(Bytes(18, 0x4e)).has_value());
  Bytes truncated = NgapMessage::uplink_nas(1, 2, Bytes(8, 0)).encode();
  truncated.pop_back();
  EXPECT_FALSE(NgapMessage::decode(truncated).has_value());
  Bytes trailing = NgapMessage::uplink_nas(1, 2, Bytes(8, 0)).encode();
  trailing.push_back(0);
  EXPECT_FALSE(NgapMessage::decode(trailing).has_value());
}

TEST_F(CoreFixture, AmfNgSetupAdmission) {
  AmfConfig amf_cfg;
  amf_cfg.deployment = AkaDeployment::kMonolithic;
  Amf amf(bus_, amf_cfg);
  // Served PLMN accepted.
  const auto ok = amf.handle_ngap(
      NgapMessage::ng_setup_request(Plmn{"001", "01"}, "gnb-a").encode());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(NgapMessage::decode(*ok)->type, NgapType::kNgSetupResponse);
  EXPECT_EQ(amf.ng_setups(), 1u);
  // Foreign PLMN rejected.
  const auto bad = amf.handle_ngap(
      NgapMessage::ng_setup_request(Plmn{"310", "410"}, "gnb-b").encode());
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(NgapMessage::decode(*bad)->type, NgapType::kNgSetupFailure);
  EXPECT_EQ(amf.ng_setups(), 1u);
}

TEST_F(CoreFixture, AmfRejectsForgedUeAssociation) {
  AmfConfig amf_cfg;
  amf_cfg.deployment = AkaDeployment::kMonolithic;
  Amf amf(bus_, amf_cfg);
  // Uplink NAS transport for a UE that never sent an Initial UE Message
  // (or with a wrong AMF UE id) is dropped.
  NasMessage nas;
  nas.type = NasType::kRegistrationRequest;
  EXPECT_EQ(amf.handle_ngap(
                NgapMessage::uplink_nas(9, 0xdead, nas.encode()).encode()),
            std::nullopt);
}

TEST_F(CoreFixture, AmfUeContextRelease) {
  AmfConfig amf_cfg;
  amf_cfg.deployment = AkaDeployment::kMonolithic;
  Amf amf(bus_, amf_cfg);
  NgapMessage release;
  release.type = NgapType::kUeContextReleaseCommand;
  release.ran_ue_id = 3;
  const auto resp = amf.handle_ngap(release.encode());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(NgapMessage::decode(*resp)->type,
            NgapType::kUeContextReleaseComplete);
}

TEST(Types, GutiFormatting) {
  Guti guti{Plmn{"001", "01"}, 1, 1, 0x1000};
  EXPECT_EQ(guti.to_string(), "5g-guti-00101-01-001-00001000");
}

TEST(Types, SupiFromParts) {
  EXPECT_EQ(Supi::from_parts(Plmn{"001", "01"}, "0000000007").value,
            "001010000000007");
}

// ---------------------------------------------------------------------
// SubscriberStore: the UDR's columnar credential table
// ---------------------------------------------------------------------

SubscriberRecord store_record(std::uint32_t i) {
  SubscriberRecord rec;
  char msin[16];
  std::snprintf(msin, sizeof(msin), "%010u", 100000000u + i);
  rec.supi = Supi::from_parts(Plmn{"001", "01"}, msin);
  rec.k = SecretBytes(Bytes(16, static_cast<std::uint8_t>(i)));
  rec.opc = SecretBytes(Bytes(16, static_cast<std::uint8_t>(i ^ 0xFF)));
  rec.sqn = 0x100 + 0x40ULL * i;
  return rec;
}

TEST(SubscriberStore, ProvisionAndLookupRoundTrip) {
  SubscriberStore store;
  const SubscriberRecord rec = store_record(7);
  const std::uint32_t row = store.provision(rec);
  ASSERT_EQ(store.row(rec.supi.value), row);
  EXPECT_EQ(store.supi(row), rec.supi.value);
  EXPECT_EQ(store.sqn(row), rec.sqn);
  EXPECT_TRUE(ct_equal(store.k(row).unsafe_bytes(), rec.k.unsafe_bytes()));
  EXPECT_TRUE(ct_equal(store.opc(row).unsafe_bytes(), rec.opc.unsafe_bytes()));
  EXPECT_EQ(store.row("001019999999999"), SubscriberStore::kNoRow);
}

TEST(SubscriberStore, ReplaceReusesTheRow) {
  SubscriberStore store;
  const std::uint32_t row = store.provision(store_record(3));
  SubscriberRecord updated = store_record(3);
  updated.sqn = 0xBEEF;
  EXPECT_EQ(store.provision(updated), row) << "same SUPI keeps its row";
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.sqn(row), 0xBEEFULL);
}

TEST(SubscriberStore, SurvivesRehashGrowth) {
  // 500 rows push the open-addressed index through multiple doublings
  // (initial 64 slots); every interned SUPI view and every column must
  // survive the growth.
  SubscriberStore store;
  constexpr std::uint32_t kCount = 500;
  for (std::uint32_t i = 0; i < kCount; ++i) store.provision(store_record(i));
  ASSERT_EQ(store.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const SubscriberRecord rec = store_record(i);
    const std::uint32_t row = store.row(rec.supi.value);
    ASSERT_NE(row, SubscriberStore::kNoRow) << "lost " << rec.supi.value;
    EXPECT_EQ(store.supi(row), rec.supi.value);
    EXPECT_EQ(store.sqn(row), rec.sqn);
    EXPECT_TRUE(ct_equal(store.k(row).unsafe_bytes(), rec.k.unsafe_bytes()));
  }
  EXPECT_GT(store.bytes_reserved(), 0u);
}

TEST(SubscriberStore, SqnWritesLandInPlace) {
  SubscriberStore store;
  const std::uint32_t row = store.provision(store_record(0));
  store.set_sqn(row, store.sqn(row) + 32);
  EXPECT_EQ(store.sqn(row), 0x100ULL + 32);
  EXPECT_EQ(store.sqn_bytes(row), be_bytes(0x100ULL + 32, 6));
}

TEST(SubscriberStore, RejectsMalformedCredentials) {
  SubscriberStore store;
  SubscriberRecord bad_k = store_record(1);
  bad_k.k = SecretBytes(Bytes(15, 0x01));
  EXPECT_THROW(store.provision(bad_k), std::invalid_argument);
  SubscriberRecord bad_amf = store_record(2);
  bad_amf.amf_field = Bytes(3, 0x00);
  EXPECT_THROW(store.provision(bad_amf), std::invalid_argument);
  EXPECT_EQ(store.size(), 0u);
}

TEST(SubscriberStore, ReserveIsIdempotentWithProvisioning) {
  SubscriberStore store;
  store.reserve(128);
  // First provision claims the arena's first identity chunk; after
  // that, a reserved bulk load must not rehash, grow columns, or need
  // another chunk (128 SUPIs are far below one 64 KiB chunk).
  store.provision(store_record(0));
  const std::size_t reserved = store.bytes_reserved();
  for (std::uint32_t i = 1; i < 128; ++i) store.provision(store_record(i));
  EXPECT_EQ(store.bytes_reserved(), reserved)
      << "a reserved bulk load must not rehash or grow columns";
  EXPECT_EQ(store.size(), 128u);
}

}  // namespace
}  // namespace shield5g::nf
