// Virtual clock, discrete-event scheduler and shard-pool tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "sim/clock.h"
#include "sim/scheduler.h"
#include "sim/shard_pool.h"
#include "sim/spsc_mailbox.h"

namespace shield5g::sim {
namespace {

TEST(VirtualClock, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.advance(0);
  EXPECT_EQ(clock.now(), 100u);
}

TEST(VirtualClock, AdvanceToAbsolute) {
  VirtualClock clock;
  clock.advance_to(1'000);
  EXPECT_EQ(clock.now(), 1'000u);
  clock.advance_to(1'000);  // same instant is allowed
  EXPECT_THROW(clock.advance_to(999), std::logic_error);
}

TEST(VirtualClock, ObserversSeeEveryAdvance) {
  VirtualClock clock;
  std::vector<std::pair<Nanos, Nanos>> seen;
  clock.add_observer([&seen](Nanos prev, Nanos now) {
    seen.emplace_back(prev, now);
  });
  clock.advance(10);
  clock.advance(5);
  ASSERT_EQ(seen.size(), 2u);
  const auto first = std::make_pair<Nanos, Nanos>(0, 10);
  const auto second = std::make_pair<Nanos, Nanos>(10, 15);
  EXPECT_EQ(seen[0], first);
  EXPECT_EQ(seen[1], second);
}

TEST(VirtualClock, ObserverRemoval) {
  VirtualClock clock;
  int calls = 0;
  const std::size_t id =
      clock.add_observer([&calls](Nanos, Nanos) { ++calls; });
  clock.advance(1);
  clock.remove_observer(id);
  clock.advance(1);
  EXPECT_EQ(calls, 1);
}

TEST(VirtualClock, UnitHelpers) {
  EXPECT_DOUBLE_EQ(to_us(1'500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_s(3 * kSecond), 3.0);
}

TEST(Scheduler, RunsInTimestampOrder) {
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<int> order;
  sched.at(30, [&order] { order.push_back(3); });
  sched.at(10, [&order] { order.push_back(1); });
  sched.at(20, [&order] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 30u);
}

TEST(Scheduler, FifoAmongSameInstant) {
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(100, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, TasksMayScheduleMoreTasks) {
  VirtualClock clock;
  Scheduler sched(clock);
  int fired = 0;
  sched.at(10, [&] {
    ++fired;
    sched.after(5, [&] { ++fired; });
  });
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(clock.now(), 15u);
}

TEST(Scheduler, RunUntilLeavesLaterEventsQueued) {
  VirtualClock clock;
  Scheduler sched(clock);
  int fired = 0;
  sched.at(10, [&fired] { ++fired; });
  sched.at(100, [&fired] { ++fired; });
  sched.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now(), 50u);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PastInstantRejected) {
  VirtualClock clock;
  Scheduler sched(clock);
  clock.advance(100);
  EXPECT_THROW(sched.at(50, [] {}), std::logic_error);
}

TEST(Scheduler, AfterIsRelative) {
  VirtualClock clock;
  Scheduler sched(clock);
  clock.advance(1'000);
  Nanos fired_at = 0;
  sched.after(250, [&] { fired_at = clock.now(); });
  sched.run();
  EXPECT_EQ(fired_at, 1'250u);
}

// ---- run_until edge cases (the concurrent engine leans on these) -------

TEST(Scheduler, RunUntilFifoAmongEventsAtTheDeadline) {
  // Events AT the deadline run, in submission order.
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<int> order;
  sched.at(50, [&order] { order.push_back(0); });
  sched.at(50, [&order] { order.push_back(1); });
  sched.at(50, [&order] { order.push_back(2); });
  sched.run_until(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(clock.now(), 50u);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, RunUntilRunsEventsScheduledByEventsAtTheDeadline) {
  // A deadline-instant event that schedules another deadline-instant
  // event must see it run in the same call; one scheduled a nanosecond
  // later must stay queued.
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<int> order;
  sched.at(100, [&] {
    order.push_back(0);
    sched.at(100, [&order] { order.push_back(1); });
    sched.at(101, [&order] { order.push_back(2); });
  });
  sched.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(clock.now(), 100u);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(clock.now(), 101u);
}

TEST(Scheduler, RunUntilAdvancesToDeadlineWithEmptyQueue) {
  VirtualClock clock;
  Scheduler sched(clock);
  sched.run_until(777);
  EXPECT_EQ(clock.now(), 777u);
  // A second call to the same instant is a no-op, not a rewind.
  sched.run_until(777);
  EXPECT_EQ(clock.now(), 777u);
}

TEST(Scheduler, RunUntilInterleavesCascadesAcrossInstants) {
  // An event before the deadline schedules work at and past the
  // deadline; only the "past" part may remain queued.
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<Nanos> fired;
  sched.at(10, [&] {
    fired.push_back(clock.now());
    sched.after(10, [&] { fired.push_back(clock.now()); });   // t=20
    sched.after(90, [&] { fired.push_back(clock.now()); });   // t=100
    sched.after(91, [&] { fired.push_back(clock.now()); });   // t=101
  });
  sched.run_until(100);
  EXPECT_EQ(fired, (std::vector<Nanos>{10, 20, 100}));
  EXPECT_EQ(clock.now(), 100u);
  EXPECT_EQ(sched.pending(), 1u);
}

// ---- event-ring + indexed heap properties ------------------------------
//
// The storage behind the scheduler is a sorted near-term ring (appends
// that extend the tail) merged against a 4-ary heap (everything else).
// These tests drive adversarial schedules through both parts and check
// the observable contract never wavers: global (timestamp, FIFO) order.

TEST(Scheduler, RandomScheduleMatchesStableSortReference) {
  // Deterministic LCG workload: timestamps collide often (small range),
  // arrive in no particular order, and every event records its identity.
  // The execution order must equal a stable sort of the submissions by
  // timestamp — exactly the contract the old priority_queue provided.
  VirtualClock clock;
  Scheduler sched(clock);
  std::uint64_t lcg = 0x5eedULL;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  constexpr int kEvents = 2000;
  std::vector<std::pair<Nanos, int>> submitted;
  std::vector<int> fired;
  for (int i = 0; i < kEvents; ++i) {
    const Nanos when = next() % 97;  // heavy timestamp collisions
    submitted.emplace_back(when, i);
    sched.at(when, [&fired, i] { fired.push_back(i); });
  }
  EXPECT_EQ(sched.pending(), static_cast<std::size_t>(kEvents));
  sched.run();
  std::stable_sort(submitted.begin(), submitted.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  ASSERT_EQ(fired.size(), submitted.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], submitted[i].second) << "at position " << i;
  }
}

TEST(Scheduler, RingAndHeapMergePreservesOrderAcrossCascades) {
  // Monotone appends land in the ring; each fired event then schedules
  // a *later* continuation (ring again) and an out-of-order sibling
  // relative to the ring tail (heap). The merged pop order must stay
  // globally sorted with FIFO ties.
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<Nanos> fired;
  for (Nanos t = 10; t <= 100; t += 10) {
    sched.at(t, [&, t] {
      fired.push_back(clock.now());
      sched.after(25, [&] { fired.push_back(clock.now()); });
    });
  }
  sched.run();
  ASSERT_EQ(fired.size(), 20u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]) << "out of order at " << i;
  }
  EXPECT_EQ(clock.now(), 125u);  // last continuation: 100 + 25
}

TEST(Scheduler, ReserveIsBehaviorNeutral) {
  VirtualClock clock;
  Scheduler with(clock);
  with.reserve(1024);
  VirtualClock clock2;
  Scheduler without(clock2);
  std::vector<int> a;
  std::vector<int> b;
  for (int i = 0; i < 64; ++i) {
    const Nanos when = static_cast<Nanos>((i * 37) % 50);
    with.at(when, [&a, i] { a.push_back(i); });
    without.at(when, [&b, i] { b.push_back(i); });
  }
  with.run();
  without.run();
  EXPECT_EQ(a, b);
}

TEST(Scheduler, PublishesPushPopPeakCounters) {
  const std::uint64_t pushed_before = counter_value("scheduler.events.pushed");
  const std::uint64_t popped_before = counter_value("scheduler.events.popped");
  VirtualClock clock;
  Scheduler sched(clock);
  // Two waves with a drain in between: the peak is the larger wave, not
  // the total, and push/pop totals accumulate across both drains.
  for (int i = 0; i < 8; ++i) {
    sched.at(static_cast<Nanos>(i), [] {});
  }
  sched.run();
  for (int i = 0; i < 3; ++i) {
    sched.at(clock.now() + static_cast<Nanos>(i), [] {});
  }
  sched.run();
  EXPECT_EQ(counter_value("scheduler.events.pushed") - pushed_before, 11u);
  EXPECT_EQ(counter_value("scheduler.events.popped") - popped_before, 11u);
  // Lifetime high-water mark: at least this scheduler's peak of 8 (the
  // counter is a process-wide max, so other tests may have raised it).
  EXPECT_GE(counter_value("scheduler.events.peak"), 8u);
}

// ---- rewind / ClockSpan (the concurrent engine's lookahead) ------------

TEST(VirtualClock, RewindMovesBackwardsSilently) {
  VirtualClock clock;
  int notifications = 0;
  clock.add_observer([&notifications](Nanos, Nanos) { ++notifications; });
  clock.advance(100);
  clock.rewind(40);
  EXPECT_EQ(clock.now(), 40u);
  EXPECT_EQ(notifications, 1);  // only the advance was observed
  EXPECT_THROW(clock.rewind(41), std::logic_error);  // forward = error
  clock.rewind(40);  // same instant is allowed
  EXPECT_EQ(clock.now(), 40u);
}

TEST(ClockSpan, MeasuresElapsedAndRewinds) {
  VirtualClock clock;
  clock.advance(1'000);
  ClockSpan span(clock);
  clock.advance(250);
  EXPECT_EQ(span.start(), 1'000u);
  EXPECT_EQ(span.elapsed(), 250u);
  EXPECT_EQ(span.close(), 250u);
  EXPECT_EQ(clock.now(), 1'000u);
}

TEST(ClockSpan, DestructorRewindsWhenNotClosed) {
  VirtualClock clock;
  clock.advance(500);
  {
    ClockSpan span(clock);
    clock.advance(123);
    EXPECT_EQ(clock.now(), 623u);
  }
  EXPECT_EQ(clock.now(), 500u);
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(ShardWorkers, ExplicitRequestBeatsEnvironment) {
  ScopedEnv env("SHIELD5G_SHARD_WORKERS", "7");
  EXPECT_EQ(shard_workers(3), 3u);
  EXPECT_EQ(shard_workers(), 7u);
}

TEST(ShardWorkers, BadEnvironmentFallsBackToHardware) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned expect = hw == 0 ? 1u : (hw < 256 ? hw : 256u);
  {
    ScopedEnv env("SHIELD5G_SHARD_WORKERS", "0");
    EXPECT_EQ(shard_workers(), expect);
  }
  {
    ScopedEnv env("SHIELD5G_SHARD_WORKERS", "nope");
    EXPECT_EQ(shard_workers(), expect);
  }
  {
    ScopedEnv env("SHIELD5G_SHARD_WORKERS", nullptr);
    EXPECT_EQ(shard_workers(), expect);
  }
}

TEST(ShardWorkers, AbsurdCountsAreClamped) {
  ScopedEnv env("SHIELD5G_SHARD_WORKERS", "999999");
  EXPECT_EQ(shard_workers(), 256u);
  EXPECT_EQ(shard_workers(100000), 256u);
}

TEST(ShardPool, MapReturnsResultsInJobOrder) {
  ShardPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  const std::vector<std::size_t> out =
      pool.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i) << "job " << i;
  }
}

TEST(ShardPool, RunExecutesEveryJobExactlyOnce) {
  ShardPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.run(64, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(ShardPool, PoolIsReusableAcrossRuns) {
  // Back-to-back batches on one pool: a stale worker from the first
  // batch must not claim or double-run jobs of the second.
  ShardPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    pool.run(17, [&ran](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 17) << "round " << round;
  }
}

TEST(ShardPool, SingleWorkerRunsInlineOnCaller) {
  // workers=1 is the sequential reference path: no pool threads touch
  // the jobs, so thread-hostile callers see today's behavior.
  ShardPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.run(5, [&seen, caller](std::size_t i) { seen[i] = caller; });
  for (const std::thread::id id : seen) EXPECT_EQ(id, caller);
}

TEST(ShardPool, FirstExceptionPropagatesAfterDrain) {
  ShardPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run(32,
               [&ran](std::size_t i) {
                 ran.fetch_add(1, std::memory_order_relaxed);
                 if (i == 5) throw std::runtime_error("shard 5 failed");
               }),
      std::runtime_error);
  // The batch drains before rethrow — no job is abandoned mid-flight.
  EXPECT_EQ(ran.load(), 32);
  // The pool survives a failed batch.
  std::atomic<int> again{0};
  pool.run(8, [&again](std::size_t) {
    again.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), 8);
}

TEST(ShardPool, ZeroJobsIsANoop) {
  ShardPool pool(4);
  bool touched = false;
  pool.run(0, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
  EXPECT_TRUE(pool.map(0, [](std::size_t i) { return i; }).empty());
}

// ---------------------------------------------------------------------
// SpscMailbox: the serving plane's shard-routing channel
// ---------------------------------------------------------------------

TEST(SpscMailbox, FifoOrderWithinCapacity) {
  SpscMailbox<int> mb(8);
  EXPECT_EQ(mb.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(mb.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(mb.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(mb.try_pop(out));
}

TEST(SpscMailbox, FullMailboxRefusesWithoutDropping) {
  SpscMailbox<int> mb(2);
  EXPECT_TRUE(mb.try_push(1));
  EXPECT_TRUE(mb.try_push(2));
  EXPECT_FALSE(mb.try_push(3)) << "bounded ring must back-pressure";
  int out = 0;
  ASSERT_TRUE(mb.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(mb.try_push(3)) << "slot freed by the pop";
}

TEST(SpscMailbox, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscMailbox<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscMailbox<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscMailbox<int>(64).capacity(), 64u);
}

TEST(SpscMailbox, DrainedOnlyAfterCloseAndEmpty) {
  SpscMailbox<int> mb(4);
  EXPECT_FALSE(mb.drained()) << "open mailbox is never drained";
  ASSERT_TRUE(mb.try_push(7));
  mb.close();
  EXPECT_FALSE(mb.drained()) << "closed but not yet empty";
  EXPECT_FALSE(mb.try_push(8)) << "closed mailbox refuses producers";
  int out = 0;
  ASSERT_TRUE(mb.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(mb.drained());
}

TEST(SpscMailbox, CrossThreadStreamKeepsOrderUnderContention) {
  // One producer, one consumer, a ring far smaller than the stream:
  // every value must arrive exactly once, in order, through repeated
  // full/empty transitions.
  SpscMailbox<std::uint32_t> mb(4);
  constexpr std::uint32_t kCount = 20000;
  std::vector<std::uint32_t> got;
  got.reserve(kCount);
  std::thread consumer([&] {
    std::uint32_t v = 0;
    while (!mb.drained()) {
      while (mb.try_pop(v)) got.push_back(v);
      std::this_thread::yield();
    }
  });
  for (std::uint32_t i = 0; i < kCount; ++i) {
    while (!mb.try_push(i)) std::this_thread::yield();
  }
  mb.close();
  consumer.join();
  ASSERT_EQ(got.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) ASSERT_EQ(got[i], i);
}

}  // namespace
}  // namespace shield5g::sim
