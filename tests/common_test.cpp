// Unit tests for the shared utilities: byte buffers, hex, PRNG,
// statistics, syscall cost table.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/lru_cache.h"
#include "common/hex.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/syscall.h"

namespace shield5g {
namespace {

TEST(Bytes, ConcatJoinsParts) {
  const Bytes a = {1, 2}, b = {3}, c = {};
  EXPECT_EQ(concat({ByteView(a), ByteView(b), ByteView(c)}),
            (Bytes{1, 2, 3}));
  EXPECT_TRUE(concat({}).empty());
}

TEST(Bytes, XorBytes) {
  const Bytes a = {0xff, 0x00, 0x55}, b = {0x0f, 0xf0, 0xaa};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0xf0, 0xff}));
  EXPECT_THROW(xor_bytes(a, Bytes{1}), std::invalid_argument);
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, StringRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("hello")), "hello");
  EXPECT_TRUE(to_bytes("").empty());
}

TEST(Bytes, BigEndianRoundTrip) {
  EXPECT_EQ(be_bytes(0x0102, 2), (Bytes{0x01, 0x02}));
  EXPECT_EQ(be_bytes(0x0102030405060708ULL, 8),
            (Bytes{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(be_value(be_bytes(0xdeadbeef, 4)), 0xdeadbeefULL);
  EXPECT_EQ(be_value(Bytes{}), 0u);
  EXPECT_THROW(be_bytes(1, 9), std::invalid_argument);
}

TEST(Bytes, TakeAndSlice) {
  const Bytes data = {10, 20, 30, 40, 50};
  EXPECT_EQ(take(data, 2), (Bytes{10, 20}));
  EXPECT_EQ(slice_bytes(data, 1, 3), (Bytes{20, 30, 40}));
  EXPECT_EQ(slice_bytes(data, 5, 0), Bytes{});
  EXPECT_THROW(slice_bytes(data, 4, 2), std::out_of_range);
  EXPECT_THROW(take(data, 6), std::out_of_range);
}

TEST(Hex, EncodeDecode) {
  EXPECT_EQ(hex_encode(Bytes{0x00, 0xab, 0xff}), "00abff");
  EXPECT_EQ(hex_decode("00abff"), (Bytes{0x00, 0xab, 0xff}));
  EXPECT_EQ(hex_decode("00 AB Ff"), (Bytes{0x00, 0xab, 0xff}));
  EXPECT_EQ(hex_decode(""), Bytes{});
  EXPECT_THROW(hex_decode("0g"), std::invalid_argument);
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(Hex, RoundTripAllByteValues) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(hex_decode(hex_encode(all)), all);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  Rng a2(123);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(11);
  Samples s;
  for (int i = 0; i < 20000; ++i) s.add(rng.lognormal(100.0, 0.3));
  EXPECT_NEAR(s.median(), 100.0, 3.0);
  EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, BytesLengthAndVariety) {
  Rng rng(12);
  const Bytes b = rng.bytes(1000);
  EXPECT_EQ(b.size(), 1000u);
  int zeros = 0;
  for (auto byte : b) zeros += byte == 0;
  EXPECT_LT(zeros, 50);  // ~3.9 expected
}

TEST(Stats, OrderStatistics) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_NEAR(s.p25(), 3.25, 1e-9);
  EXPECT_NEAR(s.p75(), 7.75, 1e-9);
  EXPECT_NEAR(s.iqr(), 4.5, 1e-9);
}

TEST(Stats, SingleSample) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.median(), std::logic_error);
  EXPECT_THROW(s.percentile(-1), std::logic_error);
}

TEST(Stats, SummaryRendering) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  const Summary summary = Summary::of(s);
  EXPECT_EQ(summary.count, 2u);
  EXPECT_DOUBLE_EQ(summary.mean, 1.5);
  EXPECT_NE(summary.to_string("us").find("n=2"), std::string::npos);
}

TEST(Syscall, CostsArePositiveAndByteSensitive) {
  for (Sys sys : {Sys::kOpen, Sys::kRead, Sys::kWrite, Sys::kAccept,
                  Sys::kEpollWait, Sys::kFutex, Sys::kClone}) {
    EXPECT_GT(syscall_host_ns(sys), 0u);
  }
  EXPECT_GT(syscall_host_ns(Sys::kRead, 100'000),
            syscall_host_ns(Sys::kRead, 0));
  EXPECT_EQ(syscall_host_ns(Sys::kFutex, 100'000),
            syscall_host_ns(Sys::kFutex, 0));  // no per-byte component
}

// ---------------------------------------------------------------------
// LruCache: the bound behind the Milenage and TLS-ticket caches
// ---------------------------------------------------------------------

TEST(LruCache, FindPromotesToMostRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  ASSERT_NE(cache.find(1), nullptr);  // 1 becomes MRU; 2 is now LRU
  cache.insert(3, 30);                // evicts 2, not 1
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, InsertOverwritesWithoutEvicting) {
  LruCache<int, int> cache(2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(1, 11);  // overwrite, not a new entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(*cache.find(1), 11);
}

TEST(LruCache, InsertedReferenceIsStableAcrossOtherKeysChurn) {
  // The Bus holds a TicketState* across open_connection while other
  // pairs may churn — the node behind a live (MRU) entry must not move.
  LruCache<int, int> cache(2);
  int* one = &cache.insert(1, 10);
  for (int k = 2; k < 20; ++k) {
    cache.insert(k, k);    // churns the other slot repeatedly
    ASSERT_NE(cache.find(1), nullptr);  // keep 1 MRU so it survives
    EXPECT_EQ(cache.find(1), one) << "node moved under churn";
  }
  EXPECT_EQ(*one, 10);
}

TEST(LruCache, SetCapacityShrinksAndCounts) {
  LruCache<int, int> cache(8);
  for (int k = 0; k < 8; ++k) cache.insert(k, k);
  cache.set_capacity(3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 5u);
  // The three most recent survive.
  EXPECT_NE(cache.find(7), nullptr);
  EXPECT_NE(cache.find(6), nullptr);
  EXPECT_NE(cache.find(5), nullptr);
  EXPECT_EQ(cache.find(4), nullptr);
}

TEST(LruCache, EraseAndClear) {
  LruCache<int, int> cache(4);
  cache.insert(1, 10);
  cache.insert(2, 20);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u) << "erase/clear are not evictions";
}

TEST(LruCache, CapacityFloorIsOne) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  int& v = cache.insert(1, 10);
  EXPECT_EQ(v, 10) << "insert into a capacity-1 cache keeps the new entry";
  cache.insert(2, 20);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
}

// ---------------------------------------------------------------------
// Arena: the bump allocator behind the columnar store's identities
// ---------------------------------------------------------------------

TEST(Arena, InternedViewsAreStableAcrossGrowth) {
  Arena arena;
  const std::string_view first = arena.intern("001010000000001");
  std::vector<std::string_view> views;
  // Force several chunk rollovers past the 64 KiB default.
  for (int i = 0; i < 5000; ++i) {
    views.push_back(arena.intern(std::string(40, 'a' + (i % 26))));
  }
  EXPECT_EQ(first, "001010000000001") << "first chunk must not move";
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(views[i], std::string(40, 'a' + (i % 26)));
  }
  EXPECT_GT(arena.bytes_reserved(), 5000u * 40u);
}

TEST(Arena, AllocateRespectsAlignment) {
  Arena arena;
  arena.allocate(1, 1);  // misalign the bump pointer
  void* p8 = arena.allocate(16, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
  void* p64 = arena.allocate(32, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 64, 0u);
}

TEST(Arena, OversizeAllocationGetsItsOwnChunk) {
  Arena arena;
  const std::size_t big = 1 << 20;  // 16x the default chunk
  void* p = arena.allocate(big, 8);
  ASSERT_NE(p, nullptr);
  // Writable end to end.
  auto* bytes = static_cast<unsigned char*>(p);
  bytes[0] = 0xAA;
  bytes[big - 1] = 0x55;
  EXPECT_GE(arena.bytes_reserved(), big);
}

}  // namespace
}  // namespace shield5g
