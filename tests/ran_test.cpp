// RAN tests: USIM challenge handling, radio/PLMN model, gNB relay and
// the COTS UE gates of the OTA experiment.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/key_hierarchy.h"
#include "crypto/milenage.h"
#include "nf/aka_core.h"
#include "ran/cots_ue.h"
#include "ran/radio.h"
#include "ran/usim.h"
#include "slice/slice.h"

namespace shield5g::ran {
namespace {

UsimConfig test_usim(Rng& rng) {
  UsimConfig cfg;
  cfg.plmn = nf::Plmn{"001", "01"};
  cfg.msin = "0000000001";
  cfg.k = rng.bytes(16);
  cfg.opc = rng.bytes(16);
  cfg.sqn_ms = 0x0fff;
  cfg.suci_scheme = crypto::SuciScheme::kProfileA;
  const auto hn = crypto::x25519_keypair(rng.bytes(32));
  cfg.hn_public = Bytes(hn.public_key.begin(), hn.public_key.end());
  return cfg;
}

// ---------------------------------------------------------------------
// USIM
// ---------------------------------------------------------------------

class UsimFixture : public ::testing::Test {
 protected:
  Rng rng_{321};
  UsimConfig cfg_ = test_usim(rng_);
  std::string snn_ = crypto::serving_network_name("001", "01");

  /// Network-side AV for a given SQN.
  nf::HeAv make_av(std::uint64_t sqn, ByteView rand) {
    return nf::generate_he_av(cfg_.k, cfg_.opc, rand, be_bytes(sqn, 6),
                              Bytes{0x80, 0x00}, snn_);
  }
};

TEST_F(UsimFixture, AcceptsFreshChallenge) {
  Usim usim(cfg_);
  const Bytes rand = rng_.bytes(16);
  const auto av = make_av(0x1000, rand);
  const AuthOutcome outcome = usim.verify_challenge(rand, av.autn);
  ASSERT_TRUE(std::holds_alternative<AuthSuccess>(outcome));
  const auto& ok = std::get<AuthSuccess>(outcome);
  EXPECT_EQ(be_value(ok.sqn), 0x1000u);
  EXPECT_EQ(usim.sqn_ms(), 0x1000u);  // stored for replay protection
  // UE-side RES* must hash to the network's HXRES*.
  const Bytes res_star =
      crypto::derive_res_star(ok.ck, ok.ik, snn_, rand, ok.res);
  EXPECT_EQ(res_star, av.xres_star);
}

TEST_F(UsimFixture, RejectsWrongMac) {
  Usim usim(cfg_);
  const Bytes rand = rng_.bytes(16);
  auto av = make_av(0x1000, rand);
  av.autn[12] ^= 0x01;  // corrupt MAC-A
  EXPECT_TRUE(std::holds_alternative<AuthMacFailure>(
      usim.verify_challenge(rand, av.autn)));
  EXPECT_EQ(usim.sqn_ms(), 0x0fffu);  // unchanged
}

TEST_F(UsimFixture, RejectsAttackerForgedChallenge) {
  Usim usim(cfg_);
  const Bytes rand = rng_.bytes(16);
  // Attacker without K fabricates an AUTN.
  const Bytes fake_autn = rng_.bytes(16);
  EXPECT_TRUE(std::holds_alternative<AuthMacFailure>(
      usim.verify_challenge(rand, fake_autn)));
}

TEST_F(UsimFixture, ReplayTriggersSyncFailure) {
  Usim usim(cfg_);
  const Bytes rand = rng_.bytes(16);
  const auto av = make_av(0x1000, rand);
  ASSERT_TRUE(std::holds_alternative<AuthSuccess>(
      usim.verify_challenge(rand, av.autn)));
  // Replaying the same (RAND, AUTN): SQN no longer fresh.
  const AuthOutcome replay = usim.verify_challenge(rand, av.autn);
  ASSERT_TRUE(std::holds_alternative<AuthSyncFailure>(replay));
  // The AUTS it generates verifies at the network and reveals SQNms.
  const auto& sync = std::get<AuthSyncFailure>(replay);
  const auto sqn_ms =
      nf::resync_verify(cfg_.k, cfg_.opc, rand, sync.auts);
  ASSERT_TRUE(sqn_ms.has_value());
  EXPECT_EQ(be_value(*sqn_ms), 0x1000u);
}

TEST_F(UsimFixture, FarFutureSqnRejected) {
  Usim usim(cfg_);
  const Bytes rand = rng_.bytes(16);
  const auto av = make_av(0x0fff + Usim::kSqnDelta + 100, rand);
  EXPECT_TRUE(std::holds_alternative<AuthSyncFailure>(
      usim.verify_challenge(rand, av.autn)));
}

TEST_F(UsimFixture, SuciConcealment) {
  Usim usim(cfg_);
  const crypto::Suci suci = usim.make_suci(rng_.bytes(32));
  EXPECT_EQ(suci.mcc, "001");
  EXPECT_EQ(suci.mnc, "01");
  // The MSIN must not appear in the scheme output.
  EXPECT_EQ(suci.to_string().find("0000000001"), std::string::npos);
  EXPECT_EQ(usim.supi(), "001010000000001");
}

// ---------------------------------------------------------------------
// Radio / PLMN search
// ---------------------------------------------------------------------

TEST(Radio, PlmnSearchFindsMatchingCell) {
  const std::vector<CellConfig> cells = {
      CellConfig{nf::Plmn{"310", "410"}, 3.5, 106, "commercial"},
      CellConfig{nf::Plmn{"001", "01"}, 3.6192, 106, "oai-gnb"},
  };
  EXPECT_EQ(plmn_search(cells, {nf::Plmn{"001", "01"}}), 1);
  EXPECT_EQ(plmn_search(cells, {nf::Plmn{"310", "410"}}), 0);
  EXPECT_EQ(plmn_search(cells, {nf::Plmn{"999", "99"}}), -1);
  EXPECT_EQ(plmn_search({}, {nf::Plmn{"001", "01"}}), -1);
}

TEST(Radio, LinkChargesAirLatency) {
  sim::VirtualClock clock;
  RadioLink link(clock, RadioCosts{}, 1);
  const sim::Nanos t0 = clock.now();
  link.traverse(100);
  const sim::Nanos cost = clock.now() - t0;
  // ~3.8 ms one way with jitter.
  EXPECT_GT(sim::to_ms(cost), 2.5);
  EXPECT_LT(sim::to_ms(cost), 6.0);
}

// ---------------------------------------------------------------------
// Full registration through the slice (all isolation modes)
// ---------------------------------------------------------------------

class RegistrationMode
    : public ::testing::TestWithParam<slice::IsolationMode> {};

TEST_P(RegistrationMode, UeRegistersAndGetsPduSession) {
  slice::SliceConfig cfg;
  cfg.mode = GetParam();
  cfg.subscriber_count = 2;
  slice::Slice s(cfg);
  s.create();

  // First registration absorbs the per-module cold-path spikes (R_I);
  // measure the second, steady-state one.
  ASSERT_TRUE(s.register_subscriber(0, /*with_pdu=*/true).session_up);
  const auto result = s.register_subscriber(1, /*with_pdu=*/true);
  EXPECT_TRUE(result.registered);
  EXPECT_TRUE(result.session_up);
  EXPECT_FALSE(result.ue_ip.empty());
  EXPECT_EQ(result.final_state, UeNasState::kSessionUp);
  EXPECT_EQ(s.amf().registrations_completed(), 2u);
  EXPECT_EQ(s.smf().sessions_created(), 2u);

  // Session setup in the tens of milliseconds (paper: 62.38 ms).
  EXPECT_GT(sim::to_ms(result.setup_time), 30.0);
  EXPECT_LT(sim::to_ms(result.setup_time), 120.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RegistrationMode,
    ::testing::Values(slice::IsolationMode::kMonolithic,
                      slice::IsolationMode::kContainer,
                      slice::IsolationMode::kSgx),
    [](const ::testing::TestParamInfo<slice::IsolationMode>& info) {
      switch (info.param) {
        case slice::IsolationMode::kMonolithic: return "Monolithic";
        case slice::IsolationMode::kContainer: return "Container";
        default: return "Sgx";
      }
    });

TEST(Registration, ResyncAfterSqnDesynchronisation) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kContainer;
  cfg.subscriber_count = 1;
  slice::Slice s(cfg);
  s.create();

  // Desynchronise: the USIM believes in a far-future SQN.
  UsimConfig usim = s.subscriber(0);
  usim.sqn_ms = usim.sqn_ms + (1ULL << 30);
  UeDevice ue(usim, 777);
  const auto result = s.gnbsim().register_ue(ue, true);
  EXPECT_TRUE(result.registered);
  EXPECT_TRUE(result.session_up);
  EXPECT_EQ(s.amf().resyncs(), 1u);
}

TEST(Registration, WrongKeyFailsAuthentication) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kContainer;
  cfg.subscriber_count = 1;
  slice::Slice s(cfg);
  s.create();

  UsimConfig usim = s.subscriber(0);
  Bytes cloned_k = usim.k.reveal_for_test();
  cloned_k[0] ^= 0x01;  // cloned SIM with a wrong key
  usim.k = SecretBytes(std::move(cloned_k));
  UeDevice ue(usim, 778);
  const auto result = s.gnbsim().register_ue(ue, true);
  EXPECT_FALSE(result.registered);
  EXPECT_EQ(result.final_state, UeNasState::kFailed);
  EXPECT_EQ(s.amf().registrations_completed(), 0u);
}

TEST(Registration, UnknownSubscriberRejected) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kContainer;
  cfg.subscriber_count = 1;
  slice::Slice s(cfg);
  s.create();

  UsimConfig usim = s.subscriber(0);
  usim.msin = "9999999999";  // not provisioned
  UeDevice ue(usim, 779);
  const auto result = s.gnbsim().register_ue(ue, true);
  EXPECT_FALSE(result.registered);
}

TEST(Registration, ForeignPlmnRejected) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kMonolithic;
  cfg.subscriber_count = 1;
  slice::Slice s(cfg);
  s.create();

  UsimConfig usim = s.subscriber(0);
  usim.plmn = nf::Plmn{"310", "410"};  // roamer from another network
  UeDevice ue(usim, 780);
  const auto result = s.gnbsim().register_ue(ue, true);
  EXPECT_FALSE(result.registered);
}

TEST(Registration, MassRegistrationAllSucceed) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kContainer;
  cfg.subscriber_count = 10;
  slice::Slice s(cfg);
  s.create();

  std::vector<UeDevice> ues;
  for (std::uint32_t i = 0; i < 10; ++i) {
    ues.emplace_back(s.subscriber(i), 1000 + i);
  }
  const auto results = s.gnbsim().run_mass(ues, true);
  EXPECT_EQ(s.gnbsim().success_count(), 10u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.session_up);
  }
  EXPECT_EQ(s.gnbsim().setup_ms().count(), 10u);
}


TEST(GnbNgap, SetupRejectedForForeignPlmn) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kMonolithic;
  cfg.subscriber_count = 1;
  slice::Slice s(cfg);
  s.create();
  EXPECT_TRUE(s.gnb().ng_ready());
  // A second gNB broadcasting a foreign PLMN is refused by the AMF.
  Gnb rogue(s.clock(), s.amf(),
            CellConfig{nf::Plmn{"999", "99"}, 3.5, 106, "rogue-gnb"});
  EXPECT_FALSE(rogue.ng_ready());
  const auto id = rogue.attach_ue();
  EXPECT_THROW(rogue.deliver_uplink(id, Bytes{0x7e}), std::logic_error);
}

TEST(GnbNgap, ReleaseFreesContexts) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kMonolithic;
  cfg.subscriber_count = 1;
  slice::Slice s(cfg);
  s.create();
  UeDevice ue(s.subscriber(0), 11);
  const auto result = s.gnbsim().register_ue(ue, false);
  ASSERT_TRUE(result.registered);
  const std::size_t attached = s.gnb().attached_count();
  s.gnb().release_ue(1);
  EXPECT_EQ(s.gnb().attached_count(), attached - 1);
  EXPECT_EQ(s.amf().ue_state(1), nf::UeState::kDeregistered);
}

// ---------------------------------------------------------------------
// COTS UE / OTA gates
// ---------------------------------------------------------------------

class CotsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.mode = slice::IsolationMode::kSgx;
    cfg_.subscriber_count = 1;
    s_ = std::make_unique<slice::Slice>(cfg_);
    s_->create();
  }

  slice::SliceConfig cfg_;
  std::unique_ptr<slice::Slice> s_;
};

TEST_F(CotsFixture, ConnectsOnTestPlmnWithCompatibleOs) {
  CotsUe phone(CotsModel{}, s_->subscriber(0));
  const OtaOutcome outcome =
      phone.connect({s_->gnb().cell()}, s_->gnbsim());
  EXPECT_EQ(outcome, OtaOutcome::kConnected);
  EXPECT_EQ(phone.network_name(), "Test1-1 - OpenAirInterface");
}

TEST_F(CotsFixture, CustomPlmnNotDetected) {
  // Paper §V-B6: "if custom mobile country or network codes were used,
  // the device would be unable to detect the OAI gNB".
  CotsUe phone(CotsModel{}, s_->subscriber(0));
  CellConfig custom = s_->gnb().cell();
  custom.plmn = nf::Plmn{"123", "45"};
  EXPECT_EQ(phone.connect({custom}, s_->gnbsim()),
            OtaOutcome::kNoCellDetected);
}

TEST_F(CotsFixture, IncompatibleOsBuildFails) {
  CotsModel model;
  model.os_version = "Oxygen 13.1.0.513";  // newer build, not validated
  CotsUe phone(model, s_->subscriber(0));
  EXPECT_EQ(phone.connect({s_->gnb().cell()}, s_->gnbsim()),
            OtaOutcome::kOsIncompatible);
}

TEST_F(CotsFixture, BadSimFailsRegistration) {
  UsimConfig usim = s_->subscriber(0);
  Bytes bad_k = usim.k.reveal_for_test();
  bad_k[5] ^= 0xff;
  usim.k = SecretBytes(std::move(bad_k));
  CotsUe phone(CotsModel{}, usim);
  EXPECT_EQ(phone.connect({s_->gnb().cell()}, s_->gnbsim()),
            OtaOutcome::kRegistrationFailed);
}

TEST(OtaOutcomeNames, AllNamed) {
  EXPECT_STREQ(ota_outcome_name(OtaOutcome::kConnected), "connected");
  EXPECT_STREQ(ota_outcome_name(OtaOutcome::kNoCellDetected),
               "no cell detected");
}

}  // namespace
}  // namespace shield5g::ran
