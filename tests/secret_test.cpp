// Secret-taint layer: zeroize-on-destruct, the declassification gate
// (including the enclave-grade negative paths), constant-time equality
// and the compile-time sink bans from common/secret.h.
#include "common/secret.h"

#include <gtest/gtest.h>

#include <array>
#include <new>
#include <sstream>
#include <type_traits>
#include <utility>

#include "common/hex.h"
#include "common/log.h"
#include "common/stats.h"
#include "json/json.h"
#include "sgx/enclave_context.h"
#include "sgx/machine.h"
#include "sim/clock.h"

namespace shield5g {
namespace {

// ---------------------------------------------------------------------
// Compile-time properties: the taint must not lower implicitly, and
// every serialization sink is a named deleted overload.
// ---------------------------------------------------------------------

static_assert(!std::is_convertible_v<SecretBytes, Bytes>,
              "SecretBytes must not lower to Bytes implicitly");
static_assert(!std::is_convertible_v<SecretBytes, ByteView>,
              "SecretBytes must not lower to ByteView implicitly");
static_assert(!std::is_convertible_v<SecretView, ByteView>,
              "SecretView must not lower to ByteView implicitly");
static_assert(!std::is_convertible_v<Secret<16>, Bytes>,
              "Secret<N> must not lower to Bytes implicitly");
static_assert(std::is_convertible_v<Bytes, SecretBytes>,
              "raising taint stays implicit");
static_assert(std::is_convertible_v<Bytes, SecretView>,
              "raising taint stays implicit");
static_assert(!std::is_constructible_v<json::Value, SecretBytes>,
              "json::Value(secret) is a deleted sink");
static_assert(!std::is_constructible_v<json::Value, SecretView>,
              "json::Value(secret view) is a deleted sink");

template <typename S, typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename S, typename T>
struct is_streamable<
    S, T,
    std::void_t<decltype(std::declval<S&>() << std::declval<const T&>())>>
    : std::true_type {};

// The acceptance-criterion leak, S5G_LOG(...) << kseaf, must not
// compile: LogStream's secret overloads are deleted, as is streaming a
// secret into any other stream type.
static_assert(!is_streamable<LogStream, SecretBytes>::value,
              "LOG << SecretBytes must fail to compile");
static_assert(!is_streamable<LogStream, SecretView>::value,
              "LOG << SecretView must fail to compile");
static_assert(!is_streamable<LogStream, Secret<32>>::value,
              "LOG << Secret<N> must fail to compile");
static_assert(is_streamable<LogStream, int>::value,
              "LogStream still streams plain values");
static_assert(!is_streamable<std::ostringstream, SecretBytes>::value,
              "ostream << SecretBytes must fail to compile");

template <typename T, typename = void>
struct is_hex_encodable : std::false_type {};
template <typename T>
struct is_hex_encodable<
    T, std::void_t<decltype(hex_encode(std::declval<const T&>()))>>
    : std::true_type {};

static_assert(!is_hex_encodable<SecretBytes>::value,
              "hex_encode(secret) is a deleted sink");
static_assert(!is_hex_encodable<Secret<16>>::value,
              "hex_encode(Secret<N>) is a deleted sink");
static_assert(is_hex_encodable<Bytes>::value,
              "hex_encode(Bytes) stays available");

// ---------------------------------------------------------------------
// Zeroize on destruct / move
// ---------------------------------------------------------------------

TEST(SecretZeroize, FixedSecretScribbleAndInspect) {
  // Secret<N> keeps its key inline, so destroying a placement-new
  // instance lets us inspect the caller-owned storage afterwards
  // without touching freed memory (ASan-safe by construction).
  alignas(Secret<16>) std::array<unsigned char, sizeof(Secret<16>)> storage;
  storage.fill(0xEE);
  auto* secret = new (storage.data()) Secret<16>(ByteView(Bytes(16, 0x5A)));
  ASSERT_TRUE(ct_equal(secret->unsafe_bytes(), Bytes(16, 0x5A)));
  secret->~Secret<16>();
  for (unsigned char byte : storage) {
    EXPECT_NE(byte, 0x5A) << "key byte survived destruction";
  }
}

TEST(SecretZeroize, MoveConstructionWipesSource) {
  SecretBytes source(Bytes(16, 0x5A));
  SecretBytes dest(std::move(source));
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(dest.size(), 16u);
  EXPECT_TRUE(dest == Bytes(16, 0x5A));
}

TEST(SecretZeroize, MoveAssignmentWipesSource) {
  SecretBytes source(Bytes(32, 0x77));
  SecretBytes dest;
  dest = std::move(source);
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(dest.size(), 32u);
}

// ---------------------------------------------------------------------
// Constant-time equality surface
// ---------------------------------------------------------------------

TEST(SecretEquality, AgainstSecretsAndPlainBytes) {
  const SecretBytes a(Bytes(16, 0x11));
  const SecretBytes b(Bytes(16, 0x11));
  const SecretBytes c(Bytes(16, 0x22));
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a != c);
  // Rewritten candidates: plain bytes on either side.
  const Bytes plain(16, 0x11);
  EXPECT_TRUE(a == plain);
  EXPECT_TRUE(plain == a);
  EXPECT_TRUE(c != plain);
  // Length mismatch is a mismatch, not UB.
  EXPECT_TRUE(a != Bytes(15, 0x11));
}

// ---------------------------------------------------------------------
// Declassification gate + audit counters
// ---------------------------------------------------------------------

class DeclassifyGate : public ::testing::Test {
 protected:
  void SetUp() override { counters_reset(); }

  sim::VirtualClock clock_;
  sgx::Machine machine_{clock_};
  const SecretBytes key_{Bytes(16, 0x5A)};
};

TEST_F(DeclassifyGate, HostGradeReasonPassesWithoutContext) {
  const Bytes out = key_.declassify(DeclassifyReason::kTransport, nullptr);
  EXPECT_EQ(out, Bytes(16, 0x5A));
  EXPECT_EQ(counter_value("secret.declassify.transport.host"), 1u);
  EXPECT_EQ(counter_value("secret.declassify.denied"), 0u);
}

TEST_F(DeclassifyGate, UnsealWithoutContextThrows) {
  EXPECT_THROW(key_.declassify(DeclassifyReason::kUnseal, nullptr),
               std::logic_error);
  EXPECT_EQ(counter_value("secret.declassify.denied"), 1u);
  EXPECT_EQ(counter_value("secret.declassify.denied.unseal"), 1u);
  EXPECT_EQ(counter_value("secret.declassify.unseal.shielded"), 0u);
}

TEST_F(DeclassifyGate, UnsealUnderContainerIsolationThrows) {
  // The paper's non-SGX baseline: a container deployment must not be
  // able to re-expose enclave-grade (sealed) key material (KI 27).
  const auto ctx = sgx::EnclaveContext::container("eudm-aka");
  EXPECT_THROW(key_.declassify(DeclassifyReason::kUnseal, &ctx),
               std::logic_error);
  EXPECT_EQ(counter_value("secret.declassify.denied.unseal"), 1u);
}

TEST_F(DeclassifyGate, UnsealInsideEnclaveBackedContextSucceeds) {
  auto& enclave = machine_.create_enclave(
      sgx::EnclaveConfig{"eudm-aka", 64ULL << 20, 4, false});
  const auto ctx = sgx::EnclaveContext::enclave_backed("eudm-aka", &enclave);
  const Bytes out = key_.declassify(DeclassifyReason::kUnseal, &ctx);
  EXPECT_EQ(out, Bytes(16, 0x5A));
  EXPECT_EQ(counter_value("secret.declassify.unseal.shielded"), 1u);
  EXPECT_EQ(counter_value("secret.declassify.denied"), 0u);
}

TEST_F(DeclassifyGate, ShieldedVersusHostCountersSplitByBacking) {
  auto& enclave = machine_.create_enclave(
      sgx::EnclaveConfig{"eausf-aka", 64ULL << 20, 4, false});
  const auto shielded =
      sgx::EnclaveContext::enclave_backed("eausf-aka", &enclave);
  const auto host = sgx::EnclaveContext::container("ausf");
  (void)key_.declassify(DeclassifyReason::kTransport, &shielded);
  (void)key_.declassify(DeclassifyReason::kTransport, &host);
  (void)key_.declassify(DeclassifyReason::kTransport, &host);
  EXPECT_EQ(counter_value("secret.declassify.transport.shielded"), 1u);
  EXPECT_EQ(counter_value("secret.declassify.transport.host"), 2u);
}

TEST_F(DeclassifyGate, SecretViewAndFixedSecretShareTheGate) {
  const Secret<32> fixed{std::array<std::uint8_t, 32>{}};
  EXPECT_THROW(fixed.declassify(DeclassifyReason::kUnseal, nullptr),
               std::logic_error);
  const SecretView view(key_);
  EXPECT_THROW(view.declassify(DeclassifyReason::kUnseal, nullptr),
               std::logic_error);
  EXPECT_EQ(counter_value("secret.declassify.denied"), 2u);
}

TEST_F(DeclassifyGate, ReasonNamesAndGrades) {
  EXPECT_STREQ(declassify_reason_name(DeclassifyReason::kTransport),
               "transport");
  EXPECT_STREQ(declassify_reason_name(DeclassifyReason::kUnseal), "unseal");
  EXPECT_TRUE(declassify_requires_enclave(DeclassifyReason::kUnseal));
  EXPECT_FALSE(declassify_requires_enclave(DeclassifyReason::kTransport));
  EXPECT_FALSE(declassify_requires_enclave(DeclassifyReason::kProvisioning));
}

// ---------------------------------------------------------------------
// Taint plumbing helpers
// ---------------------------------------------------------------------

TEST(SecretPlumbing, ToSecretCapturesView) {
  const Bytes raw{1, 2, 3, 4};
  const SecretBytes owned = to_secret(SecretView(raw));
  EXPECT_TRUE(owned == raw);
}

TEST(SecretPlumbing, FixedSecretSizeChecks) {
  EXPECT_THROW(Secret<16>(ByteView(Bytes(15, 0))), std::invalid_argument);
  const Secret<4> s(ByteView(Bytes{9, 9, 9, 9}));
  EXPECT_EQ(Secret<4>::size(), 4u);
  EXPECT_TRUE(s == Secret<4>(ByteView(Bytes{9, 9, 9, 9})));
}

}  // namespace
}  // namespace shield5g
