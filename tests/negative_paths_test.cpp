// Negative-path coverage for every SBI endpoint: malformed JSON, missing
// fields, wrong sizes and out-of-order operations must produce clean
// 4xx/5xx responses — never crashes or silent acceptance.
#include <gtest/gtest.h>

#include "json/json.h"
#include "nf/sbi.h"
#include "paka/aka_amf.h"
#include "paka/aka_ausf.h"
#include "paka/aka_udm.h"
#include "slice/slice.h"

namespace shield5g {
namespace {

class NegativeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    slice::SliceConfig cfg;
    cfg.mode = slice::IsolationMode::kContainer;
    cfg.subscriber_count = 1;
    cfg.keep_alive = true;
    slice_ = std::make_unique<slice::Slice>(cfg);
    slice_->create();
  }

  int post(const std::string& to, const std::string& path,
           const std::string& body) {
    net::HttpRequest req;
    req.method = net::Method::kPost;
    req.path = path;
    req.headers.set("content-type", "application/json");
    req.body = body;
    return slice_->bus().request("test", to, req).response.status;
  }

  std::unique_ptr<slice::Slice> slice_;
};

TEST_F(NegativeFixture, UdmGenerateAuthDataRejections) {
  const std::string path = "/nudm-ueau/v1/generate-auth-data";
  EXPECT_EQ(post("udm", path, "not json"), 400);
  EXPECT_EQ(post("udm", path, "{}"), 400);  // missing SNN
  EXPECT_EQ(post("udm", path, R"({"servingNetworkName":"x"})"), 400);
  EXPECT_EQ(post("udm", path,
                 R"({"servingNetworkName":"x","suci":"garbage"})"),
            403);  // undecodable identity
  EXPECT_EQ(post("udm", path,
                 R"({"servingNetworkName":"x","supi":"999990000000000"})"),
            404);  // unknown subscriber
}

TEST_F(NegativeFixture, UdmResyncRejections) {
  const std::string path = "/nudm-ueau/v1/resync";
  EXPECT_EQ(post("udm", path, "{]"), 400);
  EXPECT_EQ(post("udm", path, R"({"supi":"001010100000000"})"), 400);
  EXPECT_EQ(post("udm", path,
                 R"({"supi":"001010100000000","rand":"00","auts":"zz"})"),
            400);  // malformed hex
}

TEST_F(NegativeFixture, AusfRejections) {
  const std::string path = "/nausf-auth/v1/ue-authentications";
  EXPECT_EQ(post("ausf", path, "x"), 400);
  EXPECT_EQ(post("ausf", path, R"({"servingNetworkName":
      "5G:mnc001.mcc001.3gppnetwork.org"})"),
            400);  // no identity
  // Confirmation against a context that never existed.
  net::HttpRequest confirm = nf::json_put(
      "/nausf-auth/v1/ue-authentications/authctx-999/5g-aka-confirmation",
      json::parse(R"({"resStar":"00112233445566778899aabbccddeeff"})"));
  EXPECT_EQ(slice_->bus().request("test", "ausf", confirm).response.status,
            404);
}

TEST_F(NegativeFixture, SmfRejections) {
  const std::string path = "/nsmf-pdusession/v1/sm-contexts";
  EXPECT_EQ(post("smf", path, "null"), 400);
  EXPECT_EQ(post("smf", path, R"({"supi":"001010100000000"})"), 400);
  net::HttpRequest del;
  del.method = net::Method::kDelete;
  del.path = "/nsmf-pdusession/v1/sm-contexts/001010100000000/9";
  EXPECT_EQ(slice_->bus().request("test", "smf", del).response.status, 404);
}

TEST_F(NegativeFixture, PakaEndpointRejections) {
  // eUDM: valid JSON, wrong parameter sizes.
  json::Object body;
  body["supi"] = "001010100000000";
  body["opc"] = nf::hex_field(Bytes(8, 1));  // 8 bytes, not 16
  body["rand"] = nf::hex_field(Bytes(16, 2));
  body["sqn"] = nf::hex_field(Bytes(6, 3));
  body["amfId"] = nf::hex_field(Bytes(2, 4));
  body["snn"] = "5G:mnc001.mcc001.3gppnetwork.org";
  EXPECT_EQ(post("eudm-aka", "/paka/v1/generate-av",
                 json::Value(body).dump()),
            400);

  // eAUSF: truncated K_AUSF.
  json::Object se;
  se["rand"] = nf::hex_field(Bytes(16, 1));
  se["xresStar"] = nf::hex_field(Bytes(16, 2));
  se["snn"] = "x";
  se["kausf"] = nf::hex_field(Bytes(16, 3));  // 16 bytes, not 32
  EXPECT_EQ(post("eausf-aka", "/paka/v1/derive-se",
                 json::Value(se).dump()),
            400);

  // eAMF: missing SUPI.
  json::Object kamf_req;
  kamf_req["kseaf"] = nf::hex_field(Bytes(32, 1));
  EXPECT_EQ(post("eamf-aka", "/paka/v1/derive-kamf",
                 json::Value(kamf_req).dump()),
            400);
}

TEST_F(NegativeFixture, MethodAndRouteMismatches) {
  // GET on a POST-only endpoint.
  EXPECT_EQ(slice_->bus()
                .request("test", "udm",
                         nf::sbi_get("/nudm-ueau/v1/generate-auth-data"))
                .response.status,
            405);
  // Entirely unknown route.
  EXPECT_EQ(slice_->bus()
                .request("test", "udm", nf::sbi_get("/nope/v1/none"))
                .response.status,
            404);
}

TEST_F(NegativeFixture, AmfIgnoresOutOfOrderNas) {
  // An AuthenticationResponse without a pending challenge is dropped.
  nf::NasMessage msg;
  msg.type = nf::NasType::kAuthenticationResponse;
  msg.set(nf::NasIe::kResStar, Bytes(16, 1));
  EXPECT_EQ(slice_->amf().handle_uplink(99, msg.encode()), std::nullopt);
  // A SecurityModeComplete with no security context fails the MAC.
  const auto sec = nf::SecuredNas::protect(msg, Bytes(16, 2), 0, false);
  EXPECT_EQ(slice_->amf().handle_uplink(99, sec.encode()), std::nullopt);
}

TEST_F(NegativeFixture, FailuresLeaveSliceServiceable) {
  // After the whole barrage above, a legitimate UE still registers.
  EXPECT_TRUE(slice_->register_subscriber(0, true).session_up);
}

}  // namespace
}  // namespace shield5g
