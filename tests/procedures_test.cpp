// Tests for the extended NAS procedures and operational features:
// NAS ciphering, GUTI re-registration, Identity Request fallback,
// deregistration, bridge fault injection and RA-TLS identity binding.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "nf/nas.h"
#include "ran/ue.h"
#include "sgx/attestation.h"
#include "slice/slice.h"

namespace shield5g {
namespace {

using slice::IsolationMode;
using slice::Slice;
using slice::SliceConfig;

// ---------------------------------------------------------------------
// NAS ciphering
// ---------------------------------------------------------------------

class NasCipherTest : public ::testing::Test {
 protected:
  Bytes kint_ = Bytes(16, 0x11);
  Bytes kenc_ = Bytes(16, 0x22);

  nf::NasMessage sample() {
    nf::NasMessage msg;
    msg.type = nf::NasType::kRegistrationAccept;
    msg.set(nf::NasIe::kGuti, to_bytes("5g-guti-00101-01-001-00001000"));
    return msg;
  }
};

TEST_F(NasCipherTest, CipheredRoundTrip) {
  const auto sec =
      nf::SecuredNas::protect_ciphered(sample(), kint_, kenc_, 5, true);
  EXPECT_TRUE(sec.ciphered);
  const auto decoded = nf::SecuredNas::decode(sec.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto inner = decoded->open(kint_, kenc_);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->type, nf::NasType::kRegistrationAccept);
  EXPECT_EQ(to_string(inner->at(nf::NasIe::kGuti)),
            "5g-guti-00101-01-001-00001000");
}

TEST_F(NasCipherTest, CiphertextHidesContent) {
  const auto sec =
      nf::SecuredNas::protect_ciphered(sample(), kint_, kenc_, 5, true);
  const std::string wire = to_string(ByteView(sec.encode()));
  EXPECT_EQ(wire.find("5g-guti"), std::string::npos);
  // The integrity-only form, by contrast, carries the plaintext.
  const auto plain = nf::SecuredNas::protect(sample(), kint_, 5, true);
  EXPECT_NE(to_string(ByteView(plain.encode())).find("5g-guti"),
            std::string::npos);
}

TEST_F(NasCipherTest, WrongEncKeyYieldsGarbage) {
  const auto sec =
      nf::SecuredNas::protect_ciphered(sample(), kint_, kenc_, 5, true);
  // MAC verifies (integrity key right) but the deciphered bytes do not
  // decode as a NAS message.
  EXPECT_FALSE(sec.open(kint_, Bytes(16, 0x99)).has_value());
}

TEST_F(NasCipherTest, VerifyRefusesCipheredPayloads) {
  const auto sec =
      nf::SecuredNas::protect_ciphered(sample(), kint_, kenc_, 5, true);
  EXPECT_FALSE(sec.verify(kint_).has_value());  // must use open()
  EXPECT_TRUE(sec.open(kint_, kenc_).has_value());
}

TEST_F(NasCipherTest, KeystreamBoundToCountAndDirection) {
  const Bytes data = to_bytes("same plaintext");
  const Bytes a = nf::nas_cipher(kenc_, 1, true, data);
  const Bytes b = nf::nas_cipher(kenc_, 2, true, data);
  const Bytes c = nf::nas_cipher(kenc_, 1, false, data);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(nf::nas_cipher(kenc_, 1, true, a), data);  // involution
}

// ---------------------------------------------------------------------
// GUTI re-registration / identity request / deregistration
// ---------------------------------------------------------------------

class ProcedureFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SliceConfig cfg;
    cfg.mode = IsolationMode::kContainer;
    cfg.subscriber_count = 2;
    slice_ = std::make_unique<Slice>(cfg);
    slice_->create();
  }

  std::unique_ptr<Slice> slice_;
};

TEST_F(ProcedureFixture, GutiReregistrationSkipsAka) {
  ran::UeDevice ue(slice_->subscriber(0), 1);
  ASSERT_TRUE(slice_->gnbsim().register_ue(ue, true).session_up);
  const std::string first_guti = ue.guti();
  const auto av_count = slice_->udm().av_generated_count();

  const auto again = slice_->gnbsim().reregister_ue(ue, true);
  EXPECT_TRUE(again.session_up);
  EXPECT_EQ(slice_->amf().guti_reregistrations(), 1u);
  // No fresh authentication vector was generated.
  EXPECT_EQ(slice_->udm().av_generated_count(), av_count);
  // A fresh GUTI is issued.
  EXPECT_NE(ue.guti(), first_guti);
  // Re-registration is faster: no AKA chain, fewer NAS rounds.
  EXPECT_LT(again.message_rounds, 5);
}

TEST_F(ProcedureFixture, UnknownGutiFallsBackToIdentityRequest) {
  ran::UeDevice ue(slice_->subscriber(0), 2);
  ASSERT_TRUE(slice_->gnbsim().register_ue(ue, true).session_up);

  // AMF restart: all contexts lost, the UE's GUTI is now stale.
  slice_->amf().flush_contexts();
  const auto again = slice_->gnbsim().reregister_ue(ue, true);
  EXPECT_TRUE(again.session_up);
  EXPECT_EQ(slice_->amf().identity_requests(), 1u);
  EXPECT_EQ(slice_->amf().guti_reregistrations(), 0u);
  // The fallback ran a full AKA.
  EXPECT_GE(slice_->udm().av_generated_count(), 2u);
}

TEST_F(ProcedureFixture, DeregistrationReleasesEverything) {
  ran::UeDevice ue(slice_->subscriber(0), 3);
  const auto ran_ue_id = slice_->gnb().attach_ue();
  std::optional<Bytes> uplink = ue.start_registration();
  while (uplink) {
    const auto down = slice_->gnb().deliver_uplink(ran_ue_id, *uplink);
    if (!down) break;
    uplink = ue.handle_downlink(*down);
  }
  uplink = ue.request_pdu_session();
  while (uplink) {
    const auto down = slice_->gnb().deliver_uplink(ran_ue_id, *uplink);
    if (!down) break;
    uplink = ue.handle_downlink(*down);
  }
  ASSERT_EQ(ue.state(), ran::UeNasState::kSessionUp);
  ASSERT_EQ(slice_->upf().session_count(), 1u);

  const auto dereg = ue.request_deregistration();
  const auto accept = slice_->gnb().deliver_uplink(ran_ue_id, dereg);
  ASSERT_TRUE(accept.has_value());
  EXPECT_EQ(ue.handle_downlink(*accept), std::nullopt);
  EXPECT_EQ(ue.state(), ran::UeNasState::kIdle);
  EXPECT_TRUE(ue.guti().empty());
  EXPECT_EQ(slice_->amf().deregistrations(), 1u);
  EXPECT_EQ(slice_->upf().session_count(), 0u);  // PDU session released
  EXPECT_EQ(slice_->amf().ue_state(ran_ue_id),
            nf::UeState::kDeregistered);
}

TEST_F(ProcedureFixture, ReregistrationWithoutPriorSessionIsFreshAka) {
  ran::UeDevice ue(slice_->subscriber(1), 4);
  // Never registered: start_reregistration degrades to registration.
  const auto result = slice_->gnbsim().reregister_ue(ue, true);
  EXPECT_TRUE(result.session_up);
  EXPECT_EQ(slice_->amf().guti_reregistrations(), 0u);
}

TEST_F(ProcedureFixture, GutiReregistrationWorksUnderSgx) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kSgx;
  cfg.subscriber_count = 1;
  Slice sgx_slice(cfg);
  sgx_slice.create();
  ran::UeDevice ue(sgx_slice.subscriber(0), 5);
  ASSERT_TRUE(sgx_slice.gnbsim().register_ue(ue, true).session_up);
  EXPECT_TRUE(sgx_slice.gnbsim().reregister_ue(ue, true).session_up);
  EXPECT_EQ(sgx_slice.amf().guti_reregistrations(), 1u);
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

TEST_F(ProcedureFixture, CorruptedRecordsFailCleanly) {
  net::Bus::FaultPlan faults;
  faults.corrupt_record_prob = 1.0;
  slice_->bus().set_fault_plan(faults);
  const auto result = slice_->register_subscriber(0, true);
  EXPECT_FALSE(result.registered);
  EXPECT_GT(slice_->bus().faults_injected(), 0u);
  // Recovery: clear the faults and the same subscriber registers.
  slice_->bus().set_fault_plan({});
  EXPECT_TRUE(slice_->register_subscriber(0, true).session_up);
}

TEST_F(ProcedureFixture, DroppedResponsesSurfaceAsTimeouts) {
  net::Bus::FaultPlan faults;
  faults.drop_response_prob = 1.0;
  slice_->bus().set_fault_plan(faults);
  const sim::Nanos t0 = slice_->clock().now();
  const auto result = slice_->register_subscriber(0, true);
  EXPECT_FALSE(result.registered);
  // The retransmission timeout was charged.
  EXPECT_GT(slice_->clock().now() - t0, 150 * sim::kMillisecond);
}

TEST_F(ProcedureFixture, OccasionalCorruptionDegradesGracefully) {
  net::Bus::FaultPlan faults;
  faults.corrupt_record_prob = 0.02;
  slice_->bus().set_fault_plan(faults);
  // Some registrations may fail; none may crash or wedge the slice.
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    ok += slice_->register_subscriber(i % 2, true).session_up ? 1 : 0;
  }
  EXPECT_GT(ok, 0);
}

// ---------------------------------------------------------------------
// RA-TLS identity binding
// ---------------------------------------------------------------------

TEST(RaTls, IdentityQuoteBindsTlsKey) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kSgx;
  cfg.subscriber_count = 1;
  Slice s(cfg);
  s.create();

  const auto quote = s.eudm()->identity_quote();
  const auto identity = s.bus().server_identity("eudm-aka");
  ASSERT_TRUE(identity.has_value());
  EXPECT_EQ(quote.report_data, crypto::Sha256::digest(*identity));

  const sgx::AttestationVerifier verifier(
      Bytes(s.machine().attestation_key().begin(),
            s.machine().attestation_key().end()));
  EXPECT_TRUE(verifier.verify(
      quote, s.eudm()->runtime()->enclave().measurement()));

  // A swapped TLS key (MITM trying to front the module) breaks the
  // binding even though the quote itself is genuine.
  Rng rng(9);
  const auto other = crypto::x25519_keypair(rng.bytes(32));
  EXPECT_NE(quote.report_data, crypto::Sha256::digest(other.public_key));
}

TEST(RaTls, SliceCreationUsesIdentityQuotes) {
  SliceConfig cfg;
  cfg.mode = IsolationMode::kSgx;
  cfg.subscriber_count = 1;
  Slice s(cfg);
  const auto creation = s.create();
  EXPECT_TRUE(creation.attestation_ok);
}

}  // namespace
}  // namespace shield5g
