// Scalar-vs-accelerated kernel parity.
//
// The dispatch layer (crypto/cpu_dispatch.h) promises that backend
// choice is invisible: identical bytes out, identical op counts, on
// every input. These tests pin each backend in turn and diff the
// results — published vectors for anchoring, random inputs for breadth.
// On machines without AES-NI/SHA-NI the "accelerated" runs fall back to
// scalar and the comparisons degenerate to self-consistency, so the
// suite stays green in forced-fallback CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/hmac_sha256.h"
#include "crypto/op_count.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "crypto/x25519_batch.h"
#include "crypto/x25519_internal.h"

namespace shield5g::crypto {
namespace {

// Pins a backend for the scope of one test body.
// Save/restore, not force/clear: with_backend() nests inside outer
// ForcedBackend scopes (CombInterplay computes its scalar reference
// under a forced-accel guard), and a clearing destructor would hand
// control back to SHIELD5G_CRYPTO_BACKEND mid-test — the crypto-parity
// CI stage runs this suite with that env var pinned both ways.
class ForcedBackend {
 public:
  explicit ForcedBackend(CryptoBackend b) : prev_(current()) {
    force_backend(b);
    current() = State{true, b};
  }
  ~ForcedBackend() {
    current() = prev_;
    if (prev_.forced) {
      force_backend(prev_.backend);
    } else {
      clear_forced_backend();
    }
  }

 private:
  struct State {
    bool forced = false;
    CryptoBackend backend = CryptoBackend::kScalar;
  };
  static State& current() {
    static State s;
    return s;
  }
  State prev_;
};

template <typename Fn>
auto with_backend(CryptoBackend b, Fn&& fn) {
  ForcedBackend guard(b);
  return fn();
}

// ---------------------------------------------------------------------
// AES-128
// ---------------------------------------------------------------------

TEST(KernelParity, Aes128Fips197BothBackends) {
  for (const auto backend :
       {CryptoBackend::kScalar, CryptoBackend::kAccelerated}) {
    ForcedBackend guard(backend);
    const Aes128Ctx aes(h2b("000102030405060708090a0b0c0d0e0f"));
    EXPECT_EQ(hex_encode(aes.encrypt_block(
                  h2b("00112233445566778899aabbccddeeff"))),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
    EXPECT_EQ(hex_encode(aes.decrypt_block(
                  h2b("69c4e0d86a7b0430d8cdb78070b4c55a"))),
              "00112233445566778899aabbccddeeff");
  }
}

TEST(KernelParity, Aes128BlockRandomInputs) {
  Rng rng(0xae5'0001);
  for (int i = 0; i < 64; ++i) {
    const Bytes key = rng.bytes(16);
    const Bytes pt = rng.bytes(16);
    const auto scalar_ct = with_backend(CryptoBackend::kScalar, [&] {
      return Aes128Ctx(key).encrypt_block(pt);
    });
    const auto accel_ct = with_backend(CryptoBackend::kAccelerated, [&] {
      return Aes128Ctx(key).encrypt_block(pt);
    });
    ASSERT_EQ(hex_encode(scalar_ct), hex_encode(accel_ct)) << "block " << i;
    const auto accel_pt = with_backend(CryptoBackend::kAccelerated, [&] {
      return Aes128Ctx(key).decrypt_block(scalar_ct);
    });
    ASSERT_EQ(Bytes(accel_pt.begin(), accel_pt.end()), pt);
  }
}

TEST(KernelParity, Aes128CtrRandomLengths) {
  Rng rng(0xae5'0002);
  // Lengths straddle the 4-block fast path, the single-block loop, and
  // partial final blocks.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{15}, std::size_t{16},
        std::size_t{17}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{257}, std::size_t{1024}, std::size_t{1500}}) {
    const Bytes key = rng.bytes(16);
    const Bytes icb = rng.bytes(16);
    const Bytes data = rng.bytes(len);
    const auto scalar_out = with_backend(CryptoBackend::kScalar, [&] {
      return aes128_ctr(key, icb, data);
    });
    const auto accel_out = with_backend(CryptoBackend::kAccelerated, [&] {
      return aes128_ctr(key, icb, data);
    });
    ASSERT_EQ(hex_encode(scalar_out), hex_encode(accel_out)) << "len " << len;
  }
}

TEST(KernelParity, Aes128CtrCounterWraparound) {
  // Counter blocks near 2^64 and 2^128 exercise the carry into the high
  // qword — the exact spot a lane-swapped counter would corrupt.
  const Bytes key = h2b("2b7e151628aed2a6abf7158809cf4f3c");
  for (const std::string icb_hex :
       {"00000000000000000000000000000000", "0000000000000000fffffffffffffffe",
        "0000000000000000ffffffffffffffff", "fffffffffffffffffffffffffffffffe",
        "ffffffffffffffffffffffffffffffff"}) {
    const Bytes icb = h2b(icb_hex);
    const Bytes data(96, 0);  // six blocks of zeros: output = keystream
    const auto scalar_out = with_backend(CryptoBackend::kScalar, [&] {
      return aes128_ctr(key, icb, data);
    });
    const auto accel_out = with_backend(CryptoBackend::kAccelerated, [&] {
      return aes128_ctr(key, icb, data);
    });
    ASSERT_EQ(hex_encode(scalar_out), hex_encode(accel_out)) << icb_hex;
  }
}

TEST(KernelParity, Aes128OpCountsMatchAcrossBackends) {
  Rng rng(0xae5'0003);
  const Bytes key = rng.bytes(16);
  const Bytes icb = rng.bytes(16);
  const Bytes data = rng.bytes(100);  // 7 blocks incl. partial
  auto count = [&](CryptoBackend b) {
    ForcedBackend guard(b);
    const auto before = op_counts().aes_blocks;
    const Aes128Ctx aes(key);
    (void)aes.encrypt_block(ByteView(data.data(), 16));
    (void)aes128_ctr(aes, icb, data);
    return op_counts().aes_blocks - before;
  };
  EXPECT_EQ(count(CryptoBackend::kScalar), count(CryptoBackend::kAccelerated));
}

// ---------------------------------------------------------------------
// SHA-256 / HMAC
// ---------------------------------------------------------------------

TEST(KernelParity, Sha256Fips180BothBackends) {
  const struct {
    const char* msg;
    const char* digest;
  } kVectors[] = {
      {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
  };
  for (const auto backend :
       {CryptoBackend::kScalar, CryptoBackend::kAccelerated}) {
    ForcedBackend guard(backend);
    for (const auto& v : kVectors) {
      const std::string msg = v.msg;
      const auto digest =
          Sha256::digest(ByteView(reinterpret_cast<const std::uint8_t*>(
                                      msg.data()),
                                  msg.size()));
      EXPECT_EQ(hex_encode(digest), v.digest);
    }
  }
}

TEST(KernelParity, Sha256RandomLengths) {
  Rng rng(0x50a0001);
  for (std::size_t len = 0; len <= 300; len += 7) {
    const Bytes data = rng.bytes(len);
    const auto scalar_digest = with_backend(CryptoBackend::kScalar, [&] {
      return Sha256::digest(data);
    });
    const auto accel_digest = with_backend(CryptoBackend::kAccelerated, [&] {
      return Sha256::digest(data);
    });
    ASSERT_EQ(hex_encode(scalar_digest), hex_encode(accel_digest))
        << "len " << len;
  }
}

TEST(KernelParity, Sha256IncrementalUpdateSplits) {
  // The streaming path (partial buffer top-up + bulk blocks + tail)
  // must agree with one-shot hashing on both backends.
  Rng rng(0x50a0002);
  const Bytes data = rng.bytes(500);
  for (const auto backend :
       {CryptoBackend::kScalar, CryptoBackend::kAccelerated}) {
    ForcedBackend guard(backend);
    const auto oneshot = Sha256::digest(data);
    for (const std::size_t split : {std::size_t{1}, std::size_t{63},
                                    std::size_t{64}, std::size_t{65},
                                    std::size_t{129}, std::size_t{499}}) {
      Sha256 h;
      h.update(ByteView(data.data(), split));
      h.update(ByteView(data.data() + split, data.size() - split));
      ASSERT_EQ(hex_encode(h.finalize()), hex_encode(oneshot))
          << "split " << split;
    }
  }
}

TEST(KernelParity, HmacSha256TwoPartMatchesConcat) {
  Rng rng(0x4a'c0de);
  for (int i = 0; i < 16; ++i) {
    const Bytes key = rng.bytes(i * 5);  // includes >64-byte keys
    const Bytes p1 = rng.bytes(13);
    const Bytes p2 = rng.bytes(200);
    Bytes joined = p1;
    joined.insert(joined.end(), p2.begin(), p2.end());
    for (const auto backend :
         {CryptoBackend::kScalar, CryptoBackend::kAccelerated}) {
      ForcedBackend guard(backend);
      ASSERT_EQ(hex_encode(hmac_sha256(key, p1, p2)),
                hex_encode(hmac_sha256(key, joined)));
      ASSERT_EQ(hex_encode(hmac_sha256_trunc(key, p1, p2, 16)),
                hex_encode(hmac_sha256_trunc(key, joined, 16)));
    }
  }
}

TEST(KernelParity, Sha256OpCountsMatchAcrossBackends) {
  Rng rng(0x50a0003);
  const Bytes data = rng.bytes(333);
  auto count = [&](CryptoBackend b) {
    ForcedBackend guard(b);
    const auto before = op_counts().sha256_blocks;
    (void)Sha256::digest(data);
    return op_counts().sha256_blocks - before;
  };
  EXPECT_EQ(count(CryptoBackend::kScalar), count(CryptoBackend::kAccelerated));
}

// ---------------------------------------------------------------------
// X25519: Montgomery ladder vs Edwards comb
// ---------------------------------------------------------------------

TEST(KernelParity, X25519CombMatchesLadderRfc7748Vectors) {
  const Bytes scalar1 =
      h2b("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes u1 =
      h2b("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  ASSERT_TRUE(detail::x25519_comb_liftable(u1));
  EXPECT_EQ(hex_encode(detail::x25519_ladder(scalar1, u1)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
  EXPECT_EQ(hex_encode(detail::x25519_comb_forced(scalar1, u1)),
            hex_encode(detail::x25519_ladder(scalar1, u1)));

  // The Diffie-Hellman vector's public keys are genuine curve points
  // (they come from the base point), so the comb serves them and must
  // reproduce the published shared secret.
  const Bytes a =
      h2b("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes b_pub =
      h2b("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  ASSERT_TRUE(detail::x25519_comb_liftable(b_pub));
  const auto comb = detail::x25519_comb_forced(a, b_pub);
  EXPECT_EQ(hex_encode(comb),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
  EXPECT_EQ(hex_encode(comb), hex_encode(detail::x25519_ladder(a, b_pub)));
}

TEST(KernelParity, X25519CombMatchesLadderBasePoint) {
  Bytes base(32, 0);
  base[0] = 9;
  ASSERT_TRUE(detail::x25519_comb_liftable(base));
  Rng rng(0x25519'01);
  for (int i = 0; i < 8; ++i) {
    const Bytes scalar = rng.bytes(32);
    const auto ladder = detail::x25519_ladder(scalar, base);
    const auto comb = detail::x25519_comb_forced(scalar, base);
    ASSERT_EQ(hex_encode(comb), hex_encode(ladder)) << "scalar " << i;
  }
}

TEST(KernelParity, X25519CombMatchesLadderRandomPoints) {
  // Random u-coordinates land on the curve or its twist roughly evenly;
  // liftable ones must agree with the ladder, twist ones must be
  // refused (the dispatcher then keeps the ladder).
  Rng rng(0x25519'02);
  int liftable = 0, twist = 0;
  for (int i = 0; i < 24; ++i) {
    const Bytes u = rng.bytes(32);
    const Bytes scalar = rng.bytes(32);
    if (detail::x25519_comb_liftable(u)) {
      ++liftable;
      const auto ladder = detail::x25519_ladder(scalar, u);
      const auto comb = detail::x25519_comb_forced(scalar, u);
      ASSERT_EQ(hex_encode(comb), hex_encode(ladder)) << "point " << i;
    } else {
      ++twist;
      EXPECT_THROW(detail::x25519_comb_forced(scalar, u),
                   std::invalid_argument);
    }
  }
  EXPECT_GT(liftable, 0);
  EXPECT_GT(twist, 0);
}

TEST(KernelParity, X25519SmallOrderInputsAgree) {
  // u = 0 and u = 1 generate low-order subgroups; both paths must map
  // them to the same (all-zero or otherwise) outputs.
  Rng rng(0x25519'03);
  for (const std::uint8_t first : {0, 1}) {
    Bytes u(32, 0);
    u[0] = first;
    const Bytes scalar = rng.bytes(32);
    const auto ladder = detail::x25519_ladder(scalar, u);
    if (detail::x25519_comb_liftable(u)) {
      const auto comb = detail::x25519_comb_forced(scalar, u);
      EXPECT_EQ(hex_encode(comb), hex_encode(ladder))
          << "u[0]=" << int(first);
    }
  }
}

TEST(KernelParity, X25519PublicPathCachesAndStaysBitIdentical) {
  detail::x25519_cache_reset();
  Rng rng(0x25519'04);
  const Bytes scalar = rng.bytes(32);
  // Scalar backend: pure ladder, never touches the cache.
  const auto reference = with_backend(CryptoBackend::kScalar, [&] {
    return x25519_public(scalar);
  });
  // Accelerated backend: the base point crosses the build threshold and
  // switches to the comb; outputs must not change at the switch.
  ForcedBackend guard(CryptoBackend::kAccelerated);
  for (int i = 0; i < 10; ++i) {
    const auto out = x25519_public(scalar);
    ASSERT_EQ(hex_encode(out), hex_encode(reference)) << "call " << i;
  }
  EXPECT_EQ(detail::x25519_cache_size(), 1u);
  detail::x25519_cache_reset();
}

TEST(KernelParity, X25519OpCountsMatchAcrossBackends) {
  detail::x25519_cache_reset();
  Rng rng(0x25519'05);
  const Bytes scalar = rng.bytes(32);
  auto count = [&](CryptoBackend b) {
    ForcedBackend guard(b);
    const auto before = op_counts().x25519_ops;
    for (int i = 0; i < 6; ++i) (void)x25519_public(scalar);
    return op_counts().x25519_ops - before;
  };
  EXPECT_EQ(count(CryptoBackend::kScalar), count(CryptoBackend::kAccelerated));
  detail::x25519_cache_reset();
}

// ---------------------------------------------------------------------
// X25519: 4-lane batched ladder vs scalar ladder
// ---------------------------------------------------------------------

// Pins a batch engine for one test body; on hosts without the AVX2 /
// IFMA kernels a kX4 or kIfma pin degrades toward scalar and the
// comparisons become self-consistency, same philosophy as the backend
// fallbacks above.
class ForcedBatchEngine {
 public:
  explicit ForcedBatchEngine(X25519BatchEngine e) {
    detail::force_batch_engine(e);
  }
  ~ForcedBatchEngine() { detail::clear_forced_batch_engine(); }
};

constexpr X25519BatchEngine kVectorEngines[] = {X25519BatchEngine::kX4,
                                                X25519BatchEngine::kIfma};

TEST(KernelParity, X25519BatchMatchesLadderRandom1k) {
  detail::x25519_cache_reset();
  ForcedBackend backend(CryptoBackend::kAccelerated);
  for (const auto vector_engine : kVectorEngines) {
    ForcedBatchEngine engine(vector_engine);
    Rng rng(0x25519'10);
    int zero_outputs = 0;
    for (int round = 0; round < 256; ++round) {
      Bytes scalars[4], points[4];
      X25519Key outs[4];
      X25519BatchItem items[4];
      for (int l = 0; l < 4; ++l) {
        scalars[l] = rng.bytes(32);
        points[l] = rng.bytes(32);
        // Sprinkle the edge cases across lanes: u = 0 and u = 1 (low
        // order, output must collapse to zero like the scalar ladder's),
        // u with the top bit set (RFC 7748 masking). Random points land
        // on the twist about half the time, so twist coverage is free.
        if (round % 16 == l) {
          std::fill(points[l].begin(), points[l].end(), std::uint8_t{0});
          if (l == 1) points[l][0] = 1;
          if (l == 2) points[l][31] = 0x80;
        }
        items[l] = X25519BatchItem{scalars[l], points[l], &outs[l]};
      }
      x25519_batch(items, 4);
      for (int l = 0; l < 4; ++l) {
        const auto oracle = detail::x25519_ladder(scalars[l], points[l]);
        ASSERT_EQ(hex_encode(outs[l]), hex_encode(oracle))
            << "engine " << x25519_batch_engine_name(vector_engine)
            << " round " << round << " lane " << l;
        if (outs[l] == X25519Key{}) ++zero_outputs;
      }
    }
    // The low-order lanes above must actually have exercised the
    // zero-denominator path through the lane-parallel inversion.
    EXPECT_GT(zero_outputs, 0);
  }
  detail::x25519_cache_reset();
}

TEST(KernelParity, X25519BatchPartialSizesMatchSerial) {
  detail::x25519_cache_reset();
  ForcedBackend backend(CryptoBackend::kAccelerated);
  for (const auto vector_engine : kVectorEngines) {
    ForcedBatchEngine engine(vector_engine);
    Rng rng(0x25519'11);
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
          std::size_t{7}, std::size_t{9}}) {
      std::vector<Bytes> scalars(n), points(n);
      std::vector<X25519Key> outs(n);
      std::vector<X25519BatchItem> items(n);
      for (std::size_t i = 0; i < n; ++i) {
        scalars[i] = rng.bytes(32);
        points[i] = rng.bytes(32);
        items[i] = X25519BatchItem{scalars[i], points[i], &outs[i]};
      }
      x25519_batch(items.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hex_encode(outs[i]),
                  hex_encode(detail::x25519_ladder(scalars[i], points[i])))
            << "engine " << x25519_batch_engine_name(vector_engine) << " n "
            << n << " item " << i;
      }
    }
  }
  detail::x25519_cache_reset();
}

TEST(KernelParity, X25519BatchEnginesAgreeAndRfcVectorHolds) {
  detail::x25519_cache_reset();
  ForcedBackend backend(CryptoBackend::kAccelerated);
  const Bytes scalar =
      h2b("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes u =
      h2b("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  Rng rng(0x25519'12);
  std::vector<Bytes> scalars{scalar}, points{u};
  for (int i = 1; i < 4; ++i) {
    scalars.push_back(rng.bytes(32));
    points.push_back(rng.bytes(32));
  }
  auto run = [&](X25519BatchEngine e) {
    ForcedBatchEngine guard(e);
    std::vector<X25519Key> outs(4);
    std::vector<X25519BatchItem> items(4);
    for (int i = 0; i < 4; ++i) {
      items[i] = X25519BatchItem{scalars[i], points[i], &outs[i]};
    }
    x25519_batch(items.data(), 4);
    return outs;
  };
  const auto via_scalar = run(X25519BatchEngine::kScalar);
  const auto via_x4 = run(X25519BatchEngine::kX4);
  const auto via_ifma = run(X25519BatchEngine::kIfma);
  EXPECT_EQ(hex_encode(via_scalar[0]),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(hex_encode(via_scalar[i]), hex_encode(via_x4[i])) << "lane " << i;
    ASSERT_EQ(hex_encode(via_scalar[i]), hex_encode(via_ifma[i]))
        << "lane " << i;
  }
  detail::x25519_cache_reset();
}

TEST(KernelParity, X25519BatchOpCountNeutral) {
  detail::x25519_cache_reset();
  ForcedBackend backend(CryptoBackend::kAccelerated);
  Rng rng(0x25519'13);
  std::vector<Bytes> scalars(7), points(7);
  for (int i = 0; i < 7; ++i) {
    scalars[i] = rng.bytes(32);
    points[i] = rng.bytes(32);
  }
  auto charge = [&](X25519BatchEngine e) {
    ForcedBatchEngine guard(e);
    std::vector<X25519Key> outs(7);
    std::vector<X25519BatchItem> items(7);
    for (int i = 0; i < 7; ++i) {
      items[i] = X25519BatchItem{scalars[i], points[i], &outs[i]};
    }
    const auto before = op_counts().x25519_ops;
    x25519_batch(items.data(), 7);
    return op_counts().x25519_ops - before;
  };
  // Every engine charges exactly what 7 serial x25519() calls would.
  EXPECT_EQ(charge(X25519BatchEngine::kScalar), 7u);
  EXPECT_EQ(charge(X25519BatchEngine::kX4), 7u);
  EXPECT_EQ(charge(X25519BatchEngine::kIfma), 7u);
  detail::x25519_cache_reset();
}

TEST(KernelParity, X25519BatchCombInterplayStaysBitIdentical) {
  // A batch mixing comb-served lanes (the graduated base point) with
  // ladder-bound lanes must stay bit-identical to the serial path, and
  // the batch's cache lookups must graduate points exactly like serial
  // calls do.
  detail::x25519_cache_reset();
  ForcedBackend backend(CryptoBackend::kAccelerated);
  ForcedBatchEngine engine(X25519BatchEngine::kX4);
  Bytes base(32, 0);
  base[0] = 9;
  Rng rng(0x25519'14);
  const Bytes scalar = rng.bytes(32);
  const auto reference = with_backend(CryptoBackend::kScalar, [&] {
    return x25519_public(scalar);
  });
  for (int round = 0; round < 6; ++round) {
    Bytes scalars[4], points[4];
    X25519Key outs[4];
    X25519BatchItem items[4];
    for (int l = 0; l < 4; ++l) {
      scalars[l] = l == 0 ? scalar : rng.bytes(32);
      points[l] = l == 0 ? base : rng.bytes(32);
      items[l] = X25519BatchItem{scalars[l], points[l], &outs[l]};
    }
    x25519_batch(items, 4);
    ASSERT_EQ(hex_encode(outs[0]), hex_encode(reference)) << "round " << round;
    for (int l = 1; l < 4; ++l) {
      ASSERT_EQ(hex_encode(outs[l]),
                hex_encode(detail::x25519_ladder(scalars[l], points[l])))
          << "round " << round << " lane " << l;
    }
  }
  // One sighting per batch: the base point crossed kBuildThreshold and
  // published its table, exactly as 6 serial calls would have.
  EXPECT_EQ(detail::x25519_cache_size(), 1u);
  detail::x25519_cache_reset();
}

TEST(KernelParity, X25519BatchEngineDispatchHonorsBackend) {
  // SHIELD5G_CRYPTO_BACKEND=scalar (here: a forced scalar backend) must
  // pull the batch engine down to scalar too — the reference path never
  // runs vector code.
  ForcedBackend backend(CryptoBackend::kScalar);
  EXPECT_EQ(x25519_batch_engine(), X25519BatchEngine::kScalar);
  EXPECT_STREQ(x25519_batch_engine_name(X25519BatchEngine::kScalar), "scalar");
  EXPECT_STREQ(x25519_batch_engine_name(X25519BatchEngine::kX4), "x4");
}

TEST(KernelParity, MultBatcherFlushesInOrder) {
  detail::x25519_cache_reset();
  ForcedBackend backend(CryptoBackend::kAccelerated);
  Rng rng(0x25519'15);
  std::vector<Bytes> scalars(6), points(6);
  std::vector<X25519Key> outs(6);
  MultBatcher batcher;
  for (int i = 0; i < 6; ++i) {
    scalars[i] = rng.bytes(32);
    points[i] = rng.bytes(32);
    batcher.enqueue(scalars[i], points[i], &outs[i]);
  }
  EXPECT_EQ(batcher.pending(), 6u);
  batcher.flush();
  EXPECT_EQ(batcher.pending(), 0u);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(hex_encode(outs[i]),
              hex_encode(detail::x25519_ladder(scalars[i], points[i])))
        << "item " << i;
  }
  batcher.flush();  // empty flush is a no-op
  detail::x25519_cache_reset();
}

// ---------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------

TEST(KernelParity, ForcedBackendRoundTrip) {
  force_backend(CryptoBackend::kScalar);
  EXPECT_EQ(active_backend(), CryptoBackend::kScalar);
  EXPECT_STREQ(backend_name(CryptoBackend::kScalar), "scalar");
  force_backend(CryptoBackend::kAccelerated);
  EXPECT_EQ(active_backend(), CryptoBackend::kAccelerated);
  EXPECT_STREQ(backend_name(CryptoBackend::kAccelerated), "accel");
  clear_forced_backend();
}

}  // namespace
}  // namespace shield5g::crypto
