// Handshake conformance/property suite for the resumable TLS family:
// ticket integrity (every byte MAC-covered), single-use + chaining,
// epoch rotation with a one-epoch grace window, expiry, zero-scalar-mult
// resumed key schedules, silent fallback on every rejection path, and
// full/resumed interop through the Bus.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "crypto/eph_pool.h"
#include "crypto/op_count.h"
#include "net/bus.h"
#include "net/env.h"
#include "net/http.h"
#include "net/tls.h"
#include "sim/clock.h"

namespace shield5g::net {
namespace {

constexpr std::uint64_t kLifetime = TicketIssuer::kDefaultLifetimeNs;

// ---------------------------------------------------------------------
// TicketIssuer properties
// ---------------------------------------------------------------------

class TicketFixture : public ::testing::Test {
 protected:
  Rng rng_{2026};
  TicketIssuer issuer_{SecretView(Bytes(32, 0x42)), kLifetime};
  Secret<32> secret_{ByteView(Bytes(32, 0x07))};
};

TEST_F(TicketFixture, IssueRedeemRoundTrip) {
  const Bytes ticket = issuer_.issue(secret_, 0, rng_);
  EXPECT_EQ(ticket.size(), TicketIssuer::kTicketSize);
  const auto secret = issuer_.redeem(ticket, 1);
  ASSERT_TRUE(secret.has_value());
  EXPECT_TRUE(*secret == secret_);  // constant-time compare
}

TEST_F(TicketFixture, EveryBytePositionIsTamperEvident) {
  // Property: flipping any single bit anywhere in the ticket — epoch,
  // expiry, nonce, masked secret or MAC — must reject, and the probe
  // must not consume the real ticket (tampered tickets never strike).
  const Bytes ticket = issuer_.issue(secret_, 0, rng_);
  for (std::size_t i = 0; i < ticket.size(); ++i) {
    Bytes mutated = ticket;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(issuer_.redeem(mutated, 1).has_value())
        << "tampered byte " << i << " was accepted";
  }
  // After 76 tamper probes the genuine ticket is still redeemable.
  EXPECT_TRUE(issuer_.redeem(ticket, 1).has_value());
}

TEST_F(TicketFixture, TicketsAreSingleUse) {
  const Bytes ticket = issuer_.issue(secret_, 0, rng_);
  EXPECT_TRUE(issuer_.redeem(ticket, 1).has_value());
  EXPECT_FALSE(issuer_.redeem(ticket, 1).has_value());  // replay
}

TEST_F(TicketFixture, ExpiryIsEnforced) {
  const Bytes ticket = issuer_.issue(secret_, 1'000, rng_);
  EXPECT_FALSE(issuer_.redeem(ticket, 1'000 + kLifetime).has_value());
  // A fresh ticket (the strike register never saw the expired one's
  // nonce as redeemed... it was rejected before striking) still works
  // right up to the deadline.
  const Bytes fresh = issuer_.issue(secret_, 1'000, rng_);
  EXPECT_TRUE(issuer_.redeem(fresh, 1'000 + kLifetime - 1).has_value());
}

TEST_F(TicketFixture, RotationKeepsOneEpochGraceWindow) {
  const Bytes old_ticket = issuer_.issue(secret_, 0, rng_);
  issuer_.rotate();
  EXPECT_EQ(issuer_.epoch(), 1u);
  // Grace window: the previous epoch stays redeemable once.
  EXPECT_TRUE(issuer_.redeem(old_ticket, 1).has_value());

  const Bytes older = issuer_.issue(secret_, 0, rng_);  // epoch 1
  issuer_.rotate();
  issuer_.rotate();
  // Two rotations past the issuing epoch: rejected on the epoch check.
  EXPECT_FALSE(issuer_.redeem(older, 1).has_value());
}

TEST_F(TicketFixture, ForeignIssuerTicketsReject) {
  // A ticket minted under a different master key (server restart, or a
  // forgery attempt) fails the MAC and falls back.
  TicketIssuer other{SecretView(Bytes(32, 0x43)), kLifetime};
  const Bytes foreign = other.issue(secret_, 0, rng_);
  EXPECT_FALSE(issuer_.redeem(foreign, 1).has_value());
}

TEST_F(TicketFixture, ZeroLifetimeRejectedAtConstruction) {
  EXPECT_THROW(TicketIssuer(SecretView(Bytes(32, 1)), 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Resumable handshake family
// ---------------------------------------------------------------------

class ResumableFixture : public ::testing::Test {
 protected:
  Rng rng_{99};
  TlsIdentity server_id_ = TlsIdentity::generate(rng_);
  TicketIssuer issuer_{SecretView(Bytes(32, 0x55)), kLifetime};

  struct Full {
    TlsClientHandshake client;
    TlsServerAccept accept;
    Bytes ticket;
  };

  Full full_handshake() {
    Bytes hello, server_hello;
    auto client = TlsSession::client_connect_resumable(
        server_id_.key.public_key, rng_, hello);
    auto accept = TlsSession::server_accept_resumable(
        server_id_.key, hello, issuer_, /*now_ns=*/0, rng_, server_hello);
    auto ticket = TlsSession::hello_ticket(server_hello);
    EXPECT_TRUE(accept.session.has_value());
    EXPECT_FALSE(accept.resumed);
    EXPECT_TRUE(ticket.has_value());
    return Full{std::move(client), std::move(accept), std::move(*ticket)};
  }
};

TEST_F(ResumableFixture, FullHandshakeCarriesWorkingSessionAndTicket) {
  auto full = full_handshake();
  const Bytes record = full.client.session.protect(to_bytes("hello"));
  const auto plain = full.accept.session->unprotect(record);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(to_string(*plain), "hello");
  EXPECT_EQ(full.ticket.size(), TicketIssuer::kTicketSize);
}

TEST_F(ResumableFixture, ResumedHandshakePerformsZeroScalarMults) {
  auto full = full_handshake();

  const std::uint64_t before = crypto::op_counts().x25519_ops;
  Bytes hello, server_hello;
  auto resumed = TlsSession::client_resume(full.client.resumption_secret,
                                           full.ticket, rng_, hello);
  auto accept = TlsSession::server_accept_resumable(
      server_id_.key, hello, issuer_, 1, rng_, server_hello);
  EXPECT_EQ(crypto::op_counts().x25519_ops, before)
      << "resumption touched X25519";

  ASSERT_TRUE(accept.session.has_value());
  EXPECT_TRUE(accept.resumed);
  // Both directions agree on the KDF-only record keys.
  const Bytes up = resumed.session.protect(to_bytes("up"));
  ASSERT_TRUE(accept.session->unprotect(up).has_value());
  const Bytes down = accept.session->protect(to_bytes("down"));
  ASSERT_TRUE(resumed.session.unprotect(down).has_value());
}

TEST_F(ResumableFixture, EachResumptionDerivesFreshRecordKeys) {
  // Two resumptions from the same resumption secret (the client retries
  // after a lost reply, say) must never reuse record keys: the fresh
  // client nonce separates them.
  auto full = full_handshake();
  Bytes h1, h2;
  auto r1 = TlsSession::client_resume(full.client.resumption_secret,
                                      full.ticket, rng_, h1);
  auto r2 = TlsSession::client_resume(full.client.resumption_secret,
                                      full.ticket, rng_, h2);
  EXPECT_NE(h1, h2);
  const Bytes rec1 = r1.session.protect(to_bytes("same plaintext"));
  const Bytes rec2 = r2.session.protect(to_bytes("same plaintext"));
  EXPECT_NE(rec1, rec2) << "two resumptions produced identical records";
  // And the resumed keys differ from the full handshake's.
  auto full2 = full_handshake();
  const Bytes rec3 = full2.client.session.protect(to_bytes("same plaintext"));
  EXPECT_NE(rec1, rec3);
}

TEST_F(ResumableFixture, TicketChainSurvivesManyHops) {
  // secret_n+1 = KDF(secret_n, 'N' || nonce): walk the chain ten times.
  auto full = full_handshake();
  Secret<32> secret = full.client.resumption_secret;
  Bytes ticket = full.ticket;
  for (int hop = 0; hop < 10; ++hop) {
    Bytes hello, server_hello;
    auto resumed = TlsSession::client_resume(secret, ticket, rng_, hello);
    auto accept = TlsSession::server_accept_resumable(
        server_id_.key, hello, issuer_, 1, rng_, server_hello);
    ASSERT_TRUE(accept.resumed) << "chain broke at hop " << hop;
    const Bytes record = resumed.session.protect(to_bytes("ping"));
    ASSERT_TRUE(accept.session->unprotect(record).has_value());
    auto next = TlsSession::hello_ticket(server_hello);
    ASSERT_TRUE(next.has_value());
    ticket = *next;
    secret = resumed.resumption_secret;
  }
}

TEST_F(ResumableFixture, ReplayedResumedHelloFallsBackCleanly) {
  auto full = full_handshake();
  Bytes hello, server_hello;
  auto resumed = TlsSession::client_resume(full.client.resumption_secret,
                                           full.ticket, rng_, hello);
  auto first = TlsSession::server_accept_resumable(
      server_id_.key, hello, issuer_, 1, rng_, server_hello);
  EXPECT_TRUE(first.resumed);

  // The same wire bytes replayed on a second connection: the strike
  // register rejects, the server answers 0x03, nothing crashes.
  Bytes second_hello_out;
  auto second = TlsSession::server_accept_resumable(
      server_id_.key, hello, issuer_, 1, rng_, second_hello_out);
  EXPECT_FALSE(second.session.has_value());
  EXPECT_TRUE(second.retry_full);
  EXPECT_FALSE(TlsSession::hello_ticket(second_hello_out).has_value());
}

TEST_F(ResumableFixture, TamperedWireHelloFallsBackAtEveryPosition) {
  auto full = full_handshake();
  Bytes hello;
  auto resumed = TlsSession::client_resume(full.client.resumption_secret,
                                           full.ticket, rng_, hello);
  (void)resumed;
  // Mutate every byte of the length field and ticket (positions past
  // the 32-byte client nonce; the nonce is covered by the next test and
  // a mutated version byte turns this into a different-family hello).
  // Every such mutation must reject with retry_full and never crash.
  for (std::size_t i = 1 + 32; i < hello.size(); ++i) {
    Bytes mutated = hello;
    mutated[i] ^= 0x01;
    Bytes server_hello;
    auto accept = TlsSession::server_accept_resumable(
        server_id_.key, mutated, issuer_, 1, rng_, server_hello);
    EXPECT_FALSE(accept.session.has_value()) << "byte " << i;
    EXPECT_TRUE(accept.retry_full) << "byte " << i;
  }
  // The genuine ticket is still redeemable after the tamper barrage
  // (all rejections happened before the strike register).
  Bytes hello2, server_hello2;
  auto retry = TlsSession::client_resume(full.client.resumption_secret,
                                         full.ticket, rng_, hello2);
  auto accept = TlsSession::server_accept_resumable(
      server_id_.key, hello2, issuer_, 1, rng_, server_hello2);
  EXPECT_TRUE(accept.resumed);
}

TEST_F(ResumableFixture, NonceTamperDesyncsKeysWithoutCrashing) {
  // The client nonce is not authenticated by the ticket MAC: a mutated
  // nonce still redeems (and consumes) the ticket, but the two sides
  // derive different record keys, so the very first record fails — the
  // same clean failure as any broken transport, never an accepted
  // session with attacker-influenced keys both sides agree on.
  auto full = full_handshake();
  Bytes hello, server_hello;
  auto resumed = TlsSession::client_resume(full.client.resumption_secret,
                                           full.ticket, rng_, hello);
  Bytes mutated = hello;
  mutated[5] ^= 0x80;  // inside the 32-byte nonce
  auto accept = TlsSession::server_accept_resumable(
      server_id_.key, mutated, issuer_, 1, rng_, server_hello);
  ASSERT_TRUE(accept.resumed);
  const Bytes record = resumed.session.protect(to_bytes("desynced"));
  EXPECT_FALSE(accept.session->unprotect(record).has_value());
}

TEST_F(ResumableFixture, ExpiredTicketFallsBackToFull) {
  auto full = full_handshake();
  Bytes hello, server_hello;
  auto resumed = TlsSession::client_resume(full.client.resumption_secret,
                                           full.ticket, rng_, hello);
  (void)resumed;
  auto accept = TlsSession::server_accept_resumable(
      server_id_.key, hello, issuer_, kLifetime, rng_, server_hello);
  EXPECT_FALSE(accept.session.has_value());
  EXPECT_TRUE(accept.retry_full);
}

TEST_F(ResumableFixture, MalformedHellosNeverCrash) {
  for (const Bytes hello :
       {Bytes{}, Bytes{0x02}, Bytes{0x02, 0xff}, Bytes(34, 0x02),
        Bytes{0x04, 0x01, 0x02}, Bytes(300, 0x02), Bytes(1, 0x01),
        Bytes(16, 0x01)}) {
    Bytes server_hello;
    auto accept = TlsSession::server_accept_resumable(
        server_id_.key, hello, issuer_, 1, rng_, server_hello);
    EXPECT_FALSE(accept.session.has_value());
    EXPECT_FALSE(accept.resumed);
  }
}

TEST_F(ResumableFixture, PoolBackedFullHandshakeMatchesPoolFree) {
  // The pool only changes where the ephemeral comes from; with the same
  // scalar the handshake is the same. Here: pool-backed and pool-free
  // handshakes interop with the same server and cost 1 mult client-side
  // (pool) vs 2 (fresh).
  crypto::EphemeralKeyPool::Config cfg;
  cfg.capacity = 4;
  cfg.seed = 7;
  crypto::EphemeralKeyPool pool(cfg);

  const std::uint64_t before = crypto::op_counts().x25519_ops;
  Bytes hello, server_hello;
  auto client = TlsSession::client_connect_resumable(
      server_id_.key.public_key, rng_, hello, &pool);
  EXPECT_EQ(crypto::op_counts().x25519_ops, before + 1)
      << "pool-backed connect must cost exactly the variable-base mult";
  auto accept = TlsSession::server_accept_resumable(
      server_id_.key, hello, issuer_, 0, rng_, server_hello);
  ASSERT_TRUE(accept.session.has_value());
  const Bytes record = client.session.protect(to_bytes("via pool"));
  EXPECT_TRUE(accept.session->unprotect(record).has_value());
}

// ---------------------------------------------------------------------
// Bus-level interop
// ---------------------------------------------------------------------

class ResumingBusFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    bus_.set_resumption(true);
    server_ = std::make_unique<Server>("echo", env_, bus_.costs());
    server_->router().add(
        Method::kPost, "/echo",
        [](const RequestView& req, const PathParams&) {
          return HttpResponse::json(200, std::string(req.body));
        });
    bus_.attach(*server_);
  }

  HttpRequest echo_request() {
    HttpRequest req;
    req.method = Method::kPost;
    req.path = "/echo";
    req.body = "{\"x\":1}";
    return req;
  }

  sim::VirtualClock clock_;
  Bus bus_{clock_};
  HostEnv env_{clock_};
  std::unique_ptr<Server> server_;
};

TEST_F(ResumingBusFixture, OneShotClientsResumeAfterFirstContact) {
  const std::uint64_t hit0 = counter_value("tls.resume.hit");
  const std::uint64_t miss0 = counter_value("tls.resume.miss");

  const auto first = bus_.request("client", "echo", echo_request());
  EXPECT_TRUE(first.transport_ok);
  EXPECT_EQ(counter_value("tls.resume.miss"), miss0 + 1);
  EXPECT_EQ(counter_value("tls.resume.hit"), hit0);

  for (int i = 0; i < 5; ++i) {
    const auto warm = bus_.request("client", "echo", echo_request());
    EXPECT_TRUE(warm.transport_ok);
    EXPECT_EQ(warm.response.status, 200);
    EXPECT_EQ(warm.response.body, "{\"x\":1}");
  }
  EXPECT_EQ(counter_value("tls.resume.hit"), hit0 + 5);
  EXPECT_EQ(counter_value("tls.resume.miss"), miss0 + 1);
  EXPECT_EQ(counter_value("tls.resume.reject"), 0u);
}

TEST_F(ResumingBusFixture, FullAndResumedClientsInteropOnOneServer) {
  // "alice" warms up a ticket; "bob" arrives cold mid-stream. Both keep
  // exchanging payloads against the same attachment.
  EXPECT_TRUE(bus_.request("alice", "echo", echo_request()).transport_ok);
  EXPECT_TRUE(bus_.request("alice", "echo", echo_request()).transport_ok);
  EXPECT_TRUE(bus_.request("bob", "echo", echo_request()).transport_ok);
  EXPECT_TRUE(bus_.request("alice", "echo", echo_request()).transport_ok);
  EXPECT_TRUE(bus_.request("bob", "echo", echo_request()).transport_ok);
}

TEST_F(ResumingBusFixture, WarmRequestsPerformZeroScalarMults) {
  // The acceptance criterion of the PR: a warm SBI exchange (ticket
  // cached, eph pool irrelevant) performs 0 X25519 scalar mults even
  // with one-shot connections.
  bus_.request("client", "echo", echo_request());  // cold: full handshake
  const std::uint64_t before = crypto::op_counts().x25519_ops;
  const auto warm = bus_.request("client", "echo", echo_request());
  EXPECT_TRUE(warm.transport_ok);
  EXPECT_EQ(crypto::op_counts().x25519_ops, before)
      << "warm registration-path exchange still performs scalar mults";
}

TEST_F(ResumingBusFixture, KeepAliveComposesWithResumption) {
  bus_.set_keep_alive(true);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(bus_.request("client", "echo", echo_request()).transport_ok);
  }
  // Keep-alive caches the connection, so after the first handshake no
  // further handshakes (resumed or full) run at all.
}

TEST_F(ResumingBusFixture, DetachReattachInvalidatesTicketsSilently) {
  // A "server restart" mints a fresh issuer master key: the client's
  // cached ticket fails the MAC, the bus falls back to a full handshake
  // and the request still succeeds.
  EXPECT_TRUE(bus_.request("client", "echo", echo_request()).transport_ok);
  bus_.detach("echo");
  Server reborn("echo", env_, bus_.costs());
  reborn.router().add(Method::kPost, "/echo",
                      [](const RequestView& req, const PathParams&) {
                        return HttpResponse::json(200, std::string(req.body));
                      });
  bus_.attach(reborn);

  const std::uint64_t reject0 = counter_value("tls.resume.reject");
  const auto after = bus_.request("client", "echo", echo_request());
  EXPECT_TRUE(after.transport_ok);
  EXPECT_EQ(after.response.status, 200);
  EXPECT_EQ(counter_value("tls.resume.reject"), reject0 + 1);
}

TEST_F(ResumingBusFixture, TicketCacheEvictsLruPairAndRecovers) {
  // The ticket cache is bounded (satellite of the sharded-serving PR):
  // three (client, server) pairs against capacity 2 must evict the
  // least-recently-used pair, bump bus.ticket.evict, and the evicted
  // pair must recover with exactly one full handshake before resuming
  // again — eviction degrades cost, never correctness.
  auto add_echo = [this](Server& server) {
    server.router().add(Method::kPost, "/echo",
                        [](const RequestView& req, const PathParams&) {
                          return HttpResponse::json(200, std::string(req.body));
                        });
    bus_.attach(server);
  };
  Server beta("beta", env_, bus_.costs());
  Server gamma("gamma", env_, bus_.costs());
  add_echo(beta);
  add_echo(gamma);

  bus_.set_ticket_capacity(2);
  const std::uint64_t evict0 = counter_value("bus.ticket.evict");
  const std::uint64_t evictions0 = bus_.ticket_evictions();

  EXPECT_TRUE(bus_.request("client", "echo", echo_request()).transport_ok);
  EXPECT_TRUE(bus_.request("client", "beta", echo_request()).transport_ok);
  EXPECT_EQ(bus_.ticket_evictions(), evictions0) << "capacity not reached";
  // Third pair: (client, echo) is now least-recently-used and evicted.
  EXPECT_TRUE(bus_.request("client", "gamma", echo_request()).transport_ok);
  EXPECT_EQ(bus_.ticket_evictions(), evictions0 + 1);
  EXPECT_EQ(counter_value("bus.ticket.evict"), evict0 + 1);

  // The evicted pair pays one full handshake (a miss, not a reject —
  // there is no stale ticket to present)...
  const std::uint64_t miss0 = counter_value("tls.resume.miss");
  const std::uint64_t hit0 = counter_value("tls.resume.hit");
  EXPECT_TRUE(bus_.request("client", "echo", echo_request()).transport_ok);
  EXPECT_EQ(counter_value("tls.resume.miss"), miss0 + 1);
  // ...and is immediately warm again.
  EXPECT_TRUE(bus_.request("client", "echo", echo_request()).transport_ok);
  EXPECT_EQ(counter_value("tls.resume.hit"), hit0 + 1);
}

}  // namespace
}  // namespace shield5g::net
