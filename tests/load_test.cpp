// Queueing sanity for the concurrent-registration engine: the
// ServiceQueue driven by a Poisson/exponential workload must reproduce
// textbook M/M/1 behaviour, and at offered loads far below capacity the
// end-to-end engine must charge (essentially) zero queueing delay.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "load/arrival.h"
#include "load/generator.h"
#include "net/service_queue.h"
#include "slice/slice.h"

namespace shield5g {
namespace {

sim::Nanos exponential_ns(Rng& rng, double mean_ns) {
  return static_cast<sim::Nanos>(-std::log(1.0 - rng.uniform01()) * mean_ns);
}

/// Runs `jobs` through a single-server FIFO queue (Lindley recursion:
/// admit, then complete at start + service before the next arrival) and
/// returns the mean queueing wait in nanoseconds.
double mm1_mean_wait_ns(double lambda_per_s, double mu_per_s,
                        std::size_t jobs, std::uint64_t seed) {
  net::ServiceQueue queue(
      net::ServiceQueue::Config{/*workers=*/1, /*capacity=*/0});
  Rng rng(seed);
  const double mean_gap_ns = 1e9 / lambda_per_s;
  const double mean_service_ns = 1e9 / mu_per_s;
  sim::Nanos t = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    t += exponential_ns(rng, mean_gap_ns);
    const net::ServiceQueue::Admission adm = queue.admit(t);
    EXPECT_TRUE(adm.accepted);
    queue.complete(adm.worker, adm.start + exponential_ns(rng, mean_service_ns));
  }
  return static_cast<double>(queue.total_wait()) /
         static_cast<double>(queue.admitted());
}

TEST(QueueingSanity, Mm1MeanWaitMatchesTheoryAtHalfUtilization) {
  // M/M/1 with mean service 100 us at rho = 0.5: Wq = rho / (mu - lambda)
  // = 100 us. The sample mean over 200k jobs should land within 10%.
  const double mu = 10'000.0;      // per second
  const double lambda = 5'000.0;   // rho = 0.5
  const double wq_theory_ns = (lambda / mu) / (mu - lambda) * 1e9;
  const double wq_ns = mm1_mean_wait_ns(lambda, mu, 200'000, 0x9119ULL);
  EXPECT_NEAR(wq_ns, wq_theory_ns, 0.10 * wq_theory_ns)
      << "theory " << wq_theory_ns << " ns, measured " << wq_ns << " ns";
}

TEST(QueueingSanity, Mm1MeanWaitMatchesTheoryAtHighUtilization) {
  // rho = 0.8 queues five times harder: Wq = 0.8 / 0.2mu = 400 us. The
  // heavier tail needs a wider tolerance at the same sample count.
  const double mu = 10'000.0;
  const double lambda = 8'000.0;
  const double wq_theory_ns = (lambda / mu) / (mu - lambda) * 1e9;
  const double wq_ns = mm1_mean_wait_ns(lambda, mu, 400'000, 0x9229ULL);
  EXPECT_NEAR(wq_ns, wq_theory_ns, 0.15 * wq_theory_ns)
      << "theory " << wq_theory_ns << " ns, measured " << wq_ns << " ns";
}

TEST(QueueingSanity, NegligibleWaitFarBelowCapacity) {
  // rho = 0.05: theory says Wq ~ 5.3 us against a 100 us service time.
  const double wq_ns = mm1_mean_wait_ns(500.0, 10'000.0, 100'000, 0x9339ULL);
  EXPECT_LT(wq_ns, 0.1 * 100'000.0);  // < 10% of one service time
}

TEST(QueueingSanity, BoundedQueueShedsBeyondCapacity) {
  // workers=1, capacity=4: a 10-deep instantaneous burst admits the one
  // in service plus four waiting and sheds the rest.
  net::ServiceQueue queue(
      net::ServiceQueue::Config{/*workers=*/1, /*capacity=*/4});
  const sim::Nanos arrival = 1'000;
  const sim::Nanos service = 1'000'000;
  std::uint32_t accepted = 0;
  for (int i = 0; i < 10; ++i) {
    const auto adm = queue.admit(arrival);
    if (!adm.accepted) continue;
    ++accepted;
    queue.complete(adm.worker, adm.start + service);
  }
  EXPECT_EQ(accepted, 5u);
  EXPECT_EQ(queue.rejected(), 5u);
  EXPECT_EQ(queue.max_depth(), 4u);
}

TEST(QueueingSanity, EarliestFreeWorkerTiesBreakByIndex) {
  net::ServiceQueue queue(
      net::ServiceQueue::Config{/*workers=*/4, /*capacity=*/0});
  // All workers free: repeated same-instant admissions must walk the
  // pool in index order (replay depends on this being deterministic).
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto adm = queue.admit(100);
    ASSERT_TRUE(adm.accepted);
    EXPECT_EQ(adm.worker, i);
    EXPECT_EQ(adm.start, 100u);
    queue.complete(adm.worker, 100 + 50 * (i + 1));
  }
  // Worker 0 frees first (150): the fifth request queues onto it.
  const auto adm = queue.admit(120);
  ASSERT_TRUE(adm.accepted);
  EXPECT_EQ(adm.worker, 0u);
  EXPECT_EQ(adm.start, 150u);
  EXPECT_EQ(queue.queued(), 1u);
}

TEST(QueueingSanity, ArrivalSchedulesAreNonDecreasingAndHitTheRate) {
  Rng rng(0x944aULL);
  load::ArrivalConfig cfg;
  cfg.kind = load::ArrivalKind::kPoisson;
  cfg.rate_per_s = 1'000.0;
  const auto schedule = load::arrival_schedule(cfg, 20'000, rng);
  ASSERT_EQ(schedule.size(), 20'000u);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    ASSERT_GE(schedule[i], schedule[i - 1]);
  }
  // Mean gap over 20k draws should be within 5% of 1 ms.
  const double mean_gap_ns =
      static_cast<double>(schedule.back() - schedule.front()) /
      static_cast<double>(schedule.size() - 1);
  EXPECT_NEAR(mean_gap_ns, 1e6, 0.05 * 1e6);
}

TEST(QueueingSanity, EngineChargesNoQueueDelayFarBelowCapacity) {
  // 20 UEs at 20/s against a container core that serves a registration
  // in a few ms: arrivals never overlap, so every module queue must be
  // pass-through (zero queueing delay, nothing shed) and the engine's
  // per-UE latency must match the unloaded single-UE numbers.
  slice::SliceConfig config;
  config.mode = slice::IsolationMode::kContainer;
  config.subscriber_count = 20;
  slice::Slice slice(config);
  slice.create();

  load::LoadConfig load_cfg;
  load_cfg.ue_count = 20;
  load_cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  load_cfg.arrivals.rate_per_s = 20.0;
  load::LoadGenerator generator;
  const load::LoadReport report = generator.run(slice, load_cfg);

  EXPECT_EQ(report.completed, 20u);
  EXPECT_EQ(report.registered, 20u);
  EXPECT_EQ(report.sessions_up, 20u);
  for (const load::QueueSnapshot& q : load::queue_snapshots(slice)) {
    EXPECT_EQ(q.queued, 0u) << q.server;
    EXPECT_EQ(q.rejected, 0u) << q.server;
    EXPECT_EQ(q.total_wait, 0u) << q.server;
  }
}

TEST(QueueingSanity, EngineChargesQueueDelayPastSaturation) {
  // Same core hammered at 5000/s: some module (the AMF holds its worker
  // through the nested NAS transaction) must now charge real wait.
  slice::SliceConfig config;
  config.mode = slice::IsolationMode::kContainer;
  config.subscriber_count = 60;
  slice::Slice slice(config);
  slice.create();

  load::LoadConfig load_cfg;
  load_cfg.ue_count = 60;
  load_cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  load_cfg.arrivals.rate_per_s = 5'000.0;
  load::LoadGenerator generator;
  const load::LoadReport report = generator.run(slice, load_cfg);

  EXPECT_GT(report.registered, 0u);
  sim::Nanos total_wait = 0;
  std::uint64_t queued = 0;
  for (const load::QueueSnapshot& q : load::queue_snapshots(slice)) {
    total_wait += q.total_wait;
    queued += q.queued;
  }
  EXPECT_GT(queued, 0u);
  EXPECT_GT(total_wait, 0u);
}

TEST(QueueingSanity, ResetStartsColdWithoutTouchingConfig) {
  // Saturate a small queue, then reset(): configuration survives, but
  // occupancy and statistics must clear so a back-to-back shard run
  // starts against a cold queue — the guarantee sweep repeats lean on.
  net::ServiceQueue queue(
      net::ServiceQueue::Config{/*workers=*/2, /*capacity=*/3});
  for (int i = 0; i < 10; ++i) {
    const auto adm = queue.admit(1'000);
    if (adm.accepted) queue.complete(adm.worker, adm.start + 1'000'000);
  }
  ASSERT_GT(queue.admitted(), 0u);
  ASSERT_GT(queue.rejected(), 0u);
  ASSERT_GT(queue.queued(), 0u);
  ASSERT_GT(queue.depth(2'000), 0u);

  queue.reset();

  EXPECT_EQ(queue.config().workers, 2u);
  EXPECT_EQ(queue.config().capacity, 3u);
  EXPECT_EQ(queue.admitted(), 0u);
  EXPECT_EQ(queue.rejected(), 0u);
  EXPECT_EQ(queue.queued(), 0u);
  EXPECT_EQ(queue.total_wait(), 0u);
  EXPECT_EQ(queue.max_depth(), 0u);
  EXPECT_EQ(queue.depth(2'000), 0u);
  EXPECT_TRUE(queue.wait_us().values().empty());

  // Cold admission: even an arrival *before* the old busy-until
  // horizon starts immediately on worker 0 with zero wait.
  const auto adm = queue.admit(2'000);
  ASSERT_TRUE(adm.accepted);
  EXPECT_EQ(adm.worker, 0u);
  EXPECT_EQ(adm.start, 2'000u);
  EXPECT_EQ(queue.queued(), 0u);
}

}  // namespace
}  // namespace shield5g
