// Property tests for the fe25519 carry-range discipline, against an
// independent base-2^64 bignum oracle.
//
// The field header documents a contract the ladder and the comb lean
// on: fe_mul / fe_sq accept limbs up to 2^54 and return carried values
// (< 2^51 + eps); fe_add of two carried values stays under 2^52.1 and
// fe_sub of such sums under 2^53.2, both safe as multiplier inputs.
// These tests drive randomized limb patterns through every op and check
// both halves of the contract — the numeric value (mod p, via the
// oracle) and the output ranges — for the scalar backend and, through
// the x25519_x4 lane-sliced hooks, for the AVX2 4-lane backend.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/fe25519.h"
#include "crypto/x25519_batch.h"

namespace shield5g::crypto {
namespace {

using fe25519::Fe;
using fe25519::kMask51;

// ---------------------------------------------------------------------
// Oracle: little-endian base-2^64 bignum, wide enough for the 2^259
// values loose limbs can represent and their ~2^518 products.
// ---------------------------------------------------------------------
constexpr int kBigWords = 10;  // 640 bits
using Big = std::array<std::uint64_t, kBigWords>;

Big big_zero() { return Big{}; }

void big_add_shifted(Big& acc, std::uint64_t v, int bit_shift) {
  const int word = bit_shift / 64;
  const int off = bit_shift % 64;
  unsigned __int128 carry = static_cast<unsigned __int128>(v) << off;
  for (int i = word; i < kBigWords && carry != 0; ++i) {
    carry += acc[i];
    acc[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
}

// Value of a limb vector, limbs unreduced: sum a[i] * 2^(51 i).
Big big_from_fe(const Fe& a) {
  Big acc = big_zero();
  for (int i = 0; i < 5; ++i) big_add_shifted(acc, a[i], 51 * i);
  return acc;
}

Big big_mul(const Big& a, const Big& b) {
  Big r = big_zero();
  for (int i = 0; i < kBigWords; ++i) {
    if (a[i] == 0) continue;
    unsigned __int128 carry = 0;
    for (int j = 0; j + i < kBigWords; ++j) {
      carry += static_cast<unsigned __int128>(a[i]) * b[j] + r[i + j];
      r[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
  }
  return r;
}

bool big_is_zero_above(const Big& a, int words) {
  for (int i = words; i < kBigWords; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

// a >= b over the low `words` words (higher words must be zero in both).
bool big_geq(const Big& a, const Big& b, int words) {
  for (int i = words - 1; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

void big_sub(Big& a, const Big& b) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < kBigWords; ++i) {
    const unsigned __int128 rhs =
        static_cast<unsigned __int128>(b[i]) + borrow;
    if (a[i] >= rhs) {
      a[i] = static_cast<std::uint64_t>(a[i] - rhs);
      borrow = 0;
    } else {
      a[i] = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) + a[i] - rhs);
      borrow = 1;
    }
  }
}

Big big_p() {
  // 2^255 - 19.
  Big p = big_zero();
  p[0] = ~static_cast<std::uint64_t>(18);  // 2^64 - 19
  p[1] = ~static_cast<std::uint64_t>(0);
  p[2] = ~static_cast<std::uint64_t>(0);
  p[3] = 0x7fffffffffffffffULL;
  return p;
}

// Reduce into [0, p) by folding 2^255 ≡ 19 until the value fits 255
// bits, then conditionally subtracting p.
Big big_mod_p(Big a) {
  for (int round = 0; round < 6; ++round) {
    Big lo = big_zero();
    for (int i = 0; i < 4; ++i) lo[i] = a[i];
    lo[3] &= 0x7fffffffffffffffULL;
    Big hi = big_zero();
    for (int i = 0; i < kBigWords - 3; ++i) {
      hi[i] = (a[i + 3] >> 63);
      if (i + 4 < kBigWords) hi[i] |= a[i + 4] << 1;
    }
    if (big_is_zero_above(hi, 0)) {
      a = lo;
      break;
    }
    Big nineteen = big_zero();
    nineteen[0] = 19;
    a = big_mul(hi, nineteen);
    for (int i = 0; i < 4; ++i) big_add_shifted(a, lo[i], 64 * i);
  }
  const Big p = big_p();
  while (big_geq(a, p, kBigWords)) big_sub(a, p);
  return a;
}

// Canonical 32-byte little-endian encoding of a reduced value.
std::array<std::uint8_t, 32> big_bytes(const Big& a) {
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(a[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

std::array<std::uint8_t, 32> fe_bytes(const Fe& a) {
  std::array<std::uint8_t, 32> out{};
  fe25519::fe_store(out.data(), a);
  return out;
}

// Random limb vector with limbs up to the given bit width (the loose
// domain the mul/sq contract admits is 54 bits).
Fe random_limbs(Rng& rng, int bits) {
  Fe a;
  const std::uint64_t mask =
      bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  for (int i = 0; i < 5; ++i) a[i] = rng.next() & mask;
  return a;
}

// Carried-output ceiling: < 2^51 + eps. The scalar fe_carry adds at
// most a few carry bits into limb 0 (x19 folding), far below 2^16.
constexpr std::uint64_t kCarriedCeil = (1ULL << 51) + (1ULL << 16);

void expect_carried(const Fe& r, const char* what) {
  for (int i = 0; i < 5; ++i) {
    EXPECT_LT(r[i], kCarriedCeil) << what << " limb " << i;
  }
}

TEST(Fe25519, MulMatchesBignumOracleOnLooseInputs) {
  Rng rng(0xFE25519AULL);
  for (int round = 0; round < 500; ++round) {
    const Fe a = random_limbs(rng, 54);
    const Fe b = random_limbs(rng, 54);
    const Fe r = fe25519::fe_mul(a, b);
    expect_carried(r, "fe_mul");
    const Big expect = big_mod_p(big_mul(big_from_fe(a), big_from_fe(b)));
    ASSERT_EQ(fe_bytes(r), big_bytes(expect)) << "round " << round;
  }
}

TEST(Fe25519, SqMatchesMulAndOracleOnLooseInputs) {
  Rng rng(0xFE25519BULL);
  for (int round = 0; round < 500; ++round) {
    const Fe a = random_limbs(rng, 54);
    const Fe r = fe25519::fe_sq(a);
    expect_carried(r, "fe_sq");
    ASSERT_EQ(fe_bytes(r), fe_bytes(fe25519::fe_mul(a, a)));
    const Big expect = big_mod_p(big_mul(big_from_fe(a), big_from_fe(a)));
    ASSERT_EQ(fe_bytes(r), big_bytes(expect)) << "round " << round;
  }
}

TEST(Fe25519, AddSubRangeDisciplineHolds) {
  // fe_add of two carried values stays under 2^52.1; fe_sub of such
  // sums stays under 2^53.2. Both must remain valid fe_mul inputs
  // (≤ 2^54) and preserve the value mod p.
  constexpr std::uint64_t kAddCeil = (1ULL << 52) + (1ULL << 17);
  // 2^53.2 ≈ 2^53 + 2^50.4; allow the documented slack exactly.
  constexpr std::uint64_t kSubCeil = (1ULL << 53) + (1ULL << 51);
  Rng rng(0xFE25519CULL);
  for (int round = 0; round < 500; ++round) {
    // Carried values straight from the multiplier.
    const Fe a = fe25519::fe_mul(random_limbs(rng, 54), random_limbs(rng, 54));
    const Fe b = fe25519::fe_sq(random_limbs(rng, 54));
    const Fe sum = fe25519::fe_add(a, b);
    for (int i = 0; i < 5; ++i) ASSERT_LT(sum[i], kAddCeil);

    const Fe c = fe25519::fe_mul(random_limbs(rng, 54), random_limbs(rng, 54));
    const Fe d = fe25519::fe_sq(random_limbs(rng, 54));
    const Fe sum2 = fe25519::fe_add(c, d);
    const Fe diff = fe25519::fe_sub(sum, sum2);
    for (int i = 0; i < 5; ++i) {
      ASSERT_LT(diff[i], kSubCeil);
      ASSERT_LE(diff[i], (1ULL << 54));  // still a legal fe_mul input
    }

    // Values: sum ≡ a+b, diff ≡ (a+b)-(c+d) (mod p, 2p bias folded out).
    Big sum_expect = big_from_fe(a);
    for (int i = 0; i < 5; ++i) big_add_shifted(sum_expect, b[i], 51 * i);
    ASSERT_EQ(fe_bytes(sum), big_bytes(big_mod_p(sum_expect)));

    // diff + sum2 ≡ sum (mod p) avoids signed bignum arithmetic.
    Big lhs = big_from_fe(diff);
    for (int i = 0; i < 5; ++i) big_add_shifted(lhs, sum2[i], 51 * i);
    ASSERT_EQ(big_bytes(big_mod_p(lhs)),
              big_bytes(big_mod_p(big_from_fe(sum))));
  }
}

TEST(Fe25519, StoreCanonicalizesLooseLimbs) {
  Rng rng(0xFE25519DULL);
  for (int round = 0; round < 500; ++round) {
    const Fe a = random_limbs(rng, 54);
    ASSERT_EQ(fe_bytes(a), big_bytes(big_mod_p(big_from_fe(a))));
  }
}

// ---------------------------------------------------------------------
// The same contract, through the 4-lane AVX2 backend's test hooks: the
// lanes accept the identical loose domain and must return carried,
// bit-identical values.
// ---------------------------------------------------------------------

bool x4_testable() {
  return detail::x25519_x4_compiled() && cpu_has_avx2();
}

bool ifma_testable() {
  return detail::x25519_ifma_compiled() && cpu_has_avx512ifma();
}

TEST(Fe25519, X4MulMatchesScalarOnLooseInputs) {
  if (!x4_testable()) GTEST_SKIP() << "AVX2 kernels unavailable";
  Rng rng(0xFE25519EULL);
  for (int round = 0; round < 200; ++round) {
    Fe a[4], b[4], r[4];
    for (int l = 0; l < 4; ++l) {
      a[l] = random_limbs(rng, 54);
      b[l] = random_limbs(rng, 54);
    }
    ASSERT_TRUE(detail::x25519_x4_mul(a, b, r));
    for (int l = 0; l < 4; ++l) {
      expect_carried(r[l], "x4 mul");
      ASSERT_EQ(fe_bytes(r[l]), fe_bytes(fe25519::fe_mul(a[l], b[l])))
          << "round " << round << " lane " << l;
    }
  }
}

TEST(Fe25519, X4SqMatchesScalarOnLooseInputs) {
  if (!x4_testable()) GTEST_SKIP() << "AVX2 kernels unavailable";
  Rng rng(0xFE25519FULL);
  for (int round = 0; round < 200; ++round) {
    Fe a[4], r[4];
    for (int l = 0; l < 4; ++l) a[l] = random_limbs(rng, 54);
    ASSERT_TRUE(detail::x25519_x4_sq(a, r));
    for (int l = 0; l < 4; ++l) {
      expect_carried(r[l], "x4 sq");
      ASSERT_EQ(fe_bytes(r[l]), fe_bytes(fe25519::fe_sq(a[l])))
          << "round " << round << " lane " << l;
    }
  }
}

// And once more through the AVX-512 IFMA backend's radix-2^43 domain.

TEST(Fe25519, IfmaMulMatchesScalarOnLooseInputs) {
  if (!ifma_testable()) GTEST_SKIP() << "IFMA kernels unavailable";
  Rng rng(0xFE255200ULL);
  for (int round = 0; round < 200; ++round) {
    Fe a[4], b[4], r[4];
    for (int l = 0; l < 4; ++l) {
      a[l] = random_limbs(rng, 54);
      b[l] = random_limbs(rng, 54);
    }
    ASSERT_TRUE(detail::x25519_ifma_mul(a, b, r));
    for (int l = 0; l < 4; ++l) {
      expect_carried(r[l], "ifma mul");
      ASSERT_EQ(fe_bytes(r[l]), fe_bytes(fe25519::fe_mul(a[l], b[l])))
          << "round " << round << " lane " << l;
    }
  }
}

TEST(Fe25519, IfmaSqMatchesScalarOnLooseInputs) {
  if (!ifma_testable()) GTEST_SKIP() << "IFMA kernels unavailable";
  Rng rng(0xFE255201ULL);
  for (int round = 0; round < 200; ++round) {
    Fe a[4], r[4];
    for (int l = 0; l < 4; ++l) a[l] = random_limbs(rng, 54);
    ASSERT_TRUE(detail::x25519_ifma_sq(a, r));
    for (int l = 0; l < 4; ++l) {
      expect_carried(r[l], "ifma sq");
      ASSERT_EQ(fe_bytes(r[l]), fe_bytes(fe25519::fe_sq(a[l])))
          << "round " << round << " lane " << l;
    }
  }
}

}  // namespace
}  // namespace shield5g::crypto
