#include "ran/gnbsim.h"

namespace shield5g::ran {

RegistrationResult GnbSim::register_ue(UeDevice& ue, bool with_pdu_session) {
  return drive(ue, ue.start_registration(), with_pdu_session);
}

RegistrationResult GnbSim::reregister_ue(UeDevice& ue,
                                         bool with_pdu_session) {
  return drive(ue, ue.start_reregistration(), with_pdu_session);
}

RegistrationResult GnbSim::drive(UeDevice& ue, Bytes initial_uplink,
                                 bool with_pdu_session) {
  RegistrationResult result;
  sim::VirtualClock& clock = gnb_.clock();
  const sim::Nanos start = clock.now();

  const std::uint64_t ran_ue_id = gnb_.attach_ue();
  std::optional<Bytes> uplink = std::move(initial_uplink);
  while (uplink && result.message_rounds < 16) {
    ++result.message_rounds;
    const auto downlink = gnb_.deliver_uplink(ran_ue_id, *uplink);
    if (!downlink) break;
    uplink = ue.handle_downlink(*downlink);
  }
  result.registered = ue.state() == UeNasState::kRegistered;

  if (result.registered && with_pdu_session) {
    uplink = ue.request_pdu_session();
    while (uplink && result.message_rounds < 24) {
      ++result.message_rounds;
      const auto downlink = gnb_.deliver_uplink(ran_ue_id, *uplink);
      if (!downlink) break;
      uplink = ue.handle_downlink(*downlink);
    }
    result.session_up = ue.state() == UeNasState::kSessionUp;
    result.ue_ip = ue.ue_ip();
  }

  result.setup_time = clock.now() - start;
  result.final_state = ue.state();
  if (result.registered) {
    ++successes_;
    setup_ms_.add(sim::to_ms(result.setup_time));
  }
  return result;
}

std::vector<RegistrationResult> GnbSim::run_mass(std::vector<UeDevice>& ues,
                                                 bool with_pdu_session) {
  std::vector<RegistrationResult> results;
  results.reserve(ues.size());
  for (auto& ue : ues) {
    results.push_back(register_ue(ue, with_pdu_session));
  }
  return results;
}

}  // namespace shield5g::ran
