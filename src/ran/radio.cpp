#include "ran/radio.h"

namespace shield5g::ran {

void RadioLink::traverse(std::size_t bytes) {
  // Byte count matters little at NAS sizes; scheduling dominates.
  const double base = static_cast<double>(costs_.air_one_way) +
                      2.0 * static_cast<double>(bytes);
  clock_.advance(static_cast<sim::Nanos>(
      base * rng_.lognormal(1.0, costs_.jitter_sigma)));
}

void RadioLink::rrc_setup() {
  clock_.advance(static_cast<sim::Nanos>(
      static_cast<double>(costs_.rrc_setup) *
      rng_.lognormal(1.0, costs_.jitter_sigma)));
}

int plmn_search(const std::vector<CellConfig>& cells,
                const std::vector<nf::Plmn>& allowed_plmns) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (const auto& plmn : allowed_plmns) {
      if (cells[i].plmn == plmn) return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace shield5g::ran
