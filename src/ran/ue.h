// UE NAS state machine: the device-side mirror of the AMF's procedures.
//
// Performs registration (SUCI, challenge response with RES*, security
// mode with real NAS integrity keys) and PDU session establishment. All
// key derivations (CK/IK -> K_AUSF -> K_SEAF -> K_AMF -> NAS keys) run
// on the UE side too, so the NAS MACs only verify when both halves of
// the hierarchy agree — the end-to-end correctness check of the AKA
// implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.h"
#include "crypto/eph_pool.h"
#include "nf/nas.h"
#include "ran/usim.h"

namespace shield5g::ran {

enum class UeNasState {
  kIdle,
  kWaitAuth,
  kReregistering,  // sent a GUTI registration, outcome open
  kWaitSecurityMode,
  kWaitAccept,
  kRegistered,
  kWaitPduAccept,
  kSessionUp,
  kDeregistering,
  kFailed,
};

class UeDevice {
 public:
  /// `eph_pool` (optional) supplies pregenerated ECIES ephemerals for
  /// SUCI concealment; nullptr draws fresh entropy from the UE RNG (the
  /// legacy path, byte-identical to earlier revisions).
  UeDevice(UsimConfig usim, std::uint64_t seed,
           crypto::EphemeralKeyPool* eph_pool = nullptr);

  UeNasState state() const noexcept { return state_; }
  const Usim& usim() const noexcept { return usim_; }
  Usim& usim() noexcept { return usim_; }
  const std::string& ue_ip() const noexcept { return ue_ip_; }
  const std::string& guti() const noexcept { return guti_; }
  const SecretBytes& kamf() const noexcept { return kamf_; }

  /// Starts registration; returns the RegistrationRequest NAS PDU.
  Bytes start_registration();

  /// Re-registration with the GUTI from the previous session (TS 23.502
  /// mobility registration): the network either restores the security
  /// context directly or falls back to an Identity Request + fresh AKA.
  Bytes start_reregistration();

  /// Consumes one downlink NAS PDU; returns the uplink response if one
  /// is due. Transitions to kFailed on reject / verification failure.
  std::optional<Bytes> handle_downlink(ByteView nas);

  /// After registration: builds a PDU session establishment request.
  Bytes request_pdu_session(std::uint8_t session_id = 1,
                            const std::string& dnn = "internet");

  /// UE-initiated deregistration (releases all sessions and the GUTI).
  Bytes request_deregistration();

 private:
  std::optional<Bytes> on_auth_request(const nf::NasMessage& msg);
  std::optional<Bytes> on_security_mode_command(const nf::SecuredNas& sec);
  std::optional<Bytes> on_registration_accept(const nf::NasMessage& msg);
  std::optional<Bytes> on_pdu_accept(const nf::NasMessage& msg);
  Bytes protect_uplink(const nf::NasMessage& msg);

  crypto::Suci conceal_supi();

  Usim usim_;
  Rng rng_;
  crypto::EphemeralKeyPool* eph_pool_;
  UeNasState state_ = UeNasState::kIdle;
  std::string snn_;
  Bytes rand_;
  SecretBytes kseaf_;
  SecretBytes kamf_;
  SecretBytes knas_int_;
  SecretBytes knas_enc_;
  std::uint32_t ul_count_ = 0;
  std::uint32_t dl_count_ = 0;
  std::string guti_;
  std::string ue_ip_;
};

}  // namespace shield5g::ran
