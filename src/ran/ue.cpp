#include "ran/ue.h"

#include "common/log.h"
#include "crypto/key_hierarchy.h"
#include "crypto/milenage.h"
#include "nf/aka_core.h"
#include "nf/types.h"

namespace shield5g::ran {

UeDevice::UeDevice(UsimConfig usim, std::uint64_t seed,
                   crypto::EphemeralKeyPool* eph_pool)
    : usim_(std::move(usim)), rng_(seed), eph_pool_(eph_pool) {
  snn_ = crypto::serving_network_name(usim_.config().plmn.mcc,
                                      usim_.config().plmn.mnc);
}

crypto::Suci UeDevice::conceal_supi() {
  // Pool path: zero in-line scalar mults per SUCI — the pair and its
  // shared secret against the home-network key come precomputed in
  // 4-wide batches (the op meter is still charged one mult at
  // acquisition). Legacy path is byte-identical to earlier revisions
  // (same rng_ stream).
  if (eph_pool_ != nullptr) {
    return usim_.make_suci(
        eph_pool_->acquire_shared(usim_.config().hn_public));
  }
  return usim_.make_suci(rng_.bytes(32));
}

Bytes UeDevice::start_registration() {
  const crypto::Suci suci = conceal_supi();
  nf::NasMessage msg;
  msg.type = nf::NasType::kRegistrationRequest;
  msg.set(nf::NasIe::kSuci, to_bytes(suci.to_string()));
  msg.set(nf::NasIe::kUeSecurityCapability, Bytes{0x0f, 0x0f});
  state_ = UeNasState::kWaitAuth;
  ul_count_ = 0;
  dl_count_ = 0;
  return msg.encode();
}

Bytes UeDevice::start_reregistration() {
  if (guti_.empty() || kamf_.empty()) {
    // No previous session to resume; fall back to a fresh registration.
    return start_registration();
  }
  nf::NasMessage msg;
  msg.type = nf::NasType::kRegistrationRequest;
  msg.set(nf::NasIe::kGuti, to_bytes(guti_));
  msg.set(nf::NasIe::kUeSecurityCapability, Bytes{0x0f, 0x0f});
  state_ = UeNasState::kReregistering;
  ul_count_ = 0;
  dl_count_ = 0;
  ue_ip_.clear();
  return msg.encode();
}

Bytes UeDevice::protect_uplink(const nf::NasMessage& msg) {
  return nf::SecuredNas::protect_ciphered(msg, knas_int_, knas_enc_,
                                          ul_count_++, false)
      .encode();
}

std::optional<Bytes> UeDevice::on_auth_request(const nf::NasMessage& msg) {
  if (!msg.has(nf::NasIe::kRand) || !msg.has(nf::NasIe::kAutn)) {
    state_ = UeNasState::kFailed;
    return std::nullopt;
  }
  rand_ = msg.at(nf::NasIe::kRand);
  const Bytes& autn = msg.at(nf::NasIe::kAutn);

  const AuthOutcome outcome = usim_.verify_challenge(rand_, autn);
  if (std::holds_alternative<AuthMacFailure>(outcome)) {
    S5G_LOG(LogLevel::kWarn, "ue") << "AUTN MAC failure";
    state_ = UeNasState::kFailed;
    nf::NasMessage fail;
    fail.type = nf::NasType::kAuthenticationFailure;
    fail.set(nf::NasIe::kCause,
             Bytes{static_cast<std::uint8_t>(nf::NasCause::kMacFailure)});
    return fail.encode();
  }
  if (const auto* sync = std::get_if<AuthSyncFailure>(&outcome)) {
    S5G_LOG(LogLevel::kInfo, "ue") << "SQN out of range, sending AUTS";
    nf::NasMessage fail;
    fail.type = nf::NasType::kAuthenticationFailure;
    fail.set(nf::NasIe::kCause,
             Bytes{static_cast<std::uint8_t>(nf::NasCause::kSynchFailure)});
    fail.set(nf::NasIe::kAuts, sync->auts);
    // Stay in kWaitAuth: the network resynchronises and re-challenges.
    return fail.encode();
  }

  const auto& ok = std::get<AuthSuccess>(outcome);
  // UE-side key hierarchy (mirrors the eUDM/eAUSF/eAMF derivations).
  const Bytes res_star =
      crypto::derive_res_star(ok.ck, ok.ik, snn_, rand_, ok.res);
  const auto autn_fields = crypto::parse_autn(autn);
  const SecretBytes kausf =
      crypto::derive_kausf(ok.ck, ok.ik, snn_, autn_fields.sqn_xor_ak);
  kseaf_ = crypto::derive_kseaf(kausf, snn_);
  kamf_ = nf::derive_kamf_for(kseaf_, usim_.supi());

  nf::NasMessage resp;
  resp.type = nf::NasType::kAuthenticationResponse;
  resp.set(nf::NasIe::kResStar, res_star);
  state_ = UeNasState::kWaitSecurityMode;
  return resp.encode();
}

std::optional<Bytes> UeDevice::on_security_mode_command(
    const nf::SecuredNas& sec) {
  // Derive the NAS keys from our K_AMF, then verify the AMF's MAC: this
  // only succeeds when both sides derived identical hierarchies.
  const auto inner_peek = nf::NasMessage::decode(sec.payload);
  if (!inner_peek || !inner_peek->has(nf::NasIe::kSelectedAlgorithms)) {
    state_ = UeNasState::kFailed;
    return std::nullopt;
  }
  const Bytes& algos = inner_peek->at(nf::NasIe::kSelectedAlgorithms);
  knas_enc_ = crypto::derive_algo_key(kamf_, crypto::AlgoType::kNasEnc,
                                      algos.at(0));
  knas_int_ = crypto::derive_algo_key(kamf_, crypto::AlgoType::kNasInt,
                                      algos.at(1));
  const auto verified = sec.verify(knas_int_);
  if (!verified || sec.count != dl_count_) {
    S5G_LOG(LogLevel::kWarn, "ue") << "SecurityModeCommand MAC failure";
    state_ = UeNasState::kFailed;
    return std::nullopt;
  }
  ++dl_count_;

  nf::NasMessage complete;
  complete.type = nf::NasType::kSecurityModeComplete;
  state_ = UeNasState::kWaitAccept;
  return protect_uplink(complete);
}

std::optional<Bytes> UeDevice::on_registration_accept(
    const nf::NasMessage& msg) {
  if (msg.has(nf::NasIe::kGuti)) {
    guti_ = to_string(msg.at(nf::NasIe::kGuti));
  }
  state_ = UeNasState::kRegistered;
  nf::NasMessage complete;
  complete.type = nf::NasType::kRegistrationComplete;
  return protect_uplink(complete);
}

std::optional<Bytes> UeDevice::on_pdu_accept(const nf::NasMessage& msg) {
  if (msg.type == nf::NasType::kPduSessionEstablishmentAccept &&
      msg.has(nf::NasIe::kUeIp)) {
    ue_ip_ = to_string(msg.at(nf::NasIe::kUeIp));
    state_ = UeNasState::kSessionUp;
  } else {
    state_ = UeNasState::kFailed;
  }
  return std::nullopt;
}

Bytes UeDevice::request_pdu_session(std::uint8_t session_id,
                                    const std::string& dnn) {
  nf::NasMessage req;
  req.type = nf::NasType::kPduSessionEstablishmentRequest;
  req.set(nf::NasIe::kPduSessionId, Bytes{session_id});
  req.set(nf::NasIe::kDnn, to_bytes(dnn));
  state_ = UeNasState::kWaitPduAccept;
  return protect_uplink(req);
}

Bytes UeDevice::request_deregistration() {
  nf::NasMessage req;
  req.type = nf::NasType::kDeregistrationRequest;
  state_ = UeNasState::kDeregistering;
  return protect_uplink(req);
}

std::optional<Bytes> UeDevice::handle_downlink(ByteView nas) {
  if (nas.empty()) {
    state_ = UeNasState::kFailed;
    return std::nullopt;
  }
  if (nas[0] == 0x7f) {
    const auto sec = nf::SecuredNas::decode(nas);
    if (!sec) {
      state_ = UeNasState::kFailed;
      return std::nullopt;
    }
    if (state_ == UeNasState::kWaitSecurityMode ||
        state_ == UeNasState::kReregistering) {
      return on_security_mode_command(*sec);
    }
    const auto inner = sec->open(knas_int_, knas_enc_);
    if (!inner || sec->count != dl_count_) {
      state_ = UeNasState::kFailed;
      return std::nullopt;
    }
    ++dl_count_;
    switch (inner->type) {
      case nf::NasType::kRegistrationAccept:
        return on_registration_accept(*inner);
      case nf::NasType::kPduSessionEstablishmentAccept:
      case nf::NasType::kPduSessionEstablishmentReject:
        return on_pdu_accept(*inner);
      case nf::NasType::kDeregistrationAccept:
        state_ = UeNasState::kIdle;
        guti_.clear();
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  const auto msg = nf::NasMessage::decode(nas);
  if (!msg) {
    state_ = UeNasState::kFailed;
    return std::nullopt;
  }
  switch (msg->type) {
    case nf::NasType::kIdentityRequest: {
      // Unknown GUTI at the AMF: reveal the concealed identity and run
      // a fresh authentication.
      const crypto::Suci suci = conceal_supi();
      nf::NasMessage response;
      response.type = nf::NasType::kIdentityResponse;
      response.set(nf::NasIe::kSuci, to_bytes(suci.to_string()));
      state_ = UeNasState::kWaitAuth;
      return response.encode();
    }
    case nf::NasType::kAuthenticationRequest:
      return on_auth_request(*msg);
    case nf::NasType::kRegistrationReject:
    case nf::NasType::kAuthenticationReject:
      state_ = UeNasState::kFailed;
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace shield5g::ran
