// gNBSIM: mass UE registration driver (paper §V-A: "we utilized gNBSIM
// to establish mass gNB-UE connections with core on a large scale").
//
// Drives full registration (and optionally PDU session establishment)
// flows for scripted UE profiles and records per-UE session setup
// latency — the source of the paper's end-to-end numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "ran/gnb.h"
#include "ran/ue.h"

namespace shield5g::ran {

struct RegistrationResult {
  bool registered = false;
  bool session_up = false;
  sim::Nanos setup_time = 0;  // registration + PDU session, UE-observed
  UeNasState final_state = UeNasState::kIdle;
  std::string ue_ip;
  int message_rounds = 0;
};

class GnbSim {
 public:
  explicit GnbSim(Gnb& gnb) : gnb_(gnb) {}

  /// Runs one UE through registration (+ PDU session when requested).
  RegistrationResult register_ue(UeDevice& ue, bool with_pdu_session = true);

  /// GUTI-based re-registration of a UE that registered before.
  RegistrationResult reregister_ue(UeDevice& ue,
                                   bool with_pdu_session = true);

  /// Registers `profiles.size()` UEs back to back; returns per-UE
  /// results and accumulates setup-latency samples.
  std::vector<RegistrationResult> run_mass(
      std::vector<UeDevice>& ues, bool with_pdu_session = true);

  Samples& setup_ms() noexcept { return setup_ms_; }
  std::uint64_t success_count() const noexcept { return successes_; }

 private:
  RegistrationResult drive(UeDevice& ue, Bytes initial_uplink,
                           bool with_pdu_session);

  Gnb& gnb_;
  Samples setup_ms_;
  std::uint64_t successes_ = 0;
};

}  // namespace shield5g::ran
