// gNB: relays NAS between UEs and the AMF over the air interface and
// the NGAP link (paper Fig. 2; trusted entity in the threat model).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "nf/amf.h"
#include "ran/radio.h"

namespace shield5g::ran {

struct NgapCosts {
  sim::Nanos one_way = 350 * sim::kMicrosecond;
};

class Gnb {
 public:
  /// Construction performs the NG Setup procedure with the AMF over
  /// NGAP; the AMF admits the gNB only when the broadcast PLMN matches
  /// its served PLMN.
  Gnb(sim::VirtualClock& clock, nf::Amf& amf, CellConfig cell,
      RadioCosts radio_costs = {}, NgapCosts ngap_costs = {},
      std::uint64_t seed = 0x9bb5eedULL);

  const CellConfig& cell() const noexcept { return cell_; }
  sim::VirtualClock& clock() noexcept { return clock_; }

  /// NG Setup outcome (false when the AMF rejected the PLMN).
  bool ng_ready() const noexcept { return ng_ready_; }

  /// RRC connection setup: allocates a RAN UE NGAP id.
  std::uint64_t attach_ue();

  /// Uplink NAS in, optional downlink NAS out. The NAS rides NGAP
  /// Initial UE Message / Uplink NAS Transport toward the AMF and
  /// Downlink NAS Transport back.
  std::optional<Bytes> deliver_uplink(std::uint64_t ran_ue_id, ByteView nas);

  /// Releases the UE context on both sides (NGAP UE Context Release).
  void release_ue(std::uint64_t ran_ue_id);

  std::size_t attached_count() const noexcept { return contexts_.size(); }

 private:
  struct UeAssociation {
    bool initial_sent = false;
    std::uint64_t amf_ue_id = 0;
  };

  std::optional<Bytes> exchange_ngap(const nf::NgapMessage& msg);

  sim::VirtualClock& clock_;
  nf::Amf& amf_;
  CellConfig cell_;
  RadioLink radio_;
  NgapCosts ngap_;
  std::map<std::uint64_t, UeAssociation> contexts_;
  std::uint64_t next_ue_id_ = 1;
  bool ng_ready_ = false;
};

}  // namespace shield5g::ran
