// COTS UE model for the over-the-air feasibility test (paper §V-B6).
//
// Reproduces the two device-specific gates the paper reports for the
// OnePlus 8: (1) the phone only detects the gNB when a known test or
// commercial PLMN is broadcast — custom codes fail cell selection; and
// (2) the end-to-end connection only succeeds on a compatible OS build
// (Oxygen 11.0.11.11.IN21DA in Table IV).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ran/gnbsim.h"
#include "ran/ue.h"

namespace shield5g::ran {

struct CotsModel {
  std::string vendor = "OnePlus";
  std::string model = "OnePlus 8";
  std::string os_version = "Oxygen 11.0.11.11.IN21DA";
  /// PLMNs the modem firmware will camp on in lab conditions.
  std::vector<nf::Plmn> allowed_plmns = {nf::Plmn{"001", "01"}};
  /// OS builds known to complete the 5G SA data-session bring-up.
  std::vector<std::string> compatible_os = {"Oxygen 11.0.11.11.IN21DA"};
};

enum class OtaOutcome {
  kNoCellDetected,    // PLMN not in the modem's allow list
  kOsIncompatible,    // attach possible but session bring-up fails
  kRegistrationFailed,
  kConnected,         // "Test1-1 - OpenAirInterface" (paper Fig. 11c)
};

const char* ota_outcome_name(OtaOutcome outcome) noexcept;

class CotsUe {
 public:
  CotsUe(CotsModel model, UsimConfig usim, std::uint64_t seed = 0x0ca75ULL);

  const CotsModel& model() const noexcept { return cots_; }
  UeDevice& device() noexcept { return device_; }

  /// Full OTA attempt: PLMN search over the visible cells, then — if a
  /// cell is found and the OS is compatible — registration and PDU
  /// session establishment through the given gNB.
  OtaOutcome connect(const std::vector<CellConfig>& visible_cells,
                     GnbSim& driver);

  /// Operator name string shown in the status bar after success.
  std::string network_name() const { return network_name_; }

 private:
  CotsModel cots_;
  UeDevice device_;
  std::string network_name_;
};

}  // namespace shield5g::ran
