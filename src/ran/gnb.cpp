#include "ran/gnb.h"

#include <stdexcept>

#include "common/log.h"

namespace shield5g::ran {

Gnb::Gnb(sim::VirtualClock& clock, nf::Amf& amf, CellConfig cell,
         RadioCosts radio_costs, NgapCosts ngap_costs, std::uint64_t seed)
    : clock_(clock),
      amf_(amf),
      cell_(std::move(cell)),
      radio_(clock, radio_costs, seed),
      ngap_(ngap_costs) {
  // NG Setup: register this gNB (and its broadcast PLMN) with the AMF.
  const auto response = exchange_ngap(
      nf::NgapMessage::ng_setup_request(cell_.plmn, cell_.name));
  if (response) {
    const auto decoded = nf::NgapMessage::decode(*response);
    ng_ready_ =
        decoded && decoded->type == nf::NgapType::kNgSetupResponse;
  }
  if (!ng_ready_) {
    S5G_LOG(LogLevel::kWarn, "gnb")
        << cell_.name << ": NG Setup rejected for PLMN " << cell_.plmn.id();
  }
}

std::optional<Bytes> Gnb::exchange_ngap(const nf::NgapMessage& msg) {
  clock_.advance(ngap_.one_way);  // gNB -> AMF (N2)
  // NGAP ingress shares the AMF's worker pool: under open-loop load a
  // NAS transport waits for a free worker like any SBI request, and is
  // silently dropped (no NGAP-level 503) when the queue is full.
  net::ServiceQueue& queue = amf_.server().queue();
  const net::ServiceQueue::Admission adm = queue.admit(clock_.now());
  if (!adm.accepted) return std::nullopt;
  if (adm.start > clock_.now()) clock_.advance_to(adm.start);
  const auto response = amf_.handle_ngap(msg.encode());
  queue.complete(adm.worker, clock_.now());
  if (response) clock_.advance(ngap_.one_way);  // AMF -> gNB
  return response;
}

std::uint64_t Gnb::attach_ue() {
  radio_.rrc_setup();
  const std::uint64_t id = next_ue_id_++;
  contexts_[id] = UeAssociation{};
  return id;
}

std::optional<Bytes> Gnb::deliver_uplink(std::uint64_t ran_ue_id,
                                         ByteView nas) {
  const auto it = contexts_.find(ran_ue_id);
  if (it == contexts_.end()) {
    throw std::logic_error("Gnb: unknown RAN UE id");
  }
  if (!ng_ready_) {
    throw std::logic_error("Gnb: NG interface is down (setup rejected)");
  }
  UeAssociation& assoc = it->second;
  radio_.traverse(nas.size());  // UE -> gNB

  const nf::NgapMessage uplink =
      assoc.initial_sent
          ? nf::NgapMessage::uplink_nas(ran_ue_id, assoc.amf_ue_id,
                                        Bytes(nas.begin(), nas.end()))
          : nf::NgapMessage::initial_ue(ran_ue_id, cell_.plmn,
                                        Bytes(nas.begin(), nas.end()));
  assoc.initial_sent = true;

  const auto response = exchange_ngap(uplink);
  if (!response) return std::nullopt;
  const auto downlink = nf::NgapMessage::decode(*response);
  if (!downlink ||
      downlink->type != nf::NgapType::kDownlinkNasTransport ||
      downlink->ran_ue_id != ran_ue_id) {
    return std::nullopt;
  }
  assoc.amf_ue_id = downlink->amf_ue_id;
  radio_.traverse(downlink->nas_pdu.size());  // gNB -> UE
  return downlink->nas_pdu;
}

void Gnb::release_ue(std::uint64_t ran_ue_id) {
  const auto it = contexts_.find(ran_ue_id);
  if (it == contexts_.end()) return;
  nf::NgapMessage release;
  release.type = nf::NgapType::kUeContextReleaseCommand;
  release.ran_ue_id = ran_ue_id;
  exchange_ngap(release);
  contexts_.erase(it);
}

}  // namespace shield5g::ran
