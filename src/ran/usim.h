// USIM model: the UE-side half of 5G-AKA.
//
// Runs MILENAGE against the challenge, enforces the SQN freshness window
// (producing an AUTS for resynchronisation on failure, TS 33.102 §6.3.3)
// and conceals the SUPI into a SUCI against the home-network public key.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/milenage.h"
#include "crypto/suci.h"
#include "nf/types.h"

namespace shield5g::ran {

struct UsimConfig {
  nf::Plmn plmn;
  std::string msin;   // subscriber-specific digits
  SecretBytes k;      // 16 — burned-in long-term key
  SecretBytes opc;    // 16 — burned-in operator code
  std::uint64_t sqn_ms = 0;  // highest accepted sequence number
  crypto::SuciScheme suci_scheme = crypto::SuciScheme::kProfileA;
  Bytes hn_public;   // home-network ECIES public key (Profile A)
  std::uint8_t hn_key_id = 1;
};

/// Successful challenge verification: RES and the session keys.
struct AuthSuccess {
  Bytes res;       // 8
  SecretBytes ck;  // 16
  SecretBytes ik;  // 16
  Bytes sqn;       // 6 — the accepted network SQN
};

/// MAC-A did not verify: the network (or an attacker) failed f1.
struct AuthMacFailure {};

/// SQN outside the acceptance window: carry AUTS for resync.
struct AuthSyncFailure {
  Bytes auts;  // 14
};

using AuthOutcome =
    std::variant<AuthSuccess, AuthMacFailure, AuthSyncFailure>;

class Usim {
 public:
  explicit Usim(UsimConfig config);

  const UsimConfig& config() const noexcept { return config_; }
  std::string supi() const { return config_.plmn.id() + config_.msin; }
  std::uint64_t sqn_ms() const noexcept { return config_.sqn_ms; }

  /// Override the stored SQN (used by tests to force a sync failure).
  void set_sqn_ms(std::uint64_t sqn) noexcept { config_.sqn_ms = sqn; }

  /// Builds the SUCI for a registration attempt. `ephemeral_random`
  /// supplies the 32 ECIES ephemeral bytes.
  crypto::Suci make_suci(ByteView ephemeral_random) const;

  /// Variant consuming a pregenerated ephemeral key pair (from the
  /// precompute pool): one scalar mult instead of two.
  crypto::Suci make_suci(const crypto::X25519KeyPair& ephemeral) const;

  /// Variant consuming a pool-prepared pair whose shared secret against
  /// the home-network key was precomputed in a batch: zero in-line
  /// scalar mults. Identical SUCI for the same ephemeral scalar.
  crypto::Suci make_suci(const crypto::X25519SharedKeyPair& prepared) const;

  /// Verifies a (RAND, AUTN) challenge per TS 33.102 §6.3.3.
  AuthOutcome verify_challenge(ByteView rand, ByteView autn);

  /// SQN acceptance window width (delta in TS 33.102 Annex C.2.1).
  static constexpr std::uint64_t kSqnDelta = 1ULL << 28;

 private:
  UsimConfig config_;
  // Persistent MILENAGE context: K and OPc are burned in, so the AES
  // schedule is expanded once per USIM, not once per challenge.
  crypto::Milenage milenage_;
};

}  // namespace shield5g::ran
