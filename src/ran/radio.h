// Radio model: cell broadcast (SIB1-level PLMN info) and air-interface
// latency. Stands in for the USRP X310 front-end of the paper's OTA
// testbed (Table IV: PLMN 00101, 106 PRBs, 3.6192 GHz).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nf/types.h"
#include "sim/clock.h"

namespace shield5g::ran {

struct CellConfig {
  nf::Plmn plmn;
  double frequency_ghz = 3.6192;
  std::uint32_t prbs = 106;
  std::string name = "oai-gnb";
};

/// Air-interface + RAN processing latency constants.
struct RadioCosts {
  sim::Nanos air_one_way = 4'200 * sim::kMicrosecond;  // incl. scheduling
  sim::Nanos rrc_setup = 12 * sim::kMillisecond;       // 3-leg RRC setup
  double jitter_sigma = 0.08;
};

class RadioLink {
 public:
  RadioLink(sim::VirtualClock& clock, RadioCosts costs, std::uint64_t seed)
      : clock_(clock), costs_(costs), rng_(seed) {}

  /// Charges one air-interface traversal (either direction).
  void traverse(std::size_t bytes);

  /// Charges the RRC connection setup exchange.
  void rrc_setup();

  const RadioCosts& costs() const noexcept { return costs_; }

 private:
  sim::VirtualClock& clock_;
  RadioCosts costs_;
  Rng rng_;
};

/// A UE's cell search over the available cells: returns the index of the
/// first cell whose PLMN the UE may camp on, or -1. Mirrors the paper's
/// observation that the COTS UE only detects the OAI gNB when the test
/// PLMN 001/01 is broadcast.
int plmn_search(const std::vector<CellConfig>& cells,
                const std::vector<nf::Plmn>& allowed_plmns);

}  // namespace shield5g::ran
