#include "ran/cots_ue.h"

#include <algorithm>

#include "common/log.h"
#include "ran/radio.h"

namespace shield5g::ran {

const char* ota_outcome_name(OtaOutcome outcome) noexcept {
  switch (outcome) {
    case OtaOutcome::kNoCellDetected: return "no cell detected";
    case OtaOutcome::kOsIncompatible: return "OS build incompatible";
    case OtaOutcome::kRegistrationFailed: return "registration failed";
    case OtaOutcome::kConnected: return "connected";
  }
  return "?";
}

CotsUe::CotsUe(CotsModel model, UsimConfig usim, std::uint64_t seed)
    : cots_(std::move(model)), device_(std::move(usim), seed) {}

OtaOutcome CotsUe::connect(const std::vector<CellConfig>& visible_cells,
                           GnbSim& driver) {
  const int cell = plmn_search(visible_cells, cots_.allowed_plmns);
  if (cell < 0) {
    S5G_LOG(LogLevel::kInfo, "cots-ue")
        << cots_.model << " found no cell (custom PLMN not detectable)";
    return OtaOutcome::kNoCellDetected;
  }

  const bool os_ok =
      std::find(cots_.compatible_os.begin(), cots_.compatible_os.end(),
                cots_.os_version) != cots_.compatible_os.end();
  if (!os_ok) {
    S5G_LOG(LogLevel::kInfo, "cots-ue")
        << cots_.model << " OS " << cots_.os_version
        << " cannot complete the SA bring-up";
    return OtaOutcome::kOsIncompatible;
  }

  const RegistrationResult result = driver.register_ue(device_, true);
  if (!result.registered || !result.session_up) {
    return OtaOutcome::kRegistrationFailed;
  }
  network_name_ =
      "Test1-1 - OpenAirInterface";  // the paper's Fig. 11c status line
  return OtaOutcome::kConnected;
}

}  // namespace shield5g::ran
