#include "ran/usim.h"

#include <stdexcept>

#include "crypto/milenage.h"
#include "nf/aka_core.h"

namespace shield5g::ran {

namespace {

crypto::Milenage make_milenage(const UsimConfig& config) {
  if (config.k.size() != 16 || config.opc.size() != 16) {
    throw std::invalid_argument("Usim: K and OPc must be 16 bytes");
  }
  return crypto::Milenage(config.k, config.opc);
}

}  // namespace

Usim::Usim(UsimConfig config)
    : config_(std::move(config)), milenage_(make_milenage(config_)) {}

crypto::Suci Usim::make_suci(ByteView ephemeral_random) const {
  return crypto::conceal_supi(config_.plmn.mcc, config_.plmn.mnc,
                              config_.msin, config_.suci_scheme,
                              config_.hn_public, ephemeral_random);
}

crypto::Suci Usim::make_suci(const crypto::X25519KeyPair& ephemeral) const {
  return crypto::conceal_supi(config_.plmn.mcc, config_.plmn.mnc,
                              config_.msin, config_.suci_scheme,
                              config_.hn_public, ephemeral);
}

crypto::Suci Usim::make_suci(
    const crypto::X25519SharedKeyPair& prepared) const {
  return crypto::conceal_supi(config_.plmn.mcc, config_.plmn.mnc,
                              config_.msin, config_.suci_scheme,
                              config_.hn_public, prepared);
}

AuthOutcome Usim::verify_challenge(ByteView rand, ByteView autn) {
  const auto fields = crypto::parse_autn(autn);
  auto out = milenage_.compute_f2345(rand);

  // Recover the network's SQN and check the MAC first.
  const Bytes sqn = xor_bytes(fields.sqn_xor_ak, out.ak);
  Bytes mac_a, mac_s;
  milenage_.compute_f1(rand, sqn, fields.amf, mac_a, mac_s);
  if (!ct_equal(mac_a, fields.mac_a)) {
    return AuthMacFailure{};
  }

  // Freshness: SQN must be ahead of SQNms but within the window.
  const std::uint64_t sqn_value = be_value(sqn);
  if (sqn_value <= config_.sqn_ms ||
      sqn_value - config_.sqn_ms > kSqnDelta) {
    const Bytes sqn_ms_bytes = be_bytes(config_.sqn_ms, 6);
    return AuthSyncFailure{nf::build_auts(milenage_, rand, sqn_ms_bytes)};
  }
  config_.sqn_ms = sqn_value;

  return AuthSuccess{out.res, std::move(out.ck), std::move(out.ik), sqn};
}

}  // namespace shield5g::ran
