// HTTP/1.1-style message framing for the service-based interfaces.
//
// Messages are really serialized to wire bytes (and parsed back), so TLS
// record sizes, syscall byte counts and bridge transfer costs all derive
// from genuine message lengths rather than guesses.
//
// The wire format is fixed by the two-clocks contract (DESIGN.md §11):
// start line, headers sorted by key ("k: v\r\n"), a trailing
// "content-length: N\r\n", blank line, body. The representation behind
// it is free to change, and has: headers live in a flat sorted array of
// interned-or-arena string references (`Headers`) instead of a
// std::map, serialization writes straight into a pooled wire buffer
// (`serialize_into`), and the server-side parser (`RequestView` /
// `ResponseView`) aliases the decrypted record instead of copying it.
// The owning serialize()/parse() API survives for tests and ad-hoc
// callers, implemented over the same cores so the bytes are identical
// by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer_pool.h"
#include "common/bytes.h"

namespace shield5g::net {

enum class Method { kGet, kPost, kPut, kDelete, kPatch };

const char* method_name(Method m) noexcept;

/// Flat header collection with std::map semantics on the wire: entries
/// stay sorted by key, set() overwrites, parse inserts first-wins.
/// Keys/values matching the SBI's recurring literals ("content-type",
/// "application/json", ...) are interned — storing them costs no
/// allocation at all; anything else is appended to a small per-message
/// arena. The common one-header message therefore builds, copies and
/// destroys without touching the heap.
class Headers {
 public:
  struct View {
    std::string_view key;
    std::string_view value;
  };

  /// Insert-or-overwrite (the map operator[]= of old call sites).
  void set(std::string_view key, std::string_view value);
  /// Insert unless present (parse-side duplicate policy: first wins).
  /// Returns true when inserted.
  bool add_if_absent(std::string_view key, std::string_view value);
  /// Removes a key if present; returns true when something was erased.
  bool erase(std::string_view key);

  /// Value lookup; returns std::nullopt when absent.
  std::optional<std::string_view> find(std::string_view key) const noexcept;
  /// Value lookup; throws std::out_of_range when absent.
  std::string_view at(std::string_view key) const;
  bool contains(std::string_view key) const noexcept;

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  /// i-th entry in key-sorted order.
  View entry(std::size_t i) const noexcept;

 private:
  // A Ref is either an intern-table id (high bit set) or an offset into
  // storage_. Offsets, not pointers, so the arena may grow freely.
  struct Ref {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };
  struct Entry {
    Ref key;
    Ref value;
  };
  static constexpr std::size_t kInline = 4;

  std::string_view resolve(Ref ref) const noexcept;
  Ref encode(std::string_view text);
  const Entry* entries() const noexcept {
    return overflow_.empty() ? inline_ : overflow_.data();
  }
  Entry* entries() noexcept {
    return overflow_.empty() ? inline_ : overflow_.data();
  }
  /// First index whose key is >= `key` (entries are key-sorted).
  std::size_t lower_bound(std::string_view key) const noexcept;
  void insert_at(std::size_t index, Entry entry);

  Entry inline_[kInline] = {};
  std::vector<Entry> overflow_;  // engaged only past kInline entries
  std::size_t count_ = 0;
  std::string storage_;
};

/// Borrowed header list produced by the zero-copy parser: every view
/// aliases the record buffer it was parsed from and is valid only while
/// that buffer lives. Wire order is preserved; get() returns the first
/// occurrence (the retained one under the old map's first-wins rule).
class HeaderViews {
 public:
  struct Item {
    std::string_view key;
    std::string_view value;
  };

  void add(std::string_view key, std::string_view value);
  std::optional<std::string_view> find(std::string_view key) const noexcept;
  bool contains(std::string_view key) const noexcept;
  std::size_t size() const noexcept { return count_; }
  const Item& operator[](std::size_t i) const noexcept {
    return count_ <= kInline ? items_[i] : overflow_[i];
  }

 private:
  static constexpr std::size_t kInline = 8;
  Item items_[kInline] = {};
  std::vector<Item> overflow_;  // engaged only past kInline items
  std::size_t count_ = 0;
};

/// A parsed request aliasing the (decrypted, in-place) record buffer —
/// nothing is copied out of the record. The framing content-length is
/// consumed during parsing and never appears among the headers, exactly
/// like the old map-based parser erased it.
struct RequestView {
  Method method = Method::kGet;
  std::string_view path;
  HeaderViews headers;
  std::string_view body;

  static std::optional<RequestView> parse(ByteView wire);
};

struct ResponseView {
  int status = 200;
  HeaderViews headers;
  std::string_view body;

  static std::optional<ResponseView> parse(ByteView wire);
};

struct HttpRequest {
  Method method = Method::kGet;
  std::string path;
  Headers headers;
  std::string body;

  /// Exact wire size of serialize()/serialize_into() output.
  std::size_t serialized_size() const noexcept;
  /// Appends the wire bytes at the buffer's cursor (the buffer must
  /// have serialized_size() of tailroom — acquire it that way).
  void serialize_into(PooledBuffer& out) const;
  Bytes serialize() const;
  static std::optional<HttpRequest> parse(ByteView wire);
  /// Owning copy of a zero-copy parse result.
  static HttpRequest materialize(const RequestView& view);
};

struct HttpResponse {
  int status = 200;
  Headers headers;
  std::string body;

  std::size_t serialized_size() const noexcept;
  void serialize_into(PooledBuffer& out) const;
  Bytes serialize() const;
  static std::optional<HttpResponse> parse(ByteView wire);
  static HttpResponse materialize(const ResponseView& view);

  /// Both helpers share one static interned header set (content-type:
  /// application/json) — copying it never allocates.
  static HttpResponse json(int status, std::string body);
  static HttpResponse error(int status, std::string_view detail);
};

// ---- Co-located delivery support (net/bus.cpp fast path) -------------
//
// The bus may hand a message across a same-trust-domain hop without
// serializing it, but only when serialize -> parse -> materialize is
// provably the identity on the message — otherwise a handler (or the
// client) could observe bytes the wire path would have normalized away.
// wire_transparent() checks exactly the conditions under which the
// round trip is lossless: no CR/LF or ':' in header keys, no CR/LF or
// leading-space values, no user-supplied content-length (the parser
// consumes it as framing), no space/CR/LF in the request path, and a
// status the response start-line round-trips (100..999). Every message
// the SBI builders produce passes; anything else takes the wire.

bool wire_transparent(const HttpRequest& req) noexcept;
bool wire_transparent(const HttpResponse& resp) noexcept;

/// The RequestView a wire round trip of `req` would produce, aliasing
/// `req` itself (valid while `req` outlives it). Headers appear in
/// key-sorted order — exactly the wire order serialize_into() emits.
/// Pre: wire_transparent(req).
RequestView request_view_of(const HttpRequest& req);

}  // namespace shield5g::net
