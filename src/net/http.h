// HTTP/1.1-style message framing for the service-based interfaces.
//
// Messages are really serialized to wire bytes (and parsed back), so TLS
// record sizes, syscall byte counts and bridge transfer costs all derive
// from genuine message lengths rather than guesses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace shield5g::net {

enum class Method { kGet, kPost, kPut, kDelete, kPatch };

const char* method_name(Method m) noexcept;

struct HttpRequest {
  Method method = Method::kGet;
  std::string path;
  std::map<std::string, std::string> headers;
  std::string body;

  Bytes serialize() const;
  static std::optional<HttpRequest> parse(ByteView wire);
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  Bytes serialize() const;
  static std::optional<HttpResponse> parse(ByteView wire);

  static HttpResponse json(int status, const std::string& body);
  static HttpResponse error(int status, const std::string& detail);
};

}  // namespace shield5g::net
