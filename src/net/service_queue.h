// Per-service admission queue: a bounded FIFO in front of a fixed pool
// of worker threads, tracked in virtual time.
//
// Every server attached to the bus owns one. A request arriving while
// all workers are busy is queued and charged real queueing delay before
// its service window opens; a request arriving with the queue at
// capacity is shed (503 on the SBI, silent drop at the NGAP ingress).
// Under container isolation the worker count models the HTTP server's
// thread pool; under SGX it is derived from the enclave TCS budget
// (`sgx.max_threads` minus the Gramine helper threads — the Fig. 8
// knob), which is what makes the enclave saturate earlier than the
// container under open-loop load.
//
// The model is intentionally state-light: workers are a vector of
// busy-until instants. admit() picks the earliest-free worker (ties
// broken by lowest index, so replay is deterministic) and returns the
// start instant; complete() stamps the worker busy until the request's
// end. With a single in-flight caller every wait is zero and the queue
// is invisible — the seed's paper-shape numbers are unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "sim/clock.h"

namespace shield5g::net {

class ServiceQueue {
 public:
  struct Config {
    /// Concurrent request slots. 0 = unlimited (queue disabled).
    std::uint32_t workers = 4;
    /// Max requests waiting (excludes the ones being served); 0 =
    /// unbounded.
    std::uint32_t capacity = 256;
  };

  struct Admission {
    bool accepted = false;
    std::uint32_t worker = 0;
    sim::Nanos start = 0;  // service start; start - arrival = queue wait
  };

  ServiceQueue() { configure(Config{}); }
  explicit ServiceQueue(Config config) { configure(config); }

  /// Replaces the configuration and resets occupancy and statistics
  /// (a redeploy starts with an empty queue).
  void configure(Config config);
  const Config& config() const noexcept { return config_; }

  /// Clears occupancy and statistics without re-reading or touching the
  /// configuration: the next run starts against a cold queue. Sweep
  /// harnesses that reuse a deployment between shard runs call this
  /// instead of configure(), which would also re-derive worker counts.
  void reset();

  /// Admits (or sheds) a request arriving at `arrival`. On acceptance
  /// the chosen worker is reserved from the returned start instant; the
  /// caller must pair it with complete() once service finishes.
  Admission admit(sim::Nanos arrival);

  /// Marks `worker` busy until `end` (the request's completion).
  void complete(std::uint32_t worker, sim::Nanos end);

  /// Requests queued (admitted but not yet started) at instant `at`.
  std::size_t depth(sim::Nanos at) const;

  // ---- Statistics ------------------------------------------------------
  Samples& wait_us() noexcept { return wait_us_; }
  const Samples& wait_us() const noexcept { return wait_us_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t queued() const noexcept { return queued_; }
  sim::Nanos total_wait() const noexcept { return total_wait_; }
  std::size_t max_depth() const noexcept { return max_depth_; }
  void reset_stats();

 private:
  Config config_;
  std::vector<sim::Nanos> busy_until_;
  /// Service-start instants of waiting requests (pruned lazily). Not
  /// sorted: the load engine's lookahead admits chains in event order,
  /// which need not be arrival order.
  std::vector<sim::Nanos> pending_starts_;

  Samples wait_us_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t queued_ = 0;
  sim::Nanos total_wait_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace shield5g::net
