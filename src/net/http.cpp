#include "net/http.h"

#include <charconv>
#include <string_view>

#include "common/hot_stage.h"

namespace shield5g::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";

void append(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

// Serialized header block size, so the wire buffer is reserved exactly
// once (ostringstream's chunked growth used to dominate the serializer
// profile).
std::size_t headers_size(const std::map<std::string, std::string>& headers,
                         std::size_t body_size) {
  std::size_t n = 0;
  for (const auto& [k, v] : headers) n += k.size() + 2 + v.size() + 2;
  char digits[24];
  const auto res =
      std::to_chars(digits, digits + sizeof(digits), body_size);
  n += 16 + static_cast<std::size_t>(res.ptr - digits) + 2;  // content-length
  return n;
}

void append_headers(Bytes& out,
                    const std::map<std::string, std::string>& headers,
                    std::size_t body_size) {
  for (const auto& [k, v] : headers) {
    append(out, k);
    append(out, ": ");
    append(out, v);
    append(out, kCrlf);
  }
  append(out, "content-length: ");
  char digits[24];
  const auto res =
      std::to_chars(digits, digits + sizeof(digits), body_size);
  append(out, std::string_view(digits,
                               static_cast<std::size_t>(res.ptr - digits)));
  append(out, kCrlf);
}

struct ParsedHead {
  std::string_view start_line;
  std::map<std::string, std::string> headers;
  std::string body;
};

// Parses straight off the wire view: no whole-message copy, no
// istringstream; only the retained pieces (header strings, body) are
// materialized.
std::optional<ParsedHead> parse_common(ByteView wire) {
  const std::string_view text(reinterpret_cast<const char*>(wire.data()),
                              wire.size());
  const std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return std::nullopt;

  ParsedHead out;
  std::string_view head = text.substr(0, head_end);
  const std::size_t line_end = head.find(kCrlf);
  out.start_line = head.substr(0, line_end);
  head = line_end == std::string_view::npos ? std::string_view()
                                            : head.substr(line_end + 2);

  while (!head.empty()) {
    const std::size_t eol = head.find(kCrlf);
    const std::string_view line =
        eol == std::string_view::npos ? head : head.substr(0, eol);
    head = eol == std::string_view::npos ? std::string_view()
                                         : head.substr(eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    out.headers.emplace(std::string(line.substr(0, colon)),
                        std::string(value));
  }

  out.body.assign(text.substr(head_end + 4));
  const auto it = out.headers.find("content-length");
  if (it != out.headers.end()) {
    std::size_t want = 0;
    const char* first = it->second.data();
    const char* last = first + it->second.size();
    const auto [ptr, ec] = std::from_chars(first, last, want);
    if (ec != std::errc() || ptr != last) return std::nullopt;
    if (out.body.size() != want) return std::nullopt;
    out.headers.erase(it);
  }
  return out;
}

// Splits a start line on single spaces; returns false unless exactly
// `n` tokens come out.
bool split_tokens(std::string_view line, std::string_view* tokens,
                  std::size_t n) {
  std::size_t count = 0;
  while (!line.empty()) {
    const std::size_t sp = line.find(' ');
    const std::string_view tok =
        sp == std::string_view::npos ? line : line.substr(0, sp);
    line = sp == std::string_view::npos ? std::string_view()
                                        : line.substr(sp + 1);
    if (tok.empty()) continue;
    if (count == n) return false;
    tokens[count++] = tok;
  }
  return count == n;
}

}  // namespace

const char* method_name(Method m) noexcept {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kPatch: return "PATCH";
  }
  return "GET";
}

Bytes HttpRequest::serialize() const {
  ScopedStage timer(HotStage::kCodec);
  const std::string_view method_str = method_name(method);
  Bytes out;
  out.reserve(method_str.size() + 1 + path.size() + 11 +
              headers_size(headers, body.size()) + 2 + body.size());
  append(out, method_str);
  append(out, " ");
  append(out, path);
  append(out, " HTTP/1.1");
  append(out, kCrlf);
  append_headers(out, headers, body.size());
  append(out, kCrlf);
  append(out, body);
  return out;
}

std::optional<HttpRequest> HttpRequest::parse(ByteView wire) {
  ScopedStage timer(HotStage::kCodec);
  auto head = parse_common(wire);
  if (!head) return std::nullopt;
  std::string_view tokens[3];
  if (!split_tokens(head->start_line, tokens, 3)) return std::nullopt;
  const std::string_view method_str = tokens[0];

  HttpRequest req;
  if (method_str == "GET") req.method = Method::kGet;
  else if (method_str == "POST") req.method = Method::kPost;
  else if (method_str == "PUT") req.method = Method::kPut;
  else if (method_str == "DELETE") req.method = Method::kDelete;
  else if (method_str == "PATCH") req.method = Method::kPatch;
  else return std::nullopt;
  req.path.assign(tokens[1]);
  req.headers = std::move(head->headers);
  req.body = std::move(head->body);
  return req;
}

Bytes HttpResponse::serialize() const {
  ScopedStage timer(HotStage::kCodec);
  const std::string_view reason = status < 300 ? "OK" : "Error";
  char status_digits[16];
  const auto res = std::to_chars(status_digits,
                                 status_digits + sizeof(status_digits),
                                 status);
  const std::string_view status_str(
      status_digits, static_cast<std::size_t>(res.ptr - status_digits));

  Bytes out;
  out.reserve(9 + status_str.size() + 1 + reason.size() + 2 +
              headers_size(headers, body.size()) + 2 + body.size());
  append(out, "HTTP/1.1 ");
  append(out, status_str);
  append(out, " ");
  append(out, reason);
  append(out, kCrlf);
  append_headers(out, headers, body.size());
  append(out, kCrlf);
  append(out, body);
  return out;
}

std::optional<HttpResponse> HttpResponse::parse(ByteView wire) {
  ScopedStage timer(HotStage::kCodec);
  auto head = parse_common(wire);
  if (!head) return std::nullopt;
  // Start line: "HTTP/1.1 <status> <reason...>"; the reason phrase may
  // itself contain spaces, so only the first two tokens are split off.
  const std::string_view line = head->start_line;
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  std::string_view rest = line.substr(sp1 + 1);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t sp2 = rest.find(' ');
  const std::string_view status_str =
      sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  int status = 0;
  const char* first = status_str.data();
  const char* last = first + status_str.size();
  const auto [ptr, ec] = std::from_chars(first, last, status);
  if (ec != std::errc() || ptr != last || first == last) return std::nullopt;

  HttpResponse resp;
  resp.status = status;
  resp.headers = std::move(head->headers);
  resp.body = std::move(head->body);
  return resp;
}

HttpResponse HttpResponse::json(int status, const std::string& body) {
  HttpResponse resp;
  resp.status = status;
  resp.headers["content-type"] = "application/json";
  resp.body = body;
  return resp;
}

HttpResponse HttpResponse::error(int status, const std::string& detail) {
  return json(status, "{\"error\":\"" + detail + "\"}");
}

}  // namespace shield5g::net
