#include "net/http.h"

#include <sstream>

namespace shield5g::net {

namespace {

constexpr const char* kCrlf = "\r\n";

std::string headers_block(const std::map<std::string, std::string>& headers,
                          std::size_t body_size) {
  std::ostringstream os;
  for (const auto& [k, v] : headers) os << k << ": " << v << kCrlf;
  os << "content-length: " << body_size << kCrlf;
  return os.str();
}

struct ParsedHead {
  std::string start_line;
  std::map<std::string, std::string> headers;
  std::string body;
};

std::optional<ParsedHead> parse_common(ByteView wire) {
  const std::string text = to_string(wire);
  const std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;

  ParsedHead out;
  std::istringstream head(text.substr(0, head_end));
  if (!std::getline(head, out.start_line)) return std::nullopt;
  if (!out.start_line.empty() && out.start_line.back() == '\r') {
    out.start_line.pop_back();
  }
  std::string line;
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    std::string key = line.substr(0, colon);
    std::size_t vstart = colon + 1;
    while (vstart < line.size() && line[vstart] == ' ') ++vstart;
    out.headers[key] = line.substr(vstart);
  }
  out.body = text.substr(head_end + 4);
  const auto it = out.headers.find("content-length");
  if (it != out.headers.end()) {
    const std::size_t want = std::stoul(it->second);
    if (out.body.size() != want) return std::nullopt;
    out.headers.erase(it);
  }
  return out;
}

}  // namespace

const char* method_name(Method m) noexcept {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kPatch: return "PATCH";
  }
  return "GET";
}

Bytes HttpRequest::serialize() const {
  std::ostringstream os;
  os << method_name(method) << " " << path << " HTTP/1.1" << kCrlf
     << headers_block(headers, body.size()) << kCrlf << body;
  return to_bytes(os.str());
}

std::optional<HttpRequest> HttpRequest::parse(ByteView wire) {
  auto head = parse_common(wire);
  if (!head) return std::nullopt;
  std::istringstream start(head->start_line);
  std::string method_str, path, version;
  if (!(start >> method_str >> path >> version)) return std::nullopt;

  HttpRequest req;
  if (method_str == "GET") req.method = Method::kGet;
  else if (method_str == "POST") req.method = Method::kPost;
  else if (method_str == "PUT") req.method = Method::kPut;
  else if (method_str == "DELETE") req.method = Method::kDelete;
  else if (method_str == "PATCH") req.method = Method::kPatch;
  else return std::nullopt;
  req.path = path;
  req.headers = std::move(head->headers);
  req.body = std::move(head->body);
  return req;
}

Bytes HttpResponse::serialize() const {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << (status < 300 ? "OK" : "Error")
     << kCrlf << headers_block(headers, body.size()) << kCrlf << body;
  return to_bytes(os.str());
}

std::optional<HttpResponse> HttpResponse::parse(ByteView wire) {
  auto head = parse_common(wire);
  if (!head) return std::nullopt;
  std::istringstream start(head->start_line);
  std::string version;
  int status = 0;
  if (!(start >> version >> status)) return std::nullopt;

  HttpResponse resp;
  resp.status = status;
  resp.headers = std::move(head->headers);
  resp.body = std::move(head->body);
  return resp;
}

HttpResponse HttpResponse::json(int status, const std::string& body) {
  HttpResponse resp;
  resp.status = status;
  resp.headers["content-type"] = "application/json";
  resp.body = body;
  return resp;
}

HttpResponse HttpResponse::error(int status, const std::string& detail) {
  return json(status, "{\"error\":\"" + detail + "\"}");
}

}  // namespace shield5g::net
