#include "net/http.h"

#include <charconv>
#include <cstring>
#include <stdexcept>

#include "common/hot_stage.h"

namespace shield5g::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";

// Literals the SBI repeats on essentially every message. A Ref whose
// offset has the high bit set indexes this table instead of the
// per-message arena, so storing these strings allocates nothing.
constexpr std::string_view kIntern[] = {
    "content-type",
    "application/json",
    "content-length",
    "accept",
};
constexpr std::uint32_t kInternBit = 0x8000'0000u;

struct Digits {
  char buf[24];
  std::size_t len;
};

Digits format_size(std::size_t value) noexcept {
  Digits d;
  const auto res = std::to_chars(d.buf, d.buf + sizeof(d.buf), value);
  d.len = static_cast<std::size_t>(res.ptr - d.buf);
  return d;
}

std::uint8_t* write_str(std::uint8_t* out, std::string_view s) noexcept {
  if (!s.empty()) std::memcpy(out, s.data(), s.size());
  return out + s.size();
}

// Serialized header block size, so the wire buffer is sized exactly
// once; the writer below must stay in lockstep with it.
std::size_t headers_wire_size(const Headers& headers,
                              std::size_t body_size) noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const Headers::View e = headers.entry(i);
    n += e.key.size() + 2 + e.value.size() + 2;
  }
  n += 16 + format_size(body_size).len + 2;  // content-length: N\r\n
  return n;
}

std::uint8_t* write_headers(std::uint8_t* out, const Headers& headers,
                            std::size_t body_size) noexcept {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const Headers::View e = headers.entry(i);
    out = write_str(out, e.key);
    out = write_str(out, ": ");
    out = write_str(out, e.value);
    out = write_str(out, kCrlf);
  }
  out = write_str(out, "content-length: ");
  const Digits d = format_size(body_size);
  out = write_str(out, std::string_view(d.buf, d.len));
  out = write_str(out, kCrlf);
  return out;
}

std::uint8_t* write_request(std::uint8_t* out,
                            const HttpRequest& req) noexcept {
  out = write_str(out, method_name(req.method));
  out = write_str(out, " ");
  out = write_str(out, req.path);
  out = write_str(out, " HTTP/1.1\r\n");
  out = write_headers(out, req.headers, req.body.size());
  out = write_str(out, kCrlf);
  out = write_str(out, req.body);
  return out;
}

std::uint8_t* write_response(std::uint8_t* out,
                             const HttpResponse& resp) noexcept {
  const std::string_view reason = resp.status < 300 ? "OK" : "Error";
  const Digits status = format_size(static_cast<std::size_t>(resp.status));
  out = write_str(out, "HTTP/1.1 ");
  out = write_str(out, std::string_view(status.buf, status.len));
  out = write_str(out, " ");
  out = write_str(out, reason);
  out = write_str(out, kCrlf);
  out = write_headers(out, resp.headers, resp.body.size());
  out = write_str(out, kCrlf);
  out = write_str(out, resp.body);
  return out;
}

struct ParsedHeadView {
  std::string_view start_line;
  HeaderViews headers;
  std::string_view body;
};

// Parses straight off the wire view: every produced string_view aliases
// the record buffer. The framing content-length header is verified
// against the body length and excluded from the header list (the old
// map parser erased it after checking; duplicates beyond the first were
// already dropped by first-wins insertion, so excluding all occurrences
// is behavior-identical).
std::optional<ParsedHeadView> parse_common_view(ByteView wire) {
  const std::string_view text(reinterpret_cast<const char*>(wire.data()),
                              wire.size());
  const std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return std::nullopt;

  ParsedHeadView out;
  std::string_view head = text.substr(0, head_end);
  const std::size_t line_end = head.find(kCrlf);
  out.start_line = head.substr(0, line_end);
  head = line_end == std::string_view::npos ? std::string_view()
                                            : head.substr(line_end + 2);

  bool have_length = false;
  std::string_view length_text;
  while (!head.empty()) {
    const std::size_t eol = head.find(kCrlf);
    const std::string_view line =
        eol == std::string_view::npos ? head : head.substr(0, eol);
    head = eol == std::string_view::npos ? std::string_view()
                                         : head.substr(eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const std::string_view key = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (key == "content-length") {
      if (!have_length) {
        have_length = true;
        length_text = value;
      }
      continue;
    }
    out.headers.add(key, value);
  }

  out.body = text.substr(head_end + 4);
  if (have_length) {
    std::size_t want = 0;
    const char* first = length_text.data();
    const char* last = first + length_text.size();
    const auto [ptr, ec] = std::from_chars(first, last, want);
    if (ec != std::errc() || ptr != last) return std::nullopt;
    if (out.body.size() != want) return std::nullopt;
  }
  return out;
}

// Splits a start line on single spaces; returns false unless exactly
// `n` tokens come out.
bool split_tokens(std::string_view line, std::string_view* tokens,
                  std::size_t n) {
  std::size_t count = 0;
  while (!line.empty()) {
    const std::size_t sp = line.find(' ');
    const std::string_view tok =
        sp == std::string_view::npos ? line : line.substr(0, sp);
    line = sp == std::string_view::npos ? std::string_view()
                                        : line.substr(sp + 1);
    if (tok.empty()) continue;
    if (count == n) return false;
    tokens[count++] = tok;
  }
  return count == n;
}

// The shared header set of HttpResponse::json/error: fully interned, so
// the per-response copy performs no allocation.
const Headers& json_headers() {
  static const Headers headers = [] {
    Headers h;
    h.set("content-type", "application/json");
    return h;
  }();
  return headers;
}

}  // namespace

const char* method_name(Method m) noexcept {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kPatch: return "PATCH";
  }
  return "GET";
}

// ---------------------------------------------------------------- Headers

std::string_view Headers::resolve(Ref ref) const noexcept {
  if (ref.off & kInternBit) return kIntern[ref.off & ~kInternBit];
  return std::string_view(storage_).substr(ref.off, ref.len);
}

Headers::Ref Headers::encode(std::string_view text) {
  for (std::uint32_t i = 0; i < std::size(kIntern); ++i) {
    if (kIntern[i] == text) {
      return Ref{kInternBit | i, static_cast<std::uint32_t>(text.size())};
    }
  }
  const auto off = static_cast<std::uint32_t>(storage_.size());
  storage_.append(text);
  return Ref{off, static_cast<std::uint32_t>(text.size())};
}

std::size_t Headers::lower_bound(std::string_view key) const noexcept {
  const Entry* e = entries();
  std::size_t i = 0;
  while (i < count_ && resolve(e[i].key) < key) ++i;
  return i;
}

void Headers::insert_at(std::size_t index, Entry entry) {
  if (!overflow_.empty()) {
    overflow_.insert(overflow_.begin() + static_cast<std::ptrdiff_t>(index),
                     entry);
  } else if (count_ == kInline) {
    overflow_.reserve(kInline * 2);
    overflow_.assign(inline_, inline_ + kInline);
    overflow_.insert(overflow_.begin() + static_cast<std::ptrdiff_t>(index),
                     entry);
  } else {
    for (std::size_t i = count_; i > index; --i) inline_[i] = inline_[i - 1];
    inline_[index] = entry;
  }
  ++count_;
}

void Headers::set(std::string_view key, std::string_view value) {
  const std::size_t idx = lower_bound(key);
  if (idx < count_ && resolve(entries()[idx].key) == key) {
    entries()[idx].value = encode(value);
    return;
  }
  const Entry entry{encode(key), encode(value)};
  insert_at(idx, entry);
}

bool Headers::add_if_absent(std::string_view key, std::string_view value) {
  const std::size_t idx = lower_bound(key);
  if (idx < count_ && resolve(entries()[idx].key) == key) return false;
  const Entry entry{encode(key), encode(value)};
  insert_at(idx, entry);
  return true;
}

bool Headers::erase(std::string_view key) {
  const std::size_t idx = lower_bound(key);
  if (idx >= count_ || resolve(entries()[idx].key) != key) return false;
  if (!overflow_.empty()) {
    overflow_.erase(overflow_.begin() + static_cast<std::ptrdiff_t>(idx));
  } else {
    for (std::size_t i = idx + 1; i < count_; ++i) inline_[i - 1] = inline_[i];
  }
  --count_;
  return true;
}

std::optional<std::string_view> Headers::find(
    std::string_view key) const noexcept {
  const std::size_t idx = lower_bound(key);
  if (idx >= count_ || resolve(entries()[idx].key) != key) return std::nullopt;
  return resolve(entries()[idx].value);
}

std::string_view Headers::at(std::string_view key) const {
  const auto value = find(key);
  if (!value) throw std::out_of_range("Headers::at: no such key");
  return *value;
}

bool Headers::contains(std::string_view key) const noexcept {
  return find(key).has_value();
}

Headers::View Headers::entry(std::size_t i) const noexcept {
  const Entry& e = entries()[i];
  return View{resolve(e.key), resolve(e.value)};
}

// ------------------------------------------------------------ HeaderViews

void HeaderViews::add(std::string_view key, std::string_view value) {
  if (count_ < kInline) {
    items_[count_++] = Item{key, value};
    return;
  }
  if (overflow_.empty()) {
    overflow_.reserve(kInline * 2);
    overflow_.assign(items_, items_ + kInline);
  }
  overflow_.push_back(Item{key, value});
  ++count_;
}

std::optional<std::string_view> HeaderViews::find(
    std::string_view key) const noexcept {
  for (std::size_t i = 0; i < count_; ++i) {
    const Item& item = (*this)[i];
    if (item.key == key) return item.value;
  }
  return std::nullopt;
}

bool HeaderViews::contains(std::string_view key) const noexcept {
  return find(key).has_value();
}

// ----------------------------------------------------------- view parsers

std::optional<RequestView> RequestView::parse(ByteView wire) {
  ScopedStage timer(HotStage::kCodec);
  auto head = parse_common_view(wire);
  if (!head) return std::nullopt;
  std::string_view tokens[3];
  if (!split_tokens(head->start_line, tokens, 3)) return std::nullopt;
  const std::string_view method_str = tokens[0];

  RequestView req;
  if (method_str == "GET") req.method = Method::kGet;
  else if (method_str == "POST") req.method = Method::kPost;
  else if (method_str == "PUT") req.method = Method::kPut;
  else if (method_str == "DELETE") req.method = Method::kDelete;
  else if (method_str == "PATCH") req.method = Method::kPatch;
  else return std::nullopt;
  req.path = tokens[1];
  req.headers = std::move(head->headers);
  req.body = head->body;
  return req;
}

std::optional<ResponseView> ResponseView::parse(ByteView wire) {
  ScopedStage timer(HotStage::kCodec);
  auto head = parse_common_view(wire);
  if (!head) return std::nullopt;
  // Start line: "HTTP/1.1 <status> <reason...>"; the reason phrase may
  // itself contain spaces, so only the first two tokens are split off.
  const std::string_view line = head->start_line;
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  std::string_view rest = line.substr(sp1 + 1);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t sp2 = rest.find(' ');
  const std::string_view status_str =
      sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  int status = 0;
  const char* first = status_str.data();
  const char* last = first + status_str.size();
  const auto [ptr, ec] = std::from_chars(first, last, status);
  if (ec != std::errc() || ptr != last || first == last) return std::nullopt;

  ResponseView resp;
  resp.status = status;
  resp.headers = std::move(head->headers);
  resp.body = head->body;
  return resp;
}

// ------------------------------------------------------------ HttpRequest

std::size_t HttpRequest::serialized_size() const noexcept {
  const std::string_view method_str = method_name(method);
  return method_str.size() + 1 + path.size() + 9 + 2 +
         headers_wire_size(headers, body.size()) + 2 + body.size();
}

void HttpRequest::serialize_into(PooledBuffer& out) const {
  ScopedStage timer(HotStage::kCodec);
  write_request(out.grow(serialized_size()), *this);
}

Bytes HttpRequest::serialize() const {
  ScopedStage timer(HotStage::kCodec);
  Bytes out(serialized_size());
  write_request(out.data(), *this);
  return out;
}

std::optional<HttpRequest> HttpRequest::parse(ByteView wire) {
  const auto view = RequestView::parse(wire);
  if (!view) return std::nullopt;
  return materialize(*view);
}

HttpRequest HttpRequest::materialize(const RequestView& view) {
  HttpRequest req;
  req.method = view.method;
  req.path.assign(view.path);
  for (std::size_t i = 0; i < view.headers.size(); ++i) {
    const HeaderViews::Item& item = view.headers[i];
    req.headers.add_if_absent(item.key, item.value);
  }
  req.body.assign(view.body);
  return req;
}

// ----------------------------------------------------------- HttpResponse

std::size_t HttpResponse::serialized_size() const noexcept {
  const std::string_view reason = status < 300 ? "OK" : "Error";
  return 9 + format_size(static_cast<std::size_t>(status)).len + 1 +
         reason.size() + 2 + headers_wire_size(headers, body.size()) + 2 +
         body.size();
}

void HttpResponse::serialize_into(PooledBuffer& out) const {
  ScopedStage timer(HotStage::kCodec);
  write_response(out.grow(serialized_size()), *this);
}

Bytes HttpResponse::serialize() const {
  ScopedStage timer(HotStage::kCodec);
  Bytes out(serialized_size());
  write_response(out.data(), *this);
  return out;
}

std::optional<HttpResponse> HttpResponse::parse(ByteView wire) {
  const auto view = ResponseView::parse(wire);
  if (!view) return std::nullopt;
  return materialize(*view);
}

HttpResponse HttpResponse::materialize(const ResponseView& view) {
  HttpResponse resp;
  resp.status = view.status;
  for (std::size_t i = 0; i < view.headers.size(); ++i) {
    const HeaderViews::Item& item = view.headers[i];
    resp.headers.add_if_absent(item.key, item.value);
  }
  resp.body.assign(view.body);
  return resp;
}

namespace {

// Shared header-block transparency rules; see the header comment on
// wire_transparent(). Keys may not contain ':' (the parser splits on
// the first colon), CR or LF (framing); values may not contain CR/LF or
// start with a space (the parser strips leading spaces); and
// "content-length" is reserved for framing (the parser consumes every
// occurrence). Bodies are unconstrained — they ride behind the
// verified content-length and the parser never scans them.
bool headers_wire_transparent(const Headers& headers) noexcept {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const Headers::View e = headers.entry(i);
    if (e.key.empty() || e.key == "content-length") return false;
    if (e.key.find_first_of(":\r\n") != std::string_view::npos) return false;
    if (!e.value.empty() && e.value.front() == ' ') return false;
    if (e.value.find_first_of("\r\n") != std::string_view::npos) return false;
  }
  return true;
}

}  // namespace

bool wire_transparent(const HttpRequest& req) noexcept {
  // The request line splits on single spaces into exactly three tokens,
  // so the path must be non-empty and free of spaces and CR/LF.
  if (req.path.empty() ||
      req.path.find_first_of(" \r\n") != std::string::npos) {
    return false;
  }
  return headers_wire_transparent(req.headers);
}

bool wire_transparent(const HttpResponse& resp) noexcept {
  // The status line re-derives the reason phrase from the status, so
  // any status the start-line parser round-trips is transparent; keep
  // to the HTTP-meaningful 3-digit range.
  if (resp.status < 100 || resp.status > 999) return false;
  return headers_wire_transparent(resp.headers);
}

RequestView request_view_of(const HttpRequest& req) {
  RequestView view;
  view.method = req.method;
  view.path = req.path;
  // serialize_into() emits headers in key-sorted entry order and the
  // parser preserves wire order, so entry order IS the view order.
  for (std::size_t i = 0; i < req.headers.size(); ++i) {
    const Headers::View e = req.headers.entry(i);
    view.headers.add(e.key, e.value);
  }
  view.body = req.body;
  return view;
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.headers = json_headers();
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::error(int status, std::string_view detail) {
  std::string body;
  body.reserve(detail.size() + 12);
  body += "{\"error\":\"";
  body += detail;
  body += "\"}";
  return json(status, std::move(body));
}

}  // namespace shield5g::net
