// The simulated Docker bridge: servers, connections and request routing.
//
// Services attach to the bus by name (the OAI docker-compose service
// names). A request crosses the bridge as real TLS-protected wire bytes;
// the bus charges client-side costs, bridge latency, and drives the
// server's request pipeline, which charges its own environment
// (container or SGX). The pipeline measures exactly the quantities the
// paper reports:
//   L_F  — execution time of the AKA function (JSON + crypto + handler),
//   L_T  — request-received .. response-sent inside the module,
//   R    — response time observed by the calling VNF.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/buffer_pool.h"
#include "common/lru_cache.h"
#include "common/rng.h"
#include "common/stats.h"
#include "crypto/cost.h"
#include "net/env.h"
#include "net/http.h"
#include "net/router.h"
#include "net/service_queue.h"
#include "net/tls.h"
#include "sim/clock.h"

namespace shield5g::net {

/// Network & software-stack cost constants (the container baseline; the
/// SGX deltas come from the environment the server runs in).
struct NetCosts {
  sim::Nanos bridge_one_way = 55 * sim::kMicrosecond;
  double bridge_per_byte_ns = 1.0;

  sim::Nanos handler_fixed_ns = 14 * sim::kMicrosecond;
  sim::Nanos http_parse_fixed = 2 * sim::kMicrosecond;
  double http_parse_per_byte = 12.0;
  sim::Nanos http_ser_fixed = 1'500;
  double http_ser_per_byte = 8.0;
  sim::Nanos json_parse_fixed = 3'500;
  double json_parse_per_byte = 55.0;
  sim::Nanos json_dump_fixed = 2'500;
  double json_dump_per_byte = 30.0;
  sim::Nanos tls_record_fixed = 1'800;
  sim::Nanos client_fixed_ns = 6 * sim::kMicrosecond;

  /// Multiplicative log-normal jitter applied to compute and bridge
  /// charges (gives the paper's box plots their spread).
  double jitter_sigma = 0.045;

  crypto::PrimitiveCosts primitives;

  sim::Nanos http_parse_ns(std::size_t bytes) const noexcept {
    return http_parse_fixed +
           static_cast<sim::Nanos>(http_parse_per_byte * double(bytes));
  }
  sim::Nanos http_ser_ns(std::size_t bytes) const noexcept {
    return http_ser_fixed +
           static_cast<sim::Nanos>(http_ser_per_byte * double(bytes));
  }
  sim::Nanos json_parse_ns(std::size_t bytes) const noexcept {
    if (bytes == 0) return 0;
    return json_parse_fixed +
           static_cast<sim::Nanos>(json_parse_per_byte * double(bytes));
  }
  sim::Nanos json_dump_ns(std::size_t bytes) const noexcept {
    if (bytes == 0) return 0;
    return json_dump_fixed +
           static_cast<sim::Nanos>(json_dump_per_byte * double(bytes));
  }
};

/// Per-request server activity outside the handler window: epoll wait,
/// reactor-to-worker futex handoffs, timer maintenance. Under SGX every
/// entry is an OCALL round trip — these dominate R_S^SGX (paper §V-B5:
/// the transitions "are only invoked during network I/O operations").
struct RequestProfile {
  std::vector<std::pair<Sys, std::uint32_t>> pre_window = default_pre();
  std::uint32_t recv_chunks = 3;
  std::uint32_t send_chunks = 3;
  /// Heap churn per request (EPC allocation pressure under SGX).
  std::uint64_t alloc_pages = 2;
  /// Cold-path pages / lazy-load OCALLs triggered by the first request.
  std::uint64_t first_request_pages = 9'000;
  std::uint32_t first_request_ocalls = 200;

  static std::vector<std::pair<Sys, std::uint32_t>> default_pre();
};

class Server {
 public:
  Server(std::string name, ExecutionEnv& env, const NetCosts& costs);
  virtual ~Server() = default;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& name() const noexcept { return name_; }
  Router& router() noexcept { return router_; }
  ExecutionEnv& env() noexcept { return *env_; }
  RequestProfile& profile() noexcept { return profile_; }

  /// Admission queue + worker-pool occupancy: every request through the
  /// bus passes it before the service window opens. With a single
  /// in-flight caller every wait is zero; under the open-loop engine it
  /// charges real queueing delay.
  ServiceQueue& queue() noexcept { return queue_; }
  const ServiceQueue& queue() const noexcept { return queue_; }

  /// Swaps the execution environment (used when re-deploying the same
  /// module from container to enclave).
  void rebind_env(ExecutionEnv& env) noexcept { env_ = &env; }

  struct ServeResult {
    PooledBuffer record_out;  // TLS-protected response
    sim::Nanos l_f = 0;
    sim::Nanos l_t = 0;
    bool ok = false;
  };

  /// Runs the full server-side pipeline for one protected request. The
  /// record buffer is consumed: it is decrypted in place, the parsed
  /// request views alias it while the handler runs, and its slab goes
  /// back to the thread's pool on return. The response comes back as a
  /// pooled record the same way.
  ServeResult serve_record(PooledBuffer record_in, TlsSession& session,
                           sim::VirtualClock& clock, Rng& jitter);

  struct DirectServeResult {
    /// The handler's response, handed across without a wire round trip
    /// (engaged unless fell_back).
    HttpResponse response;
    /// Wire size the response record would have had (charges and
    /// syscall byte counts on the client side derive from it).
    std::size_t record_out_size = 0;
    /// Engaged only when the response was not wire-transparent: the
    /// real protected record, to be carried through the legacy client
    /// receive path.
    PooledBuffer record_out;
    sim::Nanos l_f = 0;
    sim::Nanos l_t = 0;
    bool ok = false;
    bool fell_back = false;
  };

  /// Co-located variant of serve_record (DESIGN.md §18): the request is
  /// handed across as the in-memory message, no record bytes exist, yet
  /// every virtual-time charge, op count, syscall and RNG draw of the
  /// wire pipeline is replayed exactly — `record_in_size` (the wire
  /// size the request record would have had) drives the recv charges
  /// and the synthetic TLS op counts. `session` is the real server-side
  /// session of the connection (the handshake always runs for real);
  /// it is only used when the handler's response turns out not to be
  /// wire-transparent, in which case the response leg falls back to a
  /// genuinely protected record. Pre: wire_transparent(req).
  DirectServeResult serve_direct(const HttpRequest& req,
                                 std::size_t record_in_size,
                                 TlsSession& session,
                                 sim::VirtualClock& clock, Rng& jitter);

  /// Latency samples in microseconds, accumulated per request.
  Samples& lf_us() noexcept { return lf_us_; }
  Samples& lt_us() noexcept { return lt_us_; }
  std::uint64_t requests_served() const noexcept { return served_; }
  void reset_stats();
  /// Marks the next request as a "first" request again (fresh deploy).
  void reset_served() noexcept { served_ = 0; }

 private:
  std::string name_;
  ExecutionEnv* env_;
  const NetCosts* costs_;
  Router router_;
  RequestProfile profile_;
  ServiceQueue queue_;
  Samples lf_us_;
  Samples lt_us_;
  std::uint64_t served_ = 0;
};

class Bus {
 public:
  explicit Bus(sim::VirtualClock& clock, NetCosts costs = {},
               std::uint64_t seed = 0xb05b05ULL);

  sim::VirtualClock& clock() noexcept { return clock_; }
  NetCosts& costs() noexcept { return costs_; }
  Rng& rng() noexcept { return rng_; }

  /// Deployment/trust domain of an attached server (DESIGN.md §18). Two
  /// servers share a domain only when they run in one address space
  /// with no isolation boundary between them — the monolithic layout.
  /// kIsolatedDomain (the default) means "this endpoint trusts nothing
  /// at memory level": container and SGX deployments always keep it, so
  /// their hops always pay the full wire ceremony.
  using TrustDomain = std::uint32_t;
  static constexpr TrustDomain kIsolatedDomain = 0;

  /// Domain stamped on every subsequent attach(). Set before the VNFs
  /// attach (slice construction does); never retroactive.
  void set_attach_domain(TrustDomain domain) noexcept {
    attach_domain_ = domain;
  }

  /// Co-located delivery fast path: on by default, forced off by
  /// SHIELD5G_BUS_FASTPATH=off|0 (read at Bus construction) or this
  /// setter (parity tests toggle it per-bus). Only ever taken between
  /// two attached endpoints of the same non-isolated trust domain with
  /// fault injection disabled; virtual time, op counts and digests are
  /// byte-identical either way — the wire path is the oracle.
  void set_fastpath(bool enabled) noexcept { fastpath_ = enabled; }
  bool fastpath() const noexcept { return fastpath_; }
  /// Requests this bus delivered co-located (also counted globally as
  /// bus.fastpath.hit); response-leg fallbacks count as hits too — the
  /// request leg was still zero-wire.
  std::uint64_t fastpath_hits() const noexcept { return fastpath_hits_; }

  /// Attaches a server; a TLS identity is generated for it.
  void attach(Server& server);
  void detach(std::string_view name);
  Server* find(std::string_view name) noexcept;

  /// Keep-alive policy: when false (the default, matching OAI's
  /// one-shot libcurl clients), every request performs a TCP connect
  /// plus TLS handshake and closes the connection afterwards.
  void set_keep_alive(bool keep_alive) noexcept { keep_alive_ = keep_alive; }

  /// TLS session resumption: when enabled, every server attached from
  /// then on gets a TicketIssuer, handshakes switch to the resumable
  /// family, and the bus caches the latest ticket per (client, server)
  /// pair — so even one-shot connections skip the scalar mults on every
  /// contact after the first. MUST be set before attach() for the
  /// issuer key draws to land; when left disabled (the default) the
  /// wire bytes and RNG stream are bit-identical to the legacy path.
  /// Counters: tls.resume.{hit,miss,reject} (never fed to digests).
  void set_resumption(
      bool enabled,
      std::uint64_t ticket_lifetime_ns = TicketIssuer::kDefaultLifetimeNs) {
    resumption_ = enabled;
    ticket_lifetime_ns_ = ticket_lifetime_ns;
  }
  bool resumption() const noexcept { return resumption_; }

  /// Default bound of the resumption-ticket cache: far above any
  /// deployed (client, server) pair count in this codebase, so the
  /// bound only bites when an operator shrinks it.
  static constexpr std::size_t kTicketCacheCapacity = 1024;

  /// Bound on the per-(client, server) ticket cache. The default is
  /// far above any deployed pair count, so existing runs never evict
  /// (bit-identical virtual time); shrinking it exercises the LRU —
  /// an evicted pair simply falls back to one full handshake. Counter:
  /// bus.ticket.evict.
  void set_ticket_capacity(std::size_t capacity) {
    tickets_.set_capacity(capacity);
  }
  std::uint64_t ticket_evictions() const noexcept {
    return tickets_.evictions();
  }

  /// Ephemeral-key precompute pool consumed by the client side of full
  /// handshakes (nullptr = generate from the bus RNG, the legacy path).
  void set_eph_pool(crypto::EphemeralKeyPool* pool) noexcept {
    eph_pool_ = pool;
  }

  /// Fault injection on the bridge (co-residency noise, congested
  /// vswitch): records corrupted in flight fail the server's TLS check;
  /// dropped responses surface as transport errors after a
  /// retransmission timeout.
  struct FaultPlan {
    double corrupt_record_prob = 0.0;
    double drop_response_prob = 0.0;
    sim::Nanos retransmit_timeout = 200 * sim::kMillisecond;
  };
  void set_fault_plan(FaultPlan plan) noexcept { faults_ = plan; }
  std::uint64_t faults_injected() const noexcept { return faults_injected_; }

  /// Pinned TLS public key of an attached server (what a client
  /// certificate check — or an RA-TLS quote — must bind to).
  std::optional<crypto::X25519Key> server_identity(
      std::string_view name) const;

  struct Exchange {
    HttpResponse response;
    sim::Nanos l_f = 0;        // server handler window
    sim::Nanos l_t = 0;        // server request window
    sim::Nanos queue_ns = 0;   // time spent in the server's FIFO queue
    sim::Nanos response_ns = 0;  // client-observed response time
    bool transport_ok = false;
  };

  /// Performs one request from `from` (an arbitrary client label) to
  /// the server attached as `to`. `client_env` charges the client-side
  /// work; pass nullptr for an ambient host client.
  Exchange request(std::string_view from, std::string_view to,
                   const HttpRequest& req, ExecutionEnv* client_env = nullptr);

  /// Drops cached connections to a server (server restart).
  void drop_connections(std::string_view server_name);

 private:
  // Attached service names are interned to dense 32-bit ids once; from
  // then on every request resolves servers and cached connections
  // through id-keyed flat tables — no string-pair keys, no per-request
  // temporary strings, no tree walks.
  struct Attachment {
    Server* server = nullptr;  // null = id known but nothing attached
    TlsIdentity identity;
    // Session-ticket authority, present only under resumption (so the
    // legacy path draws no extra RNG bytes at attach time).
    std::unique_ptr<TicketIssuer> issuer;
    TrustDomain domain = kIsolatedDomain;
  };
  struct Connection {
    std::optional<TlsSession> client;
    std::optional<TlsSession> server;
  };
  /// Client-side resumption state per (from, to) pair: the latest
  /// ticket and the secret it binds. Outlives connections — this is
  /// what lets OAI-style one-shot clients resume.
  struct TicketState {
    Bytes ticket;
    Secret<32> secret;
  };

  /// Id for `name`, creating one (and an empty attachment slot) if new.
  std::uint32_t intern(std::string_view name);
  /// Id for `name` if it was ever interned; never inserts, so one-shot
  /// client labels do not grow the tables.
  std::optional<std::uint32_t> lookup(std::string_view name) const noexcept;
  static std::uint64_t connection_key(std::uint32_t from,
                                      std::uint32_t to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Opens one connection (TCP round trip + TLS handshake). With
  /// resumption on, `tickets` (the cached per-pair state, may be null
  /// on the ambient path) drives a resumed handshake when a ticket is
  /// present and is updated with the freshly issued one; without
  /// resumption this is the legacy byte-identical handshake.
  Connection open_connection(Attachment& target, ExecutionEnv& client_env,
                             TicketState* tickets);
  sim::Nanos bridge_ns(std::size_t bytes);
  double jitter();

  /// True when `from` and `to` may use co-located delivery for `req`
  /// (fast path armed, same non-isolated domain, no fault injection,
  /// lossless round trip).
  bool fastpath_eligible(std::string_view from, const Attachment& target,
                         const HttpRequest& req) const noexcept;

  sim::VirtualClock& clock_;
  NetCosts costs_;
  Rng rng_;
  bool keep_alive_ = false;
  bool fastpath_ = true;
  TrustDomain attach_domain_ = kIsolatedDomain;
  std::uint64_t fastpath_hits_ = 0;
  bool resumption_ = false;
  std::uint64_t ticket_lifetime_ns_ = TicketIssuer::kDefaultLifetimeNs;
  crypto::EphemeralKeyPool* eph_pool_ = nullptr;
  FaultPlan faults_;
  std::uint64_t faults_injected_ = 0;
  std::deque<std::string> names_;  // stable storage behind ids_ keys
  std::unordered_map<std::string_view, std::uint32_t> ids_;
  std::vector<Attachment> servers_;  // indexed by interned id
  std::unordered_map<std::uint64_t, Connection> connections_;
  /// Bounded LRU: TicketState nodes are pointer-stable until their own
  /// eviction, which is what lets a TicketState* ride through
  /// open_connection() while other pairs churn.
  LruCache<std::uint64_t, TicketState> tickets_{kTicketCacheCapacity};
  HostEnv ambient_client_;
};

}  // namespace shield5g::net
