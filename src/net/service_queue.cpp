#include "net/service_queue.h"

#include <algorithm>

namespace shield5g::net {

void ServiceQueue::configure(Config config) {
  config_ = config;
  reset();
}

void ServiceQueue::reset() {
  busy_until_.assign(config_.workers, 0);
  pending_starts_.clear();
  reset_stats();
}

void ServiceQueue::reset_stats() {
  wait_us_.clear();
  admitted_ = 0;
  rejected_ = 0;
  queued_ = 0;
  total_wait_ = 0;
  max_depth_ = 0;
}

std::size_t ServiceQueue::depth(sim::Nanos at) const {
  return static_cast<std::size_t>(std::count_if(
      pending_starts_.begin(), pending_starts_.end(),
      [at](sim::Nanos start) { return start > at; }));
}

ServiceQueue::Admission ServiceQueue::admit(sim::Nanos arrival) {
  Admission adm;
  if (config_.workers == 0) {  // unlimited: no queueing model
    adm.accepted = true;
    adm.start = arrival;
    ++admitted_;
    return adm;
  }

  // Earliest-free worker, lowest index on ties (deterministic replay).
  std::uint32_t best = 0;
  for (std::uint32_t w = 1; w < config_.workers; ++w) {
    if (busy_until_[w] < busy_until_[best]) best = w;
  }
  const sim::Nanos start = std::max(arrival, busy_until_[best]);
  const sim::Nanos wait = start - arrival;

  std::erase_if(pending_starts_,
                [arrival](sim::Nanos s) { return s <= arrival; });
  if (wait > 0) {
    if (config_.capacity > 0 && pending_starts_.size() >= config_.capacity) {
      ++rejected_;
      // Countable from tests/CI like the declassify audit: the NGAP
      // ingress drops this silently (ROADMAP open item), so the shed
      // must at least be visible on the saturation curve.
      counter_add("queue.shed");
      return adm;  // shed: bounded FIFO is full
    }
    pending_starts_.push_back(start);
    max_depth_ = std::max(max_depth_, pending_starts_.size());
    ++queued_;
  }

  adm.accepted = true;
  adm.worker = best;
  adm.start = start;
  ++admitted_;
  total_wait_ += wait;
  wait_us_.add(sim::to_us(wait));
  // Reserve until service start; complete() extends to the real end.
  busy_until_[best] = start;
  return adm;
}

void ServiceQueue::complete(std::uint32_t worker, sim::Nanos end) {
  if (worker >= busy_until_.size()) return;  // unlimited mode no-op
  busy_until_[worker] = std::max(busy_until_[worker], end);
}

}  // namespace shield5g::net
