// REST router (the Pistache-endpoint analogue).
//
// Each P-AKA function / SBI operation is mapped to an endpoint handler,
// exactly as the paper describes ("the modules expose REST API endpoints
// where each AKA function is mapped to an endpoint handler"). Path
// templates support `:param` segments (e.g. "/nudm-ueau/v1/:supi/...").
//
// Handlers receive the zero-copy RequestView (path/headers/body alias
// the decrypted record buffer) plus flat PathParams; dispatching walks
// the route table by reference and splits the request path into stack
// views, so a routed request allocates only the parameter values it
// actually extracts.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/http.h"

namespace shield5g::net {

/// Path parameters extracted from a template match. Keys alias the
/// route template (stable while the handler runs); values are owned
/// copies of the matched path segments.
class PathParams {
 public:
  static constexpr std::size_t kMax = 4;

  /// Throws std::out_of_range when the parameter is absent.
  const std::string& at(std::string_view key) const;
  bool contains(std::string_view key) const noexcept;
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Router internals (public for tests building params directly).
  void add(std::string_view key, std::string_view value);
  void clear() noexcept { count_ = 0; }

 private:
  struct Item {
    std::string_view key;
    std::string value;
  };
  Item items_[kMax];
  std::size_t count_ = 0;
};

using Handler =
    std::function<HttpResponse(const RequestView&, const PathParams&)>;

class Router {
 public:
  /// Registers a handler for a method + path template.
  void add(Method method, const std::string& path_template, Handler handler);

  /// Dispatches; 404 when no route matches, 405 when the path matches
  /// but the method does not.
  HttpResponse route(const RequestView& req) const;
  /// Convenience overload for owning messages (tests, direct-chain
  /// benches): builds an aliasing view and dispatches through it.
  HttpResponse route(const HttpRequest& req) const;

  std::size_t route_count() const noexcept { return routes_.size(); }

 private:
  struct Route {
    Method method;
    std::vector<std::string> segments;  // ":name" marks a parameter
    Handler handler;
  };

  static std::vector<std::string> split(const std::string& path);
  static bool match(const Route& route, const std::string_view* segments,
                    std::size_t count, PathParams& params);

  std::vector<Route> routes_;
};

}  // namespace shield5g::net
