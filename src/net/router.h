// REST router (the Pistache-endpoint analogue).
//
// Each P-AKA function / SBI operation is mapped to an endpoint handler,
// exactly as the paper describes ("the modules expose REST API endpoints
// where each AKA function is mapped to an endpoint handler"). Path
// templates support `:param` segments (e.g. "/nudm-ueau/v1/:supi/...").
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/http.h"

namespace shield5g::net {

/// Path parameters extracted from a template match.
using PathParams = std::map<std::string, std::string>;

using Handler =
    std::function<HttpResponse(const HttpRequest&, const PathParams&)>;

class Router {
 public:
  /// Registers a handler for a method + path template.
  void add(Method method, const std::string& path_template, Handler handler);

  /// Dispatches; 404 when no route matches, 405 when the path matches
  /// but the method does not.
  HttpResponse route(const HttpRequest& req) const;

  std::size_t route_count() const noexcept { return routes_.size(); }

 private:
  struct Route {
    Method method;
    std::vector<std::string> segments;  // ":name" marks a parameter
    Handler handler;
  };

  static std::vector<std::string> split(const std::string& path);
  static bool match(const Route& route, const std::vector<std::string>& path,
                    PathParams& params);

  std::vector<Route> routes_;
};

}  // namespace shield5g::net
