// Execution environments: where a microservice's code runs and how its
// syscalls and computation are charged to the virtual clock.
//
// The paper compares three deployments of the same AKA code: monolithic
// (inside the parent VNF), container (separate Docker container) and
// SGX (Gramine-shielded container). The first two execute on the host —
// syscalls cost their plain service time; the SGX environment (defined
// in paka/deployment.h, wrapping the LibOS runtime) turns every syscall
// into an OCALL round trip and scales computation by the
// memory-encryption factor.
#pragma once

#include <cstdint>
#include <string>

#include "common/syscall.h"
#include "sim/clock.h"

namespace shield5g::net {

class ExecutionEnv {
 public:
  virtual ~ExecutionEnv() = default;

  /// Issues one syscall of class `sys` moving `bytes` payload bytes.
  virtual void syscall(Sys sys, std::uint64_t bytes = 0) = 0;

  /// Charges `ns` of computation.
  virtual void compute(sim::Nanos ns) = 0;

  /// Heap-allocation churn of `pages` 4 KiB pages during a request.
  virtual void alloc_pages(std::uint64_t pages) = 0;

  /// Called once before the very first request is served (lazy library
  /// loading, cold code paths — the R_I spike of Fig. 10b).
  virtual void on_first_request() = 0;

  /// Per-request background activity hook (paging pressure etc.).
  virtual void on_request(std::uint64_t /*request_index*/) {}

  virtual std::string kind() const = 0;
  virtual bool is_sgx() const { return false; }
};

/// Plain host / container execution (the paper's non-SGX baselines;
/// the difference between monolithic and container is at the network
/// layer, not here).
class HostEnv final : public ExecutionEnv {
 public:
  explicit HostEnv(sim::VirtualClock& clock) : clock_(clock) {}

  void syscall(Sys sys, std::uint64_t bytes = 0) override {
    clock_.advance(syscall_host_ns(sys, bytes));
  }
  void compute(sim::Nanos ns) override { clock_.advance(ns); }
  void alloc_pages(std::uint64_t pages) override {
    clock_.advance(pages * kHostAllocPerPage);
  }
  void on_first_request() override {
    // Warm page cache / lazy dynamic linking on the host: cheap.
    clock_.advance(180 * sim::kMicrosecond);
  }
  std::string kind() const override { return "container"; }

 private:
  static constexpr sim::Nanos kHostAllocPerPage = 150;
  sim::VirtualClock& clock_;
};

}  // namespace shield5g::net
