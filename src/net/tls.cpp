#include "net/tls.h"

#include <array>
#include <cstring>
#include <stdexcept>

#include "common/hot_stage.h"
#include "crypto/ecies.h"
#include "crypto/eph_pool.h"
#include "crypto/hmac_sha256.h"

namespace shield5g::net {

namespace {

std::array<std::uint8_t, 16> direction_icb(const TlsDirection& dir) {
  std::array<std::uint8_t, 16> icb{};
  for (int i = 0; i < 16; ++i) icb[i] = dir.base_iv[i];
  for (int i = 0; i < 8; ++i) {
    icb[15 - i] = static_cast<std::uint8_t>(
        icb[15 - i] ^ static_cast<std::uint8_t>(dir.seq >> (8 * i)));
  }
  return icb;
}

std::array<std::uint8_t, 8> seq_bytes(std::uint64_t seq) {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    out[7 - i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return out;
}

TlsDirection make_direction(const Bytes& material, std::size_t off) {
  TlsDirection dir{crypto::Aes128Ctx(ByteView(material).subspan(off, 16)),
                   {}, {}, 0};
  std::memcpy(dir.base_iv.data(), material.data() + off + 16, 16);
  std::memcpy(dir.mac_key.data(), material.data() + off + 32, 32);
  return dir;
}

// Seals one record: `record` points at kRecordHeader + n + 16 writable
// bytes with the n plaintext bytes supplied by `src` (which may alias
// record + kRecordHeader — the CTR xor is index-aligned, so encrypting
// in place is safe). The
// MAC is written straight into the record tail, so sealing allocates
// nothing. Both protect() and protect_in_place() run through here,
// which is what makes their wire bytes identical by construction.
void seal_record(TlsDirection& dir, const std::uint8_t* src,
                 std::uint8_t* record, std::size_t n) {
  constexpr std::size_t kHdr = TlsSession::kRecordHeader;
  const auto icb = direction_icb(dir);
  const std::size_t len = n + 16;
  record[0] = 0x17;  // application data
  record[1] = 0x03;
  record[2] = 0x03;
  record[3] = static_cast<std::uint8_t>(len >> 16);
  record[4] = static_cast<std::uint8_t>(len >> 8);
  record[5] = static_cast<std::uint8_t>(len & 0xff);
  dir.ctx.ctr_xor(icb, ByteView(src, n), record + kHdr);

  const auto seq = seq_bytes(dir.seq);
  crypto::hmac_sha256_trunc_into(dir.mac_key, seq, ByteView(record + kHdr, n),
                                 record + kHdr + n, 16);
  ++dir.seq;
}

// Header + MAC validation shared by both unprotect paths; returns the
// plaintext length without touching `dir.seq` (bumped by the caller
// only after the whole open succeeds).
std::optional<std::size_t> check_record(const TlsDirection& dir,
                                        ByteView record) {
  if (record.size() < TlsSession::kRecordOverhead) return std::nullopt;
  // Validate the record header (type + version); these bytes are not
  // covered by the MAC, so they must be checked explicitly.
  if (record[0] != 0x17 || record[1] != 0x03 || record[2] != 0x03) {
    return std::nullopt;
  }
  constexpr std::size_t kHdr = TlsSession::kRecordHeader;
  const std::size_t len = (static_cast<std::size_t>(record[3]) << 16) |
                          (static_cast<std::size_t>(record[4]) << 8) |
                          record[5];
  if (record.size() != kHdr + len || len < 16) return std::nullopt;
  const ByteView ciphertext = record.subspan(kHdr, len - 16);
  const ByteView mac = record.subspan(kHdr + len - 16, 16);

  const auto seq = seq_bytes(dir.seq);
  std::array<std::uint8_t, 16> expected;
  crypto::hmac_sha256_trunc_into(dir.mac_key, seq, ciphertext,
                                 expected.data(), 16);
  if (!ct_equal(ByteView(expected), mac)) return std::nullopt;
  return ciphertext.size();
}

// ---- Resumable-handshake wire constants and key-schedule labels ----

constexpr std::uint8_t kHelloFull = 0x01;
constexpr std::uint8_t kHelloResumed = 0x02;
constexpr std::uint8_t kHelloReject = 0x03;
constexpr std::size_t kResumeNonceLen = 32;
constexpr std::size_t kSessionMaterialLen = 2 * (16 + 16 + 32);

// Domain-separated KDF inputs: 'R' binds the resumption secret to the
// full handshake's ephemeral, 'K' derives per-resumption record keys
// from the secret and a fresh nonce, 'N' chains the next secret.
Bytes labeled_info(char label, ByteView data) {
  Bytes info;
  info.reserve(1 + data.size());
  info.push_back(static_cast<std::uint8_t>(label));
  info.insert(info.end(), data.begin(), data.end());
  return info;
}

Secret<32> derive_secret32(SecretView key, char label, ByteView data) {
  Bytes raw = crypto::x963_kdf(key, labeled_info(label, data), 32);
  const Secret<32> out{ByteView(raw)};
  secure_zero(raw.data(), raw.size());
  return out;
}

std::uint64_t fnv64(ByteView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

}  // namespace

TlsIdentity TlsIdentity::generate(Rng& rng) {
  return TlsIdentity{crypto::x25519_keypair(rng.bytes(32))};
}

// ---------------------------------------------------------------------
// TicketIssuer
// ---------------------------------------------------------------------

TicketIssuer::TicketIssuer(SecretView master, std::uint64_t lifetime_ns)
    : master_(master.unsafe_bytes()), lifetime_ns_(lifetime_ns) {
  if (lifetime_ns_ == 0) {
    throw std::invalid_argument("TicketIssuer: lifetime must be > 0");
  }
}

TicketIssuer::EpochKeys TicketIssuer::keys_for(std::uint32_t epoch) const {
  // Per-epoch ticket-protection keys off the master secret; deriving on
  // demand keeps rotation stateless (no key archive to manage).
  Bytes material =
      crypto::x963_kdf(master_, labeled_info('T', be_bytes(epoch, 4)), 16 + 32);
  EpochKeys keys{crypto::Aes128Ctx(ByteView(material).subspan(0, 16)),
                 Secret<32>(ByteView(material).subspan(16, 32))};
  secure_zero(material.data(), material.size());
  return keys;
}

Bytes TicketIssuer::issue(const Secret<32>& secret, std::uint64_t now_ns,
                          Rng& rng) {
  const std::uint32_t epoch = epoch_.load(std::memory_order_acquire);
  const EpochKeys keys = keys_for(epoch);
  Bytes ticket = concat({ByteView(be_bytes(epoch, 4)),
                         ByteView(be_bytes(now_ns + lifetime_ns_, 8)),
                         ByteView(rng.bytes(16))});
  const Bytes nonce = slice_bytes(ticket, 4 + 8, 16);
  ticket.resize(kTicketSize - 16);
  keys.enc.ctr_xor(nonce, secret.unsafe_bytes(), ticket.data() + 4 + 8 + 16);
  const Bytes tag =
      crypto::hmac_sha256_trunc(keys.mac.unsafe_bytes(), ticket, 16);
  ticket.insert(ticket.end(), tag.begin(), tag.end());
  return ticket;
}

std::optional<Secret<32>> TicketIssuer::redeem(ByteView ticket,
                                               std::uint64_t now_ns) {
  if (ticket.size() != kTicketSize) return std::nullopt;
  const auto epoch = static_cast<std::uint32_t>(be_value(ticket.subspan(0, 4)));
  const std::uint32_t current = epoch_.load(std::memory_order_acquire);
  if (epoch > current || current - epoch > 1) return std::nullopt;

  // Authenticity first: every byte before the tag is MAC-covered, so
  // any single-byte mutation — epoch, expiry, nonce or masked secret —
  // fails here (a mutated epoch selects different keys, which also
  // fails here). Tampered tickets never reach the strike register.
  const EpochKeys keys = keys_for(epoch);
  const Bytes expected = crypto::hmac_sha256_trunc(
      keys.mac.unsafe_bytes(), ticket.subspan(0, kTicketSize - 16), 16);
  if (!ct_equal(expected, ticket.subspan(kTicketSize - 16, 16))) {
    return std::nullopt;
  }
  if (now_ns >= be_value(ticket.subspan(4, 8))) return std::nullopt;

  // Single-use: strike the nonce. Reuse (replay on another connection)
  // rejects and the client falls back to a full handshake.
  const ByteView nonce = ticket.subspan(4 + 8, 16);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!seen_[epoch & 1].insert(fnv64(nonce)).second) return std::nullopt;
  }

  std::array<std::uint8_t, 32> secret{};
  keys.enc.ctr_xor(nonce, ticket.subspan(4 + 8 + 16, 32), secret.data());
  const Secret<32> out(secret);
  secure_zero(secret.data(), secret.size());
  return out;
}

void TicketIssuer::rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t next =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // The slot being recycled held epoch-2's strikes; those tickets are
  // past the grace window and reject on the epoch check alone.
  seen_[next & 1].clear();
}

// ---------------------------------------------------------------------
// TlsSession
// ---------------------------------------------------------------------

TlsSession::TlsSession(ByteView shared_secret, ByteView salt, bool is_client)
    // Key schedule: client->server and server->client keys from the X9.63
    // KDF over the shared secret, salted with the client ephemeral key.
    : TlsSession(crypto::x963_kdf(shared_secret, salt, kSessionMaterialLen),
                 is_client) {}

TlsSession::TlsSession(const Bytes& material, bool is_client)
    : send_(make_direction(material, is_client ? 0 : 64)),
      recv_(make_direction(material, is_client ? 64 : 0)) {}

TlsSession TlsSession::client_connect(ByteView server_public, Rng& rng,
                                      Bytes& hello_out) {
  crypto::X25519Key shared;
  const auto eph =
      crypto::x25519_keypair_shared(rng.bytes(32), server_public, shared);
  hello_out = concat({ByteView(eph.public_key)});
  hello_out.resize(32 + kHelloPadding, 0x5a);  // modeled cert payload
  return TlsSession(shared, eph.public_key, /*is_client=*/true);
}

std::optional<TlsSession> TlsSession::server_accept(
    const crypto::X25519KeyPair& server_key, ByteView client_hello,
    Bytes& server_hello_out) {
  if (client_hello.size() < 32) return std::nullopt;
  const Bytes client_eph = take(client_hello, 32);
  const auto shared = crypto::x25519(server_key.private_key, client_eph);
  server_hello_out.assign(kHelloPadding, 0xa5);  // cert + finished payload
  return TlsSession(shared, client_eph, /*is_client=*/false);
}

TlsSession::ClientHandshake TlsSession::client_connect_resumable(
    ByteView server_public, Rng& rng, Bytes& hello_out,
    crypto::EphemeralKeyPool* pool) {
  crypto::X25519Key shared;
  crypto::X25519KeyPair eph;
  if (pool != nullptr) {
    // Pool-prepared ephemeral with the shared secret against this
    // server key precomputed in a batch: no scalar mult runs in-line
    // (the op meter is still charged one, at acquisition).
    crypto::X25519SharedKeyPair prep = pool->acquire_shared(server_public);
    eph = std::move(prep.kp);
    shared = prep.shared;
  } else {
    eph = crypto::x25519_keypair_shared(rng.bytes(32), server_public, shared);
  }
  hello_out.assign(1, kHelloFull);
  hello_out.insert(hello_out.end(), eph.public_key.begin(),
                   eph.public_key.end());
  hello_out.resize(1 + 32 + kHelloPadding, 0x5a);
  return ClientHandshake{
      TlsSession(shared, eph.public_key, /*is_client=*/true),
      derive_secret32(shared, 'R', eph.public_key)};
}

TlsSession::ClientHandshake TlsSession::client_resume(
    const Secret<32>& resumption_secret, ByteView ticket, Rng& rng,
    Bytes& hello_out) {
  const Bytes nonce = rng.bytes(kResumeNonceLen);
  Bytes material = crypto::x963_kdf(resumption_secret,
                                    labeled_info('K', nonce),
                                    kSessionMaterialLen);
  hello_out.assign(1, kHelloResumed);
  hello_out.insert(hello_out.end(), nonce.begin(), nonce.end());
  const Bytes len = be_bytes(ticket.size(), 2);
  hello_out.insert(hello_out.end(), len.begin(), len.end());
  hello_out.insert(hello_out.end(), ticket.begin(), ticket.end());
  ClientHandshake out{TlsSession(material, /*is_client=*/true),
                      derive_secret32(resumption_secret, 'N', nonce)};
  secure_zero(material.data(), material.size());
  return out;
}

TlsSession::ServerAccept TlsSession::server_accept_resumable(
    const crypto::X25519KeyPair& server_key, ByteView client_hello,
    TicketIssuer& issuer, std::uint64_t now_ns, Rng& rng,
    Bytes& server_hello_out) {
  ServerAccept out;
  if (client_hello.empty()) return out;

  if (client_hello[0] == kHelloFull) {
    if (client_hello.size() < 1 + 32) return out;
    const Bytes client_eph = slice_bytes(client_hello, 1, 32);
    const auto shared = crypto::x25519(server_key.private_key, client_eph);
    const Secret<32> secret = derive_secret32(shared, 'R', client_eph);
    const Bytes ticket = issuer.issue(secret, now_ns, rng);
    server_hello_out.assign(1, kHelloFull);
    const Bytes len = be_bytes(ticket.size(), 2);
    server_hello_out.insert(server_hello_out.end(), len.begin(), len.end());
    server_hello_out.insert(server_hello_out.end(), ticket.begin(),
                            ticket.end());
    server_hello_out.resize(server_hello_out.size() + kHelloPadding, 0xa5);
    out.session.emplace(TlsSession(shared, client_eph, /*is_client=*/false));
    return out;
  }

  if (client_hello[0] == kHelloResumed) {
    // Every failure below — short hello, bad length field, tampered or
    // expired or replayed ticket — takes the same silent-fallback exit.
    const auto reject = [&]() {
      server_hello_out.assign(1, kHelloReject);
      out.retry_full = true;
      return out;
    };
    if (client_hello.size() < 1 + kResumeNonceLen + 2) return reject();
    const ByteView nonce = client_hello.subspan(1, kResumeNonceLen);
    const std::size_t len =
        be_value(client_hello.subspan(1 + kResumeNonceLen, 2));
    if (client_hello.size() != 1 + kResumeNonceLen + 2 + len) return reject();
    const auto secret =
        issuer.redeem(client_hello.subspan(1 + kResumeNonceLen + 2), now_ns);
    // ct-audited(ticket redeem validity; a reject is observable on the wire by design)
    if (!secret) return reject();

    // Zero scalar mults from here on: record keys and the chained next
    // secret come from the KDF alone.
    Bytes material = crypto::x963_kdf(*secret, labeled_info('K', nonce),
                                      kSessionMaterialLen);
    const Secret<32> next = derive_secret32(*secret, 'N', nonce);
    const Bytes next_ticket = issuer.issue(next, now_ns, rng);
    server_hello_out.assign(1, kHelloResumed);
    const Bytes tlen = be_bytes(next_ticket.size(), 2);
    server_hello_out.insert(server_hello_out.end(), tlen.begin(), tlen.end());
    server_hello_out.insert(server_hello_out.end(), next_ticket.begin(),
                            next_ticket.end());
    out.session.emplace(TlsSession(material, /*is_client=*/false));
    secure_zero(material.data(), material.size());
    out.resumed = true;
    return out;
  }

  return out;  // unknown version byte: malformed
}

std::optional<Bytes> TlsSession::hello_ticket(ByteView server_hello) {
  if (server_hello.size() < 3) return std::nullopt;
  if (server_hello[0] != kHelloFull && server_hello[0] != kHelloResumed) {
    return std::nullopt;
  }
  const std::size_t len = be_value(server_hello.subspan(1, 2));
  if (server_hello.size() < 3 + len) return std::nullopt;
  return slice_bytes(server_hello, 3, len);
}

crypto::OpCounts TlsSession::record_op_counts(
    std::size_t plaintext_len) noexcept {
  // One record pass = CTR over the payload + HMAC-SHA256 over
  // seq(8) || ciphertext(n). The HMAC key is 32 <= 64 bytes, so the
  // inner hash runs over ipad(64) || message and the outer over
  // opad(64) || digest(32): floor((72 + 8 + n) / 64) + 1 inner blocks
  // plus 2 outer blocks. protect and unprotect execute exactly the
  // same primitive counts (verify recomputes the MAC, decrypt is the
  // same xor), so one formula covers both directions.
  crypto::OpCounts ops;
  ops.aes_blocks = (plaintext_len + 15) / 16;
  ops.sha256_blocks = (80 + plaintext_len) / 64 + 3;
  return ops;
}

Bytes TlsSession::protect(ByteView plaintext) {
  ScopedStage timer(HotStage::kCrypto);
  Bytes record(kRecordHeader + plaintext.size() + 16);
  seal_record(send_, plaintext.data(), record.data(), plaintext.size());
  return record;
}

void TlsSession::protect_in_place(PooledBuffer& buf) {
  ScopedStage timer(HotStage::kCrypto);
  const std::size_t n = buf.size();
  buf.prepend(kRecordHeader);
  buf.grow(16);
  seal_record(send_, buf.data() + kRecordHeader, buf.data(), n);
}

std::optional<Bytes> TlsSession::unprotect(ByteView record) {
  ScopedStage timer(HotStage::kCrypto);
  const auto n = check_record(recv_, record);
  if (!n) return std::nullopt;
  const auto icb = direction_icb(recv_);
  ++recv_.seq;
  Bytes plaintext(*n);
  recv_.ctx.ctr_xor(icb, record.subspan(kRecordHeader, *n), plaintext.data());
  return plaintext;
}

bool TlsSession::unprotect_in_place(PooledBuffer& buf) {
  ScopedStage timer(HotStage::kCrypto);
  const auto n = check_record(recv_, buf.view());
  if (!n) return false;
  const auto icb = direction_icb(recv_);
  ++recv_.seq;
  recv_.ctx.ctr_xor(icb, ByteView(buf.data() + kRecordHeader, *n),
                    buf.data() + kRecordHeader);
  buf.chop(16);
  buf.chop_front(kRecordHeader);
  return true;
}

}  // namespace shield5g::net
