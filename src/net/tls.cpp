#include "net/tls.h"

#include <array>
#include <cstring>
#include <stdexcept>

#include "common/hot_stage.h"
#include "crypto/ecies.h"
#include "crypto/hmac_sha256.h"

namespace shield5g::net {

namespace {

std::array<std::uint8_t, 16> direction_icb(const TlsDirection& dir) {
  std::array<std::uint8_t, 16> icb{};
  for (int i = 0; i < 16; ++i) icb[i] = dir.base_iv[i];
  for (int i = 0; i < 8; ++i) {
    icb[15 - i] = static_cast<std::uint8_t>(
        icb[15 - i] ^ static_cast<std::uint8_t>(dir.seq >> (8 * i)));
  }
  return icb;
}

std::array<std::uint8_t, 8> seq_bytes(std::uint64_t seq) {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    out[7 - i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return out;
}

TlsDirection make_direction(const Bytes& material, std::size_t off) {
  TlsDirection dir{crypto::Aes128Ctx(ByteView(material).subspan(off, 16)),
                   {}, {}, 0};
  std::memcpy(dir.base_iv.data(), material.data() + off + 16, 16);
  std::memcpy(dir.mac_key.data(), material.data() + off + 32, 32);
  return dir;
}

// Seals one record: `record` points at 5 + n + 16 writable bytes with
// the n plaintext bytes supplied by `src` (which may alias record + 5 —
// the CTR xor is index-aligned, so encrypting in place is safe). The
// MAC is written straight into the record tail, so sealing allocates
// nothing. Both protect() and protect_in_place() run through here,
// which is what makes their wire bytes identical by construction.
void seal_record(TlsDirection& dir, const std::uint8_t* src,
                 std::uint8_t* record, std::size_t n) {
  const auto icb = direction_icb(dir);
  const std::size_t len = n + 16;
  record[0] = 0x17;  // application data
  record[1] = 0x03;
  record[2] = 0x03;
  record[3] = static_cast<std::uint8_t>(len >> 8);
  record[4] = static_cast<std::uint8_t>(len & 0xff);
  dir.ctx.ctr_xor(icb, ByteView(src, n), record + 5);

  const auto seq = seq_bytes(dir.seq);
  crypto::hmac_sha256_trunc_into(dir.mac_key, seq,
                                 ByteView(record + 5, n), record + 5 + n, 16);
  ++dir.seq;
}

// Header + MAC validation shared by both unprotect paths; returns the
// plaintext length without touching `dir.seq` (bumped by the caller
// only after the whole open succeeds).
std::optional<std::size_t> check_record(const TlsDirection& dir,
                                        ByteView record) {
  if (record.size() < TlsSession::kRecordOverhead) return std::nullopt;
  // Validate the record header (type + version); these bytes are not
  // covered by the MAC, so they must be checked explicitly.
  if (record[0] != 0x17 || record[1] != 0x03 || record[2] != 0x03) {
    return std::nullopt;
  }
  const std::size_t len = (static_cast<std::size_t>(record[3]) << 8) |
                          record[4];
  if (record.size() != 5 + len || len < 16) return std::nullopt;
  const ByteView ciphertext = record.subspan(5, len - 16);
  const ByteView mac = record.subspan(5 + len - 16, 16);

  const auto seq = seq_bytes(dir.seq);
  std::array<std::uint8_t, 16> expected;
  crypto::hmac_sha256_trunc_into(dir.mac_key, seq, ciphertext,
                                 expected.data(), 16);
  if (!ct_equal(ByteView(expected), mac)) return std::nullopt;
  return ciphertext.size();
}

}  // namespace

TlsIdentity TlsIdentity::generate(Rng& rng) {
  return TlsIdentity{crypto::x25519_keypair(rng.bytes(32))};
}

TlsSession::TlsSession(ByteView shared_secret, ByteView salt, bool is_client)
    // Key schedule: client->server and server->client keys from the X9.63
    // KDF over the shared secret, salted with the client ephemeral key.
    : TlsSession(crypto::x963_kdf(shared_secret, salt, 2 * (16 + 16 + 32)),
                 is_client) {}

TlsSession::TlsSession(const Bytes& material, bool is_client)
    : send_(make_direction(material, is_client ? 0 : 64)),
      recv_(make_direction(material, is_client ? 64 : 0)) {}

TlsSession TlsSession::client_connect(ByteView server_public, Rng& rng,
                                      Bytes& hello_out) {
  crypto::X25519Key shared;
  const auto eph =
      crypto::x25519_keypair_shared(rng.bytes(32), server_public, shared);
  hello_out = concat({ByteView(eph.public_key)});
  hello_out.resize(32 + kHelloPadding, 0x5a);  // modeled cert payload
  return TlsSession(shared, eph.public_key, /*is_client=*/true);
}

std::optional<TlsSession> TlsSession::server_accept(
    const crypto::X25519KeyPair& server_key, ByteView client_hello,
    Bytes& server_hello_out) {
  if (client_hello.size() < 32) return std::nullopt;
  const Bytes client_eph = take(client_hello, 32);
  const auto shared = crypto::x25519(server_key.private_key, client_eph);
  server_hello_out.assign(kHelloPadding, 0xa5);  // cert + finished payload
  return TlsSession(shared, client_eph, /*is_client=*/false);
}

Bytes TlsSession::protect(ByteView plaintext) {
  ScopedStage timer(HotStage::kCrypto);
  Bytes record(5 + plaintext.size() + 16);
  seal_record(send_, plaintext.data(), record.data(), plaintext.size());
  return record;
}

void TlsSession::protect_in_place(PooledBuffer& buf) {
  ScopedStage timer(HotStage::kCrypto);
  const std::size_t n = buf.size();
  buf.prepend(5);
  buf.grow(16);
  seal_record(send_, buf.data() + 5, buf.data(), n);
}

std::optional<Bytes> TlsSession::unprotect(ByteView record) {
  ScopedStage timer(HotStage::kCrypto);
  const auto n = check_record(recv_, record);
  if (!n) return std::nullopt;
  const auto icb = direction_icb(recv_);
  ++recv_.seq;
  Bytes plaintext(*n);
  recv_.ctx.ctr_xor(icb, record.subspan(5, *n), plaintext.data());
  return plaintext;
}

bool TlsSession::unprotect_in_place(PooledBuffer& buf) {
  ScopedStage timer(HotStage::kCrypto);
  const auto n = check_record(recv_, buf.view());
  if (!n) return false;
  const auto icb = direction_icb(recv_);
  ++recv_.seq;
  recv_.ctx.ctr_xor(icb, ByteView(buf.data() + 5, *n), buf.data() + 5);
  buf.chop(16);
  buf.chop_front(5);
  return true;
}

}  // namespace shield5g::net
