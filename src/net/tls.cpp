#include "net/tls.h"

#include <stdexcept>

#include "crypto/aes128.h"
#include "crypto/ecies.h"
#include "crypto/hmac_sha256.h"

namespace shield5g::net {

namespace {

Bytes direction_icb(const TlsDirection& dir) {
  Bytes icb = dir.base_iv;
  for (int i = 0; i < 8; ++i) {
    icb[15 - i] = static_cast<std::uint8_t>(
        icb[15 - i] ^ static_cast<std::uint8_t>(dir.seq >> (8 * i)));
  }
  return icb;
}

}  // namespace

TlsIdentity TlsIdentity::generate(Rng& rng) {
  return TlsIdentity{crypto::x25519_keypair(rng.bytes(32))};
}

TlsSession::TlsSession(ByteView shared_secret, ByteView salt, bool is_client) {
  // Key schedule: client->server and server->client keys from the X9.63
  // KDF over the shared secret, salted with the client ephemeral key.
  const Bytes material = crypto::x963_kdf(shared_secret, salt, 2 * (16 + 16 + 32));
  auto cut = [&material](std::size_t pos, std::size_t n) {
    return slice_bytes(material, pos, n);
  };
  TlsDirection c2s{cut(0, 16), cut(16, 16), cut(32, 32), 0};
  TlsDirection s2c{cut(64, 16), cut(80, 16), cut(96, 32), 0};
  send_ = is_client ? c2s : s2c;
  recv_ = is_client ? s2c : c2s;
}

TlsSession TlsSession::client_connect(ByteView server_public, Rng& rng,
                                      Bytes& hello_out) {
  const auto eph = crypto::x25519_keypair(rng.bytes(32));
  const auto shared = crypto::x25519(eph.private_key, server_public);
  hello_out = concat({ByteView(eph.public_key)});
  hello_out.resize(32 + kHelloPadding, 0x5a);  // modeled cert payload
  return TlsSession(shared, eph.public_key, /*is_client=*/true);
}

std::optional<TlsSession> TlsSession::server_accept(
    const crypto::X25519KeyPair& server_key, ByteView client_hello,
    Bytes& server_hello_out) {
  if (client_hello.size() < 32) return std::nullopt;
  const Bytes client_eph = take(client_hello, 32);
  const auto shared = crypto::x25519(server_key.private_key, client_eph);
  server_hello_out.assign(kHelloPadding, 0xa5);  // cert + finished payload
  return TlsSession(shared, client_eph, /*is_client=*/false);
}

Bytes TlsSession::protect(ByteView plaintext) {
  const Bytes icb = direction_icb(send_);
  const Bytes ciphertext = crypto::aes128_ctr(send_.key, icb, plaintext);
  const Bytes seq = be_bytes(send_.seq, 8);
  const Bytes mac = crypto::hmac_sha256_trunc(
      send_.mac_key, concat({ByteView(seq), ByteView(ciphertext)}), 16);
  ++send_.seq;

  Bytes record;
  record.push_back(0x17);  // application data
  record.push_back(0x03);
  record.push_back(0x03);
  const std::size_t len = ciphertext.size() + mac.size();
  record.push_back(static_cast<std::uint8_t>(len >> 8));
  record.push_back(static_cast<std::uint8_t>(len & 0xff));
  record.insert(record.end(), ciphertext.begin(), ciphertext.end());
  record.insert(record.end(), mac.begin(), mac.end());
  return record;
}

std::optional<Bytes> TlsSession::unprotect(ByteView record) {
  if (record.size() < kRecordOverhead) return std::nullopt;
  // Validate the record header (type + version); these bytes are not
  // covered by the MAC, so they must be checked explicitly.
  if (record[0] != 0x17 || record[1] != 0x03 || record[2] != 0x03) {
    return std::nullopt;
  }
  const std::size_t len = (static_cast<std::size_t>(record[3]) << 8) |
                          record[4];
  if (record.size() != 5 + len || len < 16) return std::nullopt;
  const Bytes ciphertext = slice_bytes(record, 5, len - 16);
  const Bytes mac = slice_bytes(record, 5 + len - 16, 16);

  const Bytes seq = be_bytes(recv_.seq, 8);
  const Bytes expected = crypto::hmac_sha256_trunc(
      recv_.mac_key, concat({ByteView(seq), ByteView(ciphertext)}), 16);
  if (!ct_equal(expected, mac)) return std::nullopt;

  const Bytes icb = direction_icb(recv_);
  ++recv_.seq;
  return crypto::aes128_ctr(recv_.key, icb, ciphertext);
}

}  // namespace shield5g::net
