#include "net/tls.h"

#include <array>
#include <stdexcept>

#include "common/hot_stage.h"
#include "crypto/ecies.h"
#include "crypto/hmac_sha256.h"

namespace shield5g::net {

namespace {

std::array<std::uint8_t, 16> direction_icb(const TlsDirection& dir) {
  std::array<std::uint8_t, 16> icb{};
  for (int i = 0; i < 16; ++i) icb[i] = dir.base_iv[i];
  for (int i = 0; i < 8; ++i) {
    icb[15 - i] = static_cast<std::uint8_t>(
        icb[15 - i] ^ static_cast<std::uint8_t>(dir.seq >> (8 * i)));
  }
  return icb;
}

std::array<std::uint8_t, 8> seq_bytes(std::uint64_t seq) {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    out[7 - i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return out;
}

TlsDirection make_direction(const Bytes& material, std::size_t off) {
  const ByteView view(material);
  return TlsDirection{crypto::Aes128Ctx(view.subspan(off, 16)),
                      slice_bytes(view, off + 16, 16),
                      slice_bytes(view, off + 32, 32), 0};
}

}  // namespace

TlsIdentity TlsIdentity::generate(Rng& rng) {
  return TlsIdentity{crypto::x25519_keypair(rng.bytes(32))};
}

TlsSession::TlsSession(ByteView shared_secret, ByteView salt, bool is_client)
    // Key schedule: client->server and server->client keys from the X9.63
    // KDF over the shared secret, salted with the client ephemeral key.
    : TlsSession(crypto::x963_kdf(shared_secret, salt, 2 * (16 + 16 + 32)),
                 is_client) {}

TlsSession::TlsSession(const Bytes& material, bool is_client)
    : send_(make_direction(material, is_client ? 0 : 64)),
      recv_(make_direction(material, is_client ? 64 : 0)) {}

TlsSession TlsSession::client_connect(ByteView server_public, Rng& rng,
                                      Bytes& hello_out) {
  const auto eph = crypto::x25519_keypair(rng.bytes(32));
  const auto shared = crypto::x25519(eph.private_key, server_public);
  hello_out = concat({ByteView(eph.public_key)});
  hello_out.resize(32 + kHelloPadding, 0x5a);  // modeled cert payload
  return TlsSession(shared, eph.public_key, /*is_client=*/true);
}

std::optional<TlsSession> TlsSession::server_accept(
    const crypto::X25519KeyPair& server_key, ByteView client_hello,
    Bytes& server_hello_out) {
  if (client_hello.size() < 32) return std::nullopt;
  const Bytes client_eph = take(client_hello, 32);
  const auto shared = crypto::x25519(server_key.private_key, client_eph);
  server_hello_out.assign(kHelloPadding, 0xa5);  // cert + finished payload
  return TlsSession(shared, client_eph, /*is_client=*/false);
}

Bytes TlsSession::protect(ByteView plaintext) {
  ScopedStage timer(HotStage::kCrypto);
  const auto icb = direction_icb(send_);
  const std::size_t len = plaintext.size() + 16;

  Bytes record;
  record.reserve(5 + len);
  record.push_back(0x17);  // application data
  record.push_back(0x03);
  record.push_back(0x03);
  record.push_back(static_cast<std::uint8_t>(len >> 8));
  record.push_back(static_cast<std::uint8_t>(len & 0xff));
  record.resize(5 + plaintext.size());
  send_.ctx.ctr_xor(icb, plaintext, record.data() + 5);

  const auto seq = seq_bytes(send_.seq);
  const ByteView ciphertext(record.data() + 5, plaintext.size());
  const Bytes mac =
      crypto::hmac_sha256_trunc(send_.mac_key, seq, ciphertext, 16);
  ++send_.seq;
  record.insert(record.end(), mac.begin(), mac.end());
  return record;
}

std::optional<Bytes> TlsSession::unprotect(ByteView record) {
  ScopedStage timer(HotStage::kCrypto);
  if (record.size() < kRecordOverhead) return std::nullopt;
  // Validate the record header (type + version); these bytes are not
  // covered by the MAC, so they must be checked explicitly.
  if (record[0] != 0x17 || record[1] != 0x03 || record[2] != 0x03) {
    return std::nullopt;
  }
  const std::size_t len = (static_cast<std::size_t>(record[3]) << 8) |
                          record[4];
  if (record.size() != 5 + len || len < 16) return std::nullopt;
  const ByteView ciphertext = record.subspan(5, len - 16);
  const ByteView mac = record.subspan(5 + len - 16, 16);

  const auto seq = seq_bytes(recv_.seq);
  const Bytes expected =
      crypto::hmac_sha256_trunc(recv_.mac_key, seq, ciphertext, 16);
  if (!ct_equal(expected, mac)) return std::nullopt;

  const auto icb = direction_icb(recv_);
  ++recv_.seq;
  Bytes plaintext(ciphertext.size());
  recv_.ctx.ctr_xor(icb, ciphertext, plaintext.data());
  return plaintext;
}

}  // namespace shield5g::net
