// TLS session model for the service-based interfaces.
//
// 3GPP requires TLS with mutual authentication between VNFs even on the
// same host (paper §IV-B, TS 33.210). This implementation performs the
// cryptography for real — X25519 key agreement, X9.63 key expansion,
// AES-128-CTR + HMAC record protection — so the enclave-side cost of
// record processing is driven by actually-executed primitive operations.
// The handshake is a single-round-trip pinned-key design (certificate
// chains are modeled as handshake payload bytes, not parsed X.509).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/x25519.h"

namespace shield5g::net {

/// A server's long-term identity key (the "certificate" key, pinned by
/// clients the way OAI pins its CA).
struct TlsIdentity {
  crypto::X25519KeyPair key;

  static TlsIdentity generate(Rng& rng);
};

/// One direction's record-protection state. The AES schedule is
/// expanded once at session setup and reused for every record. Key
/// material lives in fixed arrays so building a session never touches
/// the heap beyond the KDF output itself.
struct TlsDirection {
  crypto::Aes128Ctx ctx;                  // expanded 128-bit record key
  std::array<std::uint8_t, 16> base_iv{};
  std::array<std::uint8_t, 32> mac_key{};
  std::uint64_t seq = 0;
};

class TlsSession {
 public:
  /// Client side: generates an ephemeral key and derives the session
  /// immediately from the pinned server public key. `hello_out`
  /// receives the ClientHello wire bytes (ephemeral key + modeled
  /// certificate payload).
  static TlsSession client_connect(ByteView server_public, Rng& rng,
                                   Bytes& hello_out);

  /// Server side: completes the handshake from the ClientHello.
  /// Returns nullopt on a malformed hello.
  static std::optional<TlsSession> server_accept(
      const crypto::X25519KeyPair& server_key, ByteView client_hello,
      Bytes& server_hello_out);

  /// Protects one application message into a record
  /// (5-byte header || ciphertext || 16-byte MAC).
  Bytes protect(ByteView plaintext);

  /// Verifies and decrypts one record from the peer.
  std::optional<Bytes> unprotect(ByteView record);

  /// In-place variant over a pooled wire buffer: the payload (the
  /// plaintext) is encrypted where it sits, the record header is
  /// prepended into headroom and the MAC appended into tailroom. The
  /// buffer must have been acquired with >= 5 bytes of headroom and
  /// keep >= 16 bytes of tailroom. Wire bytes are identical to
  /// protect() by construction (shared sealing core).
  void protect_in_place(PooledBuffer& buf);

  /// In-place verify + decrypt: on success the payload window shrinks
  /// to the plaintext (framing chopped off) and true is returned; on a
  /// malformed or forged record the buffer is left untouched.
  bool unprotect_in_place(PooledBuffer& buf);

  static constexpr std::size_t kRecordOverhead = 5 + 16;
  /// Modeled certificate/extension payload in each hello.
  static constexpr std::size_t kHelloPadding = 220;

 private:
  TlsSession(ByteView shared_secret, ByteView salt, bool is_client);
  TlsSession(const Bytes& material, bool is_client);

  TlsDirection send_;
  TlsDirection recv_;
};

}  // namespace shield5g::net
