// TLS session model for the service-based interfaces.
//
// 3GPP requires TLS with mutual authentication between VNFs even on the
// same host (paper §IV-B, TS 33.210). This implementation performs the
// cryptography for real — X25519 key agreement, X9.63 key expansion,
// AES-128-CTR + HMAC record protection — so the enclave-side cost of
// record processing is driven by actually-executed primitive operations.
// The handshake is a single-round-trip pinned-key design (certificate
// chains are modeled as handshake payload bytes, not parsed X.509).
//
// Two handshake families share the record layer:
//
//  * The legacy pair client_connect()/server_accept() — the scalar
//    bit-identity oracle. Its wire bytes, RNG draws and key schedule
//    are frozen; every new feature must leave this path untouched.
//  * The resumable family (client_connect_resumable / client_resume /
//    server_accept_resumable) — a PSK-style session-resumption layer.
//    A full resumable handshake additionally derives a resumption
//    secret; the server seals it into an opaque, HMAC-authenticated,
//    single-use ticket (TicketIssuer). A later resumed handshake
//    presents the ticket and derives fresh record keys from the secret
//    with ZERO X25519 scalar multiplications; the server answers with a
//    chained next ticket. Any rejection (tamper, expiry, rotation,
//    replay, unknown epoch) degrades silently to a full handshake.
#pragma once

#include <array>
#include <cstdint>
#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/secret.h"
#include "common/thread_annotations.h"
#include "crypto/aes128.h"
#include "crypto/op_count.h"
#include "crypto/x25519.h"

namespace shield5g::crypto {
class EphemeralKeyPool;
}  // namespace shield5g::crypto

namespace shield5g::net {

/// A server's long-term identity key (the "certificate" key, pinned by
/// clients the way OAI pins its CA).
struct TlsIdentity {
  crypto::X25519KeyPair key;

  static TlsIdentity generate(Rng& rng);
};

/// One direction's record-protection state. The AES schedule is
/// expanded once at session setup and reused for every record. Key
/// material lives in fixed arrays so building a session never touches
/// the heap beyond the KDF output itself.
struct TlsDirection {
  crypto::Aes128Ctx ctx;                  // expanded 128-bit record key
  std::array<std::uint8_t, 16> base_iv{};
  std::array<std::uint8_t, 32> mac_key{};
  std::uint64_t seq = 0;
};

/// Server-side session-ticket authority (the STEK of RFC 5077 /
/// NewSessionTicket of RFC 8446 §4.6.1, modeled): masks and
/// authenticates resumption secrets into opaque tickets a stateless
/// server can later redeem. Per-epoch encryption/MAC keys derive from
/// one master secret; rotate() retires an epoch (the previous one stays
/// redeemable as a grace window, older tickets reject). A strike
/// register makes every ticket single-use, which combined with ticket
/// chaining gives replay protection across connections.
class TicketIssuer {
 public:
  /// Wire size of a ticket: epoch(4) || expiry(8) || nonce(16) ||
  /// masked secret(32) || MAC(16).
  static constexpr std::size_t kTicketSize = 4 + 8 + 16 + 32 + 16;
  static constexpr std::uint64_t kDefaultLifetimeNs =
      600ULL * 1'000'000'000ULL;  // 10 virtual minutes

  TicketIssuer(SecretView master, std::uint64_t lifetime_ns);

  TicketIssuer(const TicketIssuer&) = delete;
  TicketIssuer& operator=(const TicketIssuer&) = delete;

  /// Seals `secret` into a fresh single-use ticket expiring at
  /// `now_ns + lifetime`. `rng` supplies the 16-byte nonce.
  Bytes issue(const Secret<32>& secret, std::uint64_t now_ns, Rng& rng);

  /// Validates and unseals a ticket. nullopt on tamper (any byte),
  /// expiry, retired epoch, or reuse of a redeemed nonce — callers fall
  /// back to the full handshake in every such case.
  std::optional<Secret<32>> redeem(ByteView ticket, std::uint64_t now_ns);

  /// Advances the key epoch. Tickets from the previous epoch remain
  /// redeemable (grace window); anything older rejects.
  void rotate();

  std::uint32_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t lifetime_ns() const noexcept { return lifetime_ns_; }

 private:
  struct EpochKeys {
    crypto::Aes128Ctx enc;
    Secret<32> mac;
  };
  EpochKeys keys_for(std::uint32_t epoch) const;

  Secret<32> master_;
  std::uint64_t lifetime_ns_;
  // Atomic: issue/redeem read the live epoch lock-free; only rotate()
  // (under mu_) advances it.
  std::atomic<std::uint32_t> epoch_ SHIELD_GUARDED_BY(mu_){0};
  mutable std::mutex mu_;  // strike register: shared across shard hammers
  // Redeemed-nonce hashes, one set per live epoch (index epoch & 1);
  // rotate() clears the retiring epoch's set. A 64-bit hash collision
  // can only cause a spurious (safe) fallback to the full handshake.
  std::unordered_set<std::uint64_t> seen_[2] SHIELD_GUARDED_BY(mu_);
};

struct TlsClientHandshake;
struct TlsServerAccept;

class TlsSession {
 public:
  /// Client side: generates an ephemeral key and derives the session
  /// immediately from the pinned server public key. `hello_out`
  /// receives the ClientHello wire bytes (ephemeral key + modeled
  /// certificate payload).
  static TlsSession client_connect(ByteView server_public, Rng& rng,
                                   Bytes& hello_out);

  /// Server side: completes the handshake from the ClientHello.
  /// Returns nullopt on a malformed hello.
  static std::optional<TlsSession> server_accept(
      const crypto::X25519KeyPair& server_key, ByteView client_hello,
      Bytes& server_hello_out);

  // ---- Resumable handshake family ----------------------------------
  // Versioned hellos (first byte): 0x01 full, 0x02 resumed,
  // 0x03 server reject. The legacy pair above has no version byte and
  // is never produced or consumed by these entry points.

  // Result structs (defined after the class: they hold a TlsSession by
  // value).
  using ClientHandshake = TlsClientHandshake;
  using ServerAccept = TlsServerAccept;

  /// Full resumable handshake. Draws the ephemeral pair from `pool`
  /// when given (one variable-base mult instead of two mults),
  /// otherwise from `rng` exactly like the legacy path.
  static ClientHandshake client_connect_resumable(
      ByteView server_public, Rng& rng, Bytes& hello_out,
      crypto::EphemeralKeyPool* pool = nullptr);

  /// Resumed handshake: presents `ticket` and derives fresh record keys
  /// from `resumption_secret` and a fresh nonce — zero scalar mults.
  /// Also chains the next resumption secret (the server's reply ticket
  /// binds the same chained value).
  static ClientHandshake client_resume(const Secret<32>& resumption_secret,
                                       ByteView ticket, Rng& rng,
                                       Bytes& hello_out);

  /// Server side of both resumable hellos. A full hello costs one
  /// scalar mult and issues a ticket in the reply; a valid resumed
  /// hello costs zero mults and issues the chained next ticket; a
  /// rejected resumption returns retry_full (silent fallback).
  static ServerAccept server_accept_resumable(
      const crypto::X25519KeyPair& server_key, ByteView client_hello,
      TicketIssuer& issuer, std::uint64_t now_ns, Rng& rng,
      Bytes& server_hello_out);

  /// Ticket embedded in a resumable ServerHello (0x01 or 0x02);
  /// nullopt for rejects or malformed hellos.
  static std::optional<Bytes> hello_ticket(ByteView server_hello);

  /// Protects one application message into a record
  /// (5-byte header || ciphertext || 16-byte MAC).
  Bytes protect(ByteView plaintext);

  /// Verifies and decrypts one record from the peer.
  std::optional<Bytes> unprotect(ByteView record);

  /// In-place variant over a pooled wire buffer: the payload (the
  /// plaintext) is encrypted where it sits, the record header is
  /// prepended into headroom and the MAC appended into tailroom. The
  /// buffer must have been acquired with >= kRecordHeader bytes of
  /// headroom and keep >= 16 bytes of tailroom. Wire bytes are
  /// identical to protect() by construction (shared sealing core).
  void protect_in_place(PooledBuffer& buf);

  /// In-place verify + decrypt: on success the payload window shrinks
  /// to the plaintext (framing chopped off) and true is returned; on a
  /// malformed or forged record the buffer is left untouched.
  bool unprotect_in_place(PooledBuffer& buf);

  /// Record framing: type(1) + version(2) + length(3). The length field
  /// is 24-bit where real TLS uses 16 — the sim frames one message per
  /// record instead of fragmenting at 2^14, so the field must cover the
  /// largest SBI message (64 KiB bodies included).
  static constexpr std::size_t kRecordHeader = 6;
  static constexpr std::size_t kRecordOverhead = kRecordHeader + 16;
  /// Modeled certificate/extension payload in each hello.
  static constexpr std::size_t kHelloPadding = 220;

  /// Primitive operations one record pass executes for a plaintext of
  /// `plaintext_len` bytes — identical for protect and unprotect (CTR
  /// is an xor either way, and verify recomputes the same HMAC). The
  /// bus's co-located fast path charges these counts synthetically
  /// instead of running the record crypto; tests/net_test pins the
  /// formula against an OpMeter around the real protect/unprotect so
  /// the two can never drift.
  static crypto::OpCounts record_op_counts(std::size_t plaintext_len) noexcept;

 private:
  TlsSession(ByteView shared_secret, ByteView salt, bool is_client);
  TlsSession(const Bytes& material, bool is_client);

  TlsDirection send_;
  TlsDirection recv_;
};

/// A completed client handshake plus the secret a future resumption
/// will key from. The ticket binding the secret arrives in the server's
/// hello (see TlsSession::hello_ticket()).
struct TlsClientHandshake {
  TlsSession session;
  Secret<32> resumption_secret;
};

struct TlsServerAccept {
  std::optional<TlsSession> session;
  bool resumed = false;     // ticket redeemed, zero-mult key schedule
  bool retry_full = false;  // resumption rejected: the server hello
                            // carries 0x03, client must retry in full
};

}  // namespace shield5g::net
