#include "net/bus.h"

#include <stdexcept>

#include "common/hot_stage.h"
#include "common/log.h"

namespace shield5g::net {

std::vector<std::pair<Sys, std::uint32_t>> RequestProfile::default_pre() {
  // Reactor/worker churn between two requests of a Pistache-style
  // server: epoll cycles, futex handoffs between the reactor and the
  // worker, timer maintenance, read-readiness probes. 78 calls here +
  // 3 recv + 3 send + 4 connection-path calls per request reproduce the
  // ~90 EENTERs and ~90 EEXITs per UE registration of Table III.
  std::vector<std::pair<Sys, std::uint32_t>> pre;
  for (int i = 0; i < 6; ++i) pre.emplace_back(Sys::kEpollWait, 0);
  for (int i = 0; i < 24; ++i) pre.emplace_back(Sys::kFutex, 0);
  for (int i = 0; i < 10; ++i) pre.emplace_back(Sys::kTimerFd, 0);
  for (int i = 0; i < 10; ++i) pre.emplace_back(Sys::kEpollCtl, 0);
  for (int i = 0; i < 4; ++i) pre.emplace_back(Sys::kRecv, 0);  // probes
  for (int i = 0; i < 24; ++i) pre.emplace_back(Sys::kFutex, 0);
  return pre;
}

Server::Server(std::string name, ExecutionEnv& env, const NetCosts& costs)
    : name_(std::move(name)), env_(&env), costs_(&costs) {}

void Server::reset_stats() {
  lf_us_.clear();
  lt_us_.clear();
  // A measurement epoch starts against a cold admission queue too: in
  // closed-loop use the clock has already advanced past every
  // busy-until instant so this is a no-op, but back-to-back shard runs
  // over a reused deployment must not inherit occupancy.
  queue_.reset();
}

Server::ServeResult Server::serve_record(ByteView record_in,
                                         TlsSession& session,
                                         sim::VirtualClock& clock,
                                         Rng& jitter) {
  ServeResult result;
  if (served_ == 0) env_->on_first_request();
  env_->on_request(served_);

  // Inter-request scheduling churn (outside the L_T window).
  for (const auto& [sys, bytes] : profile_.pre_window) {
    env_->syscall(sys, bytes);
  }

  const sim::Nanos lt_start = clock.now();

  // Receive the protected request.
  const std::size_t in_bytes = record_in.size();
  for (std::uint32_t i = 0; i < profile_.recv_chunks; ++i) {
    env_->syscall(Sys::kRecv, in_bytes / profile_.recv_chunks);
  }
  crypto::OpMeter tls_in;
  auto plain = session.unprotect(record_in);
  env_->compute(costs_->tls_record_fixed + tls_in.ns(costs_->primitives));
  if (!plain) return result;

  auto request = HttpRequest::parse(*plain);
  env_->compute(costs_->http_parse_ns(plain->size()));
  if (!request) return result;

  // ---- L_F window: the AKA function itself -------------------------
  const sim::Nanos lf_start = clock.now();
  env_->compute(costs_->json_parse_ns(request->body.size()));
  crypto::OpMeter handler_ops;
  HttpResponse response = router_.route(*request);
  const auto handler_fixed = static_cast<sim::Nanos>(
      static_cast<double>(costs_->handler_fixed_ns) *
      jitter.lognormal(1.0, costs_->jitter_sigma));
  env_->compute(handler_fixed + handler_ops.ns(costs_->primitives));
  env_->alloc_pages(profile_.alloc_pages);
  env_->compute(costs_->json_dump_ns(response.body.size()));
  result.l_f = clock.now() - lf_start;

  // Serialize, protect and send the response.
  const Bytes wire = response.serialize();
  env_->compute(costs_->http_ser_ns(wire.size()));
  crypto::OpMeter tls_out;
  result.record_out = session.protect(wire);
  env_->compute(costs_->tls_record_fixed + tls_out.ns(costs_->primitives));
  for (std::uint32_t i = 0; i < profile_.send_chunks; ++i) {
    env_->syscall(Sys::kSend, result.record_out.size() / profile_.send_chunks);
  }
  result.l_t = clock.now() - lt_start;
  result.ok = true;

  ++served_;
  lf_us_.add(sim::to_us(result.l_f));
  lt_us_.add(sim::to_us(result.l_t));
  return result;
}

Bus::Bus(sim::VirtualClock& clock, NetCosts costs, std::uint64_t seed)
    : clock_(clock), costs_(costs), rng_(seed), ambient_client_(clock) {}

void Bus::attach(Server& server) {
  if (servers_.count(server.name()) != 0) {
    throw std::logic_error("Bus: duplicate server name " + server.name());
  }
  servers_.emplace(server.name(),
                   Attachment{&server, TlsIdentity::generate(rng_)});
}

void Bus::detach(const std::string& name) {
  drop_connections(name);
  servers_.erase(name);
}

Server* Bus::find(const std::string& name) noexcept {
  const auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.server;
}

double Bus::jitter() { return rng_.lognormal(1.0, costs_.jitter_sigma); }

sim::Nanos Bus::bridge_ns(std::size_t bytes) {
  const double base = static_cast<double>(costs_.bridge_one_way) +
                      costs_.bridge_per_byte_ns * static_cast<double>(bytes);
  return static_cast<sim::Nanos>(base * jitter());
}

Bus::Connection Bus::open_connection(Attachment& target,
                                     ExecutionEnv& client_env) {
  Server& server = *target.server;
  // TCP handshake: one bridge round trip.
  client_env.syscall(Sys::kSocket);
  client_env.syscall(Sys::kConnect);
  clock_.advance(bridge_ns(60));
  server.env().syscall(Sys::kAccept);
  clock_.advance(bridge_ns(60));

  // TLS handshake: ClientHello (with the client's ephemeral key and
  // modeled cert payload) out, ServerHello/Finished back. Key agreement
  // executes for real on both sides and is charged to each side's
  // environment.
  Connection conn;
  Bytes hello;
  crypto::OpMeter client_ops;
  conn.client = std::make_unique<TlsSession>(
      TlsSession::client_connect(target.identity.key.public_key, rng_, hello));
  client_env.compute(client_ops.ns(costs_.primitives));
  client_env.syscall(Sys::kSend, hello.size());
  clock_.advance(bridge_ns(hello.size()));

  server.env().syscall(Sys::kRecv, hello.size());
  Bytes server_hello;
  crypto::OpMeter server_ops;
  auto server_session =
      TlsSession::server_accept(target.identity.key, hello, server_hello);
  server.env().compute(server_ops.ns(costs_.primitives));
  if (!server_session) {
    throw std::runtime_error("Bus: TLS handshake failed");
  }
  conn.server = std::make_unique<TlsSession>(std::move(*server_session));
  server.env().syscall(Sys::kSend, server_hello.size());
  clock_.advance(bridge_ns(server_hello.size()));
  client_env.syscall(Sys::kRecv, server_hello.size());
  return conn;
}

Bus::Exchange Bus::request(const std::string& from, const std::string& to,
                           const HttpRequest& req, ExecutionEnv* client_env) {
  ScopedStage timer(HotStage::kBus);
  const auto it = servers_.find(to);
  if (it == servers_.end()) {
    throw std::runtime_error("Bus: no server attached as '" + to + "'");
  }
  Attachment& target = it->second;
  Server& server = *target.server;
  ExecutionEnv& client = client_env != nullptr ? *client_env : ambient_client_;

  Exchange exchange;
  const sim::Nanos start = clock_.now();

  client.compute(static_cast<sim::Nanos>(
      static_cast<double>(costs_.client_fixed_ns) * jitter()));

  // Connection: cached under keep-alive, otherwise per-request. The
  // one-shot path keeps the session on the stack — no key-pair strings,
  // no map churn (virtual time is identical: map upkeep charges
  // nothing, and every syscall below is unchanged).
  Connection one_shot;
  Connection* conn = nullptr;
  if (keep_alive_) {
    auto cit = connections_.find(std::make_pair(from, to));
    if (cit == connections_.end()) {
      cit = connections_
                .emplace(std::make_pair(from, to),
                         open_connection(target, client))
                .first;
    }
    conn = &cit->second;
  } else {
    // Stale cached sessions (keep-alive toggled off mid-run) must not
    // be reused later; the map is normally empty here.
    if (!connections_.empty()) connections_.erase(std::make_pair(from, to));
    one_shot = open_connection(target, client);
    conn = &one_shot;
  }

  // Client: serialize, protect, send.
  const Bytes wire = req.serialize();
  client.compute(costs_.http_ser_ns(wire.size()));
  crypto::OpMeter client_tls;
  Bytes record = conn->client->protect(wire);
  client.compute(costs_.tls_record_fixed + client_tls.ns(costs_.primitives));
  client.syscall(Sys::kSend, record.size());
  if (faults_.corrupt_record_prob > 0 &&
      rng_.uniform01() < faults_.corrupt_record_prob) {
    record[rng_.uniform(record.size())] ^= 0x01;  // bit flip in flight
    ++faults_injected_;
  }
  clock_.advance(bridge_ns(record.size()));

  // Admission: the request waits in the server's bounded FIFO until a
  // worker frees up. The wait is real virtual time — it is what turns
  // offered load into queueing delay under the concurrent engine.
  const sim::Nanos arrival = clock_.now();
  const ServiceQueue::Admission adm = server.queue().admit(arrival);
  if (!adm.accepted) {
    if (!keep_alive_) {
      client.syscall(Sys::kClose);
      server.env().syscall(Sys::kClose);
    }
    exchange.response = HttpResponse::error(503, "server saturated: queue full");
    exchange.transport_ok = true;  // clean HTTP-level rejection
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }
  exchange.queue_ns = adm.start - arrival;
  if (exchange.queue_ns > 0) clock_.advance(exchange.queue_ns);

  // Server pipeline.
  auto served = server.serve_record(record, *conn->server, clock_, rng_);
  server.queue().complete(adm.worker, clock_.now());
  exchange.l_f = served.l_f;
  exchange.l_t = served.l_t;
  if (!served.ok) {
    exchange.response = HttpResponse::error(500, "server pipeline failure");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }

  // Response back over the bridge; client receive path.
  if (faults_.drop_response_prob > 0 &&
      rng_.uniform01() < faults_.drop_response_prob) {
    ++faults_injected_;
    clock_.advance(faults_.retransmit_timeout);
    exchange.response = HttpResponse::error(504, "response lost in transit");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }
  clock_.advance(bridge_ns(served.record_out.size()));
  client.syscall(Sys::kRecv, served.record_out.size());
  crypto::OpMeter client_tls_in;
  auto resp_plain = conn->client->unprotect(served.record_out);
  client.compute(costs_.tls_record_fixed +
                 client_tls_in.ns(costs_.primitives));
  if (!resp_plain) {
    exchange.response = HttpResponse::error(500, "record verify failed");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }
  auto response = HttpResponse::parse(*resp_plain);
  client.compute(costs_.http_parse_ns(resp_plain->size()));
  if (!response) {
    exchange.response = HttpResponse::error(500, "malformed response");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }

  if (!keep_alive_) {
    client.syscall(Sys::kClose);
    server.env().syscall(Sys::kClose);
  }

  exchange.response = std::move(*response);
  exchange.transport_ok = true;
  exchange.response_ns = clock_.now() - start;
  return exchange;
}

std::optional<crypto::X25519Key> Bus::server_identity(
    const std::string& name) const {
  const auto it = servers_.find(name);
  if (it == servers_.end()) return std::nullopt;
  return it->second.identity.key.public_key;
}

void Bus::drop_connections(const std::string& server_name) {
  std::erase_if(connections_, [&server_name](const auto& entry) {
    return entry.first.second == server_name;
  });
}

}  // namespace shield5g::net
