#include "net/bus.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/hot_stage.h"
#include "common/log.h"

namespace shield5g::net {

namespace {

// SHIELD5G_BUS_FASTPATH=off|0 forces every hop onto the legacy wire
// path (the bit-identity oracle); anything else leaves co-located
// delivery armed. Read per Bus construction so tests and CI stages can
// flip it between runs in one process.
bool fastpath_default() {
  const char* env = std::getenv("SHIELD5G_BUS_FASTPATH");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
}

// Synthetic record pass: bump the thread's primitive counters by
// exactly what one protect/unprotect of `plaintext_len` bytes would
// have executed, and return the virtual-time charge those ops carry.
// This is what keeps OpMeter-derived charges, the global op counts and
// every digest byte-identical when the record crypto never runs.
sim::Nanos charge_record_ops(const NetCosts& costs,
                             std::size_t plaintext_len) {
  const crypto::OpCounts ops = TlsSession::record_op_counts(plaintext_len);
  crypto::OpCounts& counts = crypto::op_counts();
  counts.aes_blocks += ops.aes_blocks;
  counts.sha256_blocks += ops.sha256_blocks;
  return costs.tls_record_fixed +
         static_cast<sim::Nanos>(costs.primitives.ns_for(ops));
}

}  // namespace

std::vector<std::pair<Sys, std::uint32_t>> RequestProfile::default_pre() {
  // Reactor/worker churn between two requests of a Pistache-style
  // server: epoll cycles, futex handoffs between the reactor and the
  // worker, timer maintenance, read-readiness probes. 78 calls here +
  // 3 recv + 3 send + 4 connection-path calls per request reproduce the
  // ~90 EENTERs and ~90 EEXITs per UE registration of Table III.
  std::vector<std::pair<Sys, std::uint32_t>> pre;
  for (int i = 0; i < 6; ++i) pre.emplace_back(Sys::kEpollWait, 0);
  for (int i = 0; i < 24; ++i) pre.emplace_back(Sys::kFutex, 0);
  for (int i = 0; i < 10; ++i) pre.emplace_back(Sys::kTimerFd, 0);
  for (int i = 0; i < 10; ++i) pre.emplace_back(Sys::kEpollCtl, 0);
  for (int i = 0; i < 4; ++i) pre.emplace_back(Sys::kRecv, 0);  // probes
  for (int i = 0; i < 24; ++i) pre.emplace_back(Sys::kFutex, 0);
  return pre;
}

Server::Server(std::string name, ExecutionEnv& env, const NetCosts& costs)
    : name_(std::move(name)), env_(&env), costs_(&costs) {}

void Server::reset_stats() {
  lf_us_.clear();
  lt_us_.clear();
  // A measurement epoch starts against a cold admission queue too: in
  // closed-loop use the clock has already advanced past every
  // busy-until instant so this is a no-op, but back-to-back shard runs
  // over a reused deployment must not inherit occupancy.
  queue_.reset();
}

Server::ServeResult Server::serve_record(PooledBuffer record_in,
                                         TlsSession& session,
                                         sim::VirtualClock& clock,
                                         Rng& jitter) {
  ServeResult result;
  if (served_ == 0) env_->on_first_request();
  env_->on_request(served_);

  // Inter-request scheduling churn (outside the L_T window).
  for (const auto& [sys, bytes] : profile_.pre_window) {
    env_->syscall(sys, bytes);
  }

  const sim::Nanos lt_start = clock.now();

  // Receive the protected request.
  const std::size_t in_bytes = record_in.size();
  for (std::uint32_t i = 0; i < profile_.recv_chunks; ++i) {
    env_->syscall(Sys::kRecv, in_bytes / profile_.recv_chunks);
  }
  crypto::OpMeter tls_in;
  const bool opened = session.unprotect_in_place(record_in);
  env_->compute(costs_->tls_record_fixed + tls_in.ns(costs_->primitives));
  if (!opened) return result;

  // Zero-copy parse: path/headers/body alias the decrypted record,
  // which stays alive (and untouched) until the handler returns.
  const auto request = RequestView::parse(record_in.view());
  env_->compute(costs_->http_parse_ns(record_in.size()));
  if (!request) return result;

  // ---- L_F window: the AKA function itself -------------------------
  const sim::Nanos lf_start = clock.now();
  env_->compute(costs_->json_parse_ns(request->body.size()));
  crypto::OpMeter handler_ops;
  HttpResponse response = router_.route(*request);
  const auto handler_fixed = static_cast<sim::Nanos>(
      static_cast<double>(costs_->handler_fixed_ns) *
      jitter.lognormal(1.0, costs_->jitter_sigma));
  env_->compute(handler_fixed + handler_ops.ns(costs_->primitives));
  env_->alloc_pages(profile_.alloc_pages);
  env_->compute(costs_->json_dump_ns(response.body.size()));
  result.l_f = clock.now() - lf_start;

  // Serialize straight into a pooled record (TLS headroom reserved),
  // protect in place, send.
  const std::size_t out_size = response.serialized_size();
  PooledBuffer wire = BufferPool::local().acquire(
      TlsSession::kRecordOverhead + out_size, TlsSession::kRecordHeader);
  response.serialize_into(wire);
  env_->compute(costs_->http_ser_ns(wire.size()));
  crypto::OpMeter tls_out;
  session.protect_in_place(wire);
  result.record_out = std::move(wire);
  env_->compute(costs_->tls_record_fixed + tls_out.ns(costs_->primitives));
  for (std::uint32_t i = 0; i < profile_.send_chunks; ++i) {
    env_->syscall(Sys::kSend, result.record_out.size() / profile_.send_chunks);
  }
  result.l_t = clock.now() - lt_start;
  result.ok = true;

  ++served_;
  lf_us_.add(sim::to_us(result.l_f));
  lt_us_.add(sim::to_us(result.l_t));
  return result;
}

Server::DirectServeResult Server::serve_direct(const HttpRequest& req,
                                               std::size_t record_in_size,
                                               TlsSession& session,
                                               sim::VirtualClock& clock,
                                               Rng& jitter) {
  // Mirror of serve_record, charge for charge: the request arrives as
  // the in-memory message instead of a protected record, so the TLS and
  // parse work is charged synthetically from the sizes the record would
  // have had. Any drift between the two pipelines is a parity bug —
  // tests/net_test diffs their env charges and op counts directly.
  DirectServeResult result;
  if (served_ == 0) env_->on_first_request();
  env_->on_request(served_);

  for (const auto& [sys, bytes] : profile_.pre_window) {
    env_->syscall(sys, bytes);
  }

  const sim::Nanos lt_start = clock.now();

  for (std::uint32_t i = 0; i < profile_.recv_chunks; ++i) {
    env_->syscall(Sys::kRecv, record_in_size / profile_.recv_chunks);
  }
  const std::size_t in_plain = record_in_size - TlsSession::kRecordOverhead;
  env_->compute(charge_record_ops(*costs_, in_plain));

  // The view a wire round trip would have produced, aliasing the
  // caller's message (alive until the handler returns).
  const RequestView request = request_view_of(req);
  env_->compute(costs_->http_parse_ns(in_plain));

  // ---- L_F window: the AKA function itself -------------------------
  const sim::Nanos lf_start = clock.now();
  env_->compute(costs_->json_parse_ns(request.body.size()));
  crypto::OpMeter handler_ops;
  HttpResponse response = router_.route(request);
  const auto handler_fixed = static_cast<sim::Nanos>(
      static_cast<double>(costs_->handler_fixed_ns) *
      jitter.lognormal(1.0, costs_->jitter_sigma));
  env_->compute(handler_fixed + handler_ops.ns(costs_->primitives));
  env_->alloc_pages(profile_.alloc_pages);
  env_->compute(costs_->json_dump_ns(response.body.size()));
  result.l_f = clock.now() - lf_start;

  const std::size_t out_size = response.serialized_size();
  result.record_out_size = TlsSession::kRecordOverhead + out_size;
  if (wire_transparent(response)) {
    env_->compute(costs_->http_ser_ns(out_size));
    env_->compute(charge_record_ops(*costs_, out_size));
    result.response = std::move(response);
  } else {
    // The response would not survive serialize -> parse losslessly, so
    // the client must observe the parsed form — protect a real record
    // and let the caller run the legacy receive path over it. Charges
    // are the wire path's own from here on.
    PooledBuffer wire = BufferPool::local().acquire(
        TlsSession::kRecordOverhead + out_size, TlsSession::kRecordHeader);
    response.serialize_into(wire);
    env_->compute(costs_->http_ser_ns(wire.size()));
    crypto::OpMeter tls_out;
    session.protect_in_place(wire);
    result.record_out = std::move(wire);
    env_->compute(costs_->tls_record_fixed + tls_out.ns(costs_->primitives));
    result.fell_back = true;
  }
  for (std::uint32_t i = 0; i < profile_.send_chunks; ++i) {
    env_->syscall(Sys::kSend, result.record_out_size / profile_.send_chunks);
  }
  result.l_t = clock.now() - lt_start;
  result.ok = true;

  ++served_;
  lf_us_.add(sim::to_us(result.l_f));
  lt_us_.add(sim::to_us(result.l_t));
  return result;
}

Bus::Bus(sim::VirtualClock& clock, NetCosts costs, std::uint64_t seed)
    : clock_(clock), costs_(costs), rng_(seed),
      fastpath_(fastpath_default()), ambient_client_(clock) {}

std::uint32_t Bus::intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  names_.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(servers_.size());
  ids_.emplace(std::string_view(names_.back()), id);
  servers_.emplace_back();
  return id;
}

std::optional<std::uint32_t> Bus::lookup(
    std::string_view name) const noexcept {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void Bus::attach(Server& server) {
  const std::uint32_t id = intern(server.name());
  if (servers_[id].server != nullptr) {
    throw std::logic_error("Bus: duplicate server name " + server.name());
  }
  servers_[id] =
      Attachment{&server, TlsIdentity::generate(rng_), nullptr, attach_domain_};
  if (resumption_) {
    // The ticket master key only draws from the bus RNG under
    // resumption, so the legacy RNG stream stays bit-identical.
    servers_[id].issuer = std::make_unique<TicketIssuer>(
        SecretView(rng_.bytes(32)), ticket_lifetime_ns_);
  }
}

void Bus::detach(std::string_view name) {
  drop_connections(name);
  if (const auto id = lookup(name)) servers_[*id].server = nullptr;
}

Server* Bus::find(std::string_view name) noexcept {
  const auto id = lookup(name);
  return id ? servers_[*id].server : nullptr;
}

bool Bus::fastpath_eligible(std::string_view from, const Attachment& target,
                            const HttpRequest& req) const noexcept {
  if (!fastpath_ || target.domain == kIsolatedDomain) return false;
  // Fault injection corrupts record bytes in flight; with no bytes in
  // flight there is nothing to corrupt, so faulted buses always take
  // the wire. (With both probabilities zero the wire path draws no
  // fault RNG either — the streams stay aligned.)
  if (faults_.corrupt_record_prob > 0 || faults_.drop_response_prob > 0) {
    return false;
  }
  const auto from_id = lookup(from);
  if (!from_id) return false;  // ambient / one-shot client label
  const Attachment& source = servers_[*from_id];
  if (source.server == nullptr || source.domain != target.domain) return false;
  return wire_transparent(req);
}

double Bus::jitter() { return rng_.lognormal(1.0, costs_.jitter_sigma); }

sim::Nanos Bus::bridge_ns(std::size_t bytes) {
  const double base = static_cast<double>(costs_.bridge_one_way) +
                      costs_.bridge_per_byte_ns * static_cast<double>(bytes);
  return static_cast<sim::Nanos>(base * jitter());
}

Bus::Connection Bus::open_connection(Attachment& target,
                                     ExecutionEnv& client_env,
                                     TicketState* tickets) {
  Server& server = *target.server;
  // TCP handshake: one bridge round trip.
  client_env.syscall(Sys::kSocket);
  client_env.syscall(Sys::kConnect);
  clock_.advance(bridge_ns(60));
  server.env().syscall(Sys::kAccept);
  clock_.advance(bridge_ns(60));

  Connection conn;

  if (!resumption_ || target.issuer == nullptr) {
    // Legacy TLS handshake: ClientHello (with the client's ephemeral
    // key and modeled cert payload) out, ServerHello/Finished back. Key
    // agreement executes for real on both sides and is charged to each
    // side's environment. This path is the bit-identity oracle: bytes,
    // RNG draws and charges are frozen.
    Bytes hello;
    crypto::OpMeter client_ops;
    conn.client.emplace(TlsSession::client_connect(
        target.identity.key.public_key, rng_, hello));
    client_env.compute(client_ops.ns(costs_.primitives));
    client_env.syscall(Sys::kSend, hello.size());
    clock_.advance(bridge_ns(hello.size()));

    server.env().syscall(Sys::kRecv, hello.size());
    Bytes server_hello;
    crypto::OpMeter server_ops;
    auto server_session =
        TlsSession::server_accept(target.identity.key, hello, server_hello);
    server.env().compute(server_ops.ns(costs_.primitives));
    if (!server_session) {
      throw std::runtime_error("Bus: TLS handshake failed");
    }
    conn.server.emplace(std::move(*server_session));
    server.env().syscall(Sys::kSend, server_hello.size());
    clock_.advance(bridge_ns(server_hello.size()));
    client_env.syscall(Sys::kRecv, server_hello.size());
    return conn;
  }

  const auto now_ns = static_cast<std::uint64_t>(clock_.now());

  // Resumed handshake when a ticket for this (client, server) pair is
  // cached: zero scalar mults on both sides, fresh record keys from the
  // KDF, and a chained next ticket in the reply.
  if (tickets != nullptr && !tickets->ticket.empty()) {
    Bytes hello;
    crypto::OpMeter client_ops;
    auto resumed = TlsSession::client_resume(tickets->secret, tickets->ticket,
                                             rng_, hello);
    client_env.compute(client_ops.ns(costs_.primitives));
    client_env.syscall(Sys::kSend, hello.size());
    clock_.advance(bridge_ns(hello.size()));

    server.env().syscall(Sys::kRecv, hello.size());
    Bytes server_hello;
    crypto::OpMeter server_ops;
    auto accept = TlsSession::server_accept_resumable(
        target.identity.key, hello, *target.issuer, now_ns, rng_,
        server_hello);
    server.env().compute(server_ops.ns(costs_.primitives));
    server.env().syscall(Sys::kSend, server_hello.size());
    clock_.advance(bridge_ns(server_hello.size()));
    client_env.syscall(Sys::kRecv, server_hello.size());

    if (accept.resumed && accept.session) {
      counter_add("tls.resume.hit");
      conn.client.emplace(std::move(resumed.session));
      conn.server.emplace(std::move(*accept.session));
      if (auto next = TlsSession::hello_ticket(server_hello)) {
        tickets->ticket = std::move(*next);
        tickets->secret = resumed.resumption_secret;
      } else {
        tickets->ticket.clear();  // defensive: never reuse a dead chain
      }
      return conn;
    }
    // Rejected (expired, rotated, replayed or tampered ticket): drop
    // the stale state and fall through to a full handshake on the same
    // connection — the extra round trip above is the fallback's cost.
    counter_add("tls.resume.reject");
    tickets->ticket.clear();
  } else {
    counter_add("tls.resume.miss");
  }

  // Full resumable handshake: first contact for this pair (or a
  // fallback). The server's reply carries the ticket that makes every
  // later contact scalar-mult-free.
  Bytes hello;
  crypto::OpMeter client_ops;
  auto full = TlsSession::client_connect_resumable(
      target.identity.key.public_key, rng_, hello, eph_pool_);
  client_env.compute(client_ops.ns(costs_.primitives));
  client_env.syscall(Sys::kSend, hello.size());
  clock_.advance(bridge_ns(hello.size()));

  server.env().syscall(Sys::kRecv, hello.size());
  Bytes server_hello;
  crypto::OpMeter server_ops;
  auto accept = TlsSession::server_accept_resumable(
      target.identity.key, hello, *target.issuer, now_ns, rng_, server_hello);
  server.env().compute(server_ops.ns(costs_.primitives));
  if (!accept.session) {
    throw std::runtime_error("Bus: TLS handshake failed");
  }
  conn.server.emplace(std::move(*accept.session));
  server.env().syscall(Sys::kSend, server_hello.size());
  clock_.advance(bridge_ns(server_hello.size()));
  client_env.syscall(Sys::kRecv, server_hello.size());
  conn.client.emplace(std::move(full.session));
  if (tickets != nullptr) {
    if (auto ticket = TlsSession::hello_ticket(server_hello)) {
      tickets->ticket = std::move(*ticket);
      tickets->secret = full.resumption_secret;
    }
  }
  return conn;
}

Bus::Exchange Bus::request(std::string_view from, std::string_view to,
                           const HttpRequest& req, ExecutionEnv* client_env) {
  ScopedStage timer(HotStage::kBus);
  const auto to_id = lookup(to);
  if (!to_id || servers_[*to_id].server == nullptr) {
    throw std::runtime_error("Bus: no server attached as '" +
                             std::string(to) + "'");
  }
  // Intern the client label (keyed paths only) BEFORE taking the
  // attachment reference: intern() may grow servers_ and reallocate.
  // Resumption needs the key even for one-shot clients — the ticket
  // cache outlives connections.
  const bool keyed = keep_alive_ || resumption_;
  std::uint64_t conn_key = 0;
  if (keyed) conn_key = connection_key(intern(from), *to_id);
  Attachment& target = servers_[*to_id];
  Server& server = *target.server;
  ExecutionEnv& client = client_env != nullptr ? *client_env : ambient_client_;
  // Reference stays valid across open_connection: LRU nodes are stable
  // until their own eviction, and this pair was just touched (MRU).
  TicketState* tickets = nullptr;
  if (resumption_) {
    tickets = tickets_.find(conn_key);
    if (tickets == nullptr) {
      const std::uint64_t before = tickets_.evictions();
      tickets = &tickets_.insert(conn_key, TicketState{});
      if (tickets_.evictions() != before) {
        counter_add("bus.ticket.evict", tickets_.evictions() - before);
      }
    }
  }

  Exchange exchange;
  const sim::Nanos start = clock_.now();

  client.compute(static_cast<sim::Nanos>(
      static_cast<double>(costs_.client_fixed_ns) * jitter()));

  // Connection: cached under keep-alive, otherwise per-request. The
  // one-shot path keeps the session on the stack — no key-pair strings,
  // no map churn (virtual time is identical: map upkeep charges
  // nothing, and every syscall below is unchanged).
  Connection one_shot;
  Connection* conn = nullptr;
  if (keep_alive_) {
    auto cit = connections_.find(conn_key);
    if (cit == connections_.end()) {
      cit = connections_
                .emplace(conn_key, open_connection(target, client, tickets))
                .first;
    }
    conn = &cit->second;
  } else {
    // Stale cached sessions (keep-alive toggled off mid-run) must not
    // be reused later; the map is normally empty here. lookup() never
    // interns, so one-shot client labels stay out of the id tables.
    if (!connections_.empty()) {
      if (const auto from_id = lookup(from)) {
        connections_.erase(connection_key(*from_id, *to_id));
      }
    }
    one_shot = open_connection(target, client, tickets);
    conn = &one_shot;
  }

  if (fastpath_eligible(from, target, req)) {
    // ---- Co-located delivery (DESIGN.md §18) -----------------------
    // Client and server share one address space and trust domain: the
    // request crosses as the in-memory message and no record bytes
    // exist. Everything the wire path charges — virtual time, op
    // counts, syscalls, RNG draws — is replayed below in the same
    // order from the same sizes, so virtual-time results and sweep
    // digests are byte-identical to the wire path (the wire-parity CI
    // stage holds this at 1/2/4/8 workers). The handshake above ran
    // for real either way; only per-request record work is elided.
    const std::size_t in_plain = req.serialized_size();
    const std::size_t in_wire = TlsSession::kRecordOverhead + in_plain;
    client.compute(costs_.http_ser_ns(in_plain));
    client.compute(charge_record_ops(costs_, in_plain));
    client.syscall(Sys::kSend, in_wire);
    clock_.advance(bridge_ns(in_wire));

    const sim::Nanos arrival = clock_.now();
    const ServiceQueue::Admission adm = server.queue().admit(arrival);
    if (!adm.accepted) {
      if (!keep_alive_) {
        client.syscall(Sys::kClose);
        server.env().syscall(Sys::kClose);
      }
      exchange.response =
          HttpResponse::error(503, "server saturated: queue full");
      exchange.transport_ok = true;  // clean HTTP-level rejection
      exchange.response_ns = clock_.now() - start;
      return exchange;
    }
    exchange.queue_ns = adm.start - arrival;
    if (exchange.queue_ns > 0) clock_.advance(exchange.queue_ns);

    auto served =
        server.serve_direct(req, in_wire, *conn->server, clock_, rng_);
    server.queue().complete(adm.worker, clock_.now());
    exchange.l_f = served.l_f;
    exchange.l_t = served.l_t;
    if (!served.ok) {
      exchange.response = HttpResponse::error(500, "server pipeline failure");
      exchange.response_ns = clock_.now() - start;
      return exchange;
    }
    ++fastpath_hits_;
    counter_add("bus.fastpath.hit");

    clock_.advance(bridge_ns(served.record_out_size));
    client.syscall(Sys::kRecv, served.record_out_size);
    if (served.fell_back) {
      // The handler's response was not wire-transparent: a genuinely
      // protected record came back, so the client must run the legacy
      // receive path over it (the parsed form is what it observes).
      counter_add("bus.fastpath.fallback");
      crypto::OpMeter client_tls_in;
      const bool resp_open =
          conn->client->unprotect_in_place(served.record_out);
      client.compute(costs_.tls_record_fixed +
                     client_tls_in.ns(costs_.primitives));
      if (!resp_open) {
        exchange.response = HttpResponse::error(500, "record verify failed");
        exchange.response_ns = clock_.now() - start;
        return exchange;
      }
      const auto response = ResponseView::parse(served.record_out.view());
      client.compute(costs_.http_parse_ns(served.record_out.size()));
      if (!response) {
        exchange.response = HttpResponse::error(500, "malformed response");
        exchange.response_ns = clock_.now() - start;
        return exchange;
      }
      if (!keep_alive_) {
        client.syscall(Sys::kClose);
        server.env().syscall(Sys::kClose);
      }
      exchange.response = HttpResponse::materialize(*response);
      exchange.transport_ok = true;
      exchange.response_ns = clock_.now() - start;
      return exchange;
    }
    const std::size_t out_plain =
        served.record_out_size - TlsSession::kRecordOverhead;
    client.compute(charge_record_ops(costs_, out_plain));
    client.compute(costs_.http_parse_ns(out_plain));
    if (!keep_alive_) {
      client.syscall(Sys::kClose);
      server.env().syscall(Sys::kClose);
    }
    exchange.response = std::move(served.response);
    exchange.transport_ok = true;
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }

  // Client: serialize into a pooled record with TLS headroom, protect
  // in place, send. The payload is written exactly once and encrypted
  // where it sits.
  PooledBuffer record = BufferPool::local().acquire(
      TlsSession::kRecordOverhead + req.serialized_size(), TlsSession::kRecordHeader);
  req.serialize_into(record);
  client.compute(costs_.http_ser_ns(record.size()));
  crypto::OpMeter client_tls;
  conn->client->protect_in_place(record);
  client.compute(costs_.tls_record_fixed + client_tls.ns(costs_.primitives));
  client.syscall(Sys::kSend, record.size());
  if (faults_.corrupt_record_prob > 0 &&
      rng_.uniform01() < faults_.corrupt_record_prob) {
    record.data()[rng_.uniform(record.size())] ^= 0x01;  // bit flip in flight
    ++faults_injected_;
  }
  clock_.advance(bridge_ns(record.size()));

  // Admission: the request waits in the server's bounded FIFO until a
  // worker frees up. The wait is real virtual time — it is what turns
  // offered load into queueing delay under the concurrent engine.
  const sim::Nanos arrival = clock_.now();
  const ServiceQueue::Admission adm = server.queue().admit(arrival);
  if (!adm.accepted) {
    if (!keep_alive_) {
      client.syscall(Sys::kClose);
      server.env().syscall(Sys::kClose);
    }
    exchange.response = HttpResponse::error(503, "server saturated: queue full");
    exchange.transport_ok = true;  // clean HTTP-level rejection
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }
  exchange.queue_ns = adm.start - arrival;
  if (exchange.queue_ns > 0) clock_.advance(exchange.queue_ns);

  // Server pipeline; the request record moves in, the response record
  // moves out — no copies cross the bridge.
  auto served =
      server.serve_record(std::move(record), *conn->server, clock_, rng_);
  server.queue().complete(adm.worker, clock_.now());
  exchange.l_f = served.l_f;
  exchange.l_t = served.l_t;
  if (!served.ok) {
    exchange.response = HttpResponse::error(500, "server pipeline failure");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }

  // Response back over the bridge; client receive path (decrypt in
  // place, parse views, materialize the owning response once at the
  // API boundary).
  if (faults_.drop_response_prob > 0 &&
      rng_.uniform01() < faults_.drop_response_prob) {
    ++faults_injected_;
    clock_.advance(faults_.retransmit_timeout);
    exchange.response = HttpResponse::error(504, "response lost in transit");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }
  clock_.advance(bridge_ns(served.record_out.size()));
  client.syscall(Sys::kRecv, served.record_out.size());
  crypto::OpMeter client_tls_in;
  const bool resp_open = conn->client->unprotect_in_place(served.record_out);
  client.compute(costs_.tls_record_fixed +
                 client_tls_in.ns(costs_.primitives));
  if (!resp_open) {
    exchange.response = HttpResponse::error(500, "record verify failed");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }
  const auto response = ResponseView::parse(served.record_out.view());
  client.compute(costs_.http_parse_ns(served.record_out.size()));
  if (!response) {
    exchange.response = HttpResponse::error(500, "malformed response");
    exchange.response_ns = clock_.now() - start;
    return exchange;
  }

  if (!keep_alive_) {
    client.syscall(Sys::kClose);
    server.env().syscall(Sys::kClose);
  }

  exchange.response = HttpResponse::materialize(*response);
  exchange.transport_ok = true;
  exchange.response_ns = clock_.now() - start;
  return exchange;
}

std::optional<crypto::X25519Key> Bus::server_identity(
    std::string_view name) const {
  const auto id = lookup(name);
  if (!id || servers_[*id].server == nullptr) return std::nullopt;
  return servers_[*id].identity.key.public_key;
}

void Bus::drop_connections(std::string_view server_name) {
  const auto id = lookup(server_name);
  if (!id) return;
  std::erase_if(connections_, [to = *id](const auto& entry) {
    return static_cast<std::uint32_t>(entry.first & 0xffffffffu) == to;
  });
}

}  // namespace shield5g::net
