#include "net/router.h"

namespace shield5g::net {

void Router::add(Method method, const std::string& path_template,
                 Handler handler) {
  routes_.push_back(Route{method, split(path_template), std::move(handler)});
}

std::vector<std::string> Router::split(const std::string& path) {
  std::vector<std::string> out;
  std::string segment;
  for (char c : path) {
    if (c == '/') {
      if (!segment.empty()) out.push_back(std::move(segment));
      segment.clear();
    } else {
      segment.push_back(c);
    }
  }
  if (!segment.empty()) out.push_back(std::move(segment));
  return out;
}

bool Router::match(const Route& route, const std::vector<std::string>& path,
                   PathParams& params) {
  if (route.segments.size() != path.size()) return false;
  PathParams found;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const std::string& tmpl = route.segments[i];
    if (!tmpl.empty() && tmpl.front() == ':') {
      found[tmpl.substr(1)] = path[i];
    } else if (tmpl != path[i]) {
      return false;
    }
  }
  params = std::move(found);
  return true;
}

HttpResponse Router::route(const HttpRequest& req) const {
  const auto path = split(req.path);
  bool path_matched = false;
  for (const auto& route : routes_) {
    PathParams params;
    Route probe = route;
    if (match(probe, path, params)) {
      if (route.method == req.method) {
        return route.handler(req, params);
      }
      path_matched = true;
    }
  }
  return HttpResponse::error(path_matched ? 405 : 404,
                             path_matched ? "method not allowed"
                                          : "no route: " + req.path);
}

}  // namespace shield5g::net
