#include "net/router.h"

#include <stdexcept>

namespace shield5g::net {

namespace {

// Deepest SBI template is 6 segments; anything deeper cannot match any
// registered route.
constexpr std::size_t kMaxSegments = 8;

// Splits on '/' into caller-provided views; returns the segment count,
// or kMaxSegments + 1 on overflow.
std::size_t split_view(std::string_view path, std::string_view* out) {
  std::size_t n = 0;
  while (!path.empty()) {
    const std::size_t slash = path.find('/');
    const std::string_view seg =
        slash == std::string_view::npos ? path : path.substr(0, slash);
    path = slash == std::string_view::npos ? std::string_view()
                                           : path.substr(slash + 1);
    if (seg.empty()) continue;
    if (n == kMaxSegments) return kMaxSegments + 1;
    out[n++] = seg;
  }
  return n;
}

}  // namespace

const std::string& PathParams::at(std::string_view key) const {
  for (std::size_t i = 0; i < count_; ++i) {
    if (items_[i].key == key) return items_[i].value;
  }
  throw std::out_of_range("PathParams::at: no such parameter");
}

bool PathParams::contains(std::string_view key) const noexcept {
  for (std::size_t i = 0; i < count_; ++i) {
    if (items_[i].key == key) return true;
  }
  return false;
}

void PathParams::add(std::string_view key, std::string_view value) {
  if (count_ == kMax) {
    throw std::length_error("PathParams::add: too many parameters");
  }
  items_[count_].key = key;
  items_[count_].value.assign(value);
  ++count_;
}

void Router::add(Method method, const std::string& path_template,
                 Handler handler) {
  routes_.push_back(Route{method, split(path_template), std::move(handler)});
}

std::vector<std::string> Router::split(const std::string& path) {
  std::vector<std::string> out;
  std::string segment;
  for (char c : path) {
    if (c == '/') {
      if (!segment.empty()) out.push_back(std::move(segment));
      segment.clear();
    } else {
      segment.push_back(c);
    }
  }
  if (!segment.empty()) out.push_back(std::move(segment));
  return out;
}

bool Router::match(const Route& route, const std::string_view* segments,
                   std::size_t count, PathParams& params) {
  if (route.segments.size() != count) return false;
  params.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& tmpl = route.segments[i];
    if (!tmpl.empty() && tmpl.front() == ':') {
      params.add(std::string_view(tmpl).substr(1), segments[i]);
    } else if (tmpl != segments[i]) {
      return false;
    }
  }
  return true;
}

HttpResponse Router::route(const RequestView& req) const {
  std::string_view segments[kMaxSegments];
  const std::size_t count = split_view(req.path, segments);
  bool path_matched = false;
  if (count <= kMaxSegments) {
    PathParams params;
    for (const Route& route : routes_) {
      if (match(route, segments, count, params)) {
        if (route.method == req.method) {
          return route.handler(req, params);
        }
        path_matched = true;
      }
    }
  }
  if (path_matched) return HttpResponse::error(405, "method not allowed");
  std::string detail = "no route: ";
  detail += req.path;
  return HttpResponse::error(404, detail);
}

HttpResponse Router::route(const HttpRequest& req) const {
  RequestView view;
  view.method = req.method;
  view.path = req.path;
  for (std::size_t i = 0; i < req.headers.size(); ++i) {
    const Headers::View e = req.headers.entry(i);
    view.headers.add(e.key, e.value);
  }
  view.body = req.body;
  return route(view);
}

}  // namespace shield5g::net
