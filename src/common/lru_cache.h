// Bounded most-recently-used cache for per-NF hot state (Milenage-OPc
// contexts, TLS resumption tickets). The unbounded std::map caches of
// earlier PRs are exactly the state a 1M-subscriber serving plane must
// not keep: one AES schedule per subscriber ever seen is an OOM, not a
// cache. This bounds residency at a fixed capacity with LRU eviction
// and counts evictions so benches can prove a working set fits (zero
// evictions) or quantify the churn when it does not.
//
// Deliberately deterministic: the index is an ordered std::map (no
// hashing, no iteration-order landmines for det-lint) and eviction is
// purely recency-driven, so a replayed run evicts the same keys in the
// same order. Entries are list nodes — pointers returned by find() and
// insert() stay valid until that entry itself is evicted or erased,
// never invalidated by other keys' churn (the property the Bus ticket
// path relies on across open_connection()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace shield5g {

template <typename Key, typename Value>
class LruCache {
 public:
  /// Capacity floor is 1: a just-inserted entry is always resident, so
  /// a reference obtained from insert() is safe to use immediately.
  explicit LruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Looks up `key`, promoting it to most-recently-used on a hit.
  Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites `key`, promoting it to most-recently-used;
  /// evicts the least-recently-used entry when over capacity. The
  /// returned reference is stable until this entry is evicted/erased.
  Value& insert(const Key& key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return it->second->second;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) evict_back();
    return order_.front().second;
  }

  bool erase(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

  /// Shrinks (or grows) the bound in place; shrinking evicts — and
  /// counts — the excess least-recently-used entries.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    while (index_.size() > capacity_) evict_back();
  }

  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Lifetime eviction count — the observability hook behind the
  /// udm.milenage.evict / bus.ticket.evict counters.
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  void evict_back() {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
  }

  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  std::list<std::pair<Key, Value>> order_;  // front = MRU, back = LRU
  std::map<Key, typename std::list<std::pair<Key, Value>>::iterator> index_;
};

}  // namespace shield5g
