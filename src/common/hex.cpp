#include "common/hex.h"

#include <cctype>
#include <stdexcept>

namespace shield5g {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(ByteView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int n = nibble(c);
    if (n < 0) throw std::invalid_argument("hex_decode: bad character");
    if (hi < 0) {
      hi = n;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | n));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("hex_decode: odd digit count");
  return out;
}

}  // namespace shield5g
