// Hexadecimal encoding/decoding for keys, identifiers and test vectors.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace shield5g {

/// Lower-case hex encoding of a byte range.
std::string hex_encode(ByteView b);

/// Decodes a hex string (whitespace tolerated, case-insensitive).
/// Throws std::invalid_argument on malformed input.
Bytes hex_decode(std::string_view hex);

/// Literal-style helper: `h2b("00 11 22")`.
inline Bytes h2b(std::string_view hex) { return hex_decode(hex); }

}  // namespace shield5g
