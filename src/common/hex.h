// Hexadecimal encoding/decoding for keys, identifiers and test vectors.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/bytes.h"

namespace shield5g {

class SecretBytes;
class SecretView;
template <std::size_t N>
class Secret;

namespace detail {
template <typename T>
struct is_secret_type : std::false_type {};
template <>
struct is_secret_type<SecretBytes> : std::true_type {};
template <>
struct is_secret_type<SecretView> : std::true_type {};
template <std::size_t N>
struct is_secret_type<Secret<N>> : std::true_type {};
}  // namespace detail

/// Lower-case hex encoding of a byte range.
std::string hex_encode(ByteView b);

/// Tainted key material never hex-encodes directly: route through
/// SecretBytes::declassify(DeclassifyReason, ...) instead. (Constrained
/// so plain Bytes still picks the ByteView overload above.)
template <typename T,
          std::enable_if_t<detail::is_secret_type<std::decay_t<T>>::value,
                           int> = 0>
std::string hex_encode(const T&) = delete;

/// Decodes a hex string (whitespace tolerated, case-insensitive).
/// Throws std::invalid_argument on malformed input.
Bytes hex_decode(std::string_view hex);

/// Literal-style helper: `h2b("00 11 22")`.
inline Bytes h2b(std::string_view hex) { return hex_decode(hex); }

}  // namespace shield5g
