#include "common/hot_stage.h"

#include <array>
#include <atomic>
#include <chrono>

namespace shield5g {

namespace {

std::atomic<bool> g_enabled{false};
std::array<std::atomic<std::uint64_t>, kHotStageCount> g_totals{};

thread_local ScopedStage* t_current = nullptr;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

namespace hot_stage {

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void reset() noexcept {
  for (auto& t : g_totals) t.store(0, std::memory_order_relaxed);
}

std::uint64_t total_ns(HotStage stage) noexcept {
  return g_totals[static_cast<int>(stage)].load(std::memory_order_relaxed);
}

const char* name(HotStage stage) noexcept {
  switch (stage) {
    case HotStage::kCrypto: return "crypto";
    case HotStage::kCodec: return "codec";
    case HotStage::kBus: return "bus";
    case HotStage::kScheduler: return "scheduler";
  }
  return "unknown";
}

}  // namespace hot_stage

ScopedStage::ScopedStage(HotStage stage) noexcept {
  if (!hot_stage::enabled()) return;
  active_ = true;
  stage_ = stage;
  parent_ = t_current;
  t_current = this;
  start_ns_ = now_ns();
}

ScopedStage::~ScopedStage() {
  if (!active_) return;
  const std::uint64_t elapsed = now_ns() - start_ns_;
  const std::uint64_t own = elapsed > child_ns_ ? elapsed - child_ns_ : 0;
  g_totals[static_cast<int>(stage_)].fetch_add(own,
                                               std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
  t_current = parent_;
}

}  // namespace shield5g
