#include "common/hot_stage.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "common/thread_annotations.h"
#include <vector>

namespace shield5g {

namespace {

std::atomic<bool> g_enabled{false};

// Per-thread accumulators. Only the owning thread writes its buckets
// (plain stores through an atomic so concurrent aggregation reads are
// race-free); the registry tracks every live thread's buckets and folds
// a thread's totals into `retired` when it exits. Heap-allocated and
// never freed: thread-exit destructors may run after static teardown.
struct ThreadBuckets {
  std::array<std::atomic<std::uint64_t>, kHotStageCount> ns{};
};

struct Registry {
  std::mutex mutex;
  std::vector<ThreadBuckets*> live SHIELD_GUARDED_BY(mutex);
  // Atomic: snapshot readers fold these lock-free; the retiring
  // thread's fetch_add still runs under the mutex.
  std::array<std::atomic<std::uint64_t>, kHotStageCount> retired
      SHIELD_GUARDED_BY(mutex){};
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct ThreadSlot {
  ThreadBuckets buckets;

  ThreadSlot() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.live.push_back(&buckets);
  }
  ~ThreadSlot() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (int i = 0; i < kHotStageCount; ++i) {
      reg.retired[i].fetch_add(buckets.ns[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }
    std::erase(reg.live, &buckets);
  }
};

ThreadBuckets& local_buckets() {
  thread_local ThreadSlot slot;
  return slot.buckets;
}

thread_local ScopedStage* t_current = nullptr;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // det-audited(steady_clock feeds latency metrics only; digests never include timestamps)
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

namespace hot_stage {

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void reset() noexcept {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& t : reg.retired) t.store(0, std::memory_order_relaxed);
  for (ThreadBuckets* buckets : reg.live) {
    for (auto& t : buckets->ns) t.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t total_ns(HotStage stage) noexcept {
  Registry& reg = registry();
  const int i = static_cast<int>(stage);
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = reg.retired[i].load(std::memory_order_relaxed);
  for (const ThreadBuckets* buckets : reg.live) {
    total += buckets->ns[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::array<std::uint64_t, kHotStageCount> thread_snapshot() noexcept {
  const ThreadBuckets& buckets = local_buckets();
  std::array<std::uint64_t, kHotStageCount> out{};
  for (int i = 0; i < kHotStageCount; ++i) {
    out[i] = buckets.ns[i].load(std::memory_order_relaxed);
  }
  return out;
}

const char* name(HotStage stage) noexcept {
  switch (stage) {
    case HotStage::kCrypto: return "crypto";
    case HotStage::kCodec: return "codec";
    case HotStage::kBus: return "bus";
    case HotStage::kScheduler: return "scheduler";
  }
  return "unknown";
}

}  // namespace hot_stage

ScopedStage::ScopedStage(HotStage stage) noexcept {
  if (!hot_stage::enabled()) return;
  active_ = true;
  stage_ = stage;
  parent_ = t_current;
  t_current = this;
  start_ns_ = now_ns();
}

ScopedStage::~ScopedStage() {
  if (!active_) return;
  const std::uint64_t elapsed = now_ns() - start_ns_;
  const std::uint64_t own = elapsed > child_ns_ ? elapsed - child_ns_ : 0;
  // Single-writer: only this thread touches its bucket, so a plain
  // load/store pair (no RMW) is enough; aggregation reads race-free
  // through the atomic.
  auto& bucket = local_buckets().ns[static_cast<int>(stage_)];
  bucket.store(bucket.load(std::memory_order_relaxed) + own,
               std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
  t_current = parent_;
}

}  // namespace shield5g
