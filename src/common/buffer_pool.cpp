#include "common/buffer_pool.h"

#include <cstdlib>
#include <new>

#include "common/stats.h"

namespace shield5g {

namespace {

/// Smallest class that fits `capacity`; kClassCount when oversize.
std::size_t class_for(std::size_t capacity) noexcept {
  for (std::size_t i = 0; i < BufferPool::kClassCount; ++i) {
    if (capacity <= BufferPool::kClassSizes[i]) return i;
  }
  return BufferPool::kClassCount;
}

}  // namespace

void PooledBuffer::release() noexcept {
  if (slab_ == nullptr) return;
  if (pool_ != nullptr) {
    pool_->recycle(slab_, class_index_);
  } else {
    ::operator delete(slab_);  // oversize one-off slab
  }
  slab_ = nullptr;
  pool_ = nullptr;
  capacity_ = 0;
  off_ = end_ = 0;
}

BufferPool::~BufferPool() {
  for (FreeList& list : free_) {
    for (std::size_t i = 0; i < list.count; ++i) {
      ::operator delete(list.slabs[i]);
    }
    list.count = 0;
  }
}

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

PooledBuffer BufferPool::acquire(std::size_t capacity, std::size_t headroom) {
  stats_.bytes_served += capacity;
  const std::size_t cls = class_for(capacity);
  if (cls == kClassCount) {
    // Oversize: a one-off slab that frees on release instead of
    // recycling (pool_ stays null so release() takes the delete path).
    ++stats_.misses;
    ++stats_.oversize;
    auto* slab = static_cast<std::uint8_t*>(::operator new(capacity));
    return PooledBuffer(nullptr, slab, capacity, 0, headroom);
  }
  FreeList& list = free_[cls];
  if (list.count > 0) {
    ++stats_.hits;
    std::uint8_t* slab = list.slabs[--list.count];
    return PooledBuffer(this, slab, kClassSizes[cls],
                        static_cast<std::uint8_t>(cls), headroom);
  }
  ++stats_.misses;
  auto* slab = static_cast<std::uint8_t*>(::operator new(kClassSizes[cls]));
  return PooledBuffer(this, slab, kClassSizes[cls],
                      static_cast<std::uint8_t>(cls), headroom);
}

void BufferPool::recycle(std::uint8_t* slab, std::uint8_t class_index) noexcept {
  FreeList& list = free_[class_index];
  if (list.count < kMaxFreePerClass) {
    list.slabs[list.count++] = slab;
    return;
  }
  ::operator delete(slab);
}

std::size_t BufferPool::free_slabs() const noexcept {
  std::size_t n = 0;
  for (const FreeList& list : free_) n += list.count;
  return n;
}

void BufferPool::trim() {
  for (FreeList& list : free_) {
    for (std::size_t i = 0; i < list.count; ++i) {
      ::operator delete(list.slabs[i]);
    }
    list.count = 0;
  }
}

void BufferPool::publish_thread_stats() {
  BufferPool& pool = local();
  const Stats delta{pool.stats_.hits - pool.published_.hits,
                    pool.stats_.misses - pool.published_.misses,
                    pool.stats_.oversize - pool.published_.oversize,
                    pool.stats_.bytes_served - pool.published_.bytes_served};
  if (delta.hits != 0) counter_add("wire.pool.hit", delta.hits);
  if (delta.misses != 0) counter_add("wire.pool.miss", delta.misses);
  if (delta.oversize != 0) counter_add("wire.pool.oversize", delta.oversize);
  if (delta.bytes_served != 0) {
    counter_add("wire.pool.bytes", delta.bytes_served);
  }
  pool.published_ = pool.stats_;
}

}  // namespace shield5g
