// Wall-clock stage accounting for the registration hot path.
//
// Virtual time (sim/clock.h) answers the paper's questions; this module
// answers an engineering one: where do the *host* cycles go when the
// harness pushes registrations through the stack? Each ScopedStage
// attributes real elapsed nanoseconds to one of four buckets — crypto,
// codec, bus, scheduler — with exclusive-time semantics: a nested stage
// pauses its parent, so bucket totals never double-count and their sum
// is bounded by wall clock.
//
// Collection is off by default and costs one relaxed atomic load per
// probe when disabled, so instrumented production paths (TLS records,
// JSON codecs, the bus pipeline) pay nothing measurable outside the
// bench harness. Accumulators are *thread-local* buckets behind a
// process-wide registry: each shard worker of a parallel sweep charges
// its own cache line (no cross-core bouncing on the probe path), while
// total_ns() aggregates every live thread plus the folded totals of
// exited ones. thread_snapshot() reads the calling thread's buckets
// alone, which is how the sweep runner attributes stage time to one
// shard even when eight shards time stages concurrently.
#pragma once

#include <array>
#include <cstdint>

namespace shield5g {

enum class HotStage : std::uint8_t {
  kCrypto = 0,    // AES/SHA/X25519 and the protocols directly over them
  kCodec = 1,     // JSON + HTTP serialization and parsing
  kBus = 2,       // bridge transport, TLS records, request pipeline
  kScheduler = 3, // engine event loop, queue admission, arrival pacing
};
inline constexpr int kHotStageCount = 4;

namespace hot_stage {

/// Turns collection on/off (global; off by default).
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

/// Zeroes every bucket — live threads' and retired totals alike. Call
/// only while no probe is mid-flight on another thread (benches reset
/// between quiescent runs).
void reset() noexcept;

/// Accumulated exclusive nanoseconds for one bucket, aggregated across
/// every thread that ever timed a stage.
std::uint64_t total_ns(HotStage stage) noexcept;

/// The calling thread's own accumulated buckets. Two snapshots bracket
/// a shard's run; their difference is that shard's stage profile,
/// uncontaminated by shards running concurrently on other workers.
std::array<std::uint64_t, kHotStageCount> thread_snapshot() noexcept;

/// Stable lowercase slug ("crypto", "codec", "bus", "scheduler").
const char* name(HotStage stage) noexcept;

}  // namespace hot_stage

/// RAII probe. Place one at the top of a hot function:
///
///   ScopedStage timer(HotStage::kCodec);
///
/// Nesting is explicit and cheap: entering a child stage charges the
/// parent for time up to the hand-off and resumes it afterwards.
class ScopedStage {
 public:
  explicit ScopedStage(HotStage stage) noexcept;
  ~ScopedStage();

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  HotStage stage_{};
  bool active_ = false;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  ScopedStage* parent_ = nullptr;
};

}  // namespace shield5g
