// Wall-clock stage accounting for the registration hot path.
//
// Virtual time (sim/clock.h) answers the paper's questions; this module
// answers an engineering one: where do the *host* cycles go when the
// harness pushes registrations through the stack? Each ScopedStage
// attributes real elapsed nanoseconds to one of four buckets — crypto,
// codec, bus, scheduler — with exclusive-time semantics: a nested stage
// pauses its parent, so bucket totals never double-count and their sum
// is bounded by wall clock.
//
// Collection is off by default and costs one relaxed atomic load per
// probe when disabled, so instrumented production paths (TLS records,
// JSON codecs, the bus pipeline) pay nothing measurable outside the
// bench harness. Accumulators are global atomics: threads may time
// stages concurrently and totals aggregate across all of them.
#pragma once

#include <cstdint>

namespace shield5g {

enum class HotStage : std::uint8_t {
  kCrypto = 0,    // AES/SHA/X25519 and the protocols directly over them
  kCodec = 1,     // JSON + HTTP serialization and parsing
  kBus = 2,       // bridge transport, TLS records, request pipeline
  kScheduler = 3, // engine event loop, queue admission, arrival pacing
};
inline constexpr int kHotStageCount = 4;

namespace hot_stage {

/// Turns collection on/off (global; off by default).
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

/// Zeroes every bucket.
void reset() noexcept;

/// Accumulated exclusive nanoseconds for one bucket.
std::uint64_t total_ns(HotStage stage) noexcept;

/// Stable lowercase slug ("crypto", "codec", "bus", "scheduler").
const char* name(HotStage stage) noexcept;

}  // namespace hot_stage

/// RAII probe. Place one at the top of a hot function:
///
///   ScopedStage timer(HotStage::kCodec);
///
/// Nesting is explicit and cheap: entering a child stage charges the
/// parent for time up to the hand-off and resumes it afterwards.
class ScopedStage {
 public:
  explicit ScopedStage(HotStage stage) noexcept;
  ~ScopedStage();

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  HotStage stage_{};
  bool active_ = false;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  ScopedStage* parent_ = nullptr;
};

}  // namespace shield5g
