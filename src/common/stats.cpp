#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "common/thread_annotations.h"
#include <stdexcept>

namespace shield5g {

namespace {

// The registry is sharded by name hash: parallel shard workers bump
// counters concurrently (declassify audits, queue sheds), and a single
// process-wide lock would serialize them. Sixteen independently locked
// sub-maps cut that contention 16x while keeping the aggregate
// deterministic — snapshot() merges shard-by-shard into one sorted map,
// so the merged view is independent of which worker bumped what.
constexpr std::size_t kCounterShards = 16;

struct CounterShard {
  std::mutex mutex;
  std::map<std::string, std::uint64_t> counters SHIELD_GUARDED_BY(mutex);
};

CounterShard* counter_shards() {
  // Heap-allocated, never freed: counter_add must stay callable from
  // thread-exit paths after static teardown.
  static CounterShard* shards = new CounterShard[kCounterShards];
  return shards;
}

std::size_t shard_index(const std::string& name) noexcept {
  // FNV-1a over the name; the low bits pick the shard.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h % kCounterShards);
}

}  // namespace

void counter_add(const std::string& name, std::uint64_t delta) noexcept {
  try {
    CounterShard& shard = counter_shards()[shard_index(name)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters[name] += delta;
  } catch (...) {
    // Allocation failure while accounting must not take down a request.
  }
}

void counter_max(const std::string& name, std::uint64_t value) noexcept {
  try {
    CounterShard& shard = counter_shards()[shard_index(name)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    std::uint64_t& slot = shard.counters[name];
    if (value > slot) slot = value;
  } catch (...) {
    // Allocation failure while accounting must not take down a request.
  }
}

std::uint64_t counter_value(const std::string& name) noexcept {
  CounterShard& shard = counter_shards()[shard_index(name)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.counters.find(name);
  return it == shard.counters.end() ? 0 : it->second;
}

void counters_reset() noexcept {
  for (std::size_t s = 0; s < kCounterShards; ++s) {
    CounterShard& shard = counter_shards()[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters.clear();
  }
}

std::map<std::string, std::uint64_t> counters_snapshot() {
  std::map<std::string, std::uint64_t> merged;
  for (std::size_t s = 0; s < kCounterShards; ++s) {
    CounterShard& shard = counter_shards()[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, value] : shard.counters) merged[name] += value;
  }
  return merged;
}

double Samples::mean() const {
  if (values_.empty()) throw std::logic_error("Samples::mean: empty");
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double p) const {
  if (values_.empty()) throw std::logic_error("Samples::percentile: empty");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary Summary::of(const Samples& s) {
  Summary out;
  out.count = s.count();
  if (out.count == 0) return out;
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.p25 = s.p25();
  out.median = s.median();
  out.p75 = s.p75();
  out.max = s.max();
  return out;
}

std::string Summary::to_string(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2f%s p50=%.2f%s iqr=[%.2f, %.2f] "
                "range=[%.2f, %.2f]",
                count, mean, unit.c_str(), median, unit.c_str(), p25, p75,
                min, max);
  return buf;
}

}  // namespace shield5g
