#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace shield5g {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u1 = uniform01();
  double u2 = uniform01();
  while (u1 <= 1e-300) u1 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double median, double sigma) noexcept {
  return median * std::exp(normal(0.0, sigma));
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

}  // namespace shield5g
