// Chunked bump arena for long-lived, never-individually-freed records.
//
// common/buffer_pool serves the wire path: short-lived slabs that cycle
// through acquire/release thousands of times a second. The Arena is its
// provisioning-plane sibling — allocations live as long as the owning
// store (subscriber identities, per-subscriber contexts) and are freed
// all at once. A bump pointer over fixed-size chunks turns a million
// small strings into a handful of mmap-sized allocations: no per-node
// malloc headers, no pointer-chasing destructor storm at teardown.
//
// Threading contract: an Arena is owned by exactly one store, and every
// store lives inside one shard's slice (DESIGN.md §12/§16: one shard's
// state is only ever touched by the worker that owns the shard), so the
// members are thread-confined by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace shield5g {

class Arena {
 public:
  /// Chunk size trades slack (last chunk half-empty) against allocation
  /// count; 64 KiB holds ~4K interned SUPIs per chunk.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Bump-allocates `n` bytes aligned to `align` (a power of two).
  /// Alignment is of the returned *address* — chunk bases only carry
  /// new[] alignment, so the bump must align in address space, not in
  /// chunk offsets. Oversized requests get a dedicated chunk (padded by
  /// align - 1 so the aligned start still fits), so any `n` is legal.
  std::uint8_t* allocate(std::size_t n, std::size_t align = 1) {
    if (!chunks_.empty()) {
      const std::size_t offset = aligned_offset(used_, align);
      if (offset + n <= current_capacity_) {
        used_ = offset + n;
        return chunks_.back().get() + offset;
      }
    }
    const std::size_t need = n + align - 1;
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    chunks_.push_back(std::make_unique<std::uint8_t[]>(size));
    current_capacity_ = size;
    reserved_ += size;
    const std::size_t offset = aligned_offset(0, align);
    used_ = offset + n;
    return chunks_.back().get() + offset;
  }

  /// Copies `s` into the arena; the returned view stays valid for the
  /// arena's lifetime.
  std::string_view intern(std::string_view s) {
    if (s.empty()) return std::string_view();
    std::uint8_t* dst = allocate(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      dst[i] = static_cast<std::uint8_t>(s[i]);
    }
    return std::string_view(reinterpret_cast<const char*>(dst), s.size());
  }

  /// Total bytes backing the arena (capacity, not fill).
  std::size_t bytes_reserved() const noexcept { return reserved_; }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }

  /// Frees every chunk; all views into the arena become dangling.
  void clear() {
    chunks_.clear();
    reserved_ = 0;
    used_ = 0;
    current_capacity_ = 0;
  }

 private:
  /// Smallest offset >= `from` whose *address* in the current chunk is
  /// `align`-aligned.
  std::size_t aligned_offset(std::size_t from, std::size_t align) const {
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(chunks_.back().get());
    const std::uintptr_t mask = static_cast<std::uintptr_t>(align - 1);
    return static_cast<std::size_t>(((base + from + mask) & ~mask) - base);
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_ SHIELD_THREAD_CONFINED;
  std::size_t used_ = 0;              // fill of the last chunk
  std::size_t current_capacity_ = 0;  // size of the last chunk
  std::size_t reserved_ = 0;
};

}  // namespace shield5g
