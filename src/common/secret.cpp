#include "common/secret.h"

#include <stdexcept>
#include <string>

#include "common/stats.h"
#include "sgx/enclave_context.h"

namespace shield5g {

void secure_zero(void* p, std::size_t n) noexcept {
  // A volatile-qualified pointer write cannot be elided even though the
  // buffer is about to be freed (the classic dead-store-elimination
  // hole memset falls into).
  volatile auto* bytes = static_cast<volatile unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = 0;
}

const char* declassify_reason_name(DeclassifyReason reason) noexcept {
  switch (reason) {
    case DeclassifyReason::kTransport:
      return "transport";
    case DeclassifyReason::kProvisioning:
      return "provisioning";
    case DeclassifyReason::kUnseal:
      return "unseal";
    case DeclassifyReason::kProtocolOutput:
      return "protocol_output";
    case DeclassifyReason::kTestVector:
      return "test_vector";
  }
  return "unknown";
}

bool declassify_requires_enclave(DeclassifyReason reason) noexcept {
  return reason == DeclassifyReason::kUnseal;
}

namespace detail {

Bytes declassify_copy(ByteView data, DeclassifyReason reason,
                      const sgx::EnclaveContext* ctx) {
  const std::string name = declassify_reason_name(reason);
  const bool shielded = ctx != nullptr && ctx->enclave_backed();
  if (declassify_requires_enclave(reason) && !shielded) {
    counter_add("secret.declassify.denied");
    counter_add("secret.declassify.denied." + name);
    throw std::logic_error(
        "declassify(" + name + "): enclave-grade declassification outside "
        "an enclave-backed deployment" +
        (ctx != nullptr ? " (module " + ctx->module() + ")" : ""));
  }
  counter_add("secret.declassify." + name +
              (shielded ? ".shielded" : ".host"));
  return Bytes(data.begin(), data.end());
}

}  // namespace detail

}  // namespace shield5g
