#include "common/bytes.h"

#include <stdexcept>

namespace shield5g {

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Bytes xor_bytes(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_bytes: length mismatch");
  }
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return out;
}

bool ct_equal(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

Bytes be_bytes(std::uint64_t value, std::size_t width) {
  if (width > 8) throw std::invalid_argument("be_bytes: width > 8");
  Bytes out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[width - 1 - i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return out;
}

std::uint64_t be_value(ByteView b) {
  if (b.size() > 8) throw std::invalid_argument("be_value: more than 8 bytes");
  std::uint64_t v = 0;
  for (std::uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

Bytes take(ByteView b, std::size_t n) {
  return slice_bytes(b, 0, n);
}

Bytes slice_bytes(ByteView b, std::size_t pos, std::size_t n) {
  if (pos + n > b.size()) throw std::out_of_range("slice: out of range");
  return Bytes(b.begin() + static_cast<std::ptrdiff_t>(pos),
               b.begin() + static_cast<std::ptrdiff_t>(pos + n));
}

}  // namespace shield5g
