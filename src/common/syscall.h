// Syscall vocabulary shared by the host (container) execution
// environment and the LibOS syscall-interposition layer.
//
// Each class carries a modeled host-side service cost. In a container
// deployment the cost is charged directly; under Gramine-SGX every
// syscall becomes an OCALL round trip (EEXIT + host work + marshalling
// + EENTER), which is precisely where the paper's SGX response-time
// overhead comes from (§V-B5: "these calls are only invoked during
// network I/O operations").
#pragma once

#include <cstdint>

namespace shield5g {

enum class Sys : std::uint8_t {
  kOpen,
  kStat,
  kRead,
  kWrite,
  kClose,
  kMmap,
  kSocket,
  kBind,
  kListen,
  kAccept,
  kConnect,
  kRecv,
  kSend,
  kEpollCreate,
  kEpollCtl,
  kEpollWait,
  kFutex,
  kTimerFd,
  kPipe,
  kClone,
};

/// Modeled host service time in nanoseconds: fixed part per class plus
/// a per-byte part for data-moving calls. Values are generic Linux
/// syscall costs on a ~2.4 GHz server.
struct SyscallCost {
  std::uint64_t fixed_ns;
  double per_byte_ns;
};

constexpr SyscallCost syscall_cost(Sys sys) noexcept {
  switch (sys) {
    case Sys::kOpen: return {1'300, 0.0};
    case Sys::kStat: return {800, 0.0};
    case Sys::kRead: return {700, 0.05};
    case Sys::kWrite: return {700, 0.05};
    case Sys::kClose: return {600, 0.0};
    case Sys::kMmap: return {1'600, 0.0};
    case Sys::kSocket: return {1'200, 0.0};
    case Sys::kBind: return {900, 0.0};
    case Sys::kListen: return {700, 0.0};
    case Sys::kAccept: return {2'000, 0.0};
    case Sys::kConnect: return {2'600, 0.0};
    case Sys::kRecv: return {900, 0.06};
    case Sys::kSend: return {900, 0.06};
    case Sys::kEpollCreate: return {1'100, 0.0};
    case Sys::kEpollCtl: return {500, 0.0};
    case Sys::kEpollWait: return {1'000, 0.0};
    case Sys::kFutex: return {600, 0.0};
    case Sys::kTimerFd: return {700, 0.0};
    case Sys::kPipe: return {1'100, 0.0};
    case Sys::kClone: return {12'000, 0.0};
  }
  return {1'000, 0.0};
}

constexpr std::uint64_t syscall_host_ns(Sys sys,
                                        std::uint64_t bytes = 0) noexcept {
  const SyscallCost c = syscall_cost(sys);
  return c.fixed_ns +
         static_cast<std::uint64_t>(c.per_byte_ns *
                                    static_cast<double>(bytes));
}

}  // namespace shield5g
