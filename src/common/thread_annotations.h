// Thread-safety annotation macros, checked two ways:
//
//  * Under clang they expand to the thread-safety-analysis attributes
//    (-Wthread-safety), so a clang build gets the compiler's own
//    interprocedural checking for free.
//  * Under every compiler, tools/shield_analyze's lock-lint pass checks
//    the same contracts lexically: a member marked SHIELD_GUARDED_BY(m)
//    may only be touched inside a scope that acquired m (atomics: only
//    writes need the lock — lock-free readers are a design point, see
//    the x25519 publish slots); a function marked SHIELD_REQUIRES(m)
//    must be entered with m held and its body is checked as if it were.
//    SHIELD_THREAD_CONFINED declares per-thread state (e.g. the
//    thread_local BufferPool) that needs no lock by construction.
//
// The macros are deliberately a no-op for GCC/MSVC: they are contracts
// first, attributes second.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define SHIELD5G_THREAD_ATTR(x) __attribute__((x))
#else
#define SHIELD5G_THREAD_ATTR(x)
#endif

/// Member data that must only be accessed while `x` is held.
#define SHIELD_GUARDED_BY(x) SHIELD5G_THREAD_ATTR(guarded_by(x))

/// Function that must be called with `x` already held.
#define SHIELD_REQUIRES(x) \
  SHIELD5G_THREAD_ATTR(exclusive_locks_required(x))

/// Member data confined to a single thread (thread_local owner or
/// single-writer design); exempt from lock-lint by declaration.
#define SHIELD_THREAD_CONFINED
