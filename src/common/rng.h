// Deterministic seeded PRNG (xoshiro256**) used everywhere randomness is
// needed: nonce generation in the simulated core, latency jitter in the
// cost models, and workload generation in the benches. A fixed seed makes
// every experiment reproducible run-to-run.
//
// There is deliberately no global or thread-local stream: every consumer
// owns an Rng instance seeded from its own configuration, so parallel
// shard runs (sim/shard_pool.h) cannot bleed draws across shards — each
// shard's streams are a pure function of that shard's seeds, whatever
// thread it lands on.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace shield5g {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Gaussian with the given mean / standard deviation (Box-Muller).
  double normal(double mean, double stddev) noexcept;

  /// Log-normal sample with the given *linear-space* median and sigma.
  /// Latency distributions in the paper's box plots are right-skewed;
  /// log-normal jitter reproduces that shape.
  double lognormal(double median, double sigma) noexcept;

  /// `n` random bytes (for RAND, keys, nonces in the simulated core).
  Bytes bytes(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace shield5g
