// Byte-buffer utilities shared by every subsystem.
//
// A `Bytes` value is the universal currency for cryptographic material,
// serialized protocol messages and simulated network payloads.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace shield5g {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Concatenates any number of byte ranges into a freshly allocated buffer.
Bytes concat(std::initializer_list<ByteView> parts);

/// Returns `a XOR b`; both inputs must have equal length.
Bytes xor_bytes(ByteView a, ByteView b);

/// Constant-time equality check for secret material (length leaks only).
bool ct_equal(ByteView a, ByteView b) noexcept;

/// Copies a string's bytes (no terminator) into a buffer.
Bytes to_bytes(std::string_view s);

/// Interprets a buffer as text.
std::string to_string(ByteView b);

/// Big-endian encoding of an unsigned integer into `width` bytes.
Bytes be_bytes(std::uint64_t value, std::size_t width);

/// Big-endian decoding; `b.size()` must be <= 8.
std::uint64_t be_value(ByteView b);

/// Returns the first `n` bytes of `b` (n must be <= b.size()).
Bytes take(ByteView b, std::size_t n);

/// Returns bytes [pos, pos+n) of `b`.
Bytes slice_bytes(ByteView b, std::size_t pos, std::size_t n);

}  // namespace shield5g
