#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace shield5g {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace shield5g
