// Secret-taint types for 5G key material (paper Table I / Table V).
//
// K, OPc, CK/IK, K_AUSF, K_SEAF, K_AMF and the NAS/gNB keys derived
// from them must never reach a log line, a JSON body or an HTTP
// response unaudited — that boundary is the entire point of the P-AKA
// enclaves. `SecretBytes` (heap, variable length) and `Secret<N>`
// (fixed length, in-place) make the discipline a compile-time property:
//
//   * no implicit conversion to `Bytes`/`ByteView` — a tainted value
//     cannot silently flow into hex_encode/json/LOG sinks (those
//     overloads are additionally deleted for clear diagnostics);
//   * zeroize-on-destruct — freed buffers do not retain key bytes;
//   * equality is constant-time (length leaks only), `==`/`!=` against
//     plain byte ranges included, so MAC/RES comparison can never
//     regress to an early-exit memcmp;
//   * the only way *out* is `declassify(DeclassifyReason, const
//     sgx::EnclaveContext*)` — an audited, counted gate. Unsealing-grade
//     reasons require an enclave-backed context (KI 27): re-exposing a
//     sealed long-term key under container isolation throws.
//
// Raising taint is implicit (a `Bytes` converts to `SecretBytes` /
// `SecretView` freely — wrapping sooner is always safe); lowering taint
// is explicit and audited. Crypto primitives consume keys through
// `SecretView` and may read the raw range via `unsafe_bytes()`, which
// tools/shield_analyze flags outside the crypto/NAS cipher layers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>

#include "common/bytes.h"

namespace shield5g::sgx {
class EnclaveContext;
}  // namespace shield5g::sgx

namespace shield5g {

/// Volatile-qualified zeroization the optimizer must not elide.
void secure_zero(void* p, std::size_t n) noexcept;

/// Why a secret is being lowered to plain bytes. Every declassification
/// bumps a `secret.declassify.<reason>.{shielded,host}` counter in
/// common/stats; denied attempts bump `secret.declassify.denied`.
enum class DeclassifyReason : std::uint8_t {
  /// Hex field in an SBI body for a peer NF / P-AKA module. Host-grade:
  /// legal everywhere, but the shielded/host counter split is the
  /// paper's Table V audit of which deployments expose key material.
  kTransport = 0,
  /// Operator provisioning path: serializing the subscriber key table
  /// for sealing, or burning credentials into a USIM. Host-grade.
  kProvisioning = 1,
  /// Re-exposing long-term key material that arrived sealed to an
  /// enclave measurement (KI 27). Enclave-grade: requires an
  /// enclave-backed context or the gate throws std::logic_error.
  kUnseal = 2,
  /// The value is protocol-public by construction (RES*, AUTN fields,
  /// MACs) and leaves the derivation as wire material. Host-grade.
  kProtocolOutput = 3,
  /// Unit-test comparison against published vectors. Host-grade;
  /// tools/shield_analyze bans this reason (and reveal_for_test) in src/.
  kTestVector = 4,
};

/// Human-readable reason slug, e.g. "transport".
const char* declassify_reason_name(DeclassifyReason reason) noexcept;

/// True for reasons that may only fire inside an enclave-backed
/// deployment (currently kUnseal).
bool declassify_requires_enclave(DeclassifyReason reason) noexcept;

namespace detail {
/// The audited gate shared by SecretBytes and Secret<N>: checks the
/// context against the reason's grade, bumps the stats counters and
/// copies the plaintext out. Throws std::logic_error on an
/// enclave-grade reason without an enclave-backed context.
Bytes declassify_copy(ByteView data, DeclassifyReason reason,
                      const sgx::EnclaveContext* ctx);
}  // namespace detail

// ---------------------------------------------------------------------
// Secret<N>: fixed-size key material (e.g. an X25519 private scalar).
// ---------------------------------------------------------------------
template <std::size_t N>
class Secret {
 public:
  constexpr Secret() = default;
  /// Raising taint is implicit.
  Secret(const std::array<std::uint8_t, N>& raw) : data_(raw) {}
  explicit Secret(ByteView raw) {
    if (raw.size() != N) throw std::invalid_argument("Secret<N>: size");
    for (std::size_t i = 0; i < N; ++i) data_[i] = raw[i];
  }

  Secret(const Secret&) = default;
  Secret& operator=(const Secret&) = default;
  ~Secret() { secure_zero(data_.data(), N); }

  static constexpr std::size_t size() noexcept { return N; }

  /// Constant-time equality; != is synthesized.
  bool operator==(const Secret& other) const noexcept {
    return ct_equal(ByteView(data_), ByteView(other.data_));
  }

  /// Audited exit gate; see DeclassifyReason.
  Bytes declassify(DeclassifyReason reason,
                   const sgx::EnclaveContext* ctx) const {
    return detail::declassify_copy(ByteView(data_), reason, ctx);
  }

  /// Raw range for feeding crypto primitives. Never pass the result to
  /// a serialization or logging sink — shield_analyze flags this
  /// identifier next to sinks and outside the crypto layer.
  ByteView unsafe_bytes() const noexcept { return ByteView(data_); }

 private:
  std::array<std::uint8_t, N> data_{};
};

// ---------------------------------------------------------------------
// SecretBytes: variable-length key material.
// ---------------------------------------------------------------------
class SecretBytes {
 public:
  SecretBytes() = default;
  /// Raising taint is implicit (copies or steals the buffer).
  SecretBytes(Bytes raw) noexcept : data_(std::move(raw)) {}
  SecretBytes(ByteView raw) : data_(raw.begin(), raw.end()) {}

  SecretBytes(const SecretBytes&) = default;
  SecretBytes(SecretBytes&& other) noexcept : data_(std::move(other.data_)) {
    other.wipe();
  }
  SecretBytes& operator=(const SecretBytes& other) {
    if (this != &other) {
      wipe();
      data_ = other.data_;
    }
    return *this;
  }
  SecretBytes& operator=(SecretBytes&& other) noexcept {
    if (this != &other) {
      wipe();
      data_ = std::move(other.data_);
      other.wipe();
    }
    return *this;
  }
  ~SecretBytes() { wipe(); }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Constant-time equality against another secret.
  bool operator==(const SecretBytes& other) const noexcept {
    return ct_equal(ByteView(data_), ByteView(other.data_));
  }
  /// Constant-time equality against plain bytes (a received MAC/RES*
  /// field); the reversed operands and != are synthesized.
  template <typename T,
            typename = std::enable_if_t<
                std::is_convertible_v<const T&, ByteView> &&
                !std::is_same_v<std::decay_t<T>, SecretBytes>>>
  bool operator==(const T& plain) const noexcept {
    return ct_equal(ByteView(data_), ByteView(plain));
  }

  /// Audited exit gate; see DeclassifyReason.
  Bytes declassify(DeclassifyReason reason,
                   const sgx::EnclaveContext* ctx) const {
    return detail::declassify_copy(ByteView(data_), reason, ctx);
  }

  /// Convenience for unit tests comparing against published vectors
  /// (equivalent to declassify(kTestVector, nullptr)). shield_analyze bans
  /// this identifier anywhere under src/.
  Bytes reveal_for_test() const {
    return declassify(DeclassifyReason::kTestVector, nullptr);
  }

  /// Raw range for feeding crypto primitives; see Secret::unsafe_bytes.
  ByteView unsafe_bytes() const noexcept { return ByteView(data_); }

 private:
  void wipe() noexcept {
    if (!data_.empty()) secure_zero(data_.data(), data_.size());
    data_.clear();
  }

  Bytes data_;
};

// ---------------------------------------------------------------------
// SecretView: non-owning tainted range — the parameter type of every
// key-consuming crypto function. Implicitly constructible from plain
// byte ranges (raising taint) and from the owning secret types; never
// implicitly convertible back.
// ---------------------------------------------------------------------
class SecretView {
 public:
  constexpr SecretView() = default;
  template <typename T,
            typename = std::enable_if_t<
                std::is_convertible_v<const T&, ByteView>>>
  constexpr SecretView(const T& raw) : view_(raw) {}  // NOLINT(runtime/explicit)
  SecretView(const SecretBytes& s) noexcept : view_(s.unsafe_bytes()) {}
  template <std::size_t N>
  SecretView(const Secret<N>& s) noexcept : view_(s.unsafe_bytes()) {}

  std::size_t size() const noexcept { return view_.size(); }
  bool empty() const noexcept { return view_.empty(); }

  /// Constant-time equality.
  bool operator==(const SecretView& other) const noexcept {
    return ct_equal(view_, other.view_);
  }

  Bytes declassify(DeclassifyReason reason,
                   const sgx::EnclaveContext* ctx) const {
    return detail::declassify_copy(view_, reason, ctx);
  }

  /// Raw range for feeding crypto primitives; see Secret::unsafe_bytes.
  ByteView unsafe_bytes() const noexcept { return view_; }

 private:
  ByteView view_;
};

/// Captures an owning copy of a tainted view.
inline SecretBytes to_secret(SecretView v) {
  return SecretBytes(Bytes(v.unsafe_bytes().begin(), v.unsafe_bytes().end()));
}

// ---------------------------------------------------------------------
// Deleted sinks: make the failure mode a named, documented error.
// Streaming (std::ostream, the LOG() stream, or anything else) never
// accepts tainted types.
// ---------------------------------------------------------------------
template <typename Stream>
Stream& operator<<(Stream&, const SecretBytes&) = delete;
template <typename Stream>
Stream& operator<<(Stream&, const SecretView&) = delete;
template <typename Stream, std::size_t N>
Stream& operator<<(Stream&, const Secret<N>&) = delete;

}  // namespace shield5g
