// Per-thread pooled buffer arena for the wire path.
//
// Every SBI hop used to materialize its wire bytes in freshly allocated
// vectors: serialize() -> TLS protect -> bridge -> unprotect -> parse
// was four-plus heap round trips per record. A PooledBuffer instead
// borrows a fixed-size-class slab from the calling thread's pool, keeps
// reserved headroom in front of the payload (so a TLS record header can
// be prepended without moving bytes), and hands the slab back on
// destruction. Slabs are recycled per size class, so a steady-state
// registration run touches the allocator only while the pool warms up.
//
// Threading contract: pools are strictly thread-local (BufferPool::
// local()). A PooledBuffer must be released on the thread that acquired
// it — exactly the shard contract (DESIGN.md §12): one simulated
// exchange runs start-to-finish on one worker, so buffers never cross
// threads. Stats are plain per-thread integers; publish_thread_stats()
// folds the deltas into the process-wide wire.pool.* counters the same
// way hot-stage buckets fold into thread snapshots.
//
// Secrecy: slabs are recycled without scrubbing, which is safe by
// construction — SecretBytes has no conversion to the pool's raw
// append/write interfaces, so tainted key material cannot land in a
// slab without first passing an audited declassify() (the taint system
// of DESIGN.md §10; tools/shield_analyze patrols the call sites).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/thread_annotations.h"

namespace shield5g {

class BufferPool;

/// A borrowed slab with payload window [headroom, headroom + size).
/// Move-only; returns the slab to its pool on destruction. An empty
/// (default-constructed or moved-from) buffer owns nothing.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  ~PooledBuffer() { release(); }

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(other.pool_), slab_(other.slab_), capacity_(other.capacity_),
        class_index_(other.class_index_), off_(other.off_), end_(other.end_) {
    other.pool_ = nullptr;
    other.slab_ = nullptr;
    other.capacity_ = 0;
    other.off_ = other.end_ = 0;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      slab_ = other.slab_;
      capacity_ = other.capacity_;
      class_index_ = other.class_index_;
      off_ = other.off_;
      end_ = other.end_;
      other.pool_ = nullptr;
      other.slab_ = nullptr;
      other.capacity_ = 0;
      other.off_ = other.end_ = 0;
    }
    return *this;
  }

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  explicit operator bool() const noexcept { return slab_ != nullptr; }

  /// Payload window.
  std::uint8_t* data() noexcept { return slab_ + off_; }
  const std::uint8_t* data() const noexcept { return slab_ + off_; }
  std::size_t size() const noexcept { return end_ - off_; }
  bool empty() const noexcept { return end_ == off_; }

  /// Bytes reserved in front of the payload (for prepending framing).
  std::size_t headroom() const noexcept { return off_; }
  /// Writable bytes left behind the payload.
  std::size_t tailroom() const noexcept { return capacity_ - end_; }
  std::size_t capacity() const noexcept { return capacity_; }

  ByteView view() const noexcept { return ByteView(data(), size()); }

  /// Extends the payload by `n` bytes and returns the write cursor for
  /// them. The caller must stay within tailroom() — pools hand out
  /// slabs sized for the whole record up front, so growth never
  /// reallocates (checked in debug via the tests, not per call).
  std::uint8_t* grow(std::size_t n) noexcept {
    std::uint8_t* cursor = slab_ + end_;
    end_ += n;
    return cursor;
  }

  void append(ByteView bytes) noexcept {
    std::uint8_t* out = grow(bytes.size());
    for (std::size_t i = 0; i < bytes.size(); ++i) out[i] = bytes[i];
  }

  /// Grows the payload `n` bytes into the headroom (prepending).
  void prepend(std::size_t n) noexcept { off_ -= n; }

  /// Shrinks the payload from the front / back (the inverse moves, used
  /// to strip record framing after an in-place decrypt).
  void chop_front(std::size_t n) noexcept { off_ += n; }
  void chop(std::size_t n) noexcept { end_ -= n; }

  /// Empties the payload, restoring `headroom` bytes of front reserve.
  void reset(std::size_t headroom) noexcept { off_ = end_ = headroom; }

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, std::uint8_t* slab, std::size_t capacity,
               std::uint8_t class_index, std::size_t headroom) noexcept
      : pool_(pool), slab_(slab), capacity_(capacity),
        class_index_(class_index), off_(headroom), end_(headroom) {}

  void release() noexcept;

  BufferPool* pool_ = nullptr;
  std::uint8_t* slab_ = nullptr;
  std::size_t capacity_ = 0;
  std::uint8_t class_index_ = 0;
  std::size_t off_ = 0;
  std::size_t end_ = 0;
};

/// Fixed-size-class slab pool. One instance per thread via local().
class BufferPool {
 public:
  /// Size classes cover SBI records: small control messages up to the
  /// largest HE-AV payloads; anything bigger falls through to a one-off
  /// heap slab (counted as an oversize miss, never recycled).
  static constexpr std::size_t kClassSizes[] = {512, 2048, 8192, 32768,
                                                131072};
  static constexpr std::size_t kClassCount = std::size(kClassSizes);
  /// Recycled slabs kept per class; beyond this, released slabs free.
  static constexpr std::size_t kMaxFreePerClass = 16;

  /// Per-thread running totals (monotonic within a thread's lifetime).
  struct Stats {
    std::uint64_t hits = 0;        // acquire served from a recycled slab
    std::uint64_t misses = 0;      // acquire had to allocate (incl. oversize)
    std::uint64_t oversize = 0;    // misses that exceeded every class
    std::uint64_t bytes_served = 0;  // sum of requested capacities
  };

  BufferPool() = default;
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The calling thread's pool (created on first use).
  static BufferPool& local();

  /// Borrows a slab with at least `capacity` writable bytes, with the
  /// payload window starting at `headroom` (headroom counts against
  /// capacity).
  PooledBuffer acquire(std::size_t capacity, std::size_t headroom = 0);

  const Stats& stats() const noexcept { return stats_; }
  /// Slabs currently cached, across all classes.
  std::size_t free_slabs() const noexcept;

  /// Drops every cached slab (tests use this to re-measure cold paths).
  void trim();

  /// This thread's running totals (shortcut for local().stats()).
  static Stats thread_stats() { return local().stats_; }

  /// Folds this thread's stat deltas since the last publish into the
  /// process-wide wire.pool.{hit,miss,bytes} counters (common/stats.h).
  /// Sweep workers call it once per case — the pool-side analogue of a
  /// hot-stage thread_snapshot() fold.
  static void publish_thread_stats();

 private:
  friend class PooledBuffer;
  void recycle(std::uint8_t* slab, std::uint8_t class_index) noexcept;

  struct FreeList {
    std::uint8_t* slabs[kMaxFreePerClass];
    std::size_t count = 0;
  };

  FreeList free_[kClassCount] SHIELD_THREAD_CONFINED;
  Stats stats_ SHIELD_THREAD_CONFINED;
  Stats published_;
};

}  // namespace shield5g
