// Sample statistics for latency characterization: the paper reports box
// plots (median / interquartile range) and means, so Summary captures both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace shield5g {

// ---------------------------------------------------------------------
// Process-wide named monotonic counters.
//
// Used for auditing events that must be *countable* from tests and CI
// rather than logged — most importantly every SecretBytes::declassify
// (common/secret.h) keyed as secret.declassify.<reason>.{shielded,host}
// plus secret.declassify.denied for gate violations, and the NGAP-edge
// queue.shed drop audit. Thread-safe and sharded by name hash: the
// shard-pool sweep runner (sim/shard_pool.h) bumps counters from many
// host workers concurrently, so the registry is split over sixteen
// independently locked sub-maps; snapshots merge them into one sorted,
// worker-count-independent view.
// ---------------------------------------------------------------------

/// Adds `delta` to the named counter (creating it at zero).
void counter_add(const std::string& name, std::uint64_t delta = 1) noexcept;

/// Raises the named counter to `value` if it is currently lower
/// (high-water marks, e.g. scheduler.events.peak). Never lowers it.
void counter_max(const std::string& name, std::uint64_t value) noexcept;

/// Current value; 0 for a counter never touched.
std::uint64_t counter_value(const std::string& name) noexcept;

/// Clears every counter (tests isolate themselves with this).
void counters_reset() noexcept;

/// Snapshot of all counters, sorted by name.
std::map<std::string, std::uint64_t> counters_snapshot();

/// Accumulates raw samples and computes order statistics on demand.
class Samples {
 public:
  void add(double v) { values_.push_back(v); }
  void clear() { values_.clear(); }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p25() const { return percentile(25.0); }
  double p75() const { return percentile(75.0); }
  double iqr() const { return p75() - p25(); }

  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
};

/// Immutable five-number-style summary of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0, stddev = 0, min = 0, p25 = 0, median = 0, p75 = 0, max = 0;

  static Summary of(const Samples& s);
  /// One-line rendering, e.g. "n=500 mean=38.1 p50=37.9 iqr=[36.8,39.2]".
  std::string to_string(const std::string& unit = "") const;
};

}  // namespace shield5g
