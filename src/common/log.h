// Minimal leveled logger. Components log protocol-level events at debug
// level; benches keep the default (warn) so experiment output stays clean.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>

namespace shield5g {

class SecretBytes;
class SecretView;
template <std::size_t N>
class Secret;

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr: "[level] component: message".
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper:  LOG(kInfo, "udm") << "generated AV for " << supi;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

  /// Key material never reaches a log line (paper Table V). Declassify
  /// explicitly if a redacted form is genuinely needed.
  LogStream& operator<<(const SecretBytes&) = delete;
  LogStream& operator<<(const SecretView&) = delete;
  template <std::size_t N>
  LogStream& operator<<(const Secret<N>&) = delete;

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream ss_;
};

}  // namespace shield5g

#define S5G_LOG(level, component) ::shield5g::LogStream(level, component)
