// 3GPP TR 33.848 Key-Issue catalogue and HMEE applicability analysis
// (paper §VI, Table V).
//
// Encodes the 13 virtualisation key issues the paper discusses, the
// HMEE/SGX properties relevant to each, whether 3GPP itself recommends
// HMEE for it, and the paper's verdict (full / partial / none). The
// mapping engine derives the verdict from the property sets rather than
// hard-coding it, so the table is regenerated, not transcribed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shield5g::ki {

/// Security properties an HMEE (SGX-class TEE) provides.
enum class HmeeProperty : std::uint8_t {
  kMemoryEncryption,     // EPC contents encrypted outside the package
  kExecutionIsolation,   // host OS/hypervisor outside the TCB
  kLoadTimeIntegrity,    // measured launch (EEXTEND/EINIT)
  kRemoteAttestation,    // hardware-signed quotes
  kSecretSealing,        // keys bound to measurement + platform
  kControlFlowEntry,     // restricted entry points (ECALL table)
};

const char* property_name(HmeeProperty p) noexcept;

enum class Verdict {
  kFull,     // HMEE alone resolves the issue        (Table V: +)
  kPartial,  // HMEE mitigates, residual requirements (Table V: half)
  kNone,
};

const char* verdict_symbol(Verdict v) noexcept;

struct KeyIssue {
  int number;                 // TR 33.848 KI #
  std::string description;
  bool threegpp_marks_hmee;   // 3GPP itself lists HMEE as a solution
  /// Properties that address the issue at all.
  std::vector<HmeeProperty> relevant;
  /// True when additional non-HMEE controls are still required
  /// (deployment policy, lifecycle management, regulation, ...).
  bool residual_requirements;
};

/// The 13 issues of Table V.
const std::vector<KeyIssue>& catalogue();

/// The paper's verdict logic: relevant properties present and no
/// residual requirements -> full; relevant but residual -> partial.
Verdict evaluate(const KeyIssue& issue);

struct TableRow {
  int ki;
  std::string description;
  bool threegpp_hmee;
  Verdict verdict;
};

/// Regenerates Table V.
std::vector<TableRow> generate_table();

/// Counts for the paper's headline claim: 4 KIs marked by 3GPP, 9 more
/// where HMEE helps (full or partial).
struct TableSummary {
  int threegpp_marked = 0;
  int full = 0;
  int partial = 0;
  int additional_beyond_3gpp = 0;
};
TableSummary summarize(const std::vector<TableRow>& rows);

}  // namespace shield5g::ki
