#include "ki/key_issues.h"

namespace shield5g::ki {

const char* property_name(HmeeProperty p) noexcept {
  switch (p) {
    case HmeeProperty::kMemoryEncryption: return "memory-encryption";
    case HmeeProperty::kExecutionIsolation: return "execution-isolation";
    case HmeeProperty::kLoadTimeIntegrity: return "load-time-integrity";
    case HmeeProperty::kRemoteAttestation: return "remote-attestation";
    case HmeeProperty::kSecretSealing: return "secret-sealing";
    case HmeeProperty::kControlFlowEntry: return "entry-point-control";
  }
  return "?";
}

const char* verdict_symbol(Verdict v) noexcept {
  switch (v) {
    case Verdict::kFull: return "full";
    case Verdict::kPartial: return "partial";
    case Verdict::kNone: return "-";
  }
  return "?";
}

const std::vector<KeyIssue>& catalogue() {
  using P = HmeeProperty;
  static const std::vector<KeyIssue> issues = {
      {2, "Confidentiality of sensitive data", false,
       {P::kMemoryEncryption, P::kExecutionIsolation}, false},
      {5, "Data location and lifecycle", false,
       {P::kMemoryEncryption, P::kSecretSealing},
       true},  // residual: storage-resource clearing is operator policy
      {6, "Function isolation", true,
       {P::kMemoryEncryption, P::kExecutionIsolation}, false},
      {7, "Memory introspection", true,
       {P::kMemoryEncryption, P::kExecutionIsolation}, false},
      {11, "Where are my keys and confidential data", false,
       {P::kRemoteAttestation, P::kSecretSealing},
       true},  // residual: trusting virtual key-storage still needs policy
      {12, "Where is my function", false,
       {P::kRemoteAttestation, P::kLoadTimeIntegrity},
       true},  // residual: placement validation is an orchestration step
      {13, "Attestation at 3GPP function level", false,
       {P::kRemoteAttestation, P::kLoadTimeIntegrity}, false},
      {15, "Encrypted data processing", true,
       {P::kMemoryEncryption}, false},
      {20, "3rd party hosting environments", false,
       {P::kMemoryEncryption, P::kRemoteAttestation},
       true},  // residual: infrastructure-operator obligations remain
      {21, "VM and hypervisor breakout", false,
       {P::kMemoryEncryption, P::kExecutionIsolation},
       true},  // residual: HMEE limits impact, cannot prevent the exploit
      {25, "Container security", true,
       {P::kExecutionIsolation, P::kControlFlowEntry}, false},
      {26, "Container breakout", false,
       {P::kMemoryEncryption, P::kExecutionIsolation},
       true},  // residual: same as KI 21 for container engines
      {27, "Secrets in NF container images", false,
       {P::kSecretSealing, P::kRemoteAttestation}, false},
  };
  return issues;
}

Verdict evaluate(const KeyIssue& issue) {
  if (issue.relevant.empty()) return Verdict::kNone;
  return issue.residual_requirements ? Verdict::kPartial : Verdict::kFull;
}

std::vector<TableRow> generate_table() {
  std::vector<TableRow> rows;
  for (const auto& issue : catalogue()) {
    rows.push_back(TableRow{issue.number, issue.description,
                            issue.threegpp_marks_hmee, evaluate(issue)});
  }
  return rows;
}

TableSummary summarize(const std::vector<TableRow>& rows) {
  TableSummary summary;
  for (const auto& row : rows) {
    if (row.threegpp_hmee) {
      ++summary.threegpp_marked;
    } else if (row.verdict != Verdict::kNone) {
      ++summary.additional_beyond_3gpp;
    }
    if (row.verdict == Verdict::kFull) ++summary.full;
    if (row.verdict == Verdict::kPartial) ++summary.partial;
  }
  return summary;
}

}  // namespace shield5g::ki
