// MILENAGE authentication algorithm set (3GPP TS 35.205/35.206).
//
// Implements f1, f1*, f2, f3, f4, f5 and f5* on top of AES-128. These are
// the functions the paper's eUDM P-AKA module executes inside the enclave
// ("f1", "f2345" in Table I) and the functions the USIM runs on the UE
// side to answer the authentication challenge.
#pragma once

#include <array>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/aes128.h"

namespace shield5g::crypto {

struct MilenageOutput {
  Bytes mac_a;     // f1  — network authentication code (8 bytes)
  Bytes mac_s;     // f1* — resynchronisation code (8 bytes)
  Bytes res;       // f2  — response (8 bytes)
  SecretBytes ck;  // f3  — cipher key (16 bytes)
  SecretBytes ik;  // f4  — integrity key (16 bytes)
  Bytes ak;        // f5  — anonymity key (6 bytes)
  Bytes ak_s;      // f5* — resynchronisation anonymity key (6 bytes)
};

class Milenage {
 public:
  /// `k` is the 16-byte subscriber key, `opc` the 16-byte derived
  /// operator code OPc. Both are tainted: the long-term key and OPc
  /// are the root secrets of the whole AKA hierarchy.
  Milenage(SecretView k, SecretView opc);

  /// Derives OPc = OP XOR E_K(OP) from the raw operator code.
  static SecretBytes derive_opc(SecretView k, ByteView op);

  /// Runs all seven functions for one (RAND, SQN, AMF) tuple.
  /// sqn is 6 bytes, amf 2 bytes, rand 16 bytes.
  MilenageOutput compute(ByteView rand, ByteView sqn, ByteView amf) const;

  /// f2/f3/f4/f5 only (the UE side does not need f1 to answer, it needs
  /// it to *verify*; provided separately for clarity).
  MilenageOutput compute_f2345(ByteView rand) const;

  /// f1/f1* only.
  void compute_f1(ByteView rand, ByteView sqn, ByteView amf, Bytes& mac_a,
                  Bytes& mac_s) const;

 private:
  std::array<std::uint8_t, 16> out_n(const std::array<std::uint8_t, 16>& temp,
                                     int rot_bits, std::uint8_t c_last) const;

  Aes128 cipher_;
  std::array<std::uint8_t, 16> opc_{};
};

/// AUTN = (SQN XOR AK) || AMF || MAC-A   (16 bytes, TS 33.102 §6.3).
Bytes build_autn(ByteView sqn, ByteView ak, ByteView amf, ByteView mac_a);

/// Splits an AUTN back into its fields.
struct AutnFields {
  Bytes sqn_xor_ak;  // 6 bytes
  Bytes amf;         // 2 bytes
  Bytes mac_a;       // 8 bytes
};
AutnFields parse_autn(ByteView autn);

}  // namespace shield5g::crypto
