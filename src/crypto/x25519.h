// X25519 Diffie-Hellman over Curve25519 (RFC 7748), from scratch.
//
// This is the key-agreement primitive of ECIES "Profile A" used for SUPI
// concealment (TS 33.501 Annex C.3.4.1): the UE encrypts its permanent
// identifier to the home network's public key, producing the SUCI that
// the UDM/SIDF de-conceals inside the trust boundary.
#pragma once

#include <array>

#include "common/bytes.h"
#include "common/secret.h"

namespace shield5g::crypto {

constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// Computes X25519(scalar, u). Both arguments are 32 bytes; the scalar
/// is the private key and is tainted.
X25519Key x25519(SecretView scalar, ByteView u);

/// Public key for a private scalar: X25519(scalar, 9).
X25519Key x25519_public(SecretView scalar);

/// Key pair generated from 32 random bytes (clamped internally by the
/// scalar multiplication, per RFC 7748). The private scalar lives in
/// tainted fixed-size storage and zeroizes on destruction.
struct X25519KeyPair {
  Secret<kX25519KeySize> private_key;
  X25519Key public_key;
};
X25519KeyPair x25519_keypair(ByteView random32);

/// Key pair plus the shared secret with `peer_public`, fused: the two
/// scalar multiplications (base point and peer point) run back to back
/// and share one batched field inversion for their affine outputs
/// (Montgomery's trick), shaving ~1/3 of a fixed-base multiplication
/// off every TLS client handshake and every ECIES conceal. Outputs are
/// bit-identical to calling x25519_keypair() then x25519().
X25519KeyPair x25519_keypair_shared(ByteView random32, ByteView peer_public,
                                    X25519Key& shared_out);

/// An ephemeral key pair bundled with the shared secret it forms with a
/// known peer key — what a TLS first contact or an ECIES conceal
/// actually consumes. Produced in batches by EphemeralKeyPool's
/// per-peer precompute (crypto/eph_pool.h).
struct X25519SharedKeyPair {
  X25519KeyPair kp;
  X25519Key shared{};
};

}  // namespace shield5g::crypto
