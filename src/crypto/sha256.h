// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: HXRES* derivation (TS 33.501 Annex A.5), HMAC-SHA-256 (and
// through it the whole 3GPP key hierarchy), enclave measurement
// (MRENCLAVE analogue), trusted-file integrity in the LibOS, and the
// ECIES X9.63 KDF.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace shield5g::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Streams more input into the hash.
  Sha256& update(ByteView data);

  /// Finalizes and returns the digest. The object must not be reused
  /// after finalize() (call reset() first).
  std::array<std::uint8_t, kDigestSize> finalize();

  /// Restores the initial state for reuse.
  void reset();

  /// One-shot convenience.
  static Bytes digest(ByteView data);

 private:
  /// Compresses `nblocks` consecutive 64-byte blocks, dispatching to
  /// the SHA-NI kernel when available (crypto/cpu_dispatch.h). Charges
  /// op counts once per block regardless of backend.
  void process_blocks(const std::uint8_t* data, std::size_t nblocks);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace shield5g::crypto
