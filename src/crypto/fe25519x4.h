// 4-lane AVX2 field arithmetic in GF(2^255 - 19) (internal).
//
// Lane-sliced companion to fe25519.h: one Fe4 holds four independent
// field elements, limb i of every lane packed into one __m256i, so a
// single vector instruction advances all four lanes in lock-step. The
// batched Montgomery ladder (x25519_x4.cpp) runs four scalar mults this
// way; per lane the arithmetic computes exactly the same residues the
// scalar path does, and fe_store canonicalization makes the outputs
// bit-identical.
//
// Radix: AVX2 has no 64x64->128 multiply, only vpmuludq (32x32->64), so
// the 5x51 representation cannot multiply directly. Internally each
// lane uses the donna/ref10 radix-2^25.5 split: ten limbs h[0..9] of
// alternating 26/25 bits, limb i weighing 2^ceil(25.5*i). The boundary
// conversion is exact: 51-bit limb j = h[2j] + (h[2j+1] << 26).
//
// Range discipline (the x4 analogue of fe25519.h's):
//   * mul4 / sq4 / mul_small4 accept limbs < 3*2^26 ("loose") and
//     return carried values (even limbs < 2^26 + eps, odd < 2^25 + eps).
//   * add4 of two carried values stays under 2^27 — loose.
//   * sub4 requires *carried* inputs (it adds a 2p bias sized for them)
//     and returns limbs < 3*2^26 — loose.
//   * Worst-case mul4 accumulator: coefficient sum <= 267 per output
//     limb, so 267 * (3*2^26)^2 < 2^63.3 — no u64 overflow; every
//     vpmuludq operand (f, 2f, 4f, 19g) stays below 2^32.
//
// This header is only meaningful in a translation unit compiled with
// -mavx2; everything is guarded so non-AVX2 TUs see an empty namespace
// (x25519_x4.cpp carries the scalar stubs for that build).
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

#include "crypto/fe25519.h"

namespace shield5g::crypto::fe25519x4 {

// Four field elements, lane-sliced: element l lives in qword lane l of
// every h[i].
struct Fe4 {
  __m256i h[10];
};

constexpr std::uint64_t kMask26 = (1ULL << 26) - 1;
constexpr std::uint64_t kMask25 = (1ULL << 25) - 1;

inline __m256i fe4_set1(std::uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

inline Fe4 fe4_zero() {
  Fe4 r;
  for (int i = 0; i < 10; ++i) r.h[i] = _mm256_setzero_si256();
  return r;
}

inline Fe4 fe4_one() {
  Fe4 r = fe4_zero();
  r.h[0] = fe4_set1(1);
  return r;
}

/// Packs four 5x51 elements (limbs < 2^52, i.e. carried or fe_load
/// outputs) into the lane-sliced 10-limb form.
inline Fe4 fe4_from_lanes(const fe25519::Fe in[4]) {
  Fe4 r;
  for (int j = 0; j < 5; ++j) {
    r.h[2 * j] = _mm256_set_epi64x(
        static_cast<long long>(in[3][j] & kMask26),
        static_cast<long long>(in[2][j] & kMask26),
        static_cast<long long>(in[1][j] & kMask26),
        static_cast<long long>(in[0][j] & kMask26));
    r.h[2 * j + 1] =
        _mm256_set_epi64x(static_cast<long long>(in[3][j] >> 26),
                          static_cast<long long>(in[2][j] >> 26),
                          static_cast<long long>(in[1][j] >> 26),
                          static_cast<long long>(in[0][j] >> 26));
  }
  return r;
}

/// Unpacks carried lanes back to 5x51 (limbs < 2^52, safe for fe_mul /
/// fe_store).
inline void fe4_to_lanes(const Fe4& v, fe25519::Fe out[4]) {
  alignas(32) std::uint64_t buf[10][4];
  for (int i = 0; i < 10; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf[i]), v.h[i]);
  }
  for (int l = 0; l < 4; ++l) {
    for (int j = 0; j < 5; ++j) {
      out[l][j] = buf[2 * j][l] + (buf[2 * j + 1][l] << 26);
    }
  }
}

inline Fe4 add4(const Fe4& a, const Fe4& b) {
  Fe4 r;
  for (int i = 0; i < 10; ++i) r.h[i] = _mm256_add_epi64(a.h[i], b.h[i]);
  return r;
}

/// a + 2p - b with both inputs carried; limbs stay positive and loose.
inline Fe4 sub4(const Fe4& a, const Fe4& b) {
  const __m256i bias0 = fe4_set1((1ULL << 27) - 38);
  const __m256i bias_even = fe4_set1((1ULL << 27) - 2);
  const __m256i bias_odd = fe4_set1((1ULL << 26) - 2);
  Fe4 r;
  r.h[0] = _mm256_sub_epi64(_mm256_add_epi64(a.h[0], bias0), b.h[0]);
  for (int i = 1; i < 10; ++i) {
    const __m256i bias = (i & 1) != 0 ? bias_odd : bias_even;
    r.h[i] = _mm256_sub_epi64(_mm256_add_epi64(a.h[i], bias), b.h[i]);
  }
  return r;
}

/// mask must be all-ones / all-zero per qword lane (from a secret bit
/// via 0 - bit); branch-free like fe_cswap.
inline void cswap4(__m256i mask, Fe4& a, Fe4& b) {
  for (int i = 0; i < 10; ++i) {
    const __m256i x = _mm256_and_si256(mask, _mm256_xor_si256(a.h[i], b.h[i]));
    a.h[i] = _mm256_xor_si256(a.h[i], x);
    b.h[i] = _mm256_xor_si256(b.h[i], x);
  }
}

namespace internal {

inline __m256i mul32(__m256i a, __m256i b) { return _mm256_mul_epu32(a, b); }

// 19c for carries up to 2^39 — vpmuludq would truncate the operand to
// 32 bits, so use shifts: 19c = 16c + 2c + c.
inline __m256i times19(__m256i c) {
  return _mm256_add_epi64(
      _mm256_add_epi64(_mm256_slli_epi64(c, 4), _mm256_slli_epi64(c, 1)), c);
}

// Full carry; accepts limbs up to ~2^63.4 and leaves them carried
// (even < 2^26 + eps, odd < 2^25 + eps). Two interleaved chains — h0
// -> h4 -> h5 and h5 -> h9 -> (x19) -> h0 -> h1 — run in lock step, so
// the dependency depth is 6 two-op stages instead of the 11 of a
// single sweep. carry4 follows every mul4/sq4 and sits on the ladder's
// serial critical path, so its latency sets the kernel's throughput.
//
// Range argument: each chain's running carry is bounded by (input max)
// >> 25 < 2^38.4; the wrap contributes 19 * 2^38.4 < 2^42.7 to h0.
// The trailing stage re-carries h5 and h0, leaving h6 and h1 at most
// eps = 2^17 above their masks — inside the mul/sq input domain.
inline void carry4(Fe4& r) {
  const __m256i m26 = fe4_set1(kMask26);
  const __m256i m25 = fe4_set1(kMask25);
  __m256i a, b;
  a = _mm256_srli_epi64(r.h[0], 26);
  b = _mm256_srli_epi64(r.h[5], 25);
  r.h[0] = _mm256_and_si256(r.h[0], m26);
  r.h[5] = _mm256_and_si256(r.h[5], m25);
  r.h[1] = _mm256_add_epi64(r.h[1], a);
  r.h[6] = _mm256_add_epi64(r.h[6], b);

  a = _mm256_srli_epi64(r.h[1], 25);
  b = _mm256_srli_epi64(r.h[6], 26);
  r.h[1] = _mm256_and_si256(r.h[1], m25);
  r.h[6] = _mm256_and_si256(r.h[6], m26);
  r.h[2] = _mm256_add_epi64(r.h[2], a);
  r.h[7] = _mm256_add_epi64(r.h[7], b);

  a = _mm256_srli_epi64(r.h[2], 26);
  b = _mm256_srli_epi64(r.h[7], 25);
  r.h[2] = _mm256_and_si256(r.h[2], m26);
  r.h[7] = _mm256_and_si256(r.h[7], m25);
  r.h[3] = _mm256_add_epi64(r.h[3], a);
  r.h[8] = _mm256_add_epi64(r.h[8], b);

  a = _mm256_srli_epi64(r.h[3], 25);
  b = _mm256_srli_epi64(r.h[8], 26);
  r.h[3] = _mm256_and_si256(r.h[3], m25);
  r.h[8] = _mm256_and_si256(r.h[8], m26);
  r.h[4] = _mm256_add_epi64(r.h[4], a);
  r.h[9] = _mm256_add_epi64(r.h[9], b);

  a = _mm256_srli_epi64(r.h[4], 26);
  b = _mm256_srli_epi64(r.h[9], 25);
  r.h[4] = _mm256_and_si256(r.h[4], m26);
  r.h[9] = _mm256_and_si256(r.h[9], m25);
  r.h[5] = _mm256_add_epi64(r.h[5], a);
  r.h[0] = _mm256_add_epi64(r.h[0], times19(b));

  a = _mm256_srli_epi64(r.h[5], 25);
  b = _mm256_srli_epi64(r.h[0], 26);
  r.h[5] = _mm256_and_si256(r.h[5], m25);
  r.h[0] = _mm256_and_si256(r.h[0], m26);
  r.h[6] = _mm256_add_epi64(r.h[6], a);
  r.h[1] = _mm256_add_epi64(r.h[1], b);
}

}  // namespace internal

/// Lane-sliced schoolbook multiply, ref10's 10-limb formulas: odd*odd
/// products carry an extra factor 2 (the 25.5-bit radix), wrapped
/// products (i+j >= 10) a factor 19. The doubling rides on f (2f, 4f <
/// 2^29) and the 19 on g (19g < 2^32) so every vpmuludq operand fits 32
/// bits.
inline Fe4 mul4(const Fe4& f, const Fe4& g) {
  using internal::mul32;
  const __m256i nineteen = fe4_set1(19);
  __m256i g19[10];
  g19[0] = g.h[0];  // unused slot kept for indexing clarity
  for (int j = 1; j < 10; ++j) g19[j] = mul32(g.h[j], nineteen);
  __m256i f2[10];
  for (int i = 1; i < 10; i += 2) f2[i] = _mm256_add_epi64(f.h[i], f.h[i]);

  const __m256i* fh = f.h;
  const __m256i* gh = g.h;
  Fe4 r;
  r.h[0] = _mm256_add_epi64(
      mul32(fh[0], gh[0]),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(f2[1], g19[9]), mul32(fh[2], g19[8])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(f2[3], g19[7]), mul32(fh[4], g19[6])),
              _mm256_add_epi64(
                  _mm256_add_epi64(mul32(f2[5], g19[5]), mul32(fh[6], g19[4])),
                  _mm256_add_epi64(mul32(f2[7], g19[3]),
                                   _mm256_add_epi64(mul32(fh[8], g19[2]),
                                                    mul32(f2[9], g19[1])))))));
  r.h[1] = _mm256_add_epi64(
      _mm256_add_epi64(mul32(fh[0], gh[1]), mul32(fh[1], gh[0])),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[2], g19[9]), mul32(fh[3], g19[8])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(fh[4], g19[7]), mul32(fh[5], g19[6])),
              _mm256_add_epi64(
                  _mm256_add_epi64(mul32(fh[6], g19[5]), mul32(fh[7], g19[4])),
                  _mm256_add_epi64(mul32(fh[8], g19[3]),
                                   mul32(fh[9], g19[2]))))));
  r.h[2] = _mm256_add_epi64(
      _mm256_add_epi64(mul32(fh[0], gh[2]),
                       _mm256_add_epi64(mul32(f2[1], gh[1]),
                                        mul32(fh[2], gh[0]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(f2[3], g19[9]), mul32(fh[4], g19[8])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(f2[5], g19[7]), mul32(fh[6], g19[6])),
              _mm256_add_epi64(mul32(f2[7], g19[5]),
                               _mm256_add_epi64(mul32(fh[8], g19[4]),
                                                mul32(f2[9], g19[3]))))));
  r.h[3] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[0], gh[3]), mul32(fh[1], gh[2])),
          _mm256_add_epi64(mul32(fh[2], gh[1]), mul32(fh[3], gh[0]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[4], g19[9]), mul32(fh[5], g19[8])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(fh[6], g19[7]), mul32(fh[7], g19[6])),
              _mm256_add_epi64(mul32(fh[8], g19[5]), mul32(fh[9], g19[4])))));
  r.h[4] = _mm256_add_epi64(
      _mm256_add_epi64(
          mul32(fh[0], gh[4]),
          _mm256_add_epi64(mul32(f2[1], gh[3]), mul32(fh[2], gh[2]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(f2[3], gh[1]), mul32(fh[4], gh[0])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(f2[5], g19[9]), mul32(fh[6], g19[8])),
              _mm256_add_epi64(mul32(f2[7], g19[7]),
                               _mm256_add_epi64(mul32(fh[8], g19[6]),
                                                mul32(f2[9], g19[5]))))));
  r.h[5] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[0], gh[5]), mul32(fh[1], gh[4])),
          _mm256_add_epi64(mul32(fh[2], gh[3]), mul32(fh[3], gh[2]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[4], gh[1]), mul32(fh[5], gh[0])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(fh[6], g19[9]), mul32(fh[7], g19[8])),
              _mm256_add_epi64(mul32(fh[8], g19[7]), mul32(fh[9], g19[6])))));
  r.h[6] = _mm256_add_epi64(
      _mm256_add_epi64(
          mul32(fh[0], gh[6]),
          _mm256_add_epi64(mul32(f2[1], gh[5]), mul32(fh[2], gh[4]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(f2[3], gh[3]), mul32(fh[4], gh[2])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(f2[5], gh[1]), mul32(fh[6], gh[0])),
              _mm256_add_epi64(mul32(f2[7], g19[9]),
                               _mm256_add_epi64(mul32(fh[8], g19[8]),
                                                mul32(f2[9], g19[7]))))));
  r.h[7] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[0], gh[7]), mul32(fh[1], gh[6])),
          _mm256_add_epi64(mul32(fh[2], gh[5]), mul32(fh[3], gh[4]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[4], gh[3]), mul32(fh[5], gh[2])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(fh[6], gh[1]), mul32(fh[7], gh[0])),
              _mm256_add_epi64(mul32(fh[8], g19[9]), mul32(fh[9], g19[8])))));
  r.h[8] = _mm256_add_epi64(
      _mm256_add_epi64(
          mul32(fh[0], gh[8]),
          _mm256_add_epi64(mul32(f2[1], gh[7]), mul32(fh[2], gh[6]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(f2[3], gh[5]), mul32(fh[4], gh[4])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(f2[5], gh[3]), mul32(fh[6], gh[2])),
              _mm256_add_epi64(mul32(f2[7], gh[1]),
                               _mm256_add_epi64(mul32(fh[8], gh[0]),
                                                mul32(f2[9], g19[9]))))));
  r.h[9] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[0], gh[9]), mul32(fh[1], gh[8])),
          _mm256_add_epi64(mul32(fh[2], gh[7]), mul32(fh[3], gh[6]))),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(fh[4], gh[5]), mul32(fh[5], gh[4])),
          _mm256_add_epi64(
              _mm256_add_epi64(mul32(fh[6], gh[3]), mul32(fh[7], gh[2])),
              _mm256_add_epi64(mul32(fh[8], gh[1]), mul32(fh[9], gh[0])))));
  internal::carry4(r);
  return r;
}

/// Lane-sliced squaring; symmetric products fold into doubled terms
/// (coefficients 2/4/38/76 split as {2f,4f} x {g,19g}).
inline Fe4 sq4(const Fe4& f) {
  using internal::mul32;
  const __m256i nineteen = fe4_set1(19);
  const __m256i* fh = f.h;
  __m256i d2[10];
  for (int i = 0; i < 10; ++i) d2[i] = _mm256_add_epi64(fh[i], fh[i]);
  __m256i d4[10];
  for (int i = 1; i < 10; i += 2) d4[i] = _mm256_add_epi64(d2[i], d2[i]);
  __m256i g19[10];
  for (int j = 5; j < 10; ++j) g19[j] = mul32(fh[j], nineteen);

  Fe4 r;
  r.h[0] = _mm256_add_epi64(
      _mm256_add_epi64(mul32(fh[0], fh[0]), mul32(d4[1], g19[9])),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[2], g19[8]), mul32(d4[3], g19[7])),
          _mm256_add_epi64(mul32(d2[4], g19[6]), mul32(d2[5], g19[5]))));
  r.h[1] = _mm256_add_epi64(
      _mm256_add_epi64(mul32(d2[0], fh[1]), mul32(d2[2], g19[9])),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[3], g19[8]), mul32(d2[4], g19[7])),
          mul32(d2[5], g19[6])));
  r.h[2] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[0], fh[2]), mul32(d2[1], fh[1])),
          mul32(d4[3], g19[9])),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[4], g19[8]), mul32(d4[5], g19[7])),
          mul32(fh[6], g19[6])));
  r.h[3] = _mm256_add_epi64(
      _mm256_add_epi64(mul32(d2[0], fh[3]), mul32(d2[1], fh[2])),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[4], g19[9]), mul32(d2[5], g19[8])),
          mul32(d2[6], g19[7])));
  r.h[4] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[0], fh[4]), mul32(d4[1], fh[3])),
          mul32(fh[2], fh[2])),
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d4[5], g19[9]), mul32(d2[6], g19[8])),
          mul32(d2[7], g19[7])));
  r.h[5] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[0], fh[5]), mul32(d2[1], fh[4])),
          mul32(d2[2], fh[3])),
      _mm256_add_epi64(mul32(d2[6], g19[9]), mul32(d2[7], g19[8])));
  r.h[6] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[0], fh[6]), mul32(d4[1], fh[5])),
          _mm256_add_epi64(mul32(d2[2], fh[4]), mul32(d2[3], fh[3]))),
      _mm256_add_epi64(mul32(d4[7], g19[9]), mul32(fh[8], g19[8])));
  r.h[7] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[0], fh[7]), mul32(d2[1], fh[6])),
          _mm256_add_epi64(mul32(d2[2], fh[5]), mul32(d2[3], fh[4]))),
      mul32(d2[8], g19[9]));
  r.h[8] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[0], fh[8]), mul32(d4[1], fh[7])),
          _mm256_add_epi64(mul32(d2[2], fh[6]), mul32(d4[3], fh[5]))),
      _mm256_add_epi64(mul32(fh[4], fh[4]), mul32(d2[9], g19[9])));
  r.h[9] = _mm256_add_epi64(
      _mm256_add_epi64(
          _mm256_add_epi64(mul32(d2[0], fh[9]), mul32(d2[1], fh[8])),
          _mm256_add_epi64(mul32(d2[2], fh[7]), mul32(d2[3], fh[6]))),
      mul32(d2[4], fh[5]));
  internal::carry4(r);
  return r;
}

/// f * s for small s (s < 2^20, e.g. the ladder's 121665).
inline Fe4 mul_small4(const Fe4& f, std::uint32_t s) {
  const __m256i vs = fe4_set1(s);
  Fe4 r;
  for (int i = 0; i < 10; ++i) r.h[i] = internal::mul32(f.h[i], vs);
  internal::carry4(r);
  return r;
}

inline Fe4 sqn4(Fe4 f, int n) {
  for (int i = 0; i < n; ++i) f = sq4(f);
  return f;
}

/// z^(p-2) per lane — fe_invert's addition chain verbatim, so a zero
/// lane inverts to zero exactly like the scalar path.
inline Fe4 invert4(const Fe4& z) {
  const Fe4 t0 = sq4(z);                        // z^2
  Fe4 t1 = mul4(z, sqn4(t0, 2));                // z^9
  const Fe4 t0b = mul4(t0, t1);                 // z^11
  const Fe4 t2 = sq4(t0b);                      // z^22
  t1 = mul4(t1, t2);                            // z^31 = z^(2^5-1)
  Fe4 t3 = mul4(t1, sqn4(t1, 5));               // z^(2^10-1)
  Fe4 t4 = mul4(t3, sqn4(t3, 10));              // z^(2^20-1)
  Fe4 t5 = mul4(t4, sqn4(t4, 20));              // z^(2^40-1)
  t4 = mul4(t3, sqn4(t5, 10));                  // z^(2^50-1)
  t5 = mul4(t4, sqn4(t4, 50));                  // z^(2^100-1)
  Fe4 t6 = mul4(t5, sqn4(t5, 100));             // z^(2^200-1)
  t5 = mul4(t4, sqn4(t6, 50));                  // z^(2^250-1)
  return mul4(t0b, sqn4(t5, 5));                // z^(p-2)
}

}  // namespace shield5g::crypto::fe25519x4

#endif  // __AVX2__
