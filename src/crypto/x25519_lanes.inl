// One batched Montgomery ladder, two field backends (textual include).
//
// Included from exactly the per-ISA kernel TUs (x25519_x4.cpp with
// -mavx2, x25519_ifma.cpp with -mavx512ifma), inside an anonymous
// namespace that has already imported one lane-sliced field backend
// (`using namespace fe25519x4;` or `fe25519ifma;`). The field headers
// expose the same surface — Fe4, fe4_zero/one/from_lanes/to_lanes,
// add4/sub4/mul4/sq4/mul_small4/cswap4/invert4 — so the RFC 7748 step
// sequence is written once and stays operation-for-operation identical
// to ladder_fraction() in x25519.cpp; only the limb slicing differs.
// No include guard: each kernel TU includes this exactly once.

inline __m256i lanes_swap_mask(const std::uint64_t swap[4]) {
  return _mm256_set_epi64x(-static_cast<long long>(swap[3]),
                           -static_cast<long long>(swap[2]),
                           -static_cast<long long>(swap[1]),
                           -static_cast<long long>(swap[0]));
}

// Four X25519 ladders in lock-step lanes: scalars pre-clamped, points
// raw 32-byte u-coordinates, outputs canonical.
inline void lanes_ladder4(const std::uint8_t k[4][32],
                          const std::uint8_t* const u[4],
                          std::uint8_t out[4][32]) {
  fe25519::Fe x1l[4];
  for (int l = 0; l < 4; ++l) x1l[l] = fe25519::fe_load(u[l]);
  const Fe4 x1 = fe4_from_lanes(x1l);
  Fe4 x2 = fe4_one(), z2 = fe4_zero();
  Fe4 x3 = x1, z3 = fe4_one();
  std::uint64_t swap[4] = {0, 0, 0, 0};

  for (int t = 254; t >= 0; --t) {
    std::uint64_t bit[4];
    for (int l = 0; l < 4; ++l) {
      bit[l] = (k[l][t / 8] >> (t % 8)) & 1;
      swap[l] ^= bit[l];
    }
    const __m256i mask = lanes_swap_mask(swap);
    cswap4(mask, x2, x3);
    cswap4(mask, z2, z3);
    for (int l = 0; l < 4; ++l) swap[l] = bit[l];

    const Fe4 a = add4(x2, z2);
    const Fe4 aa = sq4(a);
    const Fe4 b = sub4(x2, z2);
    const Fe4 bb = sq4(b);
    const Fe4 e = sub4(aa, bb);
    const Fe4 c = add4(x3, z3);
    const Fe4 d = sub4(x3, z3);
    const Fe4 da = mul4(d, a);
    const Fe4 cb = mul4(c, b);
    x3 = sq4(add4(da, cb));
    z3 = mul4(x1, sq4(sub4(da, cb)));
    x2 = mul4(aa, bb);
    z2 = mul4(e, add4(aa, mul_small4(e, 121665)));
  }
  const __m256i mask = lanes_swap_mask(swap);
  cswap4(mask, x2, x3);
  cswap4(mask, z2, z3);

  // Lane-parallel inversion; a zero denominator (low-order input)
  // inverts to zero exactly like fe_invert, so u = 0 survives.
  const Fe4 res = mul4(x2, invert4(z2));
  fe25519::Fe lanes[4];
  fe4_to_lanes(res, lanes);
  for (int l = 0; l < 4; ++l) fe25519::fe_store(out[l], lanes[l]);
}
