// AES-NI kernel. Compiled with the `aes` target attribute in this TU
// only; callers reach it through crypto/aes128_kernels.h after checking
// cpu_has_aesni(). Round keys come from the portable key expansion in
// Aes128Ctx — the hardware instructions consume the standard FIPS-197
// schedule directly.
#include "crypto/aes128_kernels.h"

#if defined(__x86_64__)
#define SHIELD5G_HAVE_AESNI 1
#include <immintrin.h>
#endif

namespace shield5g::crypto::detail {

#if defined(SHIELD5G_HAVE_AESNI)

bool aesni_compiled() noexcept { return true; }

namespace {

__attribute__((target("aes,sse4.1"))) inline __m128i
encrypt_one(const __m128i* rk, __m128i block) noexcept {
  block = _mm_xor_si128(block, rk[0]);
  for (int round = 1; round < 10; ++round) {
    block = _mm_aesenc_si128(block, rk[round]);
  }
  return _mm_aesenclast_si128(block, rk[10]);
}

}  // namespace

__attribute__((target("aes,sse4.1"))) void aesni_encrypt_blocks(
    const std::uint8_t* rk_bytes, const std::uint8_t* in, std::uint8_t* out,
    std::size_t nblocks) {
  __m128i rk[11];
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    const __m128i block = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + 16 * b));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b),
                     encrypt_one(rk, block));
  }
}

__attribute__((target("aes,sse4.1"))) void aesni_decrypt_block(
    const std::uint8_t* rk_bytes, const std::uint8_t* in, std::uint8_t* out) {
  // Equivalent inverse cipher: IMC-transformed middle round keys in
  // reverse order. Decryption is cold (tests and parity checks only),
  // so the transform runs per call.
  __m128i rk[11];
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));
  }
  __m128i block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  block = _mm_xor_si128(block, rk[10]);
  for (int round = 9; round >= 1; --round) {
    block = _mm_aesdec_si128(block, _mm_aesimc_si128(rk[round]));
  }
  block = _mm_aesdeclast_si128(block, rk[0]);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), block);
}

__attribute__((target("aes,sse4.1"))) void aesni_ctr_xor(
    const std::uint8_t* rk_bytes, const std::uint8_t* icb,
    const std::uint8_t* in, std::uint8_t* out, std::size_t len) {
  __m128i rk[11];
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rk_bytes + 16 * i));
  }
  // Track the counter as two big-endian 64-bit halves; rebuild the
  // block per iteration with byte swaps.
  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | icb[i];
    lo = (lo << 8) | icb[8 + i];
  }
  // Memory layout: icb[0..7] is the big-endian high half, so the low
  // qword of the vector holds bswap(hi).
  auto counter_block = [&hi, &lo]() {
    return _mm_set_epi64x(
        static_cast<long long>(__builtin_bswap64(lo)),
        static_cast<long long>(__builtin_bswap64(hi)));
  };
  auto bump = [&hi, &lo]() {
    if (++lo == 0) ++hi;
  };

  std::size_t off = 0;
  // Four blocks in flight to cover the aesenc latency chain.
  while (off + 64 <= len) {
    __m128i b0 = counter_block(); bump();
    __m128i b1 = counter_block(); bump();
    __m128i b2 = counter_block(); bump();
    __m128i b3 = counter_block(); bump();
    b0 = _mm_xor_si128(b0, rk[0]);
    b1 = _mm_xor_si128(b1, rk[0]);
    b2 = _mm_xor_si128(b2, rk[0]);
    b3 = _mm_xor_si128(b3, rk[0]);
    for (int round = 1; round < 10; ++round) {
      b0 = _mm_aesenc_si128(b0, rk[round]);
      b1 = _mm_aesenc_si128(b1, rk[round]);
      b2 = _mm_aesenc_si128(b2, rk[round]);
      b3 = _mm_aesenc_si128(b3, rk[round]);
    }
    b0 = _mm_aesenclast_si128(b0, rk[10]);
    b1 = _mm_aesenclast_si128(b1, rk[10]);
    b2 = _mm_aesenclast_si128(b2, rk[10]);
    b3 = _mm_aesenclast_si128(b3, rk[10]);
    const __m128i* src = reinterpret_cast<const __m128i*>(in + off);
    __m128i* dst = reinterpret_cast<__m128i*>(out + off);
    _mm_storeu_si128(dst + 0, _mm_xor_si128(_mm_loadu_si128(src + 0), b0));
    _mm_storeu_si128(dst + 1, _mm_xor_si128(_mm_loadu_si128(src + 1), b1));
    _mm_storeu_si128(dst + 2, _mm_xor_si128(_mm_loadu_si128(src + 2), b2));
    _mm_storeu_si128(dst + 3, _mm_xor_si128(_mm_loadu_si128(src + 3), b3));
    off += 64;
  }
  while (off < len) {
    const __m128i ks = encrypt_one(rk, counter_block());
    bump();
    alignas(16) std::uint8_t ks_bytes[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(ks_bytes), ks);
    const std::size_t n = len - off < 16 ? len - off : 16;
    for (std::size_t i = 0; i < n; ++i) {
      out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ ks_bytes[i]);
    }
    off += n;
  }
}

#else  // !SHIELD5G_HAVE_AESNI

bool aesni_compiled() noexcept { return false; }

void aesni_encrypt_blocks(const std::uint8_t*, const std::uint8_t*,
                          std::uint8_t*, std::size_t) {}
void aesni_decrypt_block(const std::uint8_t*, const std::uint8_t*,
                         std::uint8_t*) {}
void aesni_ctr_xor(const std::uint8_t*, const std::uint8_t*,
                   const std::uint8_t*, std::uint8_t*, std::size_t) {}

#endif

}  // namespace shield5g::crypto::detail
