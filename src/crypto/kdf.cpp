#include "crypto/kdf.h"

#include <stdexcept>

#include "crypto/hmac_sha256.h"

namespace shield5g::crypto {

Bytes kdf_s_string(std::uint8_t fc, const std::vector<KdfParam>& params) {
  Bytes s;
  s.push_back(fc);
  for (const auto& p : params) {
    if (p.value.size() > 0xffff) {
      throw std::invalid_argument("kdf: parameter too long");
    }
    s.insert(s.end(), p.value.begin(), p.value.end());
    s.push_back(static_cast<std::uint8_t>(p.value.size() >> 8));
    s.push_back(static_cast<std::uint8_t>(p.value.size() & 0xff));
  }
  return s;
}

Bytes kdf(SecretView key, std::uint8_t fc,
          const std::vector<KdfParam>& params) {
  return hmac_sha256(key.unsafe_bytes(), kdf_s_string(fc, params));
}

Bytes kdf_trunc128(SecretView key, std::uint8_t fc,
                   const std::vector<KdfParam>& params) {
  Bytes full = kdf(key, fc, params);
  return Bytes(full.begin() + 16, full.end());
}

}  // namespace shield5g::crypto
