#include "crypto/ecies.h"

#include <stdexcept>

#include "crypto/aes128.h"
#include "crypto/hmac_sha256.h"
#include "crypto/sha256.h"

namespace shield5g::crypto {

namespace {
constexpr std::size_t kMacTagLen = 8;   // Profile A: 64-bit MAC tag
constexpr std::size_t kEncKeyLen = 16;  // AES-128 key
constexpr std::size_t kIcbLen = 16;     // initial counter block
constexpr std::size_t kMacKeyLen = 32;  // HMAC-SHA-256 key

struct DerivedKeys {
  Aes128Ctx enc;  // schedule expanded straight off the KDF output
  SecretBytes mac_key;
  Bytes icb;
};

DerivedKeys derive_keys(SecretView shared_secret, ByteView eph_public) {
  const SecretBytes material(
      x963_kdf(shared_secret, eph_public, kEncKeyLen + kIcbLen + kMacKeyLen));
  const ByteView raw = material.unsafe_bytes();
  return DerivedKeys{
      Aes128Ctx(raw.subspan(0, kEncKeyLen)),
      SecretBytes(raw.subspan(kEncKeyLen + kIcbLen, kMacKeyLen)),
      slice_bytes(raw, kEncKeyLen, kIcbLen)};
}
}  // namespace

Bytes x963_kdf(SecretView shared_secret, ByteView shared_info,
               std::size_t out_len) {
  Bytes out;
  std::uint32_t counter = 1;
  while (out.size() < out_len) {
    Sha256 hash;
    hash.update(shared_secret.unsafe_bytes());
    const Bytes ctr = be_bytes(counter, 4);
    hash.update(ctr);
    hash.update(shared_info);
    const auto digest = hash.finalize();
    out.insert(out.end(), digest.begin(), digest.end());
    ++counter;
  }
  out.resize(out_len);
  return out;
}

Bytes EciesCiphertext::serialize() const {
  return concat({ByteView(ephemeral_public), ByteView(ciphertext),
                 ByteView(mac_tag)});
}

EciesCiphertext EciesCiphertext::deserialize(ByteView data,
                                             std::size_t pt_len) {
  if (data.size() != kX25519KeySize + pt_len + kMacTagLen) {
    throw std::invalid_argument("EciesCiphertext: bad length");
  }
  EciesCiphertext ct;
  ct.ephemeral_public = take(data, kX25519KeySize);
  ct.ciphertext = slice_bytes(data, kX25519KeySize, pt_len);
  ct.mac_tag = slice_bytes(data, kX25519KeySize + pt_len, kMacTagLen);
  return ct;
}

namespace {
EciesCiphertext encrypt_with(const X25519KeyPair& eph, const X25519Key& shared,
                             ByteView plaintext) {
  const DerivedKeys keys = derive_keys(shared, eph.public_key);

  EciesCiphertext ct;
  ct.ephemeral_public = Bytes(eph.public_key.begin(), eph.public_key.end());
  ct.ciphertext = aes128_ctr(keys.enc, keys.icb, plaintext);
  ct.mac_tag =
      hmac_sha256_trunc(keys.mac_key.unsafe_bytes(), ct.ciphertext, kMacTagLen);
  return ct;
}
}  // namespace

EciesCiphertext ecies_encrypt(ByteView receiver_public, ByteView plaintext,
                              ByteView ephemeral_random) {
  X25519Key shared;
  const X25519KeyPair eph =
      x25519_keypair_shared(ephemeral_random, receiver_public, shared);
  return encrypt_with(eph, shared, plaintext);
}

EciesCiphertext ecies_encrypt(ByteView receiver_public, ByteView plaintext,
                              const X25519KeyPair& ephemeral) {
  const X25519Key shared = x25519(ephemeral.private_key, receiver_public);
  return encrypt_with(ephemeral, shared, plaintext);
}

EciesCiphertext ecies_encrypt(ByteView receiver_public, ByteView plaintext,
                              const X25519SharedKeyPair& prepared) {
  (void)receiver_public;  // the pool already bound prepared.shared to it
  return encrypt_with(prepared.kp, prepared.shared, plaintext);
}

std::optional<Bytes> ecies_decrypt(SecretView receiver_private,
                                   const EciesCiphertext& ct) {
  const X25519Key shared = x25519(receiver_private, ct.ephemeral_public);
  const DerivedKeys keys = derive_keys(shared, ct.ephemeral_public);

  const Bytes expected_tag =
      hmac_sha256_trunc(keys.mac_key.unsafe_bytes(), ct.ciphertext, kMacTagLen);
  if (!ct_equal(expected_tag, ct.mac_tag)) return std::nullopt;
  return aes128_ctr(keys.enc, keys.icb, ct.ciphertext);
}

}  // namespace shield5g::crypto
