// AES-128 block cipher (FIPS-197).
//
// This is the primitive under MILENAGE (TS 35.206) and the AES-CTR
// stream used by the ECIES SUCI protection scheme (TS 33.501 Annex C).
// Two kernels back the same interface: a table-free byte-oriented
// scalar reference and an AES-NI path selected at runtime (see
// crypto/cpu_dispatch.h). Both execute the same block operations and
// charge the same op counts, so virtual-time results never depend on
// which one ran.
//
// The expanded key schedule lives in the context object: expand once,
// encrypt many. Milenage, ECIES and the TLS record layer all hold a
// context instead of re-expanding the key per call.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace shield5g::crypto {

class Aes128Ctx {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  /// Expands the 128-bit key. Throws if key.size() != 16.
  explicit Aes128Ctx(ByteView key);

  Aes128Ctx(const Aes128Ctx&) = default;
  Aes128Ctx& operator=(const Aes128Ctx&) = default;

  /// The schedule is key material: wipe it on destruction.
  ~Aes128Ctx();

  /// Encrypts exactly one 16-byte block.
  std::array<std::uint8_t, kBlockSize> encrypt_block(ByteView plaintext) const;

  /// Decrypts exactly one 16-byte block.
  std::array<std::uint8_t, kBlockSize> decrypt_block(ByteView ciphertext) const;

  /// Counter-mode keystream XOR: writes data.size() bytes to `out`
  /// (which may alias `data`). `icb` is the 16-byte initial counter
  /// block, incremented big-endian across the whole stream.
  void ctr_xor(ByteView icb, ByteView data, std::uint8_t* out) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

/// Historical name; the context semantics are the same type.
using Aes128 = Aes128Ctx;

/// AES-128 in counter mode: encrypt == decrypt. Convenience form that
/// expands `key` once for this call.
Bytes aes128_ctr(ByteView key, ByteView icb, ByteView data);

/// Counter mode against an already-expanded schedule (the hot path).
Bytes aes128_ctr(const Aes128Ctx& ctx, ByteView icb, ByteView data);

}  // namespace shield5g::crypto
