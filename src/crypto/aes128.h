// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// This is the primitive under MILENAGE (TS 35.206) and the AES-CTR
// stream used by the ECIES SUCI protection scheme (TS 33.501 Annex C).
// The implementation is a straightforward table-free byte-oriented
// version: correctness and auditability matter more here than raw
// throughput, since all performance numbers come from the cost model.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace shield5g::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  /// Expands the 128-bit key. Throws if key.size() != 16.
  explicit Aes128(ByteView key);

  /// Encrypts exactly one 16-byte block.
  std::array<std::uint8_t, kBlockSize> encrypt_block(ByteView plaintext) const;

  /// Decrypts exactly one 16-byte block.
  std::array<std::uint8_t, kBlockSize> decrypt_block(ByteView ciphertext) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

/// AES-128 in counter mode: encrypt == decrypt. `icb` is the 16-byte
/// initial counter block, incremented big-endian across the whole block.
Bytes aes128_ctr(ByteView key, ByteView icb, ByteView data);

}  // namespace shield5g::crypto
