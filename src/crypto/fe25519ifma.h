// 4-lane AVX-512 IFMA field arithmetic in GF(2^255 - 19) (internal).
//
// Second lane-sliced backend behind the batched ladder, for hosts with
// AVX512IFMA (vpmadd52luq / vpmadd52huq: per-qword 52x52-bit multiply
// into a 104-bit product, accumulated low/high half separately). Unlike
// the AVX2 backend (crypto/fe25519x4.h), which must split everything
// into 32-bit pieces for vpmuludq, IFMA multiplies 52-bit fields
// directly — roughly 72 madds per mul4 against ~210 multiply/add ops —
// so it is the preferred engine when the CPU offers it. Only 256-bit
// vectors are used (AVX512VL), keeping four lanes like the AVX2 kernel
// and avoiding 512-bit license downclocking.
//
// Radix: six limbs of 43 bits (2^258 > 2p, wrap constant 2^258 ≡ 152
// mod p). 43 was chosen for slack: vpmadd52 reads only the low 52 bits
// of each multiplicand, silently ignoring the rest, so every multiplier
// input must provably stay below 2^52. With 43-bit carried limbs, sums
// and biased differences reach only ~2^46 — far under the 52-bit edge —
// which means add4/sub4 outputs feed mul4/sq4 with no normalization
// step, exactly like the scalar 51-bit code.
//
// Range discipline:
//   * mul4 / sq4 accept limbs < 2^46 ("loose") and return carried
//     values (limbs <= 2^43 + 1).
//   * add4 of two carried values stays under 2^44.1 — loose.
//   * sub4 requires carried inputs (its bias, 32p with limbs ~2^45, is
//     sized for them) and returns limbs < 2^45.6 — loose.
//   * Accumulators: a product of loose limbs is < 2^92; each of the 12
//     column sums collects at most 6 low halves (< 2^52) plus the
//     9-bit-realigned high halves, staying under 2^54.8; the 152x wrap
//     fold lifts that to at most ~2^62.2 — no u64 overflow.
//
// This header is only meaningful in a translation unit compiled with
// -mavx512ifma -mavx512vl -mavx512dq; everything is guarded so other
// TUs see an empty namespace (x25519_ifma.cpp carries the stubs).
#pragma once

#include <cstdint>

#include "crypto/fe25519.h"

#if defined(__AVX512IFMA__) && defined(__AVX512VL__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace shield5g::crypto::fe25519ifma {

inline constexpr std::uint64_t kMask43 = (1ULL << 43) - 1;

// Four field elements, lane-sliced: element l lives in qword lane l of
// every h[i]; limb i weighs 2^43i.
struct Fe4 {
  __m256i h[6];
};

inline __m256i fe4_set1(std::uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

inline Fe4 fe4_zero() {
  Fe4 r;
  for (int i = 0; i < 6; ++i) r.h[i] = _mm256_setzero_si256();
  return r;
}

inline Fe4 fe4_one() {
  Fe4 r = fe4_zero();
  r.h[0] = fe4_set1(1);
  return r;
}

namespace internal {

// 152c = 128c + 16c + 8c (2^258 ≡ 152 mod p); the operand never
// exceeds ~2^55, so the shifts cannot overflow.
inline __m256i times152(__m256i c) {
  return _mm256_add_epi64(
      _mm256_add_epi64(_mm256_slli_epi64(c, 7), _mm256_slli_epi64(c, 4)),
      _mm256_slli_epi64(c, 3));
}

// Full carry; accepts limbs up to ~2^62.6 and leaves them carried
// (<= 2^43 + 1). Two interleaved chains — c0->c1->c2->c3 and
// c3->c4->c5->(x152)->c0 — plus a trailing stage, mirroring the AVX2
// backend's carry4 structure: 4 two-op stages instead of an 8-step
// sweep, since the carry follows every mul and sits on the ladder's
// serial critical path.
//
// Range argument: stage carries are < 2^19.7; the wrap contributes
// 152 * 2^19.7 < 2^27.3 to h0. The trailing stage re-carries h3 and
// h0, whose carries are then <= 1, so h4 and h1 end at most one above
// their masks — deep inside the 2^46 loose domain.
inline void carry6(Fe4& r) {
  const __m256i m43 = fe4_set1(kMask43);
  __m256i a, b;
  a = _mm256_srli_epi64(r.h[0], 43);
  b = _mm256_srli_epi64(r.h[3], 43);
  r.h[0] = _mm256_and_si256(r.h[0], m43);
  r.h[3] = _mm256_and_si256(r.h[3], m43);
  r.h[1] = _mm256_add_epi64(r.h[1], a);
  r.h[4] = _mm256_add_epi64(r.h[4], b);

  a = _mm256_srli_epi64(r.h[1], 43);
  b = _mm256_srli_epi64(r.h[4], 43);
  r.h[1] = _mm256_and_si256(r.h[1], m43);
  r.h[4] = _mm256_and_si256(r.h[4], m43);
  r.h[2] = _mm256_add_epi64(r.h[2], a);
  r.h[5] = _mm256_add_epi64(r.h[5], b);

  a = _mm256_srli_epi64(r.h[2], 43);
  b = _mm256_srli_epi64(r.h[5], 43);
  r.h[2] = _mm256_and_si256(r.h[2], m43);
  r.h[5] = _mm256_and_si256(r.h[5], m43);
  r.h[3] = _mm256_add_epi64(r.h[3], a);
  r.h[0] = _mm256_add_epi64(r.h[0], times152(b));

  a = _mm256_srli_epi64(r.h[3], 43);
  b = _mm256_srli_epi64(r.h[0], 43);
  r.h[3] = _mm256_and_si256(r.h[3], m43);
  r.h[0] = _mm256_and_si256(r.h[0], m43);
  r.h[4] = _mm256_add_epi64(r.h[4], a);
  r.h[1] = _mm256_add_epi64(r.h[1], b);
}

// Column sums c[0..11] (low halves plus 9-bit-realigned high halves)
// reduced mod p: columns 6..11 wrap by 152, then one carry pass.
inline Fe4 reduce12(const __m256i lo[12], const __m256i hi[12]) {
  Fe4 r;
  for (int m = 0; m < 6; ++m) {
    const __m256i c =
        _mm256_add_epi64(lo[m], _mm256_slli_epi64(hi[m], 9));
    const __m256i w =
        _mm256_add_epi64(lo[m + 6], _mm256_slli_epi64(hi[m + 6], 9));
    r.h[m] = _mm256_add_epi64(c, times152(w));
  }
  carry6(r);
  return r;
}

}  // namespace internal

/// Packs four 5x51 elements (limbs <= 2^52, i.e. carried or fe_load
/// outputs) into the lane-sliced 6x43 form; outputs are carried. The
/// slicing adds cross-limb pieces instead of OR-ing them, so loose
/// 51-bit limbs (which overlap their neighbor's bit range) convert
/// exactly.
inline Fe4 fe4_from_lanes(const fe25519::Fe in[4]) {
  __m256i a[5];
  for (int i = 0; i < 5; ++i) {
    a[i] = _mm256_set_epi64x(
        static_cast<long long>(in[3][i]), static_cast<long long>(in[2][i]),
        static_cast<long long>(in[1][i]), static_cast<long long>(in[0][i]));
  }
  const __m256i m43 = fe4_set1(kMask43);
  Fe4 r;
  __m256i t, cy;
  r.h[0] = _mm256_and_si256(a[0], m43);
  cy = _mm256_srli_epi64(a[0], 43);

  t = _mm256_add_epi64(cy, _mm256_slli_epi64(a[1], 8));
  r.h[1] = _mm256_and_si256(t, m43);
  cy = _mm256_srli_epi64(t, 43);

  t = _mm256_add_epi64(
      cy, _mm256_slli_epi64(
              _mm256_and_si256(a[2], fe4_set1((1ULL << 27) - 1)), 16));
  r.h[2] = _mm256_and_si256(t, m43);
  cy = _mm256_srli_epi64(t, 43);

  t = _mm256_add_epi64(
      _mm256_add_epi64(cy, _mm256_srli_epi64(a[2], 27)),
      _mm256_slli_epi64(_mm256_and_si256(a[3], fe4_set1((1ULL << 19) - 1)),
                        24));
  r.h[3] = _mm256_and_si256(t, m43);
  cy = _mm256_srli_epi64(t, 43);

  t = _mm256_add_epi64(
      _mm256_add_epi64(cy, _mm256_srli_epi64(a[3], 19)),
      _mm256_slli_epi64(_mm256_and_si256(a[4], fe4_set1((1ULL << 11) - 1)),
                        32));
  r.h[4] = _mm256_and_si256(t, m43);
  cy = _mm256_srli_epi64(t, 43);

  r.h[5] = _mm256_add_epi64(cy, _mm256_srli_epi64(a[4], 11));
  return r;
}

/// Unpacks carried lanes back to 5x51 (limbs <= 2^54, safe for fe_mul /
/// fe_store). Bits of h[5] above its mask weigh 2^258 ≡ 152 and fold
/// into limb 0.
inline void fe4_to_lanes(const Fe4& v, fe25519::Fe out[4]) {
  const __m256i m43 = fe4_set1(kMask43);
  __m256i a[5];
  a[0] = _mm256_add_epi64(
      _mm256_add_epi64(
          v.h[0],
          _mm256_slli_epi64(
              _mm256_and_si256(v.h[1], fe4_set1((1ULL << 8) - 1)), 43)),
      internal::times152(_mm256_srli_epi64(v.h[5], 43)));
  a[1] = _mm256_add_epi64(
      _mm256_srli_epi64(v.h[1], 8),
      _mm256_slli_epi64(
          _mm256_and_si256(v.h[2], fe4_set1((1ULL << 16) - 1)), 35));
  a[2] = _mm256_add_epi64(
      _mm256_srli_epi64(v.h[2], 16),
      _mm256_slli_epi64(
          _mm256_and_si256(v.h[3], fe4_set1((1ULL << 24) - 1)), 27));
  a[3] = _mm256_add_epi64(
      _mm256_srli_epi64(v.h[3], 24),
      _mm256_slli_epi64(
          _mm256_and_si256(v.h[4], fe4_set1((1ULL << 32) - 1)), 19));
  a[4] = _mm256_add_epi64(
      _mm256_srli_epi64(v.h[4], 32),
      _mm256_slli_epi64(_mm256_and_si256(v.h[5], m43), 11));

  alignas(32) std::uint64_t lanes[5][4];
  for (int i = 0; i < 5; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[i]), a[i]);
  }
  for (int l = 0; l < 4; ++l) {
    for (int i = 0; i < 5; ++i) out[l][i] = lanes[i][l];
  }
}

inline Fe4 add4(const Fe4& a, const Fe4& b) {
  Fe4 r;
  for (int i = 0; i < 6; ++i) r.h[i] = _mm256_add_epi64(a.h[i], b.h[i]);
  return r;
}

/// a + 32p - b with both inputs carried; limbs stay positive and loose.
/// 32p = (2^45 - 608) + (2^45 - 4) * (2^43 + 2^86 + ... + 2^215).
inline Fe4 sub4(const Fe4& a, const Fe4& b) {
  const __m256i bias0 = fe4_set1((1ULL << 45) - 608);
  const __m256i bias = fe4_set1((1ULL << 45) - 4);
  Fe4 r;
  r.h[0] = _mm256_add_epi64(a.h[0], _mm256_sub_epi64(bias0, b.h[0]));
  for (int i = 1; i < 6; ++i) {
    r.h[i] = _mm256_add_epi64(a.h[i], _mm256_sub_epi64(bias, b.h[i]));
  }
  return r;
}

/// mask must be all-ones / all-zero per qword lane (from a secret bit
/// via 0 - bit); branch-free like fe_cswap.
inline void cswap4(__m256i mask, Fe4& a, Fe4& b) {
  for (int i = 0; i < 6; ++i) {
    const __m256i x =
        _mm256_and_si256(mask, _mm256_xor_si256(a.h[i], b.h[i]));
    a.h[i] = _mm256_xor_si256(a.h[i], x);
    b.h[i] = _mm256_xor_si256(b.h[i], x);
  }
}

/// Lane-sliced schoolbook multiply. vpmadd52luq accumulates the low 52
/// bits of each 104-bit partial product into its column; the high half
/// lands one limb up, off the 43-bit grid by 52 - 43 = 9 bits, so high
/// halves accumulate separately and shift into place once per column.
inline Fe4 mul4(const Fe4& f, const Fe4& g) {
  __m256i lo[12], hi[12];
  for (int k = 0; k < 12; ++k) lo[k] = hi[k] = _mm256_setzero_si256();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      lo[i + j] = _mm256_madd52lo_epu64(lo[i + j], f.h[i], g.h[j]);
      hi[i + j + 1] = _mm256_madd52hi_epu64(hi[i + j + 1], f.h[i], g.h[j]);
    }
  }
  return internal::reduce12(lo, hi);
}

/// Lane-sliced squaring: off-diagonal products doubled through a
/// precomputed 2f (< 2^47, still a legal 52-bit multiplicand).
inline Fe4 sq4(const Fe4& f) {
  __m256i f2[6];
  for (int i = 0; i < 6; ++i) f2[i] = _mm256_add_epi64(f.h[i], f.h[i]);
  __m256i lo[12], hi[12];
  for (int k = 0; k < 12; ++k) lo[k] = hi[k] = _mm256_setzero_si256();
  for (int i = 0; i < 6; ++i) {
    lo[2 * i] = _mm256_madd52lo_epu64(lo[2 * i], f.h[i], f.h[i]);
    hi[2 * i + 1] = _mm256_madd52hi_epu64(hi[2 * i + 1], f.h[i], f.h[i]);
    for (int j = i + 1; j < 6; ++j) {
      lo[i + j] = _mm256_madd52lo_epu64(lo[i + j], f2[i], f.h[j]);
      hi[i + j + 1] = _mm256_madd52hi_epu64(hi[i + j + 1], f2[i], f.h[j]);
    }
  }
  return internal::reduce12(lo, hi);
}

/// f * s for small s (s < 2^17, e.g. the ladder's 121665): the exact
/// 64-bit products (< 2^63) come from vpmullq and one carry pass
/// finishes — no wrap fold, since no column reaches limb 6.
inline Fe4 mul_small4(const Fe4& f, std::uint32_t s) {
  const __m256i vs = fe4_set1(s);
  Fe4 r;
  for (int i = 0; i < 6; ++i) r.h[i] = _mm256_mullo_epi64(f.h[i], vs);
  internal::carry6(r);
  return r;
}

inline Fe4 sqn4(Fe4 f, int n) {
  for (int i = 0; i < n; ++i) f = sq4(f);
  return f;
}

/// z^(p-2) per lane — fe_invert's addition chain verbatim, so a zero
/// lane inverts to zero exactly like the scalar path.
inline Fe4 invert4(const Fe4& z) {
  const Fe4 t0 = sq4(z);                        // z^2
  Fe4 t1 = mul4(z, sqn4(t0, 2));                // z^9
  const Fe4 t0b = mul4(t0, t1);                 // z^11
  const Fe4 t2 = sq4(t0b);                      // z^22
  t1 = mul4(t1, t2);                            // z^31 = z^(2^5-1)
  Fe4 t3 = mul4(t1, sqn4(t1, 5));               // z^(2^10-1)
  Fe4 t4 = mul4(t3, sqn4(t3, 10));              // z^(2^20-1)
  Fe4 t5 = mul4(t4, sqn4(t4, 20));              // z^(2^40-1)
  t4 = mul4(t3, sqn4(t5, 10));                  // z^(2^50-1)
  t5 = mul4(t4, sqn4(t4, 50));                  // z^(2^100-1)
  Fe4 t6 = mul4(t5, sqn4(t5, 100));             // z^(2^200-1)
  t5 = mul4(t4, sqn4(t6, 50));                  // z^(2^250-1)
  return mul4(t0b, sqn4(t5, 5));                // z^(p-2)
}

}  // namespace shield5g::crypto::fe25519ifma

#endif  // __AVX512IFMA__ && __AVX512VL__ && __AVX512DQ__
