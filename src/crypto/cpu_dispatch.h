// Runtime selection between the scalar reference kernels and the
// hardware-accelerated ones (AES-NI, SHA extensions).
//
// The selection is wall-clock-only: both backends execute the same
// primitive operations and increment the same op counters, so every
// virtual-time result is bit-identical regardless of which kernel ran.
// Detection happens once (CPUID), can be overridden by the environment
// variable SHIELD5G_CRYPTO_BACKEND=scalar|accel|auto, and can be forced
// at runtime by tests so both paths run in CI on any host.
#pragma once

namespace shield5g::crypto {

enum class CryptoBackend {
  kScalar,       // portable reference implementations
  kAccelerated,  // AES-NI / SHA-NI kernels plus the fixed-point X25519
                 // path; each kernel still falls back to scalar when the
                 // host lacks its specific CPU feature
};

/// The backend in effect for this call. Resolved once from CPUID and
/// SHIELD5G_CRYPTO_BACKEND, unless a force is active.
CryptoBackend active_backend() noexcept;

/// Test hook: pin the backend regardless of CPU features or env.
void force_backend(CryptoBackend backend) noexcept;

/// Test hook: drop a force_backend() pin and return to auto selection.
void clear_forced_backend() noexcept;

/// Raw CPUID feature bits (false on non-x86 builds). cpu_has_avx2 also
/// requires OS support for YMM state (OSXSAVE + XCR0), so a true result
/// means the 4-lane x25519 kernels are actually executable.
/// cpu_has_avx512ifma additionally requires AVX512F/VL/DQ and the OS
/// saving opmask + ZMM state, covering the IFMA ladder's 256-bit
/// vpmadd52/vpmullq forms.
bool cpu_has_aesni() noexcept;
bool cpu_has_shani() noexcept;
bool cpu_has_avx2() noexcept;
bool cpu_has_avx512ifma() noexcept;

/// Human-readable name for reports ("scalar" / "accel").
const char* backend_name(CryptoBackend backend) noexcept;

}  // namespace shield5g::crypto
