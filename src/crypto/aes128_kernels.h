// Internal AES kernel entry points (not part of the public crypto API).
//
// The AES-NI functions live in their own translation unit compiled with
// the `aes` target attribute so the rest of the library needs no special
// compile flags; the dispatcher in aes128.cpp calls them only after
// checking cpu_has_aesni(). None of these touch the op counters — the
// public Aes128Ctx methods charge blocks before dispatching, which keeps
// the counts identical across backends by construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace shield5g::crypto::detail {

/// True when this build carries the AES-NI kernel at all (x86-64 only).
bool aesni_compiled() noexcept;

/// Encrypts `nblocks` consecutive 16-byte blocks with the expanded
/// schedule `rk` (11 round keys, 176 bytes).
void aesni_encrypt_blocks(const std::uint8_t* rk, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t nblocks);

/// Decrypts one 16-byte block (computes the inverse schedule on the
/// fly; decryption is off the hot path).
void aesni_decrypt_block(const std::uint8_t* rk, const std::uint8_t* in,
                         std::uint8_t* out);

/// CTR keystream XOR over `len` bytes starting from counter block
/// `icb[16]`, big-endian increment. `out` may alias `in`.
void aesni_ctr_xor(const std::uint8_t* rk, const std::uint8_t* icb,
                   const std::uint8_t* in, std::uint8_t* out,
                   std::size_t len);

}  // namespace shield5g::crypto::detail
