// Internal X25519 entry points for parity tests and benchmarks.
//
// Production code calls crypto::x25519(), which picks the fast path on
// its own. These hooks let tests pin a specific path and assert that
// the Montgomery ladder and the Edwards comb agree bit for bit.
#pragma once

#include "crypto/x25519.h"
#include "crypto/x25519_comb.h"

namespace shield5g::crypto::detail {

/// Montgomery ladder, unconditionally. Does not charge op counts.
X25519Key x25519_ladder(SecretView scalar, ByteView u);

/// RFC 7748 clamp of a 32-byte secret scalar into `k`.
void x25519_clamp(std::uint8_t k[32], SecretView scalar);

/// Ladder up to (not including) the final inversion: u = num/den.
/// `k` must already be clamped. Does not charge op counts.
void x25519_ladder_fraction(const std::uint8_t k[32], ByteView u,
                            fe25519::Fe& num, fe25519::Fe& den);

/// Like x25519_ladder_fraction but comb-aware: takes the comb fast
/// path when the accel backend is active and a table exists for `u`
/// (recording the sighting either way) — the exact path the public
/// x25519() takes. Does not charge op counts.
void x25519_mult_fraction(const std::uint8_t k[32], ByteView u,
                          fe25519::Fe& num, fe25519::Fe& den);

/// One comb-cache lookup for `u` (accel backend only; nullptr under the
/// scalar backend or when the point is ladder-bound). Counts as a
/// sighting for graduation, exactly like the serial path's lookup —
/// batch callers must call this at most once per point per mult.
const CombTable* x25519_batch_comb_lookup(ByteView u);

/// Edwards comb, unconditionally (builds a throwaway table when the
/// point is not already cached). Throws std::invalid_argument when the
/// point does not lift to edwards25519. Does not charge op counts.
X25519Key x25519_comb_forced(SecretView scalar, ByteView u);

/// True when `u` lifts to edwards25519 (i.e. the comb can serve it).
bool x25519_comb_liftable(ByteView u);

/// Drops the process-wide shared comb-table cache and this thread's
/// candidate sighting counts (tests reset between cases). Must be
/// called while no other thread is evaluating x25519 — published
/// entries are freed here and readers take no lock.
void x25519_cache_reset();

/// Number of comb-table entries currently published in the shared
/// cache (unliftable verdicts included).
std::size_t x25519_cache_size();

}  // namespace shield5g::crypto::detail
