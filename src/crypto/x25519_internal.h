// Internal X25519 entry points for parity tests and benchmarks.
//
// Production code calls crypto::x25519(), which picks the fast path on
// its own. These hooks let tests pin a specific path and assert that
// the Montgomery ladder and the Edwards comb agree bit for bit.
#pragma once

#include "crypto/x25519.h"

namespace shield5g::crypto::detail {

/// Montgomery ladder, unconditionally. Does not charge op counts.
X25519Key x25519_ladder(SecretView scalar, ByteView u);

/// Edwards comb, unconditionally (builds a throwaway table when the
/// point is not already cached). Throws std::invalid_argument when the
/// point does not lift to edwards25519. Does not charge op counts.
X25519Key x25519_comb_forced(SecretView scalar, ByteView u);

/// True when `u` lifts to edwards25519 (i.e. the comb can serve it).
bool x25519_comb_liftable(ByteView u);

/// Drops the process-wide shared comb-table cache and this thread's
/// candidate sighting counts (tests reset between cases). Must be
/// called while no other thread is evaluating x25519 — published
/// entries are freed here and readers take no lock.
void x25519_cache_reset();

/// Number of comb-table entries currently published in the shared
/// cache (unliftable verdicts included).
std::size_t x25519_cache_size();

}  // namespace shield5g::crypto::detail
