// Lightweight instrumentation of the crypto primitives.
//
// The cost models charge virtual time per primitive operation actually
// executed (AES block, SHA-256 compression, X25519 scalar mult), so the
// functional latency of a P-AKA handler is driven by the real work its
// real code performs rather than by a hard-coded per-handler constant.
//
// Counters are thread_local: a handler (and its OpMeter) always runs to
// completion on one thread, while load::monte_carlo fans jobs out across
// host threads — per-thread counters keep each job's delta exact without
// putting atomics on the per-block hot path.
#pragma once

#include <cstdint>

namespace shield5g::crypto {

struct OpCounts {
  std::uint64_t aes_blocks = 0;
  std::uint64_t sha256_blocks = 0;
  std::uint64_t x25519_ops = 0;

  OpCounts operator-(const OpCounts& rhs) const noexcept {
    return OpCounts{aes_blocks - rhs.aes_blocks,
                    sha256_blocks - rhs.sha256_blocks,
                    x25519_ops - rhs.x25519_ops};
  }
};

/// Per-thread counter, incremented by the primitives.
OpCounts& op_counts() noexcept;

}  // namespace shield5g::crypto
