#include "crypto/eph_pool.h"

#include <stdexcept>

#include "common/stats.h"
#include "crypto/op_count.h"

namespace shield5g::crypto {

EphemeralKeyPool::EphemeralKeyPool(Config config)
    : config_(config), rng_(config.seed) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("EphemeralKeyPool: capacity must be > 0");
  }
  ring_.reserve(config_.capacity);
}

void EphemeralKeyPool::refill_locked() {
  // Batch generation models the background refill thread of a real
  // deployment: the fixed-base mults do not charge the consumer's op
  // meter (they are off the critical path), so a handshake that drains
  // the pool is billed only for its own variable-base multiplication.
  const OpCounts before = op_counts();
  ring_.clear();
  for (std::size_t i = 0; i < config_.capacity; ++i) {
    ring_.push_back(x25519_keypair(rng_.bytes(32)));
  }
  op_counts() = before;
  generated_ += config_.capacity;
  counter_add("x25519.pool.refill", config_.capacity);
}

X25519KeyPair EphemeralKeyPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) refill_locked();
  X25519KeyPair out = std::move(ring_.back());
  ring_.pop_back();
  counter_add("x25519.pool.hit");
  return out;
}

std::size_t EphemeralKeyPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t EphemeralKeyPool::generated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generated_;
}

}  // namespace shield5g::crypto
