#include "crypto/eph_pool.h"

#include <algorithm>
#include <stdexcept>

#include "common/hot_stage.h"
#include "common/stats.h"
#include "crypto/op_count.h"
#include "crypto/x25519_batch.h"

namespace shield5g::crypto {

namespace {

// RFC 7748 base point, the fixed operand of every refill mult.
constexpr std::uint8_t kBasePoint[32] = {9};

}  // namespace

EphemeralKeyPool::EphemeralKeyPool(Config config)
    : config_(config), rng_(config.seed) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("EphemeralKeyPool: capacity must be > 0");
  }
  ring_.reserve(config_.capacity);
  peers_.reserve(kMaxPeerSlots);
}

void EphemeralKeyPool::refill_locked() {
  // Batch generation models the background refill thread of a real
  // deployment: the fixed-base mults do not charge the consumer's op
  // meter (they are off the critical path), so a handshake that drains
  // the pool is billed only for its own variable-base multiplication.
  //
  // Private scalars are drawn first, in the same RNG order the old
  // one-at-a-time loop used, so the key stream is bit-identical; the
  // public keys then compute as one x25519_batch() group, 4 lanes at a
  // time through the AVX2 ladder when available.
  const OpCounts before = op_counts();
  ring_.clear();
  for (std::size_t i = 0; i < config_.capacity; ++i) {
    X25519KeyPair pair;
    pair.private_key = Secret<kX25519KeySize>(rng_.bytes(32));
    ring_.push_back(std::move(pair));
  }
  MultBatcher batcher;
  for (std::size_t i = 0; i < config_.capacity; ++i) {
    batcher.enqueue(ring_[i].private_key, ByteView(kBasePoint, 32),
                    &ring_[i].public_key);
  }
  batcher.flush();
  op_counts() = before;
  generated_ += config_.capacity;
  counter_add("x25519.pool.refill_keys", config_.capacity);
}

X25519KeyPair EphemeralKeyPool::take_pair_locked() {
  if (ring_.empty()) refill_locked();
  X25519KeyPair out = std::move(ring_.back());
  ring_.pop_back();
  return out;
}

EphemeralKeyPool::PeerSlot& EphemeralKeyPool::slot_for_locked(
    ByteView peer_public) {
  for (PeerSlot& slot : peers_) {
    // Peer public keys are not secret; still, branch on an accumulated
    // difference rather than byte-by-byte so the comparison shape
    // matches the rest of the crypto layer.
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < 32; ++i) acc |= slot.peer[i] ^ peer_public[i];
    if (acc == 0) {
      slot.last_use = ++peer_clock_;
      return slot;
    }
  }
  if (peers_.size() < kMaxPeerSlots) {
    peers_.emplace_back();
  } else {
    // Evict the least recently used peer; its prepared pairs are
    // discarded (they were generated off-meter, so nothing was billed).
    std::size_t victim = 0;
    for (std::size_t i = 1; i < peers_.size(); ++i) {
      if (peers_[i].last_use < peers_[victim].last_use) victim = i;
    }
    peers_[victim] = PeerSlot{};
    PeerSlot& slot = peers_[victim];
    std::copy(peer_public.begin(), peer_public.end(), slot.peer.begin());
    slot.last_use = ++peer_clock_;
    return slot;
  }
  PeerSlot& slot = peers_.back();
  std::copy(peer_public.begin(), peer_public.end(), slot.peer.begin());
  slot.last_use = ++peer_clock_;
  return slot;
}

void EphemeralKeyPool::fill_shared_locked(PeerSlot& slot, std::size_t count) {
  // Off-meter like refill_locked: the consumer is billed one op per
  // pair at acquisition, not here.
  const OpCounts before = op_counts();
  const std::size_t base = slot.ready.size();
  for (std::size_t i = 0; i < count; ++i) {
    X25519SharedKeyPair prep;
    prep.kp = take_pair_locked();
    slot.ready.push_back(std::move(prep));
  }
  MultBatcher batcher;
  for (std::size_t i = base; i < slot.ready.size(); ++i) {
    batcher.enqueue(slot.ready[i].kp.private_key,
                    ByteView(slot.peer.data(), slot.peer.size()),
                    &slot.ready[i].shared);
  }
  batcher.flush();
  op_counts() = before;
  counter_add("x25519.pool.shared_keys", count);
}

X25519KeyPair EphemeralKeyPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  X25519KeyPair out = take_pair_locked();
  counter_add("x25519.pool.hit");
  return out;
}

X25519SharedKeyPair EphemeralKeyPool::acquire_shared(ByteView peer_public) {
  if (peer_public.size() != kX25519KeySize) {
    throw std::invalid_argument(
        "EphemeralKeyPool::acquire_shared: peer key must be 32 bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  PeerSlot& slot = slot_for_locked(peer_public);
  ++slot.acquires;
  if (slot.ready.empty()) {
    // First contact prepares a single pair (no waste if the peer never
    // returns); repeat traffic fills a full 4-lane group.
    fill_shared_locked(slot, slot.acquires > 1 ? kSharedBatch : 1);
  }
  X25519SharedKeyPair out = std::move(slot.ready.front());
  slot.ready.erase(slot.ready.begin());
  // Bill the consumer for the one variable-base mult a serial
  // acquire()+x25519() would have charged here, keeping virtual-time
  // accounting bit-identical to the unbatched path.
  {
    ScopedStage timer(HotStage::kCrypto);
    ++op_counts().x25519_ops;
  }
  counter_add("x25519.pool.hit");
  return out;
}

void EphemeralKeyPool::prewarm_shared(ByteView peer_public,
                                      std::size_t count) {
  if (peer_public.size() != kX25519KeySize) {
    throw std::invalid_argument(
        "EphemeralKeyPool::prewarm_shared: peer key must be 32 bytes");
  }
  if (count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  PeerSlot& slot = slot_for_locked(peer_public);
  if (slot.ready.size() < count) {
    fill_shared_locked(slot, count - slot.ready.size());
  }
}

std::size_t EphemeralKeyPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t EphemeralKeyPool::available_shared(ByteView peer_public) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PeerSlot& slot : peers_) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < 32; ++i) acc |= slot.peer[i] ^ peer_public[i];
    if (acc == 0) return slot.ready.size();
  }
  return 0;
}

std::uint64_t EphemeralKeyPool::generated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generated_;
}

}  // namespace shield5g::crypto
