#include "crypto/aes128.h"

#include <stdexcept>

#include "common/secret.h"
#include "crypto/aes128_kernels.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/op_count.h"

namespace shield5g::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

using State = std::array<std::uint8_t, 16>;  // column-major, as in FIPS-197

void add_round_key(State& s, const std::uint8_t* rk) noexcept {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

void sub_bytes(State& s) noexcept {
  for (auto& b : s) b = kSbox[b];
}

void inv_sub_bytes(State& s) noexcept {
  for (auto& b : s) b = kInvSbox[b];
}

// State layout: s[4*c + r] is row r, column c.
void shift_rows(State& s) noexcept {
  State t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[4 * c + r] = t[4 * ((c + r) % 4) + r];
    }
  }
}

void inv_shift_rows(State& s) noexcept {
  State t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[4 * ((c + r) % 4) + r] = t[4 * c + r];
    }
  }
}

void mix_columns(State& s) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[4 * c];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(State& s) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[4 * c];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
  }
}

// Scalar reference kernels. They do NOT charge op counts — the public
// methods do, before dispatch, so both backends count identically.
void scalar_encrypt_block(const std::uint8_t* rk, const std::uint8_t* in,
                          std::uint8_t* out) noexcept {
  State s;
  for (int i = 0; i < 16; ++i) s[i] = in[i];
  add_round_key(s, rk);
  for (int round = 1; round < 10; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, rk + 16 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, rk + 160);
  for (int i = 0; i < 16; ++i) out[i] = s[i];
}

void scalar_decrypt_block(const std::uint8_t* rk, const std::uint8_t* in,
                          std::uint8_t* out) noexcept {
  State s;
  for (int i = 0; i < 16; ++i) s[i] = in[i];
  add_round_key(s, rk + 160);
  for (int round = 9; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, rk + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, rk);
  for (int i = 0; i < 16; ++i) out[i] = s[i];
}

bool use_aesni() noexcept {
  return active_backend() == CryptoBackend::kAccelerated &&
         detail::aesni_compiled() && cpu_has_aesni();
}

}  // namespace

Aes128Ctx::Aes128Ctx(ByteView key) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("Aes128Ctx: key must be 16 bytes");
  }
  for (std::size_t i = 0; i < kKeySize; ++i) round_keys_[i] = key[i];
  for (int i = 4; i < 44; ++i) {
    std::uint8_t t[4] = {round_keys_[4 * (i - 1)], round_keys_[4 * (i - 1) + 1],
                         round_keys_[4 * (i - 1) + 2],
                         round_keys_[4 * (i - 1) + 3]};
    if (i % 4 == 0) {
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 4 - 1]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[4 * i + j] =
          static_cast<std::uint8_t>(round_keys_[4 * (i - 4) + j] ^ t[j]);
    }
  }
}

Aes128Ctx::~Aes128Ctx() {
  secure_zero(round_keys_.data(), round_keys_.size());
}

std::array<std::uint8_t, Aes128Ctx::kBlockSize> Aes128Ctx::encrypt_block(
    ByteView plaintext) const {
  if (plaintext.size() != kBlockSize) {
    throw std::invalid_argument("Aes128Ctx::encrypt_block: need 16 bytes");
  }
  ++op_counts().aes_blocks;
  std::array<std::uint8_t, kBlockSize> out;
  if (use_aesni()) {
    detail::aesni_encrypt_blocks(round_keys_.data(), plaintext.data(),
                                 out.data(), 1);
  } else {
    scalar_encrypt_block(round_keys_.data(), plaintext.data(), out.data());
  }
  return out;
}

std::array<std::uint8_t, Aes128Ctx::kBlockSize> Aes128Ctx::decrypt_block(
    ByteView ciphertext) const {
  if (ciphertext.size() != kBlockSize) {
    throw std::invalid_argument("Aes128Ctx::decrypt_block: need 16 bytes");
  }
  ++op_counts().aes_blocks;
  std::array<std::uint8_t, kBlockSize> out;
  if (use_aesni()) {
    detail::aesni_decrypt_block(round_keys_.data(), ciphertext.data(),
                                out.data());
  } else {
    scalar_decrypt_block(round_keys_.data(), ciphertext.data(), out.data());
  }
  return out;
}

void Aes128Ctx::ctr_xor(ByteView icb, ByteView data,
                        std::uint8_t* out) const {
  if (icb.size() != kBlockSize) {
    throw std::invalid_argument("Aes128Ctx::ctr_xor: counter block size");
  }
  const std::size_t nblocks = (data.size() + kBlockSize - 1) / kBlockSize;
  op_counts().aes_blocks += nblocks;
  if (use_aesni()) {
    detail::aesni_ctr_xor(round_keys_.data(), icb.data(), data.data(), out,
                          data.size());
    return;
  }
  std::array<std::uint8_t, 16> counter{};
  for (int i = 0; i < 16; ++i) counter[i] = icb[i];
  std::size_t off = 0;
  while (off < data.size()) {
    std::array<std::uint8_t, 16> keystream;
    scalar_encrypt_block(round_keys_.data(), counter.data(),
                         keystream.data());
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    }
    // Increment the counter block as a 128-bit big-endian integer.
    for (int i = 15; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
    off += n;
  }
}

Bytes aes128_ctr(ByteView key, ByteView icb, ByteView data) {
  const Aes128Ctx ctx(key);
  return aes128_ctr(ctx, icb, data);
}

Bytes aes128_ctr(const Aes128Ctx& ctx, ByteView icb, ByteView data) {
  Bytes out(data.size());
  ctx.ctr_xor(icb, data, out.data());
  return out;
}

}  // namespace shield5g::crypto
