// Virtual-time costs of the crypto primitives.
//
// Combined with the op counters, this converts the *actual* crypto work
// a handler executed into virtual nanoseconds. Values model a table-free
// software implementation on the paper's 2.4 GHz Xeon.
#pragma once

#include <cstdint>

#include "crypto/op_count.h"

namespace shield5g::crypto {

struct PrimitiveCosts {
  std::uint64_t aes_block_ns = 95;
  std::uint64_t sha256_block_ns = 130;
  std::uint64_t x25519_ns = 52'000;

  std::uint64_t ns_for(const OpCounts& delta) const noexcept {
    return delta.aes_blocks * aes_block_ns +
           delta.sha256_blocks * sha256_block_ns +
           delta.x25519_ops * x25519_ns;
  }
};

/// RAII helper: snapshots the op counters on construction and reports
/// the delta cost on demand.
class OpMeter {
 public:
  OpMeter() : start_(op_counts()) {}
  OpCounts delta() const noexcept { return op_counts() - start_; }
  std::uint64_t ns(const PrimitiveCosts& costs) const noexcept {
    return costs.ns_for(delta());
  }

 private:
  OpCounts start_;
};

}  // namespace shield5g::crypto
