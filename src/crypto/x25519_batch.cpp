// Batch dispatcher for x25519_batch() — built with the project's normal
// flags (no -mavx2) so the scalar fallback path cannot pick up AVX2
// instructions by autovectorization; the vector kernels live in
// x25519_x4.cpp alone.
#include "crypto/x25519_batch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/hot_stage.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/op_count.h"
#include "crypto/x25519_comb.h"
#include "crypto/x25519_internal.h"

namespace shield5g::crypto {

namespace {

using fe25519::Fe;

// 0 = unset, 1 = scalar, 2 = x4, 3 = ifma; same relaxed-atomic pattern
// as cpu_dispatch's g_forced.
std::atomic<int> g_forced_engine{0};

// SHIELD5G_X25519_BATCH: unset/auto = best available, "x4" caps
// selection at the AVX2 kernel (the non-IFMA fallback smoke uses this),
// "scalar" forces the reference path.
enum class EnvCap { kAuto, kX4, kScalar };

EnvCap env_cap() noexcept {
  static const EnvCap cap = [] {
    const char* env = std::getenv("SHIELD5G_X25519_BATCH");
    if (env == nullptr) return EnvCap::kAuto;
    if (std::strcmp(env, "scalar") == 0) return EnvCap::kScalar;
    if (std::strcmp(env, "x4") == 0) return EnvCap::kX4;
    return EnvCap::kAuto;
  }();
  return cap;
}

bool x4_available() noexcept {
  return detail::x25519_x4_compiled() && cpu_has_avx2();
}

bool ifma_available() noexcept {
  return detail::x25519_ifma_compiled() && cpu_has_avx512ifma();
}

// Finishes one fraction to a canonical u-coordinate, the way the serial
// x25519() does.
void finish_item(const Fe& num, const Fe& den, X25519Key* out) {
  fe25519::fe_store(out->data(), fe25519::fe_mul(num, fe25519::fe_invert(den)));
}

}  // namespace

X25519BatchEngine x25519_batch_engine() noexcept {
  const int forced = g_forced_engine.load(std::memory_order_relaxed);
  if (forced == 1) return X25519BatchEngine::kScalar;
  if (forced == 3 && ifma_available()) return X25519BatchEngine::kIfma;
  if (forced == 2 || forced == 3) {
    return x4_available() ? X25519BatchEngine::kX4
                          : X25519BatchEngine::kScalar;
  }
  // SHIELD5G_CRYPTO_BACKEND=scalar pins the whole crypto stack to the
  // reference path, batch engine included.
  if (active_backend() != CryptoBackend::kAccelerated ||
      env_cap() == EnvCap::kScalar) {
    return X25519BatchEngine::kScalar;
  }
  if (ifma_available() && env_cap() == EnvCap::kAuto) {
    return X25519BatchEngine::kIfma;
  }
  if (x4_available()) return X25519BatchEngine::kX4;
  return X25519BatchEngine::kScalar;
}

const char* x25519_batch_engine_name(X25519BatchEngine engine) noexcept {
  switch (engine) {
    case X25519BatchEngine::kX4: return "x4";
    case X25519BatchEngine::kIfma: return "ifma";
    case X25519BatchEngine::kScalar: break;
  }
  return "scalar";
}

void x25519_batch(X25519BatchItem* items, std::size_t n) {
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    if (items[i].scalar.size() != 32 || items[i].point.size() != 32 ||
        items[i].out == nullptr) {
      throw std::invalid_argument(
          "x25519_batch: items need 32-byte scalar/point and an output");
    }
  }
  ScopedStage timer(HotStage::kCrypto);
  op_counts().x25519_ops += n;  // exactly what n serial calls charge

  std::vector<std::array<std::uint8_t, 32>> ks(n);
  for (std::size_t i = 0; i < n; ++i) {
    detail::x25519_clamp(ks[i].data(), items[i].scalar);
  }

  const X25519BatchEngine engine = x25519_batch_engine();
  if (engine == X25519BatchEngine::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      Fe num, den;
      detail::x25519_mult_fraction(ks[i].data(), items[i].point, num, den);
      finish_item(num, den, items[i].out);
    }
    secure_zero(ks.data(), n * sizeof(ks[0]));
    return;
  }

  // Vector engines: one comb-cache lookup per point (identical
  // sighting / graduation behavior to the serial path); comb hits
  // evaluate right away, ladder-bound points queue for the 4-lane
  // kernel — IFMA or AVX2, same batching shape.
  const auto ladder4 = engine == X25519BatchEngine::kIfma
                           ? detail::x25519_ifma_ladder4
                           : detail::x25519_x4_ladder4;
  std::vector<std::size_t> ladder_queue;
  ladder_queue.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const detail::CombTable* table =
        detail::x25519_batch_comb_lookup(items[i].point);
    if (table != nullptr) {
      Fe num, den;
      detail::comb_eval_fraction(*table, ks[i].data(), num, den);
      finish_item(num, den, items[i].out);
    } else {
      ladder_queue.push_back(i);
    }
  }

  std::size_t q = 0;
  for (; q + 4 <= ladder_queue.size(); q += 4) {
    std::uint8_t k4[4][32];
    const std::uint8_t* u4[4];
    std::uint8_t out4[4][32];
    for (int l = 0; l < 4; ++l) {
      const std::size_t idx = ladder_queue[q + l];
      std::memcpy(k4[l], ks[idx].data(), 32);
      u4[l] = items[idx].point.data();
    }
    ladder4(k4, u4, out4);
    for (int l = 0; l < 4; ++l) {
      std::memcpy(items[ladder_queue[q + l]].out->data(), out4[l], 32);
    }
    secure_zero(k4, sizeof(k4));
  }
  for (; q < ladder_queue.size(); ++q) {
    // Partial group: scalar ladder (no second comb lookup — the
    // sighting above already counted).
    const std::size_t idx = ladder_queue[q];
    Fe num, den;
    detail::x25519_ladder_fraction(ks[idx].data(), items[idx].point, num, den);
    finish_item(num, den, items[idx].out);
  }
  secure_zero(ks.data(), n * sizeof(ks[0]));
}

namespace detail {

void force_batch_engine(X25519BatchEngine engine) noexcept {
  int v = 1;
  if (engine == X25519BatchEngine::kX4) v = 2;
  if (engine == X25519BatchEngine::kIfma) v = 3;
  g_forced_engine.store(v, std::memory_order_relaxed);
}

void clear_forced_batch_engine() noexcept {
  g_forced_engine.store(0, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace shield5g::crypto
