// AVX-512 IFMA 4-lane X25519 ladder kernels (the only TU built with
// -mavx512ifma).
//
// Everything here is guarded by the AVX512IFMA/VL/DQ macros: when the
// toolchain cannot target them this file compiles to stubs and the
// batch dispatcher (x25519_batch.cpp, built with the normal flags so no
// AVX-512 code can leak into fallback paths) falls back to the AVX2 or
// scalar engine. Callers must gate on x25519_ifma_compiled() &&
// cpu_has_avx512ifma() before entering the kernels.
#include "crypto/x25519_batch.h"

#include "crypto/fe25519.h"

#if defined(__AVX512IFMA__) && defined(__AVX512VL__) && defined(__AVX512DQ__)
#include "crypto/fe25519ifma.h"
#endif

namespace shield5g::crypto::detail {

#if defined(__AVX512IFMA__) && defined(__AVX512VL__) && defined(__AVX512DQ__)

namespace {

using fe25519::Fe;
using namespace fe25519ifma;

// Value-preserving re-carry into < 2^52 limbs (fe_store's lossy passes
// without the canonicalization), so test-hook inputs with limbs up to
// 2^54 fit the fe4_from_lanes contract and outputs report carried 5x51
// limbs like the scalar ops.
Fe loose_carry(const Fe& in) {
  using fe25519::kMask51;
  Fe t = in;
  for (int pass = 0; pass < 2; ++pass) {
    t[1] += t[0] >> 51; t[0] &= kMask51;
    t[2] += t[1] >> 51; t[1] &= kMask51;
    t[3] += t[2] >> 51; t[2] &= kMask51;
    t[4] += t[3] >> 51; t[3] &= kMask51;
    t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;
  }
  return t;
}

// The RFC 7748 step sequence itself is shared with the AVX2 kernel TU.
#include "crypto/x25519_lanes.inl"

}  // namespace

bool x25519_ifma_compiled() noexcept { return true; }

void x25519_ifma_ladder4(const std::uint8_t k[4][32],
                         const std::uint8_t* const u[4],
                         std::uint8_t out[4][32]) {
  lanes_ladder4(k, u, out);
}

bool x25519_ifma_mul(const Fe a[4], const Fe b[4], Fe r[4]) {
  Fe an[4], bn[4];
  for (int l = 0; l < 4; ++l) {
    an[l] = loose_carry(a[l]);
    bn[l] = loose_carry(b[l]);
  }
  const Fe4 prod = mul4(fe4_from_lanes(an), fe4_from_lanes(bn));
  fe4_to_lanes(prod, r);
  for (int l = 0; l < 4; ++l) r[l] = loose_carry(r[l]);
  return true;
}

bool x25519_ifma_sq(const Fe a[4], Fe r[4]) {
  Fe an[4];
  for (int l = 0; l < 4; ++l) an[l] = loose_carry(a[l]);
  const Fe4 sq = sq4(fe4_from_lanes(an));
  fe4_to_lanes(sq, r);
  for (int l = 0; l < 4; ++l) r[l] = loose_carry(r[l]);
  return true;
}

#else  // !(__AVX512IFMA__ && __AVX512VL__ && __AVX512DQ__)

bool x25519_ifma_compiled() noexcept { return false; }

void x25519_ifma_ladder4(const std::uint8_t[4][32],
                         const std::uint8_t* const[4], std::uint8_t[4][32]) {
  // Unreachable by contract (callers gate on x25519_ifma_compiled()).
}

bool x25519_ifma_mul(const fe25519::Fe[4], const fe25519::Fe[4],
                     fe25519::Fe[4]) {
  return false;
}

bool x25519_ifma_sq(const fe25519::Fe[4], fe25519::Fe[4]) { return false; }

#endif

}  // namespace shield5g::crypto::detail
