// Field arithmetic in GF(2^255 - 19), five 51-bit limbs, little-endian.
//
// Shared by the Montgomery ladder (x25519.cpp) and the fixed-base
// Edwards comb (x25519_comb.cpp). Header-only so both translation units
// inline the limb arithmetic.
//
// Range discipline: fe_mul / fe_sq accept limbs up to 2^54 and return
// carried values (< 2^51 + eps). fe_add of two carried values stays
// under 2^52.1; fe_sub of such sums stays under 2^53.2 — both safe as
// multiplier inputs.
#pragma once

#include <array>
#include <cstdint>

namespace shield5g::crypto::fe25519 {

using Fe = std::array<std::uint64_t, 5>;
using U128 = unsigned __int128;

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

inline Fe fe_zero() { return Fe{0, 0, 0, 0, 0}; }
inline Fe fe_one() { return Fe{1, 0, 0, 0, 0}; }
inline Fe fe_from_u64(std::uint64_t v) { return Fe{v, 0, 0, 0, 0}; }

inline Fe fe_load(const std::uint8_t* s) {
  std::uint64_t w[4];
  for (int i = 0; i < 4; ++i) {
    w[i] = 0;
    for (int j = 0; j < 8; ++j) {
      w[i] |= static_cast<std::uint64_t>(s[8 * i + j]) << (8 * j);
    }
  }
  w[3] &= 0x7fffffffffffffffULL;  // RFC 7748: mask the top bit of u
  Fe h;
  h[0] = w[0] & kMask51;
  h[1] = ((w[0] >> 51) | (w[1] << 13)) & kMask51;
  h[2] = ((w[1] >> 38) | (w[2] << 26)) & kMask51;
  h[3] = ((w[2] >> 25) | (w[3] << 39)) & kMask51;
  h[4] = (w[3] >> 12) & kMask51;
  return h;
}

inline void fe_store(std::uint8_t* s, const Fe& h_in) {
  Fe t = h_in;
  // Two lossy carry passes bring every limb under 2^52.
  for (int pass = 0; pass < 2; ++pass) {
    t[1] += t[0] >> 51; t[0] &= kMask51;
    t[2] += t[1] >> 51; t[1] &= kMask51;
    t[3] += t[2] >> 51; t[2] &= kMask51;
    t[4] += t[3] >> 51; t[3] &= kMask51;
    t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;
  }
  // Canonicalize into [0, p).
  t[0] += 19;
  t[1] += t[0] >> 51; t[0] &= kMask51;
  t[2] += t[1] >> 51; t[1] &= kMask51;
  t[3] += t[2] >> 51; t[2] &= kMask51;
  t[4] += t[3] >> 51; t[3] &= kMask51;
  t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;

  t[0] += (1ULL << 51) - 19;
  t[1] += (1ULL << 51) - 1;
  t[2] += (1ULL << 51) - 1;
  t[3] += (1ULL << 51) - 1;
  t[4] += (1ULL << 51) - 1;

  t[1] += t[0] >> 51; t[0] &= kMask51;
  t[2] += t[1] >> 51; t[1] &= kMask51;
  t[3] += t[2] >> 51; t[2] &= kMask51;
  t[4] += t[3] >> 51; t[3] &= kMask51;
  t[4] &= kMask51;

  const std::uint64_t w0 = t[0] | (t[1] << 51);
  const std::uint64_t w1 = (t[1] >> 13) | (t[2] << 38);
  const std::uint64_t w2 = (t[2] >> 26) | (t[3] << 25);
  const std::uint64_t w3 = (t[3] >> 39) | (t[4] << 12);
  const std::uint64_t w[4] = {w0, w1, w2, w3};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      s[8 * i + j] = static_cast<std::uint8_t>(w[i] >> (8 * j));
    }
  }
}

inline Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r[i] = a[i] + b[i];
  return r;
}

inline Fe fe_sub(const Fe& a, const Fe& b) {
  // a + 2p - b keeps limbs positive; inputs are < 2^52 after carries.
  Fe r;
  r[0] = a[0] + ((1ULL << 52) - 38) - b[0];
  for (int i = 1; i < 5; ++i) r[i] = a[i] + ((1ULL << 52) - 2) - b[i];
  return r;
}

inline Fe fe_neg(const Fe& a) {
  // 8p - a: tolerates limbs up to ~2^54, i.e. raw fe_sub/fe_add outputs
  // as well as carried values (fe_sub's 2p offset would underflow).
  Fe r;
  r[0] = ((1ULL << 54) - 152) - a[0];
  for (int i = 1; i < 5; ++i) r[i] = ((1ULL << 54) - 8) - a[i];
  return r;
}

inline void fe_carry(Fe& r, U128 t0, U128 t1, U128 t2, U128 t3, U128 t4) {
  std::uint64_t c;
  c = static_cast<std::uint64_t>(t0 >> 51); t0 &= kMask51; t1 += c;
  c = static_cast<std::uint64_t>(t1 >> 51); t1 &= kMask51; t2 += c;
  c = static_cast<std::uint64_t>(t2 >> 51); t2 &= kMask51; t3 += c;
  c = static_cast<std::uint64_t>(t3 >> 51); t3 &= kMask51; t4 += c;
  c = static_cast<std::uint64_t>(t4 >> 51); t4 &= kMask51;
  t0 += static_cast<U128>(19) * c;
  c = static_cast<std::uint64_t>(t0 >> 51); t0 &= kMask51; t1 += c;
  r[0] = static_cast<std::uint64_t>(t0);
  r[1] = static_cast<std::uint64_t>(t1);
  r[2] = static_cast<std::uint64_t>(t2);
  r[3] = static_cast<std::uint64_t>(t3);
  r[4] = static_cast<std::uint64_t>(t4);
}

inline Fe fe_mul(const Fe& f, const Fe& g) {
  const U128 f0 = f[0], f1 = f[1], f2 = f[2], f3 = f[3], f4 = f[4];
  const std::uint64_t g0 = g[0], g1 = g[1], g2 = g[2], g3 = g[3], g4 = g[4];
  const std::uint64_t g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3,
                      g4_19 = 19 * g4;
  const U128 t0 = f0 * g0 + f1 * g4_19 + f2 * g3_19 + f3 * g2_19 + f4 * g1_19;
  const U128 t1 = f0 * g1 + f1 * g0 + f2 * g4_19 + f3 * g3_19 + f4 * g2_19;
  const U128 t2 = f0 * g2 + f1 * g1 + f2 * g0 + f3 * g4_19 + f4 * g3_19;
  const U128 t3 = f0 * g3 + f1 * g2 + f2 * g1 + f3 * g0 + f4 * g4_19;
  const U128 t4 = f0 * g4 + f1 * g3 + f2 * g2 + f3 * g1 + f4 * g0;
  Fe r;
  fe_carry(r, t0, t1, t2, t3, t4);
  return r;
}

// Dedicated squaring: 15 wide multiplies instead of the 25 a general
// fe_mul(f, f) spends. The ladder is roughly 44% squarings, so this is
// the single biggest field-level win.
inline Fe fe_sq(const Fe& f) {
  const std::uint64_t f0 = f[0], f1 = f[1], f2 = f[2], f3 = f[3], f4 = f[4];
  const std::uint64_t f0_2 = f0 * 2, f1_2 = f1 * 2;
  const std::uint64_t f1_38 = f1 * 38, f2_38 = f2 * 38, f3_38 = f3 * 38;
  const std::uint64_t f3_19 = f3 * 19, f4_19 = f4 * 19;
  const U128 t0 = static_cast<U128>(f0) * f0 + static_cast<U128>(f1_38) * f4 +
                  static_cast<U128>(f2_38) * f3;
  const U128 t1 = static_cast<U128>(f0_2) * f1 + static_cast<U128>(f2_38) * f4 +
                  static_cast<U128>(f3_19) * f3;
  const U128 t2 = static_cast<U128>(f0_2) * f2 + static_cast<U128>(f1) * f1 +
                  static_cast<U128>(f3_38) * f4;
  const U128 t3 = static_cast<U128>(f0_2) * f3 + static_cast<U128>(f1_2) * f2 +
                  static_cast<U128>(f4_19) * f4;
  const U128 t4 = static_cast<U128>(f0_2) * f4 + static_cast<U128>(f1_2) * f3 +
                  static_cast<U128>(f2) * f2;
  Fe r;
  fe_carry(r, t0, t1, t2, t3, t4);
  return r;
}

inline Fe fe_mul_small(const Fe& f, std::uint64_t s) {
  U128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = static_cast<U128>(f[i]) * s;
  Fe r;
  fe_carry(r, t[0], t[1], t[2], t[3], t[4]);
  return r;
}

inline Fe fe_sqn(Fe f, int n) {
  for (int i = 0; i < n; ++i) f = fe_sq(f);
  return f;
}

// z^(p-2) via the standard addition chain.
inline Fe fe_invert(const Fe& z) {
  const Fe t0 = fe_sq(z);                      // z^2
  Fe t1 = fe_mul(z, fe_sqn(t0, 2));            // z^9
  const Fe t0b = fe_mul(t0, t1);               // z^11
  const Fe t2 = fe_sq(t0b);                    // z^22
  t1 = fe_mul(t1, t2);                         // z^31 = z^(2^5-1)
  Fe t3 = fe_mul(t1, fe_sqn(t1, 5));           // z^(2^10-1)
  Fe t4 = fe_mul(t3, fe_sqn(t3, 10));          // z^(2^20-1)
  Fe t5 = fe_mul(t4, fe_sqn(t4, 20));          // z^(2^40-1)
  t4 = fe_mul(t3, fe_sqn(t5, 10));             // z^(2^50-1)
  t5 = fe_mul(t4, fe_sqn(t4, 50));             // z^(2^100-1)
  Fe t6 = fe_mul(t5, fe_sqn(t5, 100));         // z^(2^200-1)
  t5 = fe_mul(t4, fe_sqn(t6, 50));             // z^(2^250-1)
  return fe_mul(t0b, fe_sqn(t5, 5));           // z^(2^255-21) = z^(p-2)
}

// z^(2^252 - 3) = z^((p-5)/8); the exponentiation behind square roots
// in a field where p = 5 (mod 8).
inline Fe fe_pow22523(const Fe& z) {
  Fe t0 = fe_sq(z);                            // z^2
  Fe t1 = fe_mul(z, fe_sqn(t0, 2));            // z^9
  t0 = fe_mul(t0, t1);                         // z^11
  t0 = fe_sq(t0);                              // z^22
  t0 = fe_mul(t1, t0);                         // z^31 = z^(2^5-1)
  t1 = fe_sqn(t0, 5); t0 = fe_mul(t1, t0);     // z^(2^10-1)
  t1 = fe_sqn(t0, 10); t1 = fe_mul(t1, t0);    // z^(2^20-1)
  Fe t2 = fe_sqn(t1, 20); t1 = fe_mul(t2, t1); // z^(2^40-1)
  t1 = fe_sqn(t1, 10); t0 = fe_mul(t1, t0);    // z^(2^50-1)
  t1 = fe_sqn(t0, 50); t1 = fe_mul(t1, t0);    // z^(2^100-1)
  t2 = fe_sqn(t1, 100); t1 = fe_mul(t2, t1);   // z^(2^200-1)
  t1 = fe_sqn(t1, 50); t0 = fe_mul(t1, t0);    // z^(2^250-1)
  t0 = fe_sqn(t0, 2);                          // z^(2^252-4)
  return fe_mul(t0, z);                        // z^(2^252-3)
}

inline void fe_cswap(std::uint64_t swap, Fe& a, Fe& b) {
  const std::uint64_t mask = 0 - swap;  // all-ones if swap == 1
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (a[i] ^ b[i]);
    a[i] ^= x;
    b[i] ^= x;
  }
}

// f = g when move == 1, unchanged when move == 0; no data-dependent
// branches (table lookups in the comb are scalar-indexed).
inline void fe_cmov(Fe& f, const Fe& g, std::uint64_t move) {
  const std::uint64_t mask = 0 - move;
  for (int i = 0; i < 5; ++i) {
    f[i] ^= mask & (f[i] ^ g[i]);
  }
}

// Canonical equality without early exit (and without memcmp, which the
// constant-time lint rejects on principle).
inline bool fe_eq(const Fe& a, const Fe& b) {
  std::uint8_t sa[32], sb[32];
  fe_store(sa, a);
  fe_store(sb, b);
  std::uint8_t acc = 0;
  for (int i = 0; i < 32; ++i) acc |= static_cast<std::uint8_t>(sa[i] ^ sb[i]);
  return acc == 0;
}

inline bool fe_is_zero(const Fe& a) { return fe_eq(a, fe_zero()); }

}  // namespace shield5g::crypto::fe25519
