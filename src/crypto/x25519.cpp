#include "crypto/x25519.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/hot_stage.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/fe25519.h"
#include "crypto/op_count.h"
#include "crypto/x25519_comb.h"
#include "crypto/x25519_internal.h"

namespace shield5g::crypto {

namespace {

using namespace fe25519;

void clamp(std::uint8_t k[32], SecretView scalar) {
  std::memcpy(k, scalar.unsafe_bytes().data(), 32);
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;
}

// RFC 7748 Montgomery ladder over the shared fe25519 arithmetic.
X25519Key ladder(const std::uint8_t k[32], ByteView u) {
  const Fe x1 = fe_load(u.data());
  Fe x2{1, 0, 0, 0, 0}, z2{0, 0, 0, 0, 0};
  Fe x3 = x1, z3{1, 0, 0, 0, 0};
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (k[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    fe_cswap(swap, x2, x3);
    fe_cswap(swap, z2, z3);
    swap = k_t;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e, fe_add(aa, fe_mul_small(e, 121665)));
  }
  fe_cswap(swap, x2, x3);
  fe_cswap(swap, z2, z3);

  const Fe out = fe_mul(x2, fe_invert(z2));
  X25519Key result{};
  fe_store(result.data(), out);
  return result;
}

// Per-thread cache of comb tables keyed by the 32-byte u-coordinate.
// Registrations hammer a stable working set — the base point, the home
// network's ECIES key, and every attached server's TLS identity — but
// the identities are per-slice, so a process that builds several slices
// (mass_registration runs three isolation modes back to back) cycles
// through a few dozen repeated points. A point earns a table after
// kBuildThreshold sightings; twist points are remembered as unliftable
// so the lift is attempted once. Eviction is least-recently-used: a
// finished slice's keys age out, one-shot ephemerals churn through the
// tail, and live hot points stay resident whatever their age.
constexpr int kBuildThreshold = 4;
constexpr std::size_t kMaxCacheEntries = 32;

struct CacheEntry {
  std::array<std::uint8_t, 32> u;
  int uses = 0;
  std::uint64_t last_use = 0;
  bool unliftable = false;
  detail::CombTablePtr table;
};

thread_local std::vector<CacheEntry> g_comb_cache;
thread_local std::uint64_t g_comb_tick = 0;

bool same_u(const std::array<std::uint8_t, 32>& a, const std::uint8_t* b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

// Returns the table to use for `u`, or nullptr to take the ladder.
const detail::CombTable* comb_lookup(ByteView u) {
  for (auto& entry : g_comb_cache) {
    if (!same_u(entry.u, u.data())) continue;
    entry.last_use = ++g_comb_tick;
    if (entry.unliftable) return nullptr;
    if (entry.table) return entry.table.get();
    if (++entry.uses < kBuildThreshold) return nullptr;
    entry.table = detail::comb_build(u.data());
    if (!entry.table) {
      entry.unliftable = true;
      return nullptr;
    }
    return entry.table.get();
  }
  CacheEntry fresh;
  std::memcpy(fresh.u.data(), u.data(), 32);
  fresh.uses = 1;
  fresh.last_use = ++g_comb_tick;
  if (g_comb_cache.size() < kMaxCacheEntries) {
    g_comb_cache.push_back(std::move(fresh));
    return nullptr;
  }
  // Full: replace the least-recently-used entry. Hot points refresh
  // last_use on every sighting and stay pinned; a retired slice's
  // tables and the one-shot ephemeral tail are the oldest entries.
  CacheEntry* victim = &g_comb_cache.front();
  for (auto& entry : g_comb_cache) {
    if (entry.last_use < victim->last_use) victim = &entry;
  }
  *victim = std::move(fresh);
  return nullptr;
}

}  // namespace

X25519Key x25519(SecretView scalar, ByteView u) {
  if (scalar.size() != 32 || u.size() != 32) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  ScopedStage timer(HotStage::kCrypto);
  ++op_counts().x25519_ops;
  std::uint8_t k[32];
  clamp(k, scalar);

  X25519Key result;
  const detail::CombTable* table =
      active_backend() == CryptoBackend::kAccelerated ? comb_lookup(u)
                                                      : nullptr;
  if (table != nullptr) {
    detail::comb_eval(*table, k, result.data());
  } else {
    result = ladder(k, u);
  }
  secure_zero(k, sizeof(k));
  return result;
}

X25519Key x25519_public(SecretView scalar) {
  std::uint8_t base[32] = {9};
  return x25519(scalar, ByteView(base, 32));
}

X25519KeyPair x25519_keypair(ByteView random32) {
  if (random32.size() != 32) {
    throw std::invalid_argument("x25519_keypair: need 32 random bytes");
  }
  X25519KeyPair kp;
  kp.private_key = Secret<kX25519KeySize>(random32);
  kp.public_key = x25519_public(kp.private_key);
  return kp;
}

namespace detail {

X25519Key x25519_ladder(SecretView scalar, ByteView u) {
  if (scalar.size() != 32 || u.size() != 32) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  std::uint8_t k[32];
  clamp(k, scalar);
  X25519Key result = ladder(k, u);
  secure_zero(k, sizeof(k));
  return result;
}

X25519Key x25519_comb_forced(SecretView scalar, ByteView u) {
  if (scalar.size() != 32 || u.size() != 32) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  const CombTablePtr table = comb_build(u.data());
  if (!table) {
    throw std::invalid_argument("x25519_comb_forced: point does not lift");
  }
  std::uint8_t k[32];
  clamp(k, scalar);
  X25519Key result;
  comb_eval(*table, k, result.data());
  secure_zero(k, sizeof(k));
  return result;
}

bool x25519_comb_liftable(ByteView u) {
  if (u.size() != 32) return false;
  return comb_build(u.data()) != nullptr;
}

void x25519_cache_reset() { g_comb_cache.clear(); }

std::size_t x25519_cache_size() { return g_comb_cache.size(); }

}  // namespace detail

}  // namespace shield5g::crypto
