#include "crypto/x25519.h"

#include <array>
#include <atomic>
#include <cstring>
#include <mutex>

#include "common/thread_annotations.h"
#include <stdexcept>
#include <vector>

#include "common/hot_stage.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/fe25519.h"
#include "crypto/op_count.h"
#include "crypto/x25519_comb.h"
#include "crypto/x25519_internal.h"

namespace shield5g::crypto {

namespace {

using namespace fe25519;

void clamp(std::uint8_t k[32], SecretView scalar) {
  std::memcpy(k, scalar.unsafe_bytes().data(), 32);
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;
}

// RFC 7748 Montgomery ladder over the shared fe25519 arithmetic,
// stopping short of the final inversion: u = num/den.
void ladder_fraction(const std::uint8_t k[32], ByteView u, Fe& num, Fe& den) {
  const Fe x1 = fe_load(u.data());
  Fe x2{1, 0, 0, 0, 0}, z2{0, 0, 0, 0, 0};
  Fe x3 = x1, z3{1, 0, 0, 0, 0};
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (k[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    fe_cswap(swap, x2, x3);
    fe_cswap(swap, z2, z3);
    swap = k_t;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e, fe_add(aa, fe_mul_small(e, 121665)));
  }
  fe_cswap(swap, x2, x3);
  fe_cswap(swap, z2, z3);
  num = x2;
  den = z2;
}

X25519Key ladder(const std::uint8_t k[32], ByteView u) {
  Fe num, den;
  ladder_fraction(k, u, num, den);
  const Fe out = fe_mul(num, fe_invert(den));
  X25519Key result{};
  fe_store(result.data(), out);
  return result;
}

// Comb-table cache, shared across every shard worker of a parallel
// sweep. Registrations hammer a stable working set — the base point,
// the home network's ECIES key, and every attached server's TLS
// identity — and under the shard pool (sim/shard_pool.h) all workers
// hammer the *same* points, so a table built once serves the process.
//
// Concurrency layout, from hot to cold:
//  * Hit path: a fixed array of published slots, each an atomic pointer
//    to an immutable entry (point + built table, or a remembered
//    unliftable twist point). Readers scan count-then-slots with one
//    acquire load and take no lock — the hit path is wait-free.
//  * Miss path: sighting counts live in a small per-thread candidate
//    LRU (the pre-PR design), so one-shot ephemeral points never touch
//    shared state and never contend.
//  * Build path: a point that crosses kBuildThreshold sightings in one
//    thread takes the publish mutex, re-checks the shared slots (some
//    other worker may have won the race), builds the ~60 KiB table
//    exactly once per point process-wide, and release-publishes it.
// Published entries are immutable until detail::x25519_cache_reset(),
// a single-threaded test hook. When all slots fill (64 tables ≈ 4 MiB)
// later points simply keep the ladder — candidates remember giving up.
constexpr int kBuildThreshold = 4;
constexpr std::size_t kMaxCandidates = 32;
constexpr std::size_t kSharedSlots = 64;

bool same_u(const std::array<std::uint8_t, 32>& a, const std::uint8_t* b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

struct SharedEntry {
  std::array<std::uint8_t, 32> u{};
  detail::CombTablePtr table;  // null = unliftable twist point, memoized
};

struct SharedCache {
  // Atomic: comb_lookup readers scan lock-free; publication (slot
  // store + count bump) happens only under publish_mutex.
  std::array<std::atomic<const SharedEntry*>, kSharedSlots> slots
      SHIELD_GUARDED_BY(publish_mutex){};
  std::atomic<std::size_t> count SHIELD_GUARDED_BY(publish_mutex){0};
  std::mutex publish_mutex;
};

SharedCache& shared_cache() {
  // Leaked on purpose: workers may run x25519 during late teardown.
  static SharedCache* cache = new SharedCache;
  return *cache;
}

// Wait-free reader: the release store on `count` orders the slot and
// entry writes before it, so any slot below an acquired count is fully
// published.
const SharedEntry* shared_find(const std::uint8_t* u) {
  SharedCache& cache = shared_cache();
  const std::size_t n = cache.count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const SharedEntry* entry = cache.slots[i].load(std::memory_order_relaxed);
    if (entry != nullptr && same_u(entry->u, u)) return entry;
  }
  return nullptr;
}

// Builds and publishes the table for `u` (or its unliftable verdict).
// Returns the published entry, or nullptr when the cache is full.
const SharedEntry* shared_publish(const std::uint8_t* u) {
  SharedCache& cache = shared_cache();
  const std::lock_guard<std::mutex> lock(cache.publish_mutex);
  if (const SharedEntry* raced = shared_find(u)) return raced;  // lost race
  const std::size_t n = cache.count.load(std::memory_order_relaxed);
  if (n >= kSharedSlots) return nullptr;
  auto* entry = new SharedEntry;
  std::memcpy(entry->u.data(), u, 32);
  entry->table = detail::comb_build(u);  // null when the point won't lift
  cache.slots[n].store(entry, std::memory_order_relaxed);
  cache.count.store(n + 1, std::memory_order_release);
  return entry;
}

// Per-thread sighting counts for points not (yet) published. Eviction
// is least-recently-used: one-shot ephemerals churn through the tail
// while repeated points accumulate uses and graduate to the shared
// slots.
struct Candidate {
  std::array<std::uint8_t, 32> u;
  int uses = 0;
  std::uint64_t last_use = 0;
  bool gave_up = false;  // shared cache was full at graduation time
};

thread_local std::vector<Candidate> t_candidates;
thread_local std::uint64_t t_comb_tick = 0;

// Returns the table to use for `u`, or nullptr to take the ladder.
const detail::CombTable* comb_lookup(ByteView u) {
  if (const SharedEntry* entry = shared_find(u.data())) {
    return entry->table.get();
  }
  for (auto& cand : t_candidates) {
    if (!same_u(cand.u, u.data())) continue;
    cand.last_use = ++t_comb_tick;
    if (cand.gave_up) return nullptr;
    if (++cand.uses < kBuildThreshold) return nullptr;
    const SharedEntry* entry = shared_publish(u.data());
    if (entry == nullptr) {
      cand.gave_up = true;
      return nullptr;
    }
    return entry->table.get();
  }
  Candidate fresh;
  std::memcpy(fresh.u.data(), u.data(), 32);
  fresh.uses = 1;
  fresh.last_use = ++t_comb_tick;
  if (t_candidates.size() < kMaxCandidates) {
    t_candidates.push_back(fresh);
    return nullptr;
  }
  Candidate* victim = &t_candidates.front();
  for (auto& cand : t_candidates) {
    if (cand.last_use < victim->last_use) victim = &cand;
  }
  *victim = fresh;
  return nullptr;
}

// One scalar multiplication up to (not including) its final inversion,
// taking the comb fast path when a table exists for `u`.
void mult_fraction(const std::uint8_t k[32], ByteView u, Fe& num, Fe& den) {
  const detail::CombTable* table =
      active_backend() == CryptoBackend::kAccelerated ? comb_lookup(u)
                                                      : nullptr;
  if (table != nullptr) {
    detail::comb_eval_fraction(*table, k, num, den);
  } else {
    ladder_fraction(k, u, num, den);
  }
}

}  // namespace

X25519Key x25519(SecretView scalar, ByteView u) {
  if (scalar.size() != 32 || u.size() != 32) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  ScopedStage timer(HotStage::kCrypto);
  ++op_counts().x25519_ops;
  std::uint8_t k[32];
  clamp(k, scalar);

  Fe num, den;
  mult_fraction(k, u, num, den);
  X25519Key result{};
  fe_store(result.data(), fe_mul(num, fe_invert(den)));
  secure_zero(k, sizeof(k));
  return result;
}

X25519KeyPair x25519_keypair_shared(ByteView random32, ByteView peer_public,
                                    X25519Key& shared_out) {
  if (random32.size() != 32 || peer_public.size() != 32) {
    throw std::invalid_argument("x25519_keypair_shared: need 32-byte inputs");
  }
  ScopedStage timer(HotStage::kCrypto);
  op_counts().x25519_ops += 2;  // two scalar mults, charged as always

  X25519KeyPair kp;
  kp.private_key = Secret<kX25519KeySize>(random32);
  std::uint8_t k[32];
  clamp(k, kp.private_key);

  std::uint8_t base[32] = {9};
  Fe n1, d1, n2, d2;
  mult_fraction(k, ByteView(base, 32), n1, d1);
  mult_fraction(k, peer_public, n2, d2);
  secure_zero(k, sizeof(k));

  // Batched inversion, zero-safe: a zero denominator (low-order peer
  // point) must yield u = 0 exactly as the unfused path's
  // fe_invert(0) = 0 does, without poisoning the other result.
  const std::uint64_t zero1 = fe_is_zero(d1) ? 1 : 0;
  const std::uint64_t zero2 = fe_is_zero(d2) ? 1 : 0;
  Fe d1s = d1, d2s = d2;
  fe_cmov(d1s, fe_one(), zero1);
  fe_cmov(d2s, fe_one(), zero2);
  const Fe inv_all = fe_invert(fe_mul(d1s, d2s));
  Fe r1 = fe_mul(n1, fe_mul(inv_all, d2s));
  Fe r2 = fe_mul(n2, fe_mul(inv_all, d1s));
  fe_cmov(r1, fe_zero(), zero1);
  fe_cmov(r2, fe_zero(), zero2);
  fe_store(kp.public_key.data(), r1);
  fe_store(shared_out.data(), r2);
  return kp;
}

X25519Key x25519_public(SecretView scalar) {
  std::uint8_t base[32] = {9};
  return x25519(scalar, ByteView(base, 32));
}

X25519KeyPair x25519_keypair(ByteView random32) {
  if (random32.size() != 32) {
    throw std::invalid_argument("x25519_keypair: need 32 random bytes");
  }
  X25519KeyPair kp;
  kp.private_key = Secret<kX25519KeySize>(random32);
  kp.public_key = x25519_public(kp.private_key);
  return kp;
}

namespace detail {

void x25519_clamp(std::uint8_t k[32], SecretView scalar) {
  if (scalar.size() != 32) {
    throw std::invalid_argument("x25519_clamp: scalar must be 32 bytes");
  }
  clamp(k, scalar);
}

void x25519_ladder_fraction(const std::uint8_t k[32], ByteView u,
                            fe25519::Fe& num, fe25519::Fe& den) {
  ladder_fraction(k, u, num, den);
}

void x25519_mult_fraction(const std::uint8_t k[32], ByteView u,
                          fe25519::Fe& num, fe25519::Fe& den) {
  mult_fraction(k, u, num, den);
}

const CombTable* x25519_batch_comb_lookup(ByteView u) {
  if (active_backend() != CryptoBackend::kAccelerated) return nullptr;
  return comb_lookup(u);
}

X25519Key x25519_ladder(SecretView scalar, ByteView u) {
  if (scalar.size() != 32 || u.size() != 32) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  std::uint8_t k[32];
  clamp(k, scalar);
  X25519Key result = ladder(k, u);
  secure_zero(k, sizeof(k));
  return result;
}

X25519Key x25519_comb_forced(SecretView scalar, ByteView u) {
  if (scalar.size() != 32 || u.size() != 32) {
    throw std::invalid_argument("x25519: inputs must be 32 bytes");
  }
  const CombTablePtr table = comb_build(u.data());
  if (!table) {
    throw std::invalid_argument("x25519_comb_forced: point does not lift");
  }
  std::uint8_t k[32];
  clamp(k, scalar);
  X25519Key result;
  comb_eval(*table, k, result.data());
  secure_zero(k, sizeof(k));
  return result;
}

bool x25519_comb_liftable(ByteView u) {
  if (u.size() != 32) return false;
  return comb_build(u.data()) != nullptr;
}

void x25519_cache_reset() {
  // Test hook, single-threaded by contract: frees published entries,
  // which is only safe while no other thread is inside comb_lookup.
  t_candidates.clear();
  SharedCache& cache = shared_cache();
  const std::lock_guard<std::mutex> lock(cache.publish_mutex);
  const std::size_t n = cache.count.load(std::memory_order_relaxed);
  cache.count.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) {
    delete cache.slots[i].load(std::memory_order_relaxed);
    cache.slots[i].store(nullptr, std::memory_order_relaxed);
  }
}

std::size_t x25519_cache_size() {
  return shared_cache().count.load(std::memory_order_acquire);
}

}  // namespace detail

}  // namespace shield5g::crypto
