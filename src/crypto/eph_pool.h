// Precomputed X25519 ephemeral-key pool.
//
// PR 5's Amdahl breakdown pins ~78% of wall-clock on ladder-bound
// X25519, and half of every TLS client handshake / ECIES conceal is the
// fixed-base multiplication that mints the ephemeral key pair — work
// that depends on nothing but entropy and can run off the critical
// path. This pool pregenerates key pairs in batches from its own
// deterministic RNG stream: consumers (the Bus's client handshakes and
// the UE's SUCI conceal) pop a ready pair and pay only the single
// variable-base multiplication against the peer key.
//
// PR 7 extends the pool with per-peer *shared-secret* precompute:
// consumers that talk to a stable peer key (the home-network SUCI key,
// a server's TLS identity) can acquire_shared() a key pair bundled
// with its X25519 shared secret. The pool prepares those in groups so
// the variable-base multiplications flow through x25519_batch() and
// hit the 4-lane AVX2 ladder; prewarm_shared() lets a scheduler that
// knows a burst is coming (the load generator's per-tick conceal
// coalescing) size the group exactly.
//
// Determinism contract: one pool per Slice, seeded from the slice seed,
// consumed in the slice's deterministic event order — so sweep digests
// stay byte-identical at any shard worker count. Refills and shared
// prefills exclude their scalar mults from the thread's op meter
// (modeling background generation outside the virtual-time critical
// path); each consumed pair charges exactly the one x25519 op the
// serial path would, at acquisition. The pool reports through the
// process-wide `x25519.pool.{hit,refill_keys,shared_keys}` counters,
// which never feed digests.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "crypto/x25519.h"

namespace shield5g::crypto {

class EphemeralKeyPool {
 public:
  struct Config {
    std::size_t capacity = 64;  // key pairs generated per refill batch
    std::uint64_t seed = 0;
  };

  /// Lane width the shared-precompute path fills by default once a peer
  /// shows repeat traffic — matches the x25519_batch 4-lane kernel.
  static constexpr std::size_t kSharedBatch = 4;

  /// Distinct peer keys with prepared shared secrets; least recently
  /// used slot is evicted beyond this.
  static constexpr std::size_t kMaxPeerSlots = 8;

  explicit EphemeralKeyPool(Config config);

  EphemeralKeyPool(const EphemeralKeyPool&) = delete;
  EphemeralKeyPool& operator=(const EphemeralKeyPool&) = delete;

  /// Pops one pregenerated key pair, refilling the ring first when it
  /// has run dry. Thread-safe: shard hammers may acquire concurrently,
  /// though in normal operation a pool belongs to one slice.
  X25519KeyPair acquire();

  /// Pops a key pair together with its precomputed shared secret
  /// against `peer_public` (32 bytes). Charges the consumer's op meter
  /// exactly one x25519 op — the same bill as acquire() followed by a
  /// serial x25519() against the peer — so virtual-time accounting is
  /// unchanged; the mult itself ran off-meter in a prepared group. A
  /// cold peer prepares a single pair; peers with repeat traffic
  /// prepare kSharedBatch at a time so the mults batch 4-wide.
  X25519SharedKeyPair acquire_shared(ByteView peer_public);

  /// Ensures at least `count` prepared pairs are ready for
  /// `peer_public`, batching the variable-base mults off-meter. Call
  /// before a known burst (e.g. N conceals scheduled for the same
  /// tick) so the group runs through the 4-lane kernel at full width.
  void prewarm_shared(ByteView peer_public, std::size_t count);

  /// Key pairs currently ready (diagnostics / tests).
  std::size_t available() const;

  /// Prepared shared pairs ready for `peer_public` (diagnostics / tests).
  std::size_t available_shared(ByteView peer_public) const;

  /// Key pairs generated so far, including the initial fill.
  std::uint64_t generated() const;

 private:
  struct PeerSlot {
    std::array<std::uint8_t, 32> peer{};
    std::vector<X25519SharedKeyPair> ready;  // consumed front-first (FIFO)
    std::uint64_t last_use = 0;
    std::uint64_t acquires = 0;
  };

  void refill_locked() SHIELD_REQUIRES(mu_);
  X25519KeyPair take_pair_locked() SHIELD_REQUIRES(mu_);
  PeerSlot& slot_for_locked(ByteView peer_public) SHIELD_REQUIRES(mu_);
  void fill_shared_locked(PeerSlot& slot, std::size_t count)
      SHIELD_REQUIRES(mu_);

  Config config_;
  mutable std::mutex mu_;
  Rng rng_ SHIELD_GUARDED_BY(mu_);
  std::vector<X25519KeyPair> ring_ SHIELD_GUARDED_BY(mu_);
  std::vector<PeerSlot> peers_ SHIELD_GUARDED_BY(mu_);
  std::uint64_t peer_clock_ SHIELD_GUARDED_BY(mu_) = 0;
  std::uint64_t generated_ SHIELD_GUARDED_BY(mu_) = 0;
};

}  // namespace shield5g::crypto
