// Precomputed X25519 ephemeral-key pool.
//
// PR 5's Amdahl breakdown pins ~78% of wall-clock on ladder-bound
// X25519, and half of every TLS client handshake / ECIES conceal is the
// fixed-base multiplication that mints the ephemeral key pair — work
// that depends on nothing but entropy and can run off the critical
// path. This pool pregenerates key pairs in batches from its own
// deterministic RNG stream: consumers (the Bus's client handshakes and
// the UE's SUCI conceal) pop a ready pair and pay only the single
// variable-base multiplication against the peer key.
//
// Determinism contract: one pool per Slice, seeded from the slice seed,
// consumed in the slice's deterministic event order — so sweep digests
// stay byte-identical at any shard worker count. The batch refill
// excludes its scalar mults from the thread's op meter (modeling
// background generation outside the virtual-time critical path) and
// reports itself through the process-wide `x25519.pool.{hit,refill}`
// counters, which never feed digests.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "crypto/x25519.h"

namespace shield5g::crypto {

class EphemeralKeyPool {
 public:
  struct Config {
    std::size_t capacity = 64;  // key pairs generated per refill batch
    std::uint64_t seed = 0;
  };

  explicit EphemeralKeyPool(Config config);

  EphemeralKeyPool(const EphemeralKeyPool&) = delete;
  EphemeralKeyPool& operator=(const EphemeralKeyPool&) = delete;

  /// Pops one pregenerated key pair, refilling the ring first when it
  /// has run dry. Thread-safe: shard hammers may acquire concurrently,
  /// though in normal operation a pool belongs to one slice.
  X25519KeyPair acquire();

  /// Key pairs currently ready (diagnostics / tests).
  std::size_t available() const;

  /// Key pairs generated so far, including the initial fill.
  std::uint64_t generated() const;

 private:
  void refill_locked() SHIELD_REQUIRES(mu_);

  Config config_;
  mutable std::mutex mu_;
  Rng rng_ SHIELD_GUARDED_BY(mu_);
  std::vector<X25519KeyPair> ring_ SHIELD_GUARDED_BY(mu_);
  std::uint64_t generated_ SHIELD_GUARDED_BY(mu_) = 0;
};

}  // namespace shield5g::crypto
