#include "crypto/op_count.h"

namespace shield5g::crypto {

OpCounts& op_counts() noexcept {
  static thread_local OpCounts counts;
  return counts;
}

}  // namespace shield5g::crypto
