#include "crypto/x25519_comb.h"

#include <array>
#include <memory>

#include "crypto/fe25519.h"

namespace shield5g::crypto::detail {

namespace {

using namespace fe25519;

// Extended twisted-Edwards coordinates (X:Y:Z:T), T = XY/Z, a = -1.
struct Ext {
  Fe x, y, z, t;
};

// Projective precomputed form used only while building: (Y+X, Y-X, Z, 2d*T).
struct Cached {
  Fe yplusx, yminusx, z, t2d;
};

// Affine precomputed form stored in the table: (y+x, y-x, 2d*x*y) with
// Z = 1 implicit. Three field elements instead of four — the scan that
// dominates comb_eval streams 25% fewer bytes, and the mixed addition
// saves the Z multiplication.
struct Niels {
  Fe yplusx, yminusx, t2d;
};

Ext ext_identity() { return Ext{fe_zero(), fe_one(), fe_one(), fe_zero()}; }

Niels niels_identity() { return Niels{fe_one(), fe_one(), fe_zero()}; }

// Curve constants, computed once from first principles rather than
// transcribed limb tables: d = -121665/121666, sqrt(-1) = 2^((p-1)/4)
// (2 is a non-residue since p = 5 mod 8).
struct Constants {
  Fe d;
  Fe d2;
  Fe sqrtm1;
};

const Constants& constants() {
  static const Constants k = [] {
    Constants c;
    c.d = fe_neg(fe_mul(fe_from_u64(121665), fe_invert(fe_from_u64(121666))));
    c.d2 = fe_add(c.d, c.d);
    const Fe two = fe_from_u64(2);
    c.sqrtm1 = fe_mul(fe_sq(fe_pow22523(two)), two);  // 2^(2(2^252-3)+1)
    return c;
  }();
  return k;
}

Cached to_cached(const Ext& p) {
  return Cached{fe_add(p.y, p.x), fe_sub(p.y, p.x), p.z,
                fe_mul(p.t, constants().d2)};
}

// r = p + q (unified a = -1 addition; handles doubling and identity).
Ext ext_add(const Ext& p, const Cached& q) {
  const Fe a = fe_mul(fe_add(p.y, p.x), q.yplusx);
  const Fe b = fe_mul(fe_sub(p.y, p.x), q.yminusx);
  const Fe c = fe_mul(p.t, q.t2d);
  const Fe dd = fe_mul(p.z, q.z);
  const Fe d2v = fe_add(dd, dd);
  const Fe e = fe_sub(a, b);
  const Fe f = fe_sub(d2v, c);
  const Fe g = fe_add(d2v, c);
  const Fe h = fe_add(a, b);
  return Ext{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// r = p + q for affine q: the q.z multiplication collapses to a single
// limb-wise doubling of p.z. Still unified — identity and doubling fall
// out of the same formulas.
Ext ext_madd(const Ext& p, const Niels& q) {
  const Fe a = fe_mul(fe_add(p.y, p.x), q.yplusx);
  const Fe b = fe_mul(fe_sub(p.y, p.x), q.yminusx);
  const Fe c = fe_mul(p.t, q.t2d);
  const Fe d2v = fe_add(p.z, p.z);
  const Fe e = fe_sub(a, b);
  const Fe f = fe_sub(d2v, c);
  const Fe g = fe_add(d2v, c);
  const Fe h = fe_add(a, b);
  return Ext{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// r = 2p (dbl-2008-hwcd for a = -1, keeping T for the next addition).
Ext ext_dbl(const Ext& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe zz = fe_sq(p.z);
  const Fe c = fe_add(zz, zz);
  const Fe h = fe_add(a, b);
  const Fe xy = fe_sq(fe_add(p.x, p.y));
  const Fe e = fe_sub(h, xy);
  const Fe g = fe_sub(a, b);
  const Fe f = fe_add(c, g);
  return Ext{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// x with x^2 = num/den, or false when num/den is a non-residue.
bool sqrt_ratio(const Fe& num, const Fe& den, Fe& out) {
  const Fe den2 = fe_sq(den);
  const Fe den3 = fe_mul(den2, den);
  const Fe den7 = fe_mul(fe_sq(den3), den);
  Fe x = fe_mul(fe_mul(num, den3), fe_pow22523(fe_mul(num, den7)));
  const Fe chk = fe_mul(fe_sq(x), den);
  if (fe_eq(chk, num)) {
    out = x;
    return true;
  }
  if (fe_eq(chk, fe_neg(num))) {
    out = fe_mul(x, constants().sqrtm1);
    return true;
  }
  return false;
}

// Lifts Montgomery u to an edwards25519 point: y = (u-1)/(u+1),
// x = sqrt((y^2-1)/(d*y^2+1)). The sign of x is irrelevant because
// u(k*P) = u(k*(-P)). Returns false for twist points and u = -1.
bool lift(const std::uint8_t* u32, Ext& out) {
  const Fe u = fe_load(u32);
  const Fe up1 = fe_add(u, fe_one());
  if (fe_is_zero(up1)) return false;  // u = -1: no finite Edwards image
  const Fe y = fe_mul(fe_sub(u, fe_one()), fe_invert(up1));
  const Fe y2 = fe_sq(y);
  const Fe num = fe_sub(y2, fe_one());
  const Fe den = fe_add(fe_mul(constants().d, y2), fe_one());
  if (fe_is_zero(den)) return false;
  Fe x;
  if (!sqrt_ratio(num, den, x)) return false;  // twist point
  Ext p{x, y, fe_one(), fe_mul(x, y)};
  // Defensive on-curve check: -x^2 + y^2 == 1 + d x^2 y^2.
  const Fe x2 = fe_sq(p.x);
  const Fe lhs = fe_sub(fe_sq(p.y), x2);
  const Fe rhs = fe_add(fe_one(), fe_mul(constants().d, fe_mul(x2, fe_sq(p.y))));
  if (!fe_eq(lhs, rhs)) return false;
  out = p;
  return true;
}

void niels_cmov(Niels& f, const Niels& g, std::uint64_t move) {
  fe_cmov(f.yplusx, g.yplusx, move);
  fe_cmov(f.yminusx, g.yminusx, move);
  fe_cmov(f.t2d, g.t2d, move);
}

// Recodes the 64 nibbles of a clamped scalar into signed digits in
// [-8, 8] with the same radix-16 value. Halving the digit range halves
// the table row the constant-time scan has to stream. Clamping keeps
// the top nibble <= 7, so the final carry is absorbed by digit 63
// (at most 8) and never overflows.
void signed_digits(const std::uint8_t* scalar32, std::int8_t out[64]) {
  unsigned carry = 0;
  for (int i = 0; i < 63; ++i) {
    const unsigned v = ((scalar32[i / 2] >> (4 * (i & 1))) & 0xf) + carry;
    carry = (v + 8) >> 4;  // 1 when v >= 8
    out[i] = static_cast<std::int8_t>(static_cast<int>(v) -
                                      static_cast<int>(carry << 4));
  }
  out[63] = static_cast<std::int8_t>(((scalar32[31] >> 4) & 0xf) + carry);
}

}  // namespace

// 64 nibble windows x signed digits 1..8; entry [i][j-1] = j * 16^i * P.
// Digit 0 is the (implicit) identity and negative digits reuse the
// positive entry with (y+x, y-x) swapped and t2d negated. Affine entries
// keep the whole table at ~60 KiB — small enough that scanning a window
// row stays in cache even with a working set of several tables.
struct CombTable {
  Niels entry[64][8];
};

void CombTableDeleter::operator()(CombTable* t) const noexcept { delete t; }

CombTablePtr comb_build(const std::uint8_t* u32) {
  Ext base;
  if (!lift(u32, base)) return nullptr;

  // Phase 1: the projective run, identical group math to the evaluator's
  // unified additions.
  auto pts = std::make_unique<std::array<Ext, 64 * 8>>();
  Ext window_base = base;  // 16^i * P
  for (int i = 0; i < 64; ++i) {
    (*pts)[i * 8] = window_base;
    const Cached cb = to_cached(window_base);
    Ext run = window_base;
    for (int j = 2; j <= 8; ++j) {
      run = ext_add(run, cb);
      (*pts)[i * 8 + (j - 1)] = run;
    }
    if (i < 63) {
      window_base = ext_dbl(ext_dbl(ext_dbl(ext_dbl(window_base))));
    }
  }

  // Phase 2: normalize all 512 points to Z = 1 with one field inversion
  // (Montgomery's batch trick). The complete a = -1 formulas never
  // produce Z = 0, so every prefix product is invertible.
  auto prefix = std::make_unique<std::array<Fe, 64 * 8>>();
  Fe run = fe_one();
  for (int k = 0; k < 64 * 8; ++k) {
    (*prefix)[k] = run;
    run = fe_mul(run, (*pts)[k].z);
  }
  Fe inv = fe_invert(run);

  CombTablePtr table(new CombTable);
  for (int k = 64 * 8 - 1; k >= 0; --k) {
    const Fe zinv = fe_mul(inv, (*prefix)[k]);
    inv = fe_mul(inv, (*pts)[k].z);
    const Ext& p = (*pts)[k];
    Niels& n = table->entry[k / 8][k % 8];
    n.yplusx = fe_mul(fe_add(p.y, p.x), zinv);
    n.yminusx = fe_mul(fe_sub(p.y, p.x), zinv);
    n.t2d = fe_mul(fe_mul(p.t, zinv), constants().d2);
  }
  return table;
}

void comb_eval_fraction(const CombTable& table, const std::uint8_t* scalar32,
                        Fe& num, Fe& den) {
  std::int8_t digits[64];
  signed_digits(scalar32, digits);

  Ext acc = ext_identity();
  for (int i = 0; i < 64; ++i) {
    const std::int64_t d = digits[i];
    const std::int64_t m = d >> 63;  // arithmetic: all-ones when negative
    const std::uint64_t mag = static_cast<std::uint64_t>((d ^ m) - m);
    const std::uint64_t neg = static_cast<std::uint64_t>(m) & 1;
    // Constant-time select: scan digits 1..8 (0 keeps the identity).
    Niels sel = niels_identity();
    for (std::uint64_t j = 1; j <= 8; ++j) {
      const std::uint64_t diff = mag ^ j;
      const std::uint64_t eq = 1 ^ ((diff | (0 - diff)) >> 63);
      niels_cmov(sel, table.entry[i][j - 1], eq);
    }
    // Negate by swapping (y+x, y-x) and flipping t2d, both branch-free.
    fe_cswap(neg, sel.yplusx, sel.yminusx);
    const Fe nt2d = fe_neg(sel.t2d);
    fe_cmov(sel.t2d, nt2d, neg);
    acc = ext_madd(acc, sel);
  }
  // Back to Montgomery: u = (Z+Y)/(Z-Y), left as a fraction so callers
  // can batch the inversion across multiple evaluations.
  num = fe_add(acc.z, acc.y);
  den = fe_sub(acc.z, acc.y);
}

void comb_eval(const CombTable& table, const std::uint8_t* scalar32,
               std::uint8_t* out_u32) {
  Fe num, den;
  comb_eval_fraction(table, scalar32, num, den);
  // fe_invert(0) = 0, so the identity (and any Z-Y = 0 degeneracy) maps
  // to u = 0 exactly like the ladder's x2 * invert(0).
  fe_store(out_u32, fe_mul(num, fe_invert(den)));
}

}  // namespace shield5g::crypto::detail
