#include "crypto/milenage.h"

#include <stdexcept>

namespace shield5g::crypto {

namespace {

// Cyclic left rotation of a 16-byte block by a multiple of 8 bits.
// TS 35.206 uses r1..r5 = 64, 0, 32, 64, 96 bits.
std::array<std::uint8_t, 16> rot(ByteView in, int bits) {
  if (bits % 8 != 0) throw std::invalid_argument("rot: bits must be /8");
  const std::size_t shift = static_cast<std::size_t>(bits / 8);
  std::array<std::uint8_t, 16> out{};
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = in[(i + shift) % 16];
  }
  return out;
}

}  // namespace

Milenage::Milenage(SecretView k, SecretView opc) : cipher_(k.unsafe_bytes()) {
  if (opc.size() != 16) throw std::invalid_argument("Milenage: OPc size");
  const ByteView opc_raw = opc.unsafe_bytes();
  for (int i = 0; i < 16; ++i) opc_[i] = opc_raw[i];
}

SecretBytes Milenage::derive_opc(SecretView k, ByteView op) {
  if (op.size() != 16) throw std::invalid_argument("derive_opc: OP size");
  const Aes128 cipher(k.unsafe_bytes());
  const auto enc = cipher.encrypt_block(op);
  return SecretBytes(xor_bytes(op, ByteView(enc)));
}

Bytes Milenage::out_n(ByteView temp, int rot_bits, std::uint8_t c_last) const {
  // OUTn = E_K[ rot(TEMP XOR OPc, rn) XOR cn ] XOR OPc
  Bytes mixed = xor_bytes(temp, ByteView(opc_));
  auto rotated = rot(mixed, rot_bits);
  rotated[15] = static_cast<std::uint8_t>(rotated[15] ^ c_last);
  const auto enc = cipher_.encrypt_block(rotated);
  return xor_bytes(ByteView(enc), ByteView(opc_));
}

void Milenage::compute_f1(ByteView rand, ByteView sqn, ByteView amf,
                          Bytes& mac_a, Bytes& mac_s) const {
  if (rand.size() != 16 || sqn.size() != 6 || amf.size() != 2) {
    throw std::invalid_argument("Milenage::compute_f1: bad sizes");
  }
  const Bytes rand_xor_opc = xor_bytes(rand, ByteView(opc_));
  const auto temp = cipher_.encrypt_block(rand_xor_opc);

  // IN1 = SQN || AMF || SQN || AMF
  const Bytes in1 = concat({sqn, amf, sqn, amf});
  const Bytes in1_xor_opc = xor_bytes(in1, ByteView(opc_));
  auto arg = rot(in1_xor_opc, 64);  // r1 = 64 bits, c1 = 0
  for (int i = 0; i < 16; ++i) arg[i] ^= temp[i];
  const auto enc = cipher_.encrypt_block(arg);
  const Bytes out1 = xor_bytes(ByteView(enc), ByteView(opc_));
  mac_a = take(out1, 8);
  mac_s = slice_bytes(out1, 8, 8);
}

MilenageOutput Milenage::compute_f2345(ByteView rand) const {
  if (rand.size() != 16) {
    throw std::invalid_argument("Milenage::compute_f2345: RAND size");
  }
  const Bytes rand_xor_opc = xor_bytes(rand, ByteView(opc_));
  const auto temp_block = cipher_.encrypt_block(rand_xor_opc);
  const ByteView temp(temp_block);

  MilenageOutput out;
  const Bytes out2 = out_n(temp, 0, 0x01);   // r2 = 0,  c2 = ..01
  const Bytes out5 = out_n(temp, 96, 0x08);  // r5 = 96, c5 = ..08
  out.res = slice_bytes(out2, 8, 8);
  out.ak = take(out2, 6);
  // CK/IK move straight into tainted storage; no plain copy lingers.
  out.ck = SecretBytes(out_n(temp, 32, 0x02));  // r3 = 32, c3 = ..02
  out.ik = SecretBytes(out_n(temp, 64, 0x04));  // r4 = 64, c4 = ..04
  out.ak_s = take(out5, 6);
  return out;
}

MilenageOutput Milenage::compute(ByteView rand, ByteView sqn,
                                 ByteView amf) const {
  MilenageOutput out = compute_f2345(rand);
  compute_f1(rand, sqn, amf, out.mac_a, out.mac_s);
  return out;
}

Bytes build_autn(ByteView sqn, ByteView ak, ByteView amf, ByteView mac_a) {
  if (sqn.size() != 6 || ak.size() != 6 || amf.size() != 2 ||
      mac_a.size() != 8) {
    throw std::invalid_argument("build_autn: bad field sizes");
  }
  const Bytes sqn_xor_ak = xor_bytes(sqn, ak);
  return concat({ByteView(sqn_xor_ak), amf, mac_a});
}

AutnFields parse_autn(ByteView autn) {
  if (autn.size() != 16) throw std::invalid_argument("parse_autn: size");
  return AutnFields{take(autn, 6), slice_bytes(autn, 6, 2), slice_bytes(autn, 8, 8)};
}

}  // namespace shield5g::crypto
