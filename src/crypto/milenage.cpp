#include "crypto/milenage.h"

#include <stdexcept>

#include "common/hot_stage.h"

namespace shield5g::crypto {

namespace {

using Block = std::array<std::uint8_t, 16>;

// Cyclic left rotation of a 16-byte block by a multiple of 8 bits.
// TS 35.206 uses r1..r5 = 64, 0, 32, 64, 96 bits.
Block rot(const Block& in, int bits) {
  if (bits % 8 != 0) throw std::invalid_argument("rot: bits must be /8");
  const std::size_t shift = static_cast<std::size_t>(bits / 8);
  Block out{};
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = in[(i + shift) % 16];
  }
  return out;
}

}  // namespace

Milenage::Milenage(SecretView k, SecretView opc) : cipher_(k.unsafe_bytes()) {
  if (opc.size() != 16) throw std::invalid_argument("Milenage: OPc size");
  const ByteView opc_raw = opc.unsafe_bytes();
  for (int i = 0; i < 16; ++i) opc_[i] = opc_raw[i];
}

SecretBytes Milenage::derive_opc(SecretView k, ByteView op) {
  if (op.size() != 16) throw std::invalid_argument("derive_opc: OP size");
  const Aes128 cipher(k.unsafe_bytes());
  const auto enc = cipher.encrypt_block(op);
  return SecretBytes(xor_bytes(op, ByteView(enc)));
}

std::array<std::uint8_t, 16> Milenage::out_n(const std::array<std::uint8_t, 16>& temp,
                                             int rot_bits,
                                             std::uint8_t c_last) const {
  // OUTn = E_K[ rot(TEMP XOR OPc, rn) XOR cn ] XOR OPc
  Block mixed;
  for (int i = 0; i < 16; ++i) {
    mixed[i] = static_cast<std::uint8_t>(temp[i] ^ opc_[i]);
  }
  Block rotated = rot(mixed, rot_bits);
  rotated[15] = static_cast<std::uint8_t>(rotated[15] ^ c_last);
  Block out = cipher_.encrypt_block(rotated);
  for (int i = 0; i < 16; ++i) out[i] ^= opc_[i];
  secure_zero(mixed.data(), mixed.size());
  secure_zero(rotated.data(), rotated.size());
  return out;
}

void Milenage::compute_f1(ByteView rand, ByteView sqn, ByteView amf,
                          Bytes& mac_a, Bytes& mac_s) const {
  if (rand.size() != 16 || sqn.size() != 6 || amf.size() != 2) {
    throw std::invalid_argument("Milenage::compute_f1: bad sizes");
  }
  ScopedStage timer(HotStage::kCrypto);
  Block rand_xor_opc;
  for (int i = 0; i < 16; ++i) {
    rand_xor_opc[i] = static_cast<std::uint8_t>(rand[i] ^ opc_[i]);
  }
  const Block temp = cipher_.encrypt_block(rand_xor_opc);

  // IN1 = SQN || AMF || SQN || AMF
  Block in1;
  for (int i = 0; i < 6; ++i) in1[i] = in1[i + 8] = sqn[i];
  in1[6] = in1[14] = amf[0];
  in1[7] = in1[15] = amf[1];
  for (int i = 0; i < 16; ++i) in1[i] ^= opc_[i];
  Block arg = rot(in1, 64);  // r1 = 64 bits, c1 = 0
  for (int i = 0; i < 16; ++i) arg[i] ^= temp[i];
  Block out1 = cipher_.encrypt_block(arg);
  for (int i = 0; i < 16; ++i) out1[i] ^= opc_[i];
  mac_a.assign(out1.begin(), out1.begin() + 8);
  mac_s.assign(out1.begin() + 8, out1.end());
  secure_zero(rand_xor_opc.data(), rand_xor_opc.size());
  secure_zero(arg.data(), arg.size());
}

MilenageOutput Milenage::compute_f2345(ByteView rand) const {
  if (rand.size() != 16) {
    throw std::invalid_argument("Milenage::compute_f2345: RAND size");
  }
  ScopedStage timer(HotStage::kCrypto);
  Block rand_xor_opc;
  for (int i = 0; i < 16; ++i) {
    rand_xor_opc[i] = static_cast<std::uint8_t>(rand[i] ^ opc_[i]);
  }
  const Block temp = cipher_.encrypt_block(rand_xor_opc);
  secure_zero(rand_xor_opc.data(), rand_xor_opc.size());

  MilenageOutput out;
  const Block out2 = out_n(temp, 0, 0x01);   // r2 = 0,  c2 = ..01
  const Block out5 = out_n(temp, 96, 0x08);  // r5 = 96, c5 = ..08
  out.res.assign(out2.begin() + 8, out2.end());
  out.ak.assign(out2.begin(), out2.begin() + 6);
  // CK/IK move straight into tainted storage; the stack staging blocks
  // are wiped before returning.
  Block out3 = out_n(temp, 32, 0x02);  // r3 = 32, c3 = ..02
  Block out4 = out_n(temp, 64, 0x04);  // r4 = 64, c4 = ..04
  out.ck = SecretBytes(ByteView(out3));
  out.ik = SecretBytes(ByteView(out4));
  secure_zero(out3.data(), out3.size());
  secure_zero(out4.data(), out4.size());
  out.ak_s.assign(out5.begin(), out5.begin() + 6);
  return out;
}

MilenageOutput Milenage::compute(ByteView rand, ByteView sqn,
                                 ByteView amf) const {
  MilenageOutput out = compute_f2345(rand);
  compute_f1(rand, sqn, amf, out.mac_a, out.mac_s);
  return out;
}

Bytes build_autn(ByteView sqn, ByteView ak, ByteView amf, ByteView mac_a) {
  if (sqn.size() != 6 || ak.size() != 6 || amf.size() != 2 ||
      mac_a.size() != 8) {
    throw std::invalid_argument("build_autn: bad field sizes");
  }
  Bytes autn;
  autn.reserve(16);
  for (int i = 0; i < 6; ++i) {
    autn.push_back(static_cast<std::uint8_t>(sqn[i] ^ ak[i]));
  }
  autn.insert(autn.end(), amf.begin(), amf.end());
  autn.insert(autn.end(), mac_a.begin(), mac_a.end());
  return autn;
}

AutnFields parse_autn(ByteView autn) {
  if (autn.size() != 16) throw std::invalid_argument("parse_autn: size");
  return AutnFields{take(autn, 6), slice_bytes(autn, 6, 2), slice_bytes(autn, 8, 8)};
}

}  // namespace shield5g::crypto
