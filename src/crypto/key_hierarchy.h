// 5G key hierarchy (TS 33.501 Annex A).
//
// Implements the derivations the paper's P-AKA modules execute inside
// their enclaves (Table I): K_AUSF and AUTN inside eUDM, K_SEAF and
// HXRES* inside eAUSF, K_AMF inside eAMF — plus the downstream NAS and
// gNB keys needed to complete UE registration and the security-mode
// procedure end to end.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/secret.h"

namespace shield5g::crypto {

/// Serving-network-name string per TS 24.501 §9.12.1, e.g.
/// "5G:mnc001.mcc001.3gppnetwork.org" for PLMN 001/01.
std::string serving_network_name(const std::string& mcc,
                                 const std::string& mnc);

// Taint discipline: hierarchy keys (CK/IK in, K_AUSF/K_SEAF/K_AMF and
// the NAS/gNB keys out) are SecretView/SecretBytes. Protocol outputs
// that legitimately cross the wire — RES*, HXRES* — stay plain Bytes.

/// K_AUSF = KDF(CK || IK, FC=0x6A, SNN, SQN xor AK)      [A.2]
SecretBytes derive_kausf(SecretView ck, SecretView ik, const std::string& snn,
                         ByteView sqn_xor_ak);

/// (X)RES* = KDF(CK || IK, FC=0x6B, SNN, RAND, RES)[16..31]  [A.4]
Bytes derive_res_star(SecretView ck, SecretView ik, const std::string& snn,
                      ByteView rand, ByteView res);

/// HXRES* = SHA-256(RAND || XRES*) most-significant bits   [A.5]
/// `out_len` defaults to the standard 16 bytes; the paper's modules
/// exchange an 8-byte HXRES* (Table I), so callers may truncate.
Bytes derive_hxres_star(ByteView rand, ByteView xres_star,
                        std::size_t out_len = 16);

/// K_SEAF = KDF(K_AUSF, FC=0x6C, SNN)                     [A.6]
SecretBytes derive_kseaf(SecretView kausf, const std::string& snn);

/// K_AMF = KDF(K_SEAF, FC=0x6D, SUPI, ABBA)               [A.7]
SecretBytes derive_kamf(SecretView kseaf, const std::string& supi,
                        ByteView abba);

/// Algorithm-type distinguishers for A.8.
enum class AlgoType : std::uint8_t {
  kNasEnc = 0x01,
  kNasInt = 0x02,
  kRrcEnc = 0x03,
  kRrcInt = 0x04,
  kUpEnc = 0x05,
  kUpInt = 0x06,
};

/// Algorithm key = KDF(K_AMF, FC=0x69, type, id), truncated to 128 bits.
SecretBytes derive_algo_key(SecretView kamf, AlgoType type,
                            std::uint8_t algo_id);

/// K_gNB = KDF(K_AMF, FC=0x6E, uplink NAS COUNT, access type)  [A.9]
SecretBytes derive_kgnb(SecretView kamf, std::uint32_t uplink_nas_count,
                        std::uint8_t access_type = 0x01);

}  // namespace shield5g::crypto
