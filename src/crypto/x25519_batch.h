// Batched X25519: many independent scalar mults per call.
//
// The serving hot path generates scalar mults in bursts — a pool refill
// mints 64 fixed-base keys, a scheduler tick lands several SUCI
// conceals, a ServiceQueue busy window queues several first-contact
// handshakes. x25519_batch() executes such a burst through the 4-lane
// AVX2 ladder (crypto/fe25519x4.h): four mults run in lock-step vector
// lanes, each lane bit-identical to the scalar ladder.
//
// Contracts:
//   * Bit-identity: outputs equal n serial crypto::x25519() calls, byte
//     for byte, on every input (twist points and u = 0 included) — the
//     scalar path stays the oracle, enforced by kernel_parity_test.
//   * Op-count neutrality: charges exactly n x25519 ops to the calling
//     thread's meter, same as n serial calls, so virtual-time results
//     do not depend on which engine ran.
//   * Comb interplay: each point takes exactly one comb-cache lookup
//     (same sighting/graduation behavior as the serial path); points
//     with a published comb table use it, only ladder-bound points are
//     grouped into vector lanes.
//   * Dispatch: vector engines run only when the binary carries the
//     kernels, the CPU has the ISA, and the accel backend is active
//     (SHIELD5G_CRYPTO_BACKEND honored). AVX-512 IFMA outranks AVX2.
//     SHIELD5G_X25519_BATCH=scalar forces the scalar engine and =x4
//     caps selection at the AVX2 kernel; tests pin engines via the
//     detail hooks. The scalar fallback is always available and
//     digest-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/fe25519.h"
#include "crypto/x25519.h"

namespace shield5g::crypto {

/// One scalar mult of a batch. The views must stay valid until the
/// x25519_batch() call returns; `out` receives X25519(scalar, point).
struct X25519BatchItem {
  SecretView scalar;
  ByteView point;
  X25519Key* out = nullptr;
};

/// Executes n independent mults (any n, including 0); partial groups
/// fall back to the scalar ladder. Charges n x25519 ops.
void x25519_batch(X25519BatchItem* items, std::size_t n);

enum class X25519BatchEngine {
  kScalar,  // per-item scalar path (comb-aware), the oracle
  kX4,      // 4-lane AVX2 ladder for ladder-bound points
  kIfma,    // 4-lane AVX-512 IFMA ladder (vpmadd52), preferred when the
            // CPU offers it; same batching shape as kX4
};

/// The engine x25519_batch() would use right now.
X25519BatchEngine x25519_batch_engine() noexcept;

/// "scalar" / "x4" / "ifma" for reports.
const char* x25519_batch_engine_name(X25519BatchEngine engine) noexcept;

/// Deterministic cross-request mult accumulator: callers enqueue
/// independent mults as a burst materializes and flush() executes them
/// in enqueue order through x25519_batch(). Single-threaded by design —
/// owned by whoever owns the burst (pool refill, generator tick).
/// Enqueued views must outlive the flush.
class MultBatcher {
 public:
  void enqueue(SecretView scalar, ByteView point, X25519Key* out) {
    items_.push_back(X25519BatchItem{scalar, point, out});
  }
  std::size_t pending() const noexcept { return items_.size(); }
  void flush() {
    if (items_.empty()) return;
    x25519_batch(items_.data(), items_.size());
    items_.clear();
  }

 private:
  std::vector<X25519BatchItem> items_;
};

namespace detail {

/// Test hooks: pin the batch engine regardless of CPU/env/backend (kX4
/// still requires the kernels to be compiled in and the CPU to have
/// AVX2 — pinning cannot make an illegal instruction legal).
void force_batch_engine(X25519BatchEngine engine) noexcept;
void clear_forced_batch_engine() noexcept;

/// True when this binary carries the AVX2 4-lane kernels.
bool x25519_x4_compiled() noexcept;

/// Four ladders in lock-step lanes; scalars pre-clamped, points raw
/// 32-byte u-coordinates, outputs canonical. Only callable when
/// x25519_x4_compiled() && cpu_has_avx2().
void x25519_x4_ladder4(const std::uint8_t k[4][32],
                       const std::uint8_t* const u[4],
                       std::uint8_t out[4][32]);

/// Lane-sliced field ops round-tripped through the x4 domain, for the
/// fe25519 property tests. Inputs may carry limbs up to 2^54 (they are
/// re-carried at the boundary, value-preserving); outputs are carried
/// 5x51. Return false when the kernels are not compiled in.
bool x25519_x4_mul(const fe25519::Fe a[4], const fe25519::Fe b[4],
                   fe25519::Fe r[4]);
bool x25519_x4_sq(const fe25519::Fe a[4], fe25519::Fe r[4]);

/// True when this binary carries the AVX-512 IFMA 4-lane kernels.
bool x25519_ifma_compiled() noexcept;

/// IFMA twin of x25519_x4_ladder4; only callable when
/// x25519_ifma_compiled() && cpu_has_avx512ifma().
void x25519_ifma_ladder4(const std::uint8_t k[4][32],
                         const std::uint8_t* const u[4],
                         std::uint8_t out[4][32]);

/// IFMA twins of the x4 field-op hooks (radix-2^43 domain inside).
bool x25519_ifma_mul(const fe25519::Fe a[4], const fe25519::Fe b[4],
                     fe25519::Fe r[4]);
bool x25519_ifma_sq(const fe25519::Fe a[4], fe25519::Fe r[4]);

}  // namespace detail

}  // namespace shield5g::crypto
